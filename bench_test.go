// Benchmark harness: one benchmark per figure of the paper's evaluation
// (Section 7), plus ablation benchmarks for the design choices DESIGN.md
// calls out (collective variants, contention on/off, eager threshold).
//
// Each BenchmarkFigN* runs the corresponding harness from
// internal/experiments and reports the figure's headline quantities as
// custom benchmark metrics, so that
//
//	go test -bench=. -benchmem
//
// regenerates the entire campaign. EXPERIMENTS.md records the
// paper-vs-measured comparison; cmd/experiments prints the full tables.
package smpigo_test

import (
	"testing"

	"smpigo/internal/core"
	"smpigo/internal/experiments"
	"smpigo/internal/nas"
	"smpigo/internal/smpi"
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	env, err := experiments.NewEnv()
	if err != nil {
		b.Fatal(err)
	}
	return env
}

func reportPct(b *testing.B, name string, v float64) {
	b.ReportMetric(v, name)
}

func BenchmarkFig3PingPongGriffon(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(env)
		if err != nil {
			b.Fatal(err)
		}
		if !res.OrderingHolds() {
			b.Fatal("model accuracy ordering violated")
		}
		reportPct(b, "pwl_err_%", res.Summaries["piecewise"].MeanPct())
		reportPct(b, "bestfit_err_%", res.Summaries["best-fit-affine"].MeanPct())
		reportPct(b, "default_err_%", res.Summaries["default-affine"].MeanPct())
	}
}

func BenchmarkFig4PingPongGdx(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(env)
		if err != nil {
			b.Fatal(err)
		}
		reportPct(b, "pwl_err_%", res.Summaries["piecewise"].MeanPct())
		reportPct(b, "default_err_%", res.Summaries["default-affine"].MeanPct())
	}
}

func BenchmarkFig5PingPongGdx3Switch(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(env)
		if err != nil {
			b.Fatal(err)
		}
		reportPct(b, "pwl_err_%", res.Summaries["piecewise"].MeanPct())
	}
}

func BenchmarkFig7ScatterPerRank(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure7(env)
		if err != nil {
			b.Fatal(err)
		}
		max := func(vs []float64) float64 {
			m := 0.0
			for _, v := range vs {
				if v > m {
					m = v
				}
			}
			return m
		}
		reportPct(b, "smpi_s", max(res.Series["smpi"]))
		reportPct(b, "nocontention_s", max(res.Series["smpi-nocontention"]))
		reportPct(b, "openmpi_s", max(res.Series["openmpi"]))
		reportPct(b, "mpich2_s", max(res.Series["mpich2"]))
	}
}

func BenchmarkFig8ScatterVsSize(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure8(env)
		if err != nil {
			b.Fatal(err)
		}
		reportPct(b, "mean_err_%", res.Summary.MeanPct())
	}
}

func BenchmarkFig9ScatterVsProcs(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure9(env)
		if err != nil {
			b.Fatal(err)
		}
		reportPct(b, "mean_err_%", res.Summary.MeanPct())
	}
}

func BenchmarkFig11AlltoallPerRank(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure11(env)
		if err != nil {
			b.Fatal(err)
		}
		max := func(vs []float64) float64 {
			m := 0.0
			for _, v := range vs {
				if v > m {
					m = v
				}
			}
			return m
		}
		reportPct(b, "smpi_s", max(res.Series["smpi"]))
		reportPct(b, "nocontention_s", max(res.Series["smpi-nocontention"]))
		reportPct(b, "openmpi_s", max(res.Series["openmpi"]))
	}
}

func BenchmarkFig12AlltoallVsSize(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure12(env)
		if err != nil {
			b.Fatal(err)
		}
		reportPct(b, "mean_err_%", res.Summary.MeanPct())
	}
}

func BenchmarkFig15NASDT(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure15(env, 2*int(core.MiB))
		if err != nil {
			b.Fatal(err)
		}
		reportPct(b, "mean_err_%", res.Summary.MeanPct())
		reportPct(b, "bh_over_wh_A", res.OpenMPI["BH-A"]/res.OpenMPI["WH-A"])
	}
}

func BenchmarkFig16RAMFolding(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure16(env, 1.0/8, 2*float64(core.GiB))
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		var n int
		for key, plain := range res.Plain {
			sum += plain / res.Folded[key]
			n++
		}
		reportPct(b, "avg_fold_ratio_x", sum/float64(n))
	}
}

func BenchmarkFig17SimSpeed(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure17(env)
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.Sizes) - 1
		reportPct(b, "speedup_vs_real_64MiB", res.RealTime[last]/res.SimWall[last].Seconds())
	}
}

func BenchmarkFig18CPUSampling(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure18(env, 21, 64)
		if err != nil {
			b.Fatal(err)
		}
		// Wall-time ratio between full execution and 25% sampling.
		reportPct(b, "wall_full_over_quarter", res.Wall[0].Seconds()/res.Wall[3].Seconds())
	}
}

// BenchmarkCampaignThroughput measures the campaign engine's job throughput
// on scenario grids shaped like the repository's figure reproductions: the
// original griffon scatter grid, plus the same sweep pushed through a
// 64-host fat-tree (fattree:8x8:1x8) where the LMM solver — not the actor
// kernel — dominates wall time (see BENCH_lmm.json). It reports jobs/sec;
// simulated results are bit-identical at any worker count, so the pool size
// is purely a throughput knob.
func BenchmarkCampaignThroughput(b *testing.B) {
	grids := []struct {
		name string
		spec experiments.GridSpec
	}{
		{
			name: "griffon",
			spec: experiments.GridSpec{
				Op:       "scatter",
				Procs:    []int{2, 4, 8, 16},
				Sizes:    []int64{16 * core.KiB, 64 * core.KiB, 256 * core.KiB},
				Models:   []string{"piecewise", "default"},
				Backends: []string{"surf"},
			},
		},
		{
			name: "fattree-8x8-1x8",
			spec: experiments.GridSpec{
				Op:         "scatter",
				Procs:      []int{16, 64},
				Sizes:      []int64{64 * core.KiB, 256 * core.KiB},
				Models:     []string{"piecewise"},
				Backends:   []string{"surf"},
				Topologies: []string{"fattree:8x8:1x8"},
			},
		},
	}
	for _, g := range grids {
		b.Run(g.name, func(b *testing.B) {
			env := benchEnv(b)
			var fingerprint string
			jobs := 0
			for i := 0; i < b.N; i++ {
				sum, err := env.GridCampaign(g.spec)
				if err != nil {
					b.Fatal(err)
				}
				if err := sum.Err(); err != nil {
					b.Fatal(err)
				}
				jobs = sum.Jobs
				fp := sum.Fingerprint()
				if fingerprint == "" {
					fingerprint = fp
				} else if fp != fingerprint {
					b.Fatalf("campaign fingerprint drifted: %s vs %s", fp, fingerprint)
				}
			}
			b.ReportMetric(float64(jobs)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// --- ablation benchmarks ---

func benchCollective(b *testing.B, algos smpi.Algorithms, procs int, chunk int64,
	op func(*smpi.Rank, *smpi.Comm, []byte, []byte)) {
	env := benchEnv(b)
	var simulated core.Time
	for i := 0; i < b.N; i++ {
		cfg := smpi.Config{
			Procs:      procs,
			Platform:   env.Griffon,
			Model:      env.Piecewise,
			Algorithms: algos,
		}
		rep, err := smpi.Run(cfg, func(r *smpi.Rank) {
			c := r.Comm()
			var sendbuf []byte
			if r.Rank() == 0 {
				sendbuf = make([]byte, int64(procs)*chunk)
			}
			recvbuf := make([]byte, chunk)
			op(r, c, sendbuf, recvbuf)
		})
		if err != nil {
			b.Fatal(err)
		}
		simulated = rep.SimulatedTime
	}
	b.ReportMetric(float64(simulated), "simulated_s")
}

// BenchmarkAblationScatterBinomialVsFlat compares the paper's binomial-tree
// scatter against a flat (root-sends-all) variant: the flat variant
// serializes everything on the root's up-link.
func BenchmarkAblationScatterBinomialVsFlat(b *testing.B) {
	for _, algo := range []string{"binomial", "flat"} {
		b.Run(algo, func(b *testing.B) {
			benchCollective(b, smpi.Algorithms{Scatter: algo}, 16, 4*core.MiB,
				func(r *smpi.Rank, c *smpi.Comm, sendbuf, recvbuf []byte) {
					c.Scatter(r, sendbuf, recvbuf, 0)
				})
		})
	}
}

// BenchmarkAblationAlltoallPairwiseVsFlat compares the paper's pairwise
// all-to-all schedule against the unscheduled flood.
func BenchmarkAblationAlltoallPairwiseVsFlat(b *testing.B) {
	env := benchEnv(b)
	for _, algo := range []string{"pairwise", "flat"} {
		b.Run(algo, func(b *testing.B) {
			var simulated core.Time
			for i := 0; i < b.N; i++ {
				cfg := smpi.Config{
					Procs:      16,
					Platform:   env.Griffon,
					Model:      env.Piecewise,
					Algorithms: smpi.Algorithms{Alltoall: algo},
				}
				rep, err := smpi.Run(cfg, func(r *smpi.Rank) {
					c := r.Comm()
					sendbuf := make([]byte, 16*core.MiB)
					recvbuf := make([]byte, 16*core.MiB)
					c.Alltoall(r, sendbuf, recvbuf)
				})
				if err != nil {
					b.Fatal(err)
				}
				simulated = rep.SimulatedTime
			}
			b.ReportMetric(float64(simulated), "simulated_s")
		})
	}
}

// BenchmarkAblationContention quantifies what the contention model costs in
// simulation speed and changes in prediction.
func BenchmarkAblationContention(b *testing.B) {
	env := benchEnv(b)
	for _, contention := range []bool{true, false} {
		name := "on"
		if !contention {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			var simulated core.Time
			for i := 0; i < b.N; i++ {
				cfg := smpi.Config{
					Procs:        16,
					Platform:     env.Griffon,
					Model:        env.Piecewise,
					NoContention: !contention,
				}
				rep, err := smpi.Run(cfg, func(r *smpi.Rank) {
					c := r.Comm()
					sendbuf := make([]byte, 16*256*core.KiB)
					recvbuf := make([]byte, 16*256*core.KiB)
					c.Alltoall(r, sendbuf, recvbuf)
				})
				if err != nil {
					b.Fatal(err)
				}
				simulated = rep.SimulatedTime
			}
			b.ReportMetric(float64(simulated), "simulated_s")
		})
	}
}

// BenchmarkAblationEagerThreshold sweeps the eager/rendezvous switch point,
// the knob behind the piece-wise model's third segment boundary.
func BenchmarkAblationEagerThreshold(b *testing.B) {
	env := benchEnv(b)
	for _, thresholdKiB := range []int64{4, 64, 1024} {
		b.Run(core.FormatBytes(thresholdKiB*core.KiB), func(b *testing.B) {
			var simulated core.Time
			for i := 0; i < b.N; i++ {
				cfg := smpi.Config{
					Procs:          8,
					Platform:       env.Griffon,
					Model:          env.Piecewise,
					EagerThreshold: thresholdKiB * core.KiB,
				}
				rep, err := smpi.Run(cfg, func(r *smpi.Rank) {
					c := r.Comm()
					buf := make([]byte, 128*core.KiB)
					if r.Rank() == 0 {
						for dst := 1; dst < r.Size(); dst++ {
							r.Send(c, buf, dst, 0)
						}
					} else {
						r.Elapse(0.01) // receivers are late: eager wins
						r.Recv(c, buf, 0, 0)
					}
				})
				if err != nil {
					b.Fatal(err)
				}
				simulated = rep.SimulatedTime
			}
			b.ReportMetric(float64(simulated), "simulated_s")
		})
	}
}

// BenchmarkKernelScaling measures raw simulation throughput: a 448-rank DT
// shuffle (the paper's largest configuration, Section 7.2) on the
// analytical backend.
func BenchmarkKernelScaling448Ranks(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		app, _ := nas.DT(nas.DTConfig{
			Graph: nas.SH, Class: nas.ClassC,
			PayloadBytes: 256 * 1024, Fold: true,
		})
		cfg := smpi.Config{
			Procs:        448,
			Platform:     env.Griffon,
			Model:        env.Piecewise,
			NoContention: true,
		}
		if _, err := smpi.Run(cfg, app); err != nil {
			b.Fatal(err)
		}
	}
}
