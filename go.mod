module smpigo

go 1.24
