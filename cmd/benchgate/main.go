// Command benchgate is the CI benchmark-regression gate: it runs the
// repository's gated benchmarks (the incremental-solver and event-path
// suites), parses the `go test -bench` output, and fails — non-zero exit,
// one line per offender — when any ns/op regresses beyond the tolerance
// recorded next to its committed baseline.
//
// Baselines live in the BENCH_*.json artifacts under a machine-readable
// "gate" object:
//
//	"gate": {
//	  "package":       "./internal/lmm",
//	  "bench":         "BenchmarkLMMIncremental",
//	  "benchtime":     "1000x",
//	  "tolerance_pct": 35,
//	  "ns_per_op":     {"neighbor1024/incremental": 347.7, ...}
//	}
//
// Iteration counts are pinned via the gate's benchtime (so a run always
// measures the same amount of work) and every benchmark runs -count times
// with the minimum taken, which filters scheduler noise; CI additionally
// pins GOMAXPROCS. After an intentional performance change, refresh the
// committed numbers with `go run ./cmd/benchgate -update` and review the
// BENCH_*.json diff (README "Benchmark gate" section).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// gate is the machine-readable section of a BENCH_*.json artifact.
type gate struct {
	Package      string             `json:"package"`
	Bench        string             `json:"bench"`
	Benchtime    string             `json:"benchtime"`
	TolerancePct float64            `json:"tolerance_pct"`
	NsPerOp      map[string]float64 `json:"ns_per_op"`
	// Metrics gates custom testing.B metrics (e.g. "bytes/host") per
	// sub-benchmark, with the same tolerance as ns_per_op.
	Metrics map[string]map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var (
		update   = flag.Bool("update", false, "rewrite the baseline ns_per_op maps with freshly measured values instead of gating")
		count    = flag.Int("count", 3, "benchmark repetitions; the minimum ns/op of the runs is compared")
		short    = flag.Bool("short", false, "run benchmarks with -short; baselines whose sub-benchmarks skip themselves are reported as skipped, not missing")
		counters = flag.Bool("counters", false, "set SMPIGO_BENCH_COUNTERS=1 in the benchmark child: instrumented benchmarks attach kernel counters and report them as custom metrics (printed, never gated)")
	)
	flag.Parse()
	files := flag.Args()
	if len(files) == 0 {
		files = []string{"BENCH_lmm.json", "BENCH_event.json"}
	}
	failed := false
	for _, file := range files {
		if err := runGate(file, *count, *update, *short, *counters); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", file, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func runGate(file string, count int, update, short, counters bool) error {
	raw, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	var doc struct {
		Gate *gate `json:"gate"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("parsing: %w", err)
	}
	g := doc.Gate
	if g == nil {
		return fmt.Errorf("no \"gate\" object (add one or drop the file from the gate)")
	}
	if g.Package == "" || g.Bench == "" || len(g.NsPerOp) == 0 {
		return fmt.Errorf("gate object incomplete: need package, bench, and ns_per_op")
	}
	measured, metrics, err := runBench(g, count, short, counters)
	if err != nil {
		return err
	}
	// A measured sub-benchmark with no baseline is not gated; say so loudly
	// in both modes, or a newly added case would silently never be covered.
	warnUngated(g, measured, update)
	if update {
		return rewriteBaselines(file, raw, measured, metrics)
	}

	var regressions []string
	check := func(name, unit string, base, got float64, present bool) {
		label := fmt.Sprintf("%s/%s", g.Bench, name)
		if unit != "ns/op" {
			label += " " + unit
		}
		if !present {
			// Under -short a sub-benchmark may skip itself (the nightly-only
			// shapes); its baselines are out of scope rather than missing.
			if short {
				fmt.Printf("%-55s %26s  skipped (-short)\n", label, "")
				return
			}
			regressions = append(regressions, label+": baseline present but benchmark produced no result")
			return
		}
		limit := base * (1 + g.TolerancePct/100)
		verdict := "ok"
		if got > limit {
			verdict = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.4g %s vs baseline %.4g (+%.1f%%, tolerance %.0f%%)",
					label, got, unit, base, 100*(got/base-1), g.TolerancePct))
		}
		fmt.Printf("%-55s %12.4g %-10s baseline %12.4g  %s\n", label, got, unit, base, verdict)
	}
	for _, name := range sortedKeys(g.NsPerOp) {
		got, ok := measured[name]
		check(name, "ns/op", g.NsPerOp[name], got, ok)
	}
	for _, name := range sortedKeys(g.Metrics) {
		for _, unit := range sortedKeys(g.Metrics[name]) {
			got, ok := metrics[name][unit]
			check(name, unit, g.Metrics[name][unit], got, ok)
		}
	}
	// Custom metrics with no baseline (the -counters kernel counters land
	// here) are informational: print them, never gate on them.
	for _, name := range sortedKeys(metrics) {
		for _, unit := range sortedKeys(metrics[name]) {
			if _, gated := g.Metrics[name][unit]; gated {
				continue
			}
			fmt.Printf("%-55s %12.4g %-10s (measured, not gated)\n",
				fmt.Sprintf("%s/%s %s", g.Bench, name, unit), metrics[name][unit], unit)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%:\n  %s",
			len(regressions), g.TolerancePct, strings.Join(regressions, "\n  "))
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// warnUngated reports measured sub-benchmarks that no baseline covers.
// Every result is recorded under both its raw and suffix-stripped spelling
// (see parseBenchOutput); a result is ungated only when neither spelling
// matches, and only the raw spelling is reported to avoid double warnings.
func warnUngated(g *gate, measured map[string]float64, update bool) {
	var raws []string
	for name := range measured {
		raws = append(raws, name)
	}
	sort.Strings(raws)
	stripped := make(map[string]bool)
	for _, name := range raws {
		if i := strings.LastIndex(name, "-"); i >= 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				stripped[name[:i]] = true
			}
		}
	}
	for _, name := range raws {
		if stripped[name] { // the stripped alias of another measured name
			continue
		}
		_, rawOK := g.NsPerOp[name]
		short := name
		if i := strings.LastIndex(name, "-"); i >= 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				short = name[:i]
			}
		}
		if _, shortOK := g.NsPerOp[short]; rawOK || shortOK {
			continue
		}
		action := "add it to gate.ns_per_op to gate it"
		if update {
			action = "-update only refreshes existing baselines; add it to gate.ns_per_op manually"
		}
		fmt.Fprintf(os.Stderr, "benchgate: note: %s/%s measured (%.4g ns/op) but has no baseline — %s\n",
			g.Bench, name, measured[name], action)
	}
}

// runBench executes the gated benchmark count times with the pinned
// benchtime and returns the per-sub-benchmark minimum ns/op plus any custom
// metrics (min per unit).
func runBench(g *gate, count int, short, counters bool) (map[string]float64, map[string]map[string]float64, error) {
	args := []string{"test", "-run", "^$",
		"-bench", "^" + g.Bench + "$",
		"-benchtime", g.Benchtime,
		"-count", strconv.Itoa(count),
	}
	if short {
		args = append(args, "-short")
	}
	args = append(args, g.Package)
	cmd := exec.Command("go", args...)
	if counters {
		cmd.Env = append(os.Environ(), "SMPIGO_BENCH_COUNTERS=1")
	}
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	measured, metrics, err := parseBenchOutput(string(out), g.Bench)
	if err != nil {
		return nil, nil, err
	}
	if len(measured) == 0 {
		return nil, nil, fmt.Errorf("go test -bench produced no %s results", g.Bench)
	}
	return measured, metrics, nil
}

// parseBenchOutput extracts min ns/op per sub-benchmark from `go test
// -bench` output, plus any custom metrics emitted via b.ReportMetric.
// Lines look like:
//
//	BenchmarkEventPath/net-random-1024-8   5000   4154 ns/op
//	BenchmarkScale/dragonfly16k/route-8    3000   64.2 ns/op   348.2 bytes/host
//
// after the iteration count, values come in (number, unit) pairs; ns/op
// lands in the first result map, every other unit in the metrics map.
//
// Benchmark names end in a -GOMAXPROCS suffix when GOMAXPROCS > 1 and are
// bare otherwise, and a trailing numeric path element ("...-1024") is
// indistinguishable from that suffix without knowing the machine — so each
// result is recorded under both its raw name and (when the last dash-field
// is numeric) the suffix-stripped one, min-merged; baselines then match
// whichever spelling the machine produced. A benchmark with no
// sub-benchmarks keys as the empty string.
func parseBenchOutput(out, bench string) (map[string]float64, map[string]map[string]float64, error) {
	min := make(map[string]float64)
	metrics := make(map[string]map[string]float64)
	record := func(name, unit string, v float64) {
		name = strings.TrimPrefix(strings.TrimPrefix(name, bench), "/")
		if unit == "ns/op" {
			if cur, ok := min[name]; !ok || v < cur {
				min[name] = v
			}
			return
		}
		m := metrics[name]
		if m == nil {
			m = make(map[string]float64)
			metrics[name] = m
		}
		if cur, ok := m[unit]; !ok || v < cur {
			m[unit] = v
		}
	}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		short := ""
		if i := strings.LastIndex(name, "-"); i >= 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				short = name[:i]
			}
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("unparseable value in %q: %w", sc.Text(), err)
			}
			record(name, fields[i+1], v)
			if short != "" {
				record(short, fields[i+1], v)
			}
		}
	}
	return min, metrics, sc.Err()
}

// rewriteBaselines replaces gate.ns_per_op (and gate.metrics, when present)
// in the artifact with the measured values, leaving every other field
// intact (object key order is normalized by the JSON round-trip).
func rewriteBaselines(file string, raw []byte, measured map[string]float64, metrics map[string]map[string]float64) error {
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return err
	}
	gateObj, ok := doc["gate"].(map[string]any)
	if !ok {
		return fmt.Errorf("no gate object to update")
	}
	baselines, ok := gateObj["ns_per_op"].(map[string]any)
	if !ok {
		return fmt.Errorf("no gate.ns_per_op object to update")
	}
	for name := range baselines {
		if got, ok := measured[name]; ok {
			baselines[name] = got
		}
	}
	if metricObj, ok := gateObj["metrics"].(map[string]any); ok {
		for name := range metricObj {
			units, ok := metricObj[name].(map[string]any)
			if !ok {
				continue
			}
			for unit := range units {
				if got, ok := metrics[name][unit]; ok {
					units[unit] = got
				}
			}
		}
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(file, append(enc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: baselines updated; review the diff before committing\n", file)
	return nil
}
