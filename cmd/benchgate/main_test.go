package main

import "testing"

func TestParseBenchOutput(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: smpigo/internal/surf
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEventPath/net-neighbor-256-8         	    5000	      2183 ns/op
BenchmarkEventPath/net-neighbor-256-8         	    5000	      1636 ns/op
BenchmarkEventPath/net-random-1024-8          	    5000	      4154.5 ns/op
BenchmarkSomethingElse-8                      	    1000	       99 ns/op
PASS
ok  	smpigo/internal/surf	0.056s
`
	got, _, err := parseBenchOutput(out, "BenchmarkEventPath")
	if err != nil {
		t.Fatal(err)
	}
	if v := got["net-neighbor-256"]; v != 1636 {
		t.Errorf("net-neighbor-256 = %v, want the minimum of the two runs (1636)", v)
	}
	if v := got["net-random-1024"]; v != 4154.5 {
		t.Errorf("net-random-1024 = %v, want 4154.5", v)
	}
	// A benchmark with no sub-benchmarks keys as the empty string; foreign
	// benchmarks are keyed under their (unstripped-prefix) full name and
	// simply never match a baseline.
	if _, ok := got[""]; ok {
		t.Error("unexpected empty-key result for sub-benchmark-only output")
	}
}

// GOMAXPROCS=1 machines emit bare names whose trailing numeric path element
// looks like a -GOMAXPROCS suffix; both spellings must resolve.
func TestParseBenchOutputNoGomaxprocsSuffix(t *testing.T) {
	out := "BenchmarkEventPath/net-neighbor-256   5000   2364 ns/op\n"
	got, _, err := parseBenchOutput(out, "BenchmarkEventPath")
	if err != nil {
		t.Fatal(err)
	}
	if v := got["net-neighbor-256"]; v != 2364 {
		t.Errorf("raw name = %v, want 2364", v)
	}
	if v := got["net-neighbor"]; v != 2364 {
		t.Errorf("stripped name = %v, want 2364", v)
	}
}

func TestParseBenchOutputNoSubBench(t *testing.T) {
	out := "BenchmarkRoute-4   100000   18.6 ns/op\n"
	got, _, err := parseBenchOutput(out, "BenchmarkRoute")
	if err != nil {
		t.Fatal(err)
	}
	if v := got[""]; v != 18.6 {
		t.Errorf("flat benchmark = %v, want 18.6 under the empty key", v)
	}
}

// Custom metrics (b.ReportMetric units beyond ns/op) land in the second
// result map, min-merged, under both name spellings like ns/op does.
func TestParseBenchOutputCustomMetrics(t *testing.T) {
	out := `BenchmarkScale/dragonfly16k/route-8   3000   83.6 ns/op   350.1 bytes/host   0 B/op   0 allocs/op
BenchmarkScale/dragonfly16k/route-8   3000   85.0 ns/op   348.2 bytes/host   0 B/op   0 allocs/op
`
	got, metrics, err := parseBenchOutput(out, "BenchmarkScale")
	if err != nil {
		t.Fatal(err)
	}
	if v := got["dragonfly16k/route"]; v != 83.6 {
		t.Errorf("ns/op = %v, want the minimum of the two runs (83.6)", v)
	}
	if v := metrics["dragonfly16k/route"]["bytes/host"]; v != 348.2 {
		t.Errorf("bytes/host = %v, want the minimum of the two runs (348.2)", v)
	}
	if v := metrics["dragonfly16k/route"]["allocs/op"]; v != 0 {
		t.Errorf("allocs/op = %v, want 0", v)
	}
}
