// Command smpigod serves the campaign engine over HTTP: POST an
// experiments.GridSpec campaign, stream its per-job results, fetch its
// summary and fingerprint, and let the fingerprint-keyed result cache answer
// repeat what-if queries without re-simulating. See internal/service for the
// API and docs/ARCHITECTURE.md "Campaign service" for the design.
//
// Usage:
//
//	smpigod [-addr :8642] [-queue 16] [-cache-size 128] [-parallel N]
//
// The server drains gracefully on SIGINT/SIGTERM: listeners close, the
// running campaign's in-flight jobs finish, queued work is skipped.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"smpigo/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8642", "listen address")
		queue     = flag.Int("queue", 16, "campaign queue depth; submissions beyond it get 429 + Retry-After")
		cacheSize = flag.Int("cache-size", 128, "result cache entries (LRU); negative disables caching")
		parallel  = flag.Int("parallel", 0, "worker pool size per campaign (0 = GOMAXPROCS; fingerprints are identical at any setting)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "smpigod: unexpected arguments %q\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	srv, err := service.New(service.Config{
		QueueDepth: *queue,
		CacheSize:  *cacheSize,
		Workers:    *parallel,
	})
	if err != nil {
		log.Fatalf("smpigod: %v", err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("smpigod: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("smpigod: http shutdown: %v", err)
		}
	}()

	log.Printf("smpigod: serving on %s (queue %d, cache %d, parallel %d)", *addr, *queue, *cacheSize, *parallel)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("smpigod: %v", err)
	}
	// Listeners are closed; cancel the running campaign and wait for the
	// runner so the final counters are complete.
	srv.Close()
	log.Printf("smpigod: done\n%s", srv.Stats().Report())
}
