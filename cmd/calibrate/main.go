// Command calibrate performs the paper's Section 6 instantiation procedure:
// it runs the SKaMPI ping-pong benchmark between two nodes of the emulated
// testbed, fits the default-affine, best-fit-affine and piece-wise linear
// models, and prints the measurements, the fitted parameters, and each
// model's accuracy against the calibration data.
package main

import (
	"flag"
	"fmt"
	"os"

	"smpigo/internal/calibrate"
	"smpigo/internal/core"
	"smpigo/internal/metrics"
	"smpigo/internal/platform"
	"smpigo/internal/skampi"
	"smpigo/internal/smpi"
	"smpigo/internal/surf"
)

func main() {
	platName := flag.String("platform", "griffon", "calibration platform: griffon or gdx")
	cross := flag.Bool("cross-cabinet", false, "calibrate across cabinets (3 switches) instead of within one")
	flag.Parse()
	if err := run(*platName, *cross); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}

func run(platName string, cross bool) error {
	var spec platform.ClusterSpec
	switch platName {
	case "griffon":
		spec = platform.Griffon()
	case "gdx":
		spec = platform.Gdx()
	default:
		return fmt.Errorf("unknown platform %q", platName)
	}
	plat, err := spec.Build()
	if err != nil {
		return err
	}
	a := plat.HostByID(0)
	b := plat.HostByID(1)
	if cross {
		for _, h := range plat.Hosts() {
			if h.Cabinet != a.Cabinet {
				b = h
				break
			}
		}
	}
	fmt.Printf("calibrating on %s between %s and %s (%d switch(es))\n",
		plat.Name, a.Name(), b.Name(), platform.SwitchHops(a, b))

	samples, err := skampi.PingPong(skampi.PingPongConfig{
		Base: smpi.Config{Platform: plat, Backend: smpi.BackendEmu},
		A:    a, B: b,
	})
	if err != nil {
		return err
	}
	info := skampi.RouteInfo(plat, a, b)
	fmt.Printf("route: latency %.3gus, bottleneck %s\n\n",
		info.Latency*1e6, core.FormatRate(info.Bandwidth))
	fmt.Printf("%-10s %14s\n", "size", "one-way (us)")
	for _, s := range samples {
		fmt.Printf("%-10s %14.2f\n", core.FormatBytes(s.Size), s.Time*1e6)
	}

	def, err := calibrate.DefaultAffine(samples, info)
	if err != nil {
		return err
	}
	fit, err := calibrate.BestFitAffine(samples, info)
	if err != nil {
		return err
	}
	pwl, err := calibrate.FitPiecewise(samples, info)
	if err != nil {
		return err
	}
	fmt.Println()
	for _, m := range []surf.NetModel{def, fit, pwl} {
		var pred, ref []float64
		for _, s := range samples {
			pred = append(pred, calibrate.Predict(m, info, s.Size))
			ref = append(ref, s.Time)
		}
		fmt.Printf("model %-16s %s\n", m.Name+":", metrics.Summarize(pred, ref))
		for i, seg := range m.Segments {
			bound := "inf"
			if i < len(m.Segments)-1 {
				bound = core.FormatBytes(seg.MaxBytes)
			}
			fmt.Printf("  segment %d (< %-7s): latency x%.3f, bandwidth x%.3f\n",
				i+1, bound, seg.LatFactor, seg.BwFactor)
		}
	}
	return nil
}
