package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smpigo/internal/platform"
	_ "smpigo/internal/topology" // register topology XML elements
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestPresetGoldenOutput locks the exact XML every preset emits: the files
// under testdata/ are the reference platform descriptions, so accidental
// dialect or preset drift fails here first. Regenerate with -update.
func TestPresetGoldenOutput(t *testing.T) {
	presets := []string{"griffon", "gdx", "fattree16", "fattree64", "torus16", "torus64", "dragonfly72"}
	for _, preset := range presets {
		t.Run(preset, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf, preset, true, "", "", "", ""); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", preset+".golden")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("output drifted from %s:\n got:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
			}
			// The emitted file must parse and build: strip the metrics
			// comment and round-trip.
			specs, err := platform.ReadXML(strings.NewReader(buf.String()))
			if err != nil {
				t.Fatal(err)
			}
			if len(specs) != 1 {
				t.Fatalf("got %d specs", len(specs))
			}
			if _, err := specs[0].Build(); err != nil {
				t.Errorf("golden platform does not build: %v", err)
			}
		})
	}
}

func TestCustomAndShapeSpecs(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "custom", false, "4,4", "2Gf", "1Gbps", "10us"); err != nil {
		t.Fatal(err)
	}
	specs, err := platform.ReadXML(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	cs, ok := specs[0].(platform.ClusterSpec)
	if !ok || cs.NodeCount() != 8 || cs.NodeSpeed != 2e9 {
		t.Errorf("custom spec roundtrip: %+v", specs[0])
	}
	buf.Reset()
	if err := run(&buf, "torus:3x3", false, "", "", "", ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `dims="3x3"`) {
		t.Errorf("shape spec output missing dims: %s", buf.String())
	}
	if err := run(&buf, "not-a-topo", false, "", "", "", ""); err == nil {
		t.Error("unknown preset should fail")
	}
}
