// Command platformgen emits cluster platform descriptions in the
// repository's SimGrid-style XML dialect, either the paper's presets
// (griffon, gdx) or a custom homogeneous cluster.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"smpigo/internal/core"
	"smpigo/internal/platform"
)

func main() {
	var (
		preset   = flag.String("cluster", "griffon", "preset: griffon, gdx, or custom")
		out      = flag.String("o", "-", "output file (- for stdout)")
		cabinets = flag.String("cabinets", "16,16", "custom: nodes per cabinet, comma separated")
		speed    = flag.String("speed", "1Gf", "custom: node speed")
		bw       = flag.String("bw", "1Gbps", "custom: node link bandwidth")
		lat      = flag.String("lat", "20us", "custom: node link latency")
	)
	flag.Parse()
	if err := run(*preset, *out, *cabinets, *speed, *bw, *lat); err != nil {
		fmt.Fprintln(os.Stderr, "platformgen:", err)
		os.Exit(1)
	}
}

func run(preset, out, cabinets, speed, bw, lat string) error {
	var spec platform.ClusterSpec
	switch preset {
	case "griffon":
		spec = platform.Griffon()
	case "gdx":
		spec = platform.Gdx()
	case "custom":
		var err error
		spec, err = customSpec(cabinets, speed, bw, lat)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown preset %q", preset)
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return platform.WriteXML(w, spec)
}

func customSpec(cabinets, speed, bw, lat string) (platform.ClusterSpec, error) {
	spec := platform.Griffon() // sensible switch/backbone defaults
	spec.Name = "custom"
	spec.Cabinets = nil
	for _, part := range strings.Split(cabinets, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return spec, fmt.Errorf("cabinets: %w", err)
		}
		spec.Cabinets = append(spec.Cabinets, n)
	}
	var err error
	if spec.NodeSpeed, err = core.ParseFlops(speed); err != nil {
		return spec, err
	}
	if spec.NodeLinkBandwidth, err = core.ParseRate(bw); err != nil {
		return spec, err
	}
	if spec.NodeLinkLatency, err = core.ParseDuration(lat); err != nil {
		return spec, err
	}
	return spec, spec.Validate()
}
