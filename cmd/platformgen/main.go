// Command platformgen emits platform descriptions in the repository's
// SimGrid-style XML dialect: the paper's cluster presets (griffon, gdx), a
// custom homogeneous cluster, or generated interconnect topologies
// (fat-tree, torus, dragonfly).
//
// Examples:
//
//	platformgen -topo griffon
//	platformgen -topo fattree64 -o fattree64.xml
//	platformgen -topo torus:8x8x4
//	platformgen -topo dragonfly:9x4x2 -metrics
//	platformgen -topo custom -cabinets 8,8 -speed 2Gf
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"smpigo/internal/core"
	"smpigo/internal/platform"
	"smpigo/internal/topology"
)

func main() {
	var (
		topo     = flag.String("topo", "griffon", "preset or shape: griffon, gdx, custom, a topology preset (fattree16, fattree64, torus16, torus64, dragonfly72), or a shape string (fattree:4x4:1x4 torus:4x4x4 dragonfly:9x4x2)")
		cluster  = flag.String("cluster", "", "deprecated alias for -topo")
		out      = flag.String("o", "-", "output file (- for stdout)")
		metrics  = flag.Bool("metrics", false, "print structural metrics (hosts, links, diameter, bisection) as a trailing XML comment")
		cabinets = flag.String("cabinets", "16,16", "custom: nodes per cabinet, comma separated")
		speed    = flag.String("speed", "1Gf", "custom: node speed")
		bw       = flag.String("bw", "1Gbps", "custom: node link bandwidth")
		lat      = flag.String("lat", "20us", "custom: node link latency")
	)
	flag.Parse()
	name := *topo
	if *cluster != "" {
		name = *cluster
	}
	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "platformgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := run(w, name, *metrics, *cabinets, *speed, *bw, *lat); err != nil {
		fmt.Fprintln(os.Stderr, "platformgen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, name string, metrics bool, cabinets, speed, bw, lat string) error {
	spec, err := resolve(name, cabinets, speed, bw, lat)
	if err != nil {
		return err
	}
	if err := platform.WriteXML(w, spec); err != nil {
		return err
	}
	if !metrics {
		return nil
	}
	if ts, ok := spec.(topology.Spec); ok {
		m := ts.Metrics()
		_, err = fmt.Fprintf(w, "<!-- hosts=%d links=%d diameter=%d bisection=%gBps -->\n",
			m.Hosts, m.Links, m.Diameter, m.BisectionBandwidth)
	} else if cs, ok := spec.(platform.ClusterSpec); ok {
		_, err = fmt.Fprintf(w, "<!-- hosts=%d cabinets=%d -->\n", cs.NodeCount(), len(cs.Cabinets))
	}
	return err
}

func resolve(name, cabinets, speed, bw, lat string) (platform.Spec, error) {
	switch name {
	case "griffon":
		return platform.Griffon(), nil
	case "gdx":
		return platform.Gdx(), nil
	case "custom":
		return customSpec(cabinets, speed, bw, lat)
	}
	return topology.ParseSpec(name)
}

func customSpec(cabinets, speed, bw, lat string) (platform.ClusterSpec, error) {
	spec := platform.Griffon() // sensible switch/backbone defaults
	spec.Name = "custom"
	spec.Cabinets = nil
	for _, part := range strings.Split(cabinets, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return spec, fmt.Errorf("cabinets: %w", err)
		}
		spec.Cabinets = append(spec.Cabinets, n)
	}
	var err error
	if spec.NodeSpeed, err = core.ParseFlops(speed); err != nil {
		return spec, err
	}
	if spec.NodeLinkBandwidth, err = core.ParseRate(bw); err != nil {
		return spec, err
	}
	if spec.NodeLinkLatency, err = core.ParseDuration(lat); err != nil {
		return spec, err
	}
	return spec, spec.Validate()
}
