// Command experiments regenerates the figures of the paper's evaluation
// (Section 7) and runs arbitrary scenario campaigns beyond them. Each
// figure's independent simulations fan out over a bounded worker pool;
// simulated results are bit-identical at any -parallel setting because every
// job's RNG seed derives from the campaign seed and the job's identity, not
// from scheduling order.
//
// Usage:
//
//	experiments [-fig all] [-fast] [-parallel N] [-seed S] [-json] [-pprof addr]
//	experiments campaign -op scatter -procs 4,8,16 -sizes 64KiB,1MiB,4MiB \
//	    [-models piecewise,bestfit] [-backends surf,openmpi] \
//	    [-platform griffon] [-topologies griffon,fattree64,torus64] \
//	    [-placements block,rr,random] [-collectives auto] \
//	    [-parallel N] [-seed S] [-json] [-stats] [-pprof addr]
//
// -fig topo compares ring vs tree collectives across interconnect shapes
// (flat cluster, fat-tree, torus, dragonfly); -fig placement sweeps rank
// placement against deterministic routing. The campaign -topologies flag
// crosses any sweep with a topology axis (presets or shape strings such as
// fattree:4x4:1x4, torus:4x4x4, dragonfly:9x4x2), -placements crosses it
// with a rank-placement axis (block, rr, random), and -collectives selects
// collective algorithms ("auto" keys them on the topology).
//
// Running with -fig all reproduces the whole campaign; EXPERIMENTS.md
// records paper-vs-measured for each figure.
//
// Observability: campaign -stats attaches per-job kernel counters (see
// internal/obs) and prints the aggregate; -pprof addr serves net/http/pprof
// profiles plus a plain-text /debug/metrics dump of the Go runtime metrics
// while the sweep runs — the way to see where a long campaign spends its
// wall-clock without instrumenting anything.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime/metrics"
	"strconv"
	"strings"

	"smpigo/internal/campaign"
	"smpigo/internal/core"
	"smpigo/internal/experiments"
	"smpigo/internal/obs"
)

func main() {
	args := os.Args[1:]
	var err error
	if len(args) > 0 && args[0] == "campaign" {
		err = runCampaign(args[1:])
	} else {
		err = runFigures(args)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func runFigures(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 3,4,5,7,8,9,11,12,15,16,17,18, topo (cross-topology collectives), placement (placement-vs-routing sweep), degraded (collective slowdown vs trunk degradation), or all")
	fast := fs.Bool("fast", false, "reduce payloads for quicker (shape-preserving) runs")
	parallel := fs.Int("parallel", 0, "worker-pool size for each figure's simulations (0 = GOMAXPROCS)")
	seed := fs.Uint64("seed", 0, "campaign seed; per-job seeds derive from it")
	jsonOut := fs.Bool("json", false, "emit the figure tables as JSON instead of aligned text")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and /debug/metrics on this address (e.g. localhost:6060) while running")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (the \"campaign\" subcommand must come first: experiments campaign ...)", fs.Arg(0))
	}
	if err := startPprof(*pprofAddr); err != nil {
		return err
	}

	env, err := experiments.NewEnv()
	if err != nil {
		return err
	}
	env.Workers = *parallel
	env.Seed = *seed
	dtPayload := 0 // class defaults
	epM := 22
	figScale := 1.0
	if *fast {
		dtPayload = 512 * 1024
		epM = 19
		figScale = 1.0 / 16
	}

	type figure struct {
		id  string
		run func() (*experiments.Table, error)
	}
	figures := []figure{
		{"3", func() (*experiments.Table, error) { r, err := experiments.Figure3(env); return tbl(r, err) }},
		{"4", func() (*experiments.Table, error) { r, err := experiments.Figure4(env); return tbl(r, err) }},
		{"5", func() (*experiments.Table, error) { r, err := experiments.Figure5(env); return tbl(r, err) }},
		{"7", func() (*experiments.Table, error) { r, err := experiments.Figure7(env); return tblP(r, err) }},
		{"8", func() (*experiments.Table, error) { r, err := experiments.Figure8(env); return tblS(r, err) }},
		{"9", func() (*experiments.Table, error) { r, err := experiments.Figure9(env); return tblS(r, err) }},
		{"11", func() (*experiments.Table, error) { r, err := experiments.Figure11(env); return tblP(r, err) }},
		{"12", func() (*experiments.Table, error) { r, err := experiments.Figure12(env); return tblS(r, err) }},
		{"15", func() (*experiments.Table, error) {
			r, err := experiments.Figure15(env, dtPayload)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"16", func() (*experiments.Table, error) {
			r, err := experiments.Figure16(env, figScale, 2*float64(core.GiB))
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"17", func() (*experiments.Table, error) {
			r, err := experiments.Figure17(env)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"18", func() (*experiments.Table, error) {
			r, err := experiments.Figure18(env, epM, 64)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"topo", func() (*experiments.Table, error) {
			chunk := int64(0) // default payload
			if *fast {
				chunk = 64 * core.KiB
			}
			r, err := experiments.TopoCollectives(env, chunk)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"placement", func() (*experiments.Table, error) {
			chunk := int64(0) // default payload
			if *fast {
				chunk = 64 * core.KiB
			}
			r, err := experiments.PlacementSweep(env, chunk)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"degraded", func() (*experiments.Table, error) {
			chunk := int64(0) // default payload
			if *fast {
				chunk = 16 * core.KiB
			}
			r, err := experiments.DegradedSweep(env, chunk)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
	}

	want := strings.Split(*fig, ",")
	match := func(id string) bool {
		if *fig == "all" {
			return true
		}
		for _, w := range want {
			if strings.TrimSpace(w) == id {
				return true
			}
		}
		return false
	}
	var tables []*experiments.Table
	for _, f := range figures {
		if !match(f.id) {
			continue
		}
		t, err := f.run()
		if err != nil {
			return fmt.Errorf("figure %s: %w", f.id, err)
		}
		tables = append(tables, t)
		if !*jsonOut {
			fmt.Println(t.String())
		}
	}
	if len(tables) == 0 {
		return fmt.Errorf("no figure matches %q", *fig)
	}
	if *jsonOut {
		return emitJSON(tables)
	}
	return nil
}

func runCampaign(args []string) error {
	fs := flag.NewFlagSet("experiments campaign", flag.ExitOnError)
	op := fs.String("op", "scatter", "operation to sweep: scatter, alltoall, bcast, allreduce, pingpong")
	procsArg := fs.String("procs", "16", "comma-separated process counts, e.g. 4,8,16,32")
	sizesArg := fs.String("sizes", "64KiB,1MiB,4MiB", "comma-separated message sizes, e.g. 64KiB,1MiB")
	modelsArg := fs.String("models", "piecewise", "comma-separated surf models: piecewise,bestfit,default,ideal")
	backendsArg := fs.String("backends", "surf", "comma-separated backends: surf,openmpi,mpich2")
	platformArg := fs.String("platform", "griffon", "target platform: griffon or gdx (ignored when -topologies is set)")
	topologiesArg := fs.String("topologies", "", "comma-separated topology axis: griffon,gdx, presets (fattree16,fattree64,torus16,torus64,dragonfly72), or shapes (fattree:4x4:1x4 torus:4x4x4 dragonfly:9x4x2)")
	placementsArg := fs.String("placements", "", "comma-separated rank-placement axis: block,rr,random (empty = default layout)")
	collectivesArg := fs.String("collectives", "", "collective algorithms for every job: default, auto (topology-keyed), or overrides like bcast=ring,allreduce=auto")
	dynamicsArg := fs.String("dynamics", "", "comma-separated platform-event axis, each a dynamics schedule (\"none\" or \"@2ms link a-* scale 0.5; ...\"); schedules use ';' between events so they survive this comma-separated list")
	parallel := fs.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
	solverWorkers := fs.Int("solver-workers", 0, "per-job LMM solver worker pool (0 or 1 = serial, -1 = GOMAXPROCS); results are bit-identical at any setting")
	rateTol := fs.Float64("rate-tolerance", 0, "bounded-staleness solver tolerance eps in [0,1); 0 = exact (flows whose rate would move by less than eps keep their stale rate)")
	shardArg := fs.String("shard", "", "run only shard i/n of the expanded grid (e.g. 0/2); shard summaries merge back to the unsharded fingerprint (smpigod /v1/campaigns/merge)")
	seed := fs.Uint64("seed", 0, "campaign seed; per-job seeds derive from it")
	jsonOut := fs.Bool("json", false, "emit the full campaign summary as JSON")
	statsOn := fs.Bool("stats", false, "collect kernel counters per job and print the campaign aggregate")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and /debug/metrics on this address (e.g. localhost:6060) while running")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if err := startPprof(*pprofAddr); err != nil {
		return err
	}

	procs, err := parseInts(*procsArg)
	if err != nil {
		return fmt.Errorf("-procs: %w", err)
	}
	if strings.EqualFold(*op, "pingpong") && len(procs) > 1 {
		fmt.Fprintln(os.Stderr, "note: pingpong always runs between two fixed endpoints; ignoring the extra -procs values")
	}
	sizes, err := parseSizes(*sizesArg)
	if err != nil {
		return fmt.Errorf("-sizes: %w", err)
	}
	spec := experiments.GridSpec{
		Op:            *op,
		Procs:         procs,
		Sizes:         sizes,
		Models:        splitList(*modelsArg),
		Backends:      splitList(*backendsArg),
		Platform:      *platformArg,
		Topologies:    splitList(*topologiesArg),
		Placements:    splitList(*placementsArg),
		Collectives:   *collectivesArg,
		Dynamics:      splitList(*dynamicsArg),
		Stats:         *statsOn,
		SolverWorkers: *solverWorkers,
		RateTolerance: *rateTol,
	}
	if *shardArg != "" {
		spec.ShardIndex, spec.ShardCount, err = experiments.ParseShard(*shardArg)
		if err != nil {
			return fmt.Errorf("-shard: %w", err)
		}
	}

	env, err := experiments.NewEnv()
	if err != nil {
		return err
	}
	env.Workers = *parallel
	env.Seed = *seed
	sum, err := env.GridCampaign(spec)
	if err != nil {
		return err
	}
	if *jsonOut {
		// The summary plus its fingerprint, so scripts (the CI service-smoke
		// job) can compare batch and served runs without scraping the table.
		out := struct {
			*campaign.Summary
			Fingerprint string `json:"fingerprint"`
		}{sum, sum.Fingerprint()}
		if err := emitJSON(out); err != nil {
			return err
		}
	} else {
		fmt.Println(experiments.GridTable(spec, sum).String())
		if *statsOn {
			fmt.Println("campaign kernel counters (summed; .max keys are high-water marks):")
			fmt.Print(obs.FormatFlat(sum.Stats))
		}
	}
	if sum.Failed > 0 {
		return fmt.Errorf("%d of %d jobs failed", sum.Failed, sum.Jobs)
	}
	return nil
}

// startPprof serves the net/http/pprof handlers (registered on the default
// mux by the blank import) plus a plain-text /debug/metrics dump of the Go
// runtime metrics. Listening synchronously surfaces a bad address as a flag
// error instead of a background log line; the server then runs for the
// process lifetime — profiling a campaign means sampling while it sweeps.
func startPprof(addr string) error {
	if addr == "" {
		return nil
	}
	http.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		descs := metrics.All()
		samples := make([]metrics.Sample, len(descs))
		for i, d := range descs {
			samples[i].Name = d.Name
		}
		metrics.Read(samples)
		for _, s := range samples {
			switch s.Value.Kind() {
			case metrics.KindUint64:
				fmt.Fprintf(w, "%s %d\n", s.Name, s.Value.Uint64())
			case metrics.KindFloat64:
				fmt.Fprintf(w, "%s %g\n", s.Name, s.Value.Float64())
			}
			// Histogram-kind metrics are omitted: the pprof profiles cover
			// latency distributions far better than a text dump could.
		}
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("-pprof: %w", err)
	}
	fmt.Fprintf(os.Stderr, "pprof: serving http://%s/debug/pprof/ and /debug/metrics\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			fmt.Fprintln(os.Stderr, "pprof:", err)
		}
	}()
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseSizes(s string) ([]int64, error) {
	var out []int64
	for _, part := range splitList(s) {
		v, err := core.ParseBytes(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func emitJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func tbl(r *experiments.PingPongResult, err error) (*experiments.Table, error) {
	if err != nil {
		return nil, err
	}
	return r.Table, nil
}

func tblP(r *experiments.PerRankResult, err error) (*experiments.Table, error) {
	if err != nil {
		return nil, err
	}
	return r.Table, nil
}

func tblS(r *experiments.SweepResult, err error) (*experiments.Table, error) {
	if err != nil {
		return nil, err
	}
	return r.Table, nil
}
