// Command experiments regenerates the figures of the paper's evaluation
// (Section 7). Each figure prints as an aligned text table with the error
// summaries the paper quotes. Running with -fig all reproduces the whole
// campaign; EXPERIMENTS.md records paper-vs-measured for each figure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"smpigo/internal/core"
	"smpigo/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3,4,5,7,8,9,11,12,15,16,17,18 or all")
	fast := flag.Bool("fast", false, "reduce payloads for quicker (shape-preserving) runs")
	flag.Parse()
	if err := run(*fig, *fast); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(figArg string, fast bool) error {
	env, err := experiments.NewEnv()
	if err != nil {
		return err
	}
	dtPayload := 0 // class defaults
	epM := 22
	figScale := 1.0
	if fast {
		dtPayload = 512 * 1024
		epM = 19
		figScale = 1.0 / 16
	}

	type figure struct {
		id  string
		run func() (*experiments.Table, error)
	}
	figures := []figure{
		{"3", func() (*experiments.Table, error) { r, err := experiments.Figure3(env); return tbl(r, err) }},
		{"4", func() (*experiments.Table, error) { r, err := experiments.Figure4(env); return tbl(r, err) }},
		{"5", func() (*experiments.Table, error) { r, err := experiments.Figure5(env); return tbl(r, err) }},
		{"7", func() (*experiments.Table, error) { r, err := experiments.Figure7(env); return tblP(r, err) }},
		{"8", func() (*experiments.Table, error) { r, err := experiments.Figure8(env); return tblS(r, err) }},
		{"9", func() (*experiments.Table, error) { r, err := experiments.Figure9(env); return tblS(r, err) }},
		{"11", func() (*experiments.Table, error) { r, err := experiments.Figure11(env); return tblP(r, err) }},
		{"12", func() (*experiments.Table, error) { r, err := experiments.Figure12(env); return tblS(r, err) }},
		{"15", func() (*experiments.Table, error) {
			r, err := experiments.Figure15(env, dtPayload)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"16", func() (*experiments.Table, error) {
			r, err := experiments.Figure16(env, figScale, 2*float64(core.GiB))
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"17", func() (*experiments.Table, error) {
			r, err := experiments.Figure17(env)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"18", func() (*experiments.Table, error) {
			r, err := experiments.Figure18(env, epM, 64)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
	}

	want := strings.Split(figArg, ",")
	match := func(id string) bool {
		if figArg == "all" {
			return true
		}
		for _, w := range want {
			if strings.TrimSpace(w) == id {
				return true
			}
		}
		return false
	}
	ran := 0
	for _, f := range figures {
		if !match(f.id) {
			continue
		}
		t, err := f.run()
		if err != nil {
			return fmt.Errorf("figure %s: %w", f.id, err)
		}
		fmt.Println(t.String())
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no figure matches %q", figArg)
	}
	return nil
}

func tbl(r *experiments.PingPongResult, err error) (*experiments.Table, error) {
	if err != nil {
		return nil, err
	}
	return r.Table, nil
}

func tblP(r *experiments.PerRankResult, err error) (*experiments.Table, error) {
	if err != nil {
		return nil, err
	}
	return r.Table, nil
}

func tblS(r *experiments.SweepResult, err error) (*experiments.Table, error) {
	if err != nil {
		return nil, err
	}
	return r.Table, nil
}
