// Command smpirun runs a built-in MPI application in simulation, the
// counterpart of SMPI's smpirun launcher: it picks a target platform, a
// backend (analytical SMPI model or packet-level testbed emulation), a
// point-to-point model, and prints the predicted execution time and the
// simulation statistics.
//
// Examples:
//
//	smpirun -app pingpong -np 2 -platform griffon -model piecewise
//	smpirun -app scatter -np 16 -chunk 4MiB -backend emu
//	smpirun -app alltoall -np 64 -platform torus64
//	smpirun -app pingpong -platform fattree:4x4:1x4
//	smpirun -app alltoall -np 64 -platform fattree64 -placement rr -collectives auto
//	smpirun -app dt -graph BH -class A
//	smpirun -app ep -np 4 -ratio 0.25
//
// -placement lays ranks out over the platform (block, rr, random — see
// internal/placement); -collectives selects collective algorithm variants,
// with "auto" keying them on the platform's interconnect family.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"smpigo/internal/core"
	"smpigo/internal/dynamics"
	"smpigo/internal/experiments"
	"smpigo/internal/nas"
	"smpigo/internal/obs"
	"smpigo/internal/placement"
	"smpigo/internal/platform"
	"smpigo/internal/replay"
	"smpigo/internal/smpi"
	"smpigo/internal/surf"
	"smpigo/internal/topology"
	"smpigo/internal/trace"
)

func main() {
	var (
		appName   = flag.String("app", "pingpong", "application: pingpong, ring, scatter, alltoall, dt, ep")
		np        = flag.Int("np", 2, "number of MPI processes (ignored by dt, which sets it from -class)")
		platName  = flag.String("platform", "griffon", "target platform: griffon, gdx, a topology preset (fattree16, fattree64, torus16, torus64, dragonfly72), a topology shape (fattree:4x4:1x4 torus:4x4x4 dragonfly:9x4x2), or a platform XML file")
		backend   = flag.String("backend", "surf", "timing backend: surf (analytical SMPI) or emu (packet-level testbed)")
		modelName = flag.String("model", "piecewise", "surf model: ideal, default, bestfit, piecewise")
		noCont    = flag.Bool("no-contention", false, "disable link contention (surf backend)")
		chunk     = flag.String("chunk", "4MiB", "per-rank payload for scatter/alltoall/pingpong")
		graph     = flag.String("graph", "WH", "DT graph: WH, BH, SH")
		class     = flag.String("class", "S", "NPB class: S, W, A, B, C")
		ratio     = flag.Float64("ratio", 1.0, "EP sampling ratio (0,1]")
		fold      = flag.Bool("fold", false, "DT: use RAM folding (SMPI_SHARED_MALLOC)")
		placeArg  = flag.String("placement", "", "rank placement policy: block, rr, random (empty = default layout)")
		collArg   = flag.String("collectives", "", "collective algorithms: default, auto (topology-keyed), or overrides like bcast=ring,allreduce=auto")
		seed      = flag.Uint64("seed", 0, "deterministic seed (per-rank RNGs, random placement)")
		traceOut  = flag.String("trace", "", "record a point-to-point trace to this file (off-line simulation input)")
		replayIn  = flag.String("replay", "", "replay a recorded trace instead of running an app")
		statsOn   = flag.Bool("stats", false, "print kernel counters and the link hot-spot report after the run")
		timeline  = flag.String("timeline", "", "write a per-link/per-host utilization timeline (JSON) to this file")
		tlBucket  = flag.String("timeline-bucket", "1ms", "timeline bucket width (simulated time)")
		dynArg    = flag.String("dynamics", "", "platform event schedule: inline grammar (\"@2ms link a-* scale 0.5; ...\"), inline JSON, or a file; \"none\" disables")
		solverW   = flag.Int("solver-workers", 0, "LMM solver worker pool (0 or 1 = serial, -1 = GOMAXPROCS); results are bit-identical at any setting")
		rateTol   = flag.Float64("rate-tolerance", 0, "bounded-staleness solver tolerance eps in [0,1); 0 = exact (flows whose rate would move by less than eps keep their stale rate)")
	)
	flag.Parse()
	if err := run(*appName, *np, *platName, *backend, *modelName, *noCont, *chunk, *graph, *class, *ratio, *fold, *placeArg, *collArg, *seed, *traceOut, *replayIn, *statsOn, *timeline, *tlBucket, *dynArg, *solverW, *rateTol); err != nil {
		fmt.Fprintln(os.Stderr, "smpirun:", err)
		os.Exit(1)
	}
}

func loadPlatform(name string) (*platform.Platform, error) {
	switch name {
	case "griffon":
		return platform.Griffon().Build()
	case "gdx":
		return platform.Gdx().Build()
	}
	spec, topoErr := topology.ParseSpec(name)
	if topoErr == nil {
		return spec.Build()
	}
	if strings.Contains(name, ":") {
		// The topology shape grammar, just malformed: surface the parse
		// diagnostic rather than a pointless file-open failure.
		return nil, topoErr
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, fmt.Errorf("platform %q is neither a known name nor a readable file (%v; %v)", name, topoErr, err)
	}
	defer f.Close()
	specs, err := platform.ReadXML(f)
	if err != nil {
		return nil, err
	}
	return specs[0].Build()
}

func pickModel(name string) (surf.NetModel, error) {
	if name == "ideal" {
		return surf.Ideal(), nil
	}
	env, err := experiments.NewEnv()
	if err != nil {
		return surf.NetModel{}, fmt.Errorf("calibration: %w", err)
	}
	switch name {
	case "default":
		return env.Default, nil
	case "bestfit":
		return env.BestFit, nil
	case "piecewise":
		return env.Piecewise, nil
	}
	return surf.NetModel{}, fmt.Errorf("unknown model %q", name)
}

func run(appName string, np int, platName, backend, modelName string, noCont bool,
	chunkStr, graph, class string, ratio float64, fold bool,
	placeArg, collArg string, seed uint64, traceOut, replayIn string,
	statsOn bool, timelineOut, tlBucket, dynArg string, solverWorkers int, rateTol float64) error {
	plat, err := loadPlatform(platName)
	if err != nil {
		return err
	}
	cfg := smpi.Config{Procs: np, Platform: plat, NoContention: noCont, Seed: seed,
		SolverWorkers: solverWorkers, RateTolerance: rateTol}
	if dynArg != "" {
		sched, err := dynamics.Load(dynArg)
		if err != nil {
			return fmt.Errorf("bad -dynamics: %w", err)
		}
		cfg.Dynamics = sched
		if sched != nil {
			fmt.Printf("dynamics           : %d platform events\n", len(sched.Events))
		}
	}

	// Observability is opt-in: without -stats/-timeline the simulation runs
	// with every instrumentation hook compiled down to a nil check.
	var st *obs.Stats
	var observer *obs.Observer
	var tl *obs.Timeline
	if statsOn || timelineOut != "" {
		st = &obs.Stats{}
		cfg.Stats = st
		observer = obs.NewObserver(plat)
		cfg.Usage = observer
		if timelineOut != "" {
			width, err := core.ParseDuration(tlBucket)
			if err != nil {
				return fmt.Errorf("bad -timeline-bucket %q: %v", tlBucket, err)
			}
			if width <= 0 {
				return fmt.Errorf("bad -timeline-bucket %q: width must be positive", tlBucket)
			}
			tl = obs.NewTimeline(plat, width)
			cfg.Usage = obs.Multi(observer, tl)
		}
	}
	// finishObs emits the reports after either the app or the replay path.
	finishObs := func() error {
		if st == nil {
			return nil
		}
		if statsOn {
			fmt.Printf("--- kernel counters ---\n%s", st.Report())
			fmt.Printf("--- link hot spots ---\n%s", observer.HotSpots(10))
		}
		if tl != nil {
			f, err := os.Create(timelineOut)
			if err != nil {
				return err
			}
			if err := tl.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("timeline written   : %s\n", timelineOut)
		}
		return nil
	}
	if cfg.Algorithms, err = smpi.ParseAlgorithms(collArg); err != nil {
		return err
	}
	switch backend {
	case "surf":
		cfg.Backend = smpi.BackendSurf
		if cfg.Model, err = pickModel(modelName); err != nil {
			return err
		}
	case "emu":
		cfg.Backend = smpi.BackendEmu
	default:
		return fmt.Errorf("unknown backend %q", backend)
	}
	chunk, err := core.ParseBytes(chunkStr)
	if err != nil {
		return err
	}

	var app func(*smpi.Rank)
	switch appName {
	case "pingpong":
		cfg.Procs = 2
		app = func(r *smpi.Rank) {
			c := r.Comm()
			buf := make([]byte, chunk)
			if r.Rank() == 0 {
				r.Send(c, buf, 1, 0)
				r.Recv(c, buf, 1, 0)
			} else {
				r.Recv(c, buf, 0, 0)
				r.Send(c, buf, 0, 0)
			}
		}
	case "ring":
		app = func(r *smpi.Rank) {
			c := r.Comm()
			buf := make([]byte, chunk)
			next := (r.Rank() + 1) % r.Size()
			prev := (r.Rank() - 1 + r.Size()) % r.Size()
			if r.Rank() == 0 {
				r.Send(c, buf, next, 0)
				r.Recv(c, buf, prev, 0)
			} else {
				r.Recv(c, buf, prev, 0)
				r.Send(c, buf, next, 0)
			}
		}
	case "scatter":
		app = func(r *smpi.Rank) {
			c := r.Comm()
			var sendbuf []byte
			if r.Rank() == 0 {
				sendbuf = make([]byte, int64(r.Size())*chunk)
			}
			recvbuf := make([]byte, chunk)
			c.Barrier(r)
			c.Scatter(r, sendbuf, recvbuf, 0)
		}
	case "alltoall":
		app = func(r *smpi.Rank) {
			c := r.Comm()
			sendbuf := make([]byte, int64(r.Size())*chunk)
			recvbuf := make([]byte, int64(r.Size())*chunk)
			c.Barrier(r)
			c.Alltoall(r, sendbuf, recvbuf)
		}
	case "dt":
		dcfg := nas.DTConfig{Graph: nas.DTGraph(graph), Class: nas.DTClass(class[0]), Fold: fold}
		procs, err := nas.DTProcs(dcfg.Graph, dcfg.Class)
		if err != nil {
			return err
		}
		cfg.Procs = procs
		app, _ = nas.DT(dcfg)
	case "ep":
		a, _ := nas.EP(nas.EPConfig{M: 20, Iterations: 64, SampleRatio: ratio})
		app = a
	default:
		return fmt.Errorf("unknown app %q", appName)
	}

	// applyPlacement pins ranks via the -placement policy; procs varies by
	// path (the app's rank count, or the replayed trace's).
	applyPlacement := func(procs int) error {
		if placeArg == "" {
			return nil
		}
		hosts, err := placement.Generate(placeArg, plat, procs, seed)
		if err != nil {
			return err
		}
		cfg.Hosts = hosts
		return nil
	}
	if collArg != "" {
		fmt.Printf("collectives        : %s\n", cfg.Algorithms.Resolve(plat.Topo).Summary())
	}

	if replayIn != "" {
		f, err := os.Open(replayIn)
		if err != nil {
			return err
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		if err := applyPlacement(tr.Procs); err != nil {
			return err
		}
		rep, err := replay.Run(tr, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("replayed trace     : %s (np=%d, %d events) on %s [%s backend]\n",
			replayIn, tr.Procs, tr.Events(), plat.Name, backend)
		fmt.Printf("simulated time     : %v\n", rep.SimulatedTime)
		fmt.Printf("simulation wall    : %v\n", rep.WallTime)
		return finishObs()
	}
	if err := applyPlacement(cfg.Procs); err != nil {
		return err
	}
	var rec *trace.Trace
	if traceOut != "" {
		rec = trace.New(cfg.Procs)
		cfg.Tracer = rec
	}

	rep, err := smpi.Run(cfg, app)
	if err != nil {
		return err
	}
	if rec != nil {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := rec.Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written      : %s (%d events)\n", traceOut, rec.Events())
	}
	fmt.Printf("application        : %s (np=%d) on %s [%s backend]\n", appName, cfg.Procs, plat.Name, backend)
	if placeArg != "" {
		fmt.Printf("placement          : %s (rank 0 on %s)\n", placeArg, cfg.Hosts[0].Name())
	}
	fmt.Printf("simulated time     : %v\n", rep.SimulatedTime)
	fmt.Printf("simulation wall    : %v\n", rep.WallTime)
	fmt.Printf("messages / bytes   : %d / %s\n", rep.Messages, core.FormatBytes(rep.BytesOnWire))
	if rep.MaxPeakRSS > 0 {
		fmt.Printf("max RSS per rank   : %.1f MiB\n", rep.MaxPeakRSS/float64(core.MiB))
	}
	if rep.BurstsExecuted+rep.BurstsReplayed > 0 {
		fmt.Printf("bursts exec/replay : %d / %d\n", rep.BurstsExecuted, rep.BurstsReplayed)
	}
	return finishObs()
}
