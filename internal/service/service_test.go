package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"smpigo/internal/campaign"
	"smpigo/internal/experiments"
)

// testSpec is a cheap 4-job grid (2 sizes × 2 models, surf pingpong on the
// calibrated griffon cluster) already in canonical axis order, so the batch
// path runs the exact spec the service runs.
func testSpec() experiments.GridSpec {
	return experiments.GridSpec{
		Op:       "pingpong",
		Procs:    []int{2},
		Sizes:    []int64{64 * 1024, 1024 * 1024},
		Models:   []string{"bestfit", "piecewise"},
		Backends: []string{"surf"},
		Platform: "griffon",
	}
}

func testEnv(t *testing.T) *experiments.Env {
	t.Helper()
	env, err := experiments.NewEnv()
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Env == nil {
		cfg.Env = testEnv(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func doJSON(t *testing.T, h http.Handler, method, target string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = strings.NewReader(string(raw))
	} else {
		rd = strings.NewReader("")
	}
	req := httptest.NewRequest(method, target, rd)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decodeView(t *testing.T, w *httptest.ResponseRecorder) campaignView {
	t.Helper()
	var v campaignView
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("bad response %q: %v", w.Body.String(), err)
	}
	return v
}

func submitBody(spec experiments.GridSpec, seed uint64) submitRequest {
	return submitRequest{Spec: spec, Seed: seed}
}

// pollStatus waits for the campaign to reach one of the given states.
func pollStatus(t *testing.T, h http.Handler, id string, want ...string) campaignView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		v := decodeView(t, doJSON(t, h, "GET", "/v1/campaigns/"+id, nil))
		for _, st := range want {
			if v.Status == st {
				return v
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck at %q, want one of %v", id, v.Status, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServedFingerprintMatchesBatch(t *testing.T) {
	env := testEnv(t)
	s := newTestServer(t, Config{Env: env})
	h := s.Handler()

	w := doJSON(t, h, "POST", "/v1/campaigns?wait=1", submitBody(testSpec(), 31))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Smpigod-Cache"); got != "miss" {
		t.Errorf("first submission cache header %q, want miss", got)
	}
	v := decodeView(t, w)
	if v.Status != statusDone || v.Jobs != 4 || v.Fingerprint == "" || v.Summary == nil {
		t.Fatalf("unexpected view: %+v", v)
	}

	canonical, err := testSpec().Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(31)
	sum, err := env.GridCampaignOpts(canonical, experiments.CampaignOptions{Seed: &seed})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := v.Fingerprint, sum.Fingerprint(); got != want {
		t.Errorf("served fingerprint %s, batch fingerprint %s — the service must reproduce the batch path bit for bit", got, want)
	}
}

func TestCacheHitCollapsesEquivalentSpecs(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	first := doJSON(t, h, "POST", "/v1/campaigns?wait=1", submitBody(testSpec(), 7))
	if first.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", first.Code, first.Body.String())
	}
	fp := decodeView(t, first).Fingerprint

	// The same grid spelled differently: scrambled case, reversed and
	// duplicated axis values, default platform left implicit.
	scrambled := experiments.GridSpec{
		Op:       "PingPong",
		Procs:    []int{2, 2},
		Sizes:    []int64{1024 * 1024, 64 * 1024, 64 * 1024},
		Models:   []string{"Piecewise", "BESTFIT"},
		Backends: []string{"surf"},
	}
	second := doJSON(t, h, "POST", "/v1/campaigns?wait=1", submitBody(scrambled, 7))
	if second.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", second.Code, second.Body.String())
	}
	if got := second.Header().Get("X-Smpigod-Cache"); got != "hit" {
		t.Fatalf("equivalent respelled spec: cache header %q, want hit", got)
	}
	v := decodeView(t, second)
	if !v.Cached || v.Fingerprint != fp {
		t.Errorf("cached view = cached:%v fingerprint:%s, want cached:true fingerprint:%s", v.Cached, v.Fingerprint, fp)
	}
	if hits := s.Stats().CacheHits.Load(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}

	// A different seed is a different campaign: never served from the cache.
	third := doJSON(t, h, "POST", "/v1/campaigns?wait=1", submitBody(testSpec(), 8))
	if got := third.Header().Get("X-Smpigod-Cache"); got != "miss" {
		t.Errorf("different seed: cache header %q, want miss", got)
	}
	if decodeView(t, third).Fingerprint == fp {
		t.Error("different seed produced the same fingerprint")
	}

	stats := doJSON(t, h, "GET", "/v1/stats", nil)
	var flat map[string]float64
	if err := json.Unmarshal(stats.Body.Bytes(), &flat); err != nil {
		t.Fatal(err)
	}
	if flat["service.cache.hits"] < 1 {
		t.Errorf("stats endpoint reports %v cache hits, want >= 1", flat["service.cache.hits"])
	}
}

func TestQueueBoundRejectsWith429(t *testing.T) {
	s := newTestServer(t, Config{QueueDepth: 1})
	block := make(chan struct{})
	real := s.runGrid
	s.runGrid = func(spec experiments.GridSpec, o experiments.CampaignOptions) (*campaign.Summary, error) {
		<-block
		return real(spec, o)
	}
	h := s.Handler()

	// First campaign occupies the runner (blocked above), second fills the
	// one-deep queue, third must bounce.
	w1 := doJSON(t, h, "POST", "/v1/campaigns", submitBody(testSpec(), 1))
	if w1.Code != http.StatusAccepted {
		t.Fatalf("first submission: status %d, body %s", w1.Code, w1.Body.String())
	}
	id1 := decodeView(t, w1).ID
	pollStatus(t, h, id1, statusRunning)

	w2 := doJSON(t, h, "POST", "/v1/campaigns", submitBody(testSpec(), 2))
	if w2.Code != http.StatusAccepted {
		t.Fatalf("second submission: status %d, body %s", w2.Code, w2.Body.String())
	}
	id2 := decodeView(t, w2).ID

	// An identical spec+seed coalesces onto the queued campaign instead of
	// consuming queue space.
	wc := doJSON(t, h, "POST", "/v1/campaigns", submitBody(testSpec(), 2))
	if got := wc.Header().Get("X-Smpigod-Cache"); got != "coalesced" {
		t.Errorf("duplicate in-flight submission: cache header %q, want coalesced", got)
	}
	if got := decodeView(t, wc).ID; got != id2 {
		t.Errorf("coalesced submission returned id %s, want %s", got, id2)
	}

	w3 := doJSON(t, h, "POST", "/v1/campaigns", submitBody(testSpec(), 3))
	if w3.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow submission: status %d, want 429 (body %s)", w3.Code, w3.Body.String())
	}
	if w3.Header().Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After header")
	}
	if rej := s.Stats().Rejected.Load(); rej != 1 {
		t.Errorf("rejected counter = %d, want 1", rej)
	}

	close(block)
	pollStatus(t, h, id1, statusDone)
	pollStatus(t, h, id2, statusDone)
}

func TestShardMergeViaAPI(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	full := decodeView(t, doJSON(t, h, "POST", "/v1/campaigns?wait=1", submitBody(testSpec(), 31)))
	if full.Status != statusDone {
		t.Fatalf("unsharded campaign: %+v", full)
	}

	ids := make([]string, 2)
	jobs := 0
	for i := range ids {
		req := submitBody(testSpec(), 31)
		req.Shard = fmt.Sprintf("%d/2", i)
		v := decodeView(t, doJSON(t, h, "POST", "/v1/campaigns?wait=1", req))
		if v.Status != statusDone {
			t.Fatalf("shard %d/2: %+v", i, v)
		}
		if v.Fingerprint == full.Fingerprint {
			t.Fatalf("shard %d/2 has the unsharded fingerprint; sharding did nothing", i)
		}
		ids[i] = v.ID
		jobs += v.Jobs
	}
	if jobs != full.Jobs {
		t.Fatalf("shards hold %d jobs, want %d", jobs, full.Jobs)
	}

	merged := doJSON(t, h, "POST", "/v1/campaigns/merge", mergeRequest{IDs: ids})
	if merged.Code != http.StatusOK {
		t.Fatalf("merge: status %d, body %s", merged.Code, merged.Body.String())
	}
	var mv mergeView
	if err := json.Unmarshal(merged.Body.Bytes(), &mv); err != nil {
		t.Fatal(err)
	}
	if mv.Fingerprint != full.Fingerprint {
		t.Errorf("merged shard fingerprint %s, want unsharded %s", mv.Fingerprint, full.Fingerprint)
	}

	if w := doJSON(t, h, "POST", "/v1/campaigns/merge", mergeRequest{IDs: []string{"nope"}}); w.Code != http.StatusNotFound {
		t.Errorf("merge of unknown id: status %d, want 404", w.Code)
	}
	// Merging the same shard twice overlaps job ids — a merge-layer conflict.
	if w := doJSON(t, h, "POST", "/v1/campaigns/merge", mergeRequest{IDs: []string{ids[0], ids[0]}}); w.Code != http.StatusConflict {
		t.Errorf("merge with duplicate shard: status %d, want 409", w.Code)
	}
}

func TestStreamNDJSON(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	w := doJSON(t, h, "POST", "/v1/campaigns?stream=ndjson", submitBody(testSpec(), 5))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q, want application/x-ndjson", ct)
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d NDJSON lines, want 4 job results + 1 summary:\n%s", len(lines), w.Body.String())
	}
	seen := make(map[int]bool)
	for _, line := range lines[:4] {
		var sr streamedResult
		if err := json.Unmarshal([]byte(line), &sr); err != nil {
			t.Fatalf("bad job line %q: %v", line, err)
		}
		if seen[sr.I] {
			t.Errorf("job index %d streamed twice", sr.I)
		}
		seen[sr.I] = true
		if sr.Result.Err != nil || sr.Result.Error != "" {
			t.Errorf("job %d failed: %v %s", sr.I, sr.Result.Err, sr.Result.Error)
		}
	}
	var final campaignView
	if err := json.Unmarshal([]byte(lines[4]), &final); err != nil {
		t.Fatalf("bad final line %q: %v", lines[4], err)
	}
	if final.Status != statusDone || final.Fingerprint == "" {
		t.Errorf("final stream line: %+v", final)
	}
}

func TestCancelEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	block := make(chan struct{})
	t.Cleanup(func() { close(block) })
	s.runGrid = func(spec experiments.GridSpec, o experiments.CampaignOptions) (*campaign.Summary, error) {
		select {
		case <-block:
		case <-o.Ctx.Done():
		}
		return &campaign.Summary{Seed: *o.Seed, Canceled: true}, nil
	}
	h := s.Handler()

	id := decodeView(t, doJSON(t, h, "POST", "/v1/campaigns", submitBody(testSpec(), 9))).ID
	pollStatus(t, h, id, statusRunning)
	if w := doJSON(t, h, "DELETE", "/v1/campaigns/"+id, nil); w.Code != http.StatusAccepted {
		t.Fatalf("cancel: status %d, body %s", w.Code, w.Body.String())
	}
	v := pollStatus(t, h, id, statusCanceled)
	if v.Error == "" {
		t.Error("canceled campaign reports no error cause")
	}
	if got := s.Stats().Canceled.Load(); got != 1 {
		t.Errorf("canceled counter = %d, want 1", got)
	}
	// Canceled campaigns must never satisfy a repeat query from the cache.
	if w := doJSON(t, h, "POST", "/v1/campaigns", submitBody(testSpec(), 9)); w.Header().Get("X-Smpigod-Cache") == "hit" {
		t.Error("repeat of a canceled campaign was served from the cache")
	}

	if w := doJSON(t, h, "DELETE", "/v1/campaigns/zzz", nil); w.Code != http.StatusNotFound {
		t.Errorf("cancel unknown id: status %d, want 404", w.Code)
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	cases := []struct {
		name string
		body string
	}{
		{"empty", ``},
		{"unknown field", `{"spec": {"op": "pingpong", "procs": [2], "sizes": [64]}, "sed": 1}`},
		{"bad op", `{"spec": {"op": "gossip", "procs": [2], "sizes": [64]}, "seed": 1}`},
		{"bad shard", `{"spec": {"op": "pingpong", "procs": [2], "sizes": [64]}, "seed": 1, "shard": "2"}`},
		{"shard out of range", `{"spec": {"op": "pingpong", "procs": [2], "sizes": [64]}, "seed": 1, "shard": "3/2"}`},
	}
	for _, tc := range cases {
		req := httptest.NewRequest("POST", "/v1/campaigns", strings.NewReader(tc.body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, w.Code, w.Body.String())
		}
	}
	if w := doJSON(t, h, "GET", "/v1/campaigns/zzz", nil); w.Code != http.StatusNotFound {
		t.Errorf("get unknown id: status %d, want 404", w.Code)
	}
	if w := doJSON(t, h, "GET", "/healthz", nil); w.Code != http.StatusOK {
		t.Errorf("healthz: status %d, want 200", w.Code)
	}
}

func TestListCampaigns(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	doJSON(t, h, "POST", "/v1/campaigns?wait=1", submitBody(testSpec(), 41))
	doJSON(t, h, "POST", "/v1/campaigns?wait=1", submitBody(testSpec(), 42))
	w := doJSON(t, h, "GET", "/v1/campaigns", nil)
	var views []campaignView
	if err := json.Unmarshal(w.Body.Bytes(), &views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 2 {
		t.Fatalf("listed %d campaigns, want 2", len(views))
	}
	if views[0].ID != "c1" || views[1].ID != "c2" {
		t.Errorf("list order %s, %s; want c1, c2", views[0].ID, views[1].ID)
	}
}
