package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"smpigo/internal/campaign"
	"smpigo/internal/experiments"
	"smpigo/internal/obs"
)

// Config parameterizes a Server. The zero value works: defaults are filled
// in by New.
type Config struct {
	// Env is the shared experiment environment (calibrated models, cached
	// platforms). nil builds the process-wide one via experiments.NewEnv.
	Env *experiments.Env
	// QueueDepth bounds how many campaigns may wait behind the running one;
	// submissions beyond it get 429 + Retry-After. Default 16.
	QueueDepth int
	// CacheSize bounds the result cache (completed summaries held for
	// fingerprint-keyed hits, LRU-evicted). Default 128. 0 keeps the
	// default; negative disables caching.
	CacheSize int
	// Workers is each campaign's worker-pool size (campaign.Options);
	// 0 means GOMAXPROCS. Results are bit-identical at any setting.
	Workers int
	// Stats receives the service counters; nil allocates a private one.
	Stats *obs.ServiceStats
}

// Server is the campaign service: a bounded queue of campaign runs, a
// single runner draining it, and a fingerprint-input-keyed result cache.
// Create with New, serve via Handler, stop with Close.
type Server struct {
	env     *experiments.Env
	stats   *obs.ServiceStats
	workers int
	// runGrid executes one campaign; defaults to env.GridCampaignOpts.
	// Tests swap it to control runner timing.
	runGrid func(experiments.GridSpec, experiments.CampaignOptions) (*campaign.Summary, error)

	baseCtx context.Context
	stop    context.CancelCauseFunc

	queue      chan *record
	running    atomic.Int32
	runnerDone chan struct{}
	start      time.Time

	mu         sync.Mutex
	closed     bool
	byID       map[string]*record
	idOrder    []string // creation order, for eviction and listing
	historyMax int
	inflight   map[string]*record // key -> queued-or-running record
	cache      *resultCache
	nextID     int
}

// campaign lifecycle states as reported by the API.
const (
	statusQueued   = "queued"
	statusRunning  = "running"
	statusDone     = "done"
	statusCanceled = "canceled"
	statusFailed   = "failed"
)

// record is one accepted campaign: its canonical spec, queue/run state, and
// — once finished — its summary and fingerprint.
type record struct {
	id      string
	key     string
	spec    experiments.GridSpec // canonical; what actually runs
	seed    uint64
	jobs    int
	created time.Time
	ctx     context.Context
	cancel  context.CancelCauseFunc

	mu          sync.Mutex
	status      string
	results     []streamedResult // completion-order results so far
	subs        map[chan streamedResult]bool
	finished    bool
	summary     *campaign.Summary
	fingerprint string
	err         error
	done        chan struct{}
}

// streamedResult pairs a job's submission index with its result, the unit
// of the NDJSON stream.
type streamedResult struct {
	I      int             `json:"i"`
	Result campaign.Result `json:"result"`
}

// New builds a Server and starts its runner goroutine.
func New(cfg Config) (*Server, error) {
	env := cfg.Env
	if env == nil {
		var err error
		if env, err = experiments.NewEnv(); err != nil {
			return nil, err
		}
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	switch {
	case cfg.CacheSize == 0:
		cfg.CacheSize = 128
	case cfg.CacheSize < 0:
		cfg.CacheSize = 0
	}
	stats := cfg.Stats
	if stats == nil {
		stats = new(obs.ServiceStats)
	}
	ctx, stop := context.WithCancelCause(context.Background())
	s := &Server{
		env:        env,
		stats:      stats,
		workers:    cfg.Workers,
		baseCtx:    ctx,
		stop:       stop,
		queue:      make(chan *record, cfg.QueueDepth),
		runnerDone: make(chan struct{}),
		start:      time.Now(),
		byID:       make(map[string]*record),
		historyMax: max(4*cfg.CacheSize, 4*cfg.QueueDepth, 64),
		inflight:   make(map[string]*record),
		cache:      newResultCache(cfg.CacheSize),
	}
	s.runGrid = s.env.GridCampaignOpts
	go s.run()
	return s, nil
}

// Close shuts the service down: the running campaign's context is canceled
// (in-flight jobs finish, the rest drain as skipped), queued campaigns run
// under the already-canceled context (immediately skipping everything), and
// Close returns when the runner has exited. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.stop(errors.New("service shutting down"))
		close(s.queue)
	}
	s.mu.Unlock()
	<-s.runnerDone
}

// Stats returns the service counter set (live; callers may read at any
// time).
func (s *Server) Stats() *obs.ServiceStats { return s.stats }

// errQueueFull is returned by submit when the queue is at its bound; the
// HTTP layer maps it to 429 + Retry-After.
type errQueueFull struct{ depth int }

func (e errQueueFull) Error() string {
	return fmt.Sprintf("campaign queue full (%d pending); retry later", e.depth)
}

// errClosed is returned once Close began.
var errClosed = errors.New("service is shutting down")

// submit registers a campaign for the canonical spec and seed. The bool
// reports whether an identical campaign was already queued or running
// (coalesced) instead of newly enqueued. The caller has already checked the
// result cache.
func (s *Server) submit(spec experiments.GridSpec, key string, seed uint64, jobs int) (*record, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, errClosed
	}
	if rec, ok := s.inflight[key]; ok {
		s.stats.Coalesced.Add(1)
		return rec, true, nil
	}
	s.nextID++
	ctx, cancel := context.WithCancelCause(s.baseCtx)
	rec := &record{
		id:      fmt.Sprintf("c%d", s.nextID),
		key:     key,
		spec:    spec,
		seed:    seed,
		jobs:    jobs,
		created: time.Now(),
		ctx:     ctx,
		cancel:  cancel,
		status:  statusQueued,
		subs:    make(map[chan streamedResult]bool),
		done:    make(chan struct{}),
	}
	select {
	case s.queue <- rec:
	default:
		cancel(nil)
		s.nextID--
		s.stats.Rejected.Add(1)
		return nil, false, errQueueFull{depth: len(s.queue)}
	}
	s.stats.Campaigns.Add(1)
	s.stats.ObserveQueueDepth(len(s.queue) + int(s.running.Load()))
	s.inflight[key] = rec
	s.byID[rec.id] = rec
	s.idOrder = append(s.idOrder, rec.id)
	// Bound the record history: the cache bounds summaries, this bounds the
	// id-indexed metadata, so a long-running service never grows without
	// limit. Records still queued or running are never this old.
	for len(s.idOrder) > s.historyMax {
		delete(s.byID, s.idOrder[0])
		s.idOrder = s.idOrder[1:]
	}
	return rec, false, nil
}

// lookup resolves a campaign id.
func (s *Server) lookup(id string) (*record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.byID[id]
	return rec, ok
}

// cacheGet consults the result cache.
func (s *Server) cacheGet(key string) (*record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.cache.get(key)
	if ok {
		s.stats.CacheHits.Add(1)
	} else {
		s.stats.CacheMisses.Add(1)
	}
	return rec, ok
}

// run is the queue runner: campaigns execute one at a time in arrival
// order, each fanning its jobs out over the configured worker pool.
func (s *Server) run() {
	defer close(s.runnerDone)
	for rec := range s.queue {
		s.runOne(rec)
	}
}

func (s *Server) runOne(rec *record) {
	s.running.Store(1)
	defer s.running.Store(0)
	rec.setStatus(statusRunning)
	seed := rec.seed
	sum, err := s.runGrid(rec.spec, experiments.CampaignOptions{
		Ctx:      rec.ctx,
		Workers:  s.workers,
		Seed:     &seed,
		OnResult: func(i int, r campaign.Result) { rec.emit(i, r) },
	})
	switch {
	case err != nil:
		// The spec was validated at submission, so this is unexpected —
		// surface it as the campaign's failure.
		rec.finish(statusFailed, nil, "", err)
	case sum.Canceled:
		s.stats.Canceled.Add(1)
		rec.finish(statusCanceled, sum, "", context.Cause(rec.ctx))
	default:
		s.stats.JobsRun.Add(uint64(sum.Jobs))
		rec.finish(statusDone, sum, sum.Fingerprint(), nil)
	}
	s.mu.Lock()
	if rec.statusNow() == statusDone {
		s.cache.put(rec.key, rec)
	}
	delete(s.inflight, rec.key)
	s.mu.Unlock()
}

func (rec *record) setStatus(st string) {
	rec.mu.Lock()
	rec.status = st
	rec.mu.Unlock()
}

func (rec *record) statusNow() string {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.status
}

// emit forwards one completed job to the stream subscribers. Subscriber
// channels are buffered to the campaign's full job count, so the sends
// below never block the worker pool.
func (rec *record) emit(i int, r campaign.Result) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	sr := streamedResult{I: i, Result: r}
	rec.results = append(rec.results, sr)
	for ch := range rec.subs {
		ch <- sr
	}
}

// finish records the campaign's terminal state and releases waiters and
// subscribers.
func (rec *record) finish(st string, sum *campaign.Summary, fingerprint string, err error) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.status = st
	rec.summary = sum
	rec.fingerprint = fingerprint
	rec.err = err
	rec.finished = true
	for ch := range rec.subs {
		close(ch)
		delete(rec.subs, ch)
	}
	close(rec.done)
}

// subscribe returns the results streamed so far plus a live channel for the
// rest (nil when the campaign already finished — past holds everything).
// The unsubscribe func is safe to call regardless.
func (rec *record) subscribe() (past []streamedResult, ch chan streamedResult, unsubscribe func()) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	past = append(past, rec.results...)
	if rec.finished {
		return past, nil, func() {}
	}
	ch = make(chan streamedResult, rec.jobs+1)
	rec.subs[ch] = true
	return past, ch, func() {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		if rec.subs[ch] {
			delete(rec.subs, ch)
		}
	}
}
