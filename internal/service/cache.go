package service

import "container/list"

// resultCache is a plain LRU over completed campaign records, keyed by
// campaign fingerprint-input (experiments.GridSpec.CampaignKey). Only
// successfully completed campaigns enter it — canceled or failed runs are
// partial and must never satisfy a repeat query. The zero bound means
// "don't cache".
type resultCache struct {
	max     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

type cacheEntry struct {
	key string
	rec *record
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, order: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached record for key and refreshes its recency.
func (c *resultCache) get(key string) (*record, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).rec, true
}

// put inserts (or refreshes) a completed record, evicting the least
// recently used entry beyond the bound.
func (c *resultCache) put(key string, rec *record) {
	if c.max <= 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).rec = rec
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, rec: rec})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int { return c.order.Len() }
