// Package service turns the batch campaign engine into a long-running
// simulation service: an HTTP/JSON server (cmd/smpigod) that accepts
// experiments.GridSpec campaigns, runs them on a bounded queue over
// internal/campaign's worker pool, streams per-job results as NDJSON, and
// caches summaries by campaign fingerprint-input.
//
// The cache is the piece the repo's determinism work already paid for:
// identical (canonical spec, seed) pairs produce bit-identical summaries at
// any -parallel and any SolverWorkers setting, so serving a repeat what-if
// query from the cache is provably indistinguishable from re-simulating it
// — cache hits cost zero simulation and can never be wrong. Requests are
// canonicalized before keying AND before running (experiments.Canonicalize),
// so axis order, duplicates, case, and alias spellings all collapse onto
// one entry.
//
// Sharding rides on the same contract: a spec carrying shard i/n runs the
// grid's job-index range [i·P/n, (i+1)·P/n) with the unsharded job IDs and
// seeds, so the merge endpoint (campaign.Merge over the shard summaries)
// reproduces the unsharded fingerprint exactly — the property the CI
// service-smoke job gates.
//
// Concurrency model: HTTP handlers validate, key, and enqueue; one runner
// goroutine executes campaigns in arrival order, each fanning its jobs out
// over the configured worker pool. The queue is bounded — requests beyond
// the bound get 429 with Retry-After, never unbounded memory — and
// identical in-flight requests coalesce onto the queued campaign instead of
// queueing twice. Shutdown cancels the runner's context: in-flight jobs
// finish, everything else drains as skipped (campaign.RunAll), and canceled
// summaries are never cached.
package service
