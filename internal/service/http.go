package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"smpigo/internal/campaign"
	"smpigo/internal/experiments"
)

// submitRequest is the POST /v1/campaigns body: the GridSpec grammar plus
// the campaign seed and an optional "i/n" shard shorthand (equivalent to
// setting spec.shard_index/shard_count).
type submitRequest struct {
	Spec  experiments.GridSpec `json:"spec"`
	Seed  uint64               `json:"seed"`
	Shard string               `json:"shard,omitempty"`
}

// campaignView is the API's rendering of a campaign record.
type campaignView struct {
	ID      string               `json:"id"`
	Key     string               `json:"key"`
	Status  string               `json:"status"`
	Cached  bool                 `json:"cached,omitempty"`
	Jobs    int                  `json:"jobs"`
	Done    int                  `json:"done_jobs"`
	Seed    uint64               `json:"seed"`
	Spec    experiments.GridSpec `json:"spec"`
	Created time.Time            `json:"created"`
	// Fingerprint and Summary are present once the campaign completed.
	Fingerprint string            `json:"fingerprint,omitempty"`
	Error       string            `json:"error,omitempty"`
	Summary     *campaign.Summary `json:"summary,omitempty"`
}

// mergeRequest is the POST /v1/campaigns/merge body: completed campaign ids
// in shard order.
type mergeRequest struct {
	IDs []string `json:"ids"`
}

type mergeView struct {
	IDs         []string          `json:"ids"`
	Fingerprint string            `json:"fingerprint"`
	Summary     *campaign.Summary `json:"summary"`
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/campaigns         submit a campaign (?wait=1 to block for the
//	                             summary, ?stream=ndjson for per-job results)
//	GET    /v1/campaigns         list known campaigns, newest last
//	GET    /v1/campaigns/{id}    one campaign's status/summary
//	DELETE /v1/campaigns/{id}    cancel a queued or running campaign
//	POST   /v1/campaigns/merge   merge completed shard campaigns
//	GET    /v1/stats             service counters (flat map)
//	GET    /healthz              liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", s.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/campaigns/merge", s.handleMerge)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "uptime_s": time.Since(s.start).Seconds()})
	})
	return mux
}

func (rec *record) view(withSummary bool) campaignView {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	v := campaignView{
		ID:          rec.id,
		Key:         rec.key,
		Status:      rec.status,
		Jobs:        rec.jobs,
		Done:        len(rec.results),
		Seed:        rec.seed,
		Spec:        rec.spec,
		Created:     rec.created,
		Fingerprint: rec.fingerprint,
	}
	if rec.finished {
		v.Done = rec.jobs
	}
	if rec.err != nil {
		v.Error = rec.err.Error()
	}
	if withSummary {
		v.Summary = rec.summary
	}
	return v
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Shard != "" {
		idx, count, err := experiments.ParseShard(req.Shard)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		req.Spec.ShardIndex, req.Spec.ShardCount = idx, count
	}
	spec, err := req.Spec.Canonicalize()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	jobs, err := spec.Jobs()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := spec.CampaignKey(req.Seed)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}

	stream := r.URL.Query().Get("stream") != ""
	wait := stream || r.URL.Query().Get("wait") != ""

	if rec, ok := s.cacheGet(key); ok {
		w.Header().Set("X-Smpigod-Cache", "hit")
		if stream {
			s.streamCampaign(w, r, rec, true)
			return
		}
		v := rec.view(true)
		v.Cached = true
		writeJSON(w, http.StatusOK, v)
		return
	}

	rec, coalesced, err := s.submit(spec, key, req.Seed, jobs)
	switch {
	case errors.Is(err, errClosed):
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		var full errQueueFull
		if errors.As(err, &full) {
			// Retry-After scales with the backlog: at least a second, one
			// more per queued campaign ahead of the retry.
			w.Header().Set("Retry-After", strconv.Itoa(1+full.depth))
			writeErr(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if coalesced {
		w.Header().Set("X-Smpigod-Cache", "coalesced")
	} else {
		w.Header().Set("X-Smpigod-Cache", "miss")
	}

	switch {
	case stream:
		s.streamCampaign(w, r, rec, false)
	case wait:
		select {
		case <-rec.done:
			writeJSON(w, http.StatusOK, rec.view(true))
		case <-r.Context().Done():
			// The client gave up; the campaign keeps running (its results
			// stay cacheable for the retry).
			writeJSON(w, http.StatusAccepted, rec.view(false))
		}
	default:
		writeJSON(w, http.StatusAccepted, rec.view(false))
	}
}

// streamCampaign writes the campaign as NDJSON: one {"i", "result"} line
// per job in completion order, then a final line holding the campaign view
// with its summary.
func (s *Server) streamCampaign(w http.ResponseWriter, r *http.Request, rec *record, cached bool) {
	past, live, unsubscribe := rec.subscribe()
	defer unsubscribe()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	for _, sr := range past {
		if enc.Encode(sr) != nil {
			return
		}
	}
	flush()
	if live != nil {
		for {
			select {
			case sr, ok := <-live:
				if !ok {
					live = nil
				} else if enc.Encode(sr) != nil {
					return
				}
				flush()
			case <-r.Context().Done():
				return
			}
			if live == nil {
				break
			}
		}
	}
	v := rec.view(true)
	v.Cached = cached
	_ = enc.Encode(v)
	flush()
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	recs := make([]*record, 0, len(s.idOrder))
	for _, id := range s.idOrder {
		if rec, ok := s.byID[id]; ok {
			recs = append(recs, rec)
		}
	}
	s.mu.Unlock()
	views := make([]campaignView, len(recs))
	for i, rec := range recs {
		views[i] = rec.view(false)
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, rec.view(true))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	rec.cancel(fmt.Errorf("campaign %s canceled by request", rec.id))
	writeJSON(w, http.StatusAccepted, rec.view(false))
}

func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	var req mergeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.IDs) == 0 {
		writeErr(w, http.StatusBadRequest, "merge needs at least one campaign id")
		return
	}
	parts := make([]*campaign.Summary, len(req.IDs))
	for i, id := range req.IDs {
		rec, ok := s.lookup(id)
		if !ok {
			writeErr(w, http.StatusNotFound, "no campaign %q", id)
			return
		}
		rec.mu.Lock()
		st, sum := rec.status, rec.summary
		rec.mu.Unlock()
		if st != statusDone {
			writeErr(w, http.StatusConflict, "campaign %s is %s; merge needs completed campaigns", id, st)
			return
		}
		parts[i] = sum
	}
	merged, err := campaign.Merge(parts...)
	if err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, mergeView{
		IDs:         req.IDs,
		Fingerprint: merged.Fingerprint(),
		Summary:     merged,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	flat := s.stats.Flat()
	s.mu.Lock()
	flat["service.cache.entries"] = float64(s.cache.len())
	flat["service.queue.depth"] = float64(len(s.queue) + int(s.running.Load()))
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, flat)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
