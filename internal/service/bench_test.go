package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"smpigo/internal/experiments"
)

// BenchmarkServiceThroughput is the in-process load test behind
// BENCH_service.json: full POST /v1/campaigns?wait=1 round trips through the
// Handler, measured with a cold cache (every request simulates) and a warm
// one (every request is a fingerprint-keyed hit). The spread between the two
// is the cache's value; the warm number is the service's pure serving
// overhead (decode, canonicalize, key, encode).
func BenchmarkServiceThroughput(b *testing.B) {
	env, err := experiments.NewEnv()
	if err != nil {
		b.Fatal(err)
	}
	// One surf pingpong job on the calibrated griffon cluster: the smallest
	// real simulation, so the benchmark measures service overhead + one sim,
	// not grid size.
	body := `{"spec": {"op": "pingpong", "procs": [2], "sizes": [65536], "models": ["piecewise"], "backends": ["surf"]}, "seed": 31}`
	post := func(h http.Handler) *httptest.ResponseRecorder {
		req := httptest.NewRequest("POST", "/v1/campaigns?wait=1", strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}
	run := func(b *testing.B, cacheSize int, wantHeader string) {
		s, err := New(Config{Env: env, CacheSize: cacheSize})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		h := s.Handler()
		// Prime: with a cache this populates the entry, without one it warms
		// the platform/model caches both modes share.
		if w := post(h); w.Code != http.StatusOK {
			b.Fatalf("prime request: status %d, body %s", w.Code, w.Body.String())
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w := post(h)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d, body %s", w.Code, w.Body.String())
			}
			if got := w.Header().Get("X-Smpigod-Cache"); got != wantHeader {
				b.Fatalf("cache header %q, want %q", got, wantHeader)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
		var v campaignView
		if err := json.Unmarshal(post(h).Body.Bytes(), &v); err != nil || v.Fingerprint == "" {
			b.Fatalf("final response lost its fingerprint: %v", err)
		}
	}
	// cold: caching disabled, every request runs the simulation end to end.
	b.Run("cold", func(b *testing.B) { run(b, -1, "miss") })
	// warm: every request is served from the result cache.
	b.Run("warm", func(b *testing.B) { run(b, 0, "hit") })
}
