package placement

import (
	"testing"

	"smpigo/internal/platform"
	"smpigo/internal/topology"
)

func buildTopo(t *testing.T, spec string) *platform.Platform {
	t.Helper()
	s, err := topology.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func hostIDs(hosts []*platform.Host) []int {
	ids := make([]int, len(hosts))
	for i, h := range hosts {
		ids[i] = h.ID
	}
	return ids
}

func TestBlockIsConsecutive(t *testing.T) {
	p := buildTopo(t, "fattree16")
	hosts, err := Generate("block", p, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hosts {
		if h.ID != i {
			t.Errorf("block: rank %d on host %d, want %d", i, h.ID, i)
		}
	}
}

func TestRoundRobinDealsAcrossGroups(t *testing.T) {
	// fattree16 has 4-host leaf switches (Cabinet = ID/4): round-robin must
	// put consecutive ranks in distinct leaves until the leaves wrap.
	p := buildTopo(t, "fattree16")
	hosts, err := Generate("rr", p, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 4, 8, 12, 1, 5, 9, 13}
	for i, h := range hosts {
		if h.ID != want[i] {
			t.Errorf("rr: rank %d on host %d, want %d (got %v)", i, h.ID, want[i], hostIDs(hosts))
			break
		}
	}
	for _, alias := range []string{"round-robin", "cyclic", "RR"} {
		aliased, err := Generate(alias, p, 8, 1)
		if err != nil {
			t.Fatalf("alias %q: %v", alias, err)
		}
		for i := range hosts {
			if aliased[i] != hosts[i] {
				t.Fatalf("alias %q maps rank %d differently", alias, i)
			}
		}
	}
}

func TestRoundRobinUnevenGroups(t *testing.T) {
	// Griffon's cabinets hold 33, 27 and 32 nodes; dealing must visit every
	// host exactly once even after the smallest cabinet is exhausted.
	p, err := platform.Griffon().Build()
	if err != nil {
		t.Fatal(err)
	}
	n := len(p.Hosts())
	hosts, err := Generate("rr", p, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool, n)
	for _, h := range hosts {
		if seen[h.ID] {
			t.Fatalf("host %d assigned twice", h.ID)
		}
		seen[h.ID] = true
	}
	if len(seen) != n {
		t.Fatalf("%d distinct hosts, want %d", len(seen), n)
	}
	// The first three ranks land in the three distinct cabinets.
	for i := 0; i < 3; i++ {
		if hosts[i].Cabinet != i {
			t.Errorf("rank %d in cabinet %d, want %d", i, hosts[i].Cabinet, i)
		}
	}
}

func TestRandomIsSeedDeterministic(t *testing.T) {
	p := buildTopo(t, "torus64")
	a, err := Generate("random", p, 64, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("random", p, 64, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed maps rank %d to %s then %s", i, a[i].Name(), b[i].Name())
		}
	}
	c, err := Generate("random", p, 64, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced the identical random mapping")
	}
	// The mapping is a permutation: every host exactly once at procs == n.
	seen := make(map[int]bool)
	for _, h := range a {
		if seen[h.ID] {
			t.Fatalf("random: host %d assigned twice", h.ID)
		}
		seen[h.ID] = true
	}
}

func TestOversubscriptionSharesHostsContiguously(t *testing.T) {
	p := buildTopo(t, "fattree16")
	hosts, err := Generate("block", p, 40, 1) // 40 ranks on 16 hosts
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	prev := -1
	for i, h := range hosts {
		counts[h.ID]++
		if h.ID < prev {
			t.Fatalf("block under oversubscription not monotonic at rank %d", i)
		}
		prev = h.ID
	}
	if len(counts) != 16 {
		t.Fatalf("used %d hosts, want all 16", len(counts))
	}
	for id, c := range counts {
		if c < 2 || c > 3 { // floor/ceil of 40/16
			t.Errorf("host %d holds %d ranks, want 2 or 3", id, c)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	p := buildTopo(t, "torus16")
	if _, err := Generate("zigzag", p, 4, 0); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := Generate("block", p, 0, 0); err == nil {
		t.Error("zero procs accepted")
	}
	if _, err := Generate("block", nil, 4, 0); err == nil {
		t.Error("nil platform accepted")
	}
	if _, err := Normalize("nope"); err == nil {
		t.Error("Normalize accepted unknown policy")
	}
}

func TestFlatPlatformDegeneratesToHostOrder(t *testing.T) {
	// A hand-built platform without group structure: rr falls back to the
	// host order (documented degeneration into block).
	p := platform.New("flat")
	for i := 0; i < 4; i++ {
		p.AddHost("flat-"+string(rune('a'+i)), 1e9)
	}
	hosts, err := Generate("rr", p, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hosts {
		if h.ID != i {
			t.Errorf("rr on flat platform: rank %d on host %d, want %d", i, h.ID, i)
		}
	}
}
