// Package placement generates rank-to-host mappings: it turns a platform
// and a process count into the smpi.Config.Hosts ordering that pins rank i
// to a specific host. How ranks are laid out over an interconnect decides
// which links a communication schedule actually touches — on a fat-tree
// with D-mod-k routing, packing neighbor ranks under one leaf switch keeps
// ring traffic off the spine, while spreading them across leaves forces
// every hop through it — so placement is a campaign axis in its own right,
// swept alongside topology by experiments.GridSpec.
//
// Three mapping policies are provided:
//
//   - "block": consecutive ranks on consecutive hosts, filling the
//     platform's lowest-level groups (leaf switches, routers, torus rows,
//     cabinets — see platform.Host.Cabinet) one after the other;
//   - "rr" (round-robin): ranks dealt cyclically across the lowest-level
//     groups, so consecutive ranks land in different groups — the
//     adversarial layout for neighbor-heavy schedules;
//   - "random": a uniform shuffle of the hosts, seeded deterministically.
//
// Every policy is a pure function of (platform, procs, seed): the random
// policy derives its stream with core.DeriveSeed from the seed and the
// platform name, never from global state, so campaign sweeps that place
// ranks inside worker-pool jobs stay bit-identical at any parallelism.
// When procs exceeds the host count, consecutive ranks share hosts: every
// host of the policy's permutation receives floor or ceil of procs/hosts
// ranks, so oversubscription preserves each policy's locality structure.
package placement

import (
	"fmt"
	"sort"
	"strings"

	"smpigo/internal/core"
	"smpigo/internal/platform"
)

// Names lists the supported placement policies, sorted.
func Names() []string { return []string{"block", "random", "rr"} }

// Generate returns the hosts for ranks 0..procs-1 under the named policy.
// The result has exactly procs entries and is a pure function of the
// arguments; pass it to smpi.Config.Hosts. Seed only affects "random".
func Generate(policy string, plat *platform.Platform, procs int, seed uint64) ([]*platform.Host, error) {
	if plat == nil {
		return nil, fmt.Errorf("placement: nil platform")
	}
	if procs <= 0 {
		return nil, fmt.Errorf("placement: non-positive process count %d", procs)
	}
	all := plat.Hosts()
	if len(all) == 0 {
		return nil, fmt.Errorf("placement: platform %q has no hosts", plat.Name)
	}
	canonical, err := Normalize(policy)
	if err != nil {
		return nil, err
	}
	var perm []*platform.Host
	switch canonical {
	case "block":
		perm = all
	case "rr":
		perm = roundRobin(all)
	case "random":
		perm = shuffle(all, core.DeriveSeed(seed, "placement/random/"+plat.Name))
	}
	return assign(perm, procs), nil
}

// Normalize maps a policy name (and its aliases: "round-robin" and "cyclic"
// for "rr") to its canonical form, or errors naming the known policies.
// Campaign axes normalize up front so an unknown policy fails the sweep's
// expansion instead of every job.
func Normalize(policy string) (string, error) {
	switch strings.ToLower(policy) {
	case "block":
		return "block", nil
	case "rr", "round-robin", "cyclic":
		return "rr", nil
	case "random":
		return "random", nil
	}
	return "", fmt.Errorf("placement: unknown policy %q (want %s)",
		policy, strings.Join(Names(), ", "))
}

// assign maps procs ranks onto the host permutation. With procs <= hosts,
// rank i simply gets perm[i]; with more ranks than hosts, consecutive ranks
// share a host — every host receives floor or ceil of procs/hosts ranks in
// permutation order — keeping the "block" and "rr" locality structure
// intact under oversubscription.
func assign(perm []*platform.Host, procs int) []*platform.Host {
	n := len(perm)
	hosts := make([]*platform.Host, procs)
	for i := range hosts {
		if procs <= n {
			hosts[i] = perm[i]
		} else {
			hosts[i] = perm[i*n/procs]
		}
	}
	return hosts
}

// roundRobin deals the hosts across the platform's lowest-level groups
// (platform.Host.Cabinet): the first hosts of every group come first, then
// the second hosts, and so on, so consecutive slots alternate groups. On a
// platform without group structure (all Cabinet == -1) the host order is
// returned unchanged — there is no "across" to deal over, and callers see
// the documented degeneration of rr into block.
func roundRobin(all []*platform.Host) []*platform.Host {
	groups := make(map[int][]*platform.Host)
	var ids []int
	for _, h := range all {
		if _, seen := groups[h.Cabinet]; !seen {
			ids = append(ids, h.Cabinet)
		}
		groups[h.Cabinet] = append(groups[h.Cabinet], h)
	}
	if len(ids) <= 1 {
		return all
	}
	sort.Ints(ids)
	perm := make([]*platform.Host, 0, len(all))
	for round := 0; len(perm) < len(all); round++ {
		for _, id := range ids {
			if g := groups[id]; round < len(g) {
				perm = append(perm, g[round])
			}
		}
	}
	return perm
}

// shuffle returns a Fisher-Yates permutation of the hosts driven by the
// derived seed.
func shuffle(all []*platform.Host, seed uint64) []*platform.Host {
	perm := make([]*platform.Host, len(all))
	copy(perm, all)
	rng := core.NewRNG(seed)
	for i := len(perm) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}
