package smpi

import (
	"bytes"
	"fmt"
	"testing"

	"smpigo/internal/core"
)

// sizes exercised for every collective: 1 rank, powers of two, and awkward
// non-power-of-two counts.
var collectiveSizes = []int{1, 2, 3, 4, 5, 7, 8, 16}

// fill gives rank i a recognizable payload.
func fill(rank, n int) []byte {
	buf := make([]byte, n)
	for j := range buf {
		buf[j] = byte((rank*31 + j) % 251)
	}
	return buf
}

func forEachSize(t *testing.T, f func(t *testing.T, p int)) {
	t.Helper()
	for _, p := range collectiveSizes {
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) { f(t, p) })
	}
}

func TestBcastVariants(t *testing.T) {
	for _, algo := range []string{"binomial", "ring", "flat"} {
		t.Run(algo, func(t *testing.T) {
			forEachSize(t, func(t *testing.T, p int) {
				cfg := testConfig(p)
				cfg.Algorithms.Bcast = algo
				root := p / 2
				want := fill(root, 100)
				mustRun(t, cfg, func(r *Rank) {
					buf := make([]byte, 100)
					if r.Rank() == root {
						copy(buf, want)
					}
					r.Comm().Bcast(r, buf, root)
					if !bytes.Equal(buf, want) {
						t.Errorf("rank %d got wrong bcast payload", r.Rank())
					}
				})
			})
		})
	}
}

func TestScatterVariants(t *testing.T) {
	for _, algo := range []string{"binomial", "flat"} {
		t.Run(algo, func(t *testing.T) {
			forEachSize(t, func(t *testing.T, p int) {
				cfg := testConfig(p)
				cfg.Algorithms.Scatter = algo
				for _, root := range []int{0, p - 1} {
					mustRun(t, cfg, func(r *Rank) {
						bs := 64
						var sendbuf []byte
						if r.Rank() == root {
							sendbuf = make([]byte, p*bs)
							for i := 0; i < p; i++ {
								copy(sendbuf[i*bs:(i+1)*bs], fill(i, bs))
							}
						}
						recvbuf := make([]byte, bs)
						r.Comm().Scatter(r, sendbuf, recvbuf, root)
						if !bytes.Equal(recvbuf, fill(r.Rank(), bs)) {
							t.Errorf("rank %d (root %d) got wrong chunk", r.Rank(), root)
						}
					})
				}
			})
		})
	}
}

func TestGatherVariants(t *testing.T) {
	for _, algo := range []string{"binomial", "flat"} {
		t.Run(algo, func(t *testing.T) {
			forEachSize(t, func(t *testing.T, p int) {
				cfg := testConfig(p)
				cfg.Algorithms.Gather = algo
				for _, root := range []int{0, p / 2} {
					mustRun(t, cfg, func(r *Rank) {
						bs := 48
						var recvbuf []byte
						if r.Rank() == root {
							recvbuf = make([]byte, p*bs)
						}
						r.Comm().Gather(r, fill(r.Rank(), bs), recvbuf, root)
						if r.Rank() == root {
							for i := 0; i < p; i++ {
								if !bytes.Equal(recvbuf[i*bs:(i+1)*bs], fill(i, bs)) {
									t.Errorf("root %d: chunk %d wrong", root, i)
								}
							}
						}
					})
				}
			})
		})
	}
}

func TestAllgatherVariants(t *testing.T) {
	for _, algo := range []string{"ring", "gather-bcast"} {
		t.Run(algo, func(t *testing.T) {
			forEachSize(t, func(t *testing.T, p int) {
				cfg := testConfig(p)
				cfg.Algorithms.Allgather = algo
				mustRun(t, cfg, func(r *Rank) {
					bs := 32
					recvbuf := make([]byte, p*bs)
					r.Comm().Allgather(r, fill(r.Rank(), bs), recvbuf)
					for i := 0; i < p; i++ {
						if !bytes.Equal(recvbuf[i*bs:(i+1)*bs], fill(i, bs)) {
							t.Errorf("rank %d: block %d wrong", r.Rank(), i)
						}
					}
				})
			})
		})
	}
}

func TestAlltoallVariants(t *testing.T) {
	for _, algo := range []string{"pairwise", "bruck", "flat"} {
		t.Run(algo, func(t *testing.T) {
			forEachSize(t, func(t *testing.T, p int) {
				cfg := testConfig(p)
				cfg.Algorithms.Alltoall = algo
				mustRun(t, cfg, func(r *Rank) {
					bs := 16
					me := r.Rank()
					sendbuf := make([]byte, p*bs)
					for dst := 0; dst < p; dst++ {
						// block (me -> dst) tagged by both endpoints
						for j := 0; j < bs; j++ {
							sendbuf[dst*bs+j] = byte((me*17 + dst*29 + j) % 249)
						}
					}
					recvbuf := make([]byte, p*bs)
					r.Comm().Alltoall(r, sendbuf, recvbuf)
					for src := 0; src < p; src++ {
						for j := 0; j < bs; j++ {
							want := byte((src*17 + me*29 + j) % 249)
							if recvbuf[src*bs+j] != want {
								t.Fatalf("rank %d block from %d byte %d: got %d want %d",
									me, src, j, recvbuf[src*bs+j], want)
							}
						}
					}
				})
			})
		})
	}
}

func TestReduceVariants(t *testing.T) {
	for _, algo := range []string{"binomial", "flat"} {
		t.Run(algo, func(t *testing.T) {
			forEachSize(t, func(t *testing.T, p int) {
				cfg := testConfig(p)
				cfg.Algorithms.Reduce = algo
				root := p - 1
				mustRun(t, cfg, func(r *Rank) {
					vals := []int64{int64(r.Rank()) + 1, int64(r.Rank()) * 2}
					var recvbuf []byte
					if r.Rank() == root {
						recvbuf = make([]byte, 16)
					}
					r.Comm().Reduce(r, Int64sToBytes(vals), recvbuf, Int64, OpSum, root)
					if r.Rank() == root {
						got := BytesToInt64s(recvbuf)
						wantA := int64(p * (p + 1) / 2)
						wantB := int64(p * (p - 1))
						if got[0] != wantA || got[1] != wantB {
							t.Errorf("reduce sum = %v, want [%d %d]", got, wantA, wantB)
						}
					}
				})
			})
		})
	}
}

func TestAllreduceVariants(t *testing.T) {
	for _, algo := range []string{"recursive-doubling", "reduce-bcast", "ring"} {
		t.Run(algo, func(t *testing.T) {
			forEachSize(t, func(t *testing.T, p int) {
				cfg := testConfig(p)
				cfg.Algorithms.Allreduce = algo
				mustRun(t, cfg, func(r *Rank) {
					in := Float64sToBytes([]float64{float64(r.Rank()), 1})
					out := make([]byte, 16)
					r.Comm().Allreduce(r, in, out, Float64, OpSum)
					got := BytesToFloat64s(out)
					if got[0] != float64(p*(p-1)/2) || got[1] != float64(p) {
						t.Errorf("rank %d allreduce = %v", r.Rank(), got)
					}
				})
			})
		})
	}
}

// TestAllreduceRingChunked drives the chunked ring path with a buffer big
// enough to split (elems >= p, uneven chunk sizes) and checks it agrees
// with the recursive-doubling result element-wise.
func TestAllreduceRingChunked(t *testing.T) {
	forEachSize(t, func(t *testing.T, p int) {
		elems := 2*p + 3 // uneven: the first few chunks get an extra element
		cfg := testConfig(p)
		cfg.Algorithms.Allreduce = "ring"
		mustRun(t, cfg, func(r *Rank) {
			in := make([]float64, elems)
			for i := range in {
				in[i] = float64(r.Rank()*elems + i)
			}
			out := make([]byte, elems*8)
			r.Comm().Allreduce(r, Float64sToBytes(in), out, Float64, OpSum)
			got := BytesToFloat64s(out)
			for i := range got {
				var want float64
				for rank := 0; rank < p; rank++ {
					want += float64(rank*elems + i)
				}
				if got[i] != want {
					t.Fatalf("rank %d elem %d = %v, want %v", r.Rank(), i, got[i], want)
				}
			}
		})
	})
}

func TestAllreduceMax(t *testing.T) {
	mustRun(t, testConfig(5), func(r *Rank) {
		in := Float64sToBytes([]float64{float64(r.Rank() * r.Rank())})
		out := make([]byte, 8)
		r.Comm().Allreduce(r, in, out, Float64, OpMax)
		if got := BytesToFloat64s(out)[0]; got != 16 {
			t.Errorf("max = %v, want 16", got)
		}
	})
}

func TestScanPrefixSums(t *testing.T) {
	forEachSize(t, func(t *testing.T, p int) {
		mustRun(t, testConfig(p), func(r *Rank) {
			in := Int32sToBytes([]int32{int32(r.Rank() + 1)})
			out := make([]byte, 4)
			r.Comm().Scan(r, in, out, Int32, OpSum)
			me := r.Rank() + 1
			want := int32(me * (me + 1) / 2)
			if got := BytesToInt32s(out)[0]; got != want {
				t.Errorf("rank %d scan = %d, want %d", r.Rank(), got, want)
			}
		})
	})
}

func TestReduceScatter(t *testing.T) {
	forEachSize(t, func(t *testing.T, p int) {
		mustRun(t, testConfig(p), func(r *Rank) {
			// Everyone contributes a vector of p int32s valued rank+1;
			// after sum-reduction each element is p(p+1)/2; rank i keeps
			// element i.
			vals := make([]int32, p)
			for j := range vals {
				vals[j] = int32(r.Rank() + 1)
			}
			counts := make([]int, p)
			for j := range counts {
				counts[j] = 4
			}
			out := make([]byte, 4)
			r.Comm().ReduceScatter(r, Int32sToBytes(vals), out, counts, Int32, OpSum)
			want := int32(p * (p + 1) / 2)
			if got := BytesToInt32s(out)[0]; got != want {
				t.Errorf("rank %d reduce_scatter = %d, want %d", r.Rank(), got, want)
			}
		})
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, algo := range []string{"dissemination", "tree"} {
		t.Run(algo, func(t *testing.T) {
			cfg := testConfig(6)
			cfg.Algorithms.Barrier = algo
			var exitTimes [6]core.Time
			var latestEntry core.Time
			mustRun(t, cfg, func(r *Rank) {
				d := core.Time(r.Rank()) * 0.5
				r.Elapse(d)
				if d > latestEntry {
					latestEntry = d
				}
				r.Comm().Barrier(r)
				exitTimes[r.Rank()] = r.Now()
			})
			for i, at := range exitTimes {
				if at < latestEntry {
					t.Errorf("rank %d left the barrier at %v, before the last entry %v", i, at, latestEntry)
				}
			}
		})
	}
}

func TestScattervGathervRoundTrip(t *testing.T) {
	forEachSize(t, func(t *testing.T, p int) {
		mustRun(t, testConfig(p), func(r *Rank) {
			c := r.Comm()
			counts := make([]int, p)
			total := 0
			for i := range counts {
				counts[i] = 8 * (i + 1)
				total += counts[i]
			}
			var sendbuf []byte
			if r.Rank() == 0 {
				sendbuf = make([]byte, total)
				off := 0
				for i := 0; i < p; i++ {
					copy(sendbuf[off:off+counts[i]], fill(i, counts[i]))
					off += counts[i]
				}
			}
			mine := make([]byte, counts[r.Rank()])
			c.Scatterv(r, sendbuf, counts, mine, 0)
			if !bytes.Equal(mine, fill(r.Rank(), counts[r.Rank()])) {
				t.Errorf("rank %d scatterv chunk wrong", r.Rank())
			}
			var gathered []byte
			if r.Rank() == 0 {
				gathered = make([]byte, total)
			}
			c.Gatherv(r, mine, gathered, counts, 0)
			if r.Rank() == 0 && !bytes.Equal(gathered, sendbuf) {
				t.Error("gatherv did not reassemble the scattered data")
			}
		})
	})
}

func TestAllgatherv(t *testing.T) {
	mustRun(t, testConfig(4), func(r *Rank) {
		counts := []int{4, 8, 12, 16}
		out := make([]byte, 40)
		r.Comm().Allgatherv(r, fill(r.Rank(), counts[r.Rank()]), out, counts)
		off := 0
		for i, n := range counts {
			if !bytes.Equal(out[off:off+n], fill(i, n)) {
				t.Errorf("rank %d: block %d wrong", r.Rank(), i)
			}
			off += n
		}
	})
}

func TestAlltoallv(t *testing.T) {
	mustRun(t, testConfig(3), func(r *Rank) {
		p, me := 3, r.Rank()
		scounts := make([]int, p)
		rcounts := make([]int, p)
		for i := 0; i < p; i++ {
			scounts[i] = 4 * (me + i + 1)
			rcounts[i] = 4 * (i + me + 1)
		}
		stotal, rtotal := 0, 0
		for i := 0; i < p; i++ {
			stotal += scounts[i]
			rtotal += rcounts[i]
		}
		sendbuf := make([]byte, stotal)
		off := 0
		for dst := 0; dst < p; dst++ {
			for j := 0; j < scounts[dst]; j++ {
				sendbuf[off] = byte((me*13 + dst*7 + j) % 200)
				off++
			}
		}
		recvbuf := make([]byte, rtotal)
		r.Comm().Alltoallv(r, sendbuf, scounts, recvbuf, rcounts)
		off = 0
		for src := 0; src < p; src++ {
			for j := 0; j < rcounts[src]; j++ {
				want := byte((src*13 + me*7 + j) % 200)
				if recvbuf[off] != want {
					t.Fatalf("rank %d from %d byte %d: got %d want %d", me, src, j, recvbuf[off], want)
				}
				off++
			}
		}
	})
}

func TestUnknownAlgorithmPanics(t *testing.T) {
	cfg := testConfig(2)
	cfg.Algorithms.Bcast = "quantum"
	_, err := Run(cfg, func(r *Rank) {
		r.Comm().Bcast(r, make([]byte, 8), 0)
	})
	if err == nil {
		t.Error("unknown algorithm should fail the run")
	}
}

func TestCollectivesOnLargeMessages(t *testing.T) {
	// Above the eager threshold, collectives exercise rendezvous paths.
	mustRun(t, testConfig(4), func(r *Rank) {
		bs := int(128 * core.KiB)
		recv := make([]byte, bs)
		var send []byte
		if r.Rank() == 0 {
			send = make([]byte, 4*bs)
			for i := 0; i < 4; i++ {
				copy(send[i*bs:(i+1)*bs], fill(i, bs))
			}
		}
		r.Comm().Scatter(r, send, recv, 0)
		if !bytes.Equal(recv, fill(r.Rank(), bs)) {
			t.Errorf("rank %d large scatter wrong", r.Rank())
		}
	})
}
