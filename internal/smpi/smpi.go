package smpi

import (
	"fmt"
	"math"
	"time"

	"smpigo/internal/core"
	"smpigo/internal/dynamics"
	"smpigo/internal/emu"
	"smpigo/internal/obs"
	"smpigo/internal/platform"
	"smpigo/internal/sampling"
	"smpigo/internal/simix"
	"smpigo/internal/surf"
	"smpigo/internal/trace"
)

// Backend selects the timing model for a simulated run.
type Backend int

const (
	// BackendSurf uses the fast analytical models (an SMPI simulation).
	BackendSurf Backend = iota
	// BackendEmu uses the packet-level emulator (a stand-in "real run").
	BackendEmu
)

// Config parameterizes a simulated MPI job.
type Config struct {
	// Procs is the number of MPI ranks.
	Procs int
	// Platform is the target platform; required.
	Platform *platform.Platform
	// Hosts optionally pins rank i to Hosts[i]; by default ranks are laid
	// out round-robin over Platform.Hosts().
	Hosts []*platform.Host
	// Backend selects the timing model (default BackendSurf).
	Backend Backend
	// Model is the point-to-point model for BackendSurf; defaults to
	// surf.Ideal() if zero.
	Model surf.NetModel
	// NoContention disables link sharing in BackendSurf, emulating the
	// contention-blind simulators the paper compares against.
	NoContention bool
	// Impl is the emulated MPI implementation for BackendEmu; defaults to
	// emu.OpenMPI().
	Impl emu.MPIImpl
	// EagerThreshold is the size (bytes) at which sends switch from eager
	// (buffered) to rendezvous (synchronous) semantics. Default 64 KiB.
	EagerThreshold int64
	// SpeedFactor scales wall-clock-measured CPU bursts into target-node
	// durations (paper Section 3.1); default 1 (host == target).
	SpeedFactor float64
	// Seed seeds the per-rank deterministic RNGs.
	Seed uint64
	// Algorithms selects collective implementation variants.
	Algorithms Algorithms
	// Deadline aborts runs whose simulated time exceeds it (0 = none).
	Deadline core.Time
	// Tracer, when non-nil, records every compute burst and point-to-point
	// operation in program order, producing the input of the off-line
	// replayer (package replay). Collectives are traced as the
	// point-to-point messages they decompose into.
	Tracer trace.Recorder
	// Stats, when non-nil, receives the kernel and model counters of the run
	// (see internal/obs). Leaving it nil — the default — keeps every hook a
	// nil check; the simulated outcome is identical either way.
	Stats *obs.Stats
	// Usage, when non-nil, receives the drained byte/flop segments of the
	// surf models (per-link utilization accounting; see obs.Observer and
	// obs.Timeline). Ignored on BackendEmu, which has no drain stream.
	Usage surf.UsageRecorder
	// Dynamics, when non-nil, is a deterministic schedule of platform events
	// (link degradation/restoration, host slowdown, background-traffic
	// injection) armed on the kernel before the ranks start. Link and flow
	// events require BackendSurf with contention enabled; events dated after
	// the last rank exits never fire.
	Dynamics *dynamics.Schedule
	// SolverWorkers bounds the LMM worker pool both surf models may use to
	// solve independent dirty components concurrently. 0 (the default) and
	// 1 are serial; negative selects GOMAXPROCS. Results are bit-identical
	// at any setting. Ignored on BackendEmu.
	SolverWorkers int
	// RateTolerance opts the surf solvers into bounded staleness: flows and
	// tasks whose rate would move by less than this relative eps keep their
	// stale rate after a churn event. 0 (the default) is exact and
	// preserves fingerprints; a positive eps trades bounded completion-date
	// drift for solver time. Must be in [0, 1). Ignored on BackendEmu.
	RateTolerance float64
}

func (cfg *Config) fillDefaults() error {
	if cfg.Procs <= 0 {
		return fmt.Errorf("smpi: Procs must be positive, got %d", cfg.Procs)
	}
	if cfg.Platform == nil {
		return fmt.Errorf("smpi: Platform is required")
	}
	if len(cfg.Platform.Hosts()) == 0 {
		return fmt.Errorf("smpi: platform has no hosts")
	}
	if cfg.Model.Segments == nil {
		cfg.Model = surf.Ideal()
	}
	if cfg.Impl.Name == "" {
		cfg.Impl = emu.OpenMPI()
	}
	if cfg.EagerThreshold == 0 {
		cfg.EagerThreshold = 64 * core.KiB
	}
	if cfg.SpeedFactor == 0 {
		cfg.SpeedFactor = 1
	}
	if cfg.RateTolerance < 0 || cfg.RateTolerance >= 1 || math.IsNaN(cfg.RateTolerance) {
		return fmt.Errorf("smpi: RateTolerance must be in [0, 1), got %v", cfg.RateTolerance)
	}
	// Resolve "auto" collective algorithms against the platform's
	// interconnect before filling the family-independent defaults.
	cfg.Algorithms = cfg.Algorithms.Resolve(cfg.Platform.Topo)
	cfg.Algorithms.fillDefaults()
	return nil
}

// Report summarizes a completed simulation.
type Report struct {
	// SimulatedTime is the simulated date at which the last rank finished
	// (the application's predicted execution time).
	SimulatedTime core.Time
	// WallTime is the real time the simulation took — the "simulation
	// time" axis of the paper's Figures 17 and 18.
	WallTime time.Duration
	// MaxPeakRSS is the maximum accounted per-rank footprint in bytes
	// (Figure 16's metric). Only allocations made through Rank.Malloc and
	// Rank.SharedMalloc are accounted.
	MaxPeakRSS float64
	// BytesOnWire and Messages count point-to-point traffic.
	BytesOnWire int64
	Messages    int64
	// BurstsExecuted and BurstsReplayed count sampled CPU bursts that ran
	// for real vs. were replaced by a mean delay.
	BurstsExecuted int64
	BurstsReplayed int64
}

// World is the runtime state of one simulated MPI job.
type World struct {
	cfg    Config
	kernel *simix.Kernel
	cpu    *surf.CPU
	snet   *surf.Network
	enet   *emu.Net
	reg    *sampling.Registry

	ranks     []*Rank
	world     *Comm
	mailboxes map[mbKey]*mailbox
	comms     map[string]*Comm
	commSeq   int

	bytesOnWire int64
	messages    int64
}

// Rank is the per-process handle passed to application functions: it
// identifies the calling rank and carries every MPI-ish operation.
type Rank struct {
	w    *World
	proc *simix.Proc
	rank int
	host *platform.Host
	rng  *core.RNG

	dupSeq map[int]int // per-source-comm Dup call counters
}

// Run simulates app on cfg.Procs ranks and returns the report.
func Run(cfg Config, app func(*Rank)) (*Report, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	w := &World{
		cfg:       cfg,
		kernel:    simix.New(),
		mailboxes: make(map[mbKey]*mailbox),
		comms:     make(map[string]*Comm),
	}
	w.kernel.SetDeadline(cfg.Deadline)
	w.cpu = surf.NewCPU(w.kernel)
	w.kernel.AddModel(w.cpu)
	switch cfg.Backend {
	case BackendSurf:
		w.snet = surf.NewNetwork(w.kernel, cfg.Model)
		w.snet.Contention = !cfg.NoContention
		w.kernel.AddModel(w.snet)
	case BackendEmu:
		w.enet = emu.NewNet(w.kernel, cfg.Platform, cfg.Impl)
		w.kernel.AddModel(w.enet)
	default:
		return nil, fmt.Errorf("smpi: unknown backend %d", cfg.Backend)
	}
	if cfg.SolverWorkers != 0 && cfg.SolverWorkers != 1 {
		w.cpu.SetSolverWorkers(cfg.SolverWorkers)
		if w.snet != nil {
			w.snet.SetSolverWorkers(cfg.SolverWorkers)
		}
	}
	if cfg.RateTolerance > 0 {
		w.cpu.SetRateTolerance(cfg.RateTolerance)
		if w.snet != nil {
			w.snet.SetRateTolerance(cfg.RateTolerance)
		}
	}
	if st := cfg.Stats; st != nil {
		w.kernel.Stats = &st.Kernel
		w.cpu.Instrument(&st.CPU, &st.CPULMM, &st.CPUHeap, cfg.Usage)
		if w.snet != nil {
			w.snet.Instrument(&st.Net, &st.NetLMM, &st.NetHeap, cfg.Usage)
		}
		if w.enet != nil {
			w.enet.InstrumentHeap(&st.NetHeap)
		}
	} else if cfg.Usage != nil {
		w.cpu.Instrument(nil, nil, nil, cfg.Usage)
		if w.snet != nil {
			w.snet.Instrument(nil, nil, nil, cfg.Usage)
		}
	}
	if cfg.Dynamics != nil {
		if err := cfg.Dynamics.Arm(w.kernel, cfg.Platform, w.snet, w.cpu); err != nil {
			return nil, fmt.Errorf("smpi: dynamics: %w", err)
		}
	}
	w.reg = sampling.NewRegistry(cfg.Procs)

	hosts := cfg.Hosts
	if hosts == nil {
		all := cfg.Platform.Hosts()
		hosts = make([]*platform.Host, cfg.Procs)
		for i := range hosts {
			hosts[i] = all[i%len(all)]
		}
	} else if err := validateHosts(hosts, cfg.Procs, cfg.Platform); err != nil {
		return nil, err
	}

	group := make([]int, cfg.Procs)
	for i := range group {
		group[i] = i
	}
	w.world = &Comm{w: w, id: w.nextCommID(), group: group}

	seedRNG := core.NewRNG(cfg.Seed + 0x5eed)
	for i := 0; i < cfg.Procs; i++ {
		r := &Rank{
			w:      w,
			rank:   i,
			host:   hosts[i],
			rng:    seedRNG.Split(),
			dupSeq: make(map[int]int),
		}
		w.ranks = append(w.ranks, r)
		w.kernel.Spawn(fmt.Sprintf("rank-%d", i), func(p *simix.Proc) {
			r.proc = p
			app(r)
		})
	}

	wallStart := time.Now()
	if err := w.kernel.Run(); err != nil {
		return nil, err
	}
	return &Report{
		SimulatedTime:  w.kernel.Now(),
		WallTime:       time.Since(wallStart),
		MaxPeakRSS:     w.reg.MaxPeakRSS(),
		BytesOnWire:    w.bytesOnWire,
		Messages:       w.messages,
		BurstsExecuted: w.reg.Executed(),
		BurstsReplayed: w.reg.Replayed(),
	}, nil
}

// validateHosts checks an explicit Config.Hosts pinning against the
// platform: one host per rank, every entry a live host of this platform.
// Each failure mode names the offending rank, so a placement bug surfaces
// as a diagnosable error instead of an index panic or a rank silently
// landing on a same-named host of a different platform instance.
func validateHosts(hosts []*platform.Host, procs int, plat *platform.Platform) error {
	if len(hosts) != procs {
		missing := len(hosts) // first rank without a host when too short
		if len(hosts) > procs {
			return fmt.Errorf("smpi: Config.Hosts pins %d ranks but Procs is %d (hosts[%d:] are unused; truncate the placement or raise Procs)",
				len(hosts), procs, procs)
		}
		return fmt.Errorf("smpi: Config.Hosts pins only %d ranks but Procs is %d (rank %d has no host)",
			len(hosts), procs, missing)
	}
	for i, h := range hosts {
		if h == nil {
			return fmt.Errorf("smpi: Config.Hosts[%d] is nil: rank %d has no host", i, i)
		}
		if plat.Host(h.Name()) != h {
			return fmt.Errorf("smpi: rank %d pinned to host %q which is not a host of platform %q",
				i, h.Name(), plat.Name)
		}
	}
	return nil
}

func (w *World) nextCommID() int {
	id := w.commSeq
	w.commSeq++
	return id
}

// transfer starts moving size bytes between hosts on the active backend and
// returns the delivery future.
func (w *World) transfer(src, dst *platform.Host, size int64) *simix.Future {
	f := simix.NewFuture()
	w.bytesOnWire += size
	w.messages++
	if w.snet != nil {
		if w.cfg.Stats != nil {
			w.cfg.Stats.Routes++
		}
		w.snet.StartFlow(w.cfg.Platform.Route(src, dst), size, f)
	} else {
		if w.cfg.Stats != nil {
			w.cfg.Stats.Routes += 2 // forward and return routes per transfer
		}
		w.enet.Transfer(src, dst, size, f)
	}
	return f
}

// --- Rank basics ---

// Rank returns the caller's rank in the world communicator.
func (r *Rank) Rank() int { return r.rank }

// Size returns the number of ranks in the world communicator.
func (r *Rank) Size() int { return len(r.w.ranks) }

// Comm returns the world communicator (MPI_COMM_WORLD).
func (r *Rank) Comm() *Comm { return r.w.world }

// Host returns the platform host this rank is placed on.
func (r *Rank) Host() *platform.Host { return r.host }

// Now returns the current simulated time.
func (r *Rank) Now() core.Time { return r.proc.Now() }

// RNG returns this rank's deterministic random stream.
func (r *Rank) RNG() *core.RNG { return r.rng }

// Compute charges flops of work on this rank's host and blocks until the
// simulated work completes.
func (r *Rank) Compute(flops float64) {
	if tr := r.w.cfg.Tracer; tr != nil {
		tr.RecordCompute(r.rank, core.Duration(flops/r.host.Speed))
	}
	r.proc.Wait(r.w.cpu.Execute(r.host, flops))
}

// Elapse charges a fixed simulated delay of compute on this rank's host.
func (r *Rank) Elapse(d core.Duration) {
	if d <= 0 {
		return
	}
	if tr := r.w.cfg.Tracer; tr != nil {
		tr.RecordCompute(r.rank, d)
	}
	r.proc.Wait(r.w.cpu.Delay(r.host, d))
}
