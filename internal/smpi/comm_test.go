package smpi

import (
	"testing"
)

func TestDupIsolatesMatching(t *testing.T) {
	// A message sent on the dup must not match a receive on the world
	// communicator even with identical rank and tag.
	mustRun(t, testConfig(2), func(r *Rank) {
		world := r.Comm()
		dup := world.Dup(r)
		if dup == world {
			t.Error("Dup returned the same communicator")
		}
		if dup.Size() != world.Size() {
			t.Error("Dup changed the group")
		}
		if r.Rank() == 0 {
			r.Send(world, []byte{1}, 1, 5)
			r.Send(dup, []byte{2}, 1, 5)
		} else {
			buf := make([]byte, 1)
			r.Recv(dup, buf, 0, 5)
			if buf[0] != 2 {
				t.Errorf("dup recv got %d, want 2", buf[0])
			}
			r.Recv(world, buf, 0, 5)
			if buf[0] != 1 {
				t.Errorf("world recv got %d, want 1", buf[0])
			}
		}
	})
}

func TestDupSharedObjectAcrossRanks(t *testing.T) {
	var ids [2]int
	mustRun(t, testConfig(2), func(r *Rank) {
		dup := r.Comm().Dup(r)
		ids[r.Rank()] = dup.id
	})
	if ids[0] != ids[1] {
		t.Errorf("ranks got different dup comms: %d vs %d", ids[0], ids[1])
	}
}

func TestSequentialDupsDiffer(t *testing.T) {
	mustRun(t, testConfig(2), func(r *Rank) {
		a := r.Comm().Dup(r)
		b := r.Comm().Dup(r)
		if a == b {
			t.Error("two Dup calls returned the same communicator")
		}
	})
}

func TestSplitByParity(t *testing.T) {
	mustRun(t, testConfig(6), func(r *Rank) {
		world := r.Comm()
		color := r.Rank() % 2
		sub := world.Split(r, color, r.Rank())
		if sub == nil {
			t.Fatalf("rank %d got nil subcommunicator", r.Rank())
		}
		if sub.Size() != 3 {
			t.Errorf("rank %d: sub size = %d, want 3", r.Rank(), sub.Size())
		}
		if want := r.Rank() / 2; sub.RankOf(r) != want {
			t.Errorf("rank %d: sub rank = %d, want %d", r.Rank(), sub.RankOf(r), want)
		}
		// The subcommunicator works for collectives.
		out := make([]byte, 8)
		in := Int64sToBytes([]int64{int64(r.Rank())})
		sub.Allreduce(r, in, out, Int64, OpSum)
		// even ranks: 0+2+4=6; odd: 1+3+5=9
		want := int64(6)
		if color == 1 {
			want = 9
		}
		if got := BytesToInt64s(out)[0]; got != want {
			t.Errorf("rank %d sub-allreduce = %d, want %d", r.Rank(), got, want)
		}
	})
}

func TestSplitKeyOrdersRanks(t *testing.T) {
	mustRun(t, testConfig(4), func(r *Rank) {
		// Reverse order via descending keys.
		sub := r.Comm().Split(r, 0, -r.Rank())
		if want := 3 - r.Rank(); sub.RankOf(r) != want {
			t.Errorf("rank %d: sub rank %d, want %d", r.Rank(), sub.RankOf(r), want)
		}
	})
}

func TestSplitUndefined(t *testing.T) {
	mustRun(t, testConfig(4), func(r *Rank) {
		color := 0
		if r.Rank() == 3 {
			color = Undefined
		}
		sub := r.Comm().Split(r, color, 0)
		if r.Rank() == 3 {
			if sub != nil {
				t.Error("Undefined color should yield nil comm")
			}
			return
		}
		if sub == nil || sub.Size() != 3 {
			t.Errorf("rank %d: bad subcomm %v", r.Rank(), sub)
		}
	})
}

func TestWorldRankTranslation(t *testing.T) {
	mustRun(t, testConfig(4), func(r *Rank) {
		sub := r.Comm().Split(r, r.Rank()%2, 0)
		for i := 0; i < sub.Size(); i++ {
			wr := sub.WorldRank(i)
			if wr%2 != r.Rank()%2 {
				t.Errorf("sub rank %d maps to world %d with wrong parity", i, wr)
			}
		}
		g := sub.Group()
		if len(g) != sub.Size() {
			t.Error("Group() size mismatch")
		}
	})
}

func TestRankOfNonMember(t *testing.T) {
	mustRun(t, testConfig(4), func(r *Rank) {
		sub := r.Comm().Split(r, r.Rank()%2, 0)
		// A rank of opposite parity is not a member.
		if r.Rank()%2 == 0 {
			// all members of sub have even world rank
			for _, wr := range sub.Group() {
				if wr%2 != 0 {
					t.Error("unexpected member")
				}
			}
		}
		_ = sub
	})
}

func TestSampleLocalIntegration(t *testing.T) {
	cfg := testConfig(2)
	execs := 0
	rep := mustRun(t, cfg, func(r *Rank) {
		for i := 0; i < 5; i++ {
			r.SampleLocal("kernel", 2, func() { execs++ })
		}
	})
	// 2 ranks x 2 samples = 4 executions, 6 replays.
	if execs != 4 {
		t.Errorf("burst executed %d times, want 4", execs)
	}
	if rep.BurstsExecuted != 4 || rep.BurstsReplayed != 6 {
		t.Errorf("report: executed %d replayed %d", rep.BurstsExecuted, rep.BurstsReplayed)
	}
}

func TestSampleGlobalIntegration(t *testing.T) {
	cfg := testConfig(4)
	execs := 0
	mustRun(t, cfg, func(r *Rank) {
		r.Comm().Barrier(r)
		for i := 0; i < 3; i++ {
			r.SampleGlobal("kernel", 2, func() { execs++ })
		}
	})
	if execs != 2 {
		t.Errorf("global burst executed %d times, want 2", execs)
	}
}

func TestSharedMallocIntegration(t *testing.T) {
	cfg := testConfig(4)
	rep := mustRun(t, cfg, func(r *Rank) {
		buf := r.SharedMalloc("data", 4000)
		if r.Rank() == 0 {
			buf[0] = 42
		}
		r.Comm().Barrier(r)
		if buf[0] != 42 {
			t.Errorf("rank %d does not see shared write", r.Rank())
		}
		r.SharedFree("data")
	})
	// 4000 bytes folded across 4 ranks: 1000 each.
	if rep.MaxPeakRSS != 1000 {
		t.Errorf("MaxPeakRSS = %v, want 1000", rep.MaxPeakRSS)
	}
}

func TestMallocAccounting(t *testing.T) {
	rep := mustRun(t, testConfig(2), func(r *Rank) {
		buf := r.Malloc(5000)
		r.Free(buf)
	})
	if rep.MaxPeakRSS != 5000 {
		t.Errorf("MaxPeakRSS = %v, want 5000", rep.MaxPeakRSS)
	}
}

func TestSampleFlops(t *testing.T) {
	rep := mustRun(t, testConfig(1), func(r *Rank) {
		r.SampleFlops(3e9) // 3 Gflop on 1 Gf/s node
	})
	if d := float64(rep.SimulatedTime) - 3; d > 1e-9 || d < -1e-9 {
		t.Errorf("SampleFlops charged %v, want 3s", rep.SimulatedTime)
	}
}
