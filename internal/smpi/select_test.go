package smpi

import (
	"strings"
	"testing"

	"smpigo/internal/core"
	"smpigo/internal/platform"
	"smpigo/internal/topology"
)

// TestAutoSelectionTable pins the topology-keyed algorithm selection: ring
// schedules on tori, trees on fat-trees, dragonflies and clusters — the
// acceptance property that "auto" resolves differently on torus:4x4x4 vs
// fattree:4x4:1x4.
func TestAutoSelectionTable(t *testing.T) {
	cases := []struct {
		spec                     string
		wantBcast, wantAllreduce string
	}{
		{"torus16", "ring", "ring"},
		{"torus64", "ring", "ring"},
		{"torus:4x4x4", "ring", "ring"},
		{"fattree16", "binomial", "recursive-doubling"},
		{"fattree64", "binomial", "recursive-doubling"},
		{"fattree:4x4:1x4", "binomial", "recursive-doubling"},
		{"dragonfly72", "binomial", "recursive-doubling"},
		{"dragonfly:3x2x2", "binomial", "recursive-doubling"},
	}
	for _, tc := range cases {
		spec, err := topology.ParseSpec(tc.spec)
		if err != nil {
			t.Fatal(err)
		}
		plat, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		if plat.Topo == nil {
			t.Fatalf("%s: builder left Platform.Topo nil", tc.spec)
		}
		got := Auto().Resolve(plat.Topo)
		if got.Bcast != tc.wantBcast || got.Allreduce != tc.wantAllreduce {
			t.Errorf("%s: auto resolved bcast=%s allreduce=%s, want bcast=%s allreduce=%s",
				tc.spec, got.Bcast, got.Allreduce, tc.wantBcast, tc.wantAllreduce)
		}
	}
	// Clusters and unannotated platforms resolve to the package defaults.
	griffon, err := platform.Griffon().Build()
	if err != nil {
		t.Fatal(err)
	}
	for name, topo := range map[string]*platform.TopoInfo{"griffon": griffon.Topo, "nil": nil} {
		if got, want := Auto().Resolve(topo), DefaultAlgorithms(); got != want {
			t.Errorf("%s: auto resolved %+v, want defaults %+v", name, got, want)
		}
	}
}

// TestResolveOverrideHook checks that concrete fields survive resolution:
// only "auto" fields are selected, the rest are per-collective overrides.
func TestResolveOverrideHook(t *testing.T) {
	torus := &platform.TopoInfo{Kind: "torus"}
	a := Algorithms{Bcast: AlgoAuto, Allreduce: "reduce-bcast"}
	got := a.Resolve(torus)
	if got.Bcast != "ring" {
		t.Errorf("auto bcast on torus resolved to %q, want ring", got.Bcast)
	}
	if got.Allreduce != "reduce-bcast" {
		t.Errorf("explicit allreduce overridden to %q", got.Allreduce)
	}
	if got.Scatter != "" {
		t.Errorf("empty scatter filled to %q by Resolve (defaults belong to fillDefaults)", got.Scatter)
	}
}

// TestAutoRunsEndToEnd exercises "auto" through Run on both acceptance
// topologies: on each platform the auto run must time exactly like a run
// with the selected algorithm forced, and differently from the alternative
// — so the selection demonstrably changes the simulated schedule, not just
// a config string.
func TestAutoRunsEndToEnd(t *testing.T) {
	timeOn := func(specStr string, algos Algorithms) core.Time {
		spec, err := topology.ParseSpec(specStr)
		if err != nil {
			t.Fatal(err)
		}
		plat, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(Config{Procs: 16, Platform: plat, Algorithms: algos}, func(r *Rank) {
			buf := make([]byte, 64*core.KiB)
			r.Comm().Bcast(r, buf, 0)
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.SimulatedTime
	}
	for _, tc := range []struct {
		spec, selected, other string
	}{
		{"torus:4x4", "ring", "binomial"},
		{"fattree:4x4:1x4", "binomial", "ring"},
	} {
		auto := timeOn(tc.spec, Auto())
		sel := timeOn(tc.spec, Algorithms{Bcast: tc.selected})
		alt := timeOn(tc.spec, Algorithms{Bcast: tc.other})
		if auto != sel {
			t.Errorf("%s: auto bcast %v != forced %s %v", tc.spec, auto, tc.selected, sel)
		}
		if auto == alt {
			t.Errorf("%s: auto bcast indistinguishable from %s (%v); selection inert", tc.spec, tc.other, auto)
		}
	}
}

func TestParseAlgorithms(t *testing.T) {
	for _, s := range []string{"", "default", " default "} {
		got, err := ParseAlgorithms(s)
		if err != nil || got != (Algorithms{}) {
			t.Errorf("ParseAlgorithms(%q) = %+v, %v; want zero value", s, got, err)
		}
	}
	for _, s := range []string{"auto", "AUTO", " Auto "} {
		got, err := ParseAlgorithms(s)
		if err != nil || got != Auto() {
			t.Errorf("ParseAlgorithms(%q) = %+v, %v", s, got, err)
		}
	}
	got, err := ParseAlgorithms("bcast=ring, allreduce=auto")
	if err != nil {
		t.Fatal(err)
	}
	if got.Bcast != "ring" || got.Allreduce != AlgoAuto || got.Barrier != "" {
		t.Errorf("override parse = %+v", got)
	}
	for _, bad := range []string{"bcast", "bcast=", "frobnicate=ring"} {
		if _, err := ParseAlgorithms(bad); err == nil {
			t.Errorf("ParseAlgorithms(%q) accepted", bad)
		}
	}
}

// TestHostsMismatchFailsLoudly covers the Config.Hosts validation: too
// short, too long, nil entries, and hosts from a different platform all
// fail naming the offending rank instead of panicking or silently wrapping.
func TestHostsMismatchFailsLoudly(t *testing.T) {
	plat, err := platform.Griffon().Build()
	if err != nil {
		t.Fatal(err)
	}
	other, err := platform.Gdx().Build()
	if err != nil {
		t.Fatal(err)
	}
	noop := func(r *Rank) {}
	run := func(hosts []*platform.Host) error {
		_, err := Run(Config{Procs: 4, Platform: plat, Hosts: hosts}, noop)
		return err
	}
	all := plat.Hosts()

	if err := run(all[:2]); err == nil || !strings.Contains(err.Error(), "rank 2") {
		t.Errorf("short Hosts: got %v, want error naming rank 2", err)
	}
	if err := run(all[:6]); err == nil || !strings.Contains(err.Error(), "hosts[4:]") {
		t.Errorf("long Hosts: got %v, want error naming the unused tail", err)
	}
	if err := run([]*platform.Host{all[0], nil, all[2], all[3]}); err == nil ||
		!strings.Contains(err.Error(), "rank 1") {
		t.Errorf("nil entry: got %v, want error naming rank 1", err)
	}
	foreign := []*platform.Host{all[0], all[1], other.Hosts()[2], all[3]}
	err = run(foreign)
	if err == nil || !strings.Contains(err.Error(), "rank 2") || !strings.Contains(err.Error(), "gdx-2") {
		t.Errorf("foreign host: got %v, want error naming rank 2 and host gdx-2", err)
	}
	// A correct pinning still runs.
	if err := run([]*platform.Host{all[3], all[2], all[1], all[0]}); err != nil {
		t.Errorf("valid pinning rejected: %v", err)
	}
}
