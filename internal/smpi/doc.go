// Package smpi is the paper's primary contribution: an on-line simulator
// for MPI applications. Applications are ordinary Go functions written
// against an MPI-flavoured API (point-to-point operations, collectives,
// communicators, datatypes, reduction operators); their code genuinely
// executes — computing real data, paper Section 1's definition of on-line
// simulation — while every communication and compute burst is timed by a
// simulation backend:
//
//   - BackendSurf: the analytical SimGrid-style backend (package surf) with
//     flow-level contention and the piece-wise linear point-to-point model;
//   - BackendEmu: the packet-level testbed emulator (package emu), which
//     plays the role of the real clusters/MPI implementations the paper
//     validates against.
//
// All ranks of a simulated job run inside one OS process, one goroutine
// per rank, scheduled sequentially by the simix kernel — the single-node
// execution property of the paper's Section 3 — with CPU-burst sampling
// and RAM folding available through the Rank sampling API.
//
// # Rank placement
//
// By default ranks are laid out round-robin over the platform's hosts;
// Config.Hosts pins rank i to Hosts[i] instead. Mappings are typically
// produced by package placement (block, round-robin-across-groups, seeded
// random) and validated here against the platform: a missing, nil, or
// foreign host fails Run with an error naming the offending rank.
//
// # Collective algorithm selection
//
// Each collective has several implementation variants (Algorithms), chosen
// per operation. A field set to "auto" (AlgoAuto) is resolved at Run time
// against the platform's interconnect family (platform.TopoInfo, attached
// by the topology generators and the cluster builder): ring schedules on
// tori, trees on fat-trees/dragonflies/clusters — see Algorithms.Resolve
// for the full table. Concrete fields are never touched, so "auto" and
// forced variants mix freely per collective.
package smpi
