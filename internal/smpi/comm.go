package smpi

import (
	"fmt"
	"sort"
)

// Undefined is the color value for which Split returns no communicator
// (MPI_UNDEFINED).
const Undefined = -3

// Comm is a communicator: an ordered group of world ranks with an isolated
// message-matching namespace. The world communicator is created by Run;
// others derive from it through Dup and Split.
type Comm struct {
	w     *World
	id    int
	group []int // group[commRank] = worldRank
}

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// RankOf returns r's rank within the communicator, or -1 if r is not a
// member.
func (c *Comm) RankOf(r *Rank) int {
	for i, wr := range c.group {
		if wr == r.rank {
			return i
		}
	}
	return -1
}

func (c *Comm) mustRank(r *Rank) int {
	if i := c.RankOf(r); i >= 0 {
		return i
	}
	panic(fmt.Sprintf("smpi: rank %d is not a member of communicator %d", r.rank, c.id))
}

// WorldRank translates a communicator rank to a world rank
// (MPI_Group_translate_ranks against the world group).
func (c *Comm) WorldRank(commRank int) int {
	if commRank < 0 || commRank >= len(c.group) {
		panic(fmt.Sprintf("smpi: rank %d out of range for communicator of size %d", commRank, len(c.group)))
	}
	return c.group[commRank]
}

// Group returns a copy of the communicator's group as world ranks.
func (c *Comm) Group() []int {
	out := make([]int, len(c.group))
	copy(out, c.group)
	return out
}

// getOrCreateComm returns the communicator registered under key, creating
// it with the given group on first use. Collective communicator creation
// relies on every member deriving the identical key and group.
func (w *World) getOrCreateComm(key string, group []int) *Comm {
	if c, ok := w.comms[key]; ok {
		return c
	}
	c := &Comm{w: w, id: w.nextCommID(), group: group}
	w.comms[key] = c
	return c
}

// Dup returns a duplicate communicator with the same group but a fresh
// matching namespace (MPI_Comm_dup). Like its MPI counterpart it is
// collective: every member must call it, in the same order relative to
// other Dup/Split calls on the same communicator.
func (c *Comm) Dup(r *Rank) *Comm {
	seq := r.dupSeq[c.id]
	r.dupSeq[c.id] = seq + 1
	key := fmt.Sprintf("dup:%d:%d", c.id, seq)
	return c.w.getOrCreateComm(key, c.Group())
}

// Split partitions the communicator by color and orders each partition by
// key then by current rank (MPI_Comm_split — implemented here although the
// original SMPI paper lists it as unsupported; see DESIGN.md). Ranks
// passing Undefined as color receive nil.
func (c *Comm) Split(r *Rank, color, key int) *Comm {
	me := c.mustRank(r)
	// Gather everyone's (color, key) — Split is a synchronizing collective.
	mine := Int32sToBytes([]int32{int32(color), int32(key)})
	all := make([]byte, 8*c.Size())
	c.Allgather(r, mine, all)

	seq := r.dupSeq[-1-c.id] // separate sequence space from Dup
	r.dupSeq[-1-c.id] = seq + 1

	if color == Undefined {
		return nil
	}
	type member struct{ color, key, rank int }
	var mates []member
	vals := BytesToInt32s(all)
	for i := 0; i < c.Size(); i++ {
		m := member{color: int(vals[2*i]), key: int(vals[2*i+1]), rank: i}
		if m.color == color {
			mates = append(mates, m)
		}
	}
	sort.Slice(mates, func(i, j int) bool {
		if mates[i].key != mates[j].key {
			return mates[i].key < mates[j].key
		}
		return mates[i].rank < mates[j].rank
	})
	group := make([]int, len(mates))
	for i, m := range mates {
		group[i] = c.group[m.rank]
	}
	_ = me
	commKey := fmt.Sprintf("split:%d:%d:%d", c.id, seq, color)
	return c.w.getOrCreateComm(commKey, group)
}
