package smpi

import (
	"strings"
	"testing"

	"smpigo/internal/core"
	"smpigo/internal/platform"
)

// testConfig returns a ready-to-run config on the griffon platform.
func testConfig(procs int) Config {
	plat, err := platform.Griffon().Build()
	if err != nil {
		panic(err)
	}
	return Config{Procs: procs, Platform: plat}
}

// mustRun runs app and fails the test on error.
func mustRun(t *testing.T, cfg Config, app func(*Rank)) *Report {
	t.Helper()
	rep, err := Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}, func(*Rank) {}); err == nil {
		t.Error("empty config should fail")
	}
	if _, err := Run(Config{Procs: 2}, func(*Rank) {}); err == nil {
		t.Error("missing platform should fail")
	}
}

func TestRankIdentity(t *testing.T) {
	seen := make([]bool, 4)
	mustRun(t, testConfig(4), func(r *Rank) {
		if r.Size() != 4 {
			t.Errorf("Size = %d, want 4", r.Size())
		}
		seen[r.Rank()] = true
		if r.Host() == nil {
			t.Error("rank has no host")
		}
	})
	for i, ok := range seen {
		if !ok {
			t.Errorf("rank %d never ran", i)
		}
	}
}

func TestSendRecvDataIntegrity(t *testing.T) {
	mustRun(t, testConfig(2), func(r *Rank) {
		c := r.Comm()
		if r.Rank() == 0 {
			r.Send(c, []byte("hello, smpi"), 1, 7)
		} else {
			buf := make([]byte, 11)
			st := r.Recv(c, buf, 0, 7)
			if string(buf) != "hello, smpi" {
				t.Errorf("received %q", buf)
			}
			if st.Source != 0 || st.Tag != 7 || st.Count != 11 {
				t.Errorf("status = %+v", st)
			}
		}
	})
}

func TestRendezvousSenderBlocksUntilRecv(t *testing.T) {
	// A 1 MiB message is above the eager threshold: the sender's Send must
	// not complete before the receiver posts its receive at t=1s.
	var sendDone, recvDone core.Time
	mustRun(t, testConfig(2), func(r *Rank) {
		c := r.Comm()
		buf := make([]byte, 1<<20)
		if r.Rank() == 0 {
			r.Send(c, buf, 1, 0)
			sendDone = r.Now()
		} else {
			r.Elapse(1.0)
			r.Recv(c, buf, 0, 0)
			recvDone = r.Now()
		}
	})
	if sendDone < 1.0 {
		t.Errorf("rendezvous send completed at %v, before the recv was posted", sendDone)
	}
	if recvDone < sendDone {
		t.Errorf("recv (%v) before send completion (%v)", recvDone, sendDone)
	}
}

func TestEagerSendCompletesImmediately(t *testing.T) {
	var sendDone core.Time
	mustRun(t, testConfig(2), func(r *Rank) {
		c := r.Comm()
		if r.Rank() == 0 {
			r.Send(c, make([]byte, 1024), 1, 0)
			sendDone = r.Now()
		} else {
			r.Elapse(1.0)
			r.Recv(c, make([]byte, 1024), 0, 0)
		}
	})
	if sendDone != 0 {
		t.Errorf("eager send completed at %v, want 0 (buffered)", sendDone)
	}
}

func TestEagerBufferReusableAfterSend(t *testing.T) {
	// Eager semantics snapshot the payload: overwriting the send buffer
	// after Send must not corrupt the message.
	mustRun(t, testConfig(2), func(r *Rank) {
		c := r.Comm()
		if r.Rank() == 0 {
			buf := []byte{1, 2, 3, 4}
			r.Send(c, buf, 1, 0)
			buf[0] = 99
		} else {
			buf := make([]byte, 4)
			r.Recv(c, buf, 0, 0)
			if buf[0] != 1 {
				t.Errorf("eager payload corrupted: %v", buf)
			}
		}
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	mustRun(t, testConfig(3), func(r *Rank) {
		c := r.Comm()
		switch r.Rank() {
		case 1, 2:
			r.Send(c, []byte{byte(r.Rank())}, 0, 40+r.Rank())
		case 0:
			got := map[int]bool{}
			for i := 0; i < 2; i++ {
				buf := make([]byte, 1)
				st := r.Recv(c, buf, AnySource, AnyTag)
				if int(buf[0]) != st.Source {
					t.Errorf("payload %d does not match source %d", buf[0], st.Source)
				}
				if st.Tag != 40+st.Source {
					t.Errorf("tag %d for source %d", st.Tag, st.Source)
				}
				got[st.Source] = true
			}
			if !got[1] || !got[2] {
				t.Errorf("missing senders: %v", got)
			}
		}
	})
}

func TestNonOvertakingOrder(t *testing.T) {
	mustRun(t, testConfig(2), func(r *Rank) {
		c := r.Comm()
		if r.Rank() == 0 {
			for i := 0; i < 5; i++ {
				r.Send(c, []byte{byte(i)}, 1, 3)
			}
		} else {
			for i := 0; i < 5; i++ {
				buf := make([]byte, 1)
				r.Recv(c, buf, 0, 3)
				if int(buf[0]) != i {
					t.Errorf("message %d arrived out of order (got %d)", i, buf[0])
				}
			}
		}
	})
}

func TestTagSelectivity(t *testing.T) {
	mustRun(t, testConfig(2), func(r *Rank) {
		c := r.Comm()
		if r.Rank() == 0 {
			r.Send(c, []byte{1}, 1, 10)
			r.Send(c, []byte{2}, 1, 20)
		} else {
			buf := make([]byte, 1)
			r.Recv(c, buf, 0, 20)
			if buf[0] != 2 {
				t.Errorf("tag-20 recv got %d", buf[0])
			}
			r.Recv(c, buf, 0, 10)
			if buf[0] != 1 {
				t.Errorf("tag-10 recv got %d", buf[0])
			}
		}
	})
}

func TestSendToSelf(t *testing.T) {
	mustRun(t, testConfig(1), func(r *Rank) {
		c := r.Comm()
		rq := r.Irecv(c, make([]byte, 3), 0, 0)
		r.Send(c, []byte{7, 8, 9}, 0, 0)
		st := r.Wait(rq)
		if st.Count != 3 {
			t.Errorf("self message count %d", st.Count)
		}
	})
}

func TestSendrecvExchange(t *testing.T) {
	mustRun(t, testConfig(2), func(r *Rank) {
		c := r.Comm()
		me := byte(r.Rank())
		peer := 1 - r.Rank()
		out := []byte{me}
		in := make([]byte, 1)
		r.Sendrecv(c, out, peer, 0, in, peer, 0)
		if int(in[0]) != peer {
			t.Errorf("rank %d received %d, want %d", me, in[0], peer)
		}
	})
}

func TestWaitAnyAndTest(t *testing.T) {
	mustRun(t, testConfig(3), func(r *Rank) {
		c := r.Comm()
		switch r.Rank() {
		case 0:
			reqs := []*Request{
				r.Irecv(c, make([]byte, 1), 1, 0),
				r.Irecv(c, make([]byte, 1), 2, 0),
			}
			if ok, _ := r.Test(reqs[0]); ok {
				t.Error("Test true before any message sent")
			}
			i, st := r.WaitAny(reqs)
			if i != 1 || st.Source != 2 {
				t.Errorf("WaitAny = %d, %+v; want rank-2 message first", i, st)
			}
			r.Wait(reqs[0])
		case 1:
			r.Elapse(2.0)
			r.Send(c, []byte{1}, 0, 0)
		case 2:
			r.Send(c, []byte{2}, 0, 0)
		}
	})
}

func TestWaitSome(t *testing.T) {
	mustRun(t, testConfig(3), func(r *Rank) {
		c := r.Comm()
		switch r.Rank() {
		case 0:
			reqs := []*Request{
				r.Irecv(c, make([]byte, 1), 1, 0),
				r.Irecv(c, make([]byte, 1), 2, 0),
			}
			done := r.WaitSome(reqs)
			if len(done) == 0 {
				t.Error("WaitSome returned nothing")
			}
			r.WaitAll(reqs)
		default:
			r.Send(c, []byte{0}, 0, 0)
		}
	})
}

func TestWaitAnyAllNil(t *testing.T) {
	mustRun(t, testConfig(1), func(r *Rank) {
		if i, _ := r.WaitAny([]*Request{nil, nil}); i != -1 {
			t.Errorf("WaitAny(nil...) = %d, want -1", i)
		}
	})
}

func TestPersistentRequests(t *testing.T) {
	mustRun(t, testConfig(2), func(r *Rank) {
		c := r.Comm()
		if r.Rank() == 0 {
			buf := []byte{0}
			req := r.SendInit(c, buf, 1, 0)
			for i := 0; i < 3; i++ {
				buf[0] = byte(10 + i)
				r.Start(req)
				r.Wait(req)
			}
		} else {
			buf := make([]byte, 1)
			req := r.RecvInit(c, buf, 0, 0)
			for i := 0; i < 3; i++ {
				r.Start(req)
				r.Wait(req)
				if int(buf[0]) != 10+i {
					t.Errorf("iteration %d received %d", i, buf[0])
				}
			}
		}
	})
}

func TestStartOnActivePersistentPanics(t *testing.T) {
	_, err := Run(testConfig(2), func(r *Rank) {
		if r.Rank() == 0 {
			req := r.SendInit(r.Comm(), []byte{1}, 1, 0)
			r.Start(req)
			r.Start(req) // must panic
		} else {
			r.Recv(r.Comm(), make([]byte, 1), 0, 0)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("want panic error, got %v", err)
	}
}

func TestTruncationPanics(t *testing.T) {
	_, err := Run(testConfig(2), func(r *Rank) {
		c := r.Comm()
		if r.Rank() == 0 {
			r.Send(c, make([]byte, 100), 1, 0)
		} else {
			r.Recv(c, make([]byte, 10), 0, 0)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "truncation") {
		t.Errorf("want truncation panic, got %v", err)
	}
}

func TestDeadlockSurfacesAsError(t *testing.T) {
	_, err := Run(testConfig(2), func(r *Rank) {
		if r.Rank() == 0 {
			r.Recv(r.Comm(), make([]byte, 1), 1, 0) // never sent
		}
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("want deadlock error, got %v", err)
	}
}

func TestIprobe(t *testing.T) {
	mustRun(t, testConfig(2), func(r *Rank) {
		c := r.Comm()
		if r.Rank() == 0 {
			r.Send(c, []byte{1, 2, 3}, 1, 5)
		} else {
			if ok, _ := r.Iprobe(c, 0, 99); ok {
				t.Error("Iprobe matched wrong tag")
			}
			st := r.Probe(c, 0, 5)
			if st.Source != 0 || st.Tag != 5 || st.Count != 3 {
				t.Errorf("Probe status = %+v", st)
			}
			// Probing must not consume: the receive still works.
			buf := make([]byte, 3)
			r.Recv(c, buf, 0, 5)
			if buf[2] != 3 {
				t.Errorf("payload after probe: %v", buf)
			}
		}
	})
}

func TestProbeBlocksUntilMessage(t *testing.T) {
	var probed core.Time
	mustRun(t, testConfig(2), func(r *Rank) {
		c := r.Comm()
		if r.Rank() == 0 {
			r.Elapse(2.0)
			r.Send(c, []byte{9}, 1, 0)
		} else {
			r.Probe(c, AnySource, AnyTag)
			probed = r.Now()
			r.Recv(c, make([]byte, 1), 0, 0)
		}
	})
	if probed < 2.0 {
		t.Errorf("Probe returned at %v, before the send at 2.0", probed)
	}
}

func TestProbeRendezvousSize(t *testing.T) {
	mustRun(t, testConfig(2), func(r *Rank) {
		c := r.Comm()
		big := int(128 * core.KiB)
		if r.Rank() == 0 {
			req := r.Isend(c, make([]byte, big), 1, 0)
			defer r.Wait(req)
		} else {
			st := r.Probe(c, 0, 0)
			if st.Count != big {
				t.Errorf("probed size %d, want %d", st.Count, big)
			}
			r.Recv(c, make([]byte, big), 0, 0)
		}
	})
}

func TestComputeAdvancesSimulatedTime(t *testing.T) {
	rep := mustRun(t, testConfig(1), func(r *Rank) {
		r.Compute(2e9) // 2 Gflop on a 1 Gf/s griffon node
	})
	if diff := float64(rep.SimulatedTime) - 2; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("simulated time %v, want 2s", rep.SimulatedTime)
	}
}

func TestDeterministicSimulatedTime(t *testing.T) {
	app := func(r *Rank) {
		c := r.Comm()
		buf := make([]byte, 128*core.KiB)
		if r.Rank() == 0 {
			for dst := 1; dst < r.Size(); dst++ {
				r.Send(c, buf, dst, 0)
			}
		} else {
			r.Recv(c, buf, 0, 0)
		}
	}
	a := mustRun(t, testConfig(4), app).SimulatedTime
	b := mustRun(t, testConfig(4), app).SimulatedTime
	if a != b {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}

func TestEmuBackendRuns(t *testing.T) {
	cfg := testConfig(2)
	cfg.Backend = BackendEmu
	rep := mustRun(t, cfg, func(r *Rank) {
		c := r.Comm()
		if r.Rank() == 0 {
			r.Send(c, make([]byte, 1<<20), 1, 0)
		} else {
			r.Recv(c, make([]byte, 1<<20), 0, 0)
		}
	})
	if rep.SimulatedTime <= 0 {
		t.Error("emu backend produced zero simulated time")
	}
}

func TestReportTrafficStats(t *testing.T) {
	rep := mustRun(t, testConfig(2), func(r *Rank) {
		c := r.Comm()
		if r.Rank() == 0 {
			r.Send(c, make([]byte, 1000), 1, 0)
		} else {
			r.Recv(c, make([]byte, 1000), 0, 0)
		}
	})
	if rep.BytesOnWire != 1000 || rep.Messages != 1 {
		t.Errorf("traffic stats = %d bytes / %d msgs", rep.BytesOnWire, rep.Messages)
	}
}

func TestOversubscriptionPlacement(t *testing.T) {
	// More ranks than hosts wraps round-robin without error.
	plat := platform.New("tiny")
	h := plat.AddHost("only", 1e9)
	_ = h
	plat.AddHost("other", 1e9)
	// two hosts, no links needed if all traffic is loopback on same host
	cfg := Config{Procs: 4, Platform: plat}
	mustRun(t, cfg, func(r *Rank) {
		r.Compute(1e6)
	})
}

func TestSpeedFactorScalesElapse(t *testing.T) {
	cfg := testConfig(1)
	cfg.SpeedFactor = 2 // target nodes twice as slow as host measurements
	rep := mustRun(t, cfg, func(r *Rank) {
		r.SampleLocal("burst", 0, nil) // no samples: zero replay
		r.Elapse(1)
	})
	if rep.SimulatedTime < 1 {
		t.Errorf("simulated %v", rep.SimulatedTime)
	}
}
