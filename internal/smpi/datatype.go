package smpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Datatype describes the element type of a communication buffer, as in the
// MPI standard's predefined datatypes. Buffers themselves are []byte; the
// datatype gives reduction operators their element size and interpretation.
type Datatype struct {
	name string
	size int
}

// Size returns the datatype's size in bytes.
func (d Datatype) Size() int { return d.size }

// Name returns the datatype's MPI-ish name.
func (d Datatype) Name() string { return d.name }

// Predefined datatypes.
var (
	Byte    = Datatype{"MPI_BYTE", 1}
	Int32   = Datatype{"MPI_INT", 4}
	Int64   = Datatype{"MPI_LONG_LONG", 8}
	Float32 = Datatype{"MPI_FLOAT", 4}
	Float64 = Datatype{"MPI_DOUBLE", 8}
)

// Contiguous returns a user-defined datatype of n contiguous elements of
// oldtype (MPI_Type_contiguous). Reductions treat it element-wise with the
// underlying type's semantics only when oldtype is predefined scalar;
// otherwise it is opaque bytes.
func Contiguous(n int, oldtype Datatype) Datatype {
	return Datatype{
		name: fmt.Sprintf("contig(%d,%s)", n, oldtype.name),
		size: n * oldtype.size,
	}
}

// Op is a reduction operator (MPI_Op): a named binary function combining a
// source buffer into a destination buffer element-wise.
type Op struct {
	name  string
	apply func(dst, src []byte, dt Datatype)
}

// Name returns the operator name.
func (o Op) Name() string { return o.name }

// Apply combines src into dst element-wise (dst = dst OP src).
// It panics if the buffers disagree in length or are not a whole number of
// elements.
func (o Op) Apply(dst, src []byte, dt Datatype) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("smpi: op %s on buffers of different length (%d vs %d)", o.name, len(dst), len(src)))
	}
	if dt.size <= 0 || len(dst)%dt.size != 0 {
		panic(fmt.Sprintf("smpi: op %s buffer length %d not a multiple of %s size %d", o.name, len(dst), dt.name, dt.size))
	}
	o.apply(dst, src, dt)
}

// NewOp returns a user-defined operator (MPI_Op_create).
func NewOp(name string, apply func(dst, src []byte, dt Datatype)) Op {
	return Op{name: name, apply: apply}
}

// numericOp builds an element-wise operator from per-type combiners.
func numericOp(name string, i32 func(a, b int32) int32, i64 func(a, b int64) int64,
	f32 func(a, b float32) float32, f64 func(a, b float64) float64) Op {
	return Op{name: name, apply: func(dst, src []byte, dt Datatype) {
		switch dt {
		case Int32:
			for i := 0; i+4 <= len(dst); i += 4 {
				a := int32(binary.LittleEndian.Uint32(dst[i:]))
				b := int32(binary.LittleEndian.Uint32(src[i:]))
				binary.LittleEndian.PutUint32(dst[i:], uint32(i32(a, b)))
			}
		case Int64:
			for i := 0; i+8 <= len(dst); i += 8 {
				a := int64(binary.LittleEndian.Uint64(dst[i:]))
				b := int64(binary.LittleEndian.Uint64(src[i:]))
				binary.LittleEndian.PutUint64(dst[i:], uint64(i64(a, b)))
			}
		case Float32:
			for i := 0; i+4 <= len(dst); i += 4 {
				a := math.Float32frombits(binary.LittleEndian.Uint32(dst[i:]))
				b := math.Float32frombits(binary.LittleEndian.Uint32(src[i:]))
				binary.LittleEndian.PutUint32(dst[i:], math.Float32bits(f32(a, b)))
			}
		case Float64:
			for i := 0; i+8 <= len(dst); i += 8 {
				a := math.Float64frombits(binary.LittleEndian.Uint64(dst[i:]))
				b := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
				binary.LittleEndian.PutUint64(dst[i:], math.Float64bits(f64(a, b)))
			}
		case Byte:
			for i := range dst {
				dst[i] = byte(i32(int32(dst[i]), int32(src[i])))
			}
		default:
			panic(fmt.Sprintf("smpi: op %s unsupported on datatype %s", name, dt.name))
		}
	}}
}

// Predefined reduction operators.
var (
	OpSum = numericOp("MPI_SUM",
		func(a, b int32) int32 { return a + b },
		func(a, b int64) int64 { return a + b },
		func(a, b float32) float32 { return a + b },
		func(a, b float64) float64 { return a + b })
	OpProd = numericOp("MPI_PROD",
		func(a, b int32) int32 { return a * b },
		func(a, b int64) int64 { return a * b },
		func(a, b float32) float32 { return a * b },
		func(a, b float64) float64 { return a * b })
	OpMax = numericOp("MPI_MAX",
		func(a, b int32) int32 { return max32(a, b) },
		func(a, b int64) int64 { return max64(a, b) },
		func(a, b float32) float32 { return float32(math.Max(float64(a), float64(b))) },
		math.Max)
	OpMin = numericOp("MPI_MIN",
		func(a, b int32) int32 { return -max32(-a, -b) },
		func(a, b int64) int64 { return -max64(-a, -b) },
		func(a, b float32) float32 { return float32(math.Min(float64(a), float64(b))) },
		math.Min)
	OpBAnd = numericOp("MPI_BAND",
		func(a, b int32) int32 { return a & b },
		func(a, b int64) int64 { return a & b },
		nanOp32, nanOp64)
	OpBOr = numericOp("MPI_BOR",
		func(a, b int32) int32 { return a | b },
		func(a, b int64) int64 { return a | b },
		nanOp32, nanOp64)
	OpLAnd = numericOp("MPI_LAND",
		func(a, b int32) int32 { return b2i(a != 0 && b != 0) },
		func(a, b int64) int64 { return int64(b2i(a != 0 && b != 0)) },
		nanOp32, nanOp64)
	OpLOr = numericOp("MPI_LOR",
		func(a, b int32) int32 { return b2i(a != 0 || b != 0) },
		func(a, b int64) int64 { return int64(b2i(a != 0 || b != 0)) },
		nanOp32, nanOp64)
)

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

func nanOp32(a, b float32) float32 {
	panic("smpi: bitwise/logical op on floating-point datatype")
}

func nanOp64(a, b float64) float64 {
	panic("smpi: bitwise/logical op on floating-point datatype")
}

// --- typed buffer helpers (little-endian, matching the operators) ---

// Float64sToBytes encodes vs into a fresh byte buffer.
func Float64sToBytes(vs []float64) []byte {
	out := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// BytesToFloat64s decodes buf (length multiple of 8) into float64s.
func BytesToFloat64s(buf []byte) []float64 {
	out := make([]float64, len(buf)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out
}

// Int64sToBytes encodes vs into a fresh byte buffer.
func Int64sToBytes(vs []int64) []byte {
	out := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(v))
	}
	return out
}

// BytesToInt64s decodes buf (length multiple of 8) into int64s.
func BytesToInt64s(buf []byte) []int64 {
	out := make([]int64, len(buf)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out
}

// Int32sToBytes encodes vs into a fresh byte buffer.
func Int32sToBytes(vs []int32) []byte {
	out := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

// BytesToInt32s decodes buf (length multiple of 4) into int32s.
func BytesToInt32s(buf []byte) []int32 {
	out := make([]int32, len(buf)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return out
}
