package smpi

import (
	"fmt"

	"smpigo/internal/platform"
	"smpigo/internal/simix"
)

// Wildcards for Recv/Irecv source and tag matching.
const (
	// AnySource matches a message from any rank (MPI_ANY_SOURCE).
	AnySource = -1
	// AnyTag matches a message with any tag (MPI_ANY_TAG).
	AnyTag = -2
)

// Status describes a completed receive (MPI_Status).
type Status struct {
	// Source is the sender's rank in the receive's communicator.
	Source int
	// Tag is the message tag.
	Tag int
	// Count is the message payload size in bytes.
	Count int
}

type reqKind int

const (
	sendKind reqKind = iota
	recvKind
)

// Request is a communication handle (MPI_Request), returned by the
// non-blocking and persistent operations and completed through Wait/Test.
type Request struct {
	owner *Rank
	kind  reqKind
	done  *simix.Future
	// Status is filled when the request completes (receives only).
	Status Status

	// Persistent-request state (SendInit/RecvInit/Start).
	persistent bool
	active     bool
	comm       *Comm
	buf        []byte
	peer       int
	tag        int

	// Tracing state: the rank-local request index assigned by the
	// recorder (-1 when tracing is off) and the wildcard-source resolver.
	traceIdx     int
	traceResolve func(int)
}

// Done reports whether the request has completed (like a successful
// MPI_Test without status).
func (q *Request) Done() bool { return q != nil && q.done != nil && q.done.Done() }

type mbKey struct {
	comm int
	rank int // receiver's rank in the communicator
}

// envelope is a message in flight or queued as unexpected.
type envelope struct {
	src, tag int
	eager    bool
	data     []byte // payload snapshot (eager: at send; rendezvous: at match)
	srcBuf   []byte // rendezvous: sender buffer, snapshotted at match time
	srcHost  *platform.Host
	dstHost  *platform.Host
	wire     *simix.Future
	sendReq  *Request
}

// posted is a receive waiting for a matching send.
type posted struct {
	src, tag int
	buf      []byte
	req      *Request
}

type mailbox struct {
	sends   []*envelope
	recvs   []*posted
	probers []*simix.Future
}

// wakeProbers releases every actor blocked in Probe on this mailbox.
func (mb *mailbox) wakeProbers(w *World) {
	for _, f := range mb.probers {
		w.kernel.Fulfill(f, nil)
	}
	mb.probers = nil
}

func (w *World) mailbox(key mbKey) *mailbox {
	mb, ok := w.mailboxes[key]
	if !ok {
		mb = &mailbox{}
		w.mailboxes[key] = mb
	}
	return mb
}

func matches(envSrc, envTag, wantSrc, wantTag int) bool {
	return (wantSrc == AnySource || envSrc == wantSrc) &&
		(wantTag == AnyTag || envTag == wantTag)
}

func clone(buf []byte) []byte {
	out := make([]byte, len(buf))
	copy(out, buf)
	return out
}

// deliver wires an envelope to a posted receive: when the transfer
// completes, the payload lands in the receive buffer and both requests
// (where applicable) complete.
func (w *World) deliver(env *envelope, p *posted) {
	w.kernel.OnFulfill(env.wire, func(any) {
		if len(env.data) > len(p.buf) {
			panic(fmt.Sprintf("smpi: message truncation: %d-byte message into %d-byte buffer (src %d, tag %d)",
				len(env.data), len(p.buf), env.src, env.tag))
		}
		copy(p.buf, env.data)
		p.req.Status = Status{Source: env.src, Tag: env.tag, Count: len(env.data)}
		if p.req.traceResolve != nil {
			// Patch the recorded receive with the matched source so that
			// wildcard receives replay deterministically.
			p.req.traceResolve(p.req.comm.group[env.src])
		}
		w.kernel.Fulfill(p.req.done, nil)
		if !env.eager {
			w.kernel.Fulfill(env.sendReq.done, nil)
		}
	})
}

// startRendezvous begins the payload transfer of a rendezvous send that
// just matched a posted receive. No snapshot is taken: MPI requires the
// sender's buffer to stay untouched until the send completes, and the send
// completes exactly when this transfer delivers, so referencing the buffer
// directly is safe and keeps large transfers zero-copy (one copy into the
// receive buffer at delivery).
func (w *World) startRendezvous(env *envelope, p *posted) {
	env.data = env.srcBuf
	env.srcBuf = nil
	env.wire = w.transfer(env.srcHost, env.dstHost, int64(len(env.data)))
	w.deliver(env, p)
}

// isendInto performs the send protocol, completing req accordingly.
func (w *World) isendInto(r *Rank, c *Comm, buf []byte, dst, tag int, req *Request) {
	myRank := c.mustRank(r)
	if dst < 0 || dst >= c.Size() {
		panic(fmt.Sprintf("smpi: send to invalid rank %d in communicator of size %d", dst, c.Size()))
	}
	dstHost := w.ranks[c.group[dst]].host
	env := &envelope{
		src:     myRank,
		tag:     tag,
		srcHost: r.host,
		dstHost: dstHost,
		sendReq: req,
	}
	mb := w.mailbox(mbKey{comm: c.id, rank: dst})

	if int64(len(buf)) < w.cfg.EagerThreshold {
		// Eager: snapshot the payload, push it to the wire immediately,
		// and complete the send locally (buffered semantics).
		env.eager = true
		env.data = clone(buf)
		env.wire = w.transfer(r.host, dstHost, int64(len(buf)))
		w.kernel.Fulfill(req.done, nil)
		if p := mb.takeRecv(env); p != nil {
			w.deliver(env, p)
		} else {
			mb.sends = append(mb.sends, env)
			mb.wakeProbers(w)
		}
		return
	}

	// Rendezvous: nothing moves until a matching receive is posted; the
	// send completes only when the payload has been delivered
	// (synchronous-mode semantics above the eager threshold).
	env.srcBuf = buf
	if p := mb.takeRecv(env); p != nil {
		w.startRendezvous(env, p)
	} else {
		mb.sends = append(mb.sends, env)
		mb.wakeProbers(w)
	}
}

// irecvInto performs the receive protocol, completing req when a matching
// message has fully arrived.
func (w *World) irecvInto(r *Rank, c *Comm, buf []byte, src, tag int, req *Request) {
	myRank := c.mustRank(r)
	if src != AnySource && (src < 0 || src >= c.Size()) {
		panic(fmt.Sprintf("smpi: receive from invalid rank %d in communicator of size %d", src, c.Size()))
	}
	mb := w.mailbox(mbKey{comm: c.id, rank: myRank})
	p := &posted{src: src, tag: tag, buf: buf, req: req}
	if env := mb.takeSend(src, tag); env != nil {
		if env.eager {
			w.deliver(env, p)
		} else {
			w.startRendezvous(env, p)
		}
		return
	}
	mb.recvs = append(mb.recvs, p)
}

// takeRecv removes and returns the earliest posted receive matching env.
func (mb *mailbox) takeRecv(env *envelope) *posted {
	for i, p := range mb.recvs {
		if matches(env.src, env.tag, p.src, p.tag) {
			mb.recvs = append(mb.recvs[:i], mb.recvs[i+1:]...)
			return p
		}
	}
	return nil
}

// takeSend removes and returns the earliest queued send matching (src,tag).
func (mb *mailbox) takeSend(src, tag int) *envelope {
	for i, env := range mb.sends {
		if matches(env.src, env.tag, src, tag) {
			mb.sends = append(mb.sends[:i], mb.sends[i+1:]...)
			return env
		}
	}
	return nil
}

// --- public point-to-point API ---

// Isend starts a non-blocking send of buf to rank dst with the given tag
// (MPI_Isend). The buffer must not be modified until the request completes.
func (r *Rank) Isend(c *Comm, buf []byte, dst, tag int) *Request {
	req := &Request{owner: r, kind: sendKind, done: simix.NewFuture(), traceIdx: -1}
	if tr := r.w.cfg.Tracer; tr != nil {
		req.traceIdx = tr.RecordIsend(r.rank, c.group[dst], tag, int64(len(buf)))
	}
	r.w.isendInto(r, c, buf, dst, tag, req)
	return req
}

// Irecv starts a non-blocking receive into buf from rank src (or AnySource)
// with the given tag (or AnyTag) — MPI_Irecv.
func (r *Rank) Irecv(c *Comm, buf []byte, src, tag int) *Request {
	req := &Request{owner: r, kind: recvKind, done: simix.NewFuture(), comm: c, traceIdx: -1}
	if tr := r.w.cfg.Tracer; tr != nil {
		peer := src
		if src >= 0 {
			peer = c.group[src]
		}
		req.traceIdx, req.traceResolve = tr.RecordIrecv(r.rank, peer, tag, int64(len(buf)))
	}
	r.w.irecvInto(r, c, buf, src, tag, req)
	return req
}

// Send performs a blocking send (MPI_Send): buffered below the eager
// threshold, synchronous above it.
func (r *Rank) Send(c *Comm, buf []byte, dst, tag int) {
	r.Wait(r.Isend(c, buf, dst, tag))
}

// Recv performs a blocking receive (MPI_Recv) and returns its status.
func (r *Rank) Recv(c *Comm, buf []byte, src, tag int) Status {
	return r.Wait(r.Irecv(c, buf, src, tag))
}

// Sendrecv performs the combined send+receive (MPI_Sendrecv).
func (r *Rank) Sendrecv(c *Comm, sendbuf []byte, dst, sendtag int,
	recvbuf []byte, src, recvtag int) Status {
	rq := r.Irecv(c, recvbuf, src, recvtag)
	sq := r.Isend(c, sendbuf, dst, sendtag)
	r.Wait(sq)
	return r.Wait(rq)
}

// Wait blocks until the request completes and returns its status
// (MPI_Wait). Persistent requests become inactive again.
func (r *Rank) Wait(q *Request) Status {
	if q == nil {
		return Status{}
	}
	if tr := r.w.cfg.Tracer; tr != nil && q.traceIdx >= 0 {
		tr.RecordWait(r.rank, q.traceIdx)
	}
	r.proc.Wait(q.done)
	if q.persistent {
		q.active = false
	}
	return q.Status
}

// WaitAll blocks until every non-nil request completes (MPI_Waitall).
func (r *Rank) WaitAll(qs []*Request) {
	for _, q := range qs {
		r.Wait(q)
	}
}

// WaitAny blocks until at least one request completes and returns its index
// and status (MPI_Waitany). It returns -1 if every request is nil.
func (r *Rank) WaitAny(qs []*Request) (int, Status) {
	futures := make([]*simix.Future, len(qs))
	all := true
	for i, q := range qs {
		if q != nil {
			futures[i] = q.done
			all = false
		}
	}
	if all {
		return -1, Status{}
	}
	i, _ := r.proc.WaitAny(futures)
	if tr := r.w.cfg.Tracer; tr != nil && qs[i].traceIdx >= 0 {
		tr.RecordWait(r.rank, qs[i].traceIdx)
	}
	if qs[i].persistent {
		qs[i].active = false
	}
	return i, qs[i].Status
}

// WaitSome blocks until at least one request completes and returns the
// indices of all completed requests (MPI_Waitsome). It returns nil if every
// request is nil.
func (r *Rank) WaitSome(qs []*Request) []int {
	if i, _ := r.WaitAny(qs); i < 0 {
		return nil
	}
	var done []int
	for i, q := range qs {
		if q != nil && q.Done() {
			if q.persistent {
				q.active = false
			}
			done = append(done, i)
		}
	}
	return done
}

// Test reports whether the request has completed, without blocking
// (MPI_Test).
func (r *Rank) Test(q *Request) (bool, Status) {
	if q == nil || !q.Done() {
		return false, Status{}
	}
	if q.persistent {
		q.active = false
	}
	return true, q.Status
}

// TestAny returns the index and status of a completed request, or -1
// (MPI_Testany).
func (r *Rank) TestAny(qs []*Request) (int, Status) {
	for i, q := range qs {
		if ok, st := r.Test(q); ok {
			_ = st
			return i, q.Status
		}
	}
	return -1, Status{}
}

// Iprobe reports whether a message matching (src, tag) — wildcards allowed
// — is queued for this rank, without receiving it (MPI_Iprobe). When true,
// the returned status describes the message.
func (r *Rank) Iprobe(c *Comm, src, tag int) (bool, Status) {
	me := c.mustRank(r)
	mb := r.w.mailbox(mbKey{comm: c.id, rank: me})
	for _, env := range mb.sends {
		if matches(env.src, env.tag, src, tag) {
			size := len(env.data)
			if !env.eager {
				size = len(env.srcBuf)
			}
			return true, Status{Source: env.src, Tag: env.tag, Count: size}
		}
	}
	return false, Status{}
}

// Probe blocks until a message matching (src, tag) is queued and returns
// its status without receiving it (MPI_Probe).
func (r *Rank) Probe(c *Comm, src, tag int) Status {
	me := c.mustRank(r)
	mb := r.w.mailbox(mbKey{comm: c.id, rank: me})
	for {
		if ok, st := r.Iprobe(c, src, tag); ok {
			return st
		}
		f := simix.NewFuture()
		mb.probers = append(mb.probers, f)
		r.proc.Wait(f)
	}
}

// --- persistent requests (MPI_Send_init / MPI_Recv_init / MPI_Start) ---

// SendInit creates an inactive persistent send request.
func (r *Rank) SendInit(c *Comm, buf []byte, dst, tag int) *Request {
	return &Request{
		owner: r, kind: sendKind, persistent: true,
		comm: c, buf: buf, peer: dst, tag: tag,
	}
}

// RecvInit creates an inactive persistent receive request.
func (r *Rank) RecvInit(c *Comm, buf []byte, src, tag int) *Request {
	return &Request{
		owner: r, kind: recvKind, persistent: true,
		comm: c, buf: buf, peer: src, tag: tag,
	}
}

// Start activates a persistent request (MPI_Start).
func (r *Rank) Start(q *Request) {
	if q == nil || !q.persistent {
		panic("smpi: Start on a non-persistent request")
	}
	if q.active {
		panic("smpi: Start on an already-active persistent request")
	}
	q.active = true
	q.done = simix.NewFuture()
	q.traceIdx = -1
	if q.kind == sendKind {
		if tr := r.w.cfg.Tracer; tr != nil {
			q.traceIdx = tr.RecordIsend(r.rank, q.comm.group[q.peer], q.tag, int64(len(q.buf)))
		}
		r.w.isendInto(r, q.comm, q.buf, q.peer, q.tag, q)
	} else {
		if tr := r.w.cfg.Tracer; tr != nil {
			peer := q.peer
			if peer >= 0 {
				peer = q.comm.group[peer]
			}
			q.traceIdx, q.traceResolve = tr.RecordIrecv(r.rank, peer, q.tag, int64(len(q.buf)))
		}
		r.w.irecvInto(r, q.comm, q.buf, q.peer, q.tag, q)
	}
}

// StartAll activates a set of persistent requests (MPI_Startall).
func (r *Rank) StartAll(qs []*Request) {
	for _, q := range qs {
		r.Start(q)
	}
}
