package smpi

import (
	"fmt"
	"strings"

	"smpigo/internal/platform"
)

// AlgoAuto is the sentinel algorithm name that selects a collective's
// implementation from the target platform's interconnect (platform.TopoInfo)
// at Run time. Any Algorithms field may be set to it individually — fields
// holding a concrete algorithm name are never touched, which is the
// per-collective override hook: Algorithms{Bcast: "auto", Allreduce: "ring"}
// auto-selects the broadcast but forces the ring allreduce everywhere.
const AlgoAuto = "auto"

// Auto returns an Algorithms with every collective set to AlgoAuto.
func Auto() Algorithms {
	return Algorithms{
		Bcast:     AlgoAuto,
		Scatter:   AlgoAuto,
		Gather:    AlgoAuto,
		Allgather: AlgoAuto,
		Alltoall:  AlgoAuto,
		Reduce:    AlgoAuto,
		Allreduce: AlgoAuto,
		Barrier:   AlgoAuto,
	}
}

// Resolve replaces every AlgoAuto field with the algorithm selected for the
// given interconnect, leaving concrete (and empty) fields untouched. The
// selection keys on the structural family recorded by the platform builders
// (topology generators, the cluster builder):
//
//   - torus: ring broadcast and ring allreduce. A ring schedule only talks
//     to rank neighbors, which dimension-order routing maps onto single
//     neighbor cables, while binomial trees and recursive doubling jump
//     half the machine per step and pay the torus diameter on every hop.
//   - fattree, dragonfly, cluster: binomial-tree broadcast and
//     recursive-doubling allreduce. Tree schedules finish in log2(P) steps,
//     and the spine/backbone/global links that make far hops expensive on a
//     torus are exactly what these topologies provision (D-mod-k fat-trees
//     and dragonfly global cables are built for cross-machine traffic), so
//     the step count dominates.
//   - nil/unknown interconnects fall back to the package defaults, which
//     equal the fat-tree selection.
//
// The remaining collectives resolve to their defaults on every family: the
// pairwise alltoall, binomial scatter/gather/reduce, ring allgather, and
// dissemination barrier are family-neutral in this model (allgather's
// default already is the neighbor-friendly ring).
func (a Algorithms) Resolve(topo *platform.TopoInfo) Algorithms {
	resolved := DefaultAlgorithms()
	if topo != nil && topo.Kind == "torus" {
		resolved.Bcast = "ring"
		resolved.Allreduce = "ring"
	}
	pick := func(field *string, sel string) {
		if *field == AlgoAuto {
			*field = sel
		}
	}
	pick(&a.Bcast, resolved.Bcast)
	pick(&a.Scatter, resolved.Scatter)
	pick(&a.Gather, resolved.Gather)
	pick(&a.Allgather, resolved.Allgather)
	pick(&a.Alltoall, resolved.Alltoall)
	pick(&a.Reduce, resolved.Reduce)
	pick(&a.Allreduce, resolved.Allreduce)
	pick(&a.Barrier, resolved.Barrier)
	return a
}

// ParseAlgorithms parses the -collectives flag grammar shared by smpirun
// and the campaign subcommand:
//
//	""            package defaults per collective
//	"default"     same as ""
//	"auto"        every collective selected from the platform (Auto)
//	"<op>=<algo>[,<op>=<algo>...]"   per-collective overrides, e.g.
//	    "bcast=ring,allreduce=auto" — unnamed collectives keep defaults
//
// Ops are the lower-case Algorithms field names (bcast, scatter, gather,
// allgather, alltoall, reduce, allreduce, barrier); algorithm names are
// validated at Run time by the collective implementations, except that
// "auto" is resolved against the platform first.
func ParseAlgorithms(s string) (Algorithms, error) {
	var a Algorithms
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "default":
		return a, nil
	case AlgoAuto:
		return Auto(), nil
	}
	fields := map[string]*string{
		"bcast":     &a.Bcast,
		"scatter":   &a.Scatter,
		"gather":    &a.Gather,
		"allgather": &a.Allgather,
		"alltoall":  &a.Alltoall,
		"reduce":    &a.Reduce,
		"allreduce": &a.Allreduce,
		"barrier":   &a.Barrier,
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		op, algo, found := strings.Cut(part, "=")
		if !found || algo == "" {
			return Algorithms{}, fmt.Errorf("smpi: collectives entry %q: want <op>=<algo>, \"auto\", or \"default\"", part)
		}
		field, ok := fields[strings.ToLower(strings.TrimSpace(op))]
		if !ok {
			return Algorithms{}, fmt.Errorf("smpi: unknown collective %q in %q (want bcast, scatter, gather, allgather, alltoall, reduce, allreduce, barrier)", op, s)
		}
		*field = strings.TrimSpace(algo)
	}
	return a, nil
}

// Summary renders the non-empty fields as "op=algo" pairs in a fixed order,
// for experiment notes and smpirun output.
func (a Algorithms) Summary() string {
	var parts []string
	add := func(op, algo string) {
		if algo != "" {
			parts = append(parts, op+"="+algo)
		}
	}
	add("bcast", a.Bcast)
	add("scatter", a.Scatter)
	add("gather", a.Gather)
	add("allgather", a.Allgather)
	add("alltoall", a.Alltoall)
	add("reduce", a.Reduce)
	add("allreduce", a.Allreduce)
	add("barrier", a.Barrier)
	return strings.Join(parts, " ")
}
