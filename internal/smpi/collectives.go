package smpi

import (
	"fmt"
	"math/bits"
)

// Algorithms selects the implementation variant of each collective. As in
// MPICH2/OpenMPI (paper Section 5.3), no variant is universally best; SMPI
// originally shipped one per operation and planned multiple — this
// reproduction provides the main alternatives so the choice can be studied
// (see the ablation benchmarks). Besides the concrete variants listed per
// field, every field accepts "auto" (AlgoAuto), which picks the variant
// from the target platform's interconnect family at Run time — ring
// schedules on tori, trees on fat-trees/dragonflies/clusters; see Resolve.
type Algorithms struct {
	// Bcast: "binomial" (default), "ring" (store-and-forward chain, the
	// neighbor-friendly schedule on ring-like topologies), or "flat".
	Bcast string
	// Scatter: "binomial" (default, the paper's Figure 6 tree) or "flat".
	Scatter string
	// Gather: "binomial" (default) or "flat".
	Gather string
	// Allgather: "ring" (default) or "gather-bcast".
	Allgather string
	// Alltoall: "pairwise" (default, the paper's Figure 10), "bruck"
	// (log-step algorithm, better for small messages), or "flat".
	Alltoall string
	// Reduce: "binomial" (default) or "flat".
	Reduce string
	// Allreduce: "recursive-doubling" (default; falls back to
	// reduce+bcast for non-power-of-two sizes), "ring" (chunked
	// reduce-scatter + allgather ring, bandwidth-optimal and
	// neighbor-friendly; falls back to reduce+bcast when the buffer has
	// fewer elements than ranks), or "reduce-bcast".
	Allreduce string
	// Barrier: "dissemination" (default) or "tree".
	Barrier string
}

// DefaultAlgorithms returns the per-collective package defaults — the
// variants listed first on each Algorithms field. Empty fields fill from it
// at Run time, and the "auto" selection (Resolve) starts from it.
func DefaultAlgorithms() Algorithms {
	return Algorithms{
		Bcast:     "binomial",
		Scatter:   "binomial",
		Gather:    "binomial",
		Allgather: "ring",
		Alltoall:  "pairwise",
		Reduce:    "binomial",
		Allreduce: "recursive-doubling",
		Barrier:   "dissemination",
	}
}

func (a *Algorithms) fillDefaults() {
	def := func(s *string, v string) {
		if *s == "" {
			*s = v
		}
	}
	d := DefaultAlgorithms()
	def(&a.Bcast, d.Bcast)
	def(&a.Scatter, d.Scatter)
	def(&a.Gather, d.Gather)
	def(&a.Allgather, d.Allgather)
	def(&a.Alltoall, d.Alltoall)
	def(&a.Reduce, d.Reduce)
	def(&a.Allreduce, d.Allreduce)
	def(&a.Barrier, d.Barrier)
}

// Reserved internal tags. Collectives on the same communicator execute in
// the same order on every rank (an MPI requirement), so one tag per
// operation type suffices given non-overtaking point-to-point matching.
const (
	tagBarrier = -(100 + iota)
	tagBcast
	tagScatter
	tagGather
	tagAllgather
	tagAlltoall
	tagReduce
	tagAllreduce
	tagScan
	tagReduceScatter
)

func badAlgo(op, algo string) {
	panic(fmt.Sprintf("smpi: unknown %s algorithm %q", op, algo))
}

// Bcast broadcasts root's buf to every rank (MPI_Bcast).
func (c *Comm) Bcast(r *Rank, buf []byte, root int) {
	switch c.w.cfg.Algorithms.Bcast {
	case "binomial":
		c.bcastBinomial(r, buf, root, tagBcast)
	case "ring":
		me, p := c.mustRank(r), c.Size()
		rel := (me - root + p) % p
		if rel > 0 {
			r.Recv(c, buf, (me-1+p)%p, tagBcast)
		}
		if rel < p-1 {
			r.Send(c, buf, (me+1)%p, tagBcast)
		}
	case "flat":
		me := c.mustRank(r)
		if me == root {
			reqs := make([]*Request, 0, c.Size()-1)
			for dst := 0; dst < c.Size(); dst++ {
				if dst != root {
					reqs = append(reqs, r.Isend(c, buf, dst, tagBcast))
				}
			}
			r.WaitAll(reqs)
		} else {
			r.Recv(c, buf, root, tagBcast)
		}
	default:
		badAlgo("bcast", c.w.cfg.Algorithms.Bcast)
	}
}

// bcastBinomial is the classic binomial-tree broadcast used by MPICH2.
func (c *Comm) bcastBinomial(r *Rank, buf []byte, root, tag int) {
	me, p := c.mustRank(r), c.Size()
	rel := (me - root + p) % p
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			src := (rel - mask + root + p) % p
			r.Recv(c, buf, src, tag)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < p {
			dst := (rel + mask + root) % p
			r.Send(c, buf, dst, tag)
		}
		mask >>= 1
	}
}

// Barrier blocks until every rank of the communicator has entered it
// (MPI_Barrier).
func (c *Comm) Barrier(r *Rank) {
	switch c.w.cfg.Algorithms.Barrier {
	case "dissemination":
		me, p := c.mustRank(r), c.Size()
		if p == 1 {
			return
		}
		var empty []byte
		for step := 1; step < p; step <<= 1 {
			dst := (me + step) % p
			src := (me - step + p) % p
			r.Sendrecv(c, empty, dst, tagBarrier, nil, src, tagBarrier)
		}
	case "tree":
		// Gather-to-0 then broadcast, both binomial, with empty payloads.
		c.reduceBinomial(r, nil, nil, Byte, OpSum, 0, tagBarrier)
		c.bcastBinomial(r, nil, 0, tagBarrier)
	default:
		badAlgo("barrier", c.w.cfg.Algorithms.Barrier)
	}
}

// Scatter distributes equal chunks of root's sendbuf: rank i receives
// chunk i into recvbuf (MPI_Scatter). len(sendbuf) must equal
// Size()*len(recvbuf) on the root and is ignored elsewhere.
func (c *Comm) Scatter(r *Rank, sendbuf, recvbuf []byte, root int) {
	p := c.Size()
	me := c.mustRank(r)
	bs := len(recvbuf)
	if me == root && len(sendbuf) != p*bs {
		panic(fmt.Sprintf("smpi: Scatter sendbuf %d bytes, want %d*%d", len(sendbuf), p, bs))
	}
	switch c.w.cfg.Algorithms.Scatter {
	case "binomial":
		c.scatterBinomial(r, sendbuf, recvbuf, root)
	case "flat":
		if me == root {
			reqs := make([]*Request, 0, p-1)
			for dst := 0; dst < p; dst++ {
				chunk := sendbuf[dst*bs : (dst+1)*bs]
				if dst == root {
					copy(recvbuf, chunk)
					continue
				}
				reqs = append(reqs, r.Isend(c, chunk, dst, tagScatter))
			}
			r.WaitAll(reqs)
		} else {
			r.Recv(c, recvbuf, root, tagScatter)
		}
	default:
		badAlgo("scatter", c.w.cfg.Algorithms.Scatter)
	}
}

// scatterBinomial is MPICH2's binomial-tree scatter — the algorithm of the
// paper's Figure 6, where process 0 forwards 8 chunks to process 8, 4 to
// process 4, and so on. Data volumes halve at each tree level.
func (c *Comm) scatterBinomial(r *Rank, sendbuf, recvbuf []byte, root int) {
	me, p := c.mustRank(r), c.Size()
	bs := len(recvbuf)
	rel := (me - root + p) % p

	var tmp []byte // holds chunks [rel, rel+cnt) in relative order
	var mask int
	if rel == 0 {
		if root == 0 {
			tmp = sendbuf // relative order == world order: no rotation copy
		} else {
			// Rotate so the chunk of relative rank j sits at offset j.
			tmp = make([]byte, p*bs)
			for j := 0; j < p; j++ {
				world := (j + root) % p
				copy(tmp[j*bs:(j+1)*bs], sendbuf[world*bs:(world+1)*bs])
			}
		}
		mask = 1
		for mask < p {
			mask <<= 1
		}
	} else {
		mask = 1
		for mask < p {
			if rel&mask != 0 {
				src := (me - mask + p) % p
				cnt := min(mask, p-rel)
				tmp = make([]byte, cnt*bs)
				r.Recv(c, tmp, src, tagScatter)
				break
			}
			mask <<= 1
		}
	}
	// Subtree chunks are pushed with non-blocking sends so the transfers
	// to all children proceed concurrently — this is what makes network
	// contention matter for the scatter of the paper's Figure 7.
	var reqs []*Request
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < p {
			dst := (me + mask) % p
			cnt := min(mask, p-(rel+mask))
			reqs = append(reqs, r.Isend(c, tmp[mask*bs:(mask+cnt)*bs], dst, tagScatter))
		}
	}
	r.WaitAll(reqs)
	copy(recvbuf, tmp[:bs])
}

// Gather collects equal chunks from every rank into root's recvbuf, rank
// i's contribution landing at chunk i (MPI_Gather).
func (c *Comm) Gather(r *Rank, sendbuf, recvbuf []byte, root int) {
	me, p := c.mustRank(r), c.Size()
	bs := len(sendbuf)
	if me == root && len(recvbuf) != p*bs {
		panic(fmt.Sprintf("smpi: Gather recvbuf %d bytes, want %d*%d", len(recvbuf), p, bs))
	}
	switch c.w.cfg.Algorithms.Gather {
	case "binomial":
		c.gatherBinomial(r, sendbuf, recvbuf, root)
	case "flat":
		if me == root {
			reqs := make([]*Request, 0, p-1)
			for src := 0; src < p; src++ {
				chunk := recvbuf[src*bs : (src+1)*bs]
				if src == root {
					copy(chunk, sendbuf)
					continue
				}
				reqs = append(reqs, r.Irecv(c, chunk, src, tagGather))
			}
			r.WaitAll(reqs)
		} else {
			r.Send(c, sendbuf, root, tagGather)
		}
	default:
		badAlgo("gather", c.w.cfg.Algorithms.Gather)
	}
}

// gatherBinomial mirrors scatterBinomial: subtree data flows towards the
// root, doubling in volume at each level.
func (c *Comm) gatherBinomial(r *Rank, sendbuf, recvbuf []byte, root int) {
	me, p := c.mustRank(r), c.Size()
	bs := len(sendbuf)
	rel := (me - root + p) % p

	subtree := min(subtreeSize(rel, p), p-rel)
	tmp := make([]byte, subtree*bs)
	copy(tmp[:bs], sendbuf)

	mask := 1
	for mask < p {
		if rel&mask != 0 {
			dst := (me - mask + p) % p
			r.Send(c, tmp, dst, tagGather)
			break
		}
		srcRel := rel + mask
		if srcRel < p {
			cnt := min(subtreeSize(srcRel, p), p-srcRel)
			r.Recv(c, tmp[mask*bs:(mask+cnt)*bs], (me+mask)%p, tagGather)
		}
		mask <<= 1
	}
	if rel == 0 {
		for j := 0; j < p; j++ {
			world := (j + root) % p
			copy(recvbuf[world*bs:(world+1)*bs], tmp[j*bs:(j+1)*bs])
		}
	}
}

// subtreeSize returns the number of relative ranks in the binomial subtree
// rooted at rel (unclamped; callers clamp with p-rel).
func subtreeSize(rel, p int) int {
	if rel == 0 {
		return p
	}
	// The subtree of a node equals the value of its lowest set bit.
	return rel & (-rel)
}

// Allgather concatenates every rank's sendbuf into everyone's recvbuf
// (MPI_Allgather). len(recvbuf) must be Size()*len(sendbuf).
func (c *Comm) Allgather(r *Rank, sendbuf, recvbuf []byte) {
	me, p := c.mustRank(r), c.Size()
	bs := len(sendbuf)
	if len(recvbuf) != p*bs {
		panic(fmt.Sprintf("smpi: Allgather recvbuf %d bytes, want %d*%d", len(recvbuf), p, bs))
	}
	switch c.w.cfg.Algorithms.Allgather {
	case "ring":
		copy(recvbuf[me*bs:(me+1)*bs], sendbuf)
		if p == 1 {
			return
		}
		right := (me + 1) % p
		left := (me - 1 + p) % p
		for step := 0; step < p-1; step++ {
			sendIdx := (me - step + p) % p
			recvIdx := (me - step - 1 + p) % p
			r.Sendrecv(c,
				recvbuf[sendIdx*bs:(sendIdx+1)*bs], right, tagAllgather,
				recvbuf[recvIdx*bs:(recvIdx+1)*bs], left, tagAllgather)
		}
	case "gather-bcast":
		c.Gather(r, sendbuf, recvbuf, 0)
		c.Bcast(r, recvbuf, 0)
	default:
		badAlgo("allgather", c.w.cfg.Algorithms.Allgather)
	}
}

// Alltoall exchanges equal blocks between all pairs: the i-th block of
// sendbuf goes to rank i, which stores it as its j-th received block
// (MPI_Alltoall). Both buffers hold Size() blocks.
func (c *Comm) Alltoall(r *Rank, sendbuf, recvbuf []byte) {
	me, p := c.mustRank(r), c.Size()
	if len(sendbuf) != len(recvbuf) || len(sendbuf)%p != 0 {
		panic(fmt.Sprintf("smpi: Alltoall buffers %d/%d bytes for %d ranks", len(sendbuf), len(recvbuf), p))
	}
	bs := len(sendbuf) / p
	switch c.w.cfg.Algorithms.Alltoall {
	case "pairwise":
		// The paper's Figure 10: P steps; at step k each process exchanges
		// with one distinct partner (including itself at step 0).
		copy(recvbuf[me*bs:(me+1)*bs], sendbuf[me*bs:(me+1)*bs])
		for step := 1; step < p; step++ {
			dst := (me + step) % p
			src := (me - step + p) % p
			r.Sendrecv(c,
				sendbuf[dst*bs:(dst+1)*bs], dst, tagAlltoall,
				recvbuf[src*bs:(src+1)*bs], src, tagAlltoall)
		}
	case "bruck":
		c.alltoallBruck(r, sendbuf, recvbuf, bs)
	case "flat":
		reqs := make([]*Request, 0, 2*(p-1))
		for peer := 0; peer < p; peer++ {
			if peer == me {
				copy(recvbuf[me*bs:(me+1)*bs], sendbuf[me*bs:(me+1)*bs])
				continue
			}
			reqs = append(reqs, r.Irecv(c, recvbuf[peer*bs:(peer+1)*bs], peer, tagAlltoall))
		}
		for peer := 0; peer < p; peer++ {
			if peer != me {
				reqs = append(reqs, r.Isend(c, sendbuf[peer*bs:(peer+1)*bs], peer, tagAlltoall))
			}
		}
		r.WaitAll(reqs)
	default:
		badAlgo("alltoall", c.w.cfg.Algorithms.Alltoall)
	}
}

// alltoallBruck is the log-step Bruck (1997) algorithm used by MPICH2 and
// OpenMPI for small messages: ceil(log2 P) rounds, each moving the blocks
// whose rotated index has bit k set, followed by a local inversion.
func (c *Comm) alltoallBruck(r *Rank, sendbuf, recvbuf []byte, bs int) {
	me, p := c.mustRank(r), c.Size()
	// Phase 1: local rotation — block j of tmp is the block for rank
	// (me+j) mod p.
	tmp := make([]byte, p*bs)
	for j := 0; j < p; j++ {
		src := (me + j) % p
		copy(tmp[j*bs:(j+1)*bs], sendbuf[src*bs:(src+1)*bs])
	}
	// Phase 2: log-step exchanges.
	scratch := make([]byte, p*bs)
	for k := 1; k < p; k <<= 1 {
		dst := (me + k) % p
		src := (me - k + p) % p
		// Pack the blocks whose index has bit k set.
		n := 0
		for j := 0; j < p; j++ {
			if j&k != 0 {
				copy(scratch[n*bs:(n+1)*bs], tmp[j*bs:(j+1)*bs])
				n++
			}
		}
		rq := r.Irecv(c, scratch[n*bs:2*n*bs], src, tagAlltoall)
		r.Send(c, scratch[:n*bs], dst, tagAlltoall)
		r.Wait(rq)
		// Unpack received blocks into the same positions.
		m := 0
		for j := 0; j < p; j++ {
			if j&k != 0 {
				copy(tmp[j*bs:(j+1)*bs], scratch[(n+m)*bs:(n+m+1)*bs])
				m++
			}
		}
	}
	// Phase 3: final inversion — tmp block j holds the block from rank
	// (me-j) mod p.
	for j := 0; j < p; j++ {
		src := (me - j + p) % p
		copy(recvbuf[src*bs:(src+1)*bs], tmp[j*bs:(j+1)*bs])
	}
}

// Reduce combines every rank's sendbuf with op, leaving the result in
// root's recvbuf (MPI_Reduce).
func (c *Comm) Reduce(r *Rank, sendbuf, recvbuf []byte, dt Datatype, op Op, root int) {
	switch c.w.cfg.Algorithms.Reduce {
	case "binomial":
		c.reduceBinomial(r, sendbuf, recvbuf, dt, op, root, tagReduce)
	case "flat":
		me, p := c.mustRank(r), c.Size()
		if me == root {
			acc := clone(sendbuf)
			scratch := make([]byte, len(sendbuf))
			for src := 0; src < p; src++ {
				if src == root {
					continue
				}
				r.Recv(c, scratch, src, tagReduce)
				op.Apply(acc, scratch, dt)
			}
			copy(recvbuf, acc)
		} else {
			r.Send(c, sendbuf, root, tagReduce)
		}
	default:
		badAlgo("reduce", c.w.cfg.Algorithms.Reduce)
	}
}

// reduceBinomial combines up a binomial tree (commutative operators).
func (c *Comm) reduceBinomial(r *Rank, sendbuf, recvbuf []byte, dt Datatype, op Op, root, tag int) {
	me, p := c.mustRank(r), c.Size()
	rel := (me - root + p) % p
	acc := clone(sendbuf)
	scratch := make([]byte, len(sendbuf))
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			dst := (me - mask + p) % p
			r.Send(c, acc, dst, tag)
			return
		}
		if rel+mask < p {
			r.Recv(c, scratch, (me+mask)%p, tag)
			if len(acc) > 0 {
				op.Apply(acc, scratch, dt)
			}
		}
		mask <<= 1
	}
	copy(recvbuf, acc)
}

// Allreduce combines every rank's sendbuf with op and leaves the result in
// every rank's recvbuf (MPI_Allreduce).
func (c *Comm) Allreduce(r *Rank, sendbuf, recvbuf []byte, dt Datatype, op Op) {
	p := c.Size()
	switch algo := c.w.cfg.Algorithms.Allreduce; {
	case algo == "recursive-doubling" && bits.OnesCount(uint(p)) == 1:
		me := c.mustRank(r)
		acc := clone(sendbuf)
		scratch := make([]byte, len(sendbuf))
		for mask := 1; mask < p; mask <<= 1 {
			peer := me ^ mask
			r.Sendrecv(c, acc, peer, tagAllreduce, scratch, peer, tagAllreduce)
			op.Apply(acc, scratch, dt)
		}
		copy(recvbuf, acc)
	case algo == "ring" && p > 1 && dt.Size() > 0 && len(sendbuf)/dt.Size() >= p:
		c.allreduceRing(r, sendbuf, recvbuf, dt, op)
	case algo == "recursive-doubling" || algo == "reduce-bcast" || algo == "ring":
		c.reduceBinomial(r, sendbuf, recvbuf, dt, op, 0, tagAllreduce)
		c.Bcast(r, recvbuf, 0)
	default:
		badAlgo("allreduce", algo)
	}
}

// allreduceRing is the bandwidth-optimal ring allreduce: the buffer is cut
// into P chunks; P-1 reduce-scatter steps leave each rank owning one fully
// reduced chunk, and P-1 allgather steps circulate the reduced chunks. All
// traffic flows between ring neighbors, which maps exactly onto torus and
// ring interconnects (no cross-machine hops, unlike recursive doubling).
func (c *Comm) allreduceRing(r *Rank, sendbuf, recvbuf []byte, dt Datatype, op Op) {
	me, p := c.mustRank(r), c.Size()
	es := dt.Size()
	elems := len(sendbuf) / es
	// Chunk boundaries in elements: the first elems%p chunks get one extra.
	off := make([]int, p+1)
	base, rem := elems/p, elems%p
	for i := 0; i < p; i++ {
		off[i+1] = off[i] + base
		if i < rem {
			off[i+1]++
		}
	}
	chunk := func(buf []byte, i int) []byte { return buf[off[i]*es : off[i+1]*es] }

	acc := clone(sendbuf)
	scratch := make([]byte, (base+1)*es)
	right, left := (me+1)%p, (me-1+p)%p
	// Reduce-scatter: at step s, pass chunk (me-s) rightwards and fold the
	// incoming chunk (me-s-1) into the accumulator. After P-1 steps rank me
	// owns the fully reduced chunk (me+1) mod P.
	for s := 0; s < p-1; s++ {
		sendIdx := (me - s + p) % p
		recvIdx := (me - s - 1 + p) % p
		in := scratch[:len(chunk(acc, recvIdx))]
		r.Sendrecv(c, chunk(acc, sendIdx), right, tagAllreduce, in, left, tagAllreduce)
		op.Apply(chunk(acc, recvIdx), in, dt)
	}
	// Allgather: circulate the reduced chunks around the ring.
	for s := 0; s < p-1; s++ {
		sendIdx := (me + 1 - s + p) % p
		recvIdx := (me - s + p) % p
		r.Sendrecv(c, chunk(acc, sendIdx), right, tagAllreduce,
			chunk(acc, recvIdx), left, tagAllreduce)
	}
	copy(recvbuf, acc)
}

// Scan computes the inclusive prefix reduction: rank i receives
// sendbuf_0 op ... op sendbuf_i (MPI_Scan). Linear algorithm.
func (c *Comm) Scan(r *Rank, sendbuf, recvbuf []byte, dt Datatype, op Op) {
	me, p := c.mustRank(r), c.Size()
	acc := clone(sendbuf)
	if me > 0 {
		prefix := make([]byte, len(sendbuf))
		r.Recv(c, prefix, me-1, tagScan)
		op.Apply(prefix, acc, dt)
		acc = prefix
	}
	copy(recvbuf, acc)
	if me < p-1 {
		r.Send(c, acc, me+1, tagScan)
	}
}

// ReduceScatter reduces element-wise across ranks, then scatters the result
// so rank i keeps counts[i] bytes (MPI_Reduce_scatter). Implemented as
// binomial reduce to rank 0 followed by Scatterv, one of MPICH2's fallback
// algorithms.
func (c *Comm) ReduceScatter(r *Rank, sendbuf, recvbuf []byte, counts []int, dt Datatype, op Op) {
	me, p := c.mustRank(r), c.Size()
	if len(counts) != p {
		panic(fmt.Sprintf("smpi: ReduceScatter counts has %d entries for %d ranks", len(counts), p))
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != len(sendbuf) {
		panic(fmt.Sprintf("smpi: ReduceScatter sendbuf %d bytes, counts sum %d", len(sendbuf), total))
	}
	var full []byte
	if me == 0 {
		full = make([]byte, len(sendbuf))
	}
	c.reduceBinomial(r, sendbuf, full, dt, op, 0, tagReduceScatter)
	c.Scatterv(r, full, counts, recvbuf, 0)
}

// --- v-variants (per-rank counts) ---

// Scatterv distributes counts[i] bytes to rank i from root's sendbuf,
// packed contiguously (MPI_Scatterv with implicit displacements).
func (c *Comm) Scatterv(r *Rank, sendbuf []byte, counts []int, recvbuf []byte, root int) {
	me, p := c.mustRank(r), c.Size()
	if len(counts) != p {
		panic(fmt.Sprintf("smpi: Scatterv counts has %d entries for %d ranks", len(counts), p))
	}
	if me == root {
		reqs := make([]*Request, 0, p-1)
		off := 0
		for dst := 0; dst < p; dst++ {
			chunk := sendbuf[off : off+counts[dst]]
			off += counts[dst]
			if dst == root {
				copy(recvbuf, chunk)
				continue
			}
			reqs = append(reqs, r.Isend(c, chunk, dst, tagScatter))
		}
		r.WaitAll(reqs)
	} else {
		r.Recv(c, recvbuf[:counts[me]], root, tagScatter)
	}
}

// Gatherv collects counts[i] bytes from rank i into root's recvbuf, packed
// contiguously (MPI_Gatherv with implicit displacements).
func (c *Comm) Gatherv(r *Rank, sendbuf []byte, recvbuf []byte, counts []int, root int) {
	me, p := c.mustRank(r), c.Size()
	if len(counts) != p {
		panic(fmt.Sprintf("smpi: Gatherv counts has %d entries for %d ranks", len(counts), p))
	}
	if me == root {
		reqs := make([]*Request, 0, p-1)
		off := 0
		for src := 0; src < p; src++ {
			chunk := recvbuf[off : off+counts[src]]
			off += counts[src]
			if src == root {
				copy(chunk, sendbuf)
				continue
			}
			reqs = append(reqs, r.Irecv(c, chunk, src, tagGather))
		}
		r.WaitAll(reqs)
	} else {
		r.Send(c, sendbuf[:counts[me]], root, tagGather)
	}
}

// Allgatherv concatenates variable-size contributions on every rank
// (MPI_Allgatherv): gatherv to rank 0 then broadcast.
func (c *Comm) Allgatherv(r *Rank, sendbuf []byte, recvbuf []byte, counts []int) {
	c.Gatherv(r, sendbuf, recvbuf, counts, 0)
	c.Bcast(r, recvbuf, 0)
}

// Alltoallv exchanges variable-size blocks (MPI_Alltoallv with implicit
// displacements): sendcounts[i] bytes go to rank i; recvcounts[j] bytes
// arrive from rank j, both packed contiguously.
func (c *Comm) Alltoallv(r *Rank, sendbuf []byte, sendcounts []int, recvbuf []byte, recvcounts []int) {
	me, p := c.mustRank(r), c.Size()
	if len(sendcounts) != p || len(recvcounts) != p {
		panic(fmt.Sprintf("smpi: Alltoallv counts %d/%d entries for %d ranks", len(sendcounts), len(recvcounts), p))
	}
	soff := make([]int, p+1)
	roff := make([]int, p+1)
	for i := 0; i < p; i++ {
		soff[i+1] = soff[i] + sendcounts[i]
		roff[i+1] = roff[i] + recvcounts[i]
	}
	reqs := make([]*Request, 0, 2*p)
	for peer := 0; peer < p; peer++ {
		if peer == me {
			copy(recvbuf[roff[me]:roff[me+1]], sendbuf[soff[me]:soff[me+1]])
			continue
		}
		reqs = append(reqs, r.Irecv(c, recvbuf[roff[peer]:roff[peer+1]], peer, tagAlltoall))
	}
	for peer := 0; peer < p; peer++ {
		if peer != me {
			reqs = append(reqs, r.Isend(c, sendbuf[soff[peer]:soff[peer+1]], peer, tagAlltoall))
		}
	}
	r.WaitAll(reqs)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
