package smpi

import (
	"fmt"

	"smpigo/internal/core"
)

// This file exposes the paper's scalability macros (Section 5.2, Figure 2)
// as Rank methods. The C macros expand to hash-table lookups keyed by
// source location; here the caller passes the site identifier explicitly.

// SampleLocal runs the CPU burst identified by id at most n times on this
// rank, measuring its wall-clock duration each time; later occurrences are
// bypassed and replaced by the mean measured duration (SMPI_SAMPLE_LOCAL).
// The burst's duration — measured or replayed — is charged to simulated
// time, scaled by Config.SpeedFactor.
func (r *Rank) SampleLocal(id string, n int, fn func()) {
	key := fmt.Sprintf("%s@rank%d", id, r.rank)
	d, _ := r.w.reg.Sample(key, n, fn)
	r.Elapse(d * core.Duration(r.w.cfg.SpeedFactor))
}

// SampleGlobal is like SampleLocal but the n measurements are shared across
// all ranks (SMPI_SAMPLE_GLOBAL): with a regular SPMD burst, total execution
// cost is independent of the rank count (paper Section 3.1).
func (r *Rank) SampleGlobal(id string, n int, fn func()) {
	d, _ := r.w.reg.Sample(id, n, fn)
	r.Elapse(d * core.Duration(r.w.cfg.SpeedFactor))
}

// SampleLocalFlops runs the CPU burst identified by id at most n times on
// this rank for its real side effects (the on-line property: the data is
// genuinely computed), while charging a deterministic modelled cost of flops
// on every occurrence — executed or bypassed. Unlike SampleLocal, whose
// wall-clock measurement makes the replayed mean hostage to scheduler noise
// and cold-start outliers, the sampled path charges exactly the same
// simulated cost as the fully-executed path, so simulated time is
// bit-identical at any sampling ratio and under any host load.
func (r *Rank) SampleLocalFlops(id string, n int, flops float64, fn func()) {
	key := fmt.Sprintf("%s@rank%d", id, r.rank)
	r.w.reg.Observe(key, n, fn)
	r.Compute(flops)
}

// SampleGlobalFlops is SampleLocalFlops with SMPI_SAMPLE_GLOBAL semantics:
// the n executions are shared across all ranks.
func (r *Rank) SampleGlobalFlops(id string, n int, flops float64, fn func()) {
	r.w.reg.Observe(id, n, fn)
	r.Compute(flops)
}

// SampleFlops never executes anything: it charges the given flop amount on
// the host (SMPI_SAMPLE_DELAY, whose argument is a flop count). Use with
// RAM folding technique #2: when bursts are never executed, their arrays
// need not exist at all.
func (r *Rank) SampleFlops(flops float64) {
	r.Compute(flops)
}

// SharedMalloc returns the world-shared buffer for id (SMPI_SHARED_MALLOC):
// every rank asking for the same id gets the same backing array, folding
// m copies into one (paper Section 3.2, technique #1).
func (r *Rank) SharedMalloc(id string, size int) []byte {
	buf := r.w.reg.SharedMalloc(id, size)
	r.w.reg.TouchAll()
	return buf
}

// SharedFree releases one reference to a shared buffer (SMPI_FREE).
func (r *Rank) SharedFree(id string) {
	r.w.reg.SharedFree(id)
}

// Malloc allocates a private, footprint-accounted buffer. Using Malloc
// instead of make() lets the report's MaxPeakRSS reproduce the paper's
// Figure 16 measurements.
func (r *Rank) Malloc(size int) []byte {
	return r.w.reg.Malloc(r.rank, size)
}

// Free returns a buffer allocated with Malloc to the accounting.
func (r *Rank) Free(buf []byte) {
	r.w.reg.Free(r.rank, len(buf))
}
