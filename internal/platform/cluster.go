package platform

import (
	"fmt"
	"sort"

	"smpigo/internal/core"
	"smpigo/internal/lmm"
)

// ClusterSpec describes a hierarchical cluster: cabinets of nodes, each
// cabinet behind its own switch, all cabinet switches connected to a
// second-level switch (the backbone). This matches the topology of the
// paper's evaluation clusters.
type ClusterSpec struct {
	// Name prefixes host and link names ("griffon" -> "griffon-0", ...).
	Name string
	// Cabinets lists the number of nodes in each cabinet (switch group).
	Cabinets []int
	// NodeSpeed is the per-node compute speed in flop/s.
	NodeSpeed float64
	// NodeLinkBandwidth/NodeLinkLatency describe the node-to-cabinet-switch
	// link. Each node gets separate full-duplex up and down links.
	NodeLinkBandwidth float64
	NodeLinkLatency   core.Duration
	// CabinetBackplaneBandwidth/CabinetBackplaneLatency describe each
	// cabinet switch's internal backplane, a shared resource crossed by
	// every flow through the switch. A finite backplane is what makes
	// many-to-many traffic (the paper's all-to-all, Figure 11) contend
	// even between disjoint node pairs.
	CabinetBackplaneBandwidth float64
	CabinetBackplaneLatency   core.Duration
	// UplinkBandwidth/UplinkLatency describe the cabinet-switch-to-backbone
	// link (again split into up and down directions).
	UplinkBandwidth float64
	UplinkLatency   core.Duration
	// BackboneBandwidth/BackboneLatency describe the second-level switch.
	BackboneBandwidth float64
	BackboneLatency   core.Duration
	// BackboneFatPipe makes the backbone a non-blocking crossbar: flows are
	// individually capped at BackboneBandwidth but do not contend there.
	BackboneFatPipe bool
	// CabinetSpeed optionally scales NodeSpeed per cabinet: nodes in cabinet
	// ci run at NodeSpeed*CabinetSpeed[ci]. Empty means homogeneous;
	// otherwise the length must equal len(Cabinets). Real clusters mix
	// hardware generations cabinet by cabinet, and the paper's validation
	// machines are exactly such mixed deployments.
	CabinetSpeed []float64
	// CabinetUplinkWidth optionally scales each cabinet's uplink bandwidth
	// (both directions): same length rule as CabinetSpeed.
	CabinetUplinkWidth []float64
}

// NodeCount returns the total number of nodes across cabinets.
func (s ClusterSpec) NodeCount() int {
	n := 0
	for _, c := range s.Cabinets {
		n += c
	}
	return n
}

// Validate reports the first structural problem with the spec, if any.
func (s ClusterSpec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("cluster spec: empty name")
	case len(s.Cabinets) == 0:
		return fmt.Errorf("cluster spec %q: no cabinets", s.Name)
	case s.NodeSpeed <= 0:
		return fmt.Errorf("cluster spec %q: non-positive node speed", s.Name)
	case s.NodeLinkBandwidth <= 0 || s.UplinkBandwidth <= 0 || s.BackboneBandwidth <= 0:
		return fmt.Errorf("cluster spec %q: non-positive bandwidth", s.Name)
	case s.CabinetBackplaneBandwidth <= 0:
		return fmt.Errorf("cluster spec %q: non-positive cabinet backplane bandwidth", s.Name)
	}
	for i, c := range s.Cabinets {
		if c <= 0 {
			return fmt.Errorf("cluster spec %q: cabinet %d has %d nodes", s.Name, i, c)
		}
	}
	if err := CheckProfile(s.CabinetSpeed, len(s.Cabinets)); err != nil {
		return fmt.Errorf("cluster spec %q: cabinet speeds: %w", s.Name, err)
	}
	if err := CheckProfile(s.CabinetUplinkWidth, len(s.Cabinets)); err != nil {
		return fmt.Errorf("cluster spec %q: cabinet uplink widths: %w", s.Name, err)
	}
	return nil
}

// Build instantiates the platform for the spec: per-node up/down links,
// per-cabinet up/down uplinks, one backbone link, and the implicit
// hierarchical router (closed-form link indices, no per-pair storage).
func (s ClusterSpec) Build() (*Platform, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	p := New(s.Name)
	n := s.NodeCount()
	p.Reserve(n, 3*len(s.Cabinets)+2*n+1)

	// prefix[ci] is the number of nodes in cabinets before ci; the router
	// derives every link index from it (see clusterRouter), and the link
	// namer inverts the same arithmetic to answer Name() on demand.
	prefix := make([]int, len(s.Cabinets))
	for ci := range s.Cabinets {
		if ci > 0 {
			prefix[ci] = prefix[ci-1] + s.Cabinets[ci-1]
		}
	}
	p.SetLinkNamer(s.linkNamer(prefix, 3*len(s.Cabinets)+2*n))
	for ci, count := range s.Cabinets {
		uplink := s.UplinkBandwidth * ProfileAt(s.CabinetUplinkWidth, ci)
		speed := s.NodeSpeed * ProfileAt(s.CabinetSpeed, ci)
		p.NewLink(uplink, s.UplinkLatency, lmm.Shared)                                // cab up
		p.NewLink(uplink, s.UplinkLatency, lmm.Shared)                                // cab down
		p.NewLink(s.CabinetBackplaneBandwidth, s.CabinetBackplaneLatency, lmm.Shared) // backplane
		for ni := 0; ni < count; ni++ {
			h := p.NewHost(speed)
			h.Cabinet = ci
			p.NewLink(s.NodeLinkBandwidth, s.NodeLinkLatency, lmm.Shared) // node up
			p.NewLink(s.NodeLinkBandwidth, s.NodeLinkLatency, lmm.Shared) // node down
		}
	}

	policy := lmm.Shared
	if s.BackboneFatPipe {
		policy = lmm.FatPipe
	}
	backbone := p.NewLink(s.BackboneBandwidth, s.BackboneLatency, policy)

	p.SetRouter(&clusterRouter{p: p, prefix: prefix, backbone: backbone.ID})
	diameter := 3 // up, backplane, down
	// The balanced cut of a single cabinet crosses its shared backplane;
	// across cabinets it crosses the smaller half's uplinks, additionally
	// capped by the backbone in aggregate unless the backbone is a
	// non-blocking crossbar (FatPipe caps flows individually only).
	bisection := s.CabinetBackplaneBandwidth
	if len(s.Cabinets) > 1 {
		diameter = 7 // up, backplane, cab-up, backbone, cab-down, backplane, down
		// The weaker half of the uplinks bounds the cut: sum the smallest
		// floor(n/2) uplink bandwidths (all equal without a width profile).
		uplinks := make([]float64, len(s.Cabinets))
		for ci := range uplinks {
			uplinks[ci] = s.UplinkBandwidth * ProfileAt(s.CabinetUplinkWidth, ci)
		}
		sort.Float64s(uplinks)
		bisection = 0
		for _, bw := range uplinks[:len(uplinks)/2] {
			bisection += bw
		}
		if !s.BackboneFatPipe && s.BackboneBandwidth < bisection {
			bisection = s.BackboneBandwidth
		}
	}
	p.Topo = &TopoInfo{
		Kind:  "cluster",
		Hosts: n,
		// Node up/down pairs, cabinet up/down pairs and backplanes, backbone.
		Links:              2*n + 3*len(s.Cabinets) + 1,
		Diameter:           diameter,
		BisectionBandwidth: bisection,
	}
	return p, nil
}

// linkNamer returns the derived-name function of cluster links: the inverse
// of the build-order link IDs (per cabinet ci: cab-up, cab-down, backplane,
// then an up/down pair per node; the backbone last at ID total). It is only
// consulted when a link's name is actually wanted, never while routing.
func (s ClusterSpec) linkNamer(prefix []int, total int) func(id int) string {
	return func(id int) string {
		if id >= total {
			return s.Name + "-backbone"
		}
		// Largest ci with cabBase(ci) <= id, where cabBase(ci) = 3*ci +
		// 2*prefix[ci] is increasing in ci.
		ci := sort.Search(len(prefix)-1, func(c int) bool { return 3*(c+1)+2*prefix[c+1] > id })
		off := id - (3*ci + 2*prefix[ci])
		switch off {
		case 0:
			return fmt.Sprintf("%s-cab%d-up", s.Name, ci)
		case 1:
			return fmt.Sprintf("%s-cab%d-down", s.Name, ci)
		case 2:
			return fmt.Sprintf("%s-cab%d-backplane", s.Name, ci)
		}
		hostID := prefix[ci] + (off-3)/2
		if (off-3)%2 == 0 {
			return fmt.Sprintf("%s-up-%d", s.Name, hostID)
		}
		return fmt.Sprintf("%s-down-%d", s.Name, hostID)
	}
}

// clusterRouter is the implicit router of cluster platforms. Link IDs
// follow the build order — per cabinet ci: cab-up, cab-down, backplane,
// then an up/down pair per node — so every route is pure index arithmetic
// over the cabinet prefix sums; the router state is O(cabinets) regardless
// of node count, and nothing is stored per host pair.
type clusterRouter struct {
	p *Platform
	// prefix[ci] is the number of nodes in cabinets before ci.
	prefix []int
	// backbone is the link ID of the second-level switch (the last link).
	backbone int
}

// String implements fmt.Stringer for missing-route diagnostics.
func (r *clusterRouter) String() string { return "hierarchical cluster router" }

// cabBase returns the link ID of cabinet ci's up link; down and backplane
// follow at +1 and +2.
func (r *clusterRouter) cabBase(ci int) int { return 3*ci + 2*r.prefix[ci] }

// nodeUp returns the link ID of the host's up link; its down link is +1.
// Every link of cabinets 0..Cabinet and every node pair of ids < h.ID
// precedes it in build order.
func (r *clusterRouter) nodeUp(h *Host) int { return 3*(h.Cabinet+1) + 2*h.ID }

// RouteInto implements Router.
func (r *clusterRouter) RouteInto(buf []*Link, a, b *Host) Route {
	start := len(buf)
	link := r.p.LinkByID
	if a.Cabinet == b.Cabinet {
		buf = append(buf,
			link(r.nodeUp(a)),
			link(r.cabBase(a.Cabinet)+2), // backplane
			link(r.nodeUp(b)+1))          // node down
	} else {
		buf = append(buf,
			link(r.nodeUp(a)),
			link(r.cabBase(a.Cabinet)+2), // source backplane
			link(r.cabBase(a.Cabinet)),   // cabinet up
			link(r.backbone),
			link(r.cabBase(b.Cabinet)+1), // cabinet down
			link(r.cabBase(b.Cabinet)+2), // destination backplane
			link(r.nodeUp(b)+1))          // node down
	}
	route := Route{Links: buf}
	for _, l := range buf[start:] {
		route.Latency += l.Latency
	}
	return route
}

// SwitchHops returns the number of switches a message between the two hosts
// traverses on a cluster built by Build: 1 inside a cabinet, 3 across
// cabinets (cabinet switch, second-level switch, cabinet switch). This is
// the quantity the paper's Figure 5 varies.
func SwitchHops(a, b *Host) int {
	if a.Cabinet == b.Cabinet {
		return 1
	}
	return 3
}

// Griffon returns the spec for the griffon cluster of the paper: 92 nodes
// (2.5 GHz dual-proc quad-core Xeon L5420) in cabinets of 33, 27 and 32
// nodes, Gigabit Ethernet to each cabinet switch, cabinet switches
// interconnected through a 10 Gigabit second-level switch.
func Griffon() ClusterSpec {
	return ClusterSpec{
		Name:                      "griffon",
		Cabinets:                  []int{33, 27, 32},
		NodeSpeed:                 1e9, // 1 Gf/s reference speed for burst scaling
		NodeLinkBandwidth:         125e6,
		NodeLinkLatency:           20 * core.Microsecond,
		CabinetBackplaneBandwidth: 1.25e9,
		CabinetBackplaneLatency:   2 * core.Microsecond,
		UplinkBandwidth:           1.25e9,
		UplinkLatency:             4 * core.Microsecond,
		BackboneBandwidth:         1.25e9,
		BackboneLatency:           2 * core.Microsecond,
		BackboneFatPipe:           true,
	}
}

// Gdx returns the spec for the gdx cluster: 312 nodes (2.0 GHz dual-proc
// Opteron 246), two cabinets per switch (modelled as 18 switch groups),
// 1 Gigabit links everywhere including the uplinks to the single
// second-level switch.
func Gdx() ClusterSpec {
	groups := make([]int, 18)
	remaining := 312
	for i := range groups {
		n := 17
		if i < 312-17*18 { // distribute the remainder
			n++
		}
		groups[i] = n
		remaining -= n
	}
	_ = remaining
	return ClusterSpec{
		Name:                      "gdx",
		Cabinets:                  groups,
		NodeSpeed:                 0.8e9, // slower nodes than griffon
		NodeLinkBandwidth:         125e6,
		NodeLinkLatency:           25 * core.Microsecond,
		CabinetBackplaneBandwidth: 1e9,
		CabinetBackplaneLatency:   3 * core.Microsecond,
		UplinkBandwidth:           125e6,
		UplinkLatency:             5 * core.Microsecond,
		BackboneBandwidth:         1.25e9,
		BackboneLatency:           3 * core.Microsecond,
		BackboneFatPipe:           true,
	}
}
