// Package platform describes simulated target platforms: hosts with a
// compute speed, network links with bandwidth and latency, and routes
// between host pairs. It mirrors the role of SimGrid's platform layer that
// SMPI simulations take as input (paper Section 6).
//
// The package also provides a hierarchical cluster builder matching the
// Grid'5000 machines used in the paper's evaluation — griffon (92 nodes in
// 3 cabinets behind a 10 Gbps second-level switch) and gdx (312 nodes, two
// cabinets per switch, 1 Gbps links throughout) — and an XML serialization
// of cluster descriptions in the spirit of SimGrid's DTD. The XML spec
// registry is open: package topology registers <fattree>, <torus>, and
// <dragonfly> elements alongside <cluster>, so ReadXML/WriteXML round-trip
// every builder's spec.
//
// Routing is pluggable. Hand-built platforms install explicit pair routes
// with AddRoute; the cluster builder and the topology generators install a
// routing function via SetRouter. Route results are memoized per ordered
// host pair, which keeps the per-message hot path an allocation-free cache
// hit even for computed graph routes.
//
// Builders that know their interconnect's structure annotate the result:
// Platform.Topo records the family and structural metrics (consumed by the
// smpi layer's "auto" collective selection), and Host.Cabinet records the
// lowest-level switch group (consumed by package placement's round-robin
// mapper). Both are optional — a nil Topo and Cabinet == -1 simply mean
// "structure unknown" and every consumer falls back to a flat view.
package platform
