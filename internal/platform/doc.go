// Package platform describes simulated target platforms: hosts with a
// compute speed, network links with bandwidth and latency, and routes
// between host pairs. It mirrors the role of SimGrid's platform layer that
// SMPI simulations take as input (paper Section 6).
//
// The package also provides a hierarchical cluster builder matching the
// Grid'5000 machines used in the paper's evaluation — griffon (92 nodes in
// 3 cabinets behind a 10 Gbps second-level switch) and gdx (312 nodes, two
// cabinets per switch, 1 Gbps links throughout) — and an XML serialization
// of cluster descriptions in the spirit of SimGrid's DTD. The XML spec
// registry is open: package topology registers <fattree>, <torus>, and
// <dragonfly> elements alongside <cluster>, so ReadXML/WriteXML round-trip
// every builder's spec.
//
// Routing is pluggable behind the Router interface, whose single method
// RouteInto(buf, a, b) appends the route's links into a caller-owned
// buffer — reusing one buffer per call site makes repeat lookups
// allocation-free, so routes are computed on demand and never stored per
// host pair. The cluster builder and the topology generators install
// implicit routers: closed-form functions of the host coordinates with
// O(1) state, which is what lets a 65536-host platform route in O(hosts)
// total memory (the former per-ordered-pair memo map was O(hosts²)).
// Hand-built platforms install explicit pair routes with AddRoute, which
// land in a TableRouter — the same interface, with the reverse direction
// of a symmetric route served by iterating the forward slice backward
// rather than materializing a copy. An expensive irregular router can be
// walked once into a TableRouter with MaterializedRouter, which is the old
// memoization recast as just another Router. RouterFunc adapts a bare
// func(a, b) Route for mechanical migration.
//
// Host and link storage is compact: array-of-structs slabs (bulk-allocated
// via Reserve when the builder knows its counts) addressed by dense IDs,
// with stable *Host/*Link pointers as the public view.
//
// Builders that know their interconnect's structure annotate the result:
// Platform.Topo records the family and structural metrics (consumed by the
// smpi layer's "auto" collective selection), and Host.Cabinet records the
// lowest-level switch group (consumed by package placement's round-robin
// mapper). Both are optional — a nil Topo and Cabinet == -1 simply mean
// "structure unknown" and every consumer falls back to a flat view.
package platform
