package platform

import (
	"fmt"

	"smpigo/internal/core"
)

// Router computes the route between two distinct hosts of a platform.
//
// RouteInto appends the route's links to buf — normally the empty prefix of
// a caller-owned buffer (`buf[:0]` or nil) — and returns the Route built on
// the appended slice, with Latency covering exactly the links this call
// appended. A router that reuses one buffer per call site pays zero
// allocations per route; this is what makes implicit (computed, never
// stored) routing affordable on the per-message hot path.
//
// Implementations must be deterministic (same pair, same links, always),
// must not retain buf, are only consulted for distinct hosts (Platform
// handles a == b as loopback), and must panic with a message naming
// themselves when they have no route for a pair — the panic is the
// platform's missing-route diagnostic. Routers are read-only after the
// platform is built, so RouteInto is safe for concurrent use.
type Router interface {
	RouteInto(buf []*Link, a, b *Host) Route
}

// RouterFunc adapts a bare routing function to the Router interface, for
// mechanical migration of pre-interface code. The function allocates a
// fresh Route per call, so the adapter cannot offer RouteInto's zero-
// allocation contract: prefer a real Router implementation anywhere route
// lookups are hot.
type RouterFunc func(a, b *Host) Route

// RouteInto implements Router. When buf has no capacity the function's
// Route is returned as built (sharing its slice); otherwise the links are
// appended to buf so caller buffer reuse keeps working.
func (f RouterFunc) RouteInto(buf []*Link, a, b *Host) Route {
	r := f(a, b)
	if cap(buf) == 0 {
		return r
	}
	return Route{Links: append(buf, r.Links...), Latency: r.Latency}
}

// String implements fmt.Stringer for missing-route diagnostics.
func (f RouterFunc) String() string { return "RouterFunc adapter" }

// TableRouter serves routes from an explicit per-pair table: the manual
// AddRoute routes of hand-built platforms and the materialized routes of
// irregular platforms are both just instances of it. Pairs missing from
// the table fall through to Fallback when set; otherwise the lookup panics
// naming the table. The table is meant to be filled while the platform is
// built and read-only afterwards (RouteInto is then concurrency-safe).
type TableRouter struct {
	name string
	// Fallback, when non-nil, serves the pairs the table has no entry for.
	// Platform.AddRoute wires the previously installed router here, keeping
	// the historical "explicit pairs first, computed routes second" order.
	Fallback Router
	entries  map[[2]int]tableEntry
}

// tableEntry stores one direction of a route. A symmetric route is stored
// once: the reverse direction shares the forward link slice and is served
// by iterating it backward (reversed == true) instead of materializing a
// second copy.
type tableEntry struct {
	links    []*Link
	latency  core.Duration
	reversed bool
}

// NewTableRouter returns an empty table named for diagnostics (platform
// name, file name, ... — whatever identifies the table's origin).
func NewTableRouter(name string) *TableRouter {
	return &TableRouter{name: name, entries: make(map[[2]int]tableEntry)}
}

// String implements fmt.Stringer for missing-route diagnostics.
func (t *TableRouter) String() string {
	return fmt.Sprintf("table router %q (%d routes)", t.name, len(t.entries))
}

// Len returns the number of directed routes in the table (a symmetric
// route counts as two).
func (t *TableRouter) Len() int { return len(t.entries) }

func (t *TableRouter) add(a, b *Host, links []*Link, lat core.Duration, rev bool) {
	t.entries[[2]int{a.ID, b.ID}] = tableEntry{links: links, latency: lat, reversed: rev}
}

// Add installs the route from a to b (one direction only). The link slice
// is retained, not copied.
func (t *TableRouter) Add(a, b *Host, links []*Link) {
	var lat core.Duration
	for _, l := range links {
		lat += l.Latency
	}
	t.add(a, b, links, lat, false)
}

// AddSymmetric installs the route from a to b and its mirror from b to a.
// Only the forward link slice is stored; the reverse direction is a view
// that iterates it backward, so a symmetric route costs one slice, not two.
func (t *TableRouter) AddSymmetric(a, b *Host, links []*Link) {
	var lat core.Duration
	for _, l := range links {
		lat += l.Latency
	}
	t.add(a, b, links, lat, false)
	t.add(b, a, links, lat, true)
}

// RouteInto implements Router.
func (t *TableRouter) RouteInto(buf []*Link, a, b *Host) Route {
	e, ok := t.entries[[2]int{a.ID, b.ID}]
	if !ok {
		if t.Fallback != nil {
			return t.Fallback.RouteInto(buf, a, b)
		}
		panic(fmt.Sprintf("platform: %v: no route between %q and %q", t, a.Name(), b.Name()))
	}
	if !e.reversed {
		if cap(buf) == 0 {
			// No caller buffer: serve the stored slice directly (callers
			// must treat Route.Links as read-only, as with any router).
			return Route{Links: e.links, Latency: e.latency}
		}
		return Route{Links: append(buf, e.links...), Latency: e.latency}
	}
	for i := len(e.links) - 1; i >= 0; i-- {
		buf = append(buf, e.links[i])
	}
	return Route{Links: buf, Latency: e.latency}
}

// MaterializedRouter walks every ordered host pair of p through r once and
// returns a TableRouter holding the results — the per-pair memoization the
// platform layer used to do implicitly, recast as just another Router
// implementation. Memory is O(hosts²): reach for it only on small or
// irregular platforms (e.g. loaded from a route list file) where computing
// routes is genuinely expensive; the regular topology builders route
// implicitly and need no table. Pairs whose reverse route is exactly the
// forward route backward are stored once and served as a reversed view.
func MaterializedRouter(p *Platform, r Router) *TableRouter {
	t := NewTableRouter(p.Name + " materialized")
	hosts := p.Hosts()
	for i, a := range hosts {
		for _, b := range hosts[i+1:] {
			fwd := r.RouteInto(nil, a, b)
			rev := r.RouteInto(nil, b, a)
			if isReverseOf(fwd.Links, rev.Links) {
				t.AddSymmetric(a, b, fwd.Links)
			} else {
				t.add(a, b, fwd.Links, fwd.Latency, false)
				t.add(b, a, rev.Links, rev.Latency, false)
			}
		}
	}
	return t
}

func isReverseOf(fwd, rev []*Link) bool {
	if len(fwd) != len(rev) {
		return false
	}
	for i, l := range fwd {
		if rev[len(rev)-1-i] != l {
			return false
		}
	}
	return true
}
