package platform

// Tests for lazy name materialization: NewHost/NewLink store no names
// (derived from the slab index and the registered link namer), AddHost/
// AddLink switch to explicit mode by materializing what exists, and the
// derived-mode Host() lookup inverts the prefix scheme with a strict
// round-trip check.

import (
	"fmt"
	"testing"

	"smpigo/internal/lmm"
)

func TestDerivedHostNamesRoundTrip(t *testing.T) {
	p := New("big")
	for i := 0; i < 12; i++ {
		p.NewHost(1e9)
	}
	for i, h := range p.Hosts() {
		want := fmt.Sprintf("big-%d", i)
		if h.Name() != want {
			t.Errorf("host %d name = %q, want %q", i, h.Name(), want)
		}
		if got := p.Host(want); got != h {
			t.Errorf("Host(%q) = %v, want host %d", want, got, i)
		}
	}
}

func TestDerivedHostLookupIsStrict(t *testing.T) {
	p := New("big")
	for i := 0; i < 12; i++ {
		p.NewHost(1e9)
	}
	// Only the exact spelling Name() produces resolves: no leading zeros,
	// no signs, no out-of-range IDs, no foreign prefixes.
	for _, bad := range []string{"big-007", "big-+7", "big--1", "big-12", "big-", "big-7 ", "small-7", "7"} {
		if got := p.Host(bad); got != nil {
			t.Errorf("Host(%q) = %s, want nil", bad, got.Name())
		}
	}
}

func TestDerivedLinkNamer(t *testing.T) {
	p := New("net")
	// Without a namer, links fall back to "<platform>-link-<ID>".
	l0 := p.NewLink(1e9, 0, lmm.Shared)
	if l0.Name() != "net-link-0" {
		t.Errorf("default link name = %q", l0.Name())
	}
	// A registered namer takes over for every derived link, old and new.
	p.SetLinkNamer(func(id int) string { return fmt.Sprintf("net-edge%d", id) })
	l1 := p.NewLink(1e9, 0, lmm.Shared)
	if l0.Name() != "net-edge0" || l1.Name() != "net-edge1" {
		t.Errorf("namer-derived names = %q, %q", l0.Name(), l1.Name())
	}
}

func TestMixedExplicitAndDerivedHosts(t *testing.T) {
	p := New("mix")
	h0 := p.NewHost(1e9)
	h1 := p.AddHost("gateway", 2e9) // materializes h0's derived name
	h2 := p.NewHost(1e9)            // derived name recorded in explicit mode
	cases := []struct {
		h    *Host
		want string
	}{{h0, "mix-0"}, {h1, "gateway"}, {h2, "mix-2"}}
	for _, c := range cases {
		if c.h.Name() != c.want {
			t.Errorf("host %d name = %q, want %q", c.h.ID, c.h.Name(), c.want)
		}
		if got := p.Host(c.want); got != c.h {
			t.Errorf("Host(%q) = %v, want host %d", c.want, got, c.h.ID)
		}
	}
	if got := p.Host("mix-1"); got != nil {
		t.Errorf("Host(\"mix-1\") = %s; explicit names must not shadow-resolve", got.Name())
	}
}

func TestMixedExplicitAndDerivedLinks(t *testing.T) {
	p := New("mix")
	p.SetLinkNamer(func(id int) string { return fmt.Sprintf("mix-wire%d", id) })
	l0 := p.NewLink(1e9, 0, lmm.Shared)
	l1 := p.AddLink("uplink", 1e9, 0, lmm.FatPipe) // materializes l0
	l2 := p.NewLink(1e9, 0, lmm.Shared)
	for _, c := range []struct {
		l    *Link
		want string
	}{{l0, "mix-wire0"}, {l1, "uplink"}, {l2, "mix-wire2"}} {
		if c.l.Name() != c.want {
			t.Errorf("link %d name = %q, want %q", c.l.ID, c.l.Name(), c.want)
		}
	}
}

// TestDerivedModeStoresNoNames pins the memory contract: a platform built
// entirely through NewHost/NewLink keeps no per-name storage at all.
func TestDerivedModeStoresNoNames(t *testing.T) {
	p := New("lean")
	p.SetLinkNamer(func(id int) string { return fmt.Sprintf("lean-l%d", id) })
	for i := 0; i < 100; i++ {
		p.NewHost(1e9)
		p.NewLink(1e9, 0, lmm.Shared)
	}
	if p.hostNames != nil || p.linkNames != nil || p.byName != nil {
		t.Error("derived-only platform materialized name storage")
	}
	// Forcing every name out does not change that: naming is a pure
	// function of the ID, consulted per call.
	for _, h := range p.Hosts() {
		_ = h.Name()
	}
	for _, l := range p.Links() {
		_ = l.Name()
	}
	if p.hostNames != nil || p.linkNames != nil {
		t.Error("Name() calls materialized name storage")
	}
}
