package platform

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"smpigo/internal/core"
	"smpigo/internal/lmm"
)

func TestAddHostAndLookup(t *testing.T) {
	p := New("test")
	h := p.AddHost("n0", 1e9)
	if p.Host("n0") != h {
		t.Error("lookup by name failed")
	}
	if p.HostByID(0) != h {
		t.Error("lookup by ID failed")
	}
	if h.Cabinet != -1 {
		t.Error("hand-built host should have cabinet -1")
	}
}

func TestDuplicateHostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate host name should panic")
		}
	}()
	p := New("test")
	p.AddHost("n0", 1e9)
	p.AddHost("n0", 1e9)
}

func TestManualRouteSymmetry(t *testing.T) {
	p := New("test")
	a := p.AddHost("a", 1e9)
	b := p.AddHost("b", 1e9)
	l1 := p.AddLink("l1", 125e6, 10*core.Microsecond, lmm.Shared)
	l2 := p.AddLink("l2", 250e6, 5*core.Microsecond, lmm.Shared)
	p.AddRoute(a, b, []*Link{l1, l2})

	fwd := p.Route(a, b)
	if len(fwd.Links) != 2 || fwd.Links[0] != l1 {
		t.Errorf("forward route wrong: %v", fwd.Links)
	}
	rev := p.Route(b, a)
	if len(rev.Links) != 2 || rev.Links[0] != l2 {
		t.Errorf("reverse route should be reversed: %v", rev.Links)
	}
	wantLat := 15 * core.Microsecond
	if math.Abs(float64(fwd.Latency-wantLat)) > 1e-12 {
		t.Errorf("latency %v, want %v", fwd.Latency, wantLat)
	}
	if fwd.Bottleneck() != 125e6 {
		t.Errorf("bottleneck %v, want 125e6", fwd.Bottleneck())
	}
}

func TestSelfRouteIsEmpty(t *testing.T) {
	p := New("test")
	a := p.AddHost("a", 1e9)
	r := p.Route(a, a)
	if len(r.Links) != 0 || r.Latency != 0 {
		t.Errorf("self route should be empty, got %v", r)
	}
}

func TestMissingRoutePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("missing route should panic")
		}
	}()
	p := New("test")
	a := p.AddHost("a", 1e9)
	b := p.AddHost("b", 1e9)
	p.Route(a, b)
}

func TestGriffonTopology(t *testing.T) {
	spec := Griffon()
	p, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Hosts()); got != 92 {
		t.Fatalf("griffon has %d hosts, want 92", got)
	}
	// 92 nodes x 2 links + 3 cabinets x (2 uplinks + backplane) + backbone.
	if got, want := len(p.Links()), 92*2+3*3+1; got != want {
		t.Errorf("links = %d, want %d", got, want)
	}
	// Same cabinet: up, cabinet backplane, down; one switch.
	a, b := p.HostByID(0), p.HostByID(1)
	r := p.Route(a, b)
	if len(r.Links) != 3 {
		t.Errorf("intra-cabinet route has %d links, want 3", len(r.Links))
	}
	if SwitchHops(a, b) != 1 {
		t.Error("intra-cabinet should be 1 switch")
	}
	// Cross cabinet: node up, cabinet up, backbone, cabinet down, node down.
	c := p.HostByID(40) // second cabinet starts at 33
	if c.Cabinet == a.Cabinet {
		t.Fatal("host 40 should be in another cabinet")
	}
	r = p.Route(a, c)
	if len(r.Links) != 7 {
		t.Errorf("cross-cabinet route has %d links, want 7", len(r.Links))
	}
	if SwitchHops(a, c) != 3 {
		t.Error("cross-cabinet should be 3 switches")
	}
	if r.Bottleneck() != 125e6 {
		t.Errorf("bottleneck %v, want node link 125e6", r.Bottleneck())
	}
	// Cross-cabinet latency must exceed intra-cabinet latency.
	if p.Route(a, c).Latency <= p.Route(a, b).Latency {
		t.Error("cross-cabinet route should have higher latency")
	}
}

func TestGdxTopology(t *testing.T) {
	p, err := Gdx().Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Hosts()); got != 312 {
		t.Fatalf("gdx has %d hosts, want 312", got)
	}
	spec := Gdx()
	if len(spec.Cabinets) != 18 {
		t.Errorf("gdx should model 18 switch groups, got %d", len(spec.Cabinets))
	}
	if spec.NodeCount() != 312 {
		t.Errorf("spec node count %d, want 312", spec.NodeCount())
	}
	// Find two hosts 3 switches apart and verify the uplink is the 1G
	// bottleneck (gdx's defining property vs griffon).
	a := p.HostByID(0)
	var far *Host
	for _, h := range p.Hosts() {
		if h.Cabinet != a.Cabinet {
			far = h
			break
		}
	}
	if far == nil {
		t.Fatal("no far host found")
	}
	r := p.Route(a, far)
	if len(r.Links) != 7 {
		t.Errorf("gdx cross route has %d links, want 7", len(r.Links))
	}
	if r.Bottleneck() != 125e6 {
		t.Errorf("gdx bottleneck %v, want 125e6", r.Bottleneck())
	}
}

func TestRouterSymmetricLatency(t *testing.T) {
	p, err := Griffon().Build()
	if err != nil {
		t.Fatal(err)
	}
	a, b := p.HostByID(3), p.HostByID(70)
	if p.Route(a, b).Latency != p.Route(b, a).Latency {
		t.Error("route latency should be symmetric")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []ClusterSpec{
		{},
		{Name: "x"},
		{Name: "x", Cabinets: []int{4}, NodeSpeed: 0},
		{Name: "x", Cabinets: []int{0}, NodeSpeed: 1},
		{Name: "x", Cabinets: []int{4}, NodeSpeed: 1, NodeLinkBandwidth: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should be invalid", i)
		}
	}
	if err := Griffon().Validate(); err != nil {
		t.Errorf("griffon preset invalid: %v", err)
	}
	if err := Gdx().Validate(); err != nil {
		t.Errorf("gdx preset invalid: %v", err)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteXML(&buf, Griffon(), Gdx()); err != nil {
		t.Fatal(err)
	}
	specs, err := ReadXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("got %d specs, want 2", len(specs))
	}
	clusters := Clusters(specs)
	if len(clusters) != 2 {
		t.Fatalf("got %d clusters, want 2", len(clusters))
	}
	g := clusters[0]
	want := Griffon()
	if g.Name != want.Name || g.NodeCount() != want.NodeCount() {
		t.Errorf("griffon roundtrip mismatch: %+v", g)
	}
	if math.Abs(g.NodeLinkBandwidth-want.NodeLinkBandwidth) > 1 {
		t.Errorf("bw roundtrip: %v vs %v", g.NodeLinkBandwidth, want.NodeLinkBandwidth)
	}
	if math.Abs(float64(g.NodeLinkLatency-want.NodeLinkLatency)) > 1e-12 {
		t.Errorf("lat roundtrip: %v vs %v", g.NodeLinkLatency, want.NodeLinkLatency)
	}
	if g.BackboneFatPipe != want.BackboneFatPipe {
		t.Error("bb_sharing roundtrip mismatch")
	}
}

func TestXMLErrors(t *testing.T) {
	if _, err := ReadXML(strings.NewReader("<platform version='1'/>")); err == nil {
		t.Error("empty platform should fail")
	}
	if _, err := ReadXML(strings.NewReader("not xml")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := ReadXML(strings.NewReader("<platform version='1'><wat/></platform>")); err == nil {
		t.Error("unregistered element should fail")
	}
	bad := `<platform version="1"><cluster id="x" speed="zzz" cabinets="4" bw="1Gbps" lat="1us" uplink_bw="1Gbps" uplink_lat="1us" bb_bw="1Gbps" bb_lat="1us"/></platform>`
	if _, err := ReadXML(strings.NewReader(bad)); err == nil {
		t.Error("bad speed should fail")
	}
	badPolicy := `<platform version="1"><cluster id="x" speed="1Gf" cabinets="4" bw="1Gbps" lat="1us" uplink_bw="1Gbps" uplink_lat="1us" bb_bw="1Gbps" bb_lat="1us" bb_sharing="WAT"/></platform>`
	if _, err := ReadXML(strings.NewReader(badPolicy)); err == nil {
		t.Error("bad sharing policy should fail")
	}
}

// TestRouterFuncAdapter checks the deprecated bare-function migration
// path: SetRouterFunc wraps the function in a RouterFunc, routes flow
// through it on every lookup (nothing is memoized anymore), and swapping
// routers takes effect immediately.
func TestRouterFuncAdapter(t *testing.T) {
	p := New("adapter")
	a := p.AddHost("a", 1e9)
	b := p.AddHost("b", 1e9)
	l := p.AddLink("l", 1e9, core.Microsecond, lmm.Shared)
	calls := 0
	p.SetRouterFunc(func(x, y *Host) Route {
		calls++
		return Route{Links: []*Link{l}, Latency: l.Latency}
	})
	for i := 0; i < 10; i++ {
		if got := p.Route(a, b); len(got.Links) != 1 {
			t.Fatalf("route %v", got)
		}
		p.Route(b, a)
	}
	if calls != 20 {
		t.Errorf("router called %d times, want 20 (implicit routing computes every lookup)", calls)
	}
	// The adapter must also honor a caller buffer.
	buf := make([]*Link, 0, 4)
	if got := p.RouteInto(buf, a, b); len(got.Links) != 1 || got.Links[0] != l || &got.Links[0] != &buf[:1][0] {
		t.Errorf("RouteInto through adapter did not append into the caller buffer")
	}
	// Installing a new router takes effect on the next lookup.
	l2 := p.AddLink("l2", 1e9, core.Microsecond, lmm.Shared)
	p.SetRouter(RouterFunc(func(x, y *Host) Route {
		return Route{Links: []*Link{l2, l2}, Latency: 2 * l2.Latency}
	}))
	if got := p.Route(a, b); len(got.Links) != 2 {
		t.Errorf("stale route served after SetRouter: %v", got)
	}
}

// TestTableRouterReverseView checks the symmetric-route storage contract:
// one stored slice serves both directions, the reverse by backward
// iteration into the caller's buffer, with no materialized copy.
func TestTableRouterReverseView(t *testing.T) {
	p := New("table")
	a := p.AddHost("a", 1e9)
	b := p.AddHost("b", 1e9)
	l1 := p.AddLink("l1", 1e9, core.Microsecond, lmm.Shared)
	l2 := p.AddLink("l2", 1e9, core.Microsecond, lmm.Shared)
	p.AddRoute(a, b, []*Link{l1, l2})

	tr, ok := p.Router().(*TableRouter)
	if !ok {
		t.Fatalf("AddRoute should install a TableRouter, got %T", p.Router())
	}
	if tr.Len() != 2 {
		t.Errorf("table has %d directed routes, want 2", tr.Len())
	}
	buf := make([]*Link, 0, 8)
	rev := p.RouteInto(buf[:0], b, a)
	if len(rev.Links) != 2 || rev.Links[0] != l2 || rev.Links[1] != l1 {
		t.Errorf("reverse route wrong: %v", rev.Links)
	}
	// Reverse lookups into a reused buffer must not allocate: the stored
	// forward slice is iterated backward, never copied.
	allocs := testing.AllocsPerRun(100, func() {
		p.RouteInto(buf[:0], b, a)
		p.RouteInto(buf[:0], a, b)
	})
	if allocs != 0 {
		t.Errorf("RouteInto with reused buffer allocates %v times per lookup pair, want 0", allocs)
	}
}

// TestMissingRoutePanicNamesRouter checks the one-code-path diagnostic:
// a pair missing from a TableRouter with no fallback panics naming the
// table that failed, not a generic message.
func TestMissingRoutePanicNamesRouter(t *testing.T) {
	p := New("gap")
	a := p.AddHost("a", 1e9)
	b := p.AddHost("b", 1e9)
	c := p.AddHost("c", 1e9)
	l := p.AddLink("l", 1e9, core.Microsecond, lmm.Shared)
	p.AddRoute(a, b, []*Link{l})
	defer func() {
		msg := recover()
		if msg == nil {
			t.Fatal("missing table route should panic")
		}
		if s := fmt.Sprint(msg); !strings.Contains(s, "table router") || !strings.Contains(s, "gap") {
			t.Errorf("panic %q does not name the failing router", s)
		}
	}()
	p.Route(a, c)
}

// TestRouteIntoZeroAlloc checks the hot-path contract of the implicit
// cluster router: resolving routes into a reused buffer performs no
// allocations at all.
func TestRouteIntoZeroAlloc(t *testing.T) {
	p, err := Griffon().Build()
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := p.HostByID(0), p.HostByID(1), p.HostByID(40)
	buf := make([]*Link, 0, 8)
	allocs := testing.AllocsPerRun(100, func() {
		if r := p.RouteInto(buf[:0], a, b); len(r.Links) != 3 {
			t.Fatal("bad intra-cabinet route")
		}
		if r := p.RouteInto(buf[:0], a, c); len(r.Links) != 7 {
			t.Fatal("bad cross-cabinet route")
		}
	})
	if allocs != 0 {
		t.Errorf("RouteInto allocates %v times per run, want 0", allocs)
	}
}

// TestMaterializedRouter checks that walking an implicit router into a
// TableRouter reproduces its routes exactly, stores symmetric pairs once
// (two directed entries per unordered pair, shared slice), and serves them
// back link-for-link.
func TestMaterializedRouter(t *testing.T) {
	p, err := Griffon().Build()
	if err != nil {
		t.Fatal(err)
	}
	hosts := p.Hosts()[:12]
	sub := New("sub") // small platform sharing griffon's links
	for _, h := range hosts {
		sub.AddHost(h.Name(), h.Speed).Cabinet = h.Cabinet
	}
	impl := p.Router()
	tr := MaterializedRouter(sub, RouterFunc(func(a, b *Host) Route {
		return impl.RouteInto(nil, p.HostByID(a.ID), p.HostByID(b.ID))
	}))
	if want := len(hosts) * (len(hosts) - 1); tr.Len() != want {
		t.Errorf("materialized table has %d directed routes, want %d", tr.Len(), want)
	}
	for _, a := range sub.Hosts() {
		for _, b := range sub.Hosts() {
			if a == b {
				continue
			}
			got := tr.RouteInto(nil, a, b)
			want := p.Route(p.HostByID(a.ID), p.HostByID(b.ID))
			if len(got.Links) != len(want.Links) || got.Latency != want.Latency {
				t.Fatalf("materialized route %s->%s differs: %d links vs %d", a.Name(), b.Name(), len(got.Links), len(want.Links))
			}
			for i := range got.Links {
				if got.Links[i] != want.Links[i] {
					t.Fatalf("materialized route %s->%s link %d differs", a.Name(), b.Name(), i)
				}
			}
		}
	}
}

// Property: every host pair on a built cluster has a route whose first and
// last links are the endpoints' own links, and latency is positive and
// symmetric.
func TestClusterRoutesProperty(t *testing.T) {
	p, err := Griffon().Build()
	if err != nil {
		t.Fatal(err)
	}
	n := len(p.Hosts())
	f := func(ai, bi uint16) bool {
		a := p.HostByID(int(ai) % n)
		b := p.HostByID(int(bi) % n)
		if a == b {
			return true
		}
		r := p.Route(a, b)
		if len(r.Links) < 2 || r.Latency <= 0 {
			return false
		}
		if r.Bottleneck() <= 0 {
			return false
		}
		return p.Route(b, a).Latency == r.Latency
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestBuildTimeValidation pins the constructor-level capacity validation:
// zero is legal (a failed resource the dynamics layer can also produce),
// negative and NaN panic at build time with the offending resource named —
// mirroring lmm.NewConstraint instead of failing much later inside the
// solver or at flow start.
func TestBuildTimeValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	cases := []struct {
		name  string
		value float64
		ok    bool
	}{
		{"zero", 0, true},
		{"positive", 1e9, true},
		{"negative", -1, false},
		{"nan", math.NaN(), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			build := map[string]func(){
				"NewHost": func() { New("p").NewHost(c.value) },
				"AddHost": func() { New("p").AddHost("h", c.value) },
				"NewLink": func() { New("p").NewLink(c.value, 1e-6, lmm.Shared) },
				"AddLink": func() { New("p").AddLink("l", c.value, 1e-6, lmm.Shared) },
			}
			for name, fn := range build {
				if c.ok {
					fn() // must not panic
				} else {
					mustPanic(name+"/"+c.name, fn)
				}
			}
		})
	}
}

// TestClusterProfiles checks the per-cabinet heterogeneity multipliers:
// node speeds and uplink bandwidths scale by their cabinet's entry, and the
// bisection metric tracks the weaker uplink half.
func TestClusterProfiles(t *testing.T) {
	s := Griffon()
	s.CabinetSpeed = []float64{1, 0.5, 2}
	s.CabinetUplinkWidth = []float64{1, 0.25, 1}
	p, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Cabinet boundaries: 33, 27, 32 nodes.
	for _, c := range []struct {
		host  int
		speed float64
	}{{0, 1e9}, {33, 0.5e9}, {60, 2e9}} {
		if got := p.HostByID(c.host).Speed; got != c.speed {
			t.Errorf("host %d speed %v, want %v", c.host, got, c.speed)
		}
	}
	for _, l := range p.Links() {
		switch l.Name() {
		case "griffon-cab1-up", "griffon-cab1-down":
			if l.Bandwidth != s.UplinkBandwidth/4 {
				t.Errorf("%s bandwidth %v, want %v", l.Name(), l.Bandwidth, s.UplinkBandwidth/4)
			}
		case "griffon-cab0-up", "griffon-cab2-up":
			if l.Bandwidth != s.UplinkBandwidth {
				t.Errorf("%s bandwidth %v, want %v", l.Name(), l.Bandwidth, s.UplinkBandwidth)
			}
		}
	}
	// floor(3/2) = 1 crossing uplink; the weakest (quarter width) bounds
	// the cut, below the fat-pipe backbone.
	if want := s.UplinkBandwidth / 4; p.Topo.BisectionBandwidth != want {
		t.Errorf("bisection %v, want %v", p.Topo.BisectionBandwidth, want)
	}
	bad := Griffon()
	bad.CabinetSpeed = []float64{1, 2} // wrong length
	if err := bad.Validate(); err == nil {
		t.Error("short CabinetSpeed profile validated")
	}
}
