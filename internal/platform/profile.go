package platform

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Heterogeneity profiles are optional multiplier slices on the spec types:
// empty means a homogeneous machine (the default, bit-identical to builds
// before profiles existed), non-empty scales a builder parameter per
// structural unit (cabinet, tree level, torus dimension, dragonfly group).
// Multipliers apply at Build time only — the spec keeps the nominal value,
// so XML round-trips and dynamics restore events stay anchored to it.

// CheckProfile validates a multiplier profile: every entry must be positive
// and finite. want >= 0 additionally requires a non-empty profile to have
// exactly want entries; want < 0 accepts any length (cyclic profiles).
// An empty profile is always valid — it means "homogeneous".
func CheckProfile(vs []float64, want int) error {
	if len(vs) == 0 {
		return nil
	}
	if want >= 0 && len(vs) != want {
		return fmt.Errorf("%d entries, want %d", len(vs), want)
	}
	for i, v := range vs {
		if !(v > 0) || math.IsInf(v, 0) {
			return fmt.Errorf("entry %d is %v, want positive and finite", i, v)
		}
	}
	return nil
}

// ProfileAt reads a cyclic profile: entry i%len, or 1 when the profile is
// empty. Only valid after CheckProfile.
func ProfileAt(vs []float64, i int) float64 {
	if len(vs) == 0 {
		return 1
	}
	return vs[i%len(vs)]
}

// ParseFloatList parses a separator-joined list of floats, as used by the
// profile attributes of the XML dialect.
func ParseFloatList(s, sep string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, sep) {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// JoinFloats renders a float list with %g, the inverse of ParseFloatList.
func JoinFloats(vs []float64, sep string) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strings.Join(parts, sep)
}
