package platform

import (
	"fmt"
	"sync"

	"smpigo/internal/core"
	"smpigo/internal/lmm"
)

// Host is a compute node of the target platform.
type Host struct {
	// ID is the dense index of the host inside its platform.
	ID int
	// Name is the unique host name, e.g. "griffon-12".
	Name string
	// Speed is the compute speed in flop/s, used to convert flop amounts
	// into delays and to scale timings between host and target nodes.
	Speed float64
	// Cabinet is the index of the lowest-level switch group holding the
	// node — the cabinet of a hierarchical cluster, the leaf switch of a
	// fat-tree, the dimension-0 ring of a torus, the router of a dragonfly —
	// or -1 when the platform has no group structure. Placement mappers use
	// it to lay ranks out within or across groups.
	Cabinet int
}

// Link is a network resource with a capacity and a traversal latency.
type Link struct {
	// ID is the dense index of the link inside its platform.
	ID int
	// Name is the unique link name, e.g. "griffon-up-12".
	Name string
	// Bandwidth is the link capacity in bytes per second.
	Bandwidth float64
	// Latency is the time a byte takes to traverse the link.
	Latency core.Duration
	// Policy selects contention behaviour: Shared links divide Bandwidth
	// among crossing flows; FatPipe links cap each flow individually.
	Policy lmm.SharingPolicy
}

// TopoInfo describes the structural family and metrics of a built platform.
// Builders that know their interconnect shape (the cluster builder here, the
// generators in package topology) attach one to Platform.Topo; hand-built
// platforms leave it nil. Consumers use it for policy decisions that depend
// on the interconnect — the smpi layer keys its "auto" collective-algorithm
// selection on Kind, and the placement mappers read the lowest-level group
// structure off Host.Cabinet, which every TopoInfo-setting builder fills.
type TopoInfo struct {
	// Kind is the interconnect family: "cluster", "fattree", "torus", or
	// "dragonfly".
	Kind string
	// Hosts and Links count the platform's compute nodes and directed links.
	Hosts, Links int
	// Diameter is the maximum route length between two hosts in links
	// traversed (0 when the builder does not compute it).
	Diameter int
	// BisectionBandwidth is the aggregate one-way bandwidth in bytes/s
	// crossing the balanced structural cut (0 when not computed).
	BisectionBandwidth float64
}

// Route is an ordered list of links connecting two hosts, with the
// aggregate latency precomputed.
type Route struct {
	Links   []*Link
	Latency core.Duration
}

// Bottleneck returns the smallest link bandwidth along the route, which is
// the reference bandwidth B0 the piece-wise linear model factors multiply.
func (r Route) Bottleneck() float64 {
	if len(r.Links) == 0 {
		return 0
	}
	min := r.Links[0].Bandwidth
	for _, l := range r.Links[1:] {
		if l.Bandwidth < min {
			min = l.Bandwidth
		}
	}
	return min
}

// Platform is a set of hosts, links, and a routing function.
type Platform struct {
	Name string
	// Topo describes the interconnect family and structural metrics when the
	// builder knows them; nil for hand-built platforms.
	Topo  *TopoInfo
	hosts []*Host
	links []*Link

	byName map[string]*Host
	// router computes the route between two distinct hosts. The cluster
	// builder installs a hierarchical router, topology generators (package
	// topology) install graph routers via SetRouter, and hand-built
	// platforms use explicit pair routes instead.
	router func(a, b *Host) Route
	pairs  map[[2]int]Route
	// routes memoizes router results per ordered host pair. Route sits on
	// the per-message hot path, and router closures rebuild the link slice
	// and re-sum latency on every call; the cache makes repeat lookups an
	// allocation-free map hit. sync.Map because platforms are shared across
	// concurrently running campaign jobs.
	routes sync.Map // int64 (a.ID<<32 | b.ID) -> Route
}

// New returns an empty platform.
func New(name string) *Platform {
	return &Platform{Name: name, byName: make(map[string]*Host), pairs: make(map[[2]int]Route)}
}

// AddHost creates a host. Host names must be unique.
func (p *Platform) AddHost(name string, speed float64) *Host {
	if _, dup := p.byName[name]; dup {
		panic(fmt.Sprintf("platform: duplicate host %q", name))
	}
	h := &Host{ID: len(p.hosts), Name: name, Speed: speed, Cabinet: -1}
	p.hosts = append(p.hosts, h)
	p.byName[name] = h
	return h
}

// AddLink creates a link.
func (p *Platform) AddLink(name string, bandwidth float64, latency core.Duration, policy lmm.SharingPolicy) *Link {
	l := &Link{ID: len(p.links), Name: name, Bandwidth: bandwidth, Latency: latency, Policy: policy}
	p.links = append(p.links, l)
	return l
}

// AddRoute installs a symmetric route between two hosts (used by hand-built
// platforms; cluster platforms use the built-in hierarchical router).
func (p *Platform) AddRoute(a, b *Host, links []*Link) {
	r := Route{Links: links}
	for _, l := range links {
		r.Latency += l.Latency
	}
	p.pairs[[2]int{a.ID, b.ID}] = r
	rev := Route{Links: reversed(links), Latency: r.Latency}
	p.pairs[[2]int{b.ID, a.ID}] = rev
}

func reversed(links []*Link) []*Link {
	out := make([]*Link, len(links))
	for i, l := range links {
		out[len(links)-1-i] = l
	}
	return out
}

// Hosts returns all hosts in ID order.
func (p *Platform) Hosts() []*Host { return p.hosts }

// Links returns all links in ID order.
func (p *Platform) Links() []*Link { return p.links }

// Host returns the host with the given name, or nil.
func (p *Platform) Host(name string) *Host { return p.byName[name] }

// HostByID returns the host with the given dense ID.
func (p *Platform) HostByID(id int) *Host { return p.hosts[id] }

// SetRouter installs the routing function computing the route between two
// distinct hosts. Results are memoized per host pair, so the function may
// allocate freely; it must be deterministic (same pair, same route) and is
// only consulted for pairs without an explicit AddRoute entry. Installing
// a router drops routes memoized from any previous one. SetRouter is not
// safe to call concurrently with Route.
func (p *Platform) SetRouter(router func(a, b *Host) Route) {
	p.router = router
	p.routes.Clear()
}

// Route returns the route from a to b. Routing a host to itself returns an
// empty route (loopback communications are instantaneous at the network
// level; memory-copy costs belong to the MPI layer). Router-computed routes
// are cached per ordered pair; Route is safe for concurrent use once the
// platform is built.
func (p *Platform) Route(a, b *Host) Route {
	if a == b {
		return Route{}
	}
	if r, ok := p.pairs[[2]int{a.ID, b.ID}]; ok {
		return r
	}
	if p.router == nil {
		panic(fmt.Sprintf("platform: no route between %q and %q", a.Name, b.Name))
	}
	key := int64(a.ID)<<32 | int64(b.ID)
	if r, ok := p.routes.Load(key); ok {
		return r.(Route)
	}
	r := p.router(a, b)
	p.routes.Store(key, r)
	return r
}
