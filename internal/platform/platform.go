package platform

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"smpigo/internal/core"
	"smpigo/internal/lmm"
)

// checkSpeed and checkBandwidth validate resource capacities at build time,
// mirroring lmm.NewConstraint (zero is legal — a failed resource — negative
// and NaN panic). Catching bad values here names the offending resource;
// letting them through used to fail much later, deep inside the solver or at
// flow start, with no hint of which host or link was misbuilt.
func checkSpeed(speed float64, what string, id any) {
	if speed < 0 || math.IsNaN(speed) {
		panic(fmt.Sprintf("platform: invalid speed %v for %s %v", speed, what, id))
	}
}

func checkBandwidth(bw float64, what string, id any) {
	if bw < 0 || math.IsNaN(bw) {
		panic(fmt.Sprintf("platform: invalid bandwidth %v for %s %v", bw, what, id))
	}
}

// Host is a compute node of the target platform.
type Host struct {
	// ID is the dense index of the host inside its platform.
	ID int
	// Speed is the compute speed in flop/s, used to convert flop amounts
	// into delays and to scale timings between host and target nodes.
	Speed float64
	// Cabinet is the index of the lowest-level switch group holding the
	// node — the cabinet of a hierarchical cluster, the leaf switch of a
	// fat-tree, the dimension-0 ring of a torus, the router of a dragonfly —
	// or -1 when the platform has no group structure. Placement mappers use
	// it to lay ranks out within or across groups.
	Cabinet int

	p *Platform
}

// Name returns the unique host name, e.g. "griffon-12". Hosts created with
// NewHost derive it on demand from the platform name and the slab index
// ("<platform>-<ID>", the scheme every builder uses) so nothing is stored
// per host; hosts created with AddHost return their explicit name.
func (h *Host) Name() string { return h.p.hostName(h.ID) }

// Link is a network resource with a capacity and a traversal latency.
type Link struct {
	// ID is the dense index of the link inside its platform.
	ID int
	// Bandwidth is the link capacity in bytes per second.
	Bandwidth float64
	// Latency is the time a byte takes to traverse the link.
	Latency core.Duration
	// Policy selects contention behaviour: Shared links divide Bandwidth
	// among crossing flows; FatPipe links cap each flow individually.
	Policy lmm.SharingPolicy

	p *Platform
}

// Name returns the unique link name, e.g. "griffon-up-12". Links created
// with NewLink derive it on demand from the installed link namer (builders
// register the inverse of their build-order link-ID arithmetic via
// SetLinkNamer) so nothing is stored per link; links created with AddLink
// return their explicit name.
func (l *Link) Name() string { return l.p.linkName(l.ID) }

// TopoInfo describes the structural family and metrics of a built platform.
// Builders that know their interconnect shape (the cluster builder here, the
// generators in package topology) attach one to Platform.Topo; hand-built
// platforms leave it nil. Consumers use it for policy decisions that depend
// on the interconnect — the smpi layer keys its "auto" collective-algorithm
// selection on Kind, and the placement mappers read the lowest-level group
// structure off Host.Cabinet, which every TopoInfo-setting builder fills.
type TopoInfo struct {
	// Kind is the interconnect family: "cluster", "fattree", "torus", or
	// "dragonfly".
	Kind string
	// Hosts and Links count the platform's compute nodes and directed links.
	Hosts, Links int
	// Diameter is the maximum route length between two hosts in links
	// traversed (0 when the builder does not compute it).
	Diameter int
	// BisectionBandwidth is the aggregate one-way bandwidth in bytes/s
	// crossing the balanced structural cut (0 when not computed).
	BisectionBandwidth float64
}

// Route is an ordered list of links connecting two hosts, with the
// aggregate latency precomputed. Routes returned by Platform.Route and
// Router.RouteInto may share storage with the router (table routers) or
// with a caller buffer; treat Links as read-only.
type Route struct {
	Links   []*Link
	Latency core.Duration
}

// Bottleneck returns the smallest link bandwidth along the route, which is
// the reference bandwidth B0 the piece-wise linear model factors multiply.
func (r Route) Bottleneck() float64 {
	if len(r.Links) == 0 {
		return 0
	}
	min := r.Links[0].Bandwidth
	for _, l := range r.Links[1:] {
		if l.Bandwidth < min {
			min = l.Bandwidth
		}
	}
	return min
}

// slabSize is the default capacity of a host/link storage slab when the
// builder gave no Reserve hint. Slabs are never reallocated once handed
// out, so *Host/*Link handles stay stable as the platform grows.
const slabSize = 1 << 12

// Platform is a set of hosts, links, and a router.
//
// Hosts and links live in contiguous array-of-structs slabs — one bulk
// allocation per Reserve call or per slabSize objects — and are addressed
// internally by dense IDs; the *Host/*Link pointers handed to callers are
// stable views into the slabs. Builders create hosts and links through
// NewHost/NewLink, whose names are derived on demand from the slab index
// (hosts) or the registered link namer (links) — nothing is stored per
// name, so a 65536-host platform costs a couple hundred bytes per host with
// no per-object or per-pair bookkeeping: routes are computed on demand by
// the installed Router, never stored per pair.
type Platform struct {
	Name string
	// Topo describes the interconnect family and structural metrics when the
	// builder knows them; nil for hand-built platforms.
	Topo *TopoInfo

	hostSlabs [][]Host
	linkSlabs [][]Link
	hosts     []*Host
	links     []*Link

	// hostPrefix derives NewHost names as hostPrefix + itoa(ID); it defaults
	// to Name + "-", the scheme every builder uses.
	hostPrefix string
	// linkNamer derives NewLink names from the link ID (see SetLinkNamer).
	linkNamer func(id int) string
	// hostNames/linkNames hold explicit names; nil while every host/link is
	// derived (the scalable mode). The first AddHost/AddLink materializes the
	// derived names of earlier objects, so the two modes can mix.
	hostNames []string
	linkNames []string
	// byName indexes explicitly named hosts; nil in derived mode, where
	// Host() inverts the prefix scheme instead.
	byName map[string]*Host

	// router computes routes between distinct hosts. The cluster builder
	// and the topology generators install implicit routers (closed-form,
	// O(1) state); AddRoute installs (and chains in front) a TableRouter.
	router Router
	// table is the TableRouter AddRoute created, if any; kept so explicit
	// pair routes keep precedence when SetRouter is called afterwards.
	table *TableRouter
}

// New returns an empty platform.
func New(name string) *Platform {
	return &Platform{Name: name, hostPrefix: name + "-"}
}

// hostName resolves a host ID to its name (see Host.Name).
func (p *Platform) hostName(id int) string {
	if p.hostNames != nil {
		return p.hostNames[id]
	}
	return p.hostPrefix + strconv.Itoa(id)
}

// linkName resolves a link ID to its name (see Link.Name).
func (p *Platform) linkName(id int) string {
	if p.linkNames != nil {
		return p.linkNames[id]
	}
	if p.linkNamer != nil {
		return p.linkNamer(id)
	}
	return p.Name + "-link-" + strconv.Itoa(id)
}

// SetLinkNamer installs the derived-name function for links created with
// NewLink: the inverse of the builder's build-order link-ID arithmetic.
// The namer must be pure and must keep answering for every existing derived
// link; it is consulted only when a link's name is actually wanted (error
// messages, reports, lookups), never on the routing or event hot paths.
func (p *Platform) SetLinkNamer(fn func(id int) string) { p.linkNamer = fn }

// materializeHostNames switches host naming to explicit mode, capturing the
// derived names of every existing host. Called by the first AddHost.
func (p *Platform) materializeHostNames() {
	if p.hostNames != nil {
		return
	}
	p.hostNames = make([]string, len(p.hosts), cap(p.hosts))
	p.byName = make(map[string]*Host, cap(p.hosts))
	for i := range p.hosts {
		p.hostNames[i] = p.hostPrefix + strconv.Itoa(i)
		p.byName[p.hostNames[i]] = p.hosts[i]
	}
}

// materializeLinkNames is materializeHostNames for links.
func (p *Platform) materializeLinkNames() {
	if p.linkNames != nil {
		return
	}
	names := make([]string, len(p.links), cap(p.links))
	for i := range names {
		names[i] = p.linkName(i) // still derived: linkNames is nil here
	}
	p.linkNames = names
}

// Reserve pre-allocates storage for the given numbers of additional hosts
// and links in one slab each. Builders that know their final counts call it
// once up front so the whole platform lands in two bulk allocations;
// growing past a reservation (or never reserving) falls back to fixed-size
// slabs. Existing *Host/*Link handles remain valid either way.
func (p *Platform) Reserve(hosts, links int) {
	if hosts > 0 {
		p.hostSlabs = append(p.hostSlabs, make([]Host, 0, hosts))
		if cap(p.hosts)-len(p.hosts) < hosts {
			grown := make([]*Host, len(p.hosts), len(p.hosts)+hosts)
			copy(grown, p.hosts)
			p.hosts = grown
		}
	}
	if links > 0 {
		p.linkSlabs = append(p.linkSlabs, make([]Link, 0, links))
		if cap(p.links)-len(p.links) < links {
			grown := make([]*Link, len(p.links), len(p.links)+links)
			copy(grown, p.links)
			p.links = grown
		}
	}
}

// NewHost creates a host whose name is derived on demand from the slab
// index ("<platform>-<ID>"), storing nothing per name. This is the scalable
// path every builder uses; hand-built platforms wanting arbitrary names use
// AddHost instead.
func (p *Platform) NewHost(speed float64) *Host {
	checkSpeed(speed, "host", len(p.hosts))
	if n := len(p.hostSlabs); n == 0 || len(p.hostSlabs[n-1]) == cap(p.hostSlabs[n-1]) {
		p.hostSlabs = append(p.hostSlabs, make([]Host, 0, slabSize))
	}
	slab := &p.hostSlabs[len(p.hostSlabs)-1]
	*slab = append(*slab, Host{ID: len(p.hosts), Speed: speed, Cabinet: -1, p: p})
	h := &(*slab)[len(*slab)-1]
	p.hosts = append(p.hosts, h)
	if p.hostNames != nil {
		// Explicit mode was already entered: record the derived name so
		// hostNames keeps covering every host.
		name := p.hostPrefix + strconv.Itoa(h.ID)
		p.hostNames = append(p.hostNames, name)
		p.byName[name] = h
	}
	return h
}

// AddHost creates a host with an explicit name. Host names must be unique.
// The first AddHost on a platform materializes the derived names of any
// NewHost-created hosts, so mixing the two modes is allowed — but a
// platform that never calls AddHost stores no names at all.
func (p *Platform) AddHost(name string, speed float64) *Host {
	checkSpeed(speed, "host", name)
	p.materializeHostNames()
	if _, dup := p.byName[name]; dup {
		panic(fmt.Sprintf("platform: duplicate host %q", name))
	}
	if n := len(p.hostSlabs); n == 0 || len(p.hostSlabs[n-1]) == cap(p.hostSlabs[n-1]) {
		p.hostSlabs = append(p.hostSlabs, make([]Host, 0, slabSize))
	}
	slab := &p.hostSlabs[len(p.hostSlabs)-1]
	*slab = append(*slab, Host{ID: len(p.hosts), Speed: speed, Cabinet: -1, p: p})
	h := &(*slab)[len(*slab)-1]
	p.hosts = append(p.hosts, h)
	p.hostNames = append(p.hostNames, name)
	p.byName[name] = h
	return h
}

// NewLink creates a link whose name is derived on demand from the link
// namer registered with SetLinkNamer (or "<platform>-link-<ID>" without
// one), storing nothing per name.
func (p *Platform) NewLink(bandwidth float64, latency core.Duration, policy lmm.SharingPolicy) *Link {
	checkBandwidth(bandwidth, "link", len(p.links))
	if n := len(p.linkSlabs); n == 0 || len(p.linkSlabs[n-1]) == cap(p.linkSlabs[n-1]) {
		p.linkSlabs = append(p.linkSlabs, make([]Link, 0, slabSize))
	}
	slab := &p.linkSlabs[len(p.linkSlabs)-1]
	*slab = append(*slab, Link{ID: len(p.links), Bandwidth: bandwidth, Latency: latency, Policy: policy, p: p})
	l := &(*slab)[len(*slab)-1]
	p.links = append(p.links, l)
	if p.linkNames != nil {
		name := p.Name + "-link-" + strconv.Itoa(l.ID)
		if p.linkNamer != nil {
			name = p.linkNamer(l.ID)
		}
		p.linkNames = append(p.linkNames, name)
	}
	return l
}

// AddLink creates a link with an explicit name. The first AddLink
// materializes the derived names of any NewLink-created links (mirroring
// AddHost).
func (p *Platform) AddLink(name string, bandwidth float64, latency core.Duration, policy lmm.SharingPolicy) *Link {
	checkBandwidth(bandwidth, "link", name)
	p.materializeLinkNames()
	if n := len(p.linkSlabs); n == 0 || len(p.linkSlabs[n-1]) == cap(p.linkSlabs[n-1]) {
		p.linkSlabs = append(p.linkSlabs, make([]Link, 0, slabSize))
	}
	slab := &p.linkSlabs[len(p.linkSlabs)-1]
	*slab = append(*slab, Link{ID: len(p.links), Bandwidth: bandwidth, Latency: latency, Policy: policy, p: p})
	l := &(*slab)[len(*slab)-1]
	p.links = append(p.links, l)
	p.linkNames = append(p.linkNames, name)
	return l
}

// AddRoute installs a symmetric explicit route between two hosts (used by
// hand-built platforms; generated platforms install implicit routers). The
// routes live in a TableRouter that is created on first use and takes
// precedence over any router installed with SetRouter, which serves as its
// fallback. Only the forward link slice is stored; the reverse direction
// iterates it backward.
func (p *Platform) AddRoute(a, b *Host, links []*Link) {
	if p.table == nil {
		p.table = NewTableRouter(p.Name)
		p.table.Fallback = p.router
		p.router = p.table
	}
	p.table.AddSymmetric(a, b, links)
}

// Hosts returns all hosts in ID order.
func (p *Platform) Hosts() []*Host { return p.hosts }

// Links returns all links in ID order.
func (p *Platform) Links() []*Link { return p.links }

// Host returns the host with the given name, or nil. On a platform whose
// hosts were all created with NewHost there is no name index to consult:
// the lookup inverts the derived scheme instead, with a strict round-trip
// check so only the one spelling Name() produces resolves ("<prefix>007"
// and "<prefix>+7" are not hosts even when "<prefix>7" is).
func (p *Platform) Host(name string) *Host {
	if p.byName != nil {
		return p.byName[name]
	}
	suffix, ok := strings.CutPrefix(name, p.hostPrefix)
	if !ok {
		return nil
	}
	id, err := strconv.Atoi(suffix)
	if err != nil || id < 0 || id >= len(p.hosts) || strconv.Itoa(id) != suffix {
		return nil
	}
	return p.hosts[id]
}

// HostByID returns the host with the given dense ID.
func (p *Platform) HostByID(id int) *Host { return p.hosts[id] }

// LinkByID returns the link with the given dense ID. Implicit routers use
// it to turn closed-form link indices into link handles.
func (p *Platform) LinkByID(id int) *Link { return p.links[id] }

// SetRouter installs the router computing routes between distinct hosts.
// The router must be deterministic (same pair, same route) and read-only
// once the platform is in use; it is only consulted for pairs without an
// explicit AddRoute entry (those live in a TableRouter chained in front).
// Routes are computed on every lookup — implicit routers are cheap enough
// that nothing is memoized; wrap an expensive irregular router with
// MaterializedRouter to trade O(hosts²) memory back for lookup speed.
// SetRouter is not safe to call concurrently with Route.
func (p *Platform) SetRouter(r Router) {
	if p.table != nil && p.table != r {
		p.table.Fallback = r
		return
	}
	p.router = r
}

// SetRouterFunc installs a bare routing function through the RouterFunc
// adapter.
//
// Deprecated: implement Router and call SetRouter instead. A bare function
// must build a fresh Route per call, so it cannot serve the zero-allocation
// RouteInto contract; RouterFunc exists for mechanical migration only.
func (p *Platform) SetRouterFunc(f func(a, b *Host) Route) { p.SetRouter(RouterFunc(f)) }

// Router returns the installed router: the TableRouter when explicit
// routes were added (with any SetRouter router as its fallback), the
// SetRouter router otherwise, or nil.
func (p *Platform) Router() Router { return p.router }

// RouteInto resolves the route from a to b, appending its links to buf —
// normally the empty prefix of a caller-owned buffer — and returning the
// route built on the appended slice. Reusing one buffer per call site
// makes repeat lookups allocation-free. Routing a host to itself returns
// an empty route (loopback communications are instantaneous at the network
// level; memory-copy costs belong to the MPI layer). Safe for concurrent
// use once the platform is built.
func (p *Platform) RouteInto(buf []*Link, a, b *Host) Route {
	if a == b {
		return Route{Links: buf}
	}
	if p.router == nil {
		panic(fmt.Sprintf("platform %q: no router installed, no route between %q and %q", p.Name, a.Name(), b.Name()))
	}
	return p.router.RouteInto(buf, a, b)
}

// Route resolves the route from a to b into a fresh slice (sized from the
// topology diameter when known). Callers that resolve routes in a loop and
// do not retain them should prefer RouteInto with a reused buffer.
func (p *Platform) Route(a, b *Host) Route {
	if a == b {
		return Route{}
	}
	var buf []*Link
	if p.Topo != nil && p.Topo.Diameter > 0 {
		buf = make([]*Link, 0, p.Topo.Diameter)
	}
	return p.RouteInto(buf, a, b)
}
