package platform

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"smpigo/internal/core"
)

// The XML schema follows the spirit of SimGrid's platform DTD: a <platform>
// root holding one spec element per target machine. The <cluster> element
// is the hierarchical cluster the paper's evaluation uses:
//
//	<platform version="1">
//	  <cluster id="griffon" speed="1Gf" cabinets="33,27,32"
//	           bw="1Gbps" lat="20us"
//	           uplink_bw="10Gbps" uplink_lat="4us"
//	           bb_bw="10Gbps" bb_lat="2us" bb_sharing="FATPIPE"/>
//	</platform>
//
// Additional elements (<fattree>, <torus>, <dragonfly>, ...) are registered
// by the packages that define them via RegisterXMLSpec, so the dialect is
// open: ReadXML decodes any element a Spec implementation has claimed.

// Spec describes a buildable platform: a cluster description or a generated
// interconnect topology. Implementations are plain value types that can be
// validated, instantiated, and round-tripped through the XML dialect.
type Spec interface {
	// Validate reports the first structural problem with the spec, if any.
	Validate() error
	// Build instantiates the platform.
	Build() (*Platform, error)
	// XMLElement returns the spec's element name and attribute list for
	// serialization. The name must match the spec's RegisterXMLSpec entry.
	XMLElement() (name string, attrs []xml.Attr)
}

// xmlSpecDecoders maps element names to decoders; populated at init time by
// RegisterXMLSpec, read-only afterwards.
var xmlSpecDecoders = map[string]func(attrs map[string]string) (Spec, error){}

// RegisterXMLSpec registers the decoder for a platform-file element. It is
// meant to be called from init functions of spec-defining packages;
// registering the same element twice panics.
func RegisterXMLSpec(element string, decode func(attrs map[string]string) (Spec, error)) {
	if _, dup := xmlSpecDecoders[element]; dup {
		panic(fmt.Sprintf("platform: xml element %q registered twice", element))
	}
	xmlSpecDecoders[element] = decode
}

// Attr builds an xml.Attr, keeping XMLElement implementations terse.
func Attr(name, format string, args ...any) xml.Attr {
	return xml.Attr{Name: xml.Name{Local: name}, Value: fmt.Sprintf(format, args...)}
}

// WriteXML serializes one or more specs as a platform file.
func WriteXML(w io.Writer, specs ...Spec) error {
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	root := xml.StartElement{
		Name: xml.Name{Local: "platform"},
		Attr: []xml.Attr{Attr("version", "1")},
	}
	if err := enc.EncodeToken(root); err != nil {
		return err
	}
	for _, s := range specs {
		name, attrs := s.XMLElement()
		el := xml.StartElement{Name: xml.Name{Local: name}, Attr: attrs}
		if err := enc.EncodeToken(el); err != nil {
			return err
		}
		if err := enc.EncodeToken(el.End()); err != nil {
			return err
		}
	}
	if err := enc.EncodeToken(root.End()); err != nil {
		return err
	}
	if err := enc.Flush(); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// ReadXML parses a platform file and returns the specs it declares, in
// document order. Elements are decoded through the RegisterXMLSpec registry,
// so topology elements are only recognized when their defining package is
// linked in.
func ReadXML(r io.Reader) ([]Spec, error) {
	dec := xml.NewDecoder(r)
	var specs []Spec
	sawRoot := false
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("platform xml: %w", err)
		}
		start, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		if !sawRoot {
			if start.Name.Local != "platform" {
				return nil, fmt.Errorf("platform xml: root element is <%s>, want <platform>", start.Name.Local)
			}
			sawRoot = true
			continue
		}
		decode := xmlSpecDecoders[start.Name.Local]
		if decode == nil {
			return nil, fmt.Errorf("platform xml: unknown element <%s>", start.Name.Local)
		}
		attrs := make(map[string]string, len(start.Attr))
		for _, a := range start.Attr {
			attrs[a.Name.Local] = a.Value
		}
		spec, err := decode(attrs)
		if err != nil {
			return nil, err
		}
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		specs = append(specs, spec)
		if err := dec.Skip(); err != nil {
			return nil, fmt.Errorf("platform xml: %w", err)
		}
	}
	if !sawRoot {
		return nil, fmt.Errorf("platform xml: no <platform> element")
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("platform xml: no spec element inside <platform>")
	}
	return specs, nil
}

// Clusters filters the ClusterSpec entries out of a mixed spec list.
func Clusters(specs []Spec) []ClusterSpec {
	var out []ClusterSpec
	for _, s := range specs {
		if c, ok := s.(ClusterSpec); ok {
			out = append(out, c)
		}
	}
	return out
}

func init() {
	RegisterXMLSpec("cluster", decodeClusterXML)
}

// XMLElement implements Spec.
func (s ClusterSpec) XMLElement() (string, []xml.Attr) {
	cabinets := make([]string, len(s.Cabinets))
	for i, c := range s.Cabinets {
		cabinets[i] = strconv.Itoa(c)
	}
	sharing := "SHARED"
	if s.BackboneFatPipe {
		sharing = "FATPIPE"
	}
	attrs := []xml.Attr{
		Attr("id", "%s", s.Name),
		Attr("speed", "%gf", s.NodeSpeed),
		Attr("cabinets", "%s", strings.Join(cabinets, ",")),
		Attr("bw", "%gBps", s.NodeLinkBandwidth),
		Attr("lat", "%gs", float64(s.NodeLinkLatency)),
		Attr("bp_bw", "%gBps", s.CabinetBackplaneBandwidth),
		Attr("bp_lat", "%gs", float64(s.CabinetBackplaneLatency)),
		Attr("uplink_bw", "%gBps", s.UplinkBandwidth),
		Attr("uplink_lat", "%gs", float64(s.UplinkLatency)),
		Attr("bb_bw", "%gBps", s.BackboneBandwidth),
		Attr("bb_lat", "%gs", float64(s.BackboneLatency)),
		Attr("bb_sharing", "%s", sharing),
	}
	// Profile attributes appear only on heterogeneous specs, so platform
	// files for homogeneous machines are byte-identical to the pre-profile
	// dialect.
	if len(s.CabinetSpeed) > 0 {
		attrs = append(attrs, Attr("cab_speed", "%s", JoinFloats(s.CabinetSpeed, ",")))
	}
	if len(s.CabinetUplinkWidth) > 0 {
		attrs = append(attrs, Attr("cab_width", "%s", JoinFloats(s.CabinetUplinkWidth, ",")))
	}
	return "cluster", attrs
}

func decodeClusterXML(attrs map[string]string) (Spec, error) {
	var spec ClusterSpec
	var err error
	id := attrs["id"]
	fail := func(field string, e error) (Spec, error) {
		return nil, fmt.Errorf("cluster %q: attribute %s: %w", id, field, e)
	}
	spec.Name = id
	if spec.NodeSpeed, err = core.ParseFlops(attrs["speed"]); err != nil {
		return fail("speed", err)
	}
	for _, part := range strings.Split(attrs["cabinets"], ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fail("cabinets", err)
		}
		spec.Cabinets = append(spec.Cabinets, n)
	}
	if spec.NodeLinkBandwidth, err = core.ParseRate(attrs["bw"]); err != nil {
		return fail("bw", err)
	}
	if spec.NodeLinkLatency, err = core.ParseDuration(attrs["lat"]); err != nil {
		return fail("lat", err)
	}
	if spec.CabinetBackplaneBandwidth, err = core.ParseRate(attrs["bp_bw"]); err != nil {
		return fail("bp_bw", err)
	}
	if spec.CabinetBackplaneLatency, err = core.ParseDuration(attrs["bp_lat"]); err != nil {
		return fail("bp_lat", err)
	}
	if spec.UplinkBandwidth, err = core.ParseRate(attrs["uplink_bw"]); err != nil {
		return fail("uplink_bw", err)
	}
	if spec.UplinkLatency, err = core.ParseDuration(attrs["uplink_lat"]); err != nil {
		return fail("uplink_lat", err)
	}
	if spec.BackboneBandwidth, err = core.ParseRate(attrs["bb_bw"]); err != nil {
		return fail("bb_bw", err)
	}
	if spec.BackboneLatency, err = core.ParseDuration(attrs["bb_lat"]); err != nil {
		return fail("bb_lat", err)
	}
	switch strings.ToUpper(strings.TrimSpace(attrs["bb_sharing"])) {
	case "", "SHARED":
		spec.BackboneFatPipe = false
	case "FATPIPE":
		spec.BackboneFatPipe = true
	default:
		return fail("bb_sharing", fmt.Errorf("unknown policy %q", attrs["bb_sharing"]))
	}
	if v := attrs["cab_speed"]; v != "" {
		if spec.CabinetSpeed, err = ParseFloatList(v, ","); err != nil {
			return fail("cab_speed", err)
		}
	}
	if v := attrs["cab_width"]; v != "" {
		if spec.CabinetUplinkWidth, err = ParseFloatList(v, ","); err != nil {
			return fail("cab_width", err)
		}
	}
	return spec, nil
}
