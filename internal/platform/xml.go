package platform

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"smpigo/internal/core"
)

// The XML schema follows the spirit of SimGrid's platform DTD, compressed
// to the <cluster> element that SMPI platform files actually use:
//
//	<platform version="1">
//	  <cluster id="griffon" speed="1Gf" cabinets="33,27,32"
//	           bw="1Gbps" lat="20us"
//	           uplink_bw="10Gbps" uplink_lat="4us"
//	           bb_bw="10Gbps" bb_lat="2us" bb_sharing="FATPIPE"/>
//	</platform>

type xmlPlatform struct {
	XMLName  xml.Name     `xml:"platform"`
	Version  string       `xml:"version,attr"`
	Clusters []xmlCluster `xml:"cluster"`
}

type xmlCluster struct {
	ID        string `xml:"id,attr"`
	Speed     string `xml:"speed,attr"`
	Cabinets  string `xml:"cabinets,attr"`
	BW        string `xml:"bw,attr"`
	Lat       string `xml:"lat,attr"`
	BpBW      string `xml:"bp_bw,attr"`
	BpLat     string `xml:"bp_lat,attr"`
	UplinkBW  string `xml:"uplink_bw,attr"`
	UplinkLat string `xml:"uplink_lat,attr"`
	BBBW      string `xml:"bb_bw,attr"`
	BBLat     string `xml:"bb_lat,attr"`
	BBSharing string `xml:"bb_sharing,attr"`
}

// WriteXML serializes one or more cluster specs as a platform file.
func WriteXML(w io.Writer, specs ...ClusterSpec) error {
	doc := xmlPlatform{Version: "1"}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return err
		}
		cabinets := make([]string, len(s.Cabinets))
		for i, c := range s.Cabinets {
			cabinets[i] = strconv.Itoa(c)
		}
		sharing := "SHARED"
		if s.BackboneFatPipe {
			sharing = "FATPIPE"
		}
		doc.Clusters = append(doc.Clusters, xmlCluster{
			ID:        s.Name,
			Speed:     fmt.Sprintf("%gf", s.NodeSpeed),
			Cabinets:  strings.Join(cabinets, ","),
			BW:        fmt.Sprintf("%gBps", s.NodeLinkBandwidth),
			Lat:       fmt.Sprintf("%gs", float64(s.NodeLinkLatency)),
			BpBW:      fmt.Sprintf("%gBps", s.CabinetBackplaneBandwidth),
			BpLat:     fmt.Sprintf("%gs", float64(s.CabinetBackplaneLatency)),
			UplinkBW:  fmt.Sprintf("%gBps", s.UplinkBandwidth),
			UplinkLat: fmt.Sprintf("%gs", float64(s.UplinkLatency)),
			BBBW:      fmt.Sprintf("%gBps", s.BackboneBandwidth),
			BBLat:     fmt.Sprintf("%gs", float64(s.BackboneLatency)),
			BBSharing: sharing,
		})
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// ReadXML parses a platform file and returns the cluster specs it declares.
func ReadXML(r io.Reader) ([]ClusterSpec, error) {
	var doc xmlPlatform
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("platform xml: %w", err)
	}
	var specs []ClusterSpec
	for _, c := range doc.Clusters {
		spec, err := c.toSpec()
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("platform xml: no <cluster> element")
	}
	return specs, nil
}

func (c xmlCluster) toSpec() (ClusterSpec, error) {
	var spec ClusterSpec
	var err error
	fail := func(field string, e error) (ClusterSpec, error) {
		return ClusterSpec{}, fmt.Errorf("cluster %q: attribute %s: %w", c.ID, field, e)
	}
	spec.Name = c.ID
	if spec.NodeSpeed, err = core.ParseFlops(c.Speed); err != nil {
		return fail("speed", err)
	}
	for _, part := range strings.Split(c.Cabinets, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fail("cabinets", err)
		}
		spec.Cabinets = append(spec.Cabinets, n)
	}
	if spec.NodeLinkBandwidth, err = core.ParseRate(c.BW); err != nil {
		return fail("bw", err)
	}
	if spec.NodeLinkLatency, err = core.ParseDuration(c.Lat); err != nil {
		return fail("lat", err)
	}
	if spec.CabinetBackplaneBandwidth, err = core.ParseRate(c.BpBW); err != nil {
		return fail("bp_bw", err)
	}
	if spec.CabinetBackplaneLatency, err = core.ParseDuration(c.BpLat); err != nil {
		return fail("bp_lat", err)
	}
	if spec.UplinkBandwidth, err = core.ParseRate(c.UplinkBW); err != nil {
		return fail("uplink_bw", err)
	}
	if spec.UplinkLatency, err = core.ParseDuration(c.UplinkLat); err != nil {
		return fail("uplink_lat", err)
	}
	if spec.BackboneBandwidth, err = core.ParseRate(c.BBBW); err != nil {
		return fail("bb_bw", err)
	}
	if spec.BackboneLatency, err = core.ParseDuration(c.BBLat); err != nil {
		return fail("bb_lat", err)
	}
	switch strings.ToUpper(strings.TrimSpace(c.BBSharing)) {
	case "", "SHARED":
		spec.BackboneFatPipe = false
	case "FATPIPE":
		spec.BackboneFatPipe = true
	default:
		return fail("bb_sharing", fmt.Errorf("unknown policy %q", c.BBSharing))
	}
	if err := spec.Validate(); err != nil {
		return ClusterSpec{}, err
	}
	return spec, nil
}
