package platform

import "testing"

// BenchmarkRoute measures Platform.Route on the per-message hot path: every
// simulated point-to-point transfer resolves a route, so the cost of the
// hierarchical router (and of the route cache in front of it) multiplies
// into every experiment. The cross-cabinet case is the expensive one: the
// uncached router allocated a 7-link slice and re-summed latency per call.
func BenchmarkRoute(b *testing.B) {
	p, err := Griffon().Build()
	if err != nil {
		b.Fatal(err)
	}
	intra := [2]*Host{p.HostByID(0), p.HostByID(1)}
	cross := [2]*Host{p.HostByID(0), p.HostByID(40)}

	b.Run("intra-cabinet", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := p.Route(intra[0], intra[1])
			if len(r.Links) != 3 {
				b.Fatal("bad route")
			}
		}
	})
	b.Run("cross-cabinet", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := p.Route(cross[0], cross[1])
			if len(r.Links) != 7 {
				b.Fatal("bad route")
			}
		}
	})
	// All-pairs sweep: the access pattern of a collective over the whole
	// machine (every pair touched once per iteration).
	b.Run("all-pairs", func(b *testing.B) {
		b.ReportAllocs()
		hosts := p.Hosts()[:32]
		for i := 0; i < b.N; i++ {
			for _, a := range hosts {
				for _, c := range hosts {
					if a != c {
						p.Route(a, c)
					}
				}
			}
		}
	})
}
