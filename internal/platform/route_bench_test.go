package platform

import "testing"

// BenchmarkRoute measures route resolution on the per-message hot path:
// every simulated point-to-point transfer resolves a route, so the cost of
// the implicit hierarchical router multiplies into every experiment. There
// is no per-pair cache anymore — the router recomputes the route from the
// cabinet prefix sums on every call — so the interesting quantities are
// the closed-form compute cost (RouteInto with a reused buffer: zero
// allocations) and the convenience-path cost (Route: one exact-size slice
// per call).
func BenchmarkRoute(b *testing.B) {
	p, err := Griffon().Build()
	if err != nil {
		b.Fatal(err)
	}
	intra := [2]*Host{p.HostByID(0), p.HostByID(1)}
	cross := [2]*Host{p.HostByID(0), p.HostByID(40)}

	b.Run("intra-cabinet", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]*Link, 0, 8)
		for i := 0; i < b.N; i++ {
			r := p.RouteInto(buf[:0], intra[0], intra[1])
			if len(r.Links) != 3 {
				b.Fatal("bad route")
			}
		}
	})
	b.Run("cross-cabinet", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]*Link, 0, 8)
		for i := 0; i < b.N; i++ {
			r := p.RouteInto(buf[:0], cross[0], cross[1])
			if len(r.Links) != 7 {
				b.Fatal("bad route")
			}
		}
	})
	// The allocating convenience path retained by flows and messages.
	b.Run("cross-cabinet-alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := p.Route(cross[0], cross[1])
			if len(r.Links) != 7 {
				b.Fatal("bad route")
			}
		}
	})
	// All-pairs sweep: the access pattern of a collective over the whole
	// machine (every pair touched once per iteration).
	b.Run("all-pairs", func(b *testing.B) {
		b.ReportAllocs()
		hosts := p.Hosts()[:32]
		buf := make([]*Link, 0, 8)
		for i := 0; i < b.N; i++ {
			for _, a := range hosts {
				for _, c := range hosts {
					if a != c {
						p.RouteInto(buf[:0], a, c)
					}
				}
			}
		}
	})
}
