package replay

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"smpigo/internal/core"
	"smpigo/internal/platform"
	"smpigo/internal/smpi"
	"smpigo/internal/trace"
)

func griffon(t *testing.T) *platform.Platform {
	t.Helper()
	p, err := platform.Griffon().Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// record runs app with tracing on and returns the trace plus the on-line
// simulated time.
func record(t *testing.T, plat *platform.Platform, procs int, app func(*smpi.Rank)) (*trace.Trace, core.Time) {
	t.Helper()
	tr := trace.New(procs)
	rep, err := smpi.Run(smpi.Config{Procs: procs, Platform: plat, Tracer: tr}, app)
	if err != nil {
		t.Fatal(err)
	}
	return tr, rep.SimulatedTime
}

func scatterApp(chunk int64) func(*smpi.Rank) {
	return func(r *smpi.Rank) {
		c := r.Comm()
		var sendbuf []byte
		if r.Rank() == 0 {
			sendbuf = make([]byte, int64(r.Size())*chunk)
		}
		recvbuf := make([]byte, chunk)
		c.Scatter(r, sendbuf, recvbuf, 0)
	}
}

func TestReplayMatchesOnlineSamePlatform(t *testing.T) {
	// Replaying a trace on the platform it was recorded on must reproduce
	// the on-line prediction almost exactly: same messages, same model.
	plat := griffon(t)
	tr, online := record(t, plat, 8, scatterApp(256*core.KiB))
	rep, err := Run(tr, smpi.Config{Platform: plat})
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(float64(rep.SimulatedTime-online)) / float64(online)
	if rel > 0.02 {
		t.Errorf("replay %v vs online %v (%.1f%% off)", rep.SimulatedTime, online, rel*100)
	}
}

func TestReplayOnDifferentPlatform(t *testing.T) {
	// The off-line workflow: record on griffon, predict for gdx. The
	// replayed prediction should land near (not necessarily equal to) the
	// on-line prediction for gdx, since scatter is platform-independent in
	// behaviour.
	plat := griffon(t)
	tr, _ := record(t, plat, 8, scatterApp(256*core.KiB))
	gdx, err := platform.Gdx().Build()
	if err != nil {
		t.Fatal(err)
	}
	offline, err := Run(tr, smpi.Config{Platform: gdx})
	if err != nil {
		t.Fatal(err)
	}
	_, online := record(t, gdx, 8, scatterApp(256*core.KiB))
	rel := math.Abs(float64(offline.SimulatedTime-online)) / float64(online)
	if rel > 0.05 {
		t.Errorf("cross-platform replay %v vs online %v (%.1f%% off)",
			offline.SimulatedTime, online, rel*100)
	}
}

func TestTraceCapturesCollectiveDecomposition(t *testing.T) {
	plat := griffon(t)
	tr, _ := record(t, plat, 4, func(r *smpi.Rank) {
		c := r.Comm()
		buf := make([]byte, 1024)
		c.Bcast(r, buf, 0)
	})
	// A 4-rank binomial bcast moves 3 messages; each appears as an Isend
	// on the sender and an Irecv on the receiver.
	sends, recvs := 0, 0
	for _, stream := range tr.Streams {
		for _, ev := range stream {
			switch ev.Kind {
			case trace.Isend:
				sends++
			case trace.Irecv:
				recvs++
			}
		}
	}
	if sends != 3 || recvs != 3 {
		t.Errorf("bcast trace has %d sends / %d recvs, want 3/3", sends, recvs)
	}
}

func TestTraceWildcardResolved(t *testing.T) {
	plat := griffon(t)
	tr, _ := record(t, plat, 3, func(r *smpi.Rank) {
		c := r.Comm()
		if r.Rank() == 0 {
			buf := make([]byte, 1)
			r.Recv(c, buf, smpi.AnySource, smpi.AnyTag)
			r.Recv(c, buf, smpi.AnySource, smpi.AnyTag)
		} else {
			r.Send(c, []byte{byte(r.Rank())}, 0, 9)
		}
	})
	for _, ev := range tr.Streams[0] {
		if ev.Kind == trace.Irecv && ev.Peer < 0 {
			t.Error("wildcard receive left unresolved in trace")
		}
	}
	// And the resolved trace replays without deadlock.
	if _, err := Run(tr, smpi.Config{Platform: plat}); err != nil {
		t.Errorf("replay of wildcard trace failed: %v", err)
	}
}

func TestTraceSerializationRoundTrip(t *testing.T) {
	plat := griffon(t)
	tr, _ := record(t, plat, 4, func(r *smpi.Rank) {
		r.Elapse(0.5)
		c := r.Comm()
		buf := make([]byte, 2048)
		c.Bcast(r, buf, 0)
	})
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Procs != tr.Procs || back.Events() != tr.Events() {
		t.Fatalf("roundtrip lost events: %d/%d vs %d/%d",
			back.Procs, back.Events(), tr.Procs, tr.Events())
	}
	a, err := Run(tr, smpi.Config{Platform: plat})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(back, smpi.Config{Platform: plat})
	if err != nil {
		t.Fatal(err)
	}
	if a.SimulatedTime != b.SimulatedTime {
		t.Errorf("serialized trace replays differently: %v vs %v", a.SimulatedTime, b.SimulatedTime)
	}
}

func TestTraceReadErrors(t *testing.T) {
	cases := []string{
		"",
		"nonsense",
		"procs 0",
		"procs 2\n5 S 0 0 10", // rank out of range
		"procs 2\n0 X 1",      // unknown kind
		"procs 2\n0 S 1 0",    // too few fields
		"procs 2\n0 C abc",    // bad float
	}
	for _, c := range cases {
		if _, err := trace.Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read(%q) should fail", c)
		}
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := Run(nil, smpi.Config{}); err == nil {
		t.Error("nil trace should fail")
	}
	bad := trace.New(2)
	bad.Streams[0] = []trace.Event{{Kind: trace.Wait, Req: 0}}
	if _, err := Run(bad, smpi.Config{Platform: griffon(t)}); err == nil {
		t.Error("wait on unissued request should fail validation")
	}
	bad2 := trace.New(2)
	bad2.Streams[0] = []trace.Event{{Kind: trace.Isend, Peer: 7, Bytes: 1}}
	if _, err := Run(bad2, smpi.Config{Platform: griffon(t)}); err == nil {
		t.Error("peer out of range should fail validation")
	}
}

func TestComputeBurstsRecorded(t *testing.T) {
	plat := griffon(t)
	tr, online := record(t, plat, 2, func(r *smpi.Rank) {
		r.Compute(1e9) // 1s on a 1 Gf/s node
	})
	if online < 1 {
		t.Fatalf("online run took %v, want >= 1s", online)
	}
	rep, err := Run(tr, smpi.Config{Platform: plat})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(rep.SimulatedTime-online)) > 1e-9 {
		t.Errorf("compute replay %v vs online %v", rep.SimulatedTime, online)
	}
}
