// Package replay is the off-line simulator: it re-enacts a recorded trace
// (package trace) on a simulated platform, the "trace-based / post-mortem"
// approach of the simulators reviewed in the paper's Section 2. Each rank
// interprets its recorded program — compute bursts become delays, sends and
// receives become real point-to-point operations — through the same smpi
// machinery, so replayed communications experience the full network model,
// contention included.
//
// This is the baseline the paper argues against: a replay is faithful only
// as long as the application's behaviour does not depend on the platform
// (no data-dependent communication, fixed schedules), whereas the on-line
// simulator re-executes the real code.
package replay

import (
	"fmt"

	"smpigo/internal/smpi"
	"smpigo/internal/trace"
)

// Run replays t on the platform/backend described by cfg and returns the
// simulation report. cfg.Procs and cfg.Tracer are overridden.
func Run(t *trace.Trace, cfg smpi.Config) (*smpi.Report, error) {
	if t == nil || t.Procs <= 0 {
		return nil, fmt.Errorf("replay: empty trace")
	}
	if err := validate(t); err != nil {
		return nil, err
	}
	cfg.Procs = t.Procs
	cfg.Tracer = nil
	app := func(r *smpi.Rank) {
		c := r.Comm()
		var reqs []*smpi.Request
		for _, ev := range t.Streams[r.Rank()] {
			switch ev.Kind {
			case trace.Compute:
				r.Elapse(ev.Duration)
			case trace.Isend:
				reqs = append(reqs, r.Isend(c, make([]byte, ev.Bytes), ev.Peer, ev.Tag))
			case trace.Irecv:
				reqs = append(reqs, r.Irecv(c, make([]byte, ev.Bytes), ev.Peer, ev.Tag))
			case trace.Wait:
				r.Wait(reqs[ev.Req])
			}
		}
	}
	return smpi.Run(cfg, app)
}

// validate checks the structural soundness of a trace before replaying:
// wait indices must reference issued requests and peers must be in range.
func validate(t *trace.Trace) error {
	for rank, stream := range t.Streams {
		issued := 0
		for i, ev := range stream {
			switch ev.Kind {
			case trace.Isend, trace.Irecv:
				if ev.Peer < 0 || ev.Peer >= t.Procs {
					return fmt.Errorf("replay: rank %d event %d: peer %d out of range (unresolved wildcard?)", rank, i, ev.Peer)
				}
				if ev.Bytes < 0 {
					return fmt.Errorf("replay: rank %d event %d: negative size", rank, i)
				}
				issued++
			case trace.Wait:
				if ev.Req < 0 || ev.Req >= issued {
					return fmt.Errorf("replay: rank %d event %d: wait on unissued request %d", rank, i, ev.Req)
				}
			case trace.Compute:
				if ev.Duration < 0 {
					return fmt.Errorf("replay: rank %d event %d: negative burst", rank, i)
				}
			default:
				return fmt.Errorf("replay: rank %d event %d: unknown kind %q", rank, i, ev.Kind)
			}
		}
	}
	return nil
}
