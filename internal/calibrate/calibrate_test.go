package calibrate

import (
	"math"
	"testing"

	"smpigo/internal/metrics"
	"smpigo/internal/surf"
)

// synthSamples generates measurements from a known 3-segment ground truth
// with boundaries at 1 KiB and 64 KiB.
func synthSamples() ([]Sample, RouteInfo, surf.NetModel) {
	route := RouteInfo{Latency: 40e-6, Bandwidth: 125e6}
	truth := surf.NetModel{Name: "truth", Segments: []surf.Segment{
		{MaxBytes: 1024, LatFactor: 1.5, BwFactor: 0.75},
		{MaxBytes: 65536, LatFactor: 2.2, BwFactor: 0.45},
		{MaxBytes: math.MaxInt64, LatFactor: 5.0, BwFactor: 0.92},
	}}
	var samples []Sample
	for s := int64(1); s <= 4<<20; s *= 2 {
		samples = append(samples, Sample{Size: s, Time: Predict(truth, route, s)})
		if mid := s + s/2; s >= 8 && mid < 4<<20 {
			samples = append(samples, Sample{Size: mid, Time: Predict(truth, route, mid)})
		}
	}
	return samples, route, truth
}

func TestValidation(t *testing.T) {
	route := RouteInfo{Latency: 1e-5, Bandwidth: 125e6}
	if _, err := DefaultAffine(nil, route); err == nil {
		t.Error("no samples should fail")
	}
	bad := make([]Sample, 10)
	if _, err := DefaultAffine(bad, route); err == nil {
		t.Error("zero-time samples should fail")
	}
	good, _, _ := synthSamples()
	if _, err := DefaultAffine(good, RouteInfo{}); err == nil {
		t.Error("invalid route should fail")
	}
}

func TestDefaultAffine(t *testing.T) {
	samples, route, truth := synthSamples()
	m, err := DefaultAffine(samples, route)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) != 1 {
		t.Fatalf("default affine has %d segments", len(m.Segments))
	}
	// Latency factor from the 1-byte sample: close to truth's small-message
	// latency factor (plus the byte's transfer time, which is negligible).
	wantLat := Predict(truth, route, 1) / route.Latency
	if got := m.Segments[0].LatFactor; math.Abs(got-wantLat) > 0.01*wantLat {
		t.Errorf("latFactor = %v, want ~%v", got, wantLat)
	}
	if m.Segments[0].BwFactor != 0.92 {
		t.Errorf("bwFactor = %v, want 0.92", m.Segments[0].BwFactor)
	}
}

func TestBestFitAffineBeatsDefault(t *testing.T) {
	samples, route, _ := synthSamples()
	def, err := DefaultAffine(samples, route)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := BestFitAffine(samples, route)
	if err != nil {
		t.Fatal(err)
	}
	errOf := func(m surf.NetModel) float64 {
		var pred, ref []float64
		for _, s := range samples {
			pred = append(pred, Predict(m, route, s.Size))
			ref = append(ref, s.Time)
		}
		return metrics.Summarize(pred, ref).MeanLog
	}
	if errOf(fit) > errOf(def) {
		t.Errorf("best-fit affine (%v) should not lose to default affine (%v)",
			errOf(fit), errOf(def))
	}
}

func TestFitPiecewiseRecoversTruth(t *testing.T) {
	samples, route, truth := synthSamples()
	m, err := FitPiecewise(samples, route)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) != 3 {
		t.Fatalf("fitted %d segments, want 3", len(m.Segments))
	}
	// The fit should reproduce the generating model almost exactly since
	// the data is noiseless: max log error below 2%.
	var pred, ref []float64
	for _, s := range samples {
		pred = append(pred, Predict(m, route, s.Size))
		ref = append(ref, s.Time)
	}
	sum := metrics.Summarize(pred, ref)
	if sum.WorstPct() > 2 {
		t.Errorf("piecewise fit error %v too high", sum)
	}
	// Boundaries should land near the truth's 1KiB and 64KiB.
	b0, b1 := m.Segments[0].MaxBytes, m.Segments[1].MaxBytes
	if b0 < 256 || b0 > 4096 {
		t.Errorf("first boundary %d not near 1KiB", b0)
	}
	if b1 < 16384 || b1 > 262144 {
		t.Errorf("second boundary %d not near 64KiB", b1)
	}
	_ = truth
}

func TestPiecewiseBeatsAffinesOnPiecewiseData(t *testing.T) {
	// The paper's core Figure 3 claim, on synthetic ground truth.
	samples, route, _ := synthSamples()
	def, _ := DefaultAffine(samples, route)
	fit, _ := BestFitAffine(samples, route)
	pwl, err := FitPiecewise(samples, route)
	if err != nil {
		t.Fatal(err)
	}
	meanErr := func(m surf.NetModel) float64 {
		var pred, ref []float64
		for _, s := range samples {
			pred = append(pred, Predict(m, route, s.Size))
			ref = append(ref, s.Time)
		}
		return metrics.Summarize(pred, ref).MeanLog
	}
	ePwl, eFit, eDef := meanErr(pwl), meanErr(fit), meanErr(def)
	if !(ePwl < eFit && eFit < eDef) {
		t.Errorf("error ordering violated: pwl %v, best-fit %v, default %v", ePwl, eFit, eDef)
	}
}

func TestPredictMatchesSegment(t *testing.T) {
	_, route, truth := synthSamples()
	got := Predict(truth, route, 100)
	want := 1.5*route.Latency + 100/(0.75*route.Bandwidth)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("Predict = %v, want %v", got, want)
	}
}

func TestFitPiecewiseNeedsEnoughPoints(t *testing.T) {
	route := RouteInfo{Latency: 1e-5, Bandwidth: 125e6}
	samples := []Sample{
		{1, 1e-5}, {2, 1.1e-5}, {4, 1.2e-5}, {8, 1.3e-5}, {16, 1.4e-5}, {32, 1.5e-5},
	}
	// 6 points cannot form 3 segments of >=3 points: expect an error.
	if _, err := FitPiecewise(samples, route); err == nil {
		t.Error("expected failure with too few points for 3 segments")
	}
}

func TestGoldenMinFindsMinimum(t *testing.T) {
	got := goldenMin(func(x float64) float64 { return (math.Log(x) - math.Log(3)) * (math.Log(x) - math.Log(3)) }, 0.1, 100)
	if math.Abs(got-3) > 0.01 {
		t.Errorf("goldenMin = %v, want 3", got)
	}
}
