// Package calibrate instantiates point-to-point network models from
// ping-pong measurements, implementing the paper's Sections 4.1 and 6:
//
//   - the Default Affine model (1-byte latency + 92% of peak bandwidth),
//     the naive instantiation used by most simulators the paper reviews;
//   - the Best-Fit Affine model, the affine model minimizing the mean
//     logarithmic error against the measurements;
//   - the Piece-Wise Linear model: three linear segments whose boundaries
//     are chosen to maximize the product of the per-segment correlation
//     coefficients, each segment fitted by least-squares linear regression.
//
// Fitted parameters are expressed as factors over the calibration route's
// physical latency and bottleneck bandwidth, so a model calibrated on one
// cluster (griffon) transfers to another (gdx) — the property validated by
// the paper's Figures 4 and 5.
package calibrate

import (
	"fmt"
	"math"
	"sort"

	"smpigo/internal/metrics"
	"smpigo/internal/surf"
)

// Sample is one ping-pong measurement: one-way time for a message size.
type Sample struct {
	Size int64
	Time float64 // seconds
}

// RouteInfo carries the physical parameters of the calibration route.
type RouteInfo struct {
	// Latency is the sum of link latencies between the two nodes (L0).
	Latency float64
	// Bandwidth is the bottleneck link bandwidth in bytes/s (B0).
	Bandwidth float64
}

func validate(samples []Sample, route RouteInfo) error {
	if len(samples) < 6 {
		return fmt.Errorf("calibrate: need at least 6 samples, got %d", len(samples))
	}
	if route.Latency <= 0 || route.Bandwidth <= 0 {
		return fmt.Errorf("calibrate: invalid route info %+v", route)
	}
	for _, s := range samples {
		if s.Time <= 0 || s.Size < 0 {
			return fmt.Errorf("calibrate: invalid sample %+v", s)
		}
	}
	return nil
}

// DefaultAffine instantiates the naive affine model: latency from the
// smallest-size measurement, bandwidth at 92% of the nominal peak.
func DefaultAffine(samples []Sample, route RouteInfo) (surf.NetModel, error) {
	if err := validate(samples, route); err != nil {
		return surf.NetModel{}, err
	}
	smallest := samples[0]
	for _, s := range samples[1:] {
		if s.Size < smallest.Size {
			smallest = s
		}
	}
	latFactor := smallest.Time / route.Latency
	return surf.DefaultAffine(latFactor), nil
}

// BestFitAffine finds the affine model (latency factor, bandwidth factor)
// minimizing the mean logarithmic error against the samples, via coordinate
// descent with golden-section line searches in log-parameter space.
func BestFitAffine(samples []Sample, route RouteInfo) (surf.NetModel, error) {
	if err := validate(samples, route); err != nil {
		return surf.NetModel{}, err
	}
	cost := func(latF, bwF float64) float64 {
		sum := 0.0
		for _, s := range samples {
			pred := latF*route.Latency + float64(s.Size)/(bwF*route.Bandwidth)
			sum += metrics.LogError(pred, s.Time)
		}
		return sum / float64(len(samples))
	}
	latF, bwF := 1.0, 0.9
	for iter := 0; iter < 30; iter++ {
		latF = goldenMin(func(x float64) float64 { return cost(x, bwF) }, latF/16, latF*16)
		bwF = goldenMin(func(x float64) float64 { return cost(latF, x) }, bwF/16, bwF*16)
	}
	return surf.Affine("best-fit-affine", latF, bwF), nil
}

// goldenMin minimizes f over [lo, hi] (positive bounds) by golden-section
// search in log space.
func goldenMin(f func(float64) float64, lo, hi float64) float64 {
	const phi = 0.6180339887498949
	a, b := math.Log(lo), math.Log(hi)
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := f(math.Exp(c)), f(math.Exp(d))
	for i := 0; i < 60; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = f(math.Exp(c))
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = f(math.Exp(d))
		}
	}
	return math.Exp((a + b) / 2)
}

// segmentFit is the least-squares fit of one linear piece t = alpha + s/beta.
type segmentFit struct {
	alpha float64 // intercept, seconds
	beta  float64 // bandwidth, bytes/s
	r2    float64 // squared correlation coefficient
}

// fitSegment regresses time against size over samples[i:j] by weighted
// least squares with weights 1/t^2, i.e. minimizing *relative* residuals.
// Plain least squares would let the largest messages dominate the segment
// scoring and miss the protocol-switch kink that only moves times by a few
// hundred microseconds; relative weighting is the natural reading of the
// paper's "correlation coefficients" criterion on log-scaled data.
func fitSegment(samples []Sample, i, j int) (segmentFit, bool) {
	if j-i < 3 {
		return segmentFit{}, false
	}
	var sw, swx, swy, swxx, swxy, swyy float64
	for _, s := range samples[i:j] {
		x, y := float64(s.Size), s.Time
		w := 1 / (y * y)
		sw += w
		swx += w * x
		swy += w * y
		swxx += w * x * x
		swxy += w * x * y
		swyy += w * y * y
	}
	den := sw*swxx - swx*swx
	if den <= 0 {
		return segmentFit{}, false
	}
	slope := (sw*swxy - swx*swy) / den
	intercept := (swy - slope*swx) / sw
	if slope <= 0 || intercept < 0 {
		return segmentFit{}, false
	}
	varY := sw*swyy - swy*swy
	r2 := 1.0
	if varY > 0 {
		r := (sw*swxy - swx*swy) / math.Sqrt(den*varY)
		r2 = r * r
	}
	return segmentFit{alpha: intercept, beta: 1 / slope, r2: r2}, true
}

// FitPiecewise fits the paper's 3-segment piece-wise linear model: it
// searches all boundary pairs over the sample sizes, maximizing the product
// of per-segment correlation coefficients, and converts the per-segment
// (latency, bandwidth) pairs into factors over the calibration route.
func FitPiecewise(samples []Sample, route RouteInfo) (surf.NetModel, error) {
	if err := validate(samples, route); err != nil {
		return surf.NetModel{}, err
	}
	sorted := append([]Sample(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Size < sorted[j].Size })

	n := len(sorted)
	best := -1.0
	var bestFits [3]segmentFit
	var bestCut [2]int
	for i := 3; i+3 <= n; i++ { // first boundary: segment 1 = [0,i)
		f1, ok := fitSegment(sorted, 0, i)
		if !ok {
			continue
		}
		for j := i + 3; j <= n-3; j++ { // segment 2 = [i,j), segment 3 = [j,n)
			f2, ok := fitSegment(sorted, i, j)
			if !ok {
				continue
			}
			f3, ok := fitSegment(sorted, j, n)
			if !ok {
				continue
			}
			score := f1.r2 * f2.r2 * f3.r2
			if score > best {
				best = score
				bestFits = [3]segmentFit{f1, f2, f3}
				bestCut = [2]int{i, j}
			}
		}
	}
	if best < 0 {
		return surf.NetModel{}, fmt.Errorf("calibrate: no valid 3-segment split found")
	}

	bounds := [3]int64{
		sorted[bestCut[0]].Size,
		sorted[bestCut[1]].Size,
		math.MaxInt64,
	}
	model := surf.NetModel{Name: "piecewise"}
	for k, f := range bestFits {
		model.Segments = append(model.Segments, surf.Segment{
			MaxBytes:  bounds[k],
			LatFactor: f.alpha / route.Latency,
			BwFactor:  f.beta / route.Bandwidth,
		})
	}
	if err := model.Validate(); err != nil {
		return surf.NetModel{}, fmt.Errorf("calibrate: fitted model invalid: %w", err)
	}
	return model, nil
}

// Predict evaluates a model's one-way transfer time over a route, the same
// formula the surf network applies (useful for error reporting without
// running a simulation).
func Predict(m surf.NetModel, route RouteInfo, size int64) float64 {
	seg := m.Segment(size)
	return seg.LatFactor*route.Latency + float64(size)/(seg.BwFactor*route.Bandwidth)
}
