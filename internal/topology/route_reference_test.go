package topology

import (
	"fmt"
	"testing"

	"smpigo/internal/core"
	"smpigo/internal/platform"
)

// The implicit routers recover link IDs by arithmetic over the build order.
// That arithmetic is exactly the kind of code that can be off by one on an
// asymmetric shape while every symmetric preset still passes, so this file
// rebuilds the original materialized routing logic — link lookups by NAME,
// the way the generators wired the topology — and asserts the implicit
// routes are link-for-link identical on every preset plus deliberately
// lopsided extra shapes.

// linkIndex maps every link name to its object so the reference routers can
// resolve paths the slow, self-evident way.
func linkIndex(p *platform.Platform) map[string]*platform.Link {
	idx := make(map[string]*platform.Link, len(p.Links()))
	for _, l := range p.Links() {
		idx[l.Name()] = l
	}
	return idx
}

// referenceRouter returns a by-name route function mirroring the routing
// policy each generator implemented before it went implicit.
func referenceRouter(t *testing.T, spec Spec, p *platform.Platform) func(a, b *platform.Host) []*platform.Link {
	t.Helper()
	idx := linkIndex(p)
	link := func(format string, args ...any) *platform.Link {
		name := fmt.Sprintf(format, args...)
		l, ok := idx[name]
		if !ok {
			t.Fatalf("reference router: no link named %q", name)
		}
		return l
	}
	switch s := spec.(type) {
	case FatTreeSpec:
		prodDown, prodUp := s.products()
		return func(a, b *platform.Host) []*platform.Link {
			src, dst := a.ID, b.ID
			top := 1
			for src/prodDown[top] != dst/prodDown[top] {
				top++
			}
			var links []*platform.Link
			ai, bi := src, 0
			for l := 1; l <= top; l++ {
				j := (dst / prodUp[l-1]) % s.Up[l-1]
				links = append(links, link("%s-l%d-c%d-p%d-up", s.Name, l, ai*prodUp[l-1]+bi, j))
				bi = bi*s.Up[l-1] + j
				ai /= s.Down[l-1]
			}
			for l := top; l >= 1; l-- {
				j := bi % s.Up[l-1]
				bi /= s.Up[l-1]
				child := (dst/prodDown[l-1])*prodUp[l-1] + bi
				links = append(links, link("%s-l%d-c%d-p%d-down", s.Name, l, child, j))
			}
			return links
		}
	case TorusSpec:
		coords := func(id int) []int {
			c := make([]int, len(s.Dims))
			for d, k := range s.Dims {
				c[d] = id % k
				id /= k
			}
			return c
		}
		toID := func(c []int) int {
			id := 0
			for d := len(s.Dims) - 1; d >= 0; d-- {
				id = id*s.Dims[d] + c[d]
			}
			return id
		}
		return func(a, b *platform.Host) []*platform.Link {
			cur, dst := coords(a.ID), coords(b.ID)
			var links []*platform.Link
			for d, k := range s.Dims {
				delta := ((dst[d]-cur[d])%k + k) % k
				if delta == 0 {
					continue
				}
				if 2*delta <= k {
					for step := 0; step < delta; step++ {
						links = append(links, link("%s-%d-d%d-plus", s.Name, toID(cur), d))
						cur[d] = (cur[d] + 1) % k
					}
				} else {
					for step := 0; step < k-delta; step++ {
						links = append(links, link("%s-%d-d%d-minus", s.Name, toID(cur), d))
						cur[d] = (cur[d] - 1 + k) % k
					}
				}
			}
			return links
		}
	case DragonflySpec:
		a, ph := s.RoutersPerGroup, s.HostsPerRouter
		return func(ha, hb *platform.Host) []*platform.Link {
			src, dst := ha.ID, hb.ID
			srcRouter, dstRouter := src/ph, dst/ph
			srcGroup, dstGroup := srcRouter/a, dstRouter/a
			sr, dr := srcRouter%a, dstRouter%a
			links := []*platform.Link{link("%s-%d-up", s.Name, src)}
			switch {
			case srcRouter == dstRouter:
			case srcGroup == dstGroup:
				links = append(links, link("%s-g%d-r%d-r%d", s.Name, srcGroup, sr, dr))
			default:
				gw := s.gateway(srcGroup, dstGroup)
				if sr != gw {
					links = append(links, link("%s-g%d-r%d-r%d", s.Name, srcGroup, sr, gw))
				}
				links = append(links, link("%s-g%d-g%d", s.Name, srcGroup, dstGroup))
				gw = s.gateway(dstGroup, srcGroup)
				if gw != dr {
					links = append(links, link("%s-g%d-r%d-r%d", s.Name, dstGroup, gw, dr))
				}
			}
			return append(links, link("%s-%d-down", s.Name, dst))
		}
	default:
		t.Fatalf("reference router: unsupported spec type %T", spec)
		return nil
	}
}

// TestImplicitRoutesMatchReference walks every host pair of every preset
// (and shapes with non-uniform, odd, and prime extents) and requires the
// implicit route to equal the by-name reference route link for link — the
// same *Link objects, in the same order, with matching total latency.
func TestImplicitRoutesMatchReference(t *testing.T) {
	shapes := []string{
		"fattree16", "fattree64", "torus16", "torus64", "dragonfly72",
		// Lopsided shapes that would expose off-by-ones the symmetric
		// presets mask: mixed up/down fan, odd and prime torus extents
		// (exercising both wrap directions and the tie-break), a dragonfly
		// where groups outnumber routers and one where routers dominate.
		"fattree:2x3x4:1x2x3",
		"torus:5x3x2",
		"torus:7x2",
		"dragonfly:7x3x2",
		"dragonfly:3x5x2",
	}
	for _, shape := range shapes {
		t.Run(shape, func(t *testing.T) {
			spec, err := ParseSpec(shape)
			if err != nil {
				t.Fatal(err)
			}
			p, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			ref := referenceRouter(t, spec, p)
			hosts := p.Hosts()
			buf := make([]*platform.Link, 0, 32)
			for _, a := range hosts {
				for _, b := range hosts {
					if a == b {
						continue
					}
					got := p.RouteInto(buf[:0], a, b)
					want := ref(a, b)
					if len(got.Links) != len(want) {
						t.Fatalf("%s -> %s: %d links, reference has %d",
							a.Name(), b.Name(), len(got.Links), len(want))
					}
					var wantLat core.Duration
					for i, l := range want {
						if got.Links[i] != l {
							t.Fatalf("%s -> %s link %d: got %q, reference %q",
								a.Name(), b.Name(), i, got.Links[i].Name(), l.Name())
						}
						wantLat += l.Latency
					}
					if got.Latency != wantLat {
						t.Fatalf("%s -> %s: latency %v, reference %v",
							a.Name(), b.Name(), got.Latency, wantLat)
					}
				}
			}
		})
	}
}
