package topology

import (
	"encoding/xml"
	"fmt"
	"strconv"

	"smpigo/internal/core"
	"smpigo/internal/lmm"
	"smpigo/internal/platform"
)

// DragonflySpec describes a dragonfly (Kim et al. 2008, the interconnect of
// Cray Cascade/Slingshot machines): Groups of RoutersPerGroup routers, each
// serving HostsPerRouter hosts. Routers within a group form a complete
// graph over local links; every pair of groups is joined by exactly one
// global cable, attached round-robin to the groups' routers.
type DragonflySpec struct {
	// Name prefixes host and link names.
	Name string
	// Groups is the number of router groups (>= 2).
	Groups int
	// RoutersPerGroup is the number of routers per group.
	RoutersPerGroup int
	// HostsPerRouter is the number of hosts attached to each router.
	HostsPerRouter int
	// HostSpeed is the per-host compute speed in flop/s.
	HostSpeed float64
	// HostLinkBandwidth/HostLinkLatency describe the host-router links.
	HostLinkBandwidth float64
	HostLinkLatency   core.Duration
	// LocalBandwidth/LocalLatency describe intra-group router-router links.
	LocalBandwidth float64
	LocalLatency   core.Duration
	// GlobalBandwidth/GlobalLatency describe the long inter-group cables.
	GlobalBandwidth float64
	GlobalLatency   core.Duration
	// GroupSpeeds optionally scales host speed per group, cyclically: hosts
	// in group g run at HostSpeed*GroupSpeeds[g%len(GroupSpeeds)]. Groups
	// are the deployment unit of dragonfly machines, so hardware generations
	// mix group by group.
	GroupSpeeds []float64
	// GroupWidths optionally scales link bandwidth per group, cyclically:
	// host and local links inside group g scale by width(g), and the global
	// cable between gi and gj by min(width(gi), width(gj)) — a cable is
	// only as fast as its slower endpoint.
	GroupWidths []float64
}

// Hosts returns the number of hosts.
func (s DragonflySpec) Hosts() int { return s.Groups * s.RoutersPerGroup * s.HostsPerRouter }

// Validate implements platform.Spec.
func (s DragonflySpec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("dragonfly spec: empty name")
	case s.Groups < 2:
		return fmt.Errorf("dragonfly spec %q: %d groups, want >= 2", s.Name, s.Groups)
	case s.RoutersPerGroup < 1:
		return fmt.Errorf("dragonfly spec %q: %d routers per group, want >= 1", s.Name, s.RoutersPerGroup)
	case s.HostsPerRouter < 1:
		return fmt.Errorf("dragonfly spec %q: %d hosts per router, want >= 1", s.Name, s.HostsPerRouter)
	case s.HostSpeed <= 0:
		return fmt.Errorf("dragonfly spec %q: non-positive host speed", s.Name)
	case s.HostLinkBandwidth <= 0 || s.LocalBandwidth <= 0 || s.GlobalBandwidth <= 0:
		return fmt.Errorf("dragonfly spec %q: non-positive bandwidth", s.Name)
	}
	if err := platform.CheckProfile(s.GroupSpeeds, -1); err != nil {
		return fmt.Errorf("dragonfly spec %q: group speeds: %w", s.Name, err)
	}
	if err := platform.CheckProfile(s.GroupWidths, -1); err != nil {
		return fmt.Errorf("dragonfly spec %q: group widths: %w", s.Name, err)
	}
	return nil
}

// groupWidth reads the cyclic link-width multiplier of group g (1 when the
// profile is empty).
func (s DragonflySpec) groupWidth(g int) float64 {
	return platform.ProfileAt(s.GroupWidths, g)
}

// gateway returns the router index in group g holding the global cable to
// group peer: the g-1 cables of a group are dealt round-robin over its
// routers.
func (s DragonflySpec) gateway(g, peer int) int {
	idx := peer
	if peer > g {
		idx--
	}
	return idx % s.RoutersPerGroup
}

// Build implements platform.Spec: host up/down links, directed local links
// between every intra-group router pair, one full-duplex global cable per
// group pair, and the minimal router (local hop to the gateway, one global
// hop, local hop to the destination router).
func (s DragonflySpec) Build() (*platform.Platform, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	p := platform.New(s.Name)
	g, a, ph := s.Groups, s.RoutersPerGroup, s.HostsPerRouter
	n := s.Hosts()
	p.Reserve(n, 2*n+g*a*(a-1)+g*(g-1))
	localBase, globalBase := 2*n, 2*n+g*a*(a-1)
	// Link names are derived on demand by inverting the three build-order
	// ranges: host up/down pairs, then directed locals in (group, r1, r2)
	// order, then global pairs in lexicographic order (forward, backward).
	p.SetLinkNamer(func(id int) string {
		switch {
		case id < localBase:
			dir := "-up"
			if id%2 == 1 {
				dir = "-down"
			}
			return fmt.Sprintf("%s-%d%s", s.Name, id/2, dir)
		case id < globalBase:
			off := id - localBase
			gi := off / (a * (a - 1))
			rem := off % (a * (a - 1))
			r1, r2 := rem/(a-1), rem%(a-1)
			if r2 >= r1 {
				r2++ // the r1 == r2 slot was skipped
			}
			return fmt.Sprintf("%s-g%d-r%d-r%d", s.Name, gi, r1, r2)
		default:
			off := id - globalBase
			pair, back := off/2, off%2
			lo := 0
			for pair >= g-1-lo {
				pair -= g - 1 - lo
				lo++
			}
			hi := lo + 1 + pair
			if back == 1 {
				lo, hi = hi, lo
			}
			return fmt.Sprintf("%s-g%d-g%d", s.Name, lo, hi)
		}
	})
	for i := 0; i < n; i++ {
		group := i / (a * ph)
		host := p.NewHost(s.HostSpeed * platform.ProfileAt(s.GroupSpeeds, group))
		// The router is the lowest-level group: its hosts reach each other
		// in two links; placement mappers lay ranks out by it.
		host.Cabinet = i / ph
		hostBW := s.HostLinkBandwidth * s.groupWidth(group)
		p.NewLink(hostBW, s.HostLinkLatency, lmm.Shared) // up
		p.NewLink(hostBW, s.HostLinkLatency, lmm.Shared) // down
	}
	// Directed local links r1 -> r2 inside each group, in (group, r1, r2)
	// order; a*(a-1) links per group.
	for gi := 0; gi < g; gi++ {
		localBW := s.LocalBandwidth * s.groupWidth(gi)
		for r1 := 0; r1 < a; r1++ {
			for r2 := 0; r2 < a; r2++ {
				if r1 == r2 {
					continue
				}
				p.NewLink(localBW, s.LocalLatency, lmm.Shared)
			}
		}
	}
	// Directed global links per unordered group pair (gi < gj), forward
	// then backward, pairs in (gi, gj) lexicographic order. A cable runs at
	// the width of its slower endpoint group.
	for gi := 0; gi < g; gi++ {
		for gj := gi + 1; gj < g; gj++ {
			globalBW := s.GlobalBandwidth * min(s.groupWidth(gi), s.groupWidth(gj))
			p.NewLink(globalBW, s.GlobalLatency, lmm.Shared)
			p.NewLink(globalBW, s.GlobalLatency, lmm.Shared)
		}
	}

	p.SetRouter(&dragonflyRouter{
		p:          p,
		groups:     g,
		routers:    a,
		hostsPer:   ph,
		localBase:  2 * n,
		globalBase: 2*n + g*a*(a-1),
	})
	p.Topo = topoInfo("dragonfly", s.Metrics())
	return p, nil
}

// dragonflyRouter routes minimal paths implicitly: every link ID is a
// closed-form function of the endpoint coordinates and the build-order
// bases, so the router state is five integers — O(1) in the host count.
type dragonflyRouter struct {
	p                     *platform.Platform
	groups, routers       int
	hostsPer              int
	localBase, globalBase int
}

// String implements fmt.Stringer for missing-route diagnostics.
func (r *dragonflyRouter) String() string { return "dragonfly minimal router" }

// localID returns the link ID of the directed local link r1 -> r2 in group
// gi: locals were created in (group, r1, r2) order with the r1 == r2 slot
// skipped.
func (r *dragonflyRouter) localID(gi, r1, r2 int) int {
	idx := r2
	if r2 > r1 {
		idx--
	}
	return r.localBase + gi*r.routers*(r.routers-1) + r1*(r.routers-1) + idx
}

// globalID returns the link ID of the directed global link gi -> gj:
// unordered pairs were created in lexicographic order, forward direction
// (lo -> hi) first.
func (r *dragonflyRouter) globalID(gi, gj int) int {
	lo, hi, back := gi, gj, 0
	if gi > gj {
		lo, hi, back = gj, gi, 1
	}
	pair := lo*(r.groups-1) - lo*(lo-1)/2 + hi - lo - 1
	return r.globalBase + 2*pair + back
}

// gateway returns the router index in group g holding the global cable to
// group peer (round-robin deal, mirroring DragonflySpec.gateway).
func (r *dragonflyRouter) gateway(g, peer int) int {
	idx := peer
	if peer > g {
		idx--
	}
	return idx % r.routers
}

// RouteInto implements platform.Router.
func (r *dragonflyRouter) RouteInto(buf []*platform.Link, ha, hb *platform.Host) platform.Route {
	start := len(buf)
	src, dst := ha.ID, hb.ID
	srcRouter, dstRouter := src/r.hostsPer, dst/r.hostsPer
	srcGroup, dstGroup := srcRouter/r.routers, dstRouter/r.routers
	sr, dr := srcRouter%r.routers, dstRouter%r.routers

	link := r.p.LinkByID
	buf = append(buf, link(2*src)) // host up
	switch {
	case srcRouter == dstRouter:
		// Same router: up and straight back down.
	case srcGroup == dstGroup:
		buf = append(buf, link(r.localID(srcGroup, sr, dr)))
	default:
		gw := r.gateway(srcGroup, dstGroup)
		if sr != gw {
			buf = append(buf, link(r.localID(srcGroup, sr, gw)))
		}
		buf = append(buf, link(r.globalID(srcGroup, dstGroup)))
		gw = r.gateway(dstGroup, srcGroup)
		if gw != dr {
			buf = append(buf, link(r.localID(dstGroup, gw, dr)))
		}
	}
	buf = append(buf, link(2*dst+1)) // host down
	route := platform.Route{Links: buf}
	for _, l := range buf[start:] {
		route.Latency += l.Latency
	}
	return route
}

// Metrics implements Spec. The bisection cut splits the groups into halves;
// only global cables cross it, each at the width of its slower endpoint.
func (s DragonflySpec) Metrics() Metrics {
	g, a := s.Groups, s.RoutersPerGroup
	n := s.Hosts()
	m := Metrics{
		Hosts: n,
		Links: 2*n + g*a*(a-1) + g*(g-1),
	}
	m.Diameter = 3 // up, global, down
	if a > 1 {
		m.Diameter = 5 // up, local, global, local, down
	}
	half := g / 2
	for gi := 0; gi < half; gi++ {
		for gj := half; gj < g; gj++ {
			m.BisectionBandwidth += s.GlobalBandwidth * min(s.groupWidth(gi), s.groupWidth(gj))
		}
	}
	return m
}

// XMLElement implements platform.Spec. Profile attributes appear only on
// heterogeneous specs, keeping homogeneous platform files byte-identical to
// the pre-profile dialect.
func (s DragonflySpec) XMLElement() (string, []xml.Attr) {
	attrs := []xml.Attr{
		platform.Attr("id", "%s", s.Name),
		platform.Attr("speed", "%gf", s.HostSpeed),
		platform.Attr("groups", "%d", s.Groups),
		platform.Attr("routers", "%d", s.RoutersPerGroup),
		platform.Attr("hosts", "%d", s.HostsPerRouter),
		platform.Attr("bw", "%gBps", s.HostLinkBandwidth),
		platform.Attr("lat", "%gs", float64(s.HostLinkLatency)),
		platform.Attr("local_bw", "%gBps", s.LocalBandwidth),
		platform.Attr("local_lat", "%gs", float64(s.LocalLatency)),
		platform.Attr("global_bw", "%gBps", s.GlobalBandwidth),
		platform.Attr("global_lat", "%gs", float64(s.GlobalLatency)),
	}
	if len(s.GroupSpeeds) > 0 {
		attrs = append(attrs, platform.Attr("group_speeds", "%s", platform.JoinFloats(s.GroupSpeeds, ",")))
	}
	if len(s.GroupWidths) > 0 {
		attrs = append(attrs, platform.Attr("group_widths", "%s", platform.JoinFloats(s.GroupWidths, ",")))
	}
	return "dragonfly", attrs
}

func decodeDragonflyXML(attrs map[string]string) (platform.Spec, error) {
	var spec DragonflySpec
	var err error
	fail := func(field string, e error) (platform.Spec, error) {
		return nil, fmt.Errorf("dragonfly %q: attribute %s: %w", attrs["id"], field, e)
	}
	spec.Name = attrs["id"]
	if spec.HostSpeed, err = core.ParseFlops(attrs["speed"]); err != nil {
		return fail("speed", err)
	}
	if spec.Groups, err = strconv.Atoi(attrs["groups"]); err != nil {
		return fail("groups", err)
	}
	if spec.RoutersPerGroup, err = strconv.Atoi(attrs["routers"]); err != nil {
		return fail("routers", err)
	}
	if spec.HostsPerRouter, err = strconv.Atoi(attrs["hosts"]); err != nil {
		return fail("hosts", err)
	}
	if spec.HostLinkBandwidth, err = core.ParseRate(attrs["bw"]); err != nil {
		return fail("bw", err)
	}
	if spec.HostLinkLatency, err = core.ParseDuration(attrs["lat"]); err != nil {
		return fail("lat", err)
	}
	if spec.LocalBandwidth, err = core.ParseRate(attrs["local_bw"]); err != nil {
		return fail("local_bw", err)
	}
	if spec.LocalLatency, err = core.ParseDuration(attrs["local_lat"]); err != nil {
		return fail("local_lat", err)
	}
	if spec.GlobalBandwidth, err = core.ParseRate(attrs["global_bw"]); err != nil {
		return fail("global_bw", err)
	}
	if spec.GlobalLatency, err = core.ParseDuration(attrs["global_lat"]); err != nil {
		return fail("global_lat", err)
	}
	if v := attrs["group_speeds"]; v != "" {
		if spec.GroupSpeeds, err = platform.ParseFloatList(v, ","); err != nil {
			return fail("group_speeds", err)
		}
	}
	if v := attrs["group_widths"]; v != "" {
		if spec.GroupWidths, err = platform.ParseFloatList(v, ","); err != nil {
			return fail("group_widths", err)
		}
	}
	return spec, nil
}

// Dragonfly72 is a balanced dragonfly with 9 groups of 4 routers and 2
// hosts per router (a = 2p, g = 2a + 1 in Kim et al.'s balancing rule gives
// the 72-host configuration): 72 hosts, diameter 5.
func Dragonfly72() DragonflySpec {
	return DragonflySpec{
		Name:              "dragonfly72",
		Groups:            9,
		RoutersPerGroup:   4,
		HostsPerRouter:    2,
		HostSpeed:         1e9,
		HostLinkBandwidth: 125e6,
		HostLinkLatency:   10 * core.Microsecond,
		LocalBandwidth:    125e6,
		LocalLatency:      5 * core.Microsecond,
		GlobalBandwidth:   250e6,
		GlobalLatency:     25 * core.Microsecond,
	}
}

func parseDragonfly(rest string) (Spec, error) {
	dims, err := parseIntList(rest, "x")
	if err != nil {
		return nil, fmt.Errorf("topology: dragonfly shape: %w", err)
	}
	if len(dims) != 3 {
		return nil, fmt.Errorf("topology: dragonfly spec %q: want dragonfly:<groups>x<routers>x<hosts>", rest)
	}
	spec := Dragonfly72()
	spec.Name = specName("dragonfly", rest)
	spec.Groups, spec.RoutersPerGroup, spec.HostsPerRouter = dims[0], dims[1], dims[2]
	return spec, spec.Validate()
}

func init() {
	platform.RegisterXMLSpec("dragonfly", decodeDragonflyXML)
	registerPreset("dragonfly72", func() Spec { return Dragonfly72() })
}
