package topology

import (
	"encoding/xml"
	"fmt"
	"strings"

	"smpigo/internal/core"
	"smpigo/internal/lmm"
	"smpigo/internal/platform"
)

// FatTreeSpec describes a generalized k-ary fat-tree, the XGFT(h; Down; Up)
// of Öhring et al.: h = len(Down) switch levels above the hosts, where a
// level-l node fans out to Down[l] children and every level-l child is
// wired to Up[l] redundant parents. The classic non-oversubscribed two-level
// tree with 4-port leaf switches is Down=[4,4], Up=[1,4].
type FatTreeSpec struct {
	// Name prefixes host and link names.
	Name string
	// Down[l] is the number of children per level-(l+1) node; the host
	// count is the product of all entries.
	Down []int
	// Up[l] is the number of redundant parents each level-l node connects
	// to; Up[0] is the number of uplinks per host.
	Up []int
	// HostSpeed is the per-host compute speed in flop/s.
	HostSpeed float64
	// LinkBandwidth/LinkLatency apply to every link of the tree. Each
	// child-parent cable is a full-duplex pair of directed links.
	LinkBandwidth float64
	LinkLatency   core.Duration
	// LevelWidths optionally scales link bandwidth per switch level: the
	// level-l cables carry LinkBandwidth*LevelWidths[l-1]. Empty means
	// homogeneous; otherwise the length must equal len(Down). Thin spines
	// (e.g. {1, 1, 0.5}) model oversubscription by cable width rather than
	// cable count.
	LevelWidths []float64
	// LeafSpeeds optionally scales host speed per leaf switch, cyclically:
	// hosts under leaf c run at HostSpeed*LeafSpeeds[c%len(LeafSpeeds)].
	LeafSpeeds []float64
}

// Hosts returns the number of hosts (the product of Down).
func (s FatTreeSpec) Hosts() int { return product(s.Down) }

// Validate implements platform.Spec.
func (s FatTreeSpec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("fattree spec: empty name")
	case len(s.Down) == 0:
		return fmt.Errorf("fattree spec %q: no levels", s.Name)
	case len(s.Up) != len(s.Down):
		return fmt.Errorf("fattree spec %q: %d down levels but %d up levels", s.Name, len(s.Down), len(s.Up))
	case s.HostSpeed <= 0:
		return fmt.Errorf("fattree spec %q: non-positive host speed", s.Name)
	case s.LinkBandwidth <= 0:
		return fmt.Errorf("fattree spec %q: non-positive link bandwidth", s.Name)
	}
	for l := range s.Down {
		if s.Down[l] < 2 {
			return fmt.Errorf("fattree spec %q: level %d has %d down ports, want >= 2", s.Name, l, s.Down[l])
		}
		if s.Up[l] < 1 {
			return fmt.Errorf("fattree spec %q: level %d has %d up ports, want >= 1", s.Name, l, s.Up[l])
		}
	}
	if err := platform.CheckProfile(s.LevelWidths, len(s.Down)); err != nil {
		return fmt.Errorf("fattree spec %q: level widths: %w", s.Name, err)
	}
	if err := platform.CheckProfile(s.LeafSpeeds, -1); err != nil {
		return fmt.Errorf("fattree spec %q: leaf speeds: %w", s.Name, err)
	}
	return nil
}

// prodDown[l] is the subtree size below level l (Down[0]*...*Down[l-1]);
// prodUp[l] is the number of redundant copies of a level-l node
// (Up[0]*...*Up[l-1]).
func (s FatTreeSpec) products() (prodDown, prodUp []int) {
	h := len(s.Down)
	prodDown = make([]int, h+1)
	prodUp = make([]int, h+1)
	prodDown[0], prodUp[0] = 1, 1
	for l := 0; l < h; l++ {
		prodDown[l+1] = prodDown[l] * s.Down[l]
		prodUp[l+1] = prodUp[l] * s.Up[l]
	}
	return prodDown, prodUp
}

// Build implements platform.Spec: it emits one host per leaf, a full-duplex
// link pair per child-parent cable, and installs the implicit D-mod-k
// router.
//
// Nodes at level l are labeled (a, b): a indexes the subtree position
// (a = hostID / prodDown[l] for the subtree holding hostID) and b the
// redundant copy (b < prodUp[l]). Child (a, b) at level l-1 is wired to the
// Up[l-1] parents (a/Down[l-1], b*Up[l-1]+j).
func (s FatTreeSpec) Build() (*platform.Platform, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	p := platform.New(s.Name)
	h := len(s.Down)
	prodDown, prodUp := s.products()
	n := prodDown[h]

	// levelBase[l] is the link ID of the first level-l link: links are
	// created level by level, child by child, parent port by parent port,
	// up link then down link, so the router can recover any link ID from
	// (level, child, port) without storing link tables.
	levelBase := make([]int, h+2)
	for l := 1; l <= h; l++ {
		children := (n / prodDown[l-1]) * prodUp[l-1]
		levelBase[l+1] = levelBase[l] + 2*children*s.Up[l-1]
	}
	p.Reserve(n, levelBase[h+1])
	// Link names are derived on demand by inverting the build order (level
	// by level, cable by cable, up then down) instead of being stored.
	p.SetLinkNamer(func(id int) string {
		l := 1
		for l < h && levelBase[l+1] <= id {
			l++
		}
		off := id - levelBase[l]
		cable := off / 2
		dir := "-up"
		if off%2 == 1 {
			dir = "-down"
		}
		return fmt.Sprintf("%s-l%d-c%d-p%d%s", s.Name, l, cable/s.Up[l-1], cable%s.Up[l-1], dir)
	})

	for i := 0; i < n; i++ {
		leaf := i / s.Down[0]
		host := p.NewHost(s.HostSpeed * platform.ProfileAt(s.LeafSpeeds, leaf))
		// The leaf switch is the lowest-level group: placement mappers use
		// it to pack ranks under (or spread them across) leaf switches.
		host.Cabinet = leaf
	}
	for l := 1; l <= h; l++ {
		bw := s.LinkBandwidth
		if len(s.LevelWidths) > 0 {
			bw *= s.LevelWidths[l-1]
		}
		children := (n / prodDown[l-1]) * prodUp[l-1]
		for c := 0; c < children; c++ {
			for j := 0; j < s.Up[l-1]; j++ {
				p.NewLink(bw, s.LinkLatency, lmm.Shared) // up
				p.NewLink(bw, s.LinkLatency, lmm.Shared) // down
			}
		}
	}

	p.SetRouter(&fatTreeRouter{
		p:         p,
		up:        append([]int(nil), s.Up...),
		down:      append([]int(nil), s.Down...),
		prodDown:  prodDown,
		prodUp:    prodUp,
		levelBase: levelBase,
	})
	p.Topo = topoInfo("fattree", s.Metrics())
	return p, nil
}

// fatTreeRouter routes D-mod-k up/down paths implicitly: every link ID is
// a closed-form function of the endpoint host IDs and the per-level
// products, so the router stores a few integer slices of length h — O(1)
// in the host count — and nothing per pair or per link.
type fatTreeRouter struct {
	p        *platform.Platform
	up, down []int
	// prodDown[l] is the subtree size below level l; prodUp[l] the number
	// of redundant copies of a level-l node (see FatTreeSpec.products).
	prodDown, prodUp []int
	// levelBase[l] is the link ID of the first level-l link.
	levelBase []int
}

// String implements fmt.Stringer for missing-route diagnostics.
func (r *fatTreeRouter) String() string { return "fattree D-mod-k router" }

// upLink returns the link ID of the up link from child c at level l-1 to
// its j-th redundant parent; the paired down link is +1.
func (r *fatTreeRouter) upLink(l, c, j int) int {
	return r.levelBase[l] + 2*(c*r.up[l-1]+j)
}

// RouteInto implements platform.Router.
func (r *fatTreeRouter) RouteInto(buf []*platform.Link, a, b *platform.Host) platform.Route {
	start := len(buf)
	src, dst := a.ID, b.ID
	// Nearest common ancestor level: the first level whose subtrees
	// contain both hosts.
	top := 1
	for src/r.prodDown[top] != dst/r.prodDown[top] {
		top++
	}
	// Ascend, choosing the redundant parent by the destination's digit
	// at each level (D-mod-k): traffic to one host always converges
	// through the same switch copies.
	ai, bi := src, 0
	for l := 1; l <= top; l++ {
		j := (dst / r.prodUp[l-1]) % r.up[l-1]
		buf = append(buf, r.p.LinkByID(r.upLink(l, ai*r.prodUp[l-1]+bi, j)))
		bi = bi*r.up[l-1] + j
		ai /= r.down[l-1]
	}
	// Descend: the downward path from the chosen ancestor copy to the
	// destination is unique.
	for l := top; l >= 1; l-- {
		j := bi % r.up[l-1]
		bi /= r.up[l-1]
		child := (dst/r.prodDown[l-1])*r.prodUp[l-1] + bi
		buf = append(buf, r.p.LinkByID(r.upLink(l, child, j)+1))
	}
	route := platform.Route{Links: buf}
	for _, l := range buf[start:] {
		route.Latency += l.Latency
	}
	return route
}

// Metrics implements Spec. The bisection cut splits the tree at the top
// level; its capacity is half the thinnest level's aggregate up-bandwidth
// (cable count times per-cable width), so an unoversubscribed homogeneous
// tree reports (hosts/2)*Up[0]*LinkBandwidth.
func (s FatTreeSpec) Metrics() Metrics {
	h := len(s.Down)
	prodDown, prodUp := s.products()
	n := prodDown[h]
	m := Metrics{Hosts: n, Diameter: 2 * h}
	minAgg := 0.0
	for l := 1; l <= h; l++ {
		cables := (n / prodDown[l-1]) * prodUp[l-1] * s.Up[l-1]
		m.Links += 2 * cables
		agg := float64(cables) * s.LinkBandwidth
		if len(s.LevelWidths) > 0 {
			agg *= s.LevelWidths[l-1]
		}
		if l == 1 || agg < minAgg {
			minAgg = agg
		}
	}
	m.BisectionBandwidth = minAgg / 2
	return m
}

// XMLElement implements platform.Spec. Profile attributes appear only on
// heterogeneous specs, keeping homogeneous platform files byte-identical to
// the pre-profile dialect.
func (s FatTreeSpec) XMLElement() (string, []xml.Attr) {
	attrs := []xml.Attr{
		platform.Attr("id", "%s", s.Name),
		platform.Attr("speed", "%gf", s.HostSpeed),
		platform.Attr("down", "%s", joinInts(s.Down, ",")),
		platform.Attr("up", "%s", joinInts(s.Up, ",")),
		platform.Attr("bw", "%gBps", s.LinkBandwidth),
		platform.Attr("lat", "%gs", float64(s.LinkLatency)),
	}
	if len(s.LevelWidths) > 0 {
		attrs = append(attrs, platform.Attr("level_widths", "%s", platform.JoinFloats(s.LevelWidths, ",")))
	}
	if len(s.LeafSpeeds) > 0 {
		attrs = append(attrs, platform.Attr("leaf_speeds", "%s", platform.JoinFloats(s.LeafSpeeds, ",")))
	}
	return "fattree", attrs
}

func decodeFatTreeXML(attrs map[string]string) (platform.Spec, error) {
	var spec FatTreeSpec
	var err error
	fail := func(field string, e error) (platform.Spec, error) {
		return nil, fmt.Errorf("fattree %q: attribute %s: %w", attrs["id"], field, e)
	}
	spec.Name = attrs["id"]
	if spec.HostSpeed, err = core.ParseFlops(attrs["speed"]); err != nil {
		return fail("speed", err)
	}
	if spec.Down, err = parseIntList(attrs["down"], ","); err != nil {
		return fail("down", err)
	}
	if spec.Up, err = parseIntList(attrs["up"], ","); err != nil {
		return fail("up", err)
	}
	if spec.LinkBandwidth, err = core.ParseRate(attrs["bw"]); err != nil {
		return fail("bw", err)
	}
	if spec.LinkLatency, err = core.ParseDuration(attrs["lat"]); err != nil {
		return fail("lat", err)
	}
	if v := attrs["level_widths"]; v != "" {
		if spec.LevelWidths, err = platform.ParseFloatList(v, ","); err != nil {
			return fail("level_widths", err)
		}
	}
	if v := attrs["leaf_speeds"]; v != "" {
		if spec.LeafSpeeds, err = platform.ParseFloatList(v, ","); err != nil {
			return fail("leaf_speeds", err)
		}
	}
	return spec, nil
}

// FatTree16 is the classic non-oversubscribed two-level fat-tree: 16 hosts
// under 4-down-port leaf switches, 4 spine switches, full bisection.
func FatTree16() FatTreeSpec {
	return FatTreeSpec{
		Name:          "fattree16",
		Down:          []int{4, 4},
		Up:            []int{1, 4},
		HostSpeed:     1e9,
		LinkBandwidth: 125e6,
		LinkLatency:   10 * core.Microsecond,
	}
}

// FatTree64 is a three-level 64-host fat-tree with 2:1 oversubscription at
// the two upper levels — a realistic mid-size cluster spine.
func FatTree64() FatTreeSpec {
	return FatTreeSpec{
		Name:          "fattree64",
		Down:          []int{4, 4, 4},
		Up:            []int{1, 2, 2},
		HostSpeed:     1e9,
		LinkBandwidth: 125e6,
		LinkLatency:   10 * core.Microsecond,
	}
}

// parseFatTree accepts per-level port lists separated by "x" or "," —
// "fattree:4x4:1x4" and "fattree:4,4:1,4" are the same tree. The x form
// exists so shapes survive comma-separated list flags (-topologies).
func parseFatTree(rest string) (Spec, error) {
	downs, ups, found := strings.Cut(rest, ":")
	if !found {
		return nil, fmt.Errorf("topology: fattree spec %q: want fattree:<down ports>:<up ports>, e.g. fattree:4x4:1x4", rest)
	}
	spec := FatTree16()
	spec.Name = specName("fattree", rest)
	var err error
	if spec.Down, err = parseIntList(strings.ReplaceAll(downs, "x", ","), ","); err != nil {
		return nil, fmt.Errorf("topology: fattree down ports: %w", err)
	}
	if spec.Up, err = parseIntList(strings.ReplaceAll(ups, "x", ","), ","); err != nil {
		return nil, fmt.Errorf("topology: fattree up ports: %w", err)
	}
	return spec, spec.Validate()
}

func init() {
	platform.RegisterXMLSpec("fattree", decodeFatTreeXML)
	registerPreset("fattree16", func() Spec { return FatTree16() })
	registerPreset("fattree64", func() Spec { return FatTree64() })
}
