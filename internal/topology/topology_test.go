package topology

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"smpigo/internal/core"
	"smpigo/internal/platform"
)

// routeNames renders a route as its link-name sequence, the canonical form
// the determinism tests compare.
func routeNames(p *platform.Platform, a, b *platform.Host) []string {
	r := p.Route(a, b)
	names := make([]string, len(r.Links))
	for i, l := range r.Links {
		names[i] = l.Name()
	}
	return names
}

// maxHops scans all host pairs and returns the longest route in links.
func maxHops(t *testing.T, p *platform.Platform) int {
	t.Helper()
	max := 0
	for _, a := range p.Hosts() {
		for _, b := range p.Hosts() {
			if a == b {
				continue
			}
			r := p.Route(a, b)
			if len(r.Links) == 0 || r.Latency <= 0 {
				t.Fatalf("degenerate route %s -> %s: %d links, latency %v",
					a.Name(), b.Name(), len(r.Links), r.Latency)
			}
			if len(r.Links) > max {
				max = len(r.Links)
			}
		}
	}
	return max
}

// checkDeterministic builds the spec twice and compares a sample of routes
// link by link: same spec, same routes, independent of build instance.
func checkDeterministic(t *testing.T, spec Spec) {
	t.Helper()
	p1, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	n := len(p1.Hosts())
	for _, pair := range [][2]int{{0, 1}, {0, n - 1}, {n / 2, n / 3}, {n - 1, 0}, {1, n / 2}} {
		a, b := pair[0], pair[1]
		if a == b {
			continue
		}
		r1 := routeNames(p1, p1.HostByID(a), p1.HostByID(b))
		r2 := routeNames(p2, p2.HostByID(a), p2.HostByID(b))
		if !reflect.DeepEqual(r1, r2) {
			t.Errorf("route %d->%d differs between builds: %v vs %v", a, b, r1, r2)
		}
	}
}

func TestFatTreeStructure(t *testing.T) {
	spec := FatTree16()
	p, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := spec.Metrics()
	if got := len(p.Hosts()); got != 16 || got != m.Hosts {
		t.Fatalf("hosts = %d, metrics %d, want 16", got, m.Hosts)
	}
	if got := len(p.Links()); got != m.Links {
		t.Errorf("links = %d, metrics say %d", got, m.Links)
	}
	// Full bisection: the unoversubscribed tree moves half the hosts'
	// injection bandwidth across the top cut.
	if want := float64(16) / 2 * spec.LinkBandwidth; m.BisectionBandwidth != want {
		t.Errorf("bisection = %g, want full %g", m.BisectionBandwidth, want)
	}
	// Same leaf switch: one hop up, one hop down.
	if got := Hops(p, p.HostByID(0), p.HostByID(3)); got != 2 {
		t.Errorf("same-leaf route has %d links, want 2", got)
	}
	// Different leaf switches: up to the spine and back down.
	if got := Hops(p, p.HostByID(0), p.HostByID(15)); got != 4 {
		t.Errorf("cross-pod route has %d links, want 4", got)
	}
	if got := maxHops(t, p); got != m.Diameter {
		t.Errorf("empirical diameter %d, metrics say %d", got, m.Diameter)
	}
}

func TestFatTreeOversubscription(t *testing.T) {
	full := FatTree16().Metrics()
	over := FatTree16()
	over.Up = []int{1, 2} // halve the spine
	if got := over.Metrics().BisectionBandwidth; got >= full.BisectionBandwidth {
		t.Errorf("oversubscribed bisection %g not below full %g", got, full.BisectionBandwidth)
	}
	three := FatTree64()
	m := three.Metrics()
	if m.Hosts != 64 || m.Diameter != 6 {
		t.Errorf("fattree64 metrics %+v, want 64 hosts, diameter 6", m)
	}
	p, err := three.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := maxHops(t, p); got != 6 {
		t.Errorf("fattree64 empirical diameter %d, want 6", got)
	}
}

// TestFatTreeDModK verifies the convergence property of D-mod-k routing:
// every source outside the destination's top-level subtree reaches the
// destination through the same spine switch, i.e. the same final descent.
func TestFatTreeDModK(t *testing.T) {
	spec := FatTree16()
	p, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	dst := p.HostByID(13)
	var descent []string
	for _, src := range p.Hosts() {
		if src.ID/4 == dst.ID/4 { // same leaf subtree: no spine crossing
			continue
		}
		r := p.Route(src, dst)
		tail := []string{r.Links[len(r.Links)-2].Name(), r.Links[len(r.Links)-1].Name()}
		if descent == nil {
			descent = tail
		} else if !reflect.DeepEqual(descent, tail) {
			t.Fatalf("descent to host 13 differs by source: %v vs %v", descent, tail)
		}
	}
}

func TestTorusStructure(t *testing.T) {
	spec := TorusSpec{Name: "t44", Dims: []int{4, 4}, HostSpeed: 1e9, LinkBandwidth: 125e6, LinkLatency: 5 * core.Microsecond}
	p, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := spec.Metrics()
	if len(p.Hosts()) != 16 || m.Hosts != 16 {
		t.Fatalf("hosts = %d, want 16", len(p.Hosts()))
	}
	if got := len(p.Links()); got != m.Links || got != 16*2*2 {
		t.Errorf("links = %d, want %d", got, m.Links)
	}
	// Dimension-order hop counts: wrap distance per dimension, dim 0 first.
	cases := []struct {
		a, b, hops int
	}{
		{0, 1, 1},   // +1 in dim 0
		{0, 3, 1},   // wrap -1 in dim 0
		{0, 4, 1},   // +1 in dim 1
		{0, 5, 2},   // diagonal
		{0, 10, 4},  // opposite corner: 2 + 2 (the diameter)
		{5, 15, 4},  // (1,1) -> (3,3): two tie-broken forward hops per dim
		{0, 2, 2},   // +2 in dim 0 (tie: forward)
		{12, 0, 1},  // (0,3) -> (0,0): wrap +1 in dim 1
		{15, 15, 0}, // self
	}
	for _, c := range cases {
		if got := Hops(p, p.HostByID(c.a), p.HostByID(c.b)); got != c.hops {
			t.Errorf("hops(%d,%d) = %d, want %d", c.a, c.b, got, c.hops)
		}
	}
	if got := maxHops(t, p); got != m.Diameter || got != 4 {
		t.Errorf("empirical diameter %d, metrics %d, want 4", got, m.Diameter)
	}
	// Bisection of a 4x4 torus: 2*16/4 = 8 crossing cables.
	if want := 8 * spec.LinkBandwidth; m.BisectionBandwidth != want {
		t.Errorf("bisection %g, want %g", m.BisectionBandwidth, want)
	}
	// Dimension order: the route 0 -> 5 fixes dim 0 before dim 1.
	names := routeNames(p, p.HostByID(0), p.HostByID(5))
	if !strings.Contains(names[0], "-d0-") || !strings.Contains(names[1], "-d1-") {
		t.Errorf("route 0->5 not dimension-ordered: %v", names)
	}
}

func TestTorus3D(t *testing.T) {
	spec := Torus64()
	p, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := spec.Metrics()
	if len(p.Hosts()) != 64 || m.Diameter != 6 {
		t.Fatalf("torus64: %d hosts, diameter %d", len(p.Hosts()), m.Diameter)
	}
	if got := maxHops(t, p); got != 6 {
		t.Errorf("empirical diameter %d, want 6", got)
	}
}

func TestDragonflyStructure(t *testing.T) {
	spec := Dragonfly72()
	p, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := spec.Metrics()
	if len(p.Hosts()) != 72 || m.Hosts != 72 {
		t.Fatalf("hosts = %d, want 72", len(p.Hosts()))
	}
	if got := len(p.Links()); got != m.Links {
		t.Errorf("links = %d, metrics say %d", got, m.Links)
	}
	// Minimal path lengths: 2 within a router, 3 within a group, <= 5 across.
	if got := Hops(p, p.HostByID(0), p.HostByID(1)); got != 2 {
		t.Errorf("same-router route has %d links, want 2", got)
	}
	if got := Hops(p, p.HostByID(0), p.HostByID(3)); got != 3 {
		t.Errorf("same-group route has %d links, want 3", got)
	}
	cross := Hops(p, p.HostByID(0), p.HostByID(71))
	if cross < 3 || cross > 5 {
		t.Errorf("cross-group route has %d links, want 3..5", cross)
	}
	if got := maxHops(t, p); got != m.Diameter || got != 5 {
		t.Errorf("empirical diameter %d, metrics %d, want 5", got, m.Diameter)
	}
	// Every cross-group route crosses exactly one global cable.
	for _, a := range p.Hosts()[:8] {
		for _, b := range p.Hosts()[64:] {
			globals := 0
			for _, l := range p.Route(a, b).Links {
				if strings.Contains(l.Name(), "-g") && strings.Count(l.Name(), "-g") == 2 {
					globals++
				}
			}
			if globals != 1 {
				t.Fatalf("route %s->%s crosses %d global links, want 1", a.Name(), b.Name(), globals)
			}
		}
	}
}

func TestDeterministicRoutes(t *testing.T) {
	for _, name := range PresetNames() {
		spec, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) { checkDeterministic(t, spec) })
	}
}

func TestPresetsAndParse(t *testing.T) {
	for _, name := range PresetNames() {
		spec, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
		if _, err := spec.Build(); err != nil {
			t.Errorf("preset %s build: %v", name, err)
		}
	}
	cases := []struct {
		in    string
		hosts int
	}{
		{"fattree16", 16},
		{"fattree:4,4:1,4", 16},
		{"fattree:4x4:1x4", 16}, // x form: survives comma-separated flag lists
		{"fattree:2,2,2:1,2,2", 8},
		{"torus:4x4x4", 64},
		{"torus:8x8", 64},
		{"dragonfly:9x4x2", 72},
		{"dragonfly:5x2x3", 30},
	}
	for _, c := range cases {
		spec, err := ParseSpec(c.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if got := spec.Metrics().Hosts; got != c.hosts {
			t.Errorf("ParseSpec(%q) has %d hosts, want %d", c.in, got, c.hosts)
		}
	}
	for _, bad := range []string{"", "wat", "fattree:4,4", "torus:1x4", "dragonfly:9x4", "ring:8"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) should fail", bad)
		}
	}
}

// TestXMLRoundTripTopologies writes every topology element alongside a
// cluster, reads the file back, and checks specs survive bit-exact and
// still build.
func TestXMLRoundTripTopologies(t *testing.T) {
	ft, to, df := FatTree64(), Torus64(), Dragonfly72()
	var buf bytes.Buffer
	if err := platform.WriteXML(&buf, platform.Griffon(), ft, to, df); err != nil {
		t.Fatal(err)
	}
	specs, err := platform.ReadXML(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadXML: %v\n%s", err, buf.String())
	}
	if len(specs) != 4 {
		t.Fatalf("got %d specs, want 4", len(specs))
	}
	if _, ok := specs[0].(platform.ClusterSpec); !ok {
		t.Errorf("spec 0 is %T, want ClusterSpec", specs[0])
	}
	if got, ok := specs[1].(FatTreeSpec); !ok || !reflect.DeepEqual(got, ft) {
		t.Errorf("fattree roundtrip: %+v, want %+v", specs[1], ft)
	}
	if got, ok := specs[2].(TorusSpec); !ok || !reflect.DeepEqual(got, to) {
		t.Errorf("torus roundtrip: %+v, want %+v", specs[2], to)
	}
	if got, ok := specs[3].(DragonflySpec); !ok || !reflect.DeepEqual(got, df) {
		t.Errorf("dragonfly roundtrip: %+v, want %+v", specs[3], df)
	}
	for i, s := range specs {
		if _, err := s.Build(); err != nil {
			t.Errorf("spec %d build after roundtrip: %v", i, err)
		}
	}
}

// TestHeterogeneousProfiles checks the per-group/per-level speed and width
// profiles on every builder: hosts and links come out scaled by the profile
// entry of their structural unit, metrics track the thinnest cut, and
// profile-bearing specs survive the XML dialect bit-exact.
func TestHeterogeneousProfiles(t *testing.T) {
	t.Run("fattree", func(t *testing.T) {
		s := FatTree64()
		s.LevelWidths = []float64{1, 1, 0.5} // thin spine
		s.LeafSpeeds = []float64{1, 0.5}     // alternating slow leaves
		p, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		// Host 0 sits under leaf 0 (full speed), host 4 under leaf 1 (half).
		if got := p.HostByID(0).Speed; got != s.HostSpeed {
			t.Errorf("leaf-0 host speed %v, want %v", got, s.HostSpeed)
		}
		if got := p.HostByID(4).Speed; got != s.HostSpeed/2 {
			t.Errorf("leaf-1 host speed %v, want %v", got, s.HostSpeed/2)
		}
		// Level-1 links keep full width, level-3 links are halved.
		seen := map[string]bool{}
		for _, l := range p.Links() {
			switch {
			case strings.HasPrefix(l.Name(), "fattree64-l1-"):
				seen["l1"] = true
				if l.Bandwidth != s.LinkBandwidth {
					t.Fatalf("level-1 link %s bandwidth %v, want %v", l.Name(), l.Bandwidth, s.LinkBandwidth)
				}
			case strings.HasPrefix(l.Name(), "fattree64-l3-"):
				seen["l3"] = true
				if l.Bandwidth != s.LinkBandwidth/2 {
					t.Fatalf("level-3 link %s bandwidth %v, want %v", l.Name(), l.Bandwidth, s.LinkBandwidth/2)
				}
			}
		}
		if !seen["l1"] || !seen["l3"] {
			t.Fatal("expected level-1 and level-3 links in the build")
		}
		// The thin spine is now the bisection bottleneck: 32 top cables at
		// half width, against 64 full-width level-1 cables.
		homogeneous := FatTree64().Metrics().BisectionBandwidth
		if got := s.Metrics().BisectionBandwidth; got != homogeneous/2 {
			t.Errorf("thin-spine bisection %v, want %v", got, homogeneous/2)
		}
	})

	t.Run("torus", func(t *testing.T) {
		s := Torus64()
		s.DimWidths = []float64{1, 1, 0.25} // weak inter-cabinet cables
		s.RowSpeeds = []float64{2}
		p, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		if got := p.HostByID(0).Speed; got != 2*s.HostSpeed {
			t.Errorf("host speed %v, want %v", got, 2*s.HostSpeed)
		}
		// Host 0's dimension-0 plus link is full width, dimension-2 quarter.
		if got := p.LinkByID(0).Bandwidth; got != s.LinkBandwidth {
			t.Errorf("d0 link bandwidth %v, want %v", got, s.LinkBandwidth)
		}
		if got := p.LinkByID(4).Bandwidth; got != s.LinkBandwidth/4 {
			t.Errorf("d2 link bandwidth %v, want %v", got, s.LinkBandwidth/4)
		}
		// All extents are equal, so the weak dimension is the cut.
		homogeneous := Torus64().Metrics().BisectionBandwidth
		if got := s.Metrics().BisectionBandwidth; got != homogeneous/4 {
			t.Errorf("bisection %v, want %v", got, homogeneous/4)
		}
	})

	t.Run("dragonfly", func(t *testing.T) {
		s := Dragonfly72()
		s.GroupSpeeds = []float64{1, 0.5}
		s.GroupWidths = []float64{1, 0.5}
		p, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		hostsPerGroup := s.RoutersPerGroup * s.HostsPerRouter
		if got := p.HostByID(0).Speed; got != s.HostSpeed {
			t.Errorf("group-0 host speed %v, want %v", got, s.HostSpeed)
		}
		if got := p.HostByID(hostsPerGroup).Speed; got != s.HostSpeed/2 {
			t.Errorf("group-1 host speed %v, want %v", got, s.HostSpeed/2)
		}
		// Group-1 host links are half width; the global cable between
		// groups 0 and 1 runs at its slower endpoint's width.
		if got := p.LinkByID(2 * hostsPerGroup).Bandwidth; got != s.HostLinkBandwidth/2 {
			t.Errorf("group-1 host link bandwidth %v, want %v", got, s.HostLinkBandwidth/2)
		}
		route := p.Route(p.HostByID(0), p.HostByID(hostsPerGroup))
		sawGlobal := false
		for _, l := range route.Links {
			if strings.Contains(l.Name(), "-g0-g1") {
				sawGlobal = true
				if l.Bandwidth != s.GlobalBandwidth/2 {
					t.Errorf("global cable %s bandwidth %v, want %v", l.Name(), l.Bandwidth, s.GlobalBandwidth/2)
				}
			}
		}
		if !sawGlobal {
			t.Fatal("route between groups 0 and 1 misses the g0-g1 cable")
		}
		if hom, got := Dragonfly72().Metrics().BisectionBandwidth, s.Metrics().BisectionBandwidth; got >= hom {
			t.Errorf("heterogeneous bisection %v not below homogeneous %v", got, hom)
		}
	})

	t.Run("xml-round-trip", func(t *testing.T) {
		ft, to, df, cl := FatTree64(), Torus64(), Dragonfly72(), platform.Griffon()
		ft.LevelWidths, ft.LeafSpeeds = []float64{1, 1, 0.5}, []float64{1, 0.5}
		to.DimWidths, to.RowSpeeds = []float64{1, 1, 0.25}, []float64{2}
		df.GroupSpeeds, df.GroupWidths = []float64{1, 0.5}, []float64{1, 0.5}
		cl.CabinetSpeed = []float64{1, 0.5, 0.75}
		cl.CabinetUplinkWidth = []float64{1, 1, 0.5}
		var buf bytes.Buffer
		if err := platform.WriteXML(&buf, cl, ft, to, df); err != nil {
			t.Fatal(err)
		}
		specs, err := platform.ReadXML(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadXML: %v\n%s", err, buf.String())
		}
		want := []platform.Spec{cl, ft, to, df}
		for i, w := range want {
			if !reflect.DeepEqual(specs[i], w) {
				t.Errorf("spec %d roundtrip: %+v, want %+v", i, specs[i], w)
			}
		}
	})

	t.Run("validation", func(t *testing.T) {
		bad := []Spec{
			func() Spec { s := FatTree64(); s.LevelWidths = []float64{1, 1}; return s }(),            // wrong length
			func() Spec { s := FatTree64(); s.LeafSpeeds = []float64{0}; return s }(),                // zero entry
			func() Spec { s := Torus64(); s.DimWidths = []float64{1}; return s }(),                   // wrong length
			func() Spec { s := Torus64(); s.RowSpeeds = []float64{-1}; return s }(),                  // negative entry
			func() Spec { s := Dragonfly72(); s.GroupWidths = []float64{1, math.NaN()}; return s }(), // NaN entry
		}
		for i, s := range bad {
			if err := s.Validate(); err == nil {
				t.Errorf("bad profile %d validated", i)
			}
		}
	})
}
