// Package topology generates interconnect topologies as platform.Platform
// instances: k-ary fat-trees (XGFT), 2D/3D tori, and dragonflies. The
// paper's evaluation (conf_ipps_ClaussSGSCQ11) runs SMPI only on flat
// hierarchical clusters; this package opens the platform axis so every
// experiment can be swept across the interconnect shapes of real HPC
// machines.
//
// Each generator emits per-dimension links and installs a deterministic
// static router on the platform:
//
//   - fat-tree: D-mod-k up/down routing — the upward redundant-parent
//     choice at each level is a digit of the destination ID, so all traffic
//     towards one host converges through the same spine switches;
//   - torus: dimension-order routing — correct each coordinate in dimension
//     order along the shorter wrap direction (ties go the positive way);
//   - dragonfly: minimal routing — host up-link, local hop to the source
//     group's gateway router, one global link, local hop to the destination
//     router, host down-link.
//
// Builders use no randomness: the same spec always yields the same hosts,
// links, and routes, which keeps campaign sweeps over the topology axis
// bit-identical at any worker count. Routes are memoized by
// platform.Platform, so the per-message hot path is a cache hit.
//
// Specs implement platform.Spec and register their XML elements, so
// WriteXML/ReadXML round-trip <fattree>, <torus>, and <dragonfly> alongside
// <cluster>.
//
// Every builder also annotates its result for the layers above: the spec's
// structural Metrics (hosts, links, diameter, bisection bandwidth) land on
// platform.Platform.Topo together with the family name, which is what the
// smpi layer's "auto" collective selection keys on, and each host's
// Cabinet field records its lowest-level group — the leaf switch of a
// fat-tree, the dimension-0 ring of a torus, the router of a dragonfly —
// which is what package placement's round-robin mapper deals ranks across.
package topology
