package topology_test

// Scale benchmarks: the numbers behind BENCH_scale.json and the Router API
// redesign's acceptance criterion — a 65536-host dragonfly must build and
// route in O(hosts) total memory. The former per-ordered-pair route memo
// made 64k hosts unreachable (4.3 billion map entries just for the keys);
// the implicit routers store O(1) state, so platform memory is the host and
// link slabs plus names, which the route sub-benchmark reports as a gated
// bytes/host metric measured around the build.
//
// Two sub-benchmarks per shape:
//
//   - route: repeat RouteInto over a fixed pseudo-random pair sample with a
//     reused buffer — the per-message closed-form routing cost (zero
//     allocations) at scale;
//   - event: a live kernel churning one in-flight flow per router over
//     2048 routers (neighbor traffic inside each router, so LMM components
//     stay router-sized) — the per-event simulation cost on a platform this
//     large.
//
// The 65k shape is skipped under -short: CI's blocking gate runs the 16k
// numbers, the nightly workflow runs the full file.

import (
	"math/rand"
	"runtime"
	"testing"

	"smpigo/internal/core"
	"smpigo/internal/platform"
	"smpigo/internal/simix"
	"smpigo/internal/surf"
	"smpigo/internal/topology"
)

const (
	// 32 groups x 16 routers x 32 hosts = 16384 hosts, 41440 links.
	shape16k = "dragonfly:32x16x32"
	// 64 groups x 32 routers x 32 hosts = 65536 hosts, 198592 links.
	shape65k = "dragonfly:64x32x32"
)

// buildMeasured builds the shape and returns it with the live heap bytes it
// retains per host (GC'd before and after, so transient build garbage does
// not count).
func buildMeasured(tb testing.TB, shape string) (*platform.Platform, float64) {
	tb.Helper()
	spec, err := topology.ParseSpec(shape)
	if err != nil {
		tb.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	plat, err := spec.Build()
	if err != nil {
		tb.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	perHost := float64(after.HeapAlloc-before.HeapAlloc) / float64(len(plat.Hosts()))
	return plat, perHost
}

func benchScaleRoute(b *testing.B, shape string) {
	plat, perHost := buildMeasured(b, shape)
	hosts := plat.Hosts()
	// A fixed sample of pairs, drawn once: the benchmark times routing, not
	// the RNG. Uniform pairs are dominated by the longest case (local hop,
	// global hop, local hop), which is the right thing to gate.
	rng := rand.New(rand.NewSource(3))
	pairs := make([][2]*platform.Host, 4096)
	for i := range pairs {
		a := rng.Intn(len(hosts))
		c := rng.Intn(len(hosts) - 1)
		if c >= a {
			c++
		}
		pairs[i] = [2]*platform.Host{hosts[a], hosts[c]}
	}
	buf := make([]*platform.Link, 0, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		r := plat.RouteInto(buf[:0], p[0], p[1])
		if len(r.Links) == 0 {
			b.Fatal("empty route")
		}
	}
	// After the loop: ResetTimer discards user metrics reported before it.
	b.ReportMetric(perHost, "bytes/host")
}

// benchScaleEvent churns one in-flight flow per sampled router for b.N
// completion events: each slot streams to the next host under the same
// router, so every LMM component stays router-sized and the measurement
// isolates the event path at 16k/65k-host platform scale.
func benchScaleEvent(b *testing.B, shape string) {
	plat, _ := buildMeasured(b, shape)
	hosts := plat.Hosts()
	const hostsPerRouter = 32 // both scale shapes use 32 hosts per router
	routers := len(hosts) / hostsPerRouter
	population := 2048
	if routers < population {
		population = routers
	}
	stride := routers / population

	k := simix.New()
	n := surf.NewNetwork(k, surf.Ideal())
	k.AddModel(n)
	rng := rand.New(rand.NewSource(11))

	events := 0
	var pending []int
	wake := simix.NewFuture()
	start := func(slot int) {
		base := slot * stride * hostsPerRouter
		src := hosts[base]
		dst := hosts[base+1]
		f := simix.NewFuture()
		n.StartFlow(plat.Route(src, dst), 256*core.KiB+rng.Int63n(256*core.KiB), f)
		k.OnFulfill(f, func(any) {
			events++
			pending = append(pending, slot)
			k.Fulfill(wake, nil)
		})
	}
	k.Spawn("driver", func(p *simix.Proc) {
		for i := 0; i < population; i++ {
			start(i)
		}
		for events < b.N {
			p.Wait(wake)
			wake = simix.NewFuture()
			slots := pending
			pending = pending[:0]
			for _, slot := range slots {
				start(slot)
			}
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkScale is the BENCH_scale.json gate: route cost and platform
// bytes/host at 16k and 65k hosts plus the live per-event cost. The 65k
// pair only runs in full (nightly) mode.
func BenchmarkScale(b *testing.B) {
	b.Run("dragonfly16k/route", func(b *testing.B) { benchScaleRoute(b, shape16k) })
	b.Run("dragonfly16k/event", func(b *testing.B) { benchScaleEvent(b, shape16k) })
	b.Run("dragonfly65k/route", func(b *testing.B) {
		if testing.Short() {
			b.Skip("65k shape: nightly only")
		}
		benchScaleRoute(b, shape65k)
	})
	b.Run("dragonfly65k/event", func(b *testing.B) {
		if testing.Short() {
			b.Skip("65k shape: nightly only")
		}
		benchScaleEvent(b, shape65k)
	})
}

// TestScale65kDragonflyMemory is the acceptance test of the redesign: the
// 65536-host dragonfly builds within a generous linear memory budget (the
// old memo map would blow past it after a fraction of the pairs) and runs a
// full neighbor-traffic wave — one flow per host, every route resolved
// implicitly — to completion.
func TestScale65kDragonflyMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("65k-host build: skipped in -short runs (covered nightly)")
	}
	plat, perHost := buildMeasured(t, shape65k)
	hosts := plat.Hosts()
	if len(hosts) != 65536 {
		t.Fatalf("hosts = %d, want 65536", len(hosts))
	}
	const budget = 4096 // bytes/host; measured ~1k, old memo map needed O(hosts) each
	if perHost > budget {
		t.Fatalf("platform retains %.0f bytes/host, budget %d — routing state is growing superlinearly", perHost, budget)
	}
	t.Logf("65536-host dragonfly: %.0f bytes/host retained", perHost)

	// One neighbor-traffic wave: every host streams 64KiB to its successor
	// under the same router (wrapping within the router), all 65536 flows
	// in flight at once.
	const hostsPerRouter = 32
	k := simix.New()
	n := surf.NewNetwork(k, surf.Ideal())
	k.AddModel(n)
	done := 0
	k.Spawn("wave", func(p *simix.Proc) {
		futures := make([]*simix.Future, 0, len(hosts))
		for i, h := range hosts {
			router := i / hostsPerRouter
			dst := hosts[router*hostsPerRouter+(i+1)%hostsPerRouter]
			f := simix.NewFuture()
			n.StartFlow(plat.Route(h, dst), 64*core.KiB, f)
			futures = append(futures, f)
		}
		for _, f := range futures {
			p.Wait(f)
			done++
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done != len(hosts) {
		t.Fatalf("completed %d flows, want %d", done, len(hosts))
	}
}
