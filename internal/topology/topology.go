package topology

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"smpigo/internal/platform"
)

// Metrics are structural properties of a topology, computed analytically
// from the spec (no platform build needed).
type Metrics struct {
	// Hosts is the number of compute nodes.
	Hosts int
	// Links is the number of directed network links the builder emits.
	Links int
	// Diameter is the maximum route length between two hosts, in links
	// traversed (not switch hops).
	Diameter int
	// BisectionBandwidth is the aggregate one-way bandwidth in bytes/s
	// crossing the topology's balanced structural cut: the top-level split
	// for fat-trees, a cut across the largest dimension for tori, and a
	// group-balanced cut for dragonflies.
	BisectionBandwidth float64
}

// Spec is the topology-side view of platform.Spec with structural metrics.
type Spec interface {
	platform.Spec
	Metrics() Metrics
}

// topoInfo converts a spec's structural metrics into the platform-level
// annotation that collective auto-selection (smpi) and rank placement
// (package placement) key on. Builders attach it to Platform.Topo.
func topoInfo(kind string, m Metrics) *platform.TopoInfo {
	return &platform.TopoInfo{
		Kind:               kind,
		Hosts:              m.Hosts,
		Links:              m.Links,
		Diameter:           m.Diameter,
		BisectionBandwidth: m.BisectionBandwidth,
	}
}

// Hops returns the number of links a message between the two hosts
// traverses — the per-topology hop count the structural tests check against
// Metrics.Diameter.
func Hops(p *platform.Platform, a, b *platform.Host) int {
	return len(p.Route(a, b).Links)
}

// presets maps preset names to spec constructors. Populated at init time by
// the per-topology files, read-only afterwards.
var presets = map[string]func() Spec{}

func registerPreset(name string, build func() Spec) {
	if _, dup := presets[name]; dup {
		panic(fmt.Sprintf("topology: preset %q registered twice", name))
	}
	presets[name] = build
}

// PresetNames lists the built-in topology presets, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Preset returns the named preset spec, or an error naming the known ones.
func Preset(name string) (Spec, error) {
	build, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("topology: unknown preset %q (have %s)",
			name, strings.Join(PresetNames(), ", "))
	}
	return build(), nil
}

// ParseSpec resolves a topology description string: either a preset name
// (see PresetNames) or a compact shape grammar —
//
//	fattree:<down ports per level>:<up ports per level>   fattree:4x4:1x4
//	torus:<dims>                                          torus:4x4x4
//	dragonfly:<groups>x<routers>x<hosts per router>       dragonfly:9x4x2
//
// Fat-tree port lists accept "x" or "," as separator; prefer the x form in
// comma-separated flag lists. Shape strings inherit the corresponding
// preset's speeds and link parameters.
func ParseSpec(s string) (Spec, error) {
	if build, ok := presets[s]; ok {
		return build(), nil
	}
	kind, rest, found := strings.Cut(s, ":")
	if !found {
		return nil, fmt.Errorf("topology: unknown spec %q (want a preset — %s — or fattree:..., torus:..., dragonfly:...)",
			s, strings.Join(PresetNames(), ", "))
	}
	switch kind {
	case "fattree":
		return parseFatTree(rest)
	case "torus":
		return parseTorus(rest)
	case "dragonfly":
		return parseDragonfly(rest)
	default:
		return nil, fmt.Errorf("topology: unknown kind %q in spec %q (want fattree, torus, dragonfly)", kind, s)
	}
}

// specName derives a platform name from a shape string: "fattree:4x4:1x4"
// becomes "fattree-4-4-1-4" so host and link names stay identifier-like.
func specName(kind, rest string) string {
	r := strings.NewReplacer(":", "-", ",", "-", "x", "-")
	return kind + "-" + r.Replace(rest)
}

func parseIntList(s, sep string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, sep) {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func joinInts(vs []int, sep string) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, sep)
}

func product(vs []int) int {
	n := 1
	for _, v := range vs {
		n *= v
	}
	return n
}
