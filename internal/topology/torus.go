package topology

import (
	"encoding/xml"
	"fmt"

	"smpigo/internal/core"
	"smpigo/internal/lmm"
	"smpigo/internal/platform"
)

// TorusSpec describes a k-ary n-dimensional torus (2D/3D meshes with
// wrap-around, the interconnect of Blue Gene and Cray XT machines). Hosts
// sit at the grid points; each host owns one directed link per dimension
// and direction to its wrap-around neighbors, so a full-duplex cable is a
// pair of directed links.
type TorusSpec struct {
	// Name prefixes host and link names.
	Name string
	// Dims are the per-dimension extents, e.g. {4, 4, 4} for a 4x4x4 torus.
	Dims []int
	// HostSpeed is the per-host compute speed in flop/s.
	HostSpeed float64
	// LinkBandwidth/LinkLatency apply to every neighbor link.
	LinkBandwidth float64
	LinkLatency   core.Duration
	// DimWidths optionally scales link bandwidth per dimension: the
	// dimension-d rings run at LinkBandwidth*DimWidths[d]. Empty means
	// homogeneous; otherwise the length must equal len(Dims). Wider
	// low-order rings match machines whose in-board wiring outruns the
	// inter-cabinet cables.
	DimWidths []float64
	// RowSpeeds optionally scales host speed per dimension-0 row,
	// cyclically: hosts in row r run at HostSpeed*RowSpeeds[r%len(RowSpeeds)].
	RowSpeeds []float64
}

// Hosts returns the number of hosts (the product of Dims).
func (s TorusSpec) Hosts() int { return product(s.Dims) }

// Validate implements platform.Spec.
func (s TorusSpec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("torus spec: empty name")
	case len(s.Dims) < 1 || len(s.Dims) > 3:
		return fmt.Errorf("torus spec %q: %d dimensions, want 1-3", s.Name, len(s.Dims))
	case s.HostSpeed <= 0:
		return fmt.Errorf("torus spec %q: non-positive host speed", s.Name)
	case s.LinkBandwidth <= 0:
		return fmt.Errorf("torus spec %q: non-positive link bandwidth", s.Name)
	}
	for d, k := range s.Dims {
		if k < 2 {
			return fmt.Errorf("torus spec %q: dimension %d has extent %d, want >= 2", s.Name, d, k)
		}
	}
	if err := platform.CheckProfile(s.DimWidths, len(s.Dims)); err != nil {
		return fmt.Errorf("torus spec %q: dim widths: %w", s.Name, err)
	}
	if err := platform.CheckProfile(s.RowSpeeds, -1); err != nil {
		return fmt.Errorf("torus spec %q: row speeds: %w", s.Name, err)
	}
	return nil
}

// Build implements platform.Spec: one host per grid point, a plus- and a
// minus-direction link per (host, dimension), and the implicit
// dimension-order router.
func (s TorusSpec) Build() (*platform.Platform, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	p := platform.New(s.Name)
	n := s.Hosts()
	ndims := len(s.Dims)
	p.Reserve(n, 2*n*ndims)
	// Link names are derived on demand from the build-order IDs (host i's
	// plus link in dimension d is i*2*ndims + 2*d, minus at +1).
	p.SetLinkNamer(func(id int) string {
		rem := id % (2 * ndims)
		dir := "-plus"
		if rem%2 == 1 {
			dir = "-minus"
		}
		return fmt.Sprintf("%s-%d-d%d%s", s.Name, id/(2*ndims), rem/2, dir)
	})
	for i := 0; i < n; i++ {
		row := i / s.Dims[0]
		host := p.NewHost(s.HostSpeed * platform.ProfileAt(s.RowSpeeds, row))
		// The dimension-0 ring is the lowest-level group (neighbors there
		// are one cable apart); placement mappers lay ranks out by it.
		host.Cabinet = row
		for d := 0; d < ndims; d++ {
			bw := s.LinkBandwidth
			if len(s.DimWidths) > 0 {
				bw *= s.DimWidths[d]
			}
			p.NewLink(bw, s.LinkLatency, lmm.Shared) // plus
			p.NewLink(bw, s.LinkLatency, lmm.Shared) // minus
		}
	}

	p.SetRouter(&torusRouter{p: p, dims: append([]int(nil), s.Dims...)})
	p.Topo = topoInfo("torus", s.Metrics())
	return p, nil
}

// torusRouter routes dimension-order paths implicitly: host i's plus link
// in dimension d has ID i*2*ndims + 2*d (minus at +1, matching the build
// order), so the router stores only the extents slice — O(1) state in the
// host count — and walks coordinates as plain integer arithmetic.
type torusRouter struct {
	p    *platform.Platform
	dims []int
}

// String implements fmt.Stringer for missing-route diagnostics.
func (r *torusRouter) String() string { return "torus dimension-order router" }

// RouteInto implements platform.Router.
func (r *torusRouter) RouteInto(buf []*platform.Link, a, b *platform.Host) platform.Route {
	start := len(buf)
	cur, dst := a.ID, b.ID
	nd := len(r.dims)
	stride := 1
	for d, k := range r.dims {
		cd := (cur / stride) % k
		delta := ((dst/stride)%k - cd + k) % k
		if delta != 0 {
			// Shorter wrap direction; on a tie (even k, delta == k/2) go
			// the positive way so routes stay deterministic.
			if 2*delta <= k {
				for step := 0; step < delta; step++ {
					buf = append(buf, r.p.LinkByID(cur*2*nd+2*d))
					if cd++; cd == k {
						cd, cur = 0, cur-(k-1)*stride
					} else {
						cur += stride
					}
				}
			} else {
				for step := 0; step < k-delta; step++ {
					buf = append(buf, r.p.LinkByID(cur*2*nd+2*d+1))
					if cd--; cd < 0 {
						cd, cur = k-1, cur+(k-1)*stride
					} else {
						cur -= stride
					}
				}
			}
		}
		stride *= k
	}
	route := platform.Route{Links: buf}
	for _, l := range buf[start:] {
		route.Latency += l.Latency
	}
	return route
}

// Metrics implements Spec. The bisection cut halves the dimension with the
// least crossing bandwidth — the largest extent when widths are uniform;
// wrap-around doubles the crossing cables, giving the classic 2*N/k value
// for a homogeneous k-ary n-cube.
func (s TorusSpec) Metrics() Metrics {
	n := s.Hosts()
	m := Metrics{Hosts: n, Links: 2 * n * len(s.Dims)}
	for d, k := range s.Dims {
		m.Diameter += k / 2
		cut := float64(2*n/k) * s.LinkBandwidth
		if len(s.DimWidths) > 0 {
			cut *= s.DimWidths[d]
		}
		if d == 0 || cut < m.BisectionBandwidth {
			m.BisectionBandwidth = cut
		}
	}
	return m
}

// XMLElement implements platform.Spec. Profile attributes appear only on
// heterogeneous specs, keeping homogeneous platform files byte-identical to
// the pre-profile dialect.
func (s TorusSpec) XMLElement() (string, []xml.Attr) {
	attrs := []xml.Attr{
		platform.Attr("id", "%s", s.Name),
		platform.Attr("speed", "%gf", s.HostSpeed),
		platform.Attr("dims", "%s", joinInts(s.Dims, "x")),
		platform.Attr("bw", "%gBps", s.LinkBandwidth),
		platform.Attr("lat", "%gs", float64(s.LinkLatency)),
	}
	if len(s.DimWidths) > 0 {
		attrs = append(attrs, platform.Attr("dim_widths", "%s", platform.JoinFloats(s.DimWidths, ",")))
	}
	if len(s.RowSpeeds) > 0 {
		attrs = append(attrs, platform.Attr("row_speeds", "%s", platform.JoinFloats(s.RowSpeeds, ",")))
	}
	return "torus", attrs
}

func decodeTorusXML(attrs map[string]string) (platform.Spec, error) {
	var spec TorusSpec
	var err error
	fail := func(field string, e error) (platform.Spec, error) {
		return nil, fmt.Errorf("torus %q: attribute %s: %w", attrs["id"], field, e)
	}
	spec.Name = attrs["id"]
	if spec.HostSpeed, err = core.ParseFlops(attrs["speed"]); err != nil {
		return fail("speed", err)
	}
	if spec.Dims, err = parseIntList(attrs["dims"], "x"); err != nil {
		return fail("dims", err)
	}
	if spec.LinkBandwidth, err = core.ParseRate(attrs["bw"]); err != nil {
		return fail("bw", err)
	}
	if spec.LinkLatency, err = core.ParseDuration(attrs["lat"]); err != nil {
		return fail("lat", err)
	}
	if v := attrs["dim_widths"]; v != "" {
		if spec.DimWidths, err = platform.ParseFloatList(v, ","); err != nil {
			return fail("dim_widths", err)
		}
	}
	if v := attrs["row_speeds"]; v != "" {
		if spec.RowSpeeds, err = platform.ParseFloatList(v, ","); err != nil {
			return fail("row_speeds", err)
		}
	}
	return spec, nil
}

// Torus64 is a 4x4x4 3D torus, 64 hosts with 6 neighbor cables each.
func Torus64() TorusSpec {
	return TorusSpec{
		Name:          "torus64",
		Dims:          []int{4, 4, 4},
		HostSpeed:     1e9,
		LinkBandwidth: 125e6,
		LinkLatency:   5 * core.Microsecond,
	}
}

func parseTorus(rest string) (Spec, error) {
	spec := Torus64()
	spec.Name = specName("torus", rest)
	var err error
	if spec.Dims, err = parseIntList(rest, "x"); err != nil {
		return nil, fmt.Errorf("topology: torus dims: %w", err)
	}
	return spec, spec.Validate()
}

func init() {
	platform.RegisterXMLSpec("torus", decodeTorusXML)
	registerPreset("torus16", func() Spec {
		s := Torus64()
		s.Name = "torus16"
		s.Dims = []int{4, 4}
		return s
	})
	registerPreset("torus64", func() Spec { return Torus64() })
}
