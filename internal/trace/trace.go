// Package trace implements the *off-line* simulation baseline that the
// paper's Section 2 contrasts on-line simulation with: a time-stamped log
// of MPI communication events and CPU bursts is recorded during one run,
// and can later be replayed on a (possibly different) simulated platform.
//
// Recording happens at the point-to-point level — collectives appear as
// the sets of sends/receives they decompose into, like the traces of
// real MPI tracing tools — with four event kinds per rank, in program
// order: Compute (a charged burst), Isend, Irecv, and Wait (by request
// index). Replaying interprets that per-rank program against the smpi API,
// so the replayer shares the timing machinery of the on-line simulator.
//
// The package exists both as a feature (post-mortem performance studies)
// and as a demonstration of the paper's argument: a trace is bound to the
// application behaviour observed during recording, whereas the on-line
// simulator re-executes the application and follows its data-dependent
// choices on every platform.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"smpigo/internal/core"
)

// Kind discriminates trace events.
type Kind byte

// Event kinds, in the order they appear in serialized traces.
const (
	// Compute is a CPU burst charged to simulated time.
	Compute Kind = 'C'
	// Isend is a non-blocking send initiation.
	Isend Kind = 'S'
	// Irecv is a non-blocking receive initiation (Peer is the actual
	// matched source, resolved at completion, so wildcard receives replay
	// deterministically).
	Irecv Kind = 'R'
	// Wait blocks on the request with index Req in this rank's stream.
	Wait Kind = 'W'
)

// Event is one entry of a rank's program-order stream.
type Event struct {
	Kind Kind
	// Peer is the remote world rank (Isend/Irecv).
	Peer int
	// Tag is the message tag (Isend/Irecv).
	Tag int
	// Bytes is the payload size (Isend/Irecv).
	Bytes int64
	// Duration is the burst length in simulated seconds (Compute).
	Duration core.Duration
	// Req is the rank-local request index to wait for (Wait).
	Req int
}

// Trace is a complete recording: one event stream per rank.
type Trace struct {
	Procs   int
	Streams [][]Event

	reqCounts []int // requests issued per rank (recording bookkeeping)
}

// New returns an empty trace for the given rank count.
func New(procs int) *Trace {
	return &Trace{
		Procs:     procs,
		Streams:   make([][]Event, procs),
		reqCounts: make([]int, procs),
	}
}

// Events returns the total number of recorded events.
func (t *Trace) Events() int {
	n := 0
	for _, s := range t.Streams {
		n += len(s)
	}
	return n
}

// Recorder is the hook interface the on-line simulator calls while running
// with tracing enabled. All methods are invoked from the sequential
// simulation, in program order per rank.
type Recorder interface {
	// RecordCompute logs a charged CPU burst.
	RecordCompute(rank int, d core.Duration)
	// RecordIsend logs a send initiation and returns the rank-local
	// request index assigned to it.
	RecordIsend(rank, peer, tag int, bytes int64) int
	// RecordIrecv logs a receive initiation and returns both the request
	// index and a setter used to patch in the matched source when the
	// message is delivered (wildcard resolution).
	RecordIrecv(rank, peer, tag int, bytes int64) (int, func(actualPeer int))
	// RecordWait logs a blocking wait on a request index.
	RecordWait(rank, req int)
}

// RecordCompute implements Recorder.
func (t *Trace) RecordCompute(rank int, d core.Duration) {
	t.Streams[rank] = append(t.Streams[rank], Event{Kind: Compute, Duration: d})
}

// RecordIsend implements Recorder.
func (t *Trace) RecordIsend(rank, peer, tag int, bytes int64) int {
	t.Streams[rank] = append(t.Streams[rank], Event{Kind: Isend, Peer: peer, Tag: tag, Bytes: bytes})
	idx := t.reqCounts[rank]
	t.reqCounts[rank]++
	return idx
}

// RecordIrecv implements Recorder.
func (t *Trace) RecordIrecv(rank, peer, tag int, bytes int64) (int, func(int)) {
	t.Streams[rank] = append(t.Streams[rank], Event{Kind: Irecv, Peer: peer, Tag: tag, Bytes: bytes})
	evIdx := len(t.Streams[rank]) - 1
	reqIdx := t.reqCounts[rank]
	t.reqCounts[rank]++
	return reqIdx, func(actual int) {
		t.Streams[rank][evIdx].Peer = actual
	}
}

// RecordWait implements Recorder.
func (t *Trace) RecordWait(rank, req int) {
	t.Streams[rank] = append(t.Streams[rank], Event{Kind: Wait, Req: req})
}

// Write serializes the trace in a compact line format:
//
//	procs N
//	<rank> C <seconds> | <rank> S <peer> <tag> <bytes> | ...
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "procs %d\n", t.Procs)
	for rank, stream := range t.Streams {
		for _, e := range stream {
			switch e.Kind {
			case Compute:
				fmt.Fprintf(bw, "%d C %g\n", rank, float64(e.Duration))
			case Isend:
				fmt.Fprintf(bw, "%d S %d %d %d\n", rank, e.Peer, e.Tag, e.Bytes)
			case Irecv:
				fmt.Fprintf(bw, "%d R %d %d %d\n", rank, e.Peer, e.Tag, e.Bytes)
			case Wait:
				fmt.Fprintf(bw, "%d W %d\n", rank, e.Req)
			}
		}
	}
	return bw.Flush()
}

// Read parses a trace serialized by Write. Input is streamed line by line
// through a bufio.Reader, so traces of any size parse — a recorded DT class
// C run easily exceeds the 1 MiB cap a fixed Scanner buffer would impose.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	readLine := func() (string, error) {
		s, err := br.ReadString('\n')
		if err == io.EOF && s != "" {
			err = nil // final line without trailing newline
		}
		return strings.TrimSuffix(s, "\n"), err
	}
	header, err := readLine()
	if err == io.EOF {
		return nil, fmt.Errorf("trace: empty input")
	}
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	var procs int
	if _, err := fmt.Sscanf(header, "procs %d", &procs); err != nil {
		return nil, fmt.Errorf("trace: bad header %q", header)
	}
	if procs <= 0 {
		return nil, fmt.Errorf("trace: invalid proc count %d", procs)
	}
	t := New(procs)
	line := 1
	for {
		text, err := readLine()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line+1, err)
		}
		line++
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("trace: line %d: too few fields", line)
		}
		rank, err := strconv.Atoi(fields[0])
		if err != nil || rank < 0 || rank >= procs {
			return nil, fmt.Errorf("trace: line %d: bad rank %q", line, fields[0])
		}
		ev := Event{Kind: Kind(fields[1][0])}
		switch ev.Kind {
		case Compute:
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace: line %d: want 3 fields", line)
			}
			d, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", line, err)
			}
			ev.Duration = core.Duration(d)
		case Isend, Irecv:
			if len(fields) != 5 {
				return nil, fmt.Errorf("trace: line %d: want 5 fields", line)
			}
			if ev.Peer, err = strconv.Atoi(fields[2]); err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", line, err)
			}
			if ev.Tag, err = strconv.Atoi(fields[3]); err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", line, err)
			}
			if ev.Bytes, err = strconv.ParseInt(fields[4], 10, 64); err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", line, err)
			}
		case Wait:
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace: line %d: want 3 fields", line)
			}
			if ev.Req, err = strconv.Atoi(fields[2]); err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", line, err)
			}
		default:
			return nil, fmt.Errorf("trace: line %d: unknown kind %q", line, fields[1])
		}
		t.Streams[rank] = append(t.Streams[rank], ev)
	}
}
