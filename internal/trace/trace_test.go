package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"smpigo/internal/core"
)

func TestRecorderAssignsSequentialRequestIndices(t *testing.T) {
	tr := New(2)
	if idx := tr.RecordIsend(0, 1, 5, 100); idx != 0 {
		t.Errorf("first request index = %d, want 0", idx)
	}
	idx, resolve := tr.RecordIrecv(0, -1, 5, 100)
	if idx != 1 {
		t.Errorf("second request index = %d, want 1", idx)
	}
	if idx := tr.RecordIsend(1, 0, 5, 100); idx != 0 {
		t.Errorf("other rank's first index = %d, want 0 (per-rank counters)", idx)
	}
	resolve(1)
	if tr.Streams[0][1].Peer != 1 {
		t.Error("resolver did not patch the wildcard peer")
	}
}

func TestRecordWaitAndCompute(t *testing.T) {
	tr := New(1)
	tr.RecordCompute(0, 0.25)
	tr.RecordIsend(0, 0, 0, 8)
	tr.RecordWait(0, 0)
	if tr.Events() != 3 {
		t.Fatalf("events = %d, want 3", tr.Events())
	}
	if tr.Streams[0][0].Kind != Compute || tr.Streams[0][0].Duration != 0.25 {
		t.Errorf("compute event wrong: %+v", tr.Streams[0][0])
	}
	if tr.Streams[0][2].Kind != Wait || tr.Streams[0][2].Req != 0 {
		t.Errorf("wait event wrong: %+v", tr.Streams[0][2])
	}
}

// Property: any trace built from random events round-trips through the
// text serialization unchanged.
func TestSerializationRoundTripProperty(t *testing.T) {
	f := func(events []uint32) bool {
		const procs = 3
		tr := New(procs)
		for _, raw := range events {
			rank := int(raw % procs)
			switch (raw / 4) % 4 {
			case 0:
				tr.RecordCompute(rank, core.Duration(raw%1000)/1000)
			case 1:
				tr.RecordIsend(rank, int(raw%procs), int(raw%7), int64(raw%100000))
			case 2:
				tr.RecordIrecv(rank, int(raw%procs), int(raw%7), int64(raw%100000))
			case 3:
				if tr.reqCounts[rank] > 0 {
					tr.RecordWait(rank, int(raw)%tr.reqCounts[rank])
				}
			}
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		if back.Procs != tr.Procs || back.Events() != tr.Events() {
			return false
		}
		for rank := range tr.Streams {
			for i, ev := range tr.Streams[rank] {
				if back.Streams[rank][i] != ev {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	tr := New(4)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Procs != 4 || back.Events() != 0 {
		t.Errorf("empty roundtrip: procs=%d events=%d", back.Procs, back.Events())
	}
}
