package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"smpigo/internal/core"
)

func TestRecorderAssignsSequentialRequestIndices(t *testing.T) {
	tr := New(2)
	if idx := tr.RecordIsend(0, 1, 5, 100); idx != 0 {
		t.Errorf("first request index = %d, want 0", idx)
	}
	idx, resolve := tr.RecordIrecv(0, -1, 5, 100)
	if idx != 1 {
		t.Errorf("second request index = %d, want 1", idx)
	}
	if idx := tr.RecordIsend(1, 0, 5, 100); idx != 0 {
		t.Errorf("other rank's first index = %d, want 0 (per-rank counters)", idx)
	}
	resolve(1)
	if tr.Streams[0][1].Peer != 1 {
		t.Error("resolver did not patch the wildcard peer")
	}
}

func TestRecordWaitAndCompute(t *testing.T) {
	tr := New(1)
	tr.RecordCompute(0, 0.25)
	tr.RecordIsend(0, 0, 0, 8)
	tr.RecordWait(0, 0)
	if tr.Events() != 3 {
		t.Fatalf("events = %d, want 3", tr.Events())
	}
	if tr.Streams[0][0].Kind != Compute || tr.Streams[0][0].Duration != 0.25 {
		t.Errorf("compute event wrong: %+v", tr.Streams[0][0])
	}
	if tr.Streams[0][2].Kind != Wait || tr.Streams[0][2].Req != 0 {
		t.Errorf("wait event wrong: %+v", tr.Streams[0][2])
	}
}

// Property: any trace built from random events round-trips through the
// text serialization unchanged.
func TestSerializationRoundTripProperty(t *testing.T) {
	f := func(events []uint32) bool {
		const procs = 3
		tr := New(procs)
		for _, raw := range events {
			rank := int(raw % procs)
			switch (raw / 4) % 4 {
			case 0:
				tr.RecordCompute(rank, core.Duration(raw%1000)/1000)
			case 1:
				tr.RecordIsend(rank, int(raw%procs), int(raw%7), int64(raw%100000))
			case 2:
				tr.RecordIrecv(rank, int(raw%procs), int(raw%7), int64(raw%100000))
			case 3:
				if tr.reqCounts[rank] > 0 {
					tr.RecordWait(rank, int(raw)%tr.reqCounts[rank])
				}
			}
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		if back.Procs != tr.Procs || back.Events() != tr.Events() {
			return false
		}
		for rank := range tr.Streams {
			for i, ev := range tr.Streams[rank] {
				if back.Streams[rank][i] != ev {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestLargeTraceRoundTrip is the regression test for the 1 MiB parsing
// cap: Read used a bufio.Scanner with a fixed maximum buffer, so recorded
// traces beyond it could fail to parse. The streamed reader must handle a
// multi-MiB trace (and a final line without a trailing newline) intact.
func TestLargeTraceRoundTrip(t *testing.T) {
	const procs = 8
	tr := New(procs)
	// ~200k events serialize to well over 2 MiB.
	for i := 0; i < 100000; i++ {
		rank := i % procs
		peer := (rank + 1) % procs
		req := tr.RecordIsend(rank, peer, i%7, int64(1000000+i))
		tr.RecordWait(rank, req)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 2<<20 {
		t.Fatalf("test trace only %d bytes, want > 2 MiB", buf.Len())
	}
	serialized := bytes.TrimSuffix(buf.Bytes(), []byte("\n")) // exercise EOF-without-newline too
	back, err := Read(bytes.NewReader(serialized))
	if err != nil {
		t.Fatalf("large trace failed to parse: %v", err)
	}
	if back.Events() != tr.Events() {
		t.Fatalf("events = %d, want %d", back.Events(), tr.Events())
	}
	for rank := range tr.Streams {
		for i, ev := range tr.Streams[rank] {
			if back.Streams[rank][i] != ev {
				t.Fatalf("rank %d event %d: %+v != %+v", rank, i, back.Streams[rank][i], ev)
			}
		}
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	tr := New(4)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Procs != 4 || back.Events() != 0 {
		t.Errorf("empty roundtrip: procs=%d events=%d", back.Procs, back.Events())
	}
}
