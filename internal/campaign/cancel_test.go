package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smpigo/internal/core"
)

// TestCancelMidCampaign cancels a campaign while jobs are in flight and
// asserts the drain contract: started jobs finish and report outcomes,
// unstarted jobs are skipped with the cancellation cause, the summary is
// marked canceled, and every pool goroutine exits (counted directly — the
// worker count is part of the assertion, not inferred from timing).
func TestCancelMidCampaign(t *testing.T) {
	const jobs, workers = 40, 4
	cause := errors.New("client went away")
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)

	var started, finished atomic.Int64
	release := make(chan struct{})
	var cancelOnce sync.Once
	js := make([]Job, jobs)
	for i := range js {
		js[i] = Job{
			ID: fmt.Sprintf("job-%03d", i),
			Run: func(*Ctx) (*Outcome, error) {
				started.Add(1)
				// The first wave of jobs cancels the campaign, then blocks
				// until the test releases it — proving in-flight jobs finish
				// after cancellation rather than being torn down.
				cancelOnce.Do(func() { cancel(cause) })
				<-release
				finished.Add(1)
				return &Outcome{SimulatedTime: 1}, nil
			},
		}
	}

	before := runtime.NumGoroutine()
	done := make(chan *Summary)
	go func() { done <- RunAll(ctx, Options{Workers: workers, Seed: 3}, js) }()

	// Wait until cancellation has propagated, then release the in-flight
	// jobs. The feed loop may dispatch a bounded number of extra jobs that
	// were already racing the cancel; releasing everyone lets them drain.
	<-ctx.Done()
	close(release)
	sum := <-done

	if !sum.Canceled {
		t.Fatal("summary not marked canceled")
	}
	ran := int(started.Load())
	if int(finished.Load()) != ran {
		t.Errorf("%d jobs started but %d finished: in-flight jobs must complete", ran, finished.Load())
	}
	if ran == jobs {
		t.Fatal("every job ran; cancellation came too late to test the drain")
	}
	if sum.Skipped != jobs-ran {
		t.Errorf("skipped = %d, want %d (jobs %d - ran %d)", sum.Skipped, jobs-ran, jobs, ran)
	}
	if sum.Failed != sum.Skipped {
		t.Errorf("failed = %d, want %d (only skips)", sum.Failed, sum.Skipped)
	}
	var sawOutcome, sawSkip bool
	for i := range sum.Results {
		r := &sum.Results[i]
		switch {
		case r.Skipped:
			sawSkip = true
			if !errors.Is(r.Err, cause) {
				t.Fatalf("job %s skip error %v does not wrap the cancellation cause", r.ID, r.Err)
			}
			if r.Seed != core.DeriveSeed(3, r.ID) {
				t.Errorf("job %s skip result lost its derived seed", r.ID)
			}
		case r.Err != nil:
			t.Fatalf("job %s failed rather than ran or skipped: %v", r.ID, r.Err)
		default:
			sawOutcome = true
			if r.Outcome == nil {
				t.Fatalf("job %s has neither outcome nor error", r.ID)
			}
		}
	}
	if !sawOutcome || !sawSkip {
		t.Fatalf("want both finished and skipped jobs (outcome=%v skip=%v)", sawOutcome, sawSkip)
	}

	// No goroutine leak: the pool's workers must all have exited. NumGoroutine
	// counts unrelated runtime goroutines too, so poll back down to the
	// pre-campaign level instead of expecting an instant exact match.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine count stuck at %d (> %d before the campaign): worker leak", runtime.NumGoroutine(), before)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCancelBeforeStart: a context canceled before RunAll dispatches
// anything skips every job.
func TestCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	sum := RunAll(ctx, Options{Workers: 2, Seed: 1}, []Job{
		{ID: "a", Run: func(*Ctx) (*Outcome, error) { ran = true; return &Outcome{}, nil }},
		{ID: "b", Run: func(*Ctx) (*Outcome, error) { ran = true; return &Outcome{}, nil }},
	})
	if ran {
		t.Error("a job ran under a pre-canceled context")
	}
	if !sum.Canceled || sum.Skipped != 2 || sum.Failed != 2 {
		t.Errorf("canceled=%v skipped=%d failed=%d, want true/2/2", sum.Canceled, sum.Skipped, sum.Failed)
	}
}

// TestUncanceledRunAllMatchesRun: threading a live context through changes
// nothing — fingerprints match plain Run exactly.
func TestUncanceledRunAllMatchesRun(t *testing.T) {
	a := Run(Options{Workers: 3, Seed: 21}, noisyJobs(16))
	b := RunAll(context.Background(), Options{Workers: 3, Seed: 21}, noisyJobs(16))
	if b.Canceled || b.Skipped != 0 {
		t.Fatalf("background-context run marked canceled: %+v", b)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("RunAll fingerprint %s != Run fingerprint %s", b.Fingerprint(), a.Fingerprint())
	}
}

// TestOnResultStreams: the streaming hook sees every job exactly once with
// the result that lands in the summary, and invocations never overlap.
func TestOnResultStreams(t *testing.T) {
	const n = 30
	var mu sync.Mutex
	var inCallback atomic.Int32
	got := make(map[int]Result)
	sum := Run(Options{Workers: 4, Seed: 8, OnResult: func(i int, r Result) {
		if inCallback.Add(1) != 1 {
			t.Error("OnResult invoked concurrently")
		}
		defer inCallback.Add(-1)
		mu.Lock()
		defer mu.Unlock()
		if _, dup := got[i]; dup {
			t.Errorf("OnResult saw job %d twice", i)
		}
		got[i] = r
	}}, noisyJobs(n))
	if len(got) != n {
		t.Fatalf("OnResult saw %d jobs, want %d", len(got), n)
	}
	for i, r := range got {
		if r.ID != sum.Results[i].ID || r.Outcome != sum.Results[i].Outcome {
			t.Errorf("job %d: streamed result diverges from summary", i)
		}
	}
}
