package campaign

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"smpigo/internal/core"
)

// noisyJobs builds n jobs whose outcomes depend only on the job's derived
// seed: any scheduling sensitivity would show up as a fingerprint change.
func noisyJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			ID:   fmt.Sprintf("job-%03d", i),
			Tags: map[string]string{"i": fmt.Sprint(i)},
			Run: func(ctx *Ctx) (*Outcome, error) {
				// Consume a seed-dependent amount of the stream so jobs do
				// unequal work and finish out of submission order.
				draws := 1 + int(ctx.RNG.Uint64()%64)
				var acc float64
				for d := 0; d < draws; d++ {
					acc += ctx.RNG.Float64()
				}
				return &Outcome{
					SimulatedTime: core.Time(acc),
					Values:        map[string]float64{"acc": acc, "draws": float64(draws)},
				}, nil
			},
		}
	}
	return jobs
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	base := Run(Options{Workers: 1, Seed: 7}, noisyJobs(40))
	if err := base.Err(); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		sum := Run(Options{Workers: workers, Seed: 7}, noisyJobs(40))
		if err := sum.Err(); err != nil {
			t.Fatal(err)
		}
		if got, want := sum.Fingerprint(), base.Fingerprint(); got != want {
			t.Errorf("workers=%d fingerprint %s, want %s (workers=1)", workers, got, want)
		}
		for i := range sum.Results {
			a, b := base.Results[i].Outcome, sum.Results[i].Outcome
			if a.SimulatedTime != b.SimulatedTime {
				t.Errorf("workers=%d job %s: simulated %v vs %v",
					workers, sum.Results[i].ID, b.SimulatedTime, a.SimulatedTime)
			}
		}
		if sum.TotalSimulated != base.TotalSimulated || sum.MaxSimulated != base.MaxSimulated {
			t.Errorf("workers=%d aggregates differ: total %v/%v max %v/%v",
				workers, sum.TotalSimulated, base.TotalSimulated, sum.MaxSimulated, base.MaxSimulated)
		}
	}
}

func TestSeedIndependentOfJobOrder(t *testing.T) {
	// A job's seed is a pure function of (campaign seed, job ID): submitting
	// the jobs in a different order must hand each the same seed.
	fwd := Run(Options{Workers: 3, Seed: 11}, noisyJobs(10))
	rev := make([]Job, 10)
	for i, j := range noisyJobs(10) {
		rev[len(rev)-1-i] = j
	}
	bwd := Run(Options{Workers: 3, Seed: 11}, rev)
	bySeed := make(map[string]uint64)
	for _, r := range fwd.Results {
		bySeed[r.ID] = r.Seed
	}
	for _, r := range bwd.Results {
		if bySeed[r.ID] != r.Seed {
			t.Errorf("job %s seed %d after reorder, want %d", r.ID, r.Seed, bySeed[r.ID])
		}
	}
}

func TestDifferentCampaignSeedsDiffer(t *testing.T) {
	a := Run(Options{Workers: 2, Seed: 1}, noisyJobs(8))
	b := Run(Options{Workers: 2, Seed: 2}, noisyJobs(8))
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("campaigns with different seeds produced identical fingerprints")
	}
}

func TestPanicIsolation(t *testing.T) {
	jobs := noisyJobs(6)
	jobs[2].Run = func(ctx *Ctx) (*Outcome, error) {
		panic("boom at " + ctx.ID)
	}
	sum := Run(Options{Workers: 4, Seed: 3}, jobs)
	if sum.Failed != 1 {
		t.Fatalf("failed = %d, want 1", sum.Failed)
	}
	r := sum.Results[2]
	if !r.Panicked || r.Err == nil || r.Outcome != nil {
		t.Errorf("panicked job: panicked=%v err=%v outcome=%v", r.Panicked, r.Err, r.Outcome)
	}
	if !strings.Contains(r.Err.Error(), "boom at job-002") {
		t.Errorf("panic error lost the payload: %v", r.Err)
	}
	if !strings.Contains(r.Err.Error(), "campaign_test.go") {
		t.Errorf("panic error lost the stack: %.120s", r.Err.Error())
	}
	for i, other := range sum.Results {
		if i != 2 && other.Err != nil {
			t.Errorf("job %s failed alongside the panicking job: %v", other.ID, other.Err)
		}
	}
	if sum.Err() == nil {
		t.Error("summary Err() should surface the panic")
	}
	if _, err := sum.Outcomes(); err == nil {
		t.Error("Outcomes() should refuse a campaign with failures")
	}
}

func TestErrorIsolationAndOrder(t *testing.T) {
	sentinel := errors.New("scenario unreachable")
	jobs := noisyJobs(5)
	jobs[4].Run = func(*Ctx) (*Outcome, error) { return nil, sentinel }
	sum := Run(Options{Workers: 2, Seed: 9}, jobs)
	if sum.Failed != 1 {
		t.Fatalf("failed = %d, want 1", sum.Failed)
	}
	if !errors.Is(sum.Results[4].Err, sentinel) {
		t.Errorf("error not wrapped: %v", sum.Results[4].Err)
	}
	for i, r := range sum.Results {
		if want := fmt.Sprintf("job-%03d", i); r.ID != want {
			t.Errorf("result %d is %s, want %s (submission order)", i, r.ID, want)
		}
	}
}

func TestAggregation(t *testing.T) {
	times := []float64{0.5, 2.5, 1.0}
	jobs := make([]Job, len(times))
	for i, d := range times {
		jobs[i] = Job{
			ID: fmt.Sprintf("t=%v", d),
			Run: func(*Ctx) (*Outcome, error) {
				return &Outcome{SimulatedTime: core.Time(d)}, nil
			},
		}
	}
	sum := Run(Options{Workers: 3, Seed: 0}, jobs)
	if err := sum.Err(); err != nil {
		t.Fatal(err)
	}
	if sum.TotalSimulated != 4.0 {
		t.Errorf("total simulated %v, want 4.0", sum.TotalSimulated)
	}
	if sum.MaxSimulated != 2.5 {
		t.Errorf("max simulated %v, want 2.5", sum.MaxSimulated)
	}
	if sum.Jobs != 3 || sum.Failed != 0 {
		t.Errorf("jobs=%d failed=%d", sum.Jobs, sum.Failed)
	}
}

func TestDuplicateJobIDsRejected(t *testing.T) {
	jobs := noisyJobs(3)
	jobs[2].ID = jobs[0].ID
	sum := Run(Options{Workers: 2, Seed: 5}, jobs)
	if sum.Failed != 1 {
		t.Fatalf("failed = %d, want 1 (the duplicate)", sum.Failed)
	}
	if err := sum.Results[2].Err; err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate job error = %v", err)
	}
	if sum.Results[0].Err != nil {
		t.Errorf("original job should run: %v", sum.Results[0].Err)
	}
}

func TestJSONRoundTrips(t *testing.T) {
	sum := Run(Options{Workers: 2, Seed: 13}, noisyJobs(4))
	data, err := sum.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"seed": 13`, `"jobs": 4`, `"job-000"`, `"total_simulated_s"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON missing %s:\n%.400s", want, data)
		}
	}
}

func TestEmptyCampaign(t *testing.T) {
	sum := Run(Options{Workers: 4, Seed: 1}, nil)
	if sum.Jobs != 0 || sum.Failed != 0 || sum.Err() != nil {
		t.Errorf("empty campaign: %+v", sum)
	}
}
