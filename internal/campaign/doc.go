// Package campaign is a deterministic parallel experiment runner: it
// executes many independent simulations concurrently over a bounded worker
// pool and aggregates their results into a single summary.
//
// The design mirrors the discipline of SKaMPI-style measurement harnesses
// sweeping message sizes and process counts (the paper's Section 6
// methodology): a campaign is a flat list of independent jobs, each fully
// described by its ID and scenario tags. Determinism is structural rather
// than accidental:
//
//   - every job receives an RNG seeded by core.DeriveSeed(campaign seed,
//     job ID), so its random stream is a pure function of the campaign seed
//     and the job's identity — never of worker count or scheduling order;
//   - results are collected into a slice indexed by submission order, so
//     aggregation never observes completion order;
//   - a panicking job is isolated: the panic is captured (with its stack)
//     as that job's error and the rest of the campaign keeps running.
//
// Simulated quantities are therefore bit-identical at any Workers setting;
// only wall-clock fields vary run to run. Summary.Fingerprint hashes every
// deterministic field, so two runs of the same campaign can be compared
// with a string equality — the check CI performs at -parallel 1 vs 8.
//
// Anything a job derives from Ctx.Seed inherits this contract: the
// experiments layer seeds each simulation's per-rank RNGs from it, and the
// placement axis generates its seeded random rank mappings from it, which
// is why sweeping "-placements random" stays reproducible in parallel.
//
// RunAll adds cancellation for long-running callers (the campaign
// service): when the context fires, in-flight jobs finish and the rest
// land as skipped results with their derived seeds intact, the summary
// marked Canceled. Options.OnResult streams results in completion order,
// and Merge recombines contiguous shard summaries of one grid back into
// the unsharded summary — fingerprint-identically (see
// experiments.GridSpec's shard fields).
package campaign
