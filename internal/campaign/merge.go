package campaign

import "fmt"

// Merge combines the summaries of shard campaigns — the same job set split
// into disjoint slices and run separately, possibly on different processes
// or machines — back into one summary, as if a single campaign had run every
// job.
//
// The shard-merge contract: because every job's seed derives from the
// campaign seed and the job's ID (never from scheduling), a job computes
// bit-identical results no matter which shard ran it. Parts given in shard
// order — each holding a contiguous job-index range of the full grid, as
// produced by experiments.GridSpec sharding — therefore concatenate into a
// summary whose Fingerprint equals the unsharded run's, which is exactly
// what the service's shard-merge endpoint and the CI service-smoke job
// assert.
//
// All parts must share one campaign seed, none may be canceled (a canceled
// shard is partial, so the merge would silently misreport skipped jobs as
// the campaign's outcome), and no job ID may appear twice. Empty parts
// (shards of a grid smaller than the shard count) merge fine. Wall is the
// maximum over parts, since shards are expected to have run concurrently.
func Merge(parts ...*Summary) (*Summary, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("campaign: merge of zero summaries")
	}
	merged := &Summary{Seed: parts[0].Seed}
	seen := make(map[string]bool)
	for pi, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("campaign: merge part %d is nil", pi)
		}
		if p.Seed != merged.Seed {
			return nil, fmt.Errorf("campaign: merge part %d has seed %d, part 0 has %d (shards must share the campaign seed)", pi, p.Seed, merged.Seed)
		}
		if p.Canceled {
			return nil, fmt.Errorf("campaign: merge part %d is canceled (partial); refusing to merge", pi)
		}
		if p.Workers > merged.Workers {
			merged.Workers = p.Workers
		}
		if p.Wall > merged.Wall {
			merged.Wall = p.Wall
		}
		for i := range p.Results {
			r := &p.Results[i]
			if seen[r.ID] {
				return nil, fmt.Errorf("campaign: merge: job %q appears in more than one part (shards must be disjoint)", r.ID)
			}
			seen[r.ID] = true
			merged.Results = append(merged.Results, *r)
			// Re-hydrate Err from its JSON mirror: shard summaries that
			// crossed a process boundary carry only the string.
			if r.Err == nil && r.Error != "" {
				merged.Results[len(merged.Results)-1].Err = fmt.Errorf("%s", r.Error)
			}
		}
	}
	merged.Jobs = len(merged.Results)
	for i := range merged.Results {
		r := &merged.Results[i]
		if r.Err != nil || r.Error != "" {
			merged.Failed++
			continue
		}
		if r.Outcome != nil {
			merged.TotalSimulated += r.Outcome.SimulatedTime
			if r.Outcome.SimulatedTime > merged.MaxSimulated {
				merged.MaxSimulated = r.Outcome.SimulatedTime
			}
			merged.Stats = MergeStats(merged.Stats, r.Outcome.Stats)
		}
	}
	return merged, nil
}
