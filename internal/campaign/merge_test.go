package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// shardRun runs jobs[lo:hi] as its own campaign, the way a shard worker
// would: job IDs and the campaign seed are those of the full grid, so every
// job's derived seed matches the unsharded run.
func shardRun(t *testing.T, seed uint64, jobs []Job, lo, hi int) *Summary {
	t.Helper()
	sum := Run(Options{Workers: 2, Seed: seed}, jobs[lo:hi])
	if err := sum.Err(); err != nil {
		t.Fatal(err)
	}
	return sum
}

func TestMergeShardsMatchesUnsharded(t *testing.T) {
	const n = 17 // odd on purpose: shards get unequal sizes
	full := Run(Options{Workers: 3, Seed: 42}, noisyJobs(n))
	if err := full.Err(); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3, 5} {
		parts := make([]*Summary, shards)
		for i := range parts {
			lo, hi := i*n/shards, (i+1)*n/shards
			parts[i] = shardRun(t, 42, noisyJobs(n), lo, hi)
		}
		merged, err := Merge(parts...)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got, want := merged.Fingerprint(), full.Fingerprint(); got != want {
			t.Errorf("shards=%d: merged fingerprint %s, want unsharded %s", shards, got, want)
		}
		if merged.Jobs != n || merged.TotalSimulated != full.TotalSimulated || merged.MaxSimulated != full.MaxSimulated {
			t.Errorf("shards=%d: aggregates diverge: jobs=%d total=%v max=%v vs %d/%v/%v",
				shards, merged.Jobs, merged.TotalSimulated, merged.MaxSimulated,
				full.Jobs, full.TotalSimulated, full.MaxSimulated)
		}
	}
}

// TestMergeAcrossJSONBoundary: shard summaries that traveled between
// processes as JSON (losing their live Err values) still merge and
// fingerprint identically — including a failed job.
func TestMergeAcrossJSONBoundary(t *testing.T) {
	const n = 8
	mk := func() []Job {
		jobs := noisyJobs(n)
		jobs[5].Run = func(*Ctx) (*Outcome, error) { return nil, fmt.Errorf("scenario broken") }
		return jobs
	}
	full := Run(Options{Workers: 2, Seed: 6}, mk())
	roundtrip := func(s *Summary) *Summary {
		data, err := s.JSON()
		if err != nil {
			t.Fatal(err)
		}
		var back Summary
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		return &back
	}
	jobs := mk()
	a := Run(Options{Workers: 2, Seed: 6}, jobs[:4])
	b := Run(Options{Workers: 2, Seed: 6}, jobs[4:])
	merged, err := Merge(roundtrip(a), roundtrip(b))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := merged.Fingerprint(), full.Fingerprint(); got != want {
		t.Errorf("post-JSON merged fingerprint %s, want %s", got, want)
	}
	if merged.Failed != 1 {
		t.Errorf("failed = %d, want 1 (rehydrated from the JSON error string)", merged.Failed)
	}
}

func TestMergeEmptyShardOK(t *testing.T) {
	full := Run(Options{Workers: 2, Seed: 9}, noisyJobs(3))
	empty := Run(Options{Workers: 2, Seed: 9}, nil)
	merged, err := Merge(full, empty)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Fingerprint() != full.Fingerprint() {
		t.Error("merging an empty shard moved the fingerprint")
	}
}

func TestMergeRejections(t *testing.T) {
	ok := Run(Options{Workers: 1, Seed: 1}, noisyJobs(2))
	otherSeed := Run(Options{Workers: 1, Seed: 2}, noisyJobs(2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	canceled := RunAll(ctx, Options{Workers: 1, Seed: 1}, noisyJobs(2))

	cases := []struct {
		name string
		in   []*Summary
		want string
	}{
		{"none", nil, "zero summaries"},
		{"nil part", []*Summary{ok, nil}, "is nil"},
		{"seed mismatch", []*Summary{ok, otherSeed}, "seed"},
		{"canceled part", []*Summary{ok, canceled}, "canceled"},
		{"overlapping jobs", []*Summary{ok, ok}, "more than one part"},
	}
	for _, tc := range cases {
		if _, err := Merge(tc.in...); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}
