package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"smpigo/internal/core"
)

// Job is one independent unit of a campaign: typically a single simulation
// run at one point of a scenario grid.
type Job struct {
	// ID identifies the job inside its campaign; it must be unique because
	// it keys the job's derived RNG seed. Use a readable coordinate string
	// such as "fig8/scatter/size=4MiB/backend=surf".
	ID string
	// Tags are free-form scenario coordinates carried through to the result
	// (figure, operation, size, model, backend, ...).
	Tags map[string]string
	// Run executes the job. It must not retain ctx past its return. Any
	// panic is captured as the job's error without affecting other jobs.
	Run func(ctx *Ctx) (*Outcome, error)
}

// Ctx is the deterministic identity handed to a running job.
type Ctx struct {
	// ID is the job's ID.
	ID string
	// Seed is derived from the campaign seed and the job ID; pass it to
	// smpi.Config.Seed (or seed any other generator) so the job's stream is
	// independent of scheduling.
	Seed uint64
	// RNG is a generator pre-seeded with Seed for convenience.
	RNG *core.RNG
}

// Outcome is what a successful job reports back.
type Outcome struct {
	// SimulatedTime is the job's headline simulated quantity in seconds
	// (e.g. smpi.Report.SimulatedTime). Zero is fine for jobs where it is
	// meaningless.
	SimulatedTime core.Time `json:"simulated_s"`
	// Values holds named scalar results (error percentages, byte counts,
	// per-rank times flattened, ...). They participate in the campaign
	// fingerprint, so they must be deterministic.
	Values map[string]float64 `json:"values,omitempty"`
	// Payload carries an arbitrary rich result to the caller (a table, a
	// sample set). It is not serialized and not fingerprinted.
	Payload any `json:"-"`
	// Stats holds the job's kernel/model counters (obs.Stats.Flat()) when it
	// ran instrumented. They aggregate into Summary.Stats but — unlike
	// Values — never enter the fingerprint: counters describe how the
	// simulator worked, not what it computed, and must be free to change.
	Stats map[string]float64 `json:"stats,omitempty"`
}

// Result couples a job with its outcome or failure.
type Result struct {
	ID   string            `json:"id"`
	Tags map[string]string `json:"tags,omitempty"`
	Seed uint64            `json:"seed"`
	// Outcome is nil when the job failed.
	Outcome *Outcome `json:"outcome,omitempty"`
	// Err is the job's failure (an error return or a captured panic).
	Err error `json:"-"`
	// Error mirrors Err as a string for JSON output.
	Error string `json:"error,omitempty"`
	// Panicked reports that Err came from a recovered panic.
	Panicked bool `json:"panicked,omitempty"`
	// Skipped reports that the job never ran because the campaign's context
	// was canceled first; Err carries the cancellation cause.
	Skipped bool `json:"skipped,omitempty"`
	// Wall is the job's wall-clock duration (nondeterministic; excluded
	// from the fingerprint).
	Wall time.Duration `json:"wall_ns"`
}

// Options parameterizes a campaign run.
type Options struct {
	// Workers bounds the worker pool; 0 or negative means GOMAXPROCS.
	Workers int
	// Seed is the campaign seed every job seed derives from.
	Seed uint64
	// OnResult, when non-nil, is invoked once per job as soon as its result
	// is known — in completion order, not submission order — so callers can
	// stream progress while the pool is still running. Invocations are
	// serialized (never concurrent with each other); the callback must not
	// block for long, since it stalls the worker that completed the job.
	// Cancellation-skipped jobs are reported too, after the pool drains.
	OnResult func(i int, r Result)
}

// Summary aggregates a completed campaign.
type Summary struct {
	Seed    uint64 `json:"seed"`
	Workers int    `json:"workers"`
	Jobs    int    `json:"jobs"`
	Failed  int    `json:"failed"`
	// Canceled reports that the run's context was canceled before every job
	// ran: in-flight jobs finished, but jobs not yet handed to a worker were
	// skipped (their Results carry the context's error and Skipped=true).
	// A canceled summary is partial — its fingerprint must not be compared
	// against a completed run's, and result caches must not store it.
	Canceled bool `json:"canceled,omitempty"`
	// Skipped counts the jobs never started because of cancellation. They
	// are included in Failed as well (their Err is non-nil).
	Skipped int `json:"skipped,omitempty"`
	// Results are in job submission order, independent of completion order.
	Results []Result `json:"results"`
	// TotalSimulated and MaxSimulated aggregate the jobs' simulated times.
	TotalSimulated core.Time `json:"total_simulated_s"`
	MaxSimulated   core.Time `json:"max_simulated_s"`
	// Wall is the whole campaign's wall-clock duration.
	Wall time.Duration `json:"wall_ns"`
	// Stats aggregates the jobs' counter maps (see Outcome.Stats and
	// MergeStats). nil when no job reported counters. Not fingerprinted.
	Stats map[string]float64 `json:"stats,omitempty"`
}

// MergeStats folds one job's counter map into an aggregate: keys are summed,
// except high-water marks — keys with the ".max" suffix — which take the
// maximum. Passing a nil aggregate allocates one; from may be nil.
func MergeStats(into, from map[string]float64) map[string]float64 {
	if len(from) == 0 {
		return into
	}
	if into == nil {
		into = make(map[string]float64, len(from))
	}
	for k, v := range from {
		if strings.HasSuffix(k, ".max") {
			if v > into[k] {
				into[k] = v
			}
		} else {
			into[k] += v
		}
	}
	return into
}

// Run executes jobs over the worker pool and returns the campaign summary.
// Job IDs must be unique; duplicates are reported as failures of the later
// job without running it.
func Run(opts Options, jobs []Job) *Summary {
	return RunAll(context.Background(), opts, jobs)
}

// RunAll is Run with cancellation: when ctx is canceled mid-campaign the
// pool drains — jobs already handed to a worker finish normally, jobs still
// queued are skipped with the context's error — and the summary comes back
// with Canceled set. A finished campaign is indistinguishable from a plain
// Run: cancellation after the last job was dispatched changes nothing.
func RunAll(ctx context.Context, opts Options, jobs []Job) *Summary {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	sum := &Summary{
		Seed:    opts.Seed,
		Workers: workers,
		Jobs:    len(jobs),
		Results: make([]Result, len(jobs)),
	}

	seen := make(map[string]bool, len(jobs))
	dup := make([]bool, len(jobs))
	for i, j := range jobs {
		if seen[j.ID] {
			dup[i] = true
		}
		seen[j.ID] = true
	}

	// emit serializes OnResult invocations across workers.
	var emitMu sync.Mutex
	emit := func(i int) {
		if opts.OnResult == nil {
			return
		}
		emitMu.Lock()
		defer emitMu.Unlock()
		opts.OnResult(i, sum.Results[i])
	}

	start := time.Now()
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				sum.Results[i] = runOne(opts.Seed, jobs[i], dup[i])
				emit(i)
			}
		}()
	}
	next := 0
feed:
	for ; next < len(jobs); next++ {
		select {
		case idx <- next:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if next < len(jobs) {
		sum.Canceled = true
		cause := context.Cause(ctx)
		for i := next; i < len(jobs); i++ {
			sum.Results[i] = Result{
				ID:      jobs[i].ID,
				Tags:    jobs[i].Tags,
				Seed:    core.DeriveSeed(opts.Seed, jobs[i].ID),
				Skipped: true,
				Err:     fmt.Errorf("campaign: job %q skipped: %w", jobs[i].ID, cause),
			}
			sum.Skipped++
			emit(i)
		}
	}
	sum.Wall = time.Since(start)

	for i := range sum.Results {
		r := &sum.Results[i]
		if r.Err != nil {
			sum.Failed++
			r.Error = r.Err.Error()
			continue
		}
		if r.Outcome != nil {
			sum.TotalSimulated += r.Outcome.SimulatedTime
			if r.Outcome.SimulatedTime > sum.MaxSimulated {
				sum.MaxSimulated = r.Outcome.SimulatedTime
			}
			sum.Stats = MergeStats(sum.Stats, r.Outcome.Stats)
		}
	}
	return sum
}

// runOne executes a single job with panic isolation.
func runOne(seed uint64, job Job, duplicate bool) (res Result) {
	res.ID = job.ID
	res.Tags = job.Tags
	res.Seed = core.DeriveSeed(seed, job.ID)
	if duplicate {
		res.Err = fmt.Errorf("campaign: duplicate job ID %q", job.ID)
		return res
	}
	start := time.Now()
	defer func() {
		res.Wall = time.Since(start)
		if r := recover(); r != nil {
			res.Outcome = nil
			res.Panicked = true
			res.Err = fmt.Errorf("campaign: job %q panicked: %v\n%s", job.ID, r, debug.Stack())
		}
	}()
	ctx := &Ctx{ID: job.ID, Seed: res.Seed, RNG: core.NewRNG(res.Seed)}
	out, err := job.Run(ctx)
	if err != nil {
		res.Err = fmt.Errorf("campaign: job %q: %w", job.ID, err)
		return res
	}
	res.Outcome = out
	return res
}

// Err returns the first failed job's error (in submission order), or nil.
func (s *Summary) Err() error {
	for i := range s.Results {
		if s.Results[i].Err != nil {
			return s.Results[i].Err
		}
	}
	return nil
}

// Outcomes returns the jobs' outcomes in submission order. It errors if any
// job failed, so callers can index positionally without nil checks.
func (s *Summary) Outcomes() ([]*Outcome, error) {
	if err := s.Err(); err != nil {
		return nil, err
	}
	outs := make([]*Outcome, len(s.Results))
	for i := range s.Results {
		outs[i] = s.Results[i].Outcome
	}
	return outs, nil
}

// Fingerprint hashes every deterministic field of the summary — job IDs,
// seeds, simulated times, and outcome values in sorted key order — into a
// hex string. Two runs of the same campaign fingerprint identically no
// matter how many workers executed them; wall-clock fields are excluded.
func (s *Summary) Fingerprint() string {
	h := uint64(0x5ca1ab1e) ^ s.Seed
	mixStr := func(str string) {
		for i := 0; i < len(str); i++ {
			h = (h ^ uint64(str[i])) * 0x100000001b3
		}
	}
	mixU64 := func(v uint64) {
		for shift := 0; shift < 64; shift += 8 {
			h = (h ^ (v >> shift & 0xff)) * 0x100000001b3
		}
	}
	for i := range s.Results {
		r := &s.Results[i]
		mixStr(r.ID)
		mixU64(r.Seed)
		// Error (the string mirror) covers summaries that crossed a process
		// boundary as JSON, where Err did not survive serialization.
		if r.Err != nil || r.Error != "" {
			mixStr("failed")
			continue
		}
		if r.Outcome == nil {
			continue
		}
		mixU64(math.Float64bits(float64(r.Outcome.SimulatedTime)))
		keys := make([]string, 0, len(r.Outcome.Values))
		for k := range r.Outcome.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			mixStr(k)
			mixU64(math.Float64bits(r.Outcome.Values[k]))
		}
	}
	return fmt.Sprintf("%016x", h)
}

// JSON renders the summary as indented JSON with stable field order.
func (s *Summary) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
