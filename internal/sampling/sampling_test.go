package sampling

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock advances a fixed amount per Stopwatch call pair, making timing
// deterministic in tests.
type fakeClock struct {
	now  time.Duration
	step time.Duration
}

func (c *fakeClock) get() time.Duration {
	c.now += c.step
	return c.now
}

func newTestRegistry(ranks int, step time.Duration) *Registry {
	r := NewRegistry(ranks)
	c := &fakeClock{step: step}
	r.Stopwatch = c.get
	return r
}

func TestSampleExecutesFirstNTimes(t *testing.T) {
	r := newTestRegistry(1, time.Millisecond)
	runs := 0
	for i := 0; i < 10; i++ {
		_, executed := r.Sample("site", 3, func() { runs++ })
		if want := i < 3; executed != want {
			t.Errorf("occurrence %d: executed=%v, want %v", i, executed, want)
		}
	}
	if runs != 3 {
		t.Errorf("burst ran %d times, want 3", runs)
	}
	if r.Executed() != 3 || r.Replayed() != 7 {
		t.Errorf("stats executed=%d replayed=%d, want 3/7", r.Executed(), r.Replayed())
	}
}

func TestSampleReplaysMean(t *testing.T) {
	r := newTestRegistry(1, 0)
	c := &fakeClock{}
	r.Stopwatch = c.get
	durations := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	i := 0
	for ; i < 3; i++ {
		c.step = durations[i] // elapsed = one step between the two reads
		r.Sample("s", 3, func() {})
	}
	d, executed := r.Sample("s", 3, func() { t.Fatal("must not execute") })
	if executed {
		t.Fatal("should have replayed")
	}
	want := 0.020
	if diff := float64(d) - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("replayed mean = %v, want 20ms", d)
	}
	mean, n := r.SiteMean("s")
	if n != 3 || float64(mean) != want {
		t.Errorf("SiteMean = %v, %d", mean, n)
	}
}

func TestSampleZeroNNeverExecutes(t *testing.T) {
	r := newTestRegistry(1, time.Millisecond)
	d, executed := r.Sample("s", 0, func() { t.Fatal("n=0 must not execute") })
	if executed || d != 0 {
		t.Errorf("n=0 sample: executed=%v d=%v", executed, d)
	}
}

func TestLocalVsGlobalKeying(t *testing.T) {
	// Local sampling keys include the rank: 2 ranks x n=2 executions = 4.
	// Global sampling shares one site: 2 executions total.
	r := newTestRegistry(2, time.Millisecond)
	runs := 0
	for occurrence := 0; occurrence < 3; occurrence++ {
		for rank := 0; rank < 2; rank++ {
			r.Sample(fmt.Sprintf("local@rank%d", rank), 2, func() { runs++ })
		}
	}
	if runs != 4 {
		t.Errorf("local-keyed runs = %d, want 4", runs)
	}
	runs = 0
	for occurrence := 0; occurrence < 3; occurrence++ {
		for rank := 0; rank < 2; rank++ {
			r.Sample("global", 2, func() { runs++ })
		}
	}
	if runs != 2 {
		t.Errorf("global-keyed runs = %d, want 2", runs)
	}
}

func TestSharedMallocFoldsAllocation(t *testing.T) {
	r := newTestRegistry(4, 0)
	a := r.SharedMalloc("arr", 1000)
	b := r.SharedMalloc("arr", 1000)
	if &a[0] != &b[0] {
		t.Error("shared buffers should alias")
	}
	a[5] = 42
	if b[5] != 42 {
		t.Error("writes must be visible through all aliases")
	}
}

func TestSharedMallocSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("size mismatch should panic")
		}
	}()
	r := newTestRegistry(1, 0)
	r.SharedMalloc("arr", 10)
	r.SharedMalloc("arr", 20)
}

func TestSharedFreeRefCounting(t *testing.T) {
	r := newTestRegistry(2, 0)
	a := r.SharedMalloc("arr", 100)
	r.SharedMalloc("arr", 100)
	a[0] = 7
	r.SharedFree("arr")
	// Still referenced: a new request aliases the old data.
	c := r.SharedMalloc("arr", 100)
	if c[0] != 7 {
		t.Error("buffer should survive while referenced")
	}
	r.SharedFree("arr")
	r.SharedFree("arr")
	d := r.SharedMalloc("arr", 100)
	if d[0] != 0 {
		t.Error("after full release a fresh buffer should be allocated")
	}
	r.SharedFree("missing") // no-op
}

func TestAccountingRSSWithoutFolding(t *testing.T) {
	r := newTestRegistry(4, 0)
	for rank := 0; rank < 4; rank++ {
		r.Malloc(rank, 1000)
	}
	if got := r.MaxPeakRSS(); got != 1000 {
		t.Errorf("per-rank RSS = %v, want 1000", got)
	}
}

func TestAccountingRSSWithFolding(t *testing.T) {
	// 4 ranks sharing one 1000-byte array: 250 bytes each.
	r := newTestRegistry(4, 0)
	for rank := 0; rank < 4; rank++ {
		r.SharedMalloc("arr", 1000)
	}
	r.TouchAll()
	if got := r.MaxPeakRSS(); got != 250 {
		t.Errorf("folded per-rank RSS = %v, want 250", got)
	}
}

func TestPeakIsSticky(t *testing.T) {
	r := newTestRegistry(1, 0)
	r.Malloc(0, 5000)
	r.Free(0, 5000)
	r.Malloc(0, 10)
	if got := r.MaxPeakRSS(); got != 5000 {
		t.Errorf("peak = %v, want sticky 5000", got)
	}
}

func TestFreeClampsAtZero(t *testing.T) {
	r := newTestRegistry(1, 0)
	r.Free(0, 100)
	r.Malloc(0, 10)
	if got := r.MaxPeakRSS(); got != 10 {
		t.Errorf("peak = %v, want 10 (no negative footprint)", got)
	}
}

func TestRealStopwatchMeasuresSomething(t *testing.T) {
	r := NewRegistry(1)
	d, executed := r.Sample("busy", 1, func() {
		s := 0.0
		for i := 0; i < 100000; i++ {
			s += float64(i)
		}
		_ = s
	})
	if !executed {
		t.Fatal("first occurrence must execute")
	}
	if d < 0 {
		t.Errorf("negative duration %v", d)
	}
}
