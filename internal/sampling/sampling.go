// Package sampling implements the two single-node scalability techniques of
// the paper's Section 3, which in SMPI are exposed as C preprocessor macros
// and here as library calls keyed by a call-site identifier:
//
//   - CPU-burst sampling (SMPI_SAMPLE_LOCAL / SMPI_SAMPLE_GLOBAL /
//     SMPI_SAMPLE_DELAY): a burst is genuinely executed and timed only its
//     first n occurrences — per rank (local) or across all ranks (global) —
//     and afterwards replaced by its mean measured duration; with n = 0 the
//     burst is never executed and a user-supplied flop amount is charged.
//
//   - RAM folding (SMPI_SHARED_MALLOC / SMPI_FREE): because all simulated
//     ranks live in one address space, m ranks allocating the same logical
//     array of size s can share a single buffer, cutting the footprint from
//     m*s to s (technique #1 of [Adve et al. 2002], used by the paper).
//
// The package also provides the accounting allocator used to reproduce the
// paper's Figure 16 (maximum resident set size per process, with and
// without folding).
package sampling

import (
	"fmt"
	"time"

	"smpigo/internal/core"
)

// Registry holds sampling and folding state for one simulated world.
// All access happens from the sequential simulation, so no locking.
type Registry struct {
	// Stopwatch returns monotonic wall-clock time; tests may replace it.
	Stopwatch func() time.Duration

	ranks  int
	sites  map[string]*site
	shared map[string]*sharedBuf

	private []int64 // current private bytes per rank
	peak    []float64

	executed int64 // bursts actually executed (stats)
	replayed int64 // bursts replaced by a mean delay (stats)
}

type site struct {
	remaining int
	samples   int
	sum       core.Duration
}

type sharedBuf struct {
	data []byte
	refs int
}

// NewRegistry creates a registry for a world of the given rank count.
func NewRegistry(ranks int) *Registry {
	start := time.Now()
	return &Registry{
		Stopwatch: func() time.Duration { return time.Since(start) },
		ranks:     ranks,
		sites:     make(map[string]*site),
		shared:    make(map[string]*sharedBuf),
		private:   make([]int64, ranks),
		peak:      make([]float64, ranks),
	}
}

// Executed and Replayed report how many bursts ran for real vs. were
// replaced by a replayed mean delay.
func (r *Registry) Executed() int64 { return r.executed }

// Replayed reports the number of bursts bypassed and replaced by a delay.
func (r *Registry) Replayed() int64 { return r.replayed }

// Sample runs one occurrence of the burst identified by key. If fewer than
// n occurrences have been recorded so far, fn is executed and timed and its
// wall-clock duration is returned with executed=true; otherwise fn is
// skipped and the mean of the recorded samples is returned.
//
// For SMPI_SAMPLE_LOCAL semantics the caller includes the rank in the key;
// for SMPI_SAMPLE_GLOBAL it does not, so all ranks feed the same counters
// (the paper's scalability trick for SPMD applications, Section 3.1).
func (r *Registry) Sample(key string, n int, fn func()) (d core.Duration, executed bool) {
	st, ok := r.sites[key]
	if !ok {
		st = &site{remaining: n}
		r.sites[key] = st
	}
	if st.remaining > 0 {
		st.remaining--
		begin := r.Stopwatch()
		fn()
		elapsed := core.Duration(float64(r.Stopwatch()-begin) / float64(time.Second))
		st.samples++
		st.sum += elapsed
		r.executed++
		return elapsed, true
	}
	r.replayed++
	if st.samples == 0 {
		return 0, false
	}
	return st.sum / core.Duration(st.samples), false
}

// Observe runs one occurrence of the burst identified by key without
// timing it: fn is executed for the first n occurrences and skipped
// afterwards, with the same executed/replayed accounting as Sample. Callers
// that charge a deterministic (modelled) cost per occurrence use Observe so
// the sampled path's simulated cost never depends on wall-clock noise.
func (r *Registry) Observe(key string, n int, fn func()) (executed bool) {
	st, ok := r.sites[key]
	if !ok {
		st = &site{remaining: n}
		r.sites[key] = st
	}
	if st.remaining > 0 {
		st.remaining--
		st.samples++
		r.executed++
		fn()
		return true
	}
	r.replayed++
	return false
}

// SiteMean returns the mean recorded duration for a site (0 if none) and
// the number of samples backing it.
func (r *Registry) SiteMean(key string) (core.Duration, int) {
	st, ok := r.sites[key]
	if !ok || st.samples == 0 {
		return 0, 0
	}
	return st.sum / core.Duration(st.samples), st.samples
}

// --- RAM folding ---

// SharedMalloc returns the shared buffer for key, allocating it on first
// use (the SMPI_SHARED_MALLOC macro). All ranks passing the same key and
// size receive the same backing array. It panics if the same key is
// requested with a different size.
func (r *Registry) SharedMalloc(key string, size int) []byte {
	sb, ok := r.shared[key]
	if !ok {
		sb = &sharedBuf{data: make([]byte, size)}
		r.shared[key] = sb
	}
	if len(sb.data) != size {
		panic(fmt.Sprintf("sampling: SharedMalloc(%q) size mismatch: %d vs %d", key, size, len(sb.data)))
	}
	sb.refs++
	return sb.data
}

// SharedFree drops one reference to the shared buffer (the SMPI_FREE
// macro); the buffer is released when the last rank frees it.
func (r *Registry) SharedFree(key string) {
	sb, ok := r.shared[key]
	if !ok {
		return
	}
	sb.refs--
	if sb.refs <= 0 {
		delete(r.shared, key)
	}
}

// --- accounting allocator (Figure 16 metric) ---

// Malloc allocates a private buffer charged to rank's footprint.
func (r *Registry) Malloc(rank, size int) []byte {
	r.private[rank] += int64(size)
	r.updatePeak(rank)
	return make([]byte, size)
}

// Free returns size bytes of rank's private footprint.
func (r *Registry) Free(rank, size int) {
	r.private[rank] -= int64(size)
	if r.private[rank] < 0 {
		r.private[rank] = 0
	}
}

func (r *Registry) sharedBytes() int64 {
	var total int64
	for _, sb := range r.shared {
		total += int64(len(sb.data))
	}
	return total
}

func (r *Registry) updatePeak(rank int) {
	// A rank's accounted footprint is its private bytes plus its share of
	// the folded arrays (which exist once for the whole simulation).
	rss := float64(r.private[rank]) + float64(r.sharedBytes())/float64(r.ranks)
	if rss > r.peak[rank] {
		r.peak[rank] = rss
	}
}

// TouchAll refreshes the peak metric of every rank; call after SharedMalloc
// bursts so shared allocations reach the peak accounting.
func (r *Registry) TouchAll() {
	for rank := range r.peak {
		r.updatePeak(rank)
	}
}

// MaxPeakRSS returns the maximum per-rank accounted footprint in bytes —
// the quantity on the y-axis of the paper's Figure 16.
func (r *Registry) MaxPeakRSS() float64 {
	max := 0.0
	for _, p := range r.peak {
		if p > max {
			max = p
		}
	}
	return max
}
