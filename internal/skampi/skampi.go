// Package skampi reproduces the role SKaMPI plays in the paper (Section 6):
// a ping-pong micro-benchmark between two nodes that produces the
// (message size, one-way time) dataset used to calibrate and to validate
// point-to-point models. The same driver runs on either simulation backend,
// so "SKaMPI on the real cluster" is the driver on the packet-level
// emulator and "SMPI's prediction" is the driver on the analytical backend.
package skampi

import (
	"fmt"

	"smpigo/internal/calibrate"
	"smpigo/internal/core"
	"smpigo/internal/platform"
	"smpigo/internal/smpi"
)

// DefaultSizes returns the log-spaced message sizes of the paper's
// Figures 3-5: powers of two from 1 byte to 4 MiB, with midpoints for
// better segment-boundary resolution.
func DefaultSizes() []int64 {
	var sizes []int64
	for s := int64(1); s <= 4*core.MiB; s *= 2 {
		sizes = append(sizes, s)
		if mid := s + s/2; s >= 8 && mid < 4*core.MiB {
			sizes = append(sizes, mid)
		}
	}
	return sizes
}

// PingPongConfig parameterizes a ping-pong run.
type PingPongConfig struct {
	// Base is the simulation config; Procs and Hosts are overridden.
	Base smpi.Config
	// A and B are the two endpoints.
	A, B *platform.Host
	// Sizes to measure; DefaultSizes() if nil.
	Sizes []int64
	// Reps per size; the minimum round-trip is kept (SKaMPI style).
	// Defaults to 3.
	Reps int
}

// PingPong runs the benchmark and returns one calibration sample per size
// (one-way time = best round-trip / 2, SKaMPI's methodology).
func PingPong(cfg PingPongConfig) ([]calibrate.Sample, error) {
	if cfg.A == nil || cfg.B == nil || cfg.A == cfg.B {
		return nil, fmt.Errorf("skampi: need two distinct endpoints")
	}
	sizes := cfg.Sizes
	if sizes == nil {
		sizes = DefaultSizes()
	}
	reps := cfg.Reps
	if reps <= 0 {
		reps = 3
	}
	run := cfg.Base
	run.Procs = 2
	run.Hosts = []*platform.Host{cfg.A, cfg.B}

	results := make([]calibrate.Sample, len(sizes))
	app := func(r *smpi.Rank) {
		c := r.Comm()
		for i, size := range sizes {
			buf := make([]byte, size)
			best := core.TimeForever
			for rep := 0; rep < reps; rep++ {
				c.Barrier(r)
				start := r.Now()
				if r.Rank() == 0 {
					r.Send(c, buf, 1, 0)
					r.Recv(c, buf, 1, 0)
				} else {
					r.Recv(c, buf, 0, 0)
					r.Send(c, buf, 0, 0)
				}
				if rtt := r.Now() - start; rtt < best {
					best = rtt
				}
			}
			if r.Rank() == 0 {
				results[i] = calibrate.Sample{Size: size, Time: float64(best) / 2}
			}
		}
	}
	if _, err := smpi.Run(run, app); err != nil {
		return nil, err
	}
	return results, nil
}

// RouteInfo returns the calibration route parameters (L0, B0) between two
// hosts of a platform.
func RouteInfo(p *platform.Platform, a, b *platform.Host) calibrate.RouteInfo {
	r := p.Route(a, b)
	return calibrate.RouteInfo{
		Latency:   float64(r.Latency),
		Bandwidth: r.Bottleneck(),
	}
}
