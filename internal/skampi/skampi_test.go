package skampi

import (
	"testing"

	"smpigo/internal/calibrate"
	"smpigo/internal/core"
	"smpigo/internal/metrics"
	"smpigo/internal/platform"
	"smpigo/internal/smpi"
	"smpigo/internal/surf"
)

func griffon(t *testing.T) *platform.Platform {
	t.Helper()
	p, err := platform.Griffon().Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// summarizeModel computes the log-error summary of a model's predictions
// against measured samples.
func summarizeModel(m surf.NetModel, info calibrate.RouteInfo, samples []calibrate.Sample) metrics.Summary {
	var pred, ref []float64
	for _, s := range samples {
		pred = append(pred, calibrate.Predict(m, info, s.Size))
		ref = append(ref, s.Time)
	}
	return metrics.Summarize(pred, ref)
}

func TestDefaultSizesShape(t *testing.T) {
	sizes := DefaultSizes()
	if sizes[0] != 1 {
		t.Error("sizes should start at 1 byte")
	}
	last := sizes[len(sizes)-1]
	if last != 4*core.MiB {
		t.Errorf("sizes should end at 4MiB, got %d", last)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatal("sizes must be strictly increasing")
		}
	}
	if len(sizes) < 30 {
		t.Errorf("only %d sizes; need enough for 3-segment fitting", len(sizes))
	}
}

func TestPingPongValidation(t *testing.T) {
	p := griffon(t)
	if _, err := PingPong(PingPongConfig{Base: smpi.Config{Platform: p}}); err == nil {
		t.Error("missing endpoints should fail")
	}
	h := p.HostByID(0)
	if _, err := PingPong(PingPongConfig{Base: smpi.Config{Platform: p}, A: h, B: h}); err == nil {
		t.Error("identical endpoints should fail")
	}
}

func TestPingPongOnEmuBackend(t *testing.T) {
	p := griffon(t)
	samples, err := PingPong(PingPongConfig{
		Base:  smpi.Config{Platform: p, Backend: smpi.BackendEmu},
		A:     p.HostByID(0),
		B:     p.HostByID(1),
		Sizes: []int64{1, 1024, 64 * core.KiB, core.MiB},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 4 {
		t.Fatalf("got %d samples", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Time <= samples[i-1].Time {
			t.Errorf("ping-pong time not increasing: %+v", samples)
		}
	}
	// 1 MiB one-way should be within 2.5x of raw wire time.
	wire := float64(core.MiB) / 125e6
	if samples[3].Time < wire || samples[3].Time > 2.5*wire {
		t.Errorf("1MiB one-way %v, wire %v", samples[3].Time, wire)
	}
}

func TestPingPongSurfMatchesModel(t *testing.T) {
	// On the surf backend the measured one-way ping-pong time must equal
	// the model's closed-form prediction: the driver adds no overhead.
	p := griffon(t)
	a, b := p.HostByID(0), p.HostByID(1)
	info := RouteInfo(p, a, b)
	model := surf.Ideal()
	samples, err := PingPong(PingPongConfig{
		Base:  smpi.Config{Platform: p, Backend: smpi.BackendSurf, Model: model},
		A:     a,
		B:     b,
		Sizes: []int64{1024, core.MiB},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		want := calibrate.Predict(model, info, s.Size)
		if e := metrics.LogError(s.Time, want); metrics.ToPercent(e) > 1 {
			t.Errorf("size %d: measured %v, model predicts %v", s.Size, s.Time, want)
		}
	}
}

func TestCalibrationPipelineOnEmu(t *testing.T) {
	// End-to-end reproduction of the Figure 3 setup: measure ping-pong on
	// the emulated griffon, fit all three models, check the accuracy
	// ordering piecewise < best-fit affine < default affine.
	p := griffon(t)
	a, b := p.HostByID(0), p.HostByID(1)
	samples, err := PingPong(PingPongConfig{
		Base: smpi.Config{Platform: p, Backend: smpi.BackendEmu},
		A:    a, B: b,
	})
	if err != nil {
		t.Fatal(err)
	}
	info := RouteInfo(p, a, b)
	def, err := calibrate.DefaultAffine(samples, info)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := calibrate.BestFitAffine(samples, info)
	if err != nil {
		t.Fatal(err)
	}
	pwl, err := calibrate.FitPiecewise(samples, info)
	if err != nil {
		t.Fatal(err)
	}
	sDef := summarizeModel(def, info, samples)
	sFit := summarizeModel(fit, info, samples)
	sPwl := summarizeModel(pwl, info, samples)
	if !(sPwl.MeanLog < sFit.MeanLog && sFit.MeanLog < sDef.MeanLog) {
		t.Errorf("accuracy ordering violated: pwl %v, best-fit %v, default %v", sPwl, sFit, sDef)
	}
	if sPwl.MeanPct() > 15 {
		t.Errorf("piecewise error on calibration data too high: %v", sPwl)
	}
}

func TestRouteInfo(t *testing.T) {
	p := griffon(t)
	info := RouteInfo(p, p.HostByID(0), p.HostByID(1))
	if info.Bandwidth != 125e6 {
		t.Errorf("bottleneck %v, want 125e6", info.Bandwidth)
	}
	if info.Latency <= 0 {
		t.Error("non-positive latency")
	}
}
