package experiments

import (
	"strings"
	"testing"

	"smpigo/internal/campaign"
	"smpigo/internal/core"
)

func env(t *testing.T) *Env {
	t.Helper()
	e, err := NewEnv()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "demo", Header: []string{"a", "bb"}}
	tb.Add(1, 2.5)
	tb.Add("xxx", "y")
	tb.Note("note %d", 7)
	s := tb.String()
	for _, want := range []string{"demo", "a", "bb", "xxx", "2.5", "# note 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestEnvCalibration(t *testing.T) {
	e := env(t)
	if len(e.Piecewise.Segments) != 3 {
		t.Fatalf("piecewise model has %d segments", len(e.Piecewise.Segments))
	}
	if len(e.Default.Segments) != 1 || len(e.BestFit.Segments) != 1 {
		t.Error("affine models should have one segment")
	}
	// The fitted middle boundary should sit near the 64 KiB protocol
	// switch the emulator implements.
	b1 := e.Piecewise.Segments[1].MaxBytes
	if b1 < 8*core.KiB || b1 > 512*core.KiB {
		t.Errorf("second boundary %d implausibly far from 64KiB", b1)
	}
}

func TestFigure3OrderingAndAccuracy(t *testing.T) {
	res, err := Figure3(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OrderingHolds() {
		t.Errorf("Figure 3 model ordering violated: %v", res.Summaries)
	}
	// Paper: piecewise 8.63% avg on griffon. Accept a generous band.
	if pct := res.Summaries["piecewise"].MeanPct(); pct > 20 {
		t.Errorf("piecewise mean error %.1f%%, paper ~8.6%%", pct)
	}
	if pct := res.Summaries["default-affine"].MeanPct(); pct < 10 {
		t.Errorf("default affine suspiciously accurate (%.1f%%), paper ~32%%", pct)
	}
}

func TestFigure4CrossClusterTransfer(t *testing.T) {
	res, err := Figure4(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.PiecewiseBest() {
		t.Errorf("Figure 4: piecewise should stay the most accurate on gdx: %v", res.Summaries)
	}
	if pct := res.Summaries["piecewise"].MeanPct(); pct > 30 {
		t.Errorf("piecewise error %.1f%% on gdx, paper ~7.9%%", pct)
	}
}

func TestFigure5ThreeSwitches(t *testing.T) {
	res, err := Figure5(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.PiecewiseBest() {
		t.Errorf("Figure 5: piecewise should stay the most accurate across 3 switches: %v", res.Summaries)
	}
	if pct := res.Summaries["piecewise"].MeanPct(); pct > 35 {
		t.Errorf("piecewise error %.1f%% across 3 switches, paper ~9.9%%", pct)
	}
}

// withCampaign runs fn with the env temporarily configured for the given
// worker count and seed, restoring the previous settings afterwards (the
// env is shared across tests).
func withCampaign(e *Env, workers int, seed uint64, fn func()) {
	prevW, prevS := e.Workers, e.Seed
	e.Workers, e.Seed = workers, seed
	defer func() { e.Workers, e.Seed = prevW, prevS }()
	fn()
}

func TestFigureCampaignDeterministicAcrossWorkers(t *testing.T) {
	// The acceptance property of the campaign engine: a figure's simulated
	// results are bit-identical at any worker-pool size.
	e := env(t)
	var base, wide *SweepResult
	withCampaign(e, 1, 77, func() {
		var err error
		if base, err = Figure8(e); err != nil {
			t.Fatal(err)
		}
	})
	withCampaign(e, 8, 77, func() {
		var err error
		if wide, err = Figure8(e); err != nil {
			t.Fatal(err)
		}
	})
	for i := range base.Pred {
		if base.Pred[i] != wide.Pred[i] || base.Ref[i] != wide.Ref[i] {
			t.Errorf("size %d: workers=1 (%v, %v) vs workers=8 (%v, %v)",
				base.X[i], base.Pred[i], base.Ref[i], wide.Pred[i], wide.Ref[i])
		}
	}
	if base.Summary != wide.Summary {
		t.Errorf("summaries differ: %v vs %v", base.Summary, wide.Summary)
	}
}

func TestGridCampaignDeterministicAcrossWorkers(t *testing.T) {
	e := env(t)
	spec := GridSpec{
		Op:       "scatter",
		Procs:    []int{4, 8},
		Sizes:    []int64{64 * core.KiB, 256 * core.KiB},
		Models:   []string{"piecewise", "default"},
		Backends: []string{"surf", "openmpi"},
	}
	fingerprints := make(map[string]int)
	for _, workers := range []int{1, 4} {
		withCampaign(e, workers, 42, func() {
			sum, err := e.GridCampaign(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := sum.Err(); err != nil {
				t.Fatal(err)
			}
			if sum.Jobs != 12 {
				t.Fatalf("grid expanded to %d jobs, want 12", sum.Jobs)
			}
			fingerprints[sum.Fingerprint()]++
		})
	}
	if len(fingerprints) != 1 {
		t.Errorf("grid campaign fingerprints differ across worker counts: %v", fingerprints)
	}
}

// TestGridTopologyAxisDeterministic sweeps the new topology axis and
// checks the acceptance property: bit-identical fingerprints at any
// -parallel worker count.
func TestGridTopologyAxisDeterministic(t *testing.T) {
	e := env(t)
	spec := GridSpec{
		Op:         "scatter",
		Procs:      []int{8},
		Sizes:      []int64{64 * core.KiB},
		Models:     []string{"piecewise"},
		Backends:   []string{"surf"},
		Topologies: []string{"griffon", "fattree16", "torus16", "dragonfly:3x2x2", "fattree:4x4:1x4"},
	}
	fingerprints := make(map[string]int)
	for _, workers := range []int{1, 4} {
		withCampaign(e, workers, 7, func() {
			sum, err := e.GridCampaign(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := sum.Err(); err != nil {
				t.Fatal(err)
			}
			if sum.Jobs != 5 {
				t.Fatalf("grid expanded to %d jobs, want 5", sum.Jobs)
			}
			fingerprints[sum.Fingerprint()]++
		})
	}
	if len(fingerprints) != 1 {
		t.Errorf("topology-axis fingerprints differ across worker counts: %v", fingerprints)
	}
	if _, err := e.GridCampaign(GridSpec{
		Op: "scatter", Procs: []int{4}, Sizes: []int64{1024},
		Backends: []string{"surf"}, Topologies: []string{"not-a-topology"},
	}); err == nil {
		t.Error("unknown topology should fail expansion")
	}
}

// TestTopoCollectives runs the cross-topology ring-vs-tree comparison and
// checks the structural claims: every point simulates, results are
// deterministic, and the topology axis actually differentiates — the same
// collective completes in different times on different interconnects,
// which the flat cluster alone cannot express.
func TestTopoCollectives(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-topology comparison is slow; run without -short")
	}
	e := env(t)
	var a, b *TopoCollectivesResult
	withCampaign(e, 1, 3, func() {
		var err error
		if a, err = TopoCollectives(e, 64*core.KiB); err != nil {
			t.Fatal(err)
		}
	})
	withCampaign(e, 8, 3, func() {
		var err error
		if b, err = TopoCollectives(e, 64*core.KiB); err != nil {
			t.Fatal(err)
		}
	})
	for k, v := range a.Times {
		if v <= 0 {
			t.Errorf("%s: non-positive completion %v", k, v)
		}
		if b.Times[k] != v {
			t.Errorf("%s differs across worker counts: %v vs %v", k, v, b.Times[k])
		}
	}
	// The interconnect must matter: for each op/algo, at least two
	// topologies disagree on completion time.
	for _, op := range []string{"bcast/ring", "bcast/binomial", "allreduce/ring", "allreduce/recursive-doubling"} {
		distinct := make(map[float64]bool)
		for _, topo := range topoCollectivesTopos() {
			distinct[a.Times[topo+"/"+op]] = true
		}
		if len(distinct) < 2 {
			t.Errorf("%s: all topologies complete in identical time %v — topology axis inert", op, a.Times)
		}
	}
}

func TestFigure7ContentionMatters(t *testing.T) {
	res, err := Figure7(env(t))
	if err != nil {
		t.Fatal(err)
	}
	maxOf := func(vs []float64) float64 {
		m := 0.0
		for _, v := range vs {
			if v > m {
				m = v
			}
		}
		return m
	}
	noC := maxOf(res.Series["smpi-nocontention"])
	withC := maxOf(res.Series["smpi"])
	om := maxOf(res.Series["openmpi"])
	mp := maxOf(res.Series["mpich2"])
	// Paper: the no-contention model always underestimates.
	if noC >= om {
		t.Errorf("no-contention (%v) should underestimate OpenMPI (%v)", noC, om)
	}
	if noC >= withC {
		t.Errorf("no-contention (%v) should be below contention (%v)", noC, withC)
	}
	// Contention-aware SMPI lands near both real implementations.
	rel := func(a, b float64) float64 {
		if a > b {
			return a/b - 1
		}
		return b/a - 1
	}
	if rel(withC, om) > 0.35 {
		t.Errorf("SMPI (%v) too far from OpenMPI (%v)", withC, om)
	}
	if rel(om, mp) > 0.35 {
		t.Errorf("OpenMPI (%v) and MPICH2 (%v) should be close", om, mp)
	}
}

func TestFigure8LargeMessagesAccurate(t *testing.T) {
	res, err := Figure8(env(t))
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.Pred)
	// Large messages (the last two sizes, >=1MiB) must be within ~20%.
	for i := n - 2; i < n; i++ {
		if rel := res.Pred[i]/res.Ref[i] - 1; rel > 0.25 || rel < -0.25 {
			t.Errorf("size %d: smpi %v vs openmpi %v", res.X[i], res.Pred[i], res.Ref[i])
		}
	}
	// Small messages underestimate (the paper's known limitation).
	if res.Pred[0] > res.Ref[0] {
		t.Logf("note: small-message prediction above reference (paper expects underestimation)")
	}
}

func TestFigure9ConsistentAcrossProcs(t *testing.T) {
	res, err := Figure9(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.MeanPct() > 30 {
		t.Errorf("Figure 9 mean error %.1f%%, paper shows very consistent results", res.Summary.MeanPct())
	}
	// Time grows with the process count (total data scales with P).
	for i := 1; i < len(res.Pred); i++ {
		if res.Pred[i] <= res.Pred[i-1] {
			t.Errorf("scatter time should grow with procs: %v", res.Pred)
		}
	}
}

func TestFigure11ContentionAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("16-process 4MiB all-to-all is slow; covered by the full run")
	}
	res, err := Figure11(env(t))
	if err != nil {
		t.Fatal(err)
	}
	maxOf := func(vs []float64) float64 {
		m := 0.0
		for _, v := range vs {
			if v > m {
				m = v
			}
		}
		return m
	}
	noC := maxOf(res.Series["smpi-nocontention"])
	om := maxOf(res.Series["openmpi"])
	withC := maxOf(res.Series["smpi"])
	if noC >= om {
		t.Errorf("no-contention (%v) should badly underestimate all-to-all (%v)", noC, om)
	}
	// Paper: ~78% error without contention, <1% with (we accept 30%).
	if rel := withC/om - 1; rel > 0.3 || rel < -0.3 {
		t.Errorf("SMPI all-to-all %v vs OpenMPI %v", withC, om)
	}
}

func TestFigure12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("all-to-all size sweep is slow; covered by the full run")
	}
	res, err := Figure12(env(t))
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.Pred)
	for i := n - 2; i < n; i++ {
		if rel := res.Pred[i]/res.Ref[i] - 1; rel > 0.3 || rel < -0.3 {
			t.Errorf("size %d: smpi %v vs openmpi %v", res.X[i], res.Pred[i], res.Ref[i])
		}
	}
}

func TestFigure15TrendAndAccuracy(t *testing.T) {
	// Reduced payload keeps the test fast; the graph structure and
	// contention pattern are identical.
	res, err := Figure15(env(t), 512*1024)
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range []string{"A", "B"} {
		wh := res.OpenMPI["WH-"+class]
		bh := res.OpenMPI["BH-"+class]
		if bh <= wh {
			t.Errorf("class %s: BH (%v) should be slower than WH (%v) on the testbed", class, bh, wh)
		}
		whS := res.SMPI["WH-"+class]
		bhS := res.SMPI["BH-"+class]
		if bhS <= whS {
			t.Errorf("class %s: SMPI should predict BH slower than WH", class)
		}
	}
	// Paper: 8.11% average error, 23.5% worst. Accept a generous band.
	if res.Summary.MeanPct() > 30 {
		t.Errorf("DT mean error %.1f%%, paper ~8.1%%", res.Summary.MeanPct())
	}
}

func TestFigure16FoldingRatios(t *testing.T) {
	res, err := Figure16(env(t), 1.0/16, 2*float64(core.GiB))
	if err != nil {
		t.Fatal(err)
	}
	// Folding shrinks every configuration that also ran unfolded.
	var ratios []float64
	for key, plain := range res.Plain {
		folded := res.Folded[key]
		if folded <= 0 || folded >= plain {
			t.Errorf("%s: folded %v vs plain %v", key, folded, plain)
			continue
		}
		ratios = append(ratios, plain/folded)
	}
	if len(ratios) == 0 {
		t.Fatal("no unfolded runs completed")
	}
	// Paper: 11.9x average reduction, up to 40.5x. Require >=3x average.
	var sum float64
	for _, r := range ratios {
		sum += r
	}
	if avg := sum / float64(len(ratios)); avg < 3 {
		t.Errorf("average folding ratio %.1fx, paper reports 11.9x", avg)
	}
	// Class C configurations must be flagged OM without folding.
	if _, ran := res.Plain["SH-C"]; ran {
		t.Error("SH class C (448 procs) should be out-of-memory without folding")
	}
}

func TestFigure17SimulationFasterThanReal(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 17 sweeps large messages")
	}
	res, err := Figure17(env(t))
	if err != nil {
		t.Fatal(err)
	}
	for i, size := range res.Sizes {
		if res.SimWall[i].Seconds() >= res.RealTime[i] {
			t.Errorf("size %d: simulation wall %v not below real %vs", size, res.SimWall[i], res.RealTime[i])
		}
		// Predicted time tracks the testbed within 25% for these large sizes.
		if rel := res.SimTime[i]/res.RealTime[i] - 1; rel > 0.25 || rel < -0.25 {
			t.Errorf("size %d: predicted %v vs real %v", size, res.SimTime[i], res.RealTime[i])
		}
	}
}

func TestFigure18SamplingLinearity(t *testing.T) {
	// Bursts of ~65k pairs (2^22/16/4) are long enough (~1ms) to time
	// stably on a noisy CI machine; tiny bursts make the replayed means
	// jitter-dominated.
	res, err := Figure18(env(t), 22, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Executed bursts scale with the ratio: 16, 12, 8, 4 per rank x4.
	want := []int64{64, 48, 32, 16}
	for i, w := range want {
		if res.Executed[i] != w {
			t.Errorf("ratio %v: executed %d bursts, want %d", res.Ratios[i], res.Executed[i], w)
		}
	}
	// Simulated time stays flat (within 50%: wall-clock measurement noise
	// affects the replayed means).
	base := res.Simulated[0]
	if base <= 0 {
		t.Skip("compute too fast to measure")
	}
	for i, s := range res.Simulated {
		if rel := s/base - 1; rel > 0.5 || rel < -0.5 {
			t.Errorf("ratio %v: simulated %v drifted from %v", res.Ratios[i], s, base)
		}
	}
}

// TestGridPlacementAxisDeterministic sweeps the placement axis — including
// the seed-derived random mapping generated inside worker-pool jobs — and
// checks the acceptance property: bit-identical fingerprints at any
// -parallel worker count.
func TestGridPlacementAxisDeterministic(t *testing.T) {
	e := env(t)
	spec := GridSpec{
		Op:          "allreduce",
		Procs:       []int{8},
		Sizes:       []int64{64 * core.KiB},
		Models:      []string{"piecewise"},
		Backends:    []string{"surf"},
		Topologies:  []string{"fattree16", "torus16"},
		Placements:  []string{"block", "rr", "random"},
		Collectives: "auto",
	}
	fingerprints := make(map[string]int)
	for _, workers := range []int{1, 8} {
		withCampaign(e, workers, 11, func() {
			sum, err := e.GridCampaign(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := sum.Err(); err != nil {
				t.Fatal(err)
			}
			if sum.Jobs != 6 {
				t.Fatalf("grid expanded to %d jobs, want 6", sum.Jobs)
			}
			fingerprints[sum.Fingerprint()]++
		})
	}
	if len(fingerprints) != 1 {
		t.Errorf("placement-axis fingerprints differ across worker counts: %v", fingerprints)
	}
	if _, err := e.GridCampaign(GridSpec{
		Op: "scatter", Procs: []int{4}, Sizes: []int64{1024},
		Backends: []string{"surf"}, Placements: []string{"zigzag"},
	}); err == nil {
		t.Error("unknown placement should fail expansion")
	}
	if _, err := e.GridCampaign(GridSpec{
		Op: "scatter", Procs: []int{4}, Sizes: []int64{1024},
		Backends: []string{"surf"}, Collectives: "frobnicate=yes",
	}); err == nil {
		t.Error("unknown collective override should fail before running")
	}
}

// TestPlacementSweep runs the placement-vs-routing experiment and checks
// its structural claims: deterministic across worker counts, the forced
// ring allreduce on the oversubscribed fat-tree is strictly slower under
// round-robin than under block placement (the D-mod-k interaction), and on
// the torus block and rr tie exactly (vertex transitivity).
func TestPlacementSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("placement sweep is slow; run without -short")
	}
	e := env(t)
	var a, b *PlacementSweepResult
	withCampaign(e, 1, 5, func() {
		var err error
		if a, err = PlacementSweep(e, 64*core.KiB); err != nil {
			t.Fatal(err)
		}
	})
	withCampaign(e, 8, 5, func() {
		var err error
		if b, err = PlacementSweep(e, 64*core.KiB); err != nil {
			t.Fatal(err)
		}
	})
	for k, v := range a.Times {
		if v <= 0 {
			t.Errorf("%s: non-positive completion %v", k, v)
		}
		if b.Times[k] != v {
			t.Errorf("%s differs across worker counts: %v vs %v", k, v, b.Times[k])
		}
	}
	block := a.Times["fattree64/allreduce(ring)/block"]
	rr := a.Times["fattree64/allreduce(ring)/rr"]
	if !(rr > block) {
		t.Errorf("ring allreduce on fattree64: rr %v not slower than block %v — placement axis inert against D-mod-k", rr, block)
	}
	if tb, trr := a.Times["torus:4x4x4/allreduce(ring)/block"], a.Times["torus:4x4x4/allreduce(ring)/rr"]; tb != trr {
		t.Errorf("torus ring allreduce: block %v vs rr %v, want an exact tie (vertex transitivity)", tb, trr)
	}
}

// TestDynamicsFingerprintDeterministic sweeps the platform-event axis and
// checks the acceptance property: a campaign with mid-flight link
// degradation fingerprints bit-identically at any -parallel worker count,
// and the degraded scenario is measurably slower than the static one.
func TestDynamicsFingerprintDeterministic(t *testing.T) {
	e := env(t)
	spec := GridSpec{
		Op:         "alltoall",
		Procs:      []int{16},
		Sizes:      []int64{64 * core.KiB},
		Models:     []string{"piecewise"},
		Backends:   []string{"surf"},
		Topologies: []string{"fattree16"},
		Dynamics:   []string{"none", "@0.0005s link fattree16-l2-* scale 0.25"},
	}
	var sums []*campaign.Summary
	fingerprints := make(map[string]int)
	for _, workers := range []int{1, 8} {
		withCampaign(e, workers, 23, func() {
			sum, err := e.GridCampaign(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := sum.Err(); err != nil {
				t.Fatal(err)
			}
			if sum.Jobs != 2 {
				t.Fatalf("grid expanded to %d jobs, want 2 (static + degraded)", sum.Jobs)
			}
			sums = append(sums, sum)
			fingerprints[sum.Fingerprint()]++
		})
	}
	if len(fingerprints) != 1 {
		t.Errorf("dynamics-axis fingerprints differ across worker counts: %v", fingerprints)
	}
	static := sums[0].Results[0]
	degraded := sums[0].Results[1]
	if degraded.Tags["dynamics"] == "" || static.Tags["dynamics"] != "" {
		t.Fatalf("job order unexpected: tags %v / %v", static.Tags, degraded.Tags)
	}
	if degraded.Outcome.SimulatedTime <= static.Outcome.SimulatedTime {
		t.Errorf("spine degraded to 0.25 should slow the alltoall: static %v, degraded %v",
			static.Outcome.SimulatedTime, degraded.Outcome.SimulatedTime)
	}

	// Emulated backends have no LMM constraints to retune; the axis must
	// refuse them rather than silently ignore the schedule.
	if _, err := e.GridCampaign(GridSpec{
		Op: "scatter", Procs: []int{4}, Sizes: []int64{1024},
		Backends: []string{"openmpi"}, Dynamics: []string{"@1ms link griffon-* scale 0.5"},
	}); err == nil {
		t.Error("dynamics on an emulated backend should fail expansion")
	}
	// A malformed schedule fails expansion, not the job.
	if _, err := e.GridCampaign(GridSpec{
		Op: "scatter", Procs: []int{4}, Sizes: []int64{1024},
		Backends: []string{"surf"}, Dynamics: []string{"@wat link a-* scale 0.5"},
	}); err == nil {
		t.Error("malformed dynamics schedule should fail expansion")
	}
}
