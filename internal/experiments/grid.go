package experiments

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"smpigo/internal/campaign"
	"smpigo/internal/core"
	"smpigo/internal/dynamics"
	"smpigo/internal/obs"
	"smpigo/internal/placement"
	"smpigo/internal/platform"
	"smpigo/internal/skampi"
	"smpigo/internal/smpi"
	"smpigo/internal/surf"
	"smpigo/internal/topology"
)

// GridSpec describes an arbitrary scenario campaign beyond the paper's
// figures: the cross product of process counts, message sizes, models, and
// backends for one operation. A grid with 8 process counts, 10 sizes, and
// 3 models is 240 independent simulations — exactly the kind of sweep the
// serial harness could never afford and the campaign pool makes routine.
type GridSpec struct {
	// Op is the measured operation: "scatter", "alltoall", "bcast",
	// "allreduce", or "pingpong".
	Op string `json:"op"`
	// Procs are the process counts to sweep (pingpong always uses 2).
	Procs []int `json:"procs"`
	// Sizes are the per-rank message sizes in bytes.
	Sizes []int64 `json:"sizes"`
	// Models are the analytical point-to-point models to sweep for the
	// surf backend: "piecewise", "bestfit", "default", "ideal".
	Models []string `json:"models,omitempty"`
	// Backends selects timing backends: "surf" (analytical; crossed with
	// Models) and/or "openmpi", "mpich2" (packet-level testbed emulation).
	Backends []string `json:"backends,omitempty"`
	// Platform is "griffon" (default) or "gdx". Ignored when Topologies is
	// set.
	Platform string `json:"platform,omitempty"`
	// Topologies optionally adds a platform axis to the sweep: each entry
	// is "griffon", "gdx", a topology preset (fattree64, torus64,
	// dragonfly72, ...), or a topology shape string such as
	// "fattree:4x4:1x4", "torus:4x4x4", "dragonfly:9x4x2". Every scenario
	// point is then crossed with every topology.
	Topologies []string `json:"topologies,omitempty"`
	// Placements optionally adds a rank-placement axis: "block", "rr", or
	// "random" (see package placement). The random mapping derives from the
	// job's campaign seed, so fingerprints stay bit-identical at any
	// -parallel setting. Empty means the smpi default layout (round-robin
	// over all hosts, unpinned).
	Placements []string `json:"placements,omitempty"`
	// Collectives selects collective algorithm variants for every job, in
	// smpi.ParseAlgorithms grammar: "" or "default" for the package
	// defaults, "auto" for topology-keyed selection, or per-collective
	// overrides like "bcast=ring,allreduce=auto".
	Collectives string `json:"collectives,omitempty"`
	// Dynamics optionally adds a platform-event axis: each entry is a
	// dynamics schedule in the grammar of internal/dynamics ("" or "none"
	// for a static platform), so a sweep can compare the same scenarios on
	// healthy and degraded fabrics. Entries are canonicalized before
	// expansion; non-empty schedules require the surf backend. Events mutate
	// only per-job solver state, never the shared platform, so fingerprints
	// stay bit-identical at any -parallel setting.
	Dynamics []string `json:"dynamics,omitempty"`
	// Stats attaches a per-job obs.Stats to every simulation and records
	// the non-zero counters in each Outcome.Stats; campaign.Run aggregates
	// them into Summary.Stats. Counters never enter the fingerprint, so a
	// stats sweep fingerprints identically to a plain one.
	Stats bool `json:"stats,omitempty"`
	// SolverWorkers bounds each job's LMM worker pool (smpi.Config's
	// SolverWorkers field). Results are bit-identical at any setting, so —
	// like Stats — it never moves a fingerprint.
	SolverWorkers int `json:"solver_workers,omitempty"`
	// RateTolerance opts every surf job into bounded-staleness solving
	// (smpi.Config's RateTolerance field). 0 is exact. A positive eps
	// changes simulated times deterministically: fingerprints remain
	// bit-identical at any -parallel or SolverWorkers setting, but differ
	// from the exact-mode fingerprints.
	RateTolerance float64 `json:"rate_tolerance,omitempty"`
	// ShardIndex/ShardCount split the expanded grid by job-index range so
	// one sweep can run across several processes or machines: shard i of n
	// keeps points [i·P/n, (i+1)·P/n) of the P-point grid, with job IDs and
	// derived seeds identical to the unsharded run's. Campaign summaries of
	// all n shards, merged in shard order with campaign.Merge, fingerprint
	// identically to the unsharded campaign. ShardCount 0 (with ShardIndex
	// 0) means unsharded; n larger than the grid simply leaves some shards
	// empty.
	ShardIndex int `json:"shard_index,omitempty"`
	ShardCount int `json:"shard_count,omitempty"`
}

// gridPoint is one scenario coordinate of the expanded grid.
type gridPoint struct {
	topo      string // resolved platform name; empty means spec.Platform
	dynamics  string // canonical dynamics schedule; empty means static
	placement string // canonical placement policy; empty means unpinned
	procs     int
	size      int64
	backend   string
	model     string // empty for emulated backends
}

func (e *Env) gridModel(name string) (surf.NetModel, error) {
	switch strings.ToLower(name) {
	case "piecewise":
		return e.Piecewise, nil
	case "bestfit":
		return e.BestFit, nil
	case "default":
		return e.Default, nil
	case "ideal":
		return surf.Ideal(), nil
	default:
		return surf.NetModel{}, fmt.Errorf("unknown model %q (want piecewise, bestfit, default, ideal)", name)
	}
}

// gridPlatform resolves a platform-axis value: the paper's clusters by
// name, then topology presets and shape strings. Generated platforms are
// cached on the env so every job of a sweep shares one instance (and its
// memoized route table).
func (e *Env) gridPlatform(name string) (*platform.Platform, error) {
	switch strings.ToLower(name) {
	case "", "griffon":
		return e.Griffon, nil
	case "gdx":
		return e.Gdx, nil
	}
	e.topoMu.Lock()
	defer e.topoMu.Unlock()
	if p, ok := e.topoPlatforms[name]; ok {
		return p, nil
	}
	spec, err := topology.ParseSpec(name)
	if err != nil {
		return nil, fmt.Errorf("unknown platform %q (want griffon, gdx, or a topology: %w)", name, err)
	}
	p, err := spec.Build()
	if err != nil {
		return nil, err
	}
	if e.topoPlatforms == nil {
		e.topoPlatforms = make(map[string]*platform.Platform)
	}
	e.topoPlatforms[name] = p
	return p, nil
}

// expand validates the spec and returns the scenario points in grid order.
// Repeated list elements are deduplicated, and pingpong — which always runs
// between two fixed endpoints — collapses the procs dimension.
func (spec GridSpec) expand() ([]gridPoint, error) {
	if len(spec.Procs) == 0 || len(spec.Sizes) == 0 {
		return nil, fmt.Errorf("grid: need at least one process count and one size")
	}
	if len(spec.Backends) == 0 {
		return nil, fmt.Errorf("grid: need at least one backend")
	}
	procCounts := spec.Procs
	op := strings.ToLower(spec.Op)
	if op == "pingpong" {
		procCounts = []int{2}
	}
	if op == "allreduce" {
		for _, size := range spec.Sizes {
			if err := checkFloat64Payload("grid: allreduce", size); err != nil {
				return nil, err
			}
		}
	}
	topos := spec.Topologies
	if len(topos) == 0 {
		topos = []string{""}
	}
	places := make([]string, 0, len(spec.Placements))
	for _, pl := range spec.Placements {
		canonical, err := placement.Normalize(pl)
		if err != nil {
			return nil, fmt.Errorf("grid: %w", err)
		}
		places = append(places, canonical)
	}
	if len(places) == 0 {
		places = []string{""}
	}
	// Canonicalize the dynamics axis up front so "2ms" and "0.002s" variants
	// of one schedule collapse to one grid point.
	dyns := make([]string, 0, len(spec.Dynamics))
	for _, d := range spec.Dynamics {
		sched, err := dynamics.Parse(d)
		if err != nil {
			return nil, fmt.Errorf("grid: dynamics %q: %w", d, err)
		}
		if sched == nil {
			dyns = append(dyns, "")
		} else {
			dyns = append(dyns, sched.String())
		}
	}
	if len(dyns) == 0 {
		dyns = []string{""}
	}
	seen := make(map[gridPoint]bool)
	var points []gridPoint
	add := func(pt gridPoint) {
		if !seen[pt] {
			seen[pt] = true
			points = append(points, pt)
		}
	}
	for _, topo := range topos {
		for _, dyn := range dyns {
			for _, place := range places {
				for _, procs := range procCounts {
					if procs < 2 {
						return nil, fmt.Errorf("grid: process count %d below 2", procs)
					}
					for _, size := range spec.Sizes {
						if size <= 0 {
							return nil, fmt.Errorf("grid: non-positive size %d", size)
						}
						for _, backend := range spec.Backends {
							backend = strings.ToLower(backend)
							switch backend {
							case "surf":
								models := spec.Models
								if len(models) == 0 {
									models = []string{"piecewise"}
								}
								for _, m := range models {
									add(gridPoint{topo, dyn, place, procs, size, backend, strings.ToLower(m)})
								}
							case "openmpi", "mpich2":
								if dyn != "" {
									return nil, fmt.Errorf("grid: dynamics require the surf backend, got %q", backend)
								}
								add(gridPoint{topo, dyn, place, procs, size, backend, ""})
							default:
								return nil, fmt.Errorf("grid: unknown backend %q (want surf, openmpi, mpich2)", backend)
							}
						}
					}
				}
			}
		}
	}
	return shardSlice(points, spec.ShardIndex, spec.ShardCount)
}

// shardSlice keeps shard index's contiguous job-index range of the expanded
// grid. The balanced-split arithmetic (lo = i·P/n) guarantees the n ranges
// tile [0, P) exactly — every point lands in precisely one shard, shards
// differ in size by at most one point, and a shard count beyond the grid
// size yields empty shards rather than an error.
func shardSlice(points []gridPoint, index, count int) ([]gridPoint, error) {
	if count == 0 {
		if index != 0 {
			return nil, fmt.Errorf("grid: shard index %d without a shard count", index)
		}
		return points, nil
	}
	if count < 0 {
		return nil, fmt.Errorf("grid: negative shard count %d", count)
	}
	if index < 0 || index >= count {
		return nil, fmt.Errorf("grid: shard index %d out of range [0,%d)", index, count)
	}
	lo := index * len(points) / count
	hi := (index + 1) * len(points) / count
	return points[lo:hi], nil
}

// ParseShard parses the "i/n" shard shorthand (e.g. "0/2") used by the
// campaign CLI flag and the service API into ShardIndex/ShardCount values.
// Range validation happens at expansion time, where the grid size is known.
func ParseShard(s string) (index, count int, err error) {
	i, n, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("shard %q: want \"i/n\", e.g. \"0/2\"", s)
	}
	if index, err = strconv.Atoi(strings.TrimSpace(i)); err != nil {
		return 0, 0, fmt.Errorf("shard %q: bad index: %v", s, err)
	}
	if count, err = strconv.Atoi(strings.TrimSpace(n)); err != nil {
		return 0, 0, fmt.Errorf("shard %q: bad count: %v", s, err)
	}
	return index, count, nil
}

func (pt gridPoint) id(op string) string {
	id := "grid/" + op
	if pt.topo != "" {
		id += "/topo=" + pt.topo
	}
	if pt.dynamics != "" {
		// Canonical schedules contain spaces; keep IDs single-token.
		id += "/dyn=" + strings.ReplaceAll(pt.dynamics, " ", "_")
	}
	if pt.placement != "" {
		id += "/place=" + pt.placement
	}
	id += fmt.Sprintf("/procs=%d/size=%s/%s", pt.procs, core.FormatBytes(pt.size), pt.backend)
	if pt.model != "" {
		id += "/" + pt.model
	}
	return id
}

func (pt gridPoint) tags(op string) map[string]string {
	t := map[string]string{
		"op":      op,
		"procs":   fmt.Sprint(pt.procs),
		"size":    core.FormatBytes(pt.size),
		"backend": pt.backend,
	}
	if pt.topo != "" {
		t["topo"] = pt.topo
	}
	if pt.dynamics != "" {
		t["dynamics"] = pt.dynamics
	}
	if pt.placement != "" {
		t["placement"] = pt.placement
	}
	if pt.model != "" {
		t["model"] = pt.model
	}
	return t
}

// Jobs expands the spec and returns how many simulations it holds (after
// shard slicing), validating every axis on the way — the pre-flight check
// the campaign service runs before accepting a request, so malformed specs
// fail with a 400 instead of a queued failure.
func (spec GridSpec) Jobs() (int, error) {
	points, err := spec.expand()
	if err != nil {
		return 0, err
	}
	return len(points), nil
}

// CampaignOptions adjusts how GridCampaignOpts executes an expanded grid.
// The zero value reproduces GridCampaign exactly.
type CampaignOptions struct {
	// Ctx cancels the campaign mid-run (see campaign.RunAll); nil means
	// context.Background().
	Ctx context.Context
	// Workers overrides Env.Workers when non-zero, so a shared Env (it is a
	// process-wide singleton) can serve callers with different pool sizes
	// without mutation.
	Workers int
	// Seed overrides Env.Seed when non-nil, for the same reason.
	Seed *uint64
	// OnResult streams per-job results in completion order (see
	// campaign.Options.OnResult).
	OnResult func(i int, r campaign.Result)
}

// GridCampaign expands the spec into campaign jobs and runs them on the
// env's worker pool, returning the full summary (including failures, so a
// broken scenario point does not void the rest of the sweep).
func (e *Env) GridCampaign(spec GridSpec) (*campaign.Summary, error) {
	return e.GridCampaignOpts(spec, CampaignOptions{})
}

// GridCampaignOpts is GridCampaign with per-call context, worker-pool,
// seed, and result-streaming control — the entry point the campaign service
// uses, where one shared Env serves many concurrent requests.
func (e *Env) GridCampaignOpts(spec GridSpec, o CampaignOptions) (*campaign.Summary, error) {
	points, err := spec.expand()
	if err != nil {
		return nil, err
	}
	algos, err := smpi.ParseAlgorithms(spec.Collectives)
	if err != nil {
		return nil, fmt.Errorf("grid: %w", err)
	}
	op := strings.ToLower(spec.Op)
	jobs := make([]campaign.Job, 0, len(points))
	for _, pt := range points {
		platName := pt.topo
		if platName == "" {
			platName = spec.Platform
		}
		plat, err := e.gridPlatform(platName)
		if err != nil {
			return nil, err
		}
		cfg, err := e.gridConfig(plat, pt)
		if err != nil {
			return nil, err
		}
		cfg.Algorithms = algos
		cfg.SolverWorkers = spec.SolverWorkers
		cfg.RateTolerance = spec.RateTolerance
		if pt.dynamics != "" {
			// Re-parse the canonical form per job: schedules are armed on the
			// job's own kernel and mutate only its solver state, so concurrent
			// jobs sharing the cached platform never observe each other.
			sched, err := dynamics.Parse(pt.dynamics)
			if err != nil {
				return nil, fmt.Errorf("grid: dynamics %q: %w", pt.dynamics, err)
			}
			cfg.Dynamics = sched
		}
		// Each job gets its own Stats sink: jobs run concurrently, and the
		// wrapped Run flattens the counters into the outcome after the
		// simulation finishes (the sink is quiescent by then).
		var st *obs.Stats
		if spec.Stats {
			st = new(obs.Stats)
			cfg.Stats = st
		}
		job, err := gridJob(op, pt, plat, cfg)
		if err != nil {
			return nil, err
		}
		if st != nil {
			inner := job.Run
			job.Run = func(ctx *campaign.Ctx) (*campaign.Outcome, error) {
				out, err := inner(ctx)
				if out != nil {
					out.Stats = obs.NonZero(st.Flat())
				}
				return out, err
			}
		}
		jobs = append(jobs, job)
	}
	ctx := o.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	workers := o.Workers
	if workers == 0 {
		workers = e.Workers
	}
	seed := e.Seed
	if o.Seed != nil {
		seed = *o.Seed
	}
	return campaign.RunAll(ctx, campaign.Options{Workers: workers, Seed: seed, OnResult: o.OnResult}, jobs), nil
}

func (e *Env) gridConfig(plat *platform.Platform, pt gridPoint) (smpi.Config, error) {
	switch pt.backend {
	case "surf":
		m, err := e.gridModel(pt.model)
		if err != nil {
			return smpi.Config{}, err
		}
		return surfConfig(plat, m), nil
	case "mpich2":
		cfg := emuConfig(plat)
		cfg.Impl = mpich2()
		return cfg, nil
	default: // openmpi
		return emuConfig(plat), nil
	}
}

func gridJob(op string, pt gridPoint, plat *platform.Platform, cfg smpi.Config) (campaign.Job, error) {
	runs := map[string]func(smpi.Config, int, int64) (*collectiveRun, error){
		"scatter":   runScatter,
		"alltoall":  runAlltoall,
		"bcast":     runBcast,
		"allreduce": runAllreduce,
	}
	if run, ok := runs[op]; ok {
		j := placedCollectiveJob(pt.id(op), cfg, pt.placement, pt.procs, pt.size, run)
		j.Tags = pt.tags(op)
		return j, nil
	}
	if op != "pingpong" {
		return campaign.Job{}, fmt.Errorf("grid: unknown op %q (want scatter, alltoall, bcast, allreduce, pingpong)", op)
	}
	size := pt.size
	place := pt.placement
	return campaign.Job{
		ID:   pt.id(op),
		Tags: pt.tags(op),
		Run: func(ctx *campaign.Ctx) (*campaign.Outcome, error) {
			base := cfg
			base.Seed = ctx.Seed
			// A placed ping-pong runs between the first two ranks of the
			// mapping (e.g. same leaf under "block", distinct leaves under
			// "rr") instead of the platform's first two hosts.
			a, b := plat.HostByID(0), plat.HostByID(1)
			if place != "" {
				hosts, err := placement.Generate(place, plat, 2, ctx.Seed)
				if err != nil {
					return nil, err
				}
				a, b = hosts[0], hosts[1]
			}
			samples, err := skampi.PingPong(skampi.PingPongConfig{
				Base: base,
				A:    a, B: b,
				Sizes: []int64{size},
			})
			if err != nil {
				return nil, err
			}
			return &campaign.Outcome{
				SimulatedTime: core.Time(samples[0].Time),
				Values:        map[string]float64{"oneway_s": samples[0].Time},
				Payload:       samples,
			}, nil
		},
	}, nil
}

// GridTable renders a grid campaign summary as an aligned table, one row
// per scenario point in grid order.
func GridTable(spec GridSpec, sum *campaign.Summary) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Campaign: %s grid (%d jobs, %d workers, seed %d)", spec.Op, sum.Jobs, sum.Workers, sum.Seed),
		Header: []string{"topo", "place", "procs", "size", "backend", "model", "simulated_s", "wall_s"},
	}
	for i := range sum.Results {
		r := &sum.Results[i]
		model := r.Tags["model"]
		if model == "" {
			model = "-"
		}
		topo := r.Tags["topo"]
		if topo == "" {
			if topo = spec.Platform; topo == "" {
				topo = "griffon"
			}
		}
		place := r.Tags["placement"]
		if place == "" {
			place = "-"
		}
		if r.Err != nil {
			reason := "error"
			if r.Panicked {
				reason = "panic"
			}
			t.Add(topo, place, r.Tags["procs"], r.Tags["size"], r.Tags["backend"], model, reason, r.Wall.Seconds())
			// Surface the failure reason (first line only: panics carry a
			// full stack) so broken sweeps are diagnosable without -json.
			msg := r.Error
			if i := strings.IndexByte(msg, '\n'); i >= 0 {
				msg = msg[:i]
			}
			t.Note("%s: %s", r.ID, msg)
			continue
		}
		t.Add(topo, place, r.Tags["procs"], r.Tags["size"], r.Tags["backend"], model,
			float64(r.Outcome.SimulatedTime), r.Wall.Seconds())
	}
	t.Note("total simulated %.6gs, max %.6gs, campaign wall %.3gs, %d failed",
		float64(sum.TotalSimulated), float64(sum.MaxSimulated), sum.Wall.Seconds(), sum.Failed)
	t.Note("fingerprint %s (bit-identical at any -parallel)", sum.Fingerprint())
	return t
}
