// Package experiments contains one harness per figure of the paper's
// evaluation (Section 7). Each FigureN function runs the corresponding
// workload on the appropriate backends and returns a Table whose rows match
// the series the paper plots, plus the error summaries quoted in the text.
// The cmd/experiments binary and the repository's benchmark suite are thin
// wrappers around these harnesses; EXPERIMENTS.md records paper-vs-measured
// for each figure.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result: a title, a header, aligned rows,
// and free-form notes (error summaries, observations).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.6g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a formatted note line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}
