package experiments

import (
	"fmt"

	"smpigo/internal/core"
	"smpigo/internal/metrics"
	"smpigo/internal/nas"
	"smpigo/internal/smpi"
)

// DTResult holds Figure 15: NAS DT execution times, SMPI vs emulated
// OpenMPI, for the WH and BH graphs on classes A and B.
type DTResult struct {
	Table *Table
	// Times[graph][class] -> (smpi, openmpi) seconds.
	SMPI, OpenMPI map[string]float64
	Summary       metrics.Summary
}

// dtRun executes one DT instance.
func dtRun(env *Env, cfg nas.DTConfig, backend smpi.Backend, payload int) (*smpi.Report, error) {
	procs, err := nas.DTProcs(cfg.Graph, cfg.Class)
	if err != nil {
		return nil, err
	}
	cfg.PayloadBytes = payload
	app, _ := nas.DT(cfg)
	var run smpi.Config
	if backend == smpi.BackendSurf {
		run = surfConfig(env.Griffon, env.Piecewise)
	} else {
		run = emuConfig(env.Griffon)
	}
	run.Procs = procs
	return smpi.Run(run, app)
}

// Figure15 reproduces Figure 15: DT WH and BH for classes A and B, SMPI
// prediction vs emulated OpenMPI. Payload can be reduced for fast test
// runs; 0 uses the class defaults.
func Figure15(env *Env, payload int) (*DTResult, error) {
	res := &DTResult{
		Table: &Table{
			Title:  "Figure 15: NAS DT execution time (seconds)",
			Header: []string{"graph", "class", "smpi_s", "openmpi_s", "err_pct"},
		},
		SMPI:    make(map[string]float64),
		OpenMPI: make(map[string]float64),
	}
	var pred, ref []float64
	for _, class := range []nas.DTClass{nas.ClassA, nas.ClassB} {
		for _, graph := range []nas.DTGraph{nas.WH, nas.BH} {
			s, err := dtRun(env, nas.DTConfig{Graph: graph, Class: class}, smpi.BackendSurf, payload)
			if err != nil {
				return nil, err
			}
			o, err := dtRun(env, nas.DTConfig{Graph: graph, Class: class}, smpi.BackendEmu, payload)
			if err != nil {
				return nil, err
			}
			key := fmt.Sprintf("%s-%c", graph, class)
			res.SMPI[key] = float64(s.SimulatedTime)
			res.OpenMPI[key] = float64(o.SimulatedTime)
			pred = append(pred, float64(s.SimulatedTime))
			ref = append(ref, float64(o.SimulatedTime))
			res.Table.Add(string(graph), string(class),
				float64(s.SimulatedTime), float64(o.SimulatedTime),
				metrics.ToPercent(metrics.LogError(float64(s.SimulatedTime), float64(o.SimulatedTime))))
		}
	}
	res.Summary = metrics.Summarize(pred, ref)
	res.Table.Note("overall: %s", res.Summary)
	res.Table.Note("trend check: BH slower than WH on both backends for each class")
	return res, nil
}

// RAMResult holds Figure 16: maximum per-rank RSS with and without RAM
// folding, including the out-of-memory markers.
type RAMResult struct {
	Table *Table
	// Plain and Folded map "graph-class" to bytes; a missing Plain entry
	// means the unfolded run would not fit in HostRAM (the paper's "OM").
	Plain, Folded map[string]float64
	// HostRAM is the assumed single-node memory budget in bytes.
	HostRAM float64
}

// Figure16 reproduces Figure 16: per-process memory footprint of DT with
// and without RAM folding, classes A-C, all three graphs. Runs use the
// no-contention analytical backend (the RSS metric does not depend on
// network timing) and the class payload scaled by payloadScale in (0,1]
// to keep test runs fast; OM classification always uses the class scale.
func Figure16(env *Env, payloadScale float64, hostRAM float64) (*RAMResult, error) {
	if payloadScale <= 0 || payloadScale > 1 {
		payloadScale = 1
	}
	if hostRAM <= 0 {
		hostRAM = 2 * float64(core.GiB)
	}
	res := &RAMResult{
		Table: &Table{
			Title:  "Figure 16: DT max RSS per process (MiB), with and without RAM folding",
			Header: []string{"graph", "class", "procs", "smpi_MiB", "folded_MiB", "ratio"},
		},
		Plain:   make(map[string]float64),
		Folded:  make(map[string]float64),
		HostRAM: hostRAM,
	}
	cfgRun := surfConfig(env.Griffon, env.Piecewise)
	cfgRun.NoContention = true // timing-irrelevant; avoids O(flows^2) sharing cost

	for _, class := range []nas.DTClass{nas.ClassA, nas.ClassB, nas.ClassC} {
		for _, graph := range []nas.DTGraph{nas.WH, nas.BH, nas.SH} {
			procs, err := nas.DTProcs(graph, class)
			if err != nil {
				return nil, err
			}
			key := fmt.Sprintf("%s-%c", graph, class)
			base := nas.DTConfig{Graph: graph, Class: class}
			payload := int(payloadScale * float64(dtClassPayload(class)))

			// Folded run always fits.
			fold := base
			fold.Fold = true
			fold.PayloadBytes = payload
			run := cfgRun
			run.Procs = procs
			fApp, _ := nas.DT(fold)
			fRep, err := smpi.Run(run, fApp)
			if err != nil {
				return nil, fmt.Errorf("folded %s: %w", key, err)
			}
			res.Folded[key] = fRep.MaxPeakRSS / payloadScale

			// Unfolded run: classify OM against the unscaled footprint.
			unscaled := float64(procs) * 2 * float64(dtClassPayload(class))
			if unscaled > hostRAM {
				res.Table.Add(string(graph), string(class), procs, "OM",
					res.Folded[key]/float64(core.MiB), "-")
				continue
			}
			plain := base
			plain.PayloadBytes = payload
			pApp, _ := nas.DT(plain)
			pRep, err := smpi.Run(run, pApp)
			if err != nil {
				return nil, fmt.Errorf("plain %s: %w", key, err)
			}
			res.Plain[key] = pRep.MaxPeakRSS / payloadScale
			res.Table.Add(string(graph), string(class), procs,
				res.Plain[key]/float64(core.MiB),
				res.Folded[key]/float64(core.MiB),
				fmt.Sprintf("%.1fx", res.Plain[key]/res.Folded[key]))
		}
	}
	res.Table.Note("host RAM budget: %s; OM = out of memory without folding (paper's OM labels)",
		core.FormatBytes(int64(hostRAM)))
	return res, nil
}

// dtClassPayload mirrors the nas package's class payload table for OM
// classification.
func dtClassPayload(class nas.DTClass) int {
	switch class {
	case nas.ClassS:
		return 64 * int(core.KiB)
	case nas.ClassW:
		return 256 * int(core.KiB)
	case nas.ClassA:
		return 4 * int(core.MiB)
	case nas.ClassB:
		return 6 * int(core.MiB)
	default:
		return 8 * int(core.MiB)
	}
}
