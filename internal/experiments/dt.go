package experiments

import (
	"fmt"

	"smpigo/internal/campaign"
	"smpigo/internal/core"
	"smpigo/internal/metrics"
	"smpigo/internal/nas"
	"smpigo/internal/smpi"
)

// DTResult holds Figure 15: NAS DT execution times, SMPI vs emulated
// OpenMPI, for the WH and BH graphs on classes A and B.
type DTResult struct {
	Table *Table
	// Times[graph][class] -> (smpi, openmpi) seconds.
	SMPI, OpenMPI map[string]float64
	Summary       metrics.Summary
}

// dtRun executes one DT instance.
func dtRun(env *Env, cfg nas.DTConfig, backend smpi.Backend, payload int, seed uint64) (*smpi.Report, error) {
	procs, err := nas.DTProcs(cfg.Graph, cfg.Class)
	if err != nil {
		return nil, err
	}
	cfg.PayloadBytes = payload
	app, _ := nas.DT(cfg)
	var run smpi.Config
	if backend == smpi.BackendSurf {
		run = surfConfig(env.Griffon, env.Piecewise)
	} else {
		run = emuConfig(env.Griffon)
	}
	run.Procs = procs
	run.Seed = seed
	return smpi.Run(run, app)
}

// dtJob wraps one DT instance as a campaign job with the report as payload.
func dtJob(id string, env *Env, cfg nas.DTConfig, backend smpi.Backend, payload int) campaign.Job {
	return campaign.Job{
		ID:   id,
		Tags: map[string]string{"app": "dt", "graph": string(cfg.Graph), "class": string(cfg.Class)},
		Run: func(ctx *campaign.Ctx) (*campaign.Outcome, error) {
			rep, err := dtRun(env, cfg, backend, payload, ctx.Seed)
			if err != nil {
				return nil, err
			}
			return &campaign.Outcome{
				SimulatedTime: rep.SimulatedTime,
				Values:        map[string]float64{"max_rss": rep.MaxPeakRSS},
				Payload:       rep,
			}, nil
		},
	}
}

// Figure15 reproduces Figure 15: DT WH and BH for classes A and B, SMPI
// prediction vs emulated OpenMPI. Payload can be reduced for fast test
// runs; 0 uses the class defaults.
func Figure15(env *Env, payload int) (*DTResult, error) {
	res := &DTResult{
		Table: &Table{
			Title:  "Figure 15: NAS DT execution time (seconds)",
			Header: []string{"graph", "class", "smpi_s", "openmpi_s", "err_pct"},
		},
		SMPI:    make(map[string]float64),
		OpenMPI: make(map[string]float64),
	}
	// The per-(graph, class) payload scan fans out as one campaign: each
	// scenario point runs on both backends concurrently.
	type point struct {
		graph nas.DTGraph
		class nas.DTClass
	}
	var points []point
	var jobs []campaign.Job
	for _, class := range []nas.DTClass{nas.ClassA, nas.ClassB} {
		for _, graph := range []nas.DTGraph{nas.WH, nas.BH} {
			points = append(points, point{graph, class})
			cfg := nas.DTConfig{Graph: graph, Class: class}
			id := fmt.Sprintf("fig15/%s-%c", graph, class)
			jobs = append(jobs,
				dtJob(id+"/smpi", env, cfg, smpi.BackendSurf, payload),
				dtJob(id+"/openmpi", env, cfg, smpi.BackendEmu, payload),
			)
		}
	}
	outs, err := env.runCampaign(jobs)
	if err != nil {
		return nil, err
	}
	var pred, ref []float64
	for i, pt := range points {
		s := outs[2*i].Payload.(*smpi.Report)
		o := outs[2*i+1].Payload.(*smpi.Report)
		key := fmt.Sprintf("%s-%c", pt.graph, pt.class)
		res.SMPI[key] = float64(s.SimulatedTime)
		res.OpenMPI[key] = float64(o.SimulatedTime)
		pred = append(pred, float64(s.SimulatedTime))
		ref = append(ref, float64(o.SimulatedTime))
		res.Table.Add(string(pt.graph), string(pt.class),
			float64(s.SimulatedTime), float64(o.SimulatedTime),
			metrics.ToPercent(metrics.LogError(float64(s.SimulatedTime), float64(o.SimulatedTime))))
	}
	res.Summary = metrics.Summarize(pred, ref)
	res.Table.Note("overall: %s", res.Summary)
	res.Table.Note("trend check: BH slower than WH on both backends for each class")
	return res, nil
}

// RAMResult holds Figure 16: maximum per-rank RSS with and without RAM
// folding, including the out-of-memory markers.
type RAMResult struct {
	Table *Table
	// Plain and Folded map "graph-class" to bytes; a missing Plain entry
	// means the unfolded run would not fit in HostRAM (the paper's "OM").
	Plain, Folded map[string]float64
	// HostRAM is the assumed single-node memory budget in bytes.
	HostRAM float64
}

// Figure16 reproduces Figure 16: per-process memory footprint of DT with
// and without RAM folding, classes A-C, all three graphs. Runs use the
// no-contention analytical backend (the RSS metric does not depend on
// network timing) and the class payload scaled by payloadScale in (0,1]
// to keep test runs fast; OM classification always uses the class scale.
func Figure16(env *Env, payloadScale float64, hostRAM float64) (*RAMResult, error) {
	if payloadScale <= 0 || payloadScale > 1 {
		payloadScale = 1
	}
	if hostRAM <= 0 {
		hostRAM = 2 * float64(core.GiB)
	}
	res := &RAMResult{
		Table: &Table{
			Title:  "Figure 16: DT max RSS per process (MiB), with and without RAM folding",
			Header: []string{"graph", "class", "procs", "smpi_MiB", "folded_MiB", "ratio"},
		},
		Plain:   make(map[string]float64),
		Folded:  make(map[string]float64),
		HostRAM: hostRAM,
	}
	cfgRun := surfConfig(env.Griffon, env.Piecewise)
	cfgRun.NoContention = true // timing-irrelevant; avoids O(flows^2) sharing cost

	// One campaign covers every configuration: a folded run for each
	// (graph, class), plus an unfolded run when it fits in hostRAM.
	type cfgPoint struct {
		graph    nas.DTGraph
		class    nas.DTClass
		procs    int
		key      string
		foldIdx  int
		plainIdx int // -1 when the unfolded run would not fit (paper's OM)
	}
	runJob := func(id string, dcfg nas.DTConfig, procs int) campaign.Job {
		return campaign.Job{
			ID:   id,
			Tags: map[string]string{"app": "dt", "graph": string(dcfg.Graph), "class": string(dcfg.Class)},
			Run: func(ctx *campaign.Ctx) (*campaign.Outcome, error) {
				run := cfgRun
				run.Procs = procs
				run.Seed = ctx.Seed
				app, _ := nas.DT(dcfg)
				rep, err := smpi.Run(run, app)
				if err != nil {
					return nil, err
				}
				return &campaign.Outcome{
					SimulatedTime: rep.SimulatedTime,
					Values:        map[string]float64{"max_rss": rep.MaxPeakRSS},
					Payload:       rep,
				}, nil
			},
		}
	}
	var points []cfgPoint
	var jobs []campaign.Job
	for _, class := range []nas.DTClass{nas.ClassA, nas.ClassB, nas.ClassC} {
		for _, graph := range []nas.DTGraph{nas.WH, nas.BH, nas.SH} {
			procs, err := nas.DTProcs(graph, class)
			if err != nil {
				return nil, err
			}
			pt := cfgPoint{
				graph: graph, class: class, procs: procs,
				key: fmt.Sprintf("%s-%c", graph, class), plainIdx: -1,
			}
			base := nas.DTConfig{Graph: graph, Class: class}
			payload := int(payloadScale * float64(dtClassPayload(class)))

			fold := base
			fold.Fold = true
			fold.PayloadBytes = payload
			pt.foldIdx = len(jobs)
			jobs = append(jobs, runJob("fig16/"+pt.key+"/folded", fold, procs))

			// Classify OM against the unscaled footprint: only runs that fit
			// in hostRAM execute unfolded.
			if unscaled := float64(procs) * 2 * float64(dtClassPayload(class)); unscaled <= hostRAM {
				plain := base
				plain.PayloadBytes = payload
				pt.plainIdx = len(jobs)
				jobs = append(jobs, runJob("fig16/"+pt.key+"/plain", plain, procs))
			}
			points = append(points, pt)
		}
	}
	outs, err := env.runCampaign(jobs)
	if err != nil {
		return nil, err
	}
	for _, pt := range points {
		fRep := outs[pt.foldIdx].Payload.(*smpi.Report)
		res.Folded[pt.key] = fRep.MaxPeakRSS / payloadScale
		if pt.plainIdx < 0 {
			res.Table.Add(string(pt.graph), string(pt.class), pt.procs, "OM",
				res.Folded[pt.key]/float64(core.MiB), "-")
			continue
		}
		pRep := outs[pt.plainIdx].Payload.(*smpi.Report)
		res.Plain[pt.key] = pRep.MaxPeakRSS / payloadScale
		res.Table.Add(string(pt.graph), string(pt.class), pt.procs,
			res.Plain[pt.key]/float64(core.MiB),
			res.Folded[pt.key]/float64(core.MiB),
			fmt.Sprintf("%.1fx", res.Plain[pt.key]/res.Folded[pt.key]))
	}
	res.Table.Note("host RAM budget: %s; OM = out of memory without folding (paper's OM labels)",
		core.FormatBytes(int64(hostRAM)))
	return res, nil
}

// dtClassPayload mirrors the nas package's class payload table for OM
// classification.
func dtClassPayload(class nas.DTClass) int {
	switch class {
	case nas.ClassS:
		return 64 * int(core.KiB)
	case nas.ClassW:
		return 256 * int(core.KiB)
	case nas.ClassA:
		return 4 * int(core.MiB)
	case nas.ClassB:
		return 6 * int(core.MiB)
	default:
		return 8 * int(core.MiB)
	}
}
