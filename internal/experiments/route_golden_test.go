package experiments

import (
	"testing"

	"smpigo/internal/core"
)

// implicitRoutingFingerprint is the fingerprint of a cross-topology campaign
// (allreduce, 16 procs, 64KiB, fattree16/torus16/dragonfly72 × block/rr
// placement, auto collectives, seed 5) recorded while the topology
// generators still materialized per-pair route tables. Keeping it pinned
// proves the implicit O(1)-state routers of the Router API redesign resolve
// every route link-for-link as the old tables did: any deviation in link
// sets, ordering, or latency would shift simulated timestamps, and the
// fingerprint hashes every simulated time in the summary.
const implicitRoutingFingerprint = "c37b74579cd4c210"

// TestImplicitRoutingFingerprintUnchanged re-runs the cross-topology
// campaign over all three generator families and asserts the
// pre-redesign golden fingerprint, at two worker counts (covering the
// any-parallel determinism property on the way).
func TestImplicitRoutingFingerprintUnchanged(t *testing.T) {
	e := env(t)
	spec := GridSpec{
		Op:          "allreduce",
		Procs:       []int{16},
		Sizes:       []int64{64 * core.KiB},
		Models:      []string{"piecewise"},
		Backends:    []string{"surf"},
		Topologies:  []string{"fattree16", "torus16", "dragonfly72"},
		Placements:  []string{"block", "rr"},
		Collectives: "auto",
	}
	for _, workers := range []int{1, 4} {
		withCampaign(e, workers, 5, func() {
			sum, err := e.GridCampaign(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := sum.Err(); err != nil {
				t.Fatal(err)
			}
			if got := sum.Fingerprint(); got != implicitRoutingFingerprint {
				t.Errorf("workers=%d: campaign fingerprint %s, want pre-redesign golden %s — implicit routing changed simulated timestamps",
					workers, got, implicitRoutingFingerprint)
			}
		})
	}
}
