package experiments

import (
	"fmt"

	"smpigo/internal/campaign"
	"smpigo/internal/core"
	"smpigo/internal/smpi"
	"smpigo/internal/topology"
)

// TopoCollectivesResult holds the cross-topology collectives comparison:
// ring vs tree broadcast and allreduce on the flat griffon cluster and the
// three generated interconnects. Times maps "<topo>/<op>/<algo>" to the
// collective's completion time in seconds.
type TopoCollectivesResult struct {
	Table *Table
	Times map[string]float64
}

// topoCollectivesTopos are the platforms the comparison sweeps: the paper's
// flat hierarchical cluster plus one of each generated shape, all with at
// least TopoCollectivesProcs hosts.
func topoCollectivesTopos() []string {
	return []string{"griffon", "fattree64", "torus64", "dragonfly72"}
}

// TopoCollectivesProcs is the rank count of the comparison; 64 fills
// fattree64 and torus64 exactly, so every host link is exercised.
const TopoCollectivesProcs = 64

// runBcast measures one broadcast of chunk bytes from rank 0.
func runBcast(cfg smpi.Config, procs int, chunk int64) (*collectiveRun, error) {
	return measureCollective(cfg, procs, func(r *smpi.Rank, c *smpi.Comm) {
		c.Bcast(r, make([]byte, chunk), 0)
	})
}

// runAllreduce measures one allreduce of chunk bytes (float64 sums).
func runAllreduce(cfg smpi.Config, procs int, chunk int64) (*collectiveRun, error) {
	return measureCollective(cfg, procs, func(r *smpi.Rank, c *smpi.Comm) {
		sendbuf := make([]byte, chunk)
		recvbuf := make([]byte, chunk)
		c.Allreduce(r, sendbuf, recvbuf, smpi.Float64, smpi.OpSum)
	})
}

// TopoCollectives compares ring against tree collectives across
// interconnect shapes: a ring schedule only talks to neighbors (which tori
// absorb on local cables), while binomial trees and recursive doubling jump
// across the machine (which fat-tree spines and dragonfly global links must
// carry). The flat cluster routes everything through the same backbone, so
// it cannot express these differences — the point of the topology axis.
// Every (topology, op, algorithm) point is one campaign job; chunk is the
// per-rank payload in bytes (must be a multiple of 8; 0 means 256 KiB).
func TopoCollectives(env *Env, chunk int64) (*TopoCollectivesResult, error) {
	if chunk == 0 {
		chunk = 256 * core.KiB
	}
	if err := checkFloat64Payload("topo collectives", chunk); err != nil {
		return nil, err
	}
	type point struct {
		topo, op, algo string
		run            func(smpi.Config, int, int64) (*collectiveRun, error)
	}
	var points []point
	for _, topo := range topoCollectivesTopos() {
		for _, algo := range []string{"binomial", "ring"} {
			points = append(points, point{topo, "bcast", algo, runBcast})
		}
		for _, algo := range []string{"recursive-doubling", "ring"} {
			points = append(points, point{topo, "allreduce", algo, runAllreduce})
		}
	}

	jobs := make([]campaign.Job, 0, len(points))
	for _, pt := range points {
		plat, err := env.gridPlatform(pt.topo)
		if err != nil {
			return nil, err
		}
		cfg := surfConfig(plat, env.Piecewise)
		switch pt.op {
		case "bcast":
			cfg.Algorithms.Bcast = pt.algo
		default:
			cfg.Algorithms.Allreduce = pt.algo
		}
		j := collectiveJob(fmt.Sprintf("topo/%s/%s/%s", pt.topo, pt.op, pt.algo),
			cfg, TopoCollectivesProcs, chunk, pt.run)
		j.Tags["topo"], j.Tags["op"], j.Tags["algo"] = pt.topo, pt.op, pt.algo
		jobs = append(jobs, j)
	}
	runs, err := collectiveRuns(env, jobs)
	if err != nil {
		return nil, err
	}

	res := &TopoCollectivesResult{
		Table: &Table{
			Title: fmt.Sprintf("Cross-topology collectives: ring vs tree, %d procs, %s per rank (seconds)",
				TopoCollectivesProcs, core.FormatBytes(chunk)),
			Header: []string{"topo", "op", "tree_s", "ring_s", "ring/tree"},
		},
		Times: make(map[string]float64, len(points)),
	}
	for i, pt := range points {
		res.Times[pt.topo+"/"+pt.op+"/"+pt.algo] = runs[i].Total
	}
	for _, topo := range topoCollectivesTopos() {
		for _, op := range []string{"bcast", "allreduce"} {
			tree := "binomial"
			if op == "allreduce" {
				tree = "recursive-doubling"
			}
			tt := res.Times[topo+"/"+op+"/"+tree]
			rt := res.Times[topo+"/"+op+"/ring"]
			res.Table.Add(topo, op, tt, rt, rt/tt)
		}
	}
	for _, topo := range topoCollectivesTopos()[1:] {
		spec, err := topology.ParseSpec(topo)
		if err != nil {
			return nil, err
		}
		m := spec.Metrics()
		res.Table.Note("%s: %d hosts, %d links, diameter %d, bisection %.3g GB/s",
			topo, m.Hosts, m.Links, m.Diameter, m.BisectionBandwidth/1e9)
	}
	res.Table.Note("ring maps onto neighbor links (tori); trees concentrate load on spines/backbones")
	return res, nil
}
