package experiments

import (
	"time"

	"smpigo/internal/core"
	"smpigo/internal/nas"
	"smpigo/internal/smpi"
)

// SpeedResult holds Figure 17: for each message size, the wall-clock time
// the SMPI simulation took, the simulated execution time it predicted, and
// the "real" execution time (the emulated testbed's simulated time, which
// stands in for running on hardware).
type SpeedResult struct {
	Table *Table
	Sizes []int64
	// SimWall is SMPI's wall-clock simulation cost; SimTime its predicted
	// execution time; RealTime the testbed execution time.
	SimWall  []time.Duration
	SimTime  []float64
	RealTime []float64
}

// Figure17 reproduces Figure 17: binomial scatter over 16 processes with
// message sizes growing from 4 to 64 MiB, comparing simulation cost against
// (emulated) real execution time. The paper's claim is that on-line
// simulation runs faster than the real application, increasingly so with
// message size; with an analytical backend the speedup here is much larger
// than the paper's 3.6-5.3x (our testbed is itself simulated — see
// EXPERIMENTS.md).
func Figure17(env *Env) (*SpeedResult, error) {
	const procs = 16
	res := &SpeedResult{Table: &Table{
		Title:  "Figure 17: simulation time vs simulated time vs real time (scatter, 16 procs)",
		Header: []string{"msg_size", "smpi_wall_s", "smpi_simulated_s", "real_s (emu)", "speedup_vs_real"},
	}}
	for _, size := range []int64{4 * core.MiB, 8 * core.MiB, 16 * core.MiB, 32 * core.MiB, 64 * core.MiB} {
		s, err := runScatter(surfConfig(env.Griffon, env.Piecewise), procs, size)
		if err != nil {
			return nil, err
		}
		o, err := runScatter(emuConfig(env.Griffon), procs, size)
		if err != nil {
			return nil, err
		}
		res.Sizes = append(res.Sizes, size)
		res.SimWall = append(res.SimWall, s.Wall)
		res.SimTime = append(res.SimTime, s.Total)
		res.RealTime = append(res.RealTime, o.Total)
		speedup := o.Total / s.Wall.Seconds()
		res.Table.Add(core.FormatBytes(size), s.Wall.Seconds(), s.Total, o.Total, speedup)
	}
	res.Table.Note("SMPI wall-clock stays far below the (emulated) real execution time, and the gap grows with size")
	return res, nil
}

// SamplingResult holds Figure 18: for each sampling ratio, the wall-clock
// time of the simulation and the simulated execution time of NAS EP.
type SamplingResult struct {
	Table  *Table
	Ratios []float64
	// Wall is the simulation's real cost; Simulated the predicted
	// execution time; Executed/Replayed count the sampled bursts.
	Wall      []time.Duration
	Simulated []float64
	Executed  []int64
}

// Figure18 reproduces Figure 18: NAS EP with CPU-burst sampling ratios
// from 100% down to 25%. M is the pair-count exponent (the paper runs
// class B = 2^30 on 4 processes; tests use a scaled M, benchmarks a larger
// one — the linear-wall-time/flat-simulated-time shape is scale-free).
func Figure18(env *Env, m, iterations int) (*SamplingResult, error) {
	const procs = 4
	res := &SamplingResult{Table: &Table{
		Title:  "Figure 18: CPU sampling impact on NAS EP (4 procs)",
		Header: []string{"ratio_pct", "sim_wall_s", "simulated_s", "bursts_executed", "bursts_replayed"},
	}}
	for _, ratio := range []float64{1.0, 0.75, 0.5, 0.25} {
		app, _ := nas.EP(nas.EPConfig{M: m, Iterations: iterations, SampleRatio: ratio})
		cfg := surfConfig(env.Griffon, env.Piecewise)
		cfg.Procs = procs
		rep, err := smpi.Run(cfg, app)
		if err != nil {
			return nil, err
		}
		res.Ratios = append(res.Ratios, ratio)
		res.Wall = append(res.Wall, rep.WallTime)
		res.Simulated = append(res.Simulated, float64(rep.SimulatedTime))
		res.Executed = append(res.Executed, rep.BurstsExecuted)
		res.Table.Add(ratio*100, rep.WallTime.Seconds(), float64(rep.SimulatedTime),
			rep.BurstsExecuted, rep.BurstsReplayed)
	}
	res.Table.Note("simulation wall time decreases ~linearly with the sampling ratio; simulated time stays flat (EP is regular)")
	return res, nil
}
