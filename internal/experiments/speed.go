package experiments

import (
	"fmt"
	"runtime"
	"time"

	"smpigo/internal/campaign"
	"smpigo/internal/core"
	"smpigo/internal/nas"
	"smpigo/internal/smpi"
)

// SpeedResult holds Figure 17: for each message size, the wall-clock time
// the SMPI simulation took, the simulated execution time it predicted, and
// the "real" execution time (the emulated testbed's simulated time, which
// stands in for running on hardware).
type SpeedResult struct {
	Table *Table
	Sizes []int64
	// SimWall is SMPI's wall-clock simulation cost; SimTime its predicted
	// execution time; RealTime the testbed execution time.
	SimWall  []time.Duration
	SimTime  []float64
	RealTime []float64
}

// Figure17 reproduces Figure 17: binomial scatter over 16 processes with
// message sizes growing from 4 to 64 MiB, comparing simulation cost against
// (emulated) real execution time. The paper's claim is that on-line
// simulation runs faster than the real application, increasingly so with
// message size; with an analytical backend the speedup here is much larger
// than the paper's 3.6-5.3x (our testbed is itself simulated — see
// EXPERIMENTS.md).
func Figure17(env *Env) (*SpeedResult, error) {
	const procs = 16
	res := &SpeedResult{Table: &Table{
		Title:  "Figure 17: simulation time vs simulated time vs real time (scatter, 16 procs)",
		Header: []string{"msg_size", "smpi_wall_s", "smpi_simulated_s", "real_s (emu)", "speedup_vs_real"},
	}}
	sizes := []int64{4 * core.MiB, 8 * core.MiB, 16 * core.MiB, 32 * core.MiB, 64 * core.MiB}
	// The "real" (emulated testbed) runs fan out on the campaign pool: only
	// their simulated times matter. The SMPI runs are the figure's measured
	// quantity — their wall clock IS the result — so they execute serially
	// on a single worker, after a GC flushes the garbage the testbed runs
	// left behind; otherwise pool contention and GC debt are charged to the
	// measurement.
	var emuJobs, surfJobs []campaign.Job
	for _, size := range sizes {
		emuJobs = append(emuJobs, collectiveJob(
			fmt.Sprintf("fig17/size=%s/openmpi", core.FormatBytes(size)),
			emuConfig(env.Griffon), procs, size, runScatter))
		surfJobs = append(surfJobs, collectiveJob(
			fmt.Sprintf("fig17/size=%s/smpi", core.FormatBytes(size)),
			surfConfig(env.Griffon, env.Piecewise), procs, size, runScatter))
	}
	emuRuns, err := collectiveRuns(env, emuJobs)
	if err != nil {
		return nil, err
	}
	runtime.GC()
	surfSum := campaign.Run(campaign.Options{Workers: 1, Seed: env.Seed}, surfJobs)
	surfOuts, err := surfSum.Outcomes()
	if err != nil {
		return nil, err
	}
	for i, size := range sizes {
		s := surfOuts[i].Payload.(*collectiveRun)
		o := emuRuns[i]
		res.Sizes = append(res.Sizes, size)
		res.SimWall = append(res.SimWall, s.Wall)
		res.SimTime = append(res.SimTime, s.Total)
		res.RealTime = append(res.RealTime, o.Total)
		speedup := o.Total / s.Wall.Seconds()
		res.Table.Add(core.FormatBytes(size), s.Wall.Seconds(), s.Total, o.Total, speedup)
	}
	res.Table.Note("SMPI wall-clock stays far below the (emulated) real execution time, and the gap grows with size")
	return res, nil
}

// SamplingResult holds Figure 18: for each sampling ratio, the wall-clock
// time of the simulation and the simulated execution time of NAS EP.
type SamplingResult struct {
	Table  *Table
	Ratios []float64
	// Wall is the simulation's real cost; Simulated the predicted
	// execution time; Executed/Replayed count the sampled bursts.
	Wall      []time.Duration
	Simulated []float64
	Executed  []int64
}

// Figure18 reproduces Figure 18: NAS EP with CPU-burst sampling ratios
// from 100% down to 25%. M is the pair-count exponent (the paper runs
// class B = 2^30 on 4 processes; tests use a scaled M, benchmarks a larger
// one — the linear-wall-time/flat-simulated-time shape is scale-free).
func Figure18(env *Env, m, iterations int) (*SamplingResult, error) {
	const procs = 4
	res := &SamplingResult{Table: &Table{
		Title:  "Figure 18: CPU sampling impact on NAS EP (4 procs)",
		Header: []string{"ratio_pct", "sim_wall_s", "simulated_s", "bursts_executed", "bursts_replayed"},
	}}
	ratios := []float64{1.0, 0.75, 0.5, 0.25}
	var jobs []campaign.Job
	for _, ratio := range ratios {
		ratio := ratio
		jobs = append(jobs, campaign.Job{
			ID:   fmt.Sprintf("fig18/ratio=%g", ratio),
			Tags: map[string]string{"app": "ep", "ratio": fmt.Sprint(ratio)},
			Run: func(ctx *campaign.Ctx) (*campaign.Outcome, error) {
				app, _ := nas.EP(nas.EPConfig{M: m, Iterations: iterations, SampleRatio: ratio})
				cfg := surfConfig(env.Griffon, env.Piecewise)
				cfg.Procs = procs
				cfg.Seed = ctx.Seed
				rep, err := smpi.Run(cfg, app)
				if err != nil {
					return nil, err
				}
				return &campaign.Outcome{
					SimulatedTime: rep.SimulatedTime,
					Values: map[string]float64{
						"bursts_executed": float64(rep.BurstsExecuted),
						"bursts_replayed": float64(rep.BurstsReplayed),
					},
					Payload: rep,
				}, nil
			},
		})
	}
	// Like Figure 17's SMPI runs, the wall-clock column is the figure's
	// measured quantity, so the ratio sweep runs serially on one worker:
	// concurrent EP simulations would charge each other's CPU contention
	// to the measurement.
	sum := campaign.Run(campaign.Options{Workers: 1, Seed: env.Seed}, jobs)
	outs, err := sum.Outcomes()
	if err != nil {
		return nil, err
	}
	for i, ratio := range ratios {
		rep := outs[i].Payload.(*smpi.Report)
		res.Ratios = append(res.Ratios, ratio)
		res.Wall = append(res.Wall, rep.WallTime)
		res.Simulated = append(res.Simulated, float64(rep.SimulatedTime))
		res.Executed = append(res.Executed, rep.BurstsExecuted)
		res.Table.Add(ratio*100, rep.WallTime.Seconds(), float64(rep.SimulatedTime),
			rep.BurstsExecuted, rep.BurstsReplayed)
	}
	res.Table.Note("simulation wall time decreases ~linearly with the sampling ratio; simulated time stays flat (EP is regular)")
	return res, nil
}
