package experiments

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"slices"
	"strings"

	"smpigo/internal/dynamics"
	"smpigo/internal/placement"
	"smpigo/internal/smpi"
)

// Canonicalize returns the spec's canonical form: two specs that expand to
// the same set of simulations — differing only in axis order, duplicate
// entries, case, spelled-out defaults, or alias spellings ("round-robin"
// for "rr", "0.002s" for "2ms" in a dynamics schedule) — canonicalize to
// the same value, and a canonical spec expands its axes in a fixed (sorted)
// order regardless of how the caller listed them.
//
// This is what makes result caching by fingerprint-input sound end to end:
// the campaign service runs the canonical spec, so its cache key (see
// CampaignKey) and the jobs it actually executes are derived from one
// normalized value — semantically equal requests hit the same cache entry
// AND would have produced byte-identical summaries.
//
// Canonicalization validates as it goes (unknown backends, models,
// placements, malformed dynamics, out-of-range shards fail here, before any
// job runs). Perf-only knobs that provably cannot move results
// (SolverWorkers — bit-identical at any setting) are preserved for
// execution but excluded from CampaignKey; RateTolerance changes simulated
// times and stays in both.
func (spec GridSpec) Canonicalize() (GridSpec, error) {
	c := spec

	c.Op = strings.ToLower(strings.TrimSpace(spec.Op))
	switch c.Op {
	case "scatter", "alltoall", "bcast", "allreduce":
		c.Procs = slices.Clone(spec.Procs)
		slices.Sort(c.Procs)
		c.Procs = slices.Compact(c.Procs)
	case "pingpong":
		// Pingpong ignores the procs axis entirely (expand collapses it),
		// so every procs list is equivalent to [2].
		c.Procs = []int{2}
	default:
		return GridSpec{}, fmt.Errorf("grid: unknown op %q (want scatter, alltoall, bcast, allreduce, pingpong)", spec.Op)
	}
	if len(c.Procs) == 0 {
		return GridSpec{}, fmt.Errorf("grid: need at least one process count")
	}

	c.Sizes = slices.Clone(spec.Sizes)
	slices.Sort(c.Sizes)
	c.Sizes = slices.Compact(c.Sizes)
	if len(c.Sizes) == 0 {
		return GridSpec{}, fmt.Errorf("grid: need at least one size")
	}

	c.Backends = nil
	for _, b := range spec.Backends {
		b = strings.ToLower(strings.TrimSpace(b))
		switch b {
		case "surf", "openmpi", "mpich2":
			c.Backends = append(c.Backends, b)
		default:
			return GridSpec{}, fmt.Errorf("grid: unknown backend %q (want surf, openmpi, mpich2)", b)
		}
	}
	slices.Sort(c.Backends)
	c.Backends = slices.Compact(c.Backends)
	if len(c.Backends) == 0 {
		return GridSpec{}, fmt.Errorf("grid: need at least one backend")
	}

	// Models only cross with the surf backend; without it they are inert
	// and drop out. With it, the implicit default becomes explicit.
	c.Models = nil
	if slices.Contains(c.Backends, "surf") {
		for _, m := range spec.Models {
			m = strings.ToLower(strings.TrimSpace(m))
			switch m {
			case "piecewise", "bestfit", "default", "ideal":
				c.Models = append(c.Models, m)
			default:
				return GridSpec{}, fmt.Errorf("grid: unknown model %q (want piecewise, bestfit, default, ideal)", m)
			}
		}
		if len(c.Models) == 0 {
			c.Models = []string{"piecewise"}
		}
		slices.Sort(c.Models)
		c.Models = slices.Compact(c.Models)
	}

	c.Topologies = nil
	for _, topo := range spec.Topologies {
		if topo = strings.ToLower(strings.TrimSpace(topo)); topo != "" {
			c.Topologies = append(c.Topologies, topo)
		}
	}
	slices.Sort(c.Topologies)
	c.Topologies = slices.Compact(c.Topologies)
	if len(c.Topologies) > 0 {
		c.Platform = "" // ignored when a topology axis is present
	} else if c.Platform = strings.ToLower(strings.TrimSpace(spec.Platform)); c.Platform == "" {
		c.Platform = "griffon"
	}

	c.Placements = nil
	for _, pl := range spec.Placements {
		canonical, err := placement.Normalize(pl)
		if err != nil {
			return GridSpec{}, fmt.Errorf("grid: %w", err)
		}
		c.Placements = append(c.Placements, canonical)
	}
	slices.Sort(c.Placements)
	c.Placements = slices.Compact(c.Placements)

	algos, err := smpi.ParseAlgorithms(spec.Collectives)
	if err != nil {
		return GridSpec{}, fmt.Errorf("grid: %w", err)
	}
	// Summary renders the non-default fields as space-separated "op=algo"
	// pairs in a fixed field order; re-joined with commas it round-trips
	// through ParseAlgorithms, making it the canonical spelling ("auto"
	// becomes every collective pinned to auto, "default" becomes "").
	c.Collectives = strings.ReplaceAll(algos.Summary(), " ", ",")

	c.Dynamics = nil
	for _, d := range spec.Dynamics {
		sched, err := dynamics.Parse(d)
		if err != nil {
			return GridSpec{}, fmt.Errorf("grid: dynamics %q: %w", d, err)
		}
		if sched == nil {
			c.Dynamics = append(c.Dynamics, "")
		} else {
			c.Dynamics = append(c.Dynamics, sched.String())
		}
	}
	slices.Sort(c.Dynamics)
	c.Dynamics = slices.Compact(c.Dynamics)
	if len(c.Dynamics) == 1 && c.Dynamics[0] == "" {
		c.Dynamics = nil // an explicit all-static axis is no axis
	}

	if c.RateTolerance < 0 || c.RateTolerance >= 1 {
		return GridSpec{}, fmt.Errorf("grid: rate tolerance %g outside [0,1)", c.RateTolerance)
	}
	// Reuse the shard validation; the points themselves don't matter here.
	if _, err := shardSlice(nil, c.ShardIndex, c.ShardCount); err != nil {
		return GridSpec{}, err
	}
	if c.ShardCount == 1 {
		c.ShardIndex, c.ShardCount = 0, 0 // 1 shard of 1 is the whole grid
	}
	return c, nil
}

// CampaignKey returns the campaign's fingerprint-input: a stable hash of
// the canonicalized spec plus the campaign seed. Identical (spec, seed)
// pairs produce bit-identical summaries at any -parallel and any
// SolverWorkers setting (the repo's determinism contract), so a result
// cache keyed by this value can serve hits without re-simulating and
// provably never serves a wrong answer. SolverWorkers is masked out of the
// key for exactly that reason; Stats stays in because it changes what the
// summary contains (per-job counter maps), even though it never moves the
// fingerprint.
func (spec GridSpec) CampaignKey(seed uint64) (string, error) {
	c, err := spec.Canonicalize()
	if err != nil {
		return "", err
	}
	c.SolverWorkers = 0
	blob, err := json.Marshal(struct {
		Spec GridSpec `json:"spec"`
		Seed uint64   `json:"seed"`
	}{c, seed})
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", sha256.Sum256(blob)), nil
}
