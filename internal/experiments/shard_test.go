package experiments

import (
	"strings"
	"testing"

	"smpigo/internal/campaign"
)

// shardSpec is a small real grid (2 sizes × 2 models = 4 surf pingpong
// jobs on the calibrated griffon cluster) cheap enough to run many times.
func shardSpec() GridSpec {
	return GridSpec{
		Op:       "pingpong",
		Procs:    []int{2},
		Sizes:    []int64{64 * 1024, 1024 * 1024},
		Models:   []string{"piecewise", "bestfit"},
		Backends: []string{"surf"},
	}
}

func TestShardMergeMatchesUnsharded(t *testing.T) {
	e := env(t)
	seed := uint64(31)
	run := func(spec GridSpec) *campaign.Summary {
		t.Helper()
		sum, err := e.GridCampaignOpts(spec, CampaignOptions{Seed: &seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := sum.Err(); err != nil {
			t.Fatal(err)
		}
		return sum
	}
	full := run(shardSpec())
	if full.Jobs != 4 {
		t.Fatalf("expected a 4-job grid, got %d", full.Jobs)
	}
	// Shard counts that divide the grid evenly, unevenly, and beyond its
	// size (6 shards of 4 jobs: two shards come back empty).
	for _, n := range []int{2, 3, 6} {
		parts := make([]*campaign.Summary, n)
		total := 0
		for i := range parts {
			spec := shardSpec()
			spec.ShardIndex, spec.ShardCount = i, n
			parts[i] = run(spec)
			total += parts[i].Jobs
		}
		if total != full.Jobs {
			t.Fatalf("n=%d: shards hold %d jobs, want %d (ranges must tile the grid)", n, total, full.Jobs)
		}
		merged, err := campaign.Merge(parts...)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got, want := merged.Fingerprint(), full.Fingerprint(); got != want {
			t.Errorf("n=%d: merged fingerprint %s, want unsharded %s", n, got, want)
		}
	}
}

func TestShardExpansionEdgeCases(t *testing.T) {
	e := env(t)
	// n beyond the grid: every job still runs exactly once, and the surplus
	// shards come back empty (interleaved by the balanced split) rather
	// than erroring.
	total, empty := 0, 0
	for i := 0; i < 6; i++ {
		spec := shardSpec()
		spec.ShardIndex, spec.ShardCount = i, 6
		sum, err := e.GridCampaign(spec)
		if err != nil {
			t.Fatal(err)
		}
		total += sum.Jobs
		if sum.Jobs == 0 {
			empty++
		}
	}
	if total != 4 || empty != 2 {
		t.Errorf("6 shards of a 4-job grid: %d jobs total, %d empty shards; want 4 and 2", total, empty)
	}

	for _, tc := range []struct {
		index, count int
		want         string
	}{
		{2, 2, "out of range"},
		{-1, 2, "out of range"},
		{1, 0, "without a shard count"},
		{0, -3, "negative shard count"},
	} {
		spec := shardSpec()
		spec.ShardIndex, spec.ShardCount = tc.index, tc.count
		if _, err := e.GridCampaign(spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("shard %d/%d: err = %v, want mention of %q", tc.index, tc.count, err, tc.want)
		}
	}
}

func TestCanonicalizeCollapsesEquivalentSpecs(t *testing.T) {
	a := GridSpec{
		Op:         "Alltoall",
		Procs:      []int{16, 8, 16},
		Sizes:      []int64{1 << 20, 1 << 16},
		Backends:   []string{"surf"},
		Topologies: []string{"torus16", "fattree16"},
		Placements: []string{"round-robin", "block"},
	}
	b := GridSpec{
		Op:         "alltoall",
		Procs:      []int{8, 16},
		Sizes:      []int64{1 << 16, 1 << 20},
		Models:     []string{"piecewise"}, // the implicit surf default, spelled out
		Backends:   []string{"SURF"},
		Topologies: []string{"fattree16", "torus16"},
		Placements: []string{"block", "rr"},
	}
	ca, err := a.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	ka, err := a.CampaignKey(7)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.CampaignKey(7)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Errorf("semantically equal specs key differently:\n  %+v -> %s\n  %+v -> %s", ca, ka, cb, kb)
	}

	// The canonical spec must expand to the same job set as the original —
	// the cache-safety argument needs run-what-you-keyed.
	e := env(t)
	seed := uint64(7)
	sumA, err := e.GridCampaignOpts(ca, CampaignOptions{Seed: &seed})
	if err != nil {
		t.Fatal(err)
	}
	sumB, err := e.GridCampaignOpts(cb, CampaignOptions{Seed: &seed})
	if err != nil {
		t.Fatal(err)
	}
	if sumA.Fingerprint() != sumB.Fingerprint() {
		t.Error("canonicalized equal specs ran different campaigns")
	}
}

func TestCampaignKeySeparates(t *testing.T) {
	spec := shardSpec()
	k1, err := spec.CampaignKey(1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := spec.CampaignKey(2)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Error("different seeds share a campaign key")
	}

	// Result-identical perf knobs are masked out; result-changing ones are
	// not.
	workers := spec
	workers.SolverWorkers = 8
	kw, err := workers.CampaignKey(1)
	if err != nil {
		t.Fatal(err)
	}
	if kw != k1 {
		t.Error("SolverWorkers moved the campaign key despite bit-identical results")
	}
	eps := spec
	eps.RateTolerance = 1e-3
	ke, err := eps.CampaignKey(1)
	if err != nil {
		t.Fatal(err)
	}
	if ke == k1 {
		t.Error("RateTolerance did not move the campaign key, but it changes simulated times")
	}
	shard := spec
	shard.ShardIndex, shard.ShardCount = 0, 2
	ks, err := shard.CampaignKey(1)
	if err != nil {
		t.Fatal(err)
	}
	if ks == k1 {
		t.Error("sharding did not move the campaign key, but a shard holds different jobs")
	}

	// One shard of one is the whole grid, canonically unsharded.
	whole := spec
	whole.ShardIndex, whole.ShardCount = 0, 1
	kwhole, err := whole.CampaignKey(1)
	if err != nil {
		t.Fatal(err)
	}
	if kwhole != k1 {
		t.Error("shard 0/1 keys differently from the unsharded spec")
	}
}

func TestCanonicalizeRejectsInvalid(t *testing.T) {
	for _, tc := range []struct {
		mutate func(*GridSpec)
		want   string
	}{
		{func(s *GridSpec) { s.Op = "gather" }, "unknown op"},
		{func(s *GridSpec) { s.Backends = []string{"mpi"} }, "unknown backend"},
		{func(s *GridSpec) { s.Models = []string{"cubic"} }, "unknown model"},
		{func(s *GridSpec) { s.Placements = []string{"diagonal"} }, "unknown policy"},
		{func(s *GridSpec) { s.Dynamics = []string{"@oops"} }, "dynamics"},
		{func(s *GridSpec) { s.RateTolerance = 1.5 }, "rate tolerance"},
		{func(s *GridSpec) { s.ShardIndex = 3; s.ShardCount = 2 }, "out of range"},
		{func(s *GridSpec) { s.Sizes = nil }, "size"},
		{func(s *GridSpec) { s.Backends = nil }, "backend"},
	} {
		spec := shardSpec()
		tc.mutate(&spec)
		if _, err := spec.Canonicalize(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%+v: err = %v, want mention of %q", spec, err, tc.want)
		}
	}
}
