package experiments

import (
	"fmt"

	"smpigo/internal/campaign"
	"smpigo/internal/core"
	"smpigo/internal/dynamics"
)

// DegradedSweepResult holds the degraded-fabric experiment: how collective
// completion responds to trunk-capacity loss per interconnect shape. Times
// maps "<topo>/<fraction>" to the alltoall completion time in seconds.
type DegradedSweepResult struct {
	Table *Table
	Times map[string]float64
}

// degradedSweepTopos pairs each swept platform with the glob matching its
// trunk links — the cables every cross-section flow funnels through: the
// fat-tree's top level, the torus's last dimension, the dragonfly's global
// cables.
func degradedSweepTopos() []struct{ topo, trunk string } {
	return []struct{ topo, trunk string }{
		{"fattree64", "fattree64-l3-*"},
		{"torus64", "torus64-*-d2-*"},
		{"dragonfly72", "dragonfly72-g*-g*"},
	}
}

// degradedSweepFractions is the swept trunk-capacity axis: 1 is the healthy
// baseline (no dynamics armed at all), the rest degrade the trunk at t=0.
func degradedSweepFractions() []float64 { return []float64{1, 0.5, 0.25, 0.1} }

// DegradedSweep sweeps trunk-link degradation against interconnect shape
// for a machine-filling pairwise all-to-all: every trunk link is scaled to
// the given fraction of its nominal bandwidth at t=0 through a dynamics
// schedule, exactly the smpirun -dynamics path. The slowdown column shows
// how much of the collective's time actually rides the degraded cables —
// sub-linear slowdown means the healthy edge links absorb part of the cut,
// linear slowdown means the trunk is the binding constraint throughout.
// chunk is the per-rank-pair payload in bytes (0 means 64 KiB).
func DegradedSweep(env *Env, chunk int64) (*DegradedSweepResult, error) {
	if chunk == 0 {
		chunk = 64 * core.KiB
	}
	type point struct {
		topo     string
		fraction float64
	}
	var points []point
	var jobs []campaign.Job
	for _, tp := range degradedSweepTopos() {
		plat, err := env.gridPlatform(tp.topo)
		if err != nil {
			return nil, err
		}
		for _, frac := range degradedSweepFractions() {
			cfg := surfConfig(plat, env.Piecewise)
			if frac < 1 {
				sched, err := dynamics.Parse(fmt.Sprintf("@0s link %s scale %g", tp.trunk, frac))
				if err != nil {
					return nil, err
				}
				cfg.Dynamics = sched
			}
			points = append(points, point{tp.topo, frac})
			jobs = append(jobs, collectiveJob(
				fmt.Sprintf("degraded/%s/frac=%g", tp.topo, frac),
				cfg, len(plat.Hosts()), chunk, runAlltoall))
		}
	}
	runs, err := collectiveRuns(env, jobs)
	if err != nil {
		return nil, err
	}

	res := &DegradedSweepResult{
		Table: &Table{
			Title: fmt.Sprintf("Degraded-fabric sweep: alltoall vs trunk capacity, machine-filling ranks, %s per pair (seconds)",
				core.FormatBytes(chunk)),
			Header: []string{"topo", "trunk", "fraction", "alltoall_s", "slowdown"},
		},
		Times: make(map[string]float64, len(points)),
	}
	for i, pt := range points {
		res.Times[fmt.Sprintf("%s/%g", pt.topo, pt.fraction)] = runs[i].Total
	}
	for _, tp := range degradedSweepTopos() {
		healthy := res.Times[tp.topo+"/1"]
		for _, frac := range degradedSweepFractions() {
			t := res.Times[fmt.Sprintf("%s/%g", tp.topo, frac)]
			res.Table.Add(tp.topo, tp.trunk, frac, t, t/healthy)
		}
	}
	res.Table.Note("fraction 1 runs with no dynamics armed; lower fractions scale every trunk link at t=0 via the -dynamics event path")
	res.Table.Note("slowdown below 1/fraction means part of the collective rides links outside the degraded trunk")
	return res, nil
}
