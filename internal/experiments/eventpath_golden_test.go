package experiments

import (
	"testing"

	"smpigo/internal/core"
)

// solverSmokeFingerprint is the campaign fingerprint of the 1k-host
// solver-smoke grid (alltoall, 32 procs, 64KiB, fattree:16x8x8:1x8x8, seed
// 7 — the same grid CI's solver-smoke job runs), recorded before the
// event path moved from linear scans onto the completion-time min-heap.
// Keeping it pinned proves the heap rewrite changed no simulated timestamp:
// the lazy drain performs bit-for-bit the arithmetic of the former
// every-step drain on this workload, and the fingerprint hashes every
// simulated time in the summary.
const solverSmokeFingerprint = "a8c5d1ab336ca9be"

// TestEventPathFingerprintUnchanged re-runs the solver-smoke campaign and
// asserts the pre-heap golden fingerprint, at two worker counts (so it also
// covers the usual any-parallel determinism property on the way).
func TestEventPathFingerprintUnchanged(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-host campaign: skipped in -short runs (covered nightly and by CI's solver-smoke job)")
	}
	e := env(t)
	spec := GridSpec{
		Op:         "alltoall",
		Procs:      []int{32},
		Sizes:      []int64{64 * core.KiB},
		Backends:   []string{"surf"},
		Topologies: []string{"fattree:16x8x8:1x8x8"},
	}
	for _, workers := range []int{1, 8} {
		withCampaign(e, workers, 7, func() {
			sum, err := e.GridCampaign(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := sum.Err(); err != nil {
				t.Fatal(err)
			}
			if got := sum.Fingerprint(); got != solverSmokeFingerprint {
				t.Errorf("workers=%d: solver-smoke fingerprint %s, want pre-heap golden %s — the event path changed simulated timestamps",
					workers, got, solverSmokeFingerprint)
			}
		})
	}
}

// TestParallelSolverFingerprintUnchanged re-runs the same campaign with the
// per-job LMM worker pool turned on (SolverWorkers = 8, crossed with both
// campaign -parallel settings) and asserts the identical golden fingerprint:
// farming independent dirty components to a pool must not move a single
// simulated timestamp, the campaign-level half of the bit-identity contract
// TestParallelSolveDeterministic pins at the solver level.
func TestParallelSolverFingerprintUnchanged(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-host campaign: skipped in -short runs (covered nightly)")
	}
	e := env(t)
	spec := GridSpec{
		Op:            "alltoall",
		Procs:         []int{32},
		Sizes:         []int64{64 * core.KiB},
		Backends:      []string{"surf"},
		Topologies:    []string{"fattree:16x8x8:1x8x8"},
		SolverWorkers: 8,
	}
	for _, workers := range []int{1, 8} {
		withCampaign(e, workers, 7, func() {
			sum, err := e.GridCampaign(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := sum.Err(); err != nil {
				t.Fatal(err)
			}
			if got := sum.Fingerprint(); got != solverSmokeFingerprint {
				t.Errorf("campaign workers=%d, solver workers=8: fingerprint %s, want %s — the solver pool leaked scheduling into allocations",
					workers, got, solverSmokeFingerprint)
			}
		})
	}
}
