package experiments

import (
	"fmt"
	"time"

	"smpigo/internal/campaign"
	"smpigo/internal/core"
	"smpigo/internal/metrics"
	"smpigo/internal/placement"
	"smpigo/internal/smpi"
)

// collectiveRun measures a collective operation: per-rank completion times
// (relative to the synchronized start), the overall completion time, the
// report, and the wall-clock duration of the simulation itself.
type collectiveRun struct {
	PerRank []float64
	Total   float64
	Report  *smpi.Report
	Wall    time.Duration
}

// measureCollective times one collective operation: every rank
// synchronizes on a barrier, runs op, and records its completion relative
// to the barrier exit. Buffer allocation inside op is host-side work and
// does not advance simulated time, so op can set up and call the
// collective directly.
func measureCollective(cfg smpi.Config, procs int, op func(r *smpi.Rank, c *smpi.Comm)) (*collectiveRun, error) {
	cfg.Procs = procs
	out := &collectiveRun{PerRank: make([]float64, procs)}
	rep, err := smpi.Run(cfg, func(r *smpi.Rank) {
		c := r.Comm()
		c.Barrier(r)
		start := r.Now()
		op(r, c)
		out.PerRank[r.Rank()] = float64(r.Now() - start)
	})
	if err != nil {
		return nil, err
	}
	out.Report = rep
	out.Wall = rep.WallTime
	for _, t := range out.PerRank {
		if t > out.Total {
			out.Total = t
		}
	}
	return out, nil
}

// runScatter performs one binomial-tree scatter of chunk bytes per rank.
func runScatter(cfg smpi.Config, procs int, chunk int64) (*collectiveRun, error) {
	return measureCollective(cfg, procs, func(r *smpi.Rank, c *smpi.Comm) {
		var sendbuf []byte
		if r.Rank() == 0 {
			sendbuf = make([]byte, int64(procs)*chunk)
		}
		recvbuf := make([]byte, chunk)
		c.Scatter(r, sendbuf, recvbuf, 0)
	})
}

// checkFloat64Payload rejects payloads the float64-sum collectives
// (allreduce) cannot slice into elements; context prefixes the error.
func checkFloat64Payload(context string, size int64) error {
	if size%8 != 0 {
		return fmt.Errorf("%s: payload %d not a multiple of the float64 size", context, size)
	}
	return nil
}

// runAlltoall performs one pairwise all-to-all with chunk bytes per pair.
func runAlltoall(cfg smpi.Config, procs int, chunk int64) (*collectiveRun, error) {
	return measureCollective(cfg, procs, func(r *smpi.Rank, c *smpi.Comm) {
		sendbuf := make([]byte, int64(procs)*chunk)
		recvbuf := make([]byte, int64(procs)*chunk)
		c.Alltoall(r, sendbuf, recvbuf)
	})
}

// collectiveJob wraps one collective run as a campaign job whose payload is
// the *collectiveRun. The job's derived seed flows into the simulation
// config, so every scenario point is reproducible in isolation.
func collectiveJob(id string, cfg smpi.Config, procs int, chunk int64,
	run func(smpi.Config, int, int64) (*collectiveRun, error)) campaign.Job {
	return placedCollectiveJob(id, cfg, "", procs, chunk, run)
}

// placedCollectiveJob is collectiveJob with a rank-placement policy (see
// package placement; empty means the smpi default layout). The mapping is
// generated inside the job from its derived seed, so a random placement is
// a pure function of (campaign seed, job ID) and sweeps stay bit-identical
// at any worker count.
func placedCollectiveJob(id string, cfg smpi.Config, policy string, procs int, chunk int64,
	run func(smpi.Config, int, int64) (*collectiveRun, error)) campaign.Job {
	return campaign.Job{
		ID:   id,
		Tags: map[string]string{"procs": fmt.Sprint(procs), "size": core.FormatBytes(chunk)},
		Run: func(ctx *campaign.Ctx) (*campaign.Outcome, error) {
			cfg.Seed = ctx.Seed
			if policy != "" {
				hosts, err := placement.Generate(policy, cfg.Platform, procs, ctx.Seed)
				if err != nil {
					return nil, err
				}
				cfg.Hosts = hosts
			}
			out, err := run(cfg, procs, chunk)
			if err != nil {
				return nil, err
			}
			vals := make(map[string]float64, procs)
			for i, t := range out.PerRank {
				vals[fmt.Sprintf("rank_%d", i)] = t
			}
			return &campaign.Outcome{
				SimulatedTime: core.Time(out.Total),
				Values:        vals,
				Payload:       out,
			}, nil
		},
	}
}

// collectiveRuns fans the given jobs out on the env's pool and unwraps the
// *collectiveRun payloads in submission order.
func collectiveRuns(env *Env, jobs []campaign.Job) ([]*collectiveRun, error) {
	outs, err := env.runCampaign(jobs)
	if err != nil {
		return nil, err
	}
	runs := make([]*collectiveRun, len(outs))
	for i, o := range outs {
		runs[i] = o.Payload.(*collectiveRun)
	}
	return runs, nil
}

// PerRankResult holds a per-rank comparison figure (Figures 7 and 11).
type PerRankResult struct {
	Table *Table
	// Series maps a configuration name to its per-rank times in seconds.
	Series map[string][]float64
}

// Figure7 reproduces Figure 7: per-process completion of a binomial-tree
// scatter of 4 MiB chunks over 16 processes — SMPI with and without
// contention vs emulated OpenMPI and MPICH2.
func Figure7(env *Env) (*PerRankResult, error) {
	const procs = 16
	chunk := int64(4 * core.MiB)

	noCfg := surfConfig(env.Griffon, env.Piecewise)
	noCfg.NoContention = true
	mpichCfg := emuConfig(env.Griffon)
	mpichCfg.Impl = mpich2()
	runs, err := collectiveRuns(env, []campaign.Job{
		collectiveJob("fig7/scatter/smpi", surfConfig(env.Griffon, env.Piecewise), procs, chunk, runScatter),
		collectiveJob("fig7/scatter/smpi-nocontention", noCfg, procs, chunk, runScatter),
		collectiveJob("fig7/scatter/openmpi", emuConfig(env.Griffon), procs, chunk, runScatter),
		collectiveJob("fig7/scatter/mpich2", mpichCfg, procs, chunk, runScatter),
	})
	if err != nil {
		return nil, err
	}
	withC, without, om, mp := runs[0], runs[1], runs[2], runs[3]

	res := &PerRankResult{
		Table: &Table{
			Title:  "Figure 7: per-process binomial scatter, 16 procs, 4MiB chunks (seconds)",
			Header: []string{"rank", "smpi_contention", "smpi_nocontention", "openmpi", "mpich2"},
		},
		Series: map[string][]float64{
			"smpi":              withC.PerRank,
			"smpi-nocontention": without.PerRank,
			"openmpi":           om.PerRank,
			"mpich2":            mp.PerRank,
		},
	}
	for i := 0; i < procs; i++ {
		res.Table.Add(i, withC.PerRank[i], without.PerRank[i], om.PerRank[i], mp.PerRank[i])
	}
	res.Table.Note("no-contention underestimates completion: %.3fs vs %.3fs (contention) vs %.3fs (OpenMPI)",
		without.Total, withC.Total, om.Total)
	sum := metrics.Summarize(nonZero(withC.PerRank), nonZero(om.PerRank))
	res.Table.Note("SMPI(contention) vs OpenMPI per-rank: %s", sum)
	return res, nil
}

// Figure11 reproduces Figure 11: per-process pairwise all-to-all with 4 MiB
// messages over 16 processes.
func Figure11(env *Env) (*PerRankResult, error) {
	const procs = 16
	chunk := int64(4 * core.MiB)

	noCfg := surfConfig(env.Griffon, env.Piecewise)
	noCfg.NoContention = true
	runs, err := collectiveRuns(env, []campaign.Job{
		collectiveJob("fig11/alltoall/smpi", surfConfig(env.Griffon, env.Piecewise), procs, chunk, runAlltoall),
		collectiveJob("fig11/alltoall/smpi-nocontention", noCfg, procs, chunk, runAlltoall),
		collectiveJob("fig11/alltoall/openmpi", emuConfig(env.Griffon), procs, chunk, runAlltoall),
	})
	if err != nil {
		return nil, err
	}
	withC, without, om := runs[0], runs[1], runs[2]

	res := &PerRankResult{
		Table: &Table{
			Title:  "Figure 11: per-process pairwise all-to-all, 16 procs, 4MiB messages (seconds)",
			Header: []string{"rank", "smpi_contention", "smpi_nocontention", "openmpi"},
		},
		Series: map[string][]float64{
			"smpi":              withC.PerRank,
			"smpi-nocontention": without.PerRank,
			"openmpi":           om.PerRank,
		},
	}
	for i := 0; i < procs; i++ {
		res.Table.Add(i, withC.PerRank[i], without.PerRank[i], om.PerRank[i])
	}
	sum := metrics.Summarize(nonZero(withC.PerRank), nonZero(om.PerRank))
	res.Table.Note("SMPI(contention) vs OpenMPI per-rank: %s", sum)
	res.Table.Note("no-contention vs OpenMPI per-rank: %s",
		metrics.Summarize(nonZero(without.PerRank), nonZero(om.PerRank)))
	return res, nil
}

// SweepResult holds a size- or proc-sweep accuracy figure
// (Figures 8, 9 and 12).
type SweepResult struct {
	Table *Table
	// X is the swept parameter (bytes or process count); Pred and Ref the
	// SMPI and reference completion times.
	X          []int64
	Pred, Ref  []float64
	Summary    metrics.Summary
	RefSeries2 []float64 // optional second reference (MPICH2 in Figure 9)
}

// sweepSizes are the message sizes of Figures 8 and 12.
func sweepSizes() []int64 {
	return []int64{64, 1024, 16 * core.KiB, 128 * core.KiB, core.MiB, 4 * core.MiB}
}

// Figure8 reproduces Figure 8: binomial scatter accuracy vs message size,
// 16 processes, SMPI vs OpenMPI.
func Figure8(env *Env) (*SweepResult, error) {
	return sweepCollective(env, "Figure 8: scatter time vs message size (16 procs)",
		runScatter)
}

// Figure12 reproduces Figure 12: pairwise all-to-all accuracy vs message
// size, 16 processes.
func Figure12(env *Env) (*SweepResult, error) {
	return sweepCollective(env, "Figure 12: all-to-all time vs message size (16 procs)",
		runAlltoall)
}

func sweepCollective(env *Env, title string,
	run func(smpi.Config, int, int64) (*collectiveRun, error)) (*SweepResult, error) {
	const procs = 16
	res := &SweepResult{Table: &Table{
		Title:  title,
		Header: []string{"size", "smpi_s", "openmpi_s", "err_pct"},
	}}
	// The whole size sweep — every (size, backend) point — is one campaign.
	sizes := sweepSizes()
	var jobs []campaign.Job
	for _, size := range sizes {
		jobs = append(jobs,
			collectiveJob(fmt.Sprintf("%s/size=%s/smpi", title, core.FormatBytes(size)),
				surfConfig(env.Griffon, env.Piecewise), procs, size, run),
			collectiveJob(fmt.Sprintf("%s/size=%s/openmpi", title, core.FormatBytes(size)),
				emuConfig(env.Griffon), procs, size, run),
		)
	}
	runs, err := collectiveRuns(env, jobs)
	if err != nil {
		return nil, err
	}
	for i, size := range sizes {
		s, o := runs[2*i], runs[2*i+1]
		res.X = append(res.X, size)
		res.Pred = append(res.Pred, s.Total)
		res.Ref = append(res.Ref, o.Total)
		res.Table.Add(core.FormatBytes(size), s.Total, o.Total,
			metrics.ToPercent(metrics.LogError(s.Total, o.Total)))
	}
	res.Summary = metrics.Summarize(res.Pred, res.Ref)
	res.Table.Note("overall: %s", res.Summary)
	large := metrics.Summarize(res.Pred[len(res.Pred)-2:], res.Ref[len(res.Ref)-2:])
	res.Table.Note("messages >= 1MiB: %s", large)
	return res, nil
}

// Figure9 reproduces Figure 9: binomial scatter with 4 MiB receive buffers
// and a growing number of processes (4 to 32); SMPI vs OpenMPI vs MPICH2.
func Figure9(env *Env) (*SweepResult, error) {
	chunk := int64(4 * core.MiB)
	res := &SweepResult{Table: &Table{
		Title:  "Figure 9: scatter time vs process count (4MiB receive buffers)",
		Header: []string{"procs", "smpi_s", "openmpi_s", "mpich2_s", "err_pct"},
	}}
	procCounts := []int{4, 8, 16, 32}
	var jobs []campaign.Job
	for _, procs := range procCounts {
		mpichCfg := emuConfig(env.Griffon)
		mpichCfg.Impl = mpich2()
		jobs = append(jobs,
			collectiveJob(fmt.Sprintf("fig9/procs=%d/smpi", procs),
				surfConfig(env.Griffon, env.Piecewise), procs, chunk, runScatter),
			collectiveJob(fmt.Sprintf("fig9/procs=%d/openmpi", procs),
				emuConfig(env.Griffon), procs, chunk, runScatter),
			collectiveJob(fmt.Sprintf("fig9/procs=%d/mpich2", procs),
				mpichCfg, procs, chunk, runScatter),
		)
	}
	runs, err := collectiveRuns(env, jobs)
	if err != nil {
		return nil, err
	}
	for i, procs := range procCounts {
		s, o, m := runs[3*i], runs[3*i+1], runs[3*i+2]
		res.X = append(res.X, int64(procs))
		res.Pred = append(res.Pred, s.Total)
		res.Ref = append(res.Ref, o.Total)
		res.RefSeries2 = append(res.RefSeries2, m.Total)
		res.Table.Add(procs, s.Total, o.Total, m.Total,
			metrics.ToPercent(metrics.LogError(s.Total, o.Total)))
	}
	res.Summary = metrics.Summarize(res.Pred, res.Ref)
	res.Table.Note("SMPI vs OpenMPI: %s", res.Summary)
	return res, nil
}

func nonZero(vals []float64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		if v <= 0 {
			v = 1e-12
		}
		out[i] = v
	}
	return out
}
