package experiments

import (
	"fmt"
	"sync"

	"smpigo/internal/calibrate"
	"smpigo/internal/campaign"
	"smpigo/internal/emu"
	"smpigo/internal/platform"
	"smpigo/internal/skampi"
	"smpigo/internal/smpi"
	"smpigo/internal/surf"
)

// Env is the shared experimental environment: both clusters and the three
// point-to-point models, calibrated once on the emulated griffon cluster
// exactly as the paper calibrates on the real griffon (Section 6).
type Env struct {
	Griffon *platform.Platform
	Gdx     *platform.Platform

	// CalSamples is the SKaMPI ping-pong dataset measured on the emulated
	// griffon cluster between two same-cabinet nodes.
	CalSamples []calibrate.Sample
	// CalInfo is the calibration route's physical parameters.
	CalInfo calibrate.RouteInfo

	// The three candidate models of Figures 3-5.
	Default   surf.NetModel
	BestFit   surf.NetModel
	Piecewise surf.NetModel

	// Workers bounds the worker pool every figure's campaign fans its
	// independent simulations out over (0 = GOMAXPROCS). Simulated results
	// are bit-identical at any setting; only wall-clock time changes.
	Workers int
	// Seed is the campaign seed; each job derives its own seed from it.
	Seed uint64

	// topoPlatforms caches generated topology platforms by axis name so
	// every job of a sweep shares one instance and its route cache.
	topoMu        sync.Mutex
	topoPlatforms map[string]*platform.Platform
}

var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

// NewEnv builds (and caches) the environment. Calibration is deterministic,
// so sharing the cached value across figures and benchmarks is sound.
func NewEnv() (*Env, error) {
	envOnce.Do(func() { envVal, envErr = buildEnv() })
	return envVal, envErr
}

func buildEnv() (*Env, error) {
	griffon, err := platform.Griffon().Build()
	if err != nil {
		return nil, err
	}
	gdx, err := platform.Gdx().Build()
	if err != nil {
		return nil, err
	}
	a, b := griffon.HostByID(0), griffon.HostByID(1)
	samples, err := skampi.PingPong(skampi.PingPongConfig{
		Base: smpi.Config{Platform: griffon, Backend: smpi.BackendEmu},
		A:    a, B: b,
	})
	if err != nil {
		return nil, fmt.Errorf("calibration ping-pong: %w", err)
	}
	info := skampi.RouteInfo(griffon, a, b)
	def, err := calibrate.DefaultAffine(samples, info)
	if err != nil {
		return nil, err
	}
	fit, err := calibrate.BestFitAffine(samples, info)
	if err != nil {
		return nil, err
	}
	pwl, err := calibrate.FitPiecewise(samples, info)
	if err != nil {
		return nil, err
	}
	return &Env{
		Griffon:    griffon,
		Gdx:        gdx,
		CalSamples: samples,
		CalInfo:    info,
		Default:    def,
		BestFit:    fit,
		Piecewise:  pwl,
	}, nil
}

// runCampaign fans the jobs out over the env's worker pool and returns
// their outcomes in submission order (independent of completion order), so
// figure harnesses can index results positionally.
func (e *Env) runCampaign(jobs []campaign.Job) ([]*campaign.Outcome, error) {
	sum := campaign.Run(campaign.Options{Workers: e.Workers, Seed: e.Seed}, jobs)
	return sum.Outcomes()
}

// surfConfig returns an SMPI (analytical backend) config on plat with the
// given model.
func surfConfig(plat *platform.Platform, model surf.NetModel) smpi.Config {
	return smpi.Config{Platform: plat, Backend: smpi.BackendSurf, Model: model}
}

// emuConfig returns a "real run" config on plat (emulated OpenMPI).
func emuConfig(plat *platform.Platform) smpi.Config {
	return smpi.Config{Platform: plat, Backend: smpi.BackendEmu}
}

// mpich2 returns the emulated MPICH2 parameter set.
func mpich2() emu.MPIImpl { return emu.MPICH2() }
