package experiments

import (
	"flag"
	"os"
	"testing"

	"smpigo/internal/lmm"
)

// TestMain arms lmm.CheckAfterSolve for the campaign suite: the golden
// fingerprint tests and figure reproductions drive millions of solver steps
// through realistic traffic, so invariant checking here is the broadest
// net for solver regressions (see the hook's doc in internal/lmm).
// Benchmark runs are exempt — gate baselines assume uninstrumented solves.
func TestMain(m *testing.M) {
	flag.Parse()
	if f := flag.Lookup("test.bench"); f == nil || f.Value.String() == "" {
		lmm.CheckAfterSolve = true
	}
	os.Exit(m.Run())
}
