package experiments

import (
	"fmt"

	"smpigo/internal/campaign"
	"smpigo/internal/core"
	"smpigo/internal/smpi"
)

// PlacementSweepResult holds the placement-sweep experiment: how the
// rank-to-host mapping interacts with the interconnect's deterministic
// routing. Times maps "<topo>/<op>/<placement>" to the collective's
// completion time in seconds.
type PlacementSweepResult struct {
	Table *Table
	Times map[string]float64
}

// placementSweepTopos are the swept platforms: the acceptance pair — a
// full-bisection two-level fat-tree and a 4x4x4 torus, on which the "auto"
// collective mode resolves to different algorithms — plus the oversubscribed
// three-level fattree64, where the spine is thin enough for the mapping to
// decide whether D-mod-k routes stay under the leaf switches or converge on
// shared spine cables.
func placementSweepTopos() []string {
	return []string{"fattree:4x4:1x4", "fattree64", "torus:4x4x4"}
}

// placementSweepPolicies is the swept placement axis in display order.
func placementSweepPolicies() []string { return []string{"block", "rr", "random"} }

// PlacementSweep sweeps rank placement (block, round-robin, random) against
// interconnect shape for an auto-selected allreduce, a forced ring
// allreduce, and a pairwise all-to-all. Every rank count fills its machine,
// so the policies are pure permutations of the same hosts: under "block"
// consecutive ranks share a leaf switch (or a torus row), so the neighbor
// exchanges of ring schedules ride local links; under "rr" consecutive
// ranks sit in different leaves, so the same schedule's traffic all climbs
// into the spine, where D-mod-k routing converges flows towards each
// destination onto the same cables. On a torus, block and rr complete
// identically — dealing ranks across rows just renames the dimensions of a
// vertex-transitive graph — which is itself a routing fact the table
// exposes. chunk is the per-rank payload in bytes (must be a multiple of
// 8; 0 means 256 KiB).
func PlacementSweep(env *Env, chunk int64) (*PlacementSweepResult, error) {
	if chunk == 0 {
		chunk = 256 * core.KiB
	}
	if err := checkFloat64Payload("placement sweep", chunk); err != nil {
		return nil, err
	}
	// The ops pair the auto-selected algorithms with a forced ring
	// allreduce: ring schedules only talk to rank neighbors, so they are
	// maximally placement-sensitive on fat-trees — "block" keeps most hops
	// under the leaf switches while "rr" pushes every hop through the
	// D-mod-k spine (on tori the auto mode picks ring itself).
	ops := []struct {
		name  string
		algos smpi.Algorithms
		run   func(smpi.Config, int, int64) (*collectiveRun, error)
	}{
		{"allreduce(auto)", smpi.Auto(), runAllreduce},
		{"allreduce(ring)", smpi.Algorithms{Allreduce: "ring"}, runAllreduce},
		{"alltoall", smpi.Auto(), runAlltoall},
	}
	type point struct {
		topo, op, place string
	}
	var points []point
	jobs := make([]campaign.Job, 0, len(placementSweepTopos())*len(ops)*3)
	for _, topo := range placementSweepTopos() {
		plat, err := env.gridPlatform(topo)
		if err != nil {
			return nil, err
		}
		for _, op := range ops {
			for _, place := range placementSweepPolicies() {
				points = append(points, point{topo, op.name, place})
				cfg := surfConfig(plat, env.Piecewise)
				cfg.Algorithms = op.algos
				jobs = append(jobs, placedCollectiveJob(
					fmt.Sprintf("placement/%s/%s/%s", topo, op.name, place),
					cfg, place, len(plat.Hosts()), chunk, op.run))
			}
		}
	}
	runs, err := collectiveRuns(env, jobs)
	if err != nil {
		return nil, err
	}

	res := &PlacementSweepResult{
		Table: &Table{
			Title: fmt.Sprintf("Placement sweep: block vs round-robin vs random, machine-filling ranks, %s per rank (seconds)",
				core.FormatBytes(chunk)),
			Header: []string{"topo", "op", "block_s", "rr_s", "random_s", "rr/block"},
		},
		Times: make(map[string]float64, len(points)),
	}
	for i, pt := range points {
		res.Times[pt.topo+"/"+pt.op+"/"+pt.place] = runs[i].Total
	}
	for _, topo := range placementSweepTopos() {
		for _, op := range ops {
			bl := res.Times[topo+"/"+op.name+"/block"]
			rr := res.Times[topo+"/"+op.name+"/rr"]
			rnd := res.Times[topo+"/"+op.name+"/random"]
			res.Table.Add(topo, op.name, bl, rr, rnd, rr/bl)
		}
	}
	for _, topo := range placementSweepTopos() {
		plat, err := env.gridPlatform(topo)
		if err != nil {
			return nil, err
		}
		resolved := smpi.Auto().Resolve(plat.Topo)
		res.Table.Note("%s: %d ranks, -collectives auto -> bcast=%s allreduce=%s",
			topo, len(plat.Hosts()), resolved.Bcast, resolved.Allreduce)
	}
	res.Table.Note("block keeps ring traffic under the leaf switches; rr forces it through the spine, where D-mod-k converges flows onto shared cables")
	res.Table.Note("on the torus block and rr tie exactly: dealing ranks across rows only renames the dimensions of a vertex-transitive graph")
	return res, nil
}
