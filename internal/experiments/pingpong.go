package experiments

import (
	"fmt"

	"smpigo/internal/calibrate"
	"smpigo/internal/campaign"
	"smpigo/internal/core"
	"smpigo/internal/metrics"
	"smpigo/internal/platform"
	"smpigo/internal/skampi"
	"smpigo/internal/smpi"
	"smpigo/internal/surf"
)

// PingPongResult is the outcome of one of Figures 3-5: per-size
// communication times for SKaMPI (emulated testbed) and the three SMPI
// models, plus the per-model accuracy summaries quoted in the paper.
type PingPongResult struct {
	Table     *Table
	Summaries map[string]metrics.Summary
}

// OrderingHolds reports the paper's headline claim for Figures 3-5: the
// piece-wise linear model beats the best-fit affine model, which beats the
// default affine model, in mean logarithmic error.
func (r *PingPongResult) OrderingHolds() bool {
	pwl := r.Summaries["piecewise"].MeanLog
	fit := r.Summaries["best-fit-affine"].MeanLog
	def := r.Summaries["default-affine"].MeanLog
	return pwl < fit && fit < def
}

// PiecewiseBest reports the transferability claim of Figures 4 and 5: the
// piece-wise linear model remains the most accurate when the calibration is
// replayed on a different cluster. (The relative order of the two affine
// models is not guaranteed to transfer and the paper does not claim it.)
func (r *PingPongResult) PiecewiseBest() bool {
	pwl := r.Summaries["piecewise"].MeanLog
	return pwl < r.Summaries["best-fit-affine"].MeanLog &&
		pwl < r.Summaries["default-affine"].MeanLog
}

// pingPongJob wraps one SKaMPI ping-pong run (on either backend) as a
// campaign job whose payload is the calibration sample set.
func pingPongJob(id string, base smpi.Config, a, b *platform.Host) campaign.Job {
	return campaign.Job{
		ID:   id,
		Tags: map[string]string{"op": "pingpong"},
		Run: func(ctx *campaign.Ctx) (*campaign.Outcome, error) {
			base.Seed = ctx.Seed
			samples, err := skampi.PingPong(skampi.PingPongConfig{Base: base, A: a, B: b})
			if err != nil {
				return nil, err
			}
			out := &campaign.Outcome{
				Values:  make(map[string]float64, len(samples)),
				Payload: samples,
			}
			for _, s := range samples {
				out.Values[fmt.Sprintf("t_%d", s.Size)] = s.Time
				out.SimulatedTime += core.Time(s.Time)
			}
			return out, nil
		},
	}
}

// pingPongFigure runs the SKaMPI reference on the emulator and each model
// on the analytical backend over the same endpoint pair — four independent
// simulations fanned out as one campaign.
func pingPongFigure(env *Env, plat *platform.Platform, a, b *platform.Host, title string) (*PingPongResult, error) {
	models := []surf.NetModel{env.Default, env.BestFit, env.Piecewise}
	jobs := []campaign.Job{pingPongJob(title+"/skampi", emuConfig(plat), a, b)}
	for _, m := range models {
		jobs = append(jobs, pingPongJob(title+"/"+m.Name, surfConfig(plat, m), a, b))
	}
	outs, err := env.runCampaign(jobs)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", title, err)
	}
	ref := outs[0].Payload.([]calibrate.Sample)
	predictions := make(map[string][]calibrate.Sample)
	for i, m := range models {
		predictions[m.Name] = outs[i+1].Payload.([]calibrate.Sample)
	}

	res := &PingPongResult{
		Table: &Table{
			Title:  title,
			Header: []string{"size", "skampi_us", "default_us", "bestfit_us", "pwl_us"},
		},
		Summaries: make(map[string]metrics.Summary),
	}
	for i, s := range ref {
		res.Table.Add(
			core.FormatBytes(s.Size),
			s.Time*1e6,
			predictions["default-affine"][i].Time*1e6,
			predictions["best-fit-affine"][i].Time*1e6,
			predictions["piecewise"][i].Time*1e6,
		)
	}
	for _, m := range models {
		var pred, refv []float64
		for i := range ref {
			pred = append(pred, predictions[m.Name][i].Time)
			refv = append(refv, ref[i].Time)
		}
		sum := metrics.Summarize(pred, refv)
		res.Summaries[m.Name] = sum
		res.Table.Note("%s: %s", m.Name, sum)
	}
	return res, nil
}

// Figure3 reproduces the paper's Figure 3: ping-pong on the calibration
// cluster (griffon), SKaMPI vs the three SMPI models.
func Figure3(env *Env) (*PingPongResult, error) {
	return pingPongFigure(env, env.Griffon,
		env.Griffon.HostByID(0), env.Griffon.HostByID(1),
		"Figure 3: ping-pong on griffon (calibration cluster, 1 switch)")
}

// Figure4 reproduces Figure 4: the griffon calibration replayed on the gdx
// cluster between two nodes behind the same switch.
func Figure4(env *Env) (*PingPongResult, error) {
	return pingPongFigure(env, env.Gdx,
		env.Gdx.HostByID(0), env.Gdx.HostByID(1),
		"Figure 4: ping-pong on gdx (griffon calibration, 1 switch)")
}

// Figure5 reproduces Figure 5: same as Figure 4 but between two gdx nodes
// three switches apart.
func Figure5(env *Env) (*PingPongResult, error) {
	a := env.Gdx.HostByID(0)
	var b *platform.Host
	for _, h := range env.Gdx.Hosts() {
		if h.Cabinet != a.Cabinet {
			b = h
			break
		}
	}
	if b == nil {
		return nil, fmt.Errorf("figure 5: no cross-cabinet host on gdx")
	}
	if platform.SwitchHops(a, b) != 3 {
		return nil, fmt.Errorf("figure 5: endpoints are not 3 switches apart")
	}
	return pingPongFigure(env, env.Gdx, a, b,
		"Figure 5: ping-pong on gdx across 3 switches (griffon calibration)")
}
