// Package core provides the foundational types shared by every simulation
// substrate in this repository: simulated time, unit parsing and formatting,
// a deterministic random number generator, an indexed binary-heap event
// queue, and small ID allocators.
//
// Nothing in this package knows about MPI, networks, or CPUs; it is the
// dependency-free bottom of the stack.
package core

import (
	"fmt"
	"math"
)

// Time is a point on the simulated clock, in seconds. Simulated time is a
// float64 like in SimGrid: analytical models produce real-valued completion
// dates and the kernel advances to the minimum of them.
type Time float64

// Duration is a span of simulated time, in seconds.
type Duration = Time

// Common time constants.
const (
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1
)

// TimeForever is the sentinel date used by models that currently have no
// pending event. It compares greater than every reachable simulation date.
const TimeForever Time = math.MaxFloat64

// Seconds returns t as a plain float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) }

// Micros returns t in microseconds, the unit the paper's figures use.
func (t Time) Micros() float64 { return float64(t) * 1e6 }

// String formats the time with a unit chosen for readability.
func (t Time) String() string {
	switch abs := math.Abs(float64(t)); {
	case t == TimeForever:
		return "forever"
	case abs >= 1 || abs == 0:
		return fmt.Sprintf("%.6gs", float64(t))
	case abs >= 1e-3:
		return fmt.Sprintf("%.6gms", float64(t)*1e3)
	default:
		return fmt.Sprintf("%.6gµs", float64(t)*1e6)
	}
}

// Byte size constants (binary, as used throughout the paper).
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
)

// FormatBytes renders a byte count in the binary unit that reads best, e.g.
// "4MiB" or "512B". It is used by benchmark harnesses when printing the
// rows of the paper's figures.
func FormatBytes(n int64) string {
	switch {
	case n >= GiB && n%GiB == 0:
		return fmt.Sprintf("%dGiB", n/GiB)
	case n >= MiB && n%MiB == 0:
		return fmt.Sprintf("%dMiB", n/MiB)
	case n >= KiB && n%KiB == 0:
		return fmt.Sprintf("%dKiB", n/KiB)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// FormatRate renders a bandwidth in bits per second using decimal units, the
// convention for network links ("1Gbps", "10Gbps").
func FormatRate(bytesPerSec float64) string {
	bits := bytesPerSec * 8
	switch {
	case bits >= 1e9:
		return fmt.Sprintf("%.3gGbps", bits/1e9)
	case bits >= 1e6:
		return fmt.Sprintf("%.3gMbps", bits/1e6)
	case bits >= 1e3:
		return fmt.Sprintf("%.3gKbps", bits/1e3)
	default:
		return fmt.Sprintf("%.3gbps", bits)
	}
}
