package core

import "math"

// RNG is a deterministic SplitMix64 pseudo-random generator. Every source of
// randomness in the simulator flows through a seeded RNG so that runs are
// reproducible; the standard library's global rand is never used.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("core: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return mean + stddev*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// Split derives an independent child generator, useful to give each
// simulated rank its own stream without cross-rank coupling.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Derive returns an independent child generator keyed by label, without
// consuming any of the parent's stream: unlike Split, the parent state is
// read but not advanced, so the derived stream depends only on (seed, label)
// and never on how many other children were derived first. Campaign runners
// rely on this to hand every job a seed that is identical regardless of
// worker count or scheduling order.
func (r *RNG) Derive(label string) *RNG {
	return NewRNG(DeriveSeed(r.state, label))
}

// DeriveSeed mixes a seed with a label into a well-distributed child seed.
// It hashes the label FNV-1a style into the seed and passes the result
// through the SplitMix64 finalizer twice, so labels differing in one bit
// (or one character) yield decorrelated streams.
func DeriveSeed(seed uint64, label string) uint64 {
	h := seed ^ 0xcbf29ce484222325
	for i := 0; i < len(label); i++ {
		h = (h ^ uint64(label[i])) * 0x100000001b3
	}
	return mix64(mix64(h + 0x9e3779b97f4a7c15))
}

// mix64 is the SplitMix64 finalizer: a bijective avalanche over 64 bits.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
