package core

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseBytes parses a human-readable byte count such as "64KiB", "4MiB",
// "1500B" or a bare number. Binary suffixes (KiB/MiB/GiB) are powers of two;
// decimal suffixes (kB/MB/GB) are powers of ten, matching SimGrid's platform
// DTD conventions.
func ParseBytes(s string) (int64, error) {
	v, err := parseSuffixed(s, map[string]float64{
		"":    1,
		"b":   1,
		"kib": float64(KiB),
		"mib": float64(MiB),
		"gib": float64(GiB),
		"kb":  1e3,
		"mb":  1e6,
		"gb":  1e9,
	})
	if err != nil {
		return 0, fmt.Errorf("parse bytes %q: %w", s, err)
	}
	return int64(v), nil
}

// ParseRate parses a bandwidth such as "1Gbps", "125MBps" or a bare number
// of bytes per second, and returns bytes per second. "bps"-family suffixes
// are bits per second; "Bps"-family suffixes are bytes per second.
func ParseRate(s string) (float64, error) {
	// "Bps" (capital B) means bytes per second, "bps" means bits per
	// second; the distinction is case-sensitive so it is resolved here
	// before the case-insensitive prefix lookup.
	perByte := false
	if n := len(s); n >= 3 && s[n-2] == 'p' && s[n-1] == 's' {
		if s[n-3] == 'B' {
			perByte = true
		}
		s = s[:n-3] + "X" // placeholder suffix consumed by the table below
	}
	v, err := parseSuffixed(s, map[string]float64{
		"":   1,
		"x":  1,
		"kx": 1e3,
		"mx": 1e6,
		"gx": 1e9,
	})
	if err != nil {
		return 0, fmt.Errorf("parse rate %q: %w", s, err)
	}
	if !perByte && v != 0 && len(s) > 0 && s[len(s)-1] == 'X' {
		v /= 8
	}
	return v, nil
}

// ParseDuration parses a simulated duration such as "25us", "1.5ms", "2s"
// or a bare number of seconds.
func ParseDuration(s string) (Duration, error) {
	v, err := parseSuffixed(s, map[string]float64{
		"":   1,
		"s":  1,
		"ms": 1e-3,
		"us": 1e-6,
		"µs": 1e-6,
		"ns": 1e-9,
	})
	if err != nil {
		return 0, fmt.Errorf("parse duration %q: %w", s, err)
	}
	return Duration(v), nil
}

// ParseFlops parses a compute speed or amount such as "1Gf", "2.5Gf",
// "500Mf" or a bare number of flops.
func ParseFlops(s string) (float64, error) {
	v, err := parseSuffixed(s, map[string]float64{
		"":   1,
		"f":  1,
		"kf": 1e3,
		"mf": 1e6,
		"gf": 1e9,
		"tf": 1e12,
	})
	if err != nil {
		return 0, fmt.Errorf("parse flops %q: %w", s, err)
	}
	return v, nil
}

// parseSuffixed splits s into a float prefix and a unit suffix, looks the
// suffix up in units (keys compared case-sensitively first, then lowercase),
// and returns value*multiplier.
func parseSuffixed(s string, units map[string]float64) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty value")
	}
	i := len(s)
	for i > 0 {
		c := s[i-1]
		if (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-' {
			// Careful: "e" can be part of a suffix only if the tail still
			// parses; the loop below retries on parse failure.
			break
		}
		i--
	}
	// Try progressively shorter numeric prefixes so that values such as
	// "2e6f" and "100Mf" both parse.
	for j := i; j >= 1; j-- {
		num, err := strconv.ParseFloat(s[:j], 64)
		if err != nil {
			continue
		}
		suffix := s[j:]
		if m, ok := units[suffix]; ok {
			return num * m, nil
		}
		if m, ok := units[strings.ToLower(suffix)]; ok {
			return num * m, nil
		}
	}
	return 0, fmt.Errorf("unrecognized unit in %q", s)
}
