package core

// Event is an entry in an EventQueue: an opaque payload scheduled at a
// simulated date. Ties are broken by insertion order so that simulations are
// deterministic regardless of heap internals.
type Event struct {
	At      Time
	Payload any

	seq   uint64
	index int
}

// EventQueue is a binary min-heap of events ordered by date then insertion
// sequence. The zero value is ready to use. It supports O(log n) push/pop
// and O(log n) removal of an arbitrary event (needed when, e.g., a packet
// transmission is preempted).
type EventQueue struct {
	items []*Event
	seq   uint64
}

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return len(q.items) }

// Push schedules payload at date at and returns the event handle, which can
// later be passed to Remove.
func (q *EventQueue) Push(at Time, payload any) *Event {
	e := &Event{At: at, Payload: payload, seq: q.seq}
	q.seq++
	e.index = len(q.items)
	q.items = append(q.items, e)
	q.up(e.index)
	return e
}

// Peek returns the earliest event without removing it, or nil if empty.
func (q *EventQueue) Peek() *Event {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

// Pop removes and returns the earliest event, or nil if empty.
func (q *EventQueue) Pop() *Event {
	if len(q.items) == 0 {
		return nil
	}
	top := q.items[0]
	q.removeAt(0)
	return top
}

// Remove deletes e from the queue. It reports whether the event was still
// pending. Removing an already-popped event is a no-op.
func (q *EventQueue) Remove(e *Event) bool {
	if e == nil || e.index < 0 || e.index >= len(q.items) || q.items[e.index] != e {
		return false
	}
	q.removeAt(e.index)
	return true
}

func (q *EventQueue) removeAt(i int) {
	last := len(q.items) - 1
	q.items[i].index = -1
	if i != last {
		q.items[i] = q.items[last]
		q.items[i].index = i
	}
	q.items = q.items[:last]
	if i < len(q.items) {
		q.down(i)
		q.up(i)
	}
}

func (q *EventQueue) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

func (q *EventQueue) swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].index = i
	q.items[j].index = j
}

func (q *EventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *EventQueue) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(q.items) && q.less(l, smallest) {
			smallest = l
		}
		if r < len(q.items) && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
