package core

import (
	"math"
	"testing"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0s"},
		{1.5, "1.5s"},
		{0.002, "2ms"},
		{25e-6, "25µs"},
		{TimeForever, "forever"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestTimeMicros(t *testing.T) {
	if got := Time(0.0025).Micros(); math.Abs(got-2500) > 1e-9 {
		t.Errorf("Micros() = %v, want 2500", got)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{1024, "1KiB"},
		{64 * KiB, "64KiB"},
		{4 * MiB, "4MiB"},
		{3 * GiB, "3GiB"},
		{1500, "1500B"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatRate(t *testing.T) {
	if got := FormatRate(125e6); got != "1Gbps" {
		t.Errorf("FormatRate(125e6) = %q, want 1Gbps", got)
	}
	if got := FormatRate(1.25e9); got != "10Gbps" {
		t.Errorf("FormatRate(1.25e9) = %q, want 10Gbps", got)
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"0", 0},
		{"1500", 1500},
		{"1500B", 1500},
		{"64KiB", 64 * KiB},
		{"4MiB", 4 * MiB},
		{"1GiB", GiB},
		{"1kB", 1000},
		{"2MB", 2000000},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil {
			t.Fatalf("ParseBytes(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	if _, err := ParseBytes("12xyz"); err == nil {
		t.Error("ParseBytes(12xyz) should fail")
	}
	if _, err := ParseBytes(""); err == nil {
		t.Error("ParseBytes(empty) should fail")
	}
}

func TestParseRate(t *testing.T) {
	got, err := ParseRate("1Gbps")
	if err != nil || math.Abs(got-125e6) > 1e-6 {
		t.Errorf("ParseRate(1Gbps) = %v, %v; want 125e6", got, err)
	}
	got, err = ParseRate("10Gbps")
	if err != nil || math.Abs(got-1.25e9) > 1e-3 {
		t.Errorf("ParseRate(10Gbps) = %v, %v; want 1.25e9", got, err)
	}
	got, err = ParseRate("125MBps")
	if err != nil || math.Abs(got-125e6) > 1e-6 {
		t.Errorf("ParseRate(125MBps) = %v, %v; want 125e6", got, err)
	}
}

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want Duration
	}{
		{"25us", 25e-6},
		{"1.5ms", 1.5e-3},
		{"2s", 2},
		{"100ns", 100e-9},
		{"0.5", 0.5},
	}
	for _, c := range cases {
		got, err := ParseDuration(c.in)
		if err != nil {
			t.Fatalf("ParseDuration(%q): %v", c.in, err)
		}
		if math.Abs(float64(got-c.want)) > 1e-15 {
			t.Errorf("ParseDuration(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseFlops(t *testing.T) {
	got, err := ParseFlops("2.5Gf")
	if err != nil || got != 2.5e9 {
		t.Errorf("ParseFlops(2.5Gf) = %v, %v; want 2.5e9", got, err)
	}
	got, err = ParseFlops("2e6f")
	if err != nil || got != 2e6 {
		t.Errorf("ParseFlops(2e6f) = %v, %v; want 2e6", got, err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(9)
	counts := make([]int, 5)
	for i := 0; i < 5000; i++ {
		counts[r.Intn(5)]++
	}
	for i, c := range counts {
		if c < 700 {
			t.Errorf("bucket %d severely under-represented: %d", i, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("mean = %v, want ~10", mean)
	}
	if math.Abs(variance-4) > 0.3 {
		t.Errorf("variance = %v, want ~4", variance)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(5)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Error("split streams should differ")
	}
}
