package core

import "testing"

func TestDeriveDoesNotAdvanceParent(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	_ = a.Derive("x")
	_ = a.Derive("y")
	if a.Uint64() != b.Uint64() {
		t.Error("Derive consumed the parent's stream")
	}
}

func TestDeriveIndependentOfCallOrder(t *testing.T) {
	a, b := NewRNG(5), NewRNG(5)
	ax, ay := a.Derive("x").Uint64(), a.Derive("y").Uint64()
	by, bx := b.Derive("y").Uint64(), b.Derive("x").Uint64()
	if ax != bx || ay != by {
		t.Error("derived streams depend on derivation order")
	}
}

func TestDeriveDistinctLabels(t *testing.T) {
	r := NewRNG(1)
	seen := make(map[uint64]string)
	labels := []string{"", "a", "b", "ab", "ba", "job-000", "job-001", "fig8/size=64KiB/smpi"}
	for _, l := range labels {
		v := r.Derive(l).Uint64()
		if prev, dup := seen[v]; dup {
			t.Errorf("labels %q and %q collide", prev, l)
		}
		seen[v] = l
	}
}

func TestDeriveSeedSensitivity(t *testing.T) {
	// One-bit seed changes and one-character label changes must both move
	// the derived seed.
	if DeriveSeed(0, "job") == DeriveSeed(1, "job") {
		t.Error("seed bit flip did not change derived seed")
	}
	if DeriveSeed(42, "job-000") == DeriveSeed(42, "job-001") {
		t.Error("label change did not change derived seed")
	}
}
