package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogErrorSymmetry(t *testing.T) {
	// The motivating property from the paper: doubling and halving give
	// the same error, unlike relative error.
	if LogError(2, 1) != LogError(1, 2) {
		t.Error("log error must be symmetric")
	}
	if RelativeError(2, 1) == -RelativeError(0.5, 1) {
		t.Error("relative error is expected to be asymmetric (sanity)")
	}
}

func TestLogErrorExactValues(t *testing.T) {
	if got := LogError(math.E, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("LogError(e,1) = %v, want 1", got)
	}
	if got := LogError(5, 5); got != 0 {
		t.Errorf("LogError(5,5) = %v, want 0", got)
	}
}

func TestToPercent(t *testing.T) {
	// A log error of ln(2) is a 100% discrepancy.
	if got := ToPercent(math.Log(2)); math.Abs(got-100) > 1e-9 {
		t.Errorf("ToPercent(ln2) = %v, want 100", got)
	}
	if got := ToPercent(0); got != 0 {
		t.Errorf("ToPercent(0) = %v, want 0", got)
	}
}

func TestLogErrorPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	LogError(0, 1)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 4}, []float64{1, 1, 1})
	if s.N != 3 {
		t.Errorf("N = %d", s.N)
	}
	wantMean := (0 + math.Log(2) + math.Log(4)) / 3
	if math.Abs(s.MeanLog-wantMean) > 1e-12 {
		t.Errorf("MeanLog = %v, want %v", s.MeanLog, wantMean)
	}
	if math.Abs(s.MaxLog-math.Log(4)) > 1e-12 {
		t.Errorf("MaxLog = %v", s.MaxLog)
	}
	if math.Abs(s.WorstPct()-300) > 1e-9 {
		t.Errorf("WorstPct = %v, want 300", s.WorstPct())
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestSummarizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	Summarize([]float64{1}, []float64{1, 2})
}

func TestLogErrorProperties(t *testing.T) {
	f := func(a, b uint32) bool {
		x := float64(a%10000) + 1
		r := float64(b%10000) + 1
		e := LogError(x, r)
		if e < 0 {
			return false
		}
		if e != LogError(r, x) {
			return false
		}
		// Scale invariance: errors depend only on the ratio.
		return math.Abs(e-LogError(10*x, 10*r)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
