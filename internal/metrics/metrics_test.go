package metrics

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestLogErrorSymmetry(t *testing.T) {
	// The motivating property from the paper: doubling and halving give
	// the same error, unlike relative error.
	if LogError(2, 1) != LogError(1, 2) {
		t.Error("log error must be symmetric")
	}
	if RelativeError(2, 1) == -RelativeError(0.5, 1) {
		t.Error("relative error is expected to be asymmetric (sanity)")
	}
}

func TestLogErrorExactValues(t *testing.T) {
	if got := LogError(math.E, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("LogError(e,1) = %v, want 1", got)
	}
	if got := LogError(5, 5); got != 0 {
		t.Errorf("LogError(5,5) = %v, want 0", got)
	}
}

func TestToPercent(t *testing.T) {
	// A log error of ln(2) is a 100% discrepancy.
	if got := ToPercent(math.Log(2)); math.Abs(got-100) > 1e-9 {
		t.Errorf("ToPercent(ln2) = %v, want 100", got)
	}
	if got := ToPercent(0); got != 0 {
		t.Errorf("ToPercent(0) = %v, want 0", got)
	}
}

func TestLogErrorPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	LogError(0, 1)
}

// TestCheckedRejections pins the validity checks across the full table of
// bad inputs. NaN is the regression case: the old x <= 0 guard let it
// through (every NaN comparison is false) and math.Log silently poisoned
// the aggregate.
func TestCheckedRejections(t *testing.T) {
	nan := math.NaN()
	logCases := []struct {
		name   string
		x, ref float64
		ok     bool
	}{
		{"valid", 2, 1, true},
		{"zero prediction", 0, 1, false},
		{"zero reference", 1, 0, false},
		{"negative prediction", -3, 1, false},
		{"negative reference", 1, -3, false},
		{"NaN prediction", nan, 1, false},
		{"NaN reference", 1, nan, false},
		{"both NaN", nan, nan, false},
	}
	for _, tc := range logCases {
		_, err := LogErrorChecked(tc.x, tc.ref)
		if (err == nil) != tc.ok {
			t.Errorf("LogErrorChecked(%v, %v) [%s]: err = %v, want ok=%v", tc.x, tc.ref, tc.name, err, tc.ok)
		}
	}
	relCases := []struct {
		name   string
		x, ref float64
		ok     bool
	}{
		{"valid", 2, 1, true},
		{"negative allowed", -2, -1, true},
		{"zero reference", 1, 0, false},
		{"NaN reference", 1, nan, false},
		{"NaN prediction", nan, 1, false},
	}
	for _, tc := range relCases {
		_, err := RelativeErrorChecked(tc.x, tc.ref)
		if (err == nil) != tc.ok {
			t.Errorf("RelativeErrorChecked(%v, %v) [%s]: err = %v, want ok=%v", tc.x, tc.ref, tc.name, err, tc.ok)
		}
	}
}

// TestSummarizeCheckedContext verifies the error variants carry enough
// context to locate a bad point in a measured series.
func TestSummarizeCheckedContext(t *testing.T) {
	if _, err := SummarizeChecked([]float64{1}, []float64{1, 2}); err == nil || !strings.Contains(err.Error(), "1 predictions vs 2 references") {
		t.Errorf("mismatch error lacks lengths: %v", err)
	}
	if _, err := SummarizeChecked(nil, nil); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Errorf("empty error: %v", err)
	}
	_, err := SummarizeChecked([]float64{1, 2, math.NaN(), 4}, []float64{1, 1, 1, 1})
	if err == nil || !strings.Contains(err.Error(), "point 2 of 4") {
		t.Errorf("NaN point error lacks index context: %v", err)
	}
	s, err := SummarizeChecked([]float64{1, 2}, []float64{1, 1})
	if err != nil || s.N != 2 {
		t.Errorf("valid series: %v, %v", s, err)
	}
}

func TestSummarizeNaNPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("want panic on NaN point")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "point 1 of 2") {
			t.Errorf("panic message lacks context: %q", msg)
		}
	}()
	Summarize([]float64{1, math.NaN()}, []float64{1, 1})
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 4}, []float64{1, 1, 1})
	if s.N != 3 {
		t.Errorf("N = %d", s.N)
	}
	wantMean := (0 + math.Log(2) + math.Log(4)) / 3
	if math.Abs(s.MeanLog-wantMean) > 1e-12 {
		t.Errorf("MeanLog = %v, want %v", s.MeanLog, wantMean)
	}
	if math.Abs(s.MaxLog-math.Log(4)) > 1e-12 {
		t.Errorf("MaxLog = %v", s.MaxLog)
	}
	if math.Abs(s.WorstPct()-300) > 1e-9 {
		t.Errorf("WorstPct = %v, want 300", s.WorstPct())
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestSummarizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	Summarize([]float64{1}, []float64{1, 2})
}

func TestLogErrorProperties(t *testing.T) {
	f := func(a, b uint32) bool {
		x := float64(a%10000) + 1
		r := float64(b%10000) + 1
		e := LogError(x, r)
		if e < 0 {
			return false
		}
		if e != LogError(r, x) {
			return false
		}
		// Scale invariance: errors depend only on the ratio.
		return math.Abs(e-LogError(10*x, 10*r)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
