// Package metrics implements the accuracy metrics of the paper's Section
// 7.1: the logarithmic error of Velho & Legrand, which unlike the relative
// error is symmetric under over- and under-estimation, aggregates with
// ordinary mean/max, and converts back to a familiar percentage with
// exp(err)-1.
//
// Every metric has two forms: a Checked variant returning a descriptive
// error (for validating measured data, where a bad point should fail one
// series, not the process) and the plain variant that panics with the same
// message (for programmatic inputs, where a bad value is a caller bug).
// Validity checks are written as !(x > 0) rather than x <= 0 so that NaN —
// for which every comparison is false — is rejected instead of flowing
// silently through math.Log and poisoning the aggregate.
package metrics

import (
	"fmt"
	"math"
)

// LogErrorChecked returns |ln(x) - ln(ref)|, or an error unless both values
// are positive and non-NaN.
func LogErrorChecked(x, ref float64) (float64, error) {
	if !(x > 0) {
		return 0, fmt.Errorf("metrics: log error needs a positive prediction, got %v (reference %v)", x, ref)
	}
	if !(ref > 0) {
		return 0, fmt.Errorf("metrics: log error needs a positive reference, got %v (prediction %v)", ref, x)
	}
	return math.Abs(math.Log(x) - math.Log(ref)), nil
}

// LogError returns |ln(x) - ln(ref)|. Both values must be positive and
// non-NaN; anything else panics.
func LogError(x, ref float64) float64 {
	e, err := LogErrorChecked(x, ref)
	if err != nil {
		panic(err.Error())
	}
	return e
}

// ToPercent converts a logarithmic error to the percentage the paper
// reports: e^err - 1, as a percentage value (8.63 means 8.63%).
func ToPercent(logErr float64) float64 {
	return (math.Exp(logErr) - 1) * 100
}

// Summary aggregates logarithmic errors over a series of predictions.
type Summary struct {
	// MeanLog and MaxLog are the average and worst logarithmic errors.
	MeanLog float64
	MaxLog  float64
	// N is the number of points aggregated.
	N int
}

// MeanPct returns the mean error as a percentage (the paper's "average
// error overall").
func (s Summary) MeanPct() float64 { return ToPercent(s.MeanLog) }

// WorstPct returns the maximum error as a percentage (the paper's "worst
// case").
func (s Summary) WorstPct() float64 { return ToPercent(s.MaxLog) }

// String formats the summary the way the paper quotes errors.
func (s Summary) String() string {
	return fmt.Sprintf("%.2f%% avg (worst %.2f%%, n=%d)", s.MeanPct(), s.WorstPct(), s.N)
}

// SummarizeChecked computes the error summary of predictions against
// references. The slices must have equal nonzero length and every point
// must be positive and non-NaN; the error names the offending index.
func SummarizeChecked(pred, ref []float64) (Summary, error) {
	if len(pred) != len(ref) {
		return Summary{}, fmt.Errorf("metrics: summarize on mismatched series: %d predictions vs %d references", len(pred), len(ref))
	}
	if len(pred) == 0 {
		return Summary{}, fmt.Errorf("metrics: summarize on empty series")
	}
	var s Summary
	for i := range pred {
		e, err := LogErrorChecked(pred[i], ref[i])
		if err != nil {
			return Summary{}, fmt.Errorf("%w (point %d of %d)", err, i, len(pred))
		}
		s.MeanLog += e
		if e > s.MaxLog {
			s.MaxLog = e
		}
	}
	s.MeanLog /= float64(len(pred))
	s.N = len(pred)
	return s, nil
}

// Summarize computes the error summary of predictions against references,
// panicking where SummarizeChecked would error.
func Summarize(pred, ref []float64) Summary {
	s, err := SummarizeChecked(pred, ref)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// RelativeErrorChecked returns (x-ref)/ref, the biased metric the paper's
// Section 7.1 discusses before adopting the logarithmic error, or an error
// for a zero or NaN reference or a NaN prediction.
func RelativeErrorChecked(x, ref float64) (float64, error) {
	if ref == 0 || math.IsNaN(ref) {
		return 0, fmt.Errorf("metrics: relative error needs a nonzero reference, got %v (prediction %v)", ref, x)
	}
	if math.IsNaN(x) {
		return 0, fmt.Errorf("metrics: relative error on NaN prediction (reference %v)", ref)
	}
	return (x - ref) / ref, nil
}

// RelativeError returns (x-ref)/ref, panicking where RelativeErrorChecked
// would error.
func RelativeError(x, ref float64) float64 {
	e, err := RelativeErrorChecked(x, ref)
	if err != nil {
		panic(err.Error())
	}
	return e
}
