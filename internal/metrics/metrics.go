// Package metrics implements the accuracy metrics of the paper's Section
// 7.1: the logarithmic error of Velho & Legrand, which unlike the relative
// error is symmetric under over- and under-estimation, aggregates with
// ordinary mean/max, and converts back to a familiar percentage with
// exp(err)-1.
package metrics

import (
	"fmt"
	"math"
)

// LogError returns |ln(x) - ln(ref)|. Both values must be positive.
func LogError(x, ref float64) float64 {
	if x <= 0 || ref <= 0 {
		panic(fmt.Sprintf("metrics: LogError needs positive values, got %v, %v", x, ref))
	}
	return math.Abs(math.Log(x) - math.Log(ref))
}

// ToPercent converts a logarithmic error to the percentage the paper
// reports: e^err - 1, as a percentage value (8.63 means 8.63%).
func ToPercent(logErr float64) float64 {
	return (math.Exp(logErr) - 1) * 100
}

// Summary aggregates logarithmic errors over a series of predictions.
type Summary struct {
	// MeanLog and MaxLog are the average and worst logarithmic errors.
	MeanLog float64
	MaxLog  float64
	// N is the number of points aggregated.
	N int
}

// MeanPct returns the mean error as a percentage (the paper's "average
// error overall").
func (s Summary) MeanPct() float64 { return ToPercent(s.MeanLog) }

// WorstPct returns the maximum error as a percentage (the paper's "worst
// case").
func (s Summary) WorstPct() float64 { return ToPercent(s.MaxLog) }

// String formats the summary the way the paper quotes errors.
func (s Summary) String() string {
	return fmt.Sprintf("%.2f%% avg (worst %.2f%%, n=%d)", s.MeanPct(), s.WorstPct(), s.N)
}

// Summarize computes the error summary of predictions against references.
// The slices must have equal nonzero length.
func Summarize(pred, ref []float64) Summary {
	if len(pred) != len(ref) || len(pred) == 0 {
		panic(fmt.Sprintf("metrics: Summarize on %d/%d points", len(pred), len(ref)))
	}
	var s Summary
	for i := range pred {
		e := LogError(pred[i], ref[i])
		s.MeanLog += e
		if e > s.MaxLog {
			s.MaxLog = e
		}
	}
	s.MeanLog /= float64(len(pred))
	s.N = len(pred)
	return s
}

// RelativeError returns (x-ref)/ref, the biased metric the paper's Section
// 7.1 discusses before adopting the logarithmic error.
func RelativeError(x, ref float64) float64 {
	if ref == 0 {
		panic("metrics: RelativeError with zero reference")
	}
	return (x - ref) / ref
}
