package simix

import (
	"fmt"
	"sort"

	"smpigo/internal/core"
	"smpigo/internal/surf/actionheap"
)

// Model is a pluggable resource model (network, CPU, ...). The kernel calls
// NextEvent to learn the model's earliest pending completion date
// (core.TimeForever if none) and Advance to move the model's internal state
// forward; Advance must fulfill the futures of every activity completing at
// or before the target date.
//
// The kernel step contract, which the models' sublinear event paths build
// on:
//
//   - Once per scheduling round — after every ready actor has run and
//     blocked — the kernel polls each model's NextEvent exactly once,
//     advances the clock to the minimum across models and timers, then
//     calls every model's Advance with that date, in registration order.
//   - NextEvent must never return a date earlier than the last Advance
//     target (the kernel treats an event in the past as a fatal model bug).
//     It need not be a pure function: models backed by a lazily-invalidated
//     heap (see surf, emu, and package actionheap) discard stale entries
//     while peeking, mutating internal bookkeeping but never observable
//     simulation state.
//   - Advance is prefix-monotone: processing everything up to t1 and then
//     up to t2 >= t1 must be equivalent to processing up to t2 directly.
//     The kernel relies on this to hand every model the same step date
//     regardless of which model produced it.
//   - Fulfill runs OnFulfill callbacks synchronously, so an Advance that
//     completes an activity may re-enter a model (a callback starting a new
//     flow or compute task at the current date). Models must accept
//     starting activities mid-Advance; the new activity's events belong to
//     later dates and fire on subsequent steps.
type Model interface {
	NextEvent() core.Time
	Advance(to core.Time)
}

// Future is a one-shot completion handle. Models fulfill futures; actors
// block on them via Proc.Wait and friends.
type Future struct {
	done      bool
	value     any
	waiters   []*Actor
	callbacks []func(any)
}

// NewFuture returns an unfulfilled future.
func NewFuture() *Future { return &Future{} }

// Done reports whether the future has been fulfilled.
func (f *Future) Done() bool { return f.done }

// Value returns the fulfillment value (nil until fulfilled).
func (f *Future) Value() any { return f.value }

// Actor is a simulated process. Application code never touches Actor
// directly; it receives a *Proc context instead.
type Actor struct {
	ID   int
	Name string

	kernel *Kernel
	resume chan struct{}
	proc   *Proc
	done   bool
	queued bool
}

// Proc is the execution context handed to actor functions. All methods must
// be called from the actor's own goroutine.
type Proc struct {
	actor *Actor
}

// Stats accumulates kernel counters when attached via the Stats field:
// scheduling rounds (clock advances), actor resumptions, and timer
// fulfillments. Every hook is a nil check; a kernel without stats attached
// pays nothing.
type Stats struct {
	// Rounds counts clock advances — one per scheduling round in which every
	// actor was blocked and time moved to the next event.
	Rounds uint64
	// ActorRuns counts actor resumptions (an actor may resume many times per
	// round as futures fulfill).
	ActorRuns uint64
	// TimerFires counts futures fulfilled by the built-in timer queue.
	TimerFires uint64
}

// Kernel drives the simulation: it owns the clock, the actor run queue, the
// timer queue, and the registered resource models.
type Kernel struct {
	now    core.Time
	models []Model
	// timers is the built-in timer queue, on the same heap implementation as
	// the resource models' event paths (date order, FIFO on ties by push
	// sequence). Entries are never invalidated — Generation is constant —
	// so every pushed timer fires.
	timers actionheap.Heap[*timerEntry]

	// Stats, when non-nil, accumulates kernel counters.
	Stats *Stats

	actors  []*Actor
	runq    []*Actor
	live    int
	yielded chan struct{}
	running bool
	failure error
	nextID  int
	maxt    core.Time
}

// New returns an empty kernel at simulated time zero.
func New() *Kernel {
	return &Kernel{yielded: make(chan struct{})}
}

// Now returns the current simulated time.
func (k *Kernel) Now() core.Time { return k.now }

// AddModel registers a resource model with the kernel.
func (k *Kernel) AddModel(m Model) { k.models = append(k.models, m) }

// SetDeadline aborts Run with an error if simulated time would pass t.
// Zero (the default) means no deadline.
func (k *Kernel) SetDeadline(t core.Time) { k.maxt = t }

// Spawn creates an actor running fn and schedules it. It may be called
// before Run or from a running actor.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Actor {
	a := &Actor{
		ID:     k.nextID,
		Name:   name,
		kernel: k,
		resume: make(chan struct{}),
	}
	k.nextID++
	a.proc = &Proc{actor: a}
	k.actors = append(k.actors, a)
	k.live++
	go func() {
		<-a.resume
		defer func() {
			if r := recover(); r != nil {
				if k.failure == nil {
					k.failure = fmt.Errorf("actor %q panicked: %v", a.Name, r)
				}
			}
			a.done = true
			k.live--
			k.yielded <- struct{}{}
		}()
		fn(a.proc)
	}()
	k.enqueue(a)
	return a
}

func (k *Kernel) enqueue(a *Actor) {
	if a.queued || a.done {
		return
	}
	a.queued = true
	k.runq = append(k.runq, a)
}

// Fulfill completes f with value, waking every actor blocked on it. It is
// safe to call from models (between scheduling rounds) and from actors
// (the awakened actor runs later in the same round).
func (k *Kernel) Fulfill(f *Future, value any) {
	if f.done {
		return
	}
	f.done = true
	f.value = value
	for _, a := range f.waiters {
		k.enqueue(a)
	}
	f.waiters = nil
	cbs := f.callbacks
	f.callbacks = nil
	for _, cb := range cbs {
		cb(value)
	}
}

// OnFulfill registers fn to run when f is fulfilled (immediately if it
// already is). Callbacks run synchronously inside Fulfill, at the fulfilled
// simulated date; they may fulfill other futures or start new activities.
func (k *Kernel) OnFulfill(f *Future, fn func(value any)) {
	if f.done {
		fn(f.value)
		return
	}
	f.callbacks = append(f.callbacks, fn)
}

// FulfillAt schedules f to be fulfilled with value at absolute date t,
// using the kernel's built-in timer queue.
func (k *Kernel) FulfillAt(f *Future, value any, t core.Time) {
	if t < k.now {
		t = k.now
	}
	k.timers.Push(&timerEntry{f: f, value: value}, t, 0)
}

type timerEntry struct {
	f     *Future
	value any
}

// Generation implements actionheap.Stamped: timer entries are never
// restamped or cancelled (Fulfill on a done future is a no-op), so every
// entry stays valid until popped.
func (*timerEntry) Generation() uint64 { return 0 }

// Run executes the simulation until every actor has terminated. It returns
// an error if an actor panicked, if the deadline was exceeded, or if live
// actors remain but no model has a pending event (deadlock).
func (k *Kernel) Run() (err error) {
	if k.running {
		return fmt.Errorf("simix: kernel already running")
	}
	k.running = true
	defer func() {
		k.running = false
		// Panics raised outside actor goroutines (model code, completion
		// callbacks) surface as errors rather than crashing the caller.
		if r := recover(); r != nil {
			err = fmt.Errorf("simix: kernel panicked: %v", r)
		}
	}()

	for {
		// Scheduling round: run every ready actor, one at a time.
		for len(k.runq) > 0 {
			a := k.runq[0]
			k.runq = k.runq[1:]
			a.queued = false
			if a.done {
				continue
			}
			if k.Stats != nil {
				k.Stats.ActorRuns++
			}
			a.resume <- struct{}{}
			<-k.yielded
			if k.failure != nil {
				return k.failure
			}
		}

		if k.live == 0 {
			return nil
		}

		// All actors are blocked: advance time to the next event.
		next := k.timers.NextDue()
		for _, m := range k.models {
			if t := m.NextEvent(); t < next {
				next = t
			}
		}
		if next == core.TimeForever {
			return k.deadlockError()
		}
		if k.maxt > 0 && next > k.maxt {
			return fmt.Errorf("simix: simulated time %v exceeds deadline %v", next, k.maxt)
		}
		if next < k.now {
			return fmt.Errorf("simix: model scheduled event in the past (%v < %v)", next, k.now)
		}
		k.now = next
		if k.Stats != nil {
			k.Stats.Rounds++
		}

		for {
			te, due, ok := k.timers.Peek()
			if !ok || due > k.now {
				break
			}
			k.timers.Pop()
			if k.Stats != nil {
				k.Stats.TimerFires++
			}
			k.Fulfill(te.f, te.value)
		}
		for _, m := range k.models {
			m.Advance(k.now)
		}
	}
}

func (k *Kernel) deadlockError() error {
	var blocked []string
	for _, a := range k.actors {
		if !a.done {
			blocked = append(blocked, a.Name)
		}
	}
	sort.Strings(blocked)
	return fmt.Errorf("simix: deadlock, %d actor(s) blocked forever: %v", len(blocked), blocked)
}

// --- Proc (actor-side) API ---

// yield suspends the actor and returns control to the kernel.
func (p *Proc) yield() {
	p.actor.kernel.yielded <- struct{}{}
	<-p.actor.resume
}

// Kernel returns the kernel this actor belongs to.
func (p *Proc) Kernel() *Kernel { return p.actor.kernel }

// Now returns the current simulated time.
func (p *Proc) Now() core.Time { return p.actor.kernel.now }

// Name returns the actor's name.
func (p *Proc) Name() string { return p.actor.Name }

// Yield lets other ready actors run before this one continues; simulated
// time does not advance. Mainly useful in tests and fairness-sensitive code.
func (p *Proc) Yield() {
	p.actor.kernel.enqueue(p.actor)
	p.yield()
}

// Wait blocks until f is fulfilled and returns its value.
func (p *Proc) Wait(f *Future) any {
	for !f.done {
		f.waiters = append(f.waiters, p.actor)
		p.yield()
	}
	return f.value
}

// WaitAny blocks until at least one future in fs is fulfilled and returns
// the index of the first fulfilled one (lowest index wins) plus its value.
// It panics if fs is empty.
func (p *Proc) WaitAny(fs []*Future) (int, any) {
	if len(fs) == 0 {
		panic("simix: WaitAny on empty set")
	}
	for {
		for i, f := range fs {
			if f != nil && f.done {
				return i, f.value
			}
		}
		for _, f := range fs {
			if f != nil {
				f.waiters = append(f.waiters, p.actor)
			}
		}
		p.yield()
	}
}

// WaitAll blocks until every non-nil future in fs is fulfilled.
func (p *Proc) WaitAll(fs []*Future) {
	for _, f := range fs {
		if f != nil {
			p.Wait(f)
		}
	}
}

// Sleep suspends the actor for the given simulated duration.
func (p *Proc) Sleep(d core.Duration) {
	if d < 0 {
		d = 0
	}
	f := NewFuture()
	k := p.actor.kernel
	k.FulfillAt(f, nil, k.now+d)
	p.Wait(f)
}
