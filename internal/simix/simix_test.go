package simix

import (
	"strings"
	"testing"

	"smpigo/internal/core"
)

func TestSingleActorRunsToCompletion(t *testing.T) {
	k := New()
	ran := false
	k.Spawn("a", func(p *Proc) { ran = true })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("actor body did not run")
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	k := New()
	var at core.Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(1.5)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 1.5 {
		t.Errorf("woke at %v, want 1.5", at)
	}
	if k.Now() != 1.5 {
		t.Errorf("kernel clock %v, want 1.5", k.Now())
	}
}

func TestSequentialInterleaving(t *testing.T) {
	// Two actors sleeping different amounts must interleave in simulated
	// time order, not spawn order.
	k := New()
	var order []string
	k.Spawn("late", func(p *Proc) {
		p.Sleep(2)
		order = append(order, "late")
	})
	k.Spawn("early", func(p *Proc) {
		p.Sleep(1)
		order = append(order, "early")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "early" || order[1] != "late" {
		t.Errorf("order = %v", order)
	}
}

func TestFutureHandoffBetweenActors(t *testing.T) {
	k := New()
	f := NewFuture()
	var got any
	k.Spawn("consumer", func(p *Proc) {
		got = p.Wait(f)
	})
	k.Spawn("producer", func(p *Proc) {
		p.Sleep(1)
		p.Kernel().Fulfill(f, 42)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("consumer got %v, want 42", got)
	}
}

func TestWaitOnFulfilledFutureDoesNotBlock(t *testing.T) {
	k := New()
	f := NewFuture()
	k.Fulfill(f, "x")
	var got any
	k.Spawn("a", func(p *Proc) { got = p.Wait(f) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "x" {
		t.Errorf("got %v", got)
	}
}

func TestWaitAnyReturnsLowestReadyIndex(t *testing.T) {
	k := New()
	f1, f2, f3 := NewFuture(), NewFuture(), NewFuture()
	var idx int
	var val any
	k.Spawn("waiter", func(p *Proc) {
		idx, val = p.WaitAny([]*Future{f1, f2, f3})
	})
	k.Spawn("producer", func(p *Proc) {
		p.Sleep(1)
		k.Fulfill(f3, "three")
		k.Fulfill(f2, "two")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if idx != 1 || val != "two" {
		t.Errorf("WaitAny = %d, %v; want 1, two", idx, val)
	}
}

func TestWaitAnyEmptyPanics(t *testing.T) {
	k := New()
	k.Spawn("bad", func(p *Proc) { p.WaitAny(nil) })
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("want panic error, got %v", err)
	}
}

func TestWaitAllWithNils(t *testing.T) {
	k := New()
	f1, f2 := NewFuture(), NewFuture()
	done := false
	k.Spawn("w", func(p *Proc) {
		p.WaitAll([]*Future{f1, nil, f2})
		done = true
	})
	k.Spawn("p", func(p *Proc) {
		p.Sleep(1)
		k.Fulfill(f1, nil)
		p.Sleep(1)
		k.Fulfill(f2, nil)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("WaitAll never returned")
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := New()
	k.Spawn("stuck", func(p *Proc) { p.Wait(NewFuture()) })
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("want deadlock error, got %v", err)
	}
	if err != nil && !strings.Contains(err.Error(), "stuck") {
		t.Errorf("deadlock error should name the actor: %v", err)
	}
}

func TestActorPanicSurfacesAsError(t *testing.T) {
	k := New()
	k.Spawn("boom", func(p *Proc) { panic("kaboom") })
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("want panic error, got %v", err)
	}
}

func TestSpawnFromActor(t *testing.T) {
	k := New()
	var childRan bool
	k.Spawn("parent", func(p *Proc) {
		f := NewFuture()
		k.Spawn("child", func(c *Proc) {
			c.Sleep(1)
			childRan = true
			k.Fulfill(f, nil)
		})
		p.Wait(f)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Error("child never ran")
	}
}

func TestDeadlineExceeded(t *testing.T) {
	k := New()
	k.SetDeadline(10)
	k.Spawn("slow", func(p *Proc) { p.Sleep(100) })
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Errorf("want deadline error, got %v", err)
	}
}

func TestManyActorsDeterministicOrder(t *testing.T) {
	run := func() []string {
		k := New()
		var order []string
		for i := 0; i < 20; i++ {
			name := string(rune('a' + i))
			delay := core.Time((i * 7) % 13)
			k.Spawn(name, func(p *Proc) {
				p.Sleep(delay)
				order = append(order, p.Name())
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		if got := run(); strings.Join(got, "") != strings.Join(first, "") {
			t.Fatalf("non-deterministic order: %v vs %v", got, first)
		}
	}
}

func TestYieldCooperative(t *testing.T) {
	k := New()
	var order []string
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a1,b1,a2"
	if got := strings.Join(order, ","); got != want {
		t.Errorf("order = %s, want %s", got, want)
	}
}

func TestFulfillAtPastClampedToNow(t *testing.T) {
	k := New()
	var woke core.Time
	k.Spawn("a", func(p *Proc) {
		p.Sleep(5)
		f := NewFuture()
		k.FulfillAt(f, nil, 1) // in the past
		p.Wait(f)
		woke = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 5 {
		t.Errorf("woke at %v, want 5 (no time travel)", woke)
	}
}

func TestDoubleFulfillKeepsFirstValue(t *testing.T) {
	k := New()
	f := NewFuture()
	k.Fulfill(f, 1)
	k.Fulfill(f, 2)
	if f.Value() != 1 {
		t.Errorf("value = %v, want 1", f.Value())
	}
}

// A model that completes one activity at a fixed date, to exercise the
// Model plumbing.
type stubModel struct {
	k    *Kernel
	at   core.Time
	f    *Future
	used bool
}

func (m *stubModel) NextEvent() core.Time {
	if m.used {
		return core.TimeForever
	}
	return m.at
}

func (m *stubModel) Advance(to core.Time) {
	if !m.used && to >= m.at {
		m.used = true
		m.k.Fulfill(m.f, "model-done")
	}
}

func TestModelDrivesCompletion(t *testing.T) {
	k := New()
	f := NewFuture()
	k.AddModel(&stubModel{k: k, at: 3, f: f})
	var got any
	var at core.Time
	k.Spawn("a", func(p *Proc) {
		got = p.Wait(f)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "model-done" || at != 3 {
		t.Errorf("got %v at %v, want model-done at 3", got, at)
	}
}
