// Package simix implements the sequential simulation kernel that SMPI's
// design rests on (the paper's Section 5.1): every simulated MPI process is
// an actor with its own execution context, but actors run strictly one at a
// time under the control of the kernel, which alone advances simulated time.
//
// In the original SMPI, actors are threads multiplexed by SimGrid's SIMIX
// layer; here each actor is a goroutine that the kernel resumes and that
// yields back whenever it performs a blocking simulation call. At most one
// goroutine is ever runnable, so the simulation is deterministic and safe
// without locks.
//
// Resource models (the analytical SURF network/CPU models, or the
// packet-level testbed emulator) plug in through the Model interface: the
// kernel asks each model for its next internal completion date, advances
// the clock to the global minimum, and lets models fulfill the futures that
// blocked actors are waiting on.
//
// In the stack of this repository, simix is the bottom of the simulation
// half: smpi spawns one kernel actor per MPI rank, the surf/emu models sit
// beside the kernel, and everything above (experiments, campaigns) only
// ever calls smpi.Run. The kernel knows nothing about MPI, platforms, or
// topologies — it schedules actors and merges model event streams.
package simix
