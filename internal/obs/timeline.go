package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"smpigo/internal/core"
	"smpigo/internal/platform"
	"smpigo/internal/surf"
)

// Timeline buckets the drained-segment stream into fixed-width time bins,
// giving per-link (and per-host) load curves instead of run totals. A
// segment spanning several buckets is distributed proportionally to the
// overlap, so bucket sums equal the Observer's totals and the conservation
// property survives bucketing.
//
// Memory is one float64 per (active resource, touched bucket); idle
// resources and empty trailing buckets cost nothing.
type Timeline struct {
	plat  *platform.Platform
	width core.Duration

	links map[int][]float64 // link ID -> bytes per bucket
	hosts map[int][]float64 // host ID -> flops per bucket
}

// NewTimeline creates a timeline with the given bucket width.
func NewTimeline(plat *platform.Platform, width core.Duration) *Timeline {
	if width <= 0 {
		panic(fmt.Sprintf("obs: non-positive timeline bucket width %v", width))
	}
	return &Timeline{
		plat:  plat,
		width: width,
		links: make(map[int][]float64),
		hosts: make(map[int][]float64),
	}
}

var _ surf.UsageRecorder = (*Timeline)(nil)

// add distributes amount over (from, to] proportionally to bucket overlap.
// Zero-length segments (a flow's final remainder completing exactly at its
// last sync date) land entirely in from's bucket.
func (t *Timeline) add(series map[int][]float64, id int, from, to core.Time, amount float64) {
	buckets := series[id]
	lo := int(from / t.width)
	hi := int(to / t.width)
	if need := hi + 1; len(buckets) < need {
		grown := make([]float64, need)
		copy(grown, buckets)
		buckets = grown
	}
	if lo == hi || to <= from {
		buckets[hi] += amount
	} else {
		rate := amount / float64(to-from)
		for b := lo; b <= hi; b++ {
			bStart, bEnd := core.Time(b)*t.width, core.Time(b+1)*t.width
			if bStart < from {
				bStart = from
			}
			if bEnd > to {
				bEnd = to
			}
			buckets[b] += rate * float64(bEnd-bStart)
		}
	}
	series[id] = buckets
}

// RecordLink implements surf.UsageRecorder.
func (t *Timeline) RecordLink(l *platform.Link, from, to core.Time, bytes float64) {
	t.add(t.links, l.ID, from, to, bytes)
}

// RecordHost implements surf.UsageRecorder.
func (t *Timeline) RecordHost(h *platform.Host, from, to core.Time, flops float64) {
	t.add(t.hosts, h.ID, from, to, flops)
}

// timelineJSON is the serialized form: bucket width in seconds, one series
// per active resource with its dense bucket array.
type timelineJSON struct {
	BucketWidth float64      `json:"bucket_width"`
	Links       []seriesJSON `json:"links,omitempty"`
	Hosts       []seriesJSON `json:"hosts,omitempty"`
}

type seriesJSON struct {
	Name    string    `json:"name"`
	Buckets []float64 `json:"buckets"`
}

func seriesOf(m map[int][]float64, name func(id int) string) []seriesJSON {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	// Sort by ID for a deterministic file; names materialize only here.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	out := make([]seriesJSON, len(ids))
	for i, id := range ids {
		out[i] = seriesJSON{Name: name(id), Buckets: m[id]}
	}
	return out
}

// WriteJSON serializes the timeline. Resources are sorted by ID and names
// are materialized lazily, so writing is the only naming cost.
func (t *Timeline) WriteJSON(w io.Writer) error {
	doc := timelineJSON{
		BucketWidth: float64(t.width),
		Links:       seriesOf(t.links, func(id int) string { return t.plat.LinkByID(id).Name() }),
		Hosts:       seriesOf(t.hosts, func(id int) string { return t.plat.HostByID(id).Name() }),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
