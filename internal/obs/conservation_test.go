package obs_test

// Conservation tests: the observability layer's core guarantee is that the
// drained-segment stream accounts for exactly the traffic injected — a flow
// of S bytes over a k-link route contributes k*S recorded bytes, however
// many rate changes it lives through. The test pins this on every topology
// preset (each exercises a different routing inverse and contention
// pattern), checks Shared-link utilization never exceeds 1 (the LMM never
// over-commits a constraint), and round-trips the Timeline JSON to verify
// bucketing preserves the same totals.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"path"
	"testing"

	"smpigo/internal/core"
	"smpigo/internal/dynamics"
	"smpigo/internal/lmm"
	"smpigo/internal/obs"
	"smpigo/internal/platform"
	"smpigo/internal/simix"
	"smpigo/internal/surf"
	"smpigo/internal/topology"
)

const payload = 1 << 20 // 1 MiB per flow

// relClose reports whether got is within 1e-9 relative of want.
func relClose(got, want float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want) <= 1e-9*math.Abs(want)
}

func TestLinkByteConservation(t *testing.T) {
	for _, name := range topology.PresetNames() {
		t.Run(name, func(t *testing.T) {
			spec, err := topology.ParseSpec(name)
			if err != nil {
				t.Fatal(err)
			}
			plat, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			hosts := plat.Hosts()
			n := len(hosts)
			// A spine-crossing shift pattern: host i streams to i+n/2+1, so
			// most routes leave the local switch and contend on trunk links.
			stride := n/2 + 1
			if stride%n == 0 {
				stride = 1
			}
			dst := func(i int) int { return (i + stride) % n }

			// Expected per-link bytes from the routes alone: every link a
			// route crosses carries the full payload.
			expected := make([]float64, len(plat.Links()))
			for i := range hosts {
				for _, l := range plat.Route(hosts[i], hosts[dst(i)]).Links {
					expected[l.ID] += payload
				}
			}

			k := simix.New()
			net := surf.NewNetwork(k, surf.Ideal())
			k.AddModel(net)
			o := obs.NewObserver(plat)
			tl := obs.NewTimeline(plat, core.Duration(100e-6))
			net.Instrument(nil, nil, nil, obs.Multi(o, tl))
			k.Spawn("flows", func(p *simix.Proc) {
				futs := make([]*simix.Future, n)
				for i := range hosts {
					futs[i] = simix.NewFuture()
					net.StartFlow(plat.Route(hosts[i], hosts[dst(i)]), payload, futs[i])
				}
				for _, f := range futs {
					p.Wait(f)
				}
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}

			for _, l := range plat.Links() {
				if got := o.LinkBytes(l); !relClose(got, expected[l.ID]) {
					t.Errorf("link %s: recorded %.6f B, routes inject %.0f B", l.Name(), got, expected[l.ID])
				}
			}
			for _, u := range o.TopLinks(len(plat.Links())) {
				if u.Link.Policy == lmm.Shared && u.Utilization > 1+1e-9 {
					t.Errorf("link %s: utilization %.6f exceeds capacity", u.Link.Name(), u.Utilization)
				}
			}

			// Timeline bucket sums must reproduce the observer's totals:
			// proportional distribution moves bytes between buckets, never
			// creates or destroys them.
			var buf bytes.Buffer
			if err := tl.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			var doc struct {
				BucketWidth float64 `json:"bucket_width"`
				Links       []struct {
					Name    string    `json:"name"`
					Buckets []float64 `json:"buckets"`
				} `json:"links"`
			}
			if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
				t.Fatal(err)
			}
			if doc.BucketWidth != 100e-6 {
				t.Errorf("bucket width %v, want 100e-6", doc.BucketWidth)
			}
			byName := make(map[string]*platform.Link, len(plat.Links()))
			for _, l := range plat.Links() {
				byName[l.Name()] = l
			}
			active := 0
			for _, s := range doc.Links {
				sum := 0.0
				for _, b := range s.Buckets {
					sum += b
				}
				l := byName[s.Name]
				if l == nil {
					t.Fatalf("timeline names unknown link %q", s.Name)
				}
				if !relClose(sum, o.LinkBytes(l)) {
					t.Errorf("link %s: timeline buckets sum to %.6f B, observer total %.0f B", s.Name, sum, o.LinkBytes(l))
				}
				active++
			}
			wantActive := 0
			for _, e := range expected {
				if e != 0 {
					wantActive++
				}
			}
			if active != wantActive {
				t.Errorf("timeline has %d link series, %d links carried traffic", active, wantActive)
			}
		})
	}
}

// TestConservationBoundedStaleness re-runs the byte-conservation argument
// with the solver in bounded-staleness mode (SetRateTolerance(1e-9)). The
// contract under test: staleness may defer re-fairing of rates that moved by
// less than eps, but it must never touch accounting — the lazy drain records
// drained amounts from the rates actually applied, so a flow of S bytes over
// a k-link route still contributes exactly k*S recorded bytes — and the
// partial solve must never over-commit a Shared link (the frozen frontier
// keeps boundary capacity reserved). Completion times may drift from the
// exact run, but only by an eps-bounded amount; at 1e-9 the end-to-end span
// must agree with exact mode to well under a part per million.
func TestConservationBoundedStaleness(t *testing.T) {
	for _, name := range topology.PresetNames() {
		t.Run(name, func(t *testing.T) {
			spec, err := topology.ParseSpec(name)
			if err != nil {
				t.Fatal(err)
			}
			plat, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			hosts := plat.Hosts()
			n := len(hosts)
			stride := n/2 + 1
			if stride%n == 0 {
				stride = 1
			}
			dst := func(i int) int { return (i + stride) % n }

			expected := make([]float64, len(plat.Links()))
			for i := range hosts {
				for _, l := range plat.Route(hosts[i], hosts[dst(i)]).Links {
					expected[l.ID] += payload
				}
			}

			// Run the same shift pattern once per mode; eps < 0 means exact.
			run := func(eps float64) (*obs.Observer, core.Time) {
				k := simix.New()
				net := surf.NewNetwork(k, surf.Ideal())
				if eps > 0 {
					net.SetRateTolerance(eps)
				}
				k.AddModel(net)
				o := obs.NewObserver(plat)
				net.Instrument(nil, nil, nil, o)
				k.Spawn("flows", func(p *simix.Proc) {
					futs := make([]*simix.Future, n)
					for i := range hosts {
						futs[i] = simix.NewFuture()
						net.StartFlow(plat.Route(hosts[i], hosts[dst(i)]), payload, futs[i])
					}
					for _, f := range futs {
						p.Wait(f)
					}
				})
				if err := k.Run(); err != nil {
					t.Fatal(err)
				}
				_, end, ok := o.Span()
				if !ok {
					t.Fatal("no traffic observed")
				}
				return o, end
			}
			_, exactEnd := run(0)
			o, staleEnd := run(1e-9)

			// Conservation holds exactly: recorded bytes are integrated from
			// the applied rates, so staleness cannot create or destroy them.
			for _, l := range plat.Links() {
				if got := o.LinkBytes(l); !relClose(got, expected[l.ID]) {
					t.Errorf("link %s: recorded %.6f B under eps=1e-9, routes inject %.0f B", l.Name(), got, expected[l.ID])
				}
			}
			// Feasibility holds hard: the partial solve's frozen frontier
			// never over-commits a Shared link.
			for _, u := range o.TopLinks(len(plat.Links())) {
				if u.Link.Policy == lmm.Shared && u.Utilization > 1+1e-9 {
					t.Errorf("link %s: utilization %.6f exceeds capacity under eps=1e-9", u.Link.Name(), u.Utilization)
				}
			}
			// Completion drift is eps-bounded: each deferred re-fair leaves a
			// rate off by at most a 1e-9 relative factor, so the end-to-end
			// span agrees far inside a part per million.
			drift := math.Abs(float64(staleEnd)-float64(exactEnd)) / float64(exactEnd)
			if drift > 1e-6 {
				t.Errorf("completion span drift %.3e vs exact (stale %v, exact %v), want <= 1e-6", drift, staleEnd, exactEnd)
			}
		})
	}
}

// TestConservationUnderDynamics re-runs the byte-conservation argument with
// the platform shifting under the traffic: every trunk link is degraded to a
// quarter of nominal mid-flight and boosted to double later, through the same
// dynamics schedule smpirun -dynamics arms. Conservation must be unaffected —
// capacity changes reshape *when* bytes move, never *how many* — and each
// retuned link's byte total must respect the integral of its time-varying
// capacity.
func TestConservationUnderDynamics(t *testing.T) {
	const (
		t1      = core.Time(2e-3)  // degrade trunks to 0.25x
		t2      = core.Time(10e-3) // boost trunks to 2x
		degrade = 0.25
		boost   = 2.0
	)
	cases := []struct{ topo, trunk string }{
		{"fattree16", "fattree16-l2-*"},
		{"fattree64", "fattree64-l3-*"},
		{"torus16", "torus16-*-d1-*"},
		{"torus64", "torus64-*-d2-*"},
		{"dragonfly72", "dragonfly72-g*-g*"},
	}
	for _, tc := range cases {
		t.Run(tc.topo, func(t *testing.T) {
			spec, err := topology.ParseSpec(tc.topo)
			if err != nil {
				t.Fatal(err)
			}
			plat, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			hosts := plat.Hosts()
			n := len(hosts)
			stride := n/2 + 1
			if stride%n == 0 {
				stride = 1
			}
			dst := func(i int) int { return (i + stride) % n }

			expected := make([]float64, len(plat.Links()))
			for i := range hosts {
				for _, l := range plat.Route(hosts[i], hosts[dst(i)]).Links {
					expected[l.ID] += payload
				}
			}
			trunk := make(map[int]bool)
			for _, l := range plat.Links() {
				if ok, _ := path.Match(tc.trunk, l.Name()); ok {
					trunk[l.ID] = true
				}
			}
			if len(trunk) == 0 {
				t.Fatalf("glob %q matches no link", tc.trunk)
			}

			k := simix.New()
			net := surf.NewNetwork(k, surf.Ideal())
			k.AddModel(net)
			o := obs.NewObserver(plat)
			tl := obs.NewTimeline(plat, core.Duration(100e-6))
			net.Instrument(nil, nil, nil, obs.Multi(o, tl))
			sched, err := dynamics.Parse(fmt.Sprintf(
				"@2ms link %s scale %g; @10ms link %s scale %g",
				tc.trunk, degrade, tc.trunk, boost))
			if err != nil {
				t.Fatal(err)
			}
			if err := sched.Arm(k, plat, net, nil); err != nil {
				t.Fatal(err)
			}
			k.Spawn("flows", func(p *simix.Proc) {
				futs := make([]*simix.Future, n)
				for i := range hosts {
					futs[i] = simix.NewFuture()
					net.StartFlow(plat.Route(hosts[i], hosts[dst(i)]), payload, futs[i])
				}
				for _, f := range futs {
					p.Wait(f)
				}
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}

			// Conservation first: recorded bytes still equal the routes'
			// injection exactly, rate changes or not.
			for _, l := range plat.Links() {
				if got := o.LinkBytes(l); !relClose(got, expected[l.ID]) {
					t.Errorf("link %s: recorded %.6f B, routes inject %.0f B", l.Name(), got, expected[l.ID])
				}
			}

			// Both events must land mid-flight, or the test is vacuous.
			_, end, ok := o.Span()
			if !ok || end <= t2 {
				t.Fatalf("span ends at %v, want traffic outliving the %v boost event", end, t2)
			}

			// Each retuned Shared link's bytes are bounded by the integral of
			// its piecewise-constant capacity over the observed span. The
			// static-utilization check from TestLinkByteConservation does not
			// apply here: after the boost a trunk can legitimately beat its
			// nominal rate.
			capIntegral := func(nominal float64) float64 {
				seg := func(a, b core.Time, f float64) float64 {
					if b > end {
						b = end
					}
					if b <= a {
						return 0
					}
					return nominal * f * float64(b-a)
				}
				return seg(0, t1, 1) + seg(t1, t2, degrade) + seg(t2, end, boost)
			}
			for _, l := range plat.Links() {
				if !trunk[l.ID] || l.Policy != lmm.Shared {
					continue
				}
				if bound := capIntegral(l.Bandwidth); o.LinkBytes(l) > bound*(1+1e-9) {
					t.Errorf("link %s: %.0f B exceeds capacity integral %.0f B", l.Name(), o.LinkBytes(l), bound)
				}
			}
			// Untouched Shared links still obey the static bound.
			for _, u := range o.TopLinks(len(plat.Links())) {
				if !trunk[u.Link.ID] && u.Link.Policy == lmm.Shared && u.Utilization > 1+1e-9 {
					t.Errorf("link %s: utilization %.6f exceeds capacity", u.Link.Name(), u.Utilization)
				}
			}

			// Timeline bucketing remains lossless across rate changes.
			var buf bytes.Buffer
			if err := tl.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			var doc struct {
				Links []struct {
					Name    string    `json:"name"`
					Buckets []float64 `json:"buckets"`
				} `json:"links"`
			}
			if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
				t.Fatal(err)
			}
			byName := make(map[string]*platform.Link, len(plat.Links()))
			for _, l := range plat.Links() {
				byName[l.Name()] = l
			}
			for _, s := range doc.Links {
				sum := 0.0
				for _, b := range s.Buckets {
					sum += b
				}
				l := byName[s.Name]
				if l == nil {
					t.Fatalf("timeline names unknown link %q", s.Name)
				}
				if !relClose(sum, o.LinkBytes(l)) {
					t.Errorf("link %s: timeline buckets sum to %.6f B, observer total %.0f B", s.Name, sum, o.LinkBytes(l))
				}
			}
		})
	}
}
