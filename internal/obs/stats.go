// Package obs is the simulator's observability layer: kernel counters and
// resource-utilization accounting that attach to the simix kernel and the
// surf models through the nil-guarded hooks those packages expose
// (simix.Stats, surf.NetworkStats/CPUStats, lmm.Stats, actionheap.Stats,
// surf.UsageRecorder). Everything here is strictly additive: attaching the
// layer never changes a simulation's outcome, and leaving it detached — the
// default — costs a nil check per hook, nothing more.
//
// The split matters for reproducibility: campaign fingerprints cover
// simulation *results* (simulated times, sample values), never these
// counters, so instrumentation can evolve without invalidating recorded
// fingerprints.
package obs

import (
	"fmt"
	"sort"
	"strings"

	"smpigo/internal/lmm"
	"smpigo/internal/simix"
	"smpigo/internal/surf"
	"smpigo/internal/surf/actionheap"
)

// Stats aggregates every kernel-side counter of one simulation run: the
// simix scheduler, both surf models, their LMM solvers and completion heaps,
// and the route-lookup count from the MPI layer. Attach its fields before
// the run (smpi.Config.Stats wires all of them); read after.
type Stats struct {
	Kernel simix.Stats
	Net    surf.NetworkStats
	CPU    surf.CPUStats
	// NetLMM/CPULMM are the solver counters of the network and compute
	// models' independent LMM systems.
	NetLMM lmm.Stats
	CPULMM lmm.Stats
	// NetHeap/CPUHeap are the completion-date heap counters. On the emulator
	// backend NetHeap counts packet-hop events instead of flow completions.
	NetHeap actionheap.Stats
	CPUHeap actionheap.Stats
	// Routes counts route lookups performed by the MPI transfer path.
	Routes uint64
}

// Flat returns the counters as a flat metric map. Keys are stable (they
// appear in campaign summaries and benchgate -counters output); keys with
// the ".max" suffix are high-water marks and aggregate by maximum, all
// others by sum (see campaign.MergeStats).
func (s *Stats) Flat() map[string]float64 {
	return map[string]float64{
		"kernel.rounds":              float64(s.Kernel.Rounds),
		"kernel.actor_runs":          float64(s.Kernel.ActorRuns),
		"kernel.timer_fires":         float64(s.Kernel.TimerFires),
		"net.flows":                  float64(s.Net.FlowsStarted),
		"net.loopbacks":              float64(s.Net.Loopbacks),
		"net.completions":            float64(s.Net.Completions),
		"net.syncs":                  float64(s.Net.Syncs),
		"net.restamps":               float64(s.Net.Restamps),
		"cpu.tasks":                  float64(s.CPU.TasksStarted),
		"cpu.completions":            float64(s.CPU.Completions),
		"cpu.syncs":                  float64(s.CPU.Syncs),
		"cpu.restamps":               float64(s.CPU.Restamps),
		"lmm.net.solves":             float64(s.NetLMM.Solves),
		"lmm.net.full_solves":        float64(s.NetLMM.FullSolves),
		"lmm.net.dirty_cons":         float64(s.NetLMM.DirtyConstraints),
		"lmm.net.dirty_vars":         float64(s.NetLMM.DirtyVariables),
		"lmm.net.components":         float64(s.NetLMM.Components),
		"lmm.net.vars_resolved":      float64(s.NetLMM.VarsResolved),
		"lmm.net.component_vars.max": float64(s.NetLMM.MaxComponentVars),
		"lmm.net.component_cons.max": float64(s.NetLMM.MaxComponentCons),
		"lmm.net.partial_refills":    float64(s.NetLMM.PartialRefills),
		"lmm.net.partial_skipped":    float64(s.NetLMM.PartialVarsSkipped),
		"lmm.net.partial_fallbacks":  float64(s.NetLMM.PartialFallbacks),
		"lmm.net.parallel_solves":    float64(s.NetLMM.ParallelSolves),
		"lmm.net.parallel_comps":     float64(s.NetLMM.ParallelComponents),
		"lmm.cpu.solves":             float64(s.CPULMM.Solves),
		"lmm.cpu.full_solves":        float64(s.CPULMM.FullSolves),
		"lmm.cpu.dirty_cons":         float64(s.CPULMM.DirtyConstraints),
		"lmm.cpu.dirty_vars":         float64(s.CPULMM.DirtyVariables),
		"lmm.cpu.components":         float64(s.CPULMM.Components),
		"lmm.cpu.vars_resolved":      float64(s.CPULMM.VarsResolved),
		"lmm.cpu.component_vars.max": float64(s.CPULMM.MaxComponentVars),
		"lmm.cpu.component_cons.max": float64(s.CPULMM.MaxComponentCons),
		"lmm.cpu.partial_refills":    float64(s.CPULMM.PartialRefills),
		"lmm.cpu.partial_skipped":    float64(s.CPULMM.PartialVarsSkipped),
		"lmm.cpu.partial_fallbacks":  float64(s.CPULMM.PartialFallbacks),
		"lmm.cpu.parallel_solves":    float64(s.CPULMM.ParallelSolves),
		"lmm.cpu.parallel_comps":     float64(s.CPULMM.ParallelComponents),
		"heap.net.pushes":            float64(s.NetHeap.Pushes),
		"heap.net.pops":              float64(s.NetHeap.Pops),
		"heap.net.stale":             float64(s.NetHeap.Stale),
		"heap.net.len.max":           float64(s.NetHeap.MaxLen),
		"heap.cpu.pushes":            float64(s.CPUHeap.Pushes),
		"heap.cpu.pops":              float64(s.CPUHeap.Pops),
		"heap.cpu.stale":             float64(s.CPUHeap.Stale),
		"heap.cpu.len.max":           float64(s.CPUHeap.MaxLen),
		"routes":                     float64(s.Routes),
	}
}

// Report renders the counters as an aligned key/value block, keys sorted,
// zero-valued counters dropped (a quiet model contributes no noise).
func (s *Stats) Report() string { return FormatFlat(s.Flat()) }

// NonZero returns a copy of flat with zero-valued entries dropped — the
// form worth persisting in campaign outcomes, where a quiet model's zeros
// would only bloat the JSON.
func NonZero(flat map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(flat))
	for k, v := range flat {
		if v != 0 {
			out[k] = v
		}
	}
	return out
}

// FormatFlat renders any flat metric map (a Stats.Flat result, or a
// campaign.Summary.Stats aggregate) as an aligned key/value block, keys
// sorted, zero-valued entries dropped.
func FormatFlat(flat map[string]float64) string {
	keys := make([]string, 0, len(flat))
	width := 0
	for k, v := range flat {
		if v == 0 {
			continue
		}
		keys = append(keys, k)
		if len(k) > width {
			width = len(k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-*s %.0f\n", width+1, k, flat[k])
	}
	return b.String()
}
