package obs

// White-box unit tests for the observer, timeline bucketing, recorder
// fan-out, and counter formatting. The cross-package conservation suite
// (conservation_test.go) covers the same machinery end-to-end against live
// simulations; these pin the arithmetic in isolation.

import (
	"math"
	"strings"
	"testing"

	"smpigo/internal/core"
	"smpigo/internal/lmm"
	"smpigo/internal/platform"
	"smpigo/internal/surf"
)

func testPlatform(t *testing.T) *platform.Platform {
	t.Helper()
	p := platform.New("t")
	for i := 0; i < 3; i++ {
		p.AddHost("h"+string(rune('0'+i)), 1e9)
	}
	p.AddLink("l0", 1e9, 0, lmm.Shared)
	p.AddLink("l1", 2e9, 0, lmm.Shared)
	p.AddLink("l2", 1e9, 0, lmm.FatPipe)
	return p
}

func TestObserverTotalsAndSpan(t *testing.T) {
	p := testPlatform(t)
	o := NewObserver(p)
	if _, _, ok := o.Span(); ok {
		t.Error("fresh observer claims a span")
	}
	l0, l1 := p.LinkByID(0), p.LinkByID(1)
	o.RecordLink(l0, 1, 2, 100)
	o.RecordLink(l0, 2, 3, 50)
	o.RecordLink(l1, 0.5, 1.5, 300)
	o.RecordHost(p.HostByID(2), 1, 4, 1e6)
	if got := o.LinkBytes(l0); got != 150 {
		t.Errorf("l0 bytes = %v, want 150", got)
	}
	if got := o.HostFlops(p.HostByID(2)); got != 1e6 {
		t.Errorf("h2 flops = %v, want 1e6", got)
	}
	start, end, ok := o.Span()
	if !ok || start != 0.5 || end != 4 {
		t.Errorf("span = [%v, %v] ok=%v, want [0.5, 4]", start, end, ok)
	}
}

func TestTopLinksOrderingAndUtilization(t *testing.T) {
	p := testPlatform(t)
	o := NewObserver(p)
	// l1 and l2 tie on bytes (ID breaks the tie); l0 carries less and a
	// fourth candidate slot stays empty because only three links exist.
	o.RecordLink(p.LinkByID(2), 0, 1, 500)
	o.RecordLink(p.LinkByID(1), 0, 1, 500)
	o.RecordLink(p.LinkByID(0), 0, 2, 400)
	top := o.TopLinks(4)
	if len(top) != 3 {
		t.Fatalf("got %d links, want 3", len(top))
	}
	wantIDs := []int{1, 2, 0}
	for i, u := range top {
		if u.Link.ID != wantIDs[i] {
			t.Errorf("top[%d] = link %d, want %d", i, u.Link.ID, wantIDs[i])
		}
	}
	// Span is [0, 2]; l1 has 2 GB/s capacity, so 500 B over 2 s is
	// 500 / (2e9 * 2) of capacity.
	if want := 500 / (2e9 * 2.0); math.Abs(top[0].Utilization-want) > 1e-15 {
		t.Errorf("l1 utilization = %v, want %v", top[0].Utilization, want)
	}
	if got := o.TopLinks(1); len(got) != 1 || got[0].Link.ID != 1 {
		t.Errorf("TopLinks(1) = %v", got)
	}
}

func TestHotSpotsEmpty(t *testing.T) {
	o := NewObserver(testPlatform(t))
	if got := o.HotSpots(5); !strings.Contains(got, "no link traffic") {
		t.Errorf("empty report = %q", got)
	}
}

func TestTimelineBucketDistribution(t *testing.T) {
	p := testPlatform(t)
	tl := NewTimeline(p, 1) // 1-second buckets
	l := p.LinkByID(0)
	// A segment spanning (0.5, 2.5] splits 25% / 50% / 25%.
	tl.RecordLink(l, 0.5, 2.5, 400)
	got := tl.links[0]
	want := []float64{100, 200, 100}
	if len(got) != len(want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	// A zero-length segment (final remainder at the last sync date) lands
	// entirely in its bucket.
	tl.RecordLink(l, 2, 2, 60)
	if got := tl.links[0][2]; math.Abs(got-160) > 1e-9 {
		t.Errorf("bucket 2 after zero-length add = %v, want 160", got)
	}
	// Host series are independent.
	tl.RecordHost(p.HostByID(1), 0, 1, 7)
	if got := tl.hosts[1]; len(got) != 2 || got[0] != 7 {
		t.Errorf("host buckets = %v", got)
	}
}

func TestTimelineRejectsBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on zero width")
		}
	}()
	NewTimeline(testPlatform(t), 0)
}

func TestMulti(t *testing.T) {
	p := testPlatform(t)
	a, b := NewObserver(p), NewObserver(p)
	if got := Multi(); got != nil {
		t.Errorf("Multi() = %v, want nil", got)
	}
	// Nil interface entries are skipped; one survivor comes back without a
	// fan-out wrapper. (A typed-nil *Timeline in an interface is NOT nil —
	// callers must branch before wrapping, as smpirun does.)
	if got := Multi(nil, a, surf.UsageRecorder(nil)); got != surf.UsageRecorder(a) {
		t.Errorf("Multi with nils = %v, want the single observer", got)
	}
	m := Multi(a, b)
	m.RecordLink(p.LinkByID(0), 0, 1, 10)
	m.RecordHost(p.HostByID(0), 0, 1, 5)
	for i, o := range []*Observer{a, b} {
		if o.LinkBytes(p.LinkByID(0)) != 10 || o.HostFlops(p.HostByID(0)) != 5 {
			t.Errorf("recorder %d missed the fan-out", i)
		}
	}
}

func TestStatsFlatAndFormat(t *testing.T) {
	var s Stats
	s.Net.FlowsStarted = 3
	s.NetLMM.MaxComponentVars = 9
	s.Routes = 12
	flat := s.Flat()
	if flat["net.flows"] != 3 || flat["lmm.net.component_vars.max"] != 9 || flat["routes"] != 12 {
		t.Errorf("Flat = %v", flat)
	}
	nz := NonZero(flat)
	if len(nz) != 3 {
		t.Errorf("NonZero kept %d keys, want 3: %v", len(nz), nz)
	}
	report := s.Report()
	if strings.Contains(report, "cpu.tasks") {
		t.Error("report includes zero-valued counters")
	}
	lines := strings.Split(strings.TrimSuffix(report, "\n"), "\n")
	if len(lines) != 3 {
		t.Errorf("report has %d lines, want 3:\n%s", len(lines), report)
	}
	// Keys sort lexically, so lmm.* precedes net.* precedes routes.
	if !strings.HasPrefix(lines[0], "lmm.net.component_vars.max") ||
		!strings.HasPrefix(lines[1], "net.flows") ||
		!strings.HasPrefix(lines[2], "routes") {
		t.Errorf("report order wrong:\n%s", report)
	}
	if FormatFlat(nil) != "" {
		t.Error("FormatFlat(nil) should be empty")
	}
}

// TestTimelineWidthType pins that bucket width is a core.Duration in
// seconds: a 100µs width buckets a 250µs segment across three bins.
func TestTimelineWidthType(t *testing.T) {
	p := testPlatform(t)
	tl := NewTimeline(p, core.Duration(100e-6))
	tl.RecordLink(p.LinkByID(0), 0, 250e-6, 250)
	got := tl.links[0]
	if len(got) != 3 || math.Abs(got[0]-100) > 1e-9 || math.Abs(got[2]-50) > 1e-9 {
		t.Errorf("buckets = %v, want [100 100 50]", got)
	}
}
