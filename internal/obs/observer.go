package obs

import (
	"fmt"
	"sort"
	"strings"

	"smpigo/internal/core"
	"smpigo/internal/platform"
	"smpigo/internal/surf"
)

// Observer accumulates per-link byte totals and per-host flop totals from
// the drained-segment stream the surf models emit at their lazy sync points
// (see surf.UsageRecorder). Because every segment is an amount the model
// already drained — never re-derived — the per-link totals are conservative
// by construction: a flow of S bytes over a k-link route contributes exactly
// k*S bytes, no matter how many rate changes it lived through.
//
// Totals are indexed by resource ID, so an observer costs one float64 per
// link plus one per host and each record is two array adds — cheap enough to
// leave on for whole campaigns.
type Observer struct {
	plat      *platform.Platform
	linkBytes []float64
	hostFlops []float64

	// Observed span: the earliest segment start and latest segment end.
	// Utilization is bytes / (bandwidth * span).
	spanStart core.Time
	spanEnd   core.Time
	any       bool
}

// NewObserver creates an observer sized for plat's current hosts and links.
func NewObserver(plat *platform.Platform) *Observer {
	return &Observer{
		plat:      plat,
		linkBytes: make([]float64, len(plat.Links())),
		hostFlops: make([]float64, len(plat.Hosts())),
	}
}

var _ surf.UsageRecorder = (*Observer)(nil)

func (o *Observer) span(from, to core.Time) {
	if !o.any || from < o.spanStart {
		o.spanStart = from
	}
	if !o.any || to > o.spanEnd {
		o.spanEnd = to
	}
	o.any = true
}

// RecordLink implements surf.UsageRecorder.
func (o *Observer) RecordLink(l *platform.Link, from, to core.Time, bytes float64) {
	o.linkBytes[l.ID] += bytes
	o.span(from, to)
}

// RecordHost implements surf.UsageRecorder.
func (o *Observer) RecordHost(h *platform.Host, from, to core.Time, flops float64) {
	o.hostFlops[h.ID] += flops
	o.span(from, to)
}

// LinkBytes returns the bytes recorded on l so far.
func (o *Observer) LinkBytes(l *platform.Link) float64 { return o.linkBytes[l.ID] }

// HostFlops returns the flops recorded on h so far.
func (o *Observer) HostFlops(h *platform.Host) float64 { return o.hostFlops[h.ID] }

// Span returns the observed interval: the earliest and latest segment
// boundary recorded. Zero times with ok == false mean nothing was recorded.
func (o *Observer) Span() (start, end core.Time, ok bool) {
	return o.spanStart, o.spanEnd, o.any
}

// LinkUsage is one link's aggregate load over the observed span.
type LinkUsage struct {
	Link  *platform.Link
	Bytes float64
	// Utilization is Bytes / (Bandwidth * span): the fraction of the link's
	// capacity the observed traffic consumed. On Shared links it cannot
	// exceed 1 (the LMM never over-commits a constraint) — the conservation
	// test pins this; FatPipe links can exceed it by design.
	Utilization float64
}

// TopLinks returns the n busiest links by byte total, descending, ties
// broken by link ID for determinism. Links that carried nothing are
// omitted, so fewer than n entries may return.
func (o *Observer) TopLinks(n int) []LinkUsage {
	span := float64(o.spanEnd - o.spanStart)
	used := make([]LinkUsage, 0, n)
	for id, bytes := range o.linkBytes {
		if bytes == 0 {
			continue
		}
		u := LinkUsage{Link: o.plat.LinkByID(id), Bytes: bytes}
		if span > 0 {
			u.Utilization = bytes / (u.Link.Bandwidth * span)
		}
		used = append(used, u)
	}
	sort.Slice(used, func(i, j int) bool {
		if used[i].Bytes != used[j].Bytes {
			return used[i].Bytes > used[j].Bytes
		}
		return used[i].Link.ID < used[j].Link.ID
	})
	if len(used) > n {
		used = used[:n]
	}
	return used
}

// HotSpots renders the top-n link report: one line per link with its byte
// total and utilization over the observed span. Link names materialize here
// — on the reporting path, never during the simulation.
func (o *Observer) HotSpots(n int) string {
	top := o.TopLinks(n)
	if len(top) == 0 {
		return "no link traffic recorded\n"
	}
	width := 0
	for _, u := range top {
		if l := len(u.Link.Name()); l > width {
			width = l
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "top %d links by bytes carried (span %.6gs):\n", len(top), float64(o.spanEnd-o.spanStart))
	for _, u := range top {
		fmt.Fprintf(&b, "  %-*s %14.0f B  util %5.1f%%\n", width+1, u.Link.Name(), u.Bytes, 100*u.Utilization)
	}
	return b.String()
}

// Multi fans one drained-segment stream out to several recorders (e.g. an
// Observer plus a Timeline). nil entries are skipped; with zero or one
// non-nil recorder it returns that recorder directly, keeping the common
// cases free of indirection.
func Multi(rs ...surf.UsageRecorder) surf.UsageRecorder {
	live := make([]surf.UsageRecorder, 0, len(rs))
	for _, r := range rs {
		if r != nil {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multi(live)
}

type multi []surf.UsageRecorder

func (m multi) RecordLink(l *platform.Link, from, to core.Time, bytes float64) {
	for _, r := range m {
		r.RecordLink(l, from, to, bytes)
	}
}

func (m multi) RecordHost(h *platform.Host, from, to core.Time, flops float64) {
	for _, r := range m {
		r.RecordHost(h, from, to, flops)
	}
}
