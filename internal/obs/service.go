package obs

import "sync/atomic"

// ServiceStats counts the campaign service's work: requests, queueing,
// cache behavior, and jobs simulated. Unlike the kernel counters in Stats —
// which one single-threaded simulation owns — these are bumped from
// concurrent HTTP handlers and the queue runner, so every field is atomic.
// Flat keys follow the repo-wide convention: ".max" marks high-water marks
// (campaign.MergeStats aggregates them by maximum, everything else by sum),
// and none of them ever enters a campaign fingerprint.
type ServiceStats struct {
	// Campaigns counts accepted campaign runs (cache misses that were
	// enqueued); JobsRun counts the simulations they executed.
	Campaigns atomic.Uint64
	JobsRun   atomic.Uint64
	// CacheHits/CacheMisses count result-cache lookups by outcome;
	// Coalesced counts requests attached to an identical campaign already
	// queued or running instead of enqueued again.
	CacheHits   atomic.Uint64
	CacheMisses atomic.Uint64
	Coalesced   atomic.Uint64
	// Rejected counts requests turned away with 429 because the queue was
	// at its bound.
	Rejected atomic.Uint64
	// Canceled counts campaigns that ended canceled (shutdown or explicit
	// cancellation) rather than complete.
	Canceled atomic.Uint64
	// QueueDepthMax is the high-water mark of campaigns queued or running.
	QueueDepthMax atomic.Uint64
}

// ObserveQueueDepth folds one queue-depth observation into the high-water
// mark.
func (s *ServiceStats) ObserveQueueDepth(depth int) {
	for {
		cur := s.QueueDepthMax.Load()
		if uint64(depth) <= cur || s.QueueDepthMax.CompareAndSwap(cur, uint64(depth)) {
			return
		}
	}
}

// Flat returns the counters as a flat metric map, same contract as
// Stats.Flat: stable keys, ".max" for high-water marks.
func (s *ServiceStats) Flat() map[string]float64 {
	return map[string]float64{
		"service.campaigns":       float64(s.Campaigns.Load()),
		"service.jobs":            float64(s.JobsRun.Load()),
		"service.cache.hits":      float64(s.CacheHits.Load()),
		"service.cache.misses":    float64(s.CacheMisses.Load()),
		"service.coalesced":       float64(s.Coalesced.Load()),
		"service.rejected":        float64(s.Rejected.Load()),
		"service.canceled":        float64(s.Canceled.Load()),
		"service.queue.depth.max": float64(s.QueueDepthMax.Load()),
	}
}

// Report renders the counters as an aligned key/value block, keys sorted,
// zeros dropped.
func (s *ServiceStats) Report() string { return FormatFlat(s.Flat()) }
