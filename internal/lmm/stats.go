package lmm

// Stats accumulates solver counters when attached to a System via the Stats
// field. Every hook in the solver is a single nil check, so a system without
// stats attached pays nothing — the zero-overhead contract the observability
// layer (internal/obs) relies on.
type Stats struct {
	// Solves and FullSolves count Solve and SolveFull calls.
	Solves     uint64
	FullSolves uint64
	// DirtyConstraints and DirtyVariables sum the dirty-set sizes consumed
	// across solves; divided by Solves they give the average churn per step.
	DirtyConstraints uint64
	DirtyVariables   uint64
	// Components counts the components re-solved; VarsResolved the variables
	// whose allocation was recomputed (the length of each Resolved() set,
	// summed).
	Components   uint64
	VarsResolved uint64
	// MaxComponentVars and MaxComponentCons record the largest component
	// seen, the quantity that decides whether the giant-component case is in
	// play (see ROADMAP).
	MaxComponentVars int
	MaxComponentCons int
}
