package lmm

// Stats accumulates solver counters when attached to a System via the Stats
// field. Every hook in the solver is a single nil check, so a system without
// stats attached pays nothing — the zero-overhead contract the observability
// layer (internal/obs) relies on.
type Stats struct {
	// Solves and FullSolves count Solve and SolveFull calls.
	Solves     uint64
	FullSolves uint64
	// DirtyConstraints and DirtyVariables sum the dirty-set sizes consumed
	// across solves; divided by Solves they give the average churn per step.
	DirtyConstraints uint64
	DirtyVariables   uint64
	// Components counts the components re-solved; VarsResolved the variables
	// whose allocation was recomputed (the length of each Resolved() set,
	// summed).
	Components   uint64
	VarsResolved uint64
	// MaxComponentVars and MaxComponentCons record the largest component
	// seen, the quantity that decides whether the giant-component case is in
	// play (see ROADMAP).
	MaxComponentVars int
	MaxComponentCons int
	// PartialRefills counts components the bounded-staleness mode
	// (SetRateTolerance > 0) re-filled partially; PartialVarsSkipped sums
	// the member variables whose stale rate was kept (the work the mode
	// avoided); PartialFallbacks counts attempts abandoned for a full
	// component solve because the perturbation did not decay.
	PartialRefills     uint64
	PartialVarsSkipped uint64
	PartialFallbacks   uint64
	// ParallelSolves counts solves that engaged the worker pool
	// (SetSolverWorkers > 1 and enough dirty work); ParallelComponents sums
	// the components farmed to pool workers.
	ParallelSolves     uint64
	ParallelComponents uint64
}

// mergeComponentCounters folds a worker's per-component counters into st
// after the pool barrier. Solve-level counters (Solves, dirty-set sizes,
// ParallelSolves) are recorded by the coordinating goroutine and never
// appear in worker-local stats.
func (st *Stats) mergeComponentCounters(o *Stats) {
	st.Components += o.Components
	st.VarsResolved += o.VarsResolved
	st.PartialRefills += o.PartialRefills
	st.PartialVarsSkipped += o.PartialVarsSkipped
	st.PartialFallbacks += o.PartialFallbacks
	if o.MaxComponentVars > st.MaxComponentVars {
		st.MaxComponentVars = o.MaxComponentVars
	}
	if o.MaxComponentCons > st.MaxComponentCons {
		st.MaxComponentCons = o.MaxComponentCons
	}
}
