package lmm

import (
	"math"
	"slices"
)

// Bounded-staleness partial re-fill (SetRateTolerance > 0).
//
// A perturbation inside a giant component rarely moves every member's rate:
// removing one flow reshapes the shares on the links it crossed, those
// changes ripple to the co-flows' other links, and the ripple decays as it
// spreads. The partial re-fill exploits that decay. It grows a *region* —
// a worklist of constraints whose allocations must be recomputed — outward
// from the directly-perturbed members, and stops where the recomputed rates
// move by less than eps: variables beyond the frontier keep their published
// allocation (stale by construction, by at most eps at the boundary).
//
// Correctness of the frontier: every Shared constraint crossed by a region
// variable participates in the region solve, with the frozen variables'
// published rates pre-charged against its capacity. Progressive filling
// then never hands the region more than each constraint's true remaining
// capacity, so feasibility is exact — only max-min pinning drifts, which is
// precisely the contract eps buys. Conservation in surf is untouched:
// drains always record the rate actually flown, never a recomputed one.
//
// Determinism: region membership is tracked with epoch marks, the wave loop
// sorts members by creation serial before every fill, and expansion scans
// variables in that sorted order, so the result is a pure function of the
// system state and eps — independent of dirty-set traversal and of the
// worker count.

// materially reports whether a rate moved by more than eps, relative to the
// larger magnitude (so brand-new variables, prev == 0, always count).
func materially(prev, next, eps float64) bool {
	d := math.Abs(next - prev)
	if d == 0 {
		return false
	}
	return d > eps*math.Max(math.Abs(prev), math.Abs(next))
}

// partialRefill attempts a bounded-staleness re-fill of one component.
// It reports false — leaving every member untouched, values reset by the
// caller's full solve — when the region outgrows half the component (the
// ripple did not decay, so a full solve is cheaper) or fails to converge
// within partialMaxWaves.
func (s *System) partialRefill(c *component, sc *solveScratch) bool {
	epoch := s.epoch
	regionVars := sc.regionVars[:0]
	regionCons := sc.regionCons[:0]

	// addVar admits a variable to the region, snapshotting its published
	// rate for the staleness test and registering every Shared constraint
	// it crosses (those constraints cap the region solve even when their
	// other variables stay frozen). Each constraint's frozen-frontier
	// remainder is maintained incrementally: computed once over the full
	// attachment list at registration, then credited back per admission —
	// so the waves never rescan a hot spine link's hundred-flow list.
	addVar := func(v *Variable) {
		if v.rmark == epoch {
			return
		}
		v.rmark = epoch
		v.prev = v.Value
		regionVars = append(regionVars, v)
		for _, cc := range v.cons {
			if cc.Policy != Shared {
				continue
			}
			if cc.rmark != epoch {
				cc.rmark = epoch
				regionCons = append(regionCons, cc)
				rem := cc.Capacity
				for _, u := range cc.vars {
					if u.rmark != epoch {
						rem -= u.Value
					}
				}
				cc.partialRem = rem
			} else {
				cc.partialRem += v.prev
			}
		}
	}
	// pullCons admits a constraint with all of its variables: its capacity
	// must be re-shared, so every crossing rate is up for recomputation.
	pullCons := func(cc *Constraint) {
		if cc.rpull == epoch {
			return
		}
		cc.rpull = epoch
		if cc.rmark != epoch {
			cc.rmark = epoch
			regionCons = append(regionCons, cc)
			rem := cc.Capacity
			for _, u := range cc.vars {
				if u.rmark != epoch {
					rem -= u.Value
				}
			}
			cc.partialRem = rem
		}
		for _, v := range cc.vars {
			addVar(v)
		}
	}

	// Seed from the directly-perturbed members stamped by Solve: a dirty
	// Shared constraint must re-share all its traffic, and a dirty
	// variable's new weight/bound (or fresh arrival) perturbs every
	// constraint it crosses.
	for _, cc := range c.cons {
		if cc.modMark == epoch {
			pullCons(cc)
		}
	}
	for _, v := range c.vars {
		if v.modMark == epoch {
			addVar(v)
			for _, cc := range v.cons {
				if cc.Policy == Shared {
					pullCons(cc)
				}
			}
		}
	}

	limit := len(c.vars) / 2
	for wave := 0; ; wave++ {
		if len(regionVars) > limit || wave == partialMaxWaves {
			sc.regionVars, sc.regionCons = regionVars[:0], regionCons[:0]
			if st := sc.stats; st != nil {
				st.PartialFallbacks++
			}
			return false
		}
		slices.SortFunc(regionCons, func(a, b *Constraint) int { return a.id - b.id })
		slices.SortFunc(regionVars, func(a, b *Variable) int { return a.id - b.id })
		s.solveRegion(regionCons, regionVars, sc)

		// Expansion: any region variable whose rate moved materially
		// invalidates the shares on its constraints, so those constraints
		// are pulled in fully and the region re-filled. The loop terminates
		// because the region only grows and is bounded by the component.
		grew := false
		for _, v := range regionVars {
			if !materially(v.prev, v.Value, s.rateTol) {
				continue
			}
			for _, cc := range v.cons {
				if cc.Policy == Shared && cc.rpull != epoch {
					pullCons(cc)
					grew = true
				}
			}
		}
		if !grew {
			break
		}
	}

	if st := sc.stats; st != nil {
		st.PartialRefills++
		st.VarsResolved += uint64(len(regionVars))
		st.PartialVarsSkipped += uint64(len(c.vars) - len(regionVars))
	}
	c.partial = append(c.partial[:0], regionVars...)
	c.resolved = c.partial
	sc.regionVars, sc.regionCons = regionVars[:0], regionCons[:0]
	return true
}

// solveRegion runs progressive filling over a region of a component. It
// differs from solveComponent only in initialization: each constraint's
// capacity starts from the incrementally-maintained frozen-frontier
// remainder (capacity minus the published rates of out-of-region
// variables), and the live lists are rebuilt from the region variables —
// O(region degree) per wave, never a walk of a constraint's full
// attachment list. The fill loop itself is shared, so within the region
// every floating-point operation follows the same compaction discipline a
// full solve uses.
func (s *System) solveRegion(cons []*Constraint, vars []*Variable, sc *solveScratch) {
	for _, c := range cons {
		c.active = false
		c.liveVars = c.liveVars[:0]
		rem := c.partialRem
		if rem < 0 {
			// Frozen frontier: the previous solve left the stale rates
			// feasible, so the remainder only goes negative by rounding
			// drift; floor it.
			rem = 0
		}
		c.remaining = rem
	}
	actVars := sc.actVars[:0]
	for _, v := range vars {
		v.fixed = v.Weight == 0
		v.Value = 0
		if v.fixed {
			continue
		}
		actVars = append(actVars, v)
		for _, cc := range v.cons {
			if cc.Policy == Shared {
				cc.liveVars = append(cc.liveVars, v)
			}
		}
	}
	actCons := sc.actCons[:0]
	for _, c := range cons {
		actCons = append(actCons, c)
	}
	actCons, actVars = fill(actCons, actVars)
	sc.actCons, sc.actVars = actCons[:0], actVars[:0]
}
