package lmm

import (
	"math"
	"testing"
)

// The fuzz targets drive the same churn space as
// TestIncrementalMatchesFromScratch — add/remove variables, retune
// capacities, vary shares and bounds — but let the fuzzer pick the op
// sequence from raw bytes instead of a fixed RNG, so the corpus can walk
// into dirty-set corners the property test's distribution rarely visits.
//
// fuzzOps decodes one byte stream into a deterministic churn schedule:
//
//	byte 0          constraint count (3..10)
//	byte 1..n       one byte per constraint: capacity (b%100)/2, FatPipe
//	                when b%5 == 4
//	rest            op stream, one op per group of bytes (see fuzzChurn)
//
// Every byte is consumed modulo its domain, so all inputs are valid — the
// fuzzer can only explore, never "miss".

// fuzzReader hands out bytes until the input is exhausted.
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) next() (byte, bool) {
	if r.pos >= len(r.data) {
		return 0, false
	}
	b := r.data[r.pos]
	r.pos++
	return b, true
}

// fuzzChurn replays the decoded schedule on an incrementally-solved system.
// With eps == 0 it asserts full bit-identity against from-scratch rebuilds
// (plus Check after every op); with eps > 0 it asserts the bounded-staleness
// feasibility contract: capacities and bounds are never over-committed, no
// allocation is negative, and zero-weight variables stay at zero.
func fuzzChurn(t *testing.T, data []byte, eps float64) {
	r := &fuzzReader{data: data}
	b, ok := r.next()
	if !ok {
		return
	}
	nCons := 3 + int(b)%8
	type consSpec struct {
		capacity float64
		policy   SharingPolicy
	}
	specs := make([]consSpec, nCons)
	s := New()
	if eps > 0 {
		s.SetRateTolerance(eps)
	}
	cons := make([]*Constraint, nCons)
	for i := range cons {
		cb, ok := r.next()
		if !ok {
			cb = byte(17 * (i + 1))
		}
		specs[i] = consSpec{capacity: float64(cb%100) / 2, policy: Shared}
		if cb%5 == 4 {
			specs[i].policy = FatPipe
		}
		cons[i] = s.NewConstraint("c", specs[i].capacity, specs[i].policy)
	}

	weights := [4]float64{0, 0.5, 1, 2}
	var live []churnRecord
	addVar := func() bool {
		wb, ok := r.next()
		if !ok {
			return false
		}
		weight := weights[wb%4]
		bound := math.Inf(1)
		if bb, ok := r.next(); ok && bb%3 == 0 {
			bound = float64(bb%120) / 4
		}
		hb, _ := r.next()
		hops := 1 + int(hb)%3
		route := make([]int, 0, hops)
		for len(route) < hops {
			rb, ok := r.next()
			if !ok {
				break
			}
			h := int(rb) % nCons
			dup := false
			for _, e := range route {
				if e == h {
					dup = true
				}
			}
			if !dup {
				route = append(route, h)
			}
		}
		if len(route) == 0 {
			route = append(route, int(hb)%nCons)
		}
		v := s.NewVariable("v", weight, bound)
		for _, h := range route {
			s.Attach(v, cons[h])
		}
		live = append(live, churnRecord{v: v, weight: weight, bound: bound, route: route})
		return true
	}

	checkFeasible := func(op int) {
		for i, c := range cons {
			if c.Policy != Shared {
				continue
			}
			u := 0.0
			for _, v := range c.vars {
				u += v.Value
			}
			if u > c.Capacity*(1+checkRelTol)+checkAbsTol {
				t.Fatalf("op %d: constraint %d over capacity: %g > %g (eps %g)", op, i, u, c.Capacity, eps)
			}
		}
		for i, rec := range live {
			v := rec.v
			if v.Value < -checkAbsTol {
				t.Fatalf("op %d: var %d negative allocation %g", op, i, v.Value)
			}
			if v.Weight == 0 && v.Value != 0 {
				t.Fatalf("op %d: zero-weight var %d has allocation %g", op, i, v.Value)
			}
			if b := v.effectiveBound(); !math.IsInf(b, 1) && v.Value > b*(1+checkRelTol)+checkAbsTol {
				t.Fatalf("op %d: var %d exceeds bound: %g > %g", op, i, v.Value, b)
			}
		}
	}

	crossCheck := func(op int) {
		// Bitwise reference 1: from-scratch rebuild of the survivors, under
		// the constraints' current capacities.
		ref := New()
		refCons := make([]*Constraint, nCons)
		for i := range specs {
			refCons[i] = ref.NewConstraint("c", cons[i].Capacity, specs[i].policy)
		}
		refVars := make([]*Variable, len(live))
		for i, rec := range live {
			refVars[i] = ref.NewVariable("v", rec.v.Weight, rec.v.Bound)
			for _, h := range rec.route {
				ref.Attach(refVars[i], refCons[h])
			}
		}
		ref.SolveFull()
		for i, rec := range live {
			if rec.v.Value != refVars[i].Value {
				t.Fatalf("op %d: incremental value %v != from-scratch %v (var %d)",
					op, rec.v.Value, refVars[i].Value, i)
			}
		}
		// Bitwise reference 2: in-place full re-solve.
		got := make([]float64, len(live))
		for i, rec := range live {
			got[i] = rec.v.Value
		}
		s.SolveFull()
		for i, rec := range live {
			if rec.v.Value != got[i] {
				t.Fatalf("op %d: SolveFull value %v != incremental %v (var %d)",
					op, rec.v.Value, got[i], i)
			}
		}
	}

	const maxOps = 48
	for op := 0; op < maxOps; op++ {
		ob, ok := r.next()
		if !ok {
			break
		}
		switch ob % 6 {
		case 0, 1:
			if len(live) >= 40 || !addVar() {
				if len(live) == 0 {
					return
				}
				ib, _ := r.next()
				i := int(ib) % len(live)
				s.RemoveVariable(live[i].v)
				live = append(live[:i], live[i+1:]...)
			}
		case 2:
			if len(live) == 0 {
				continue
			}
			ib, _ := r.next()
			i := int(ib) % len(live)
			s.RemoveVariable(live[i].v)
			live = append(live[:i], live[i+1:]...)
		case 3:
			ib, _ := r.next()
			cb, _ := r.next()
			s.SetCapacity(cons[int(ib)%nCons], float64(cb%100)/2)
		case 4:
			if len(live) == 0 {
				continue
			}
			ib, _ := r.next()
			wb, _ := r.next()
			v := live[int(ib)%len(live)].v
			v.Weight = weights[wb%4]
			s.MarkVariableDirty(v)
		case 5:
			if len(live) == 0 {
				continue
			}
			ib, _ := r.next()
			bb, _ := r.next()
			v := live[int(ib)%len(live)].v
			if bb%3 == 0 {
				v.Bound = math.Inf(1)
			} else {
				v.Bound = float64(bb%120) / 4
			}
			s.MarkVariableDirty(v)
		}
		s.Solve()
		if eps == 0 {
			if err := s.Check(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			if op%4 == 0 {
				crossCheck(op)
			}
		} else {
			checkFeasible(op)
		}
	}
	if eps == 0 {
		crossCheck(maxOps)
	}
}

// fuzzSeeds is the committed starting corpus (also mirrored under
// testdata/fuzz/): op streams distilled from the churn property test's
// distribution — add-heavy growth, remove-heavy drain, capacity retuning,
// and share/bound variation.
var fuzzSeeds = [][]byte{
	[]byte("0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"),
	[]byte("\x05aaaaaa000000000000111111111111222222333333444444555555"),
	[]byte("\x09\x04\x13\x22\x31\x40\x4f\x5e\x6d\x7cadd00add11add22rm3cap4w5b6add77add88rm9capAwBbCaddDDrmEcapF"),
	[]byte("\x03\x63\x63\x63000000333333333333444444444444555555555555000000222222"),
	[]byte("lmm-churn: grow, retune, vary, drain; grow, retune, vary, drain"),
}

// FuzzIncrementalMatchesFromScratch fuzzes the exact incremental solver:
// after every decoded churn op the incremental allocation must satisfy
// System.Check and match a from-scratch rebuild bit-for-bit. This is the
// property test's oracle under fuzzer-chosen schedules.
func FuzzIncrementalMatchesFromScratch(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzChurn(t, data, 0)
	})
}

// FuzzBoundedStalenessFeasible fuzzes the bounded-staleness mode
// (SetRateTolerance > 0): stale rates may drift from exact max-min by eps,
// but feasibility must stay hard — no over-committed capacity, no exceeded
// bound, no negative or zero-weight allocation — under any churn schedule.
func FuzzBoundedStalenessFeasible(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzChurn(t, data, 1e-3)
	})
}
