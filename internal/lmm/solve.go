package lmm

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
)

// fixTol is the relative tolerance deciding that a live share or bound is
// reached at the current fair rate (kept identical to the historical full
// solver so allocations are unchanged).
const fixTol = 1e-12

// overTol is the relative over-subscription slack tolerated while charging
// fixed allocations against a constraint. Progressive filling never charges
// more than the remaining capacity except for floating-point drift; anything
// beyond this tolerance is a solver bug and fails loudly instead of being
// silently clamped away.
const overTol = 1e-9

// parallelMinVars is the minimum total variable count (summed over the dirty
// components of one Solve) before the worker pool is worth its goroutine
// hand-off cost. Below it — the neighbor-churn regime, where an event
// re-solves a handful of variables in a few hundred nanoseconds — the solve
// stays on the caller's stack.
const parallelMinVars = 96

// partialMaxWaves bounds the region-growing waves of a bounded-staleness
// partial re-fill before giving up and re-solving the component in full.
const partialMaxWaves = 8

// SetSolverWorkers bounds the worker pool Solve may use to solve independent
// dirty components concurrently. n <= 0 selects GOMAXPROCS. The default for
// a new System is 1 (serial). Any worker count produces bit-identical
// allocations and an identical Resolved() order: components share no
// mutable state (that is what makes them components), each is solved by
// exactly one worker with the same member ordering the serial path uses, and
// results are merged back in component-discovery order.
func (s *System) SetSolverWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s.workers = n
}

// SolverWorkers reports the configured worker bound (1 = serial).
func (s *System) SolverWorkers() int {
	if s.workers <= 0 {
		return 1
	}
	return s.workers
}

// SetRateTolerance sets the bounded-staleness tolerance eps. Zero (the
// default) keeps Solve exact. With eps > 0, Solve may re-fill only the
// perturbed sub-region of a dirty component: variables whose rate would move
// by less than eps (relative) keep their stale allocation and are omitted
// from Resolved(). Capacities are never over-committed — frontier variables
// are frozen at their published rates and charged against their constraints
// — so feasibility is exact; only max-min pinning drifts, by at most eps per
// skipped variable. eps must be in [0, 1).
func (s *System) SetRateTolerance(eps float64) {
	if eps < 0 || eps >= 1 || math.IsNaN(eps) {
		panic(fmt.Sprintf("lmm: invalid rate tolerance %v (want [0, 1))", eps))
	}
	s.rateTol = eps
}

// RateTolerance reports the configured bounded-staleness tolerance.
func (s *System) RateTolerance() float64 { return s.rateTol }

// Solve computes the bounded max-min fair allocation for every component of
// the system touched since the previous Solve, storing each variable's
// share in its Value field. Variables in untouched components keep their
// previous allocation bit-for-bit.
//
// A component is a set of variables transitively coupled through Shared
// constraints. FatPipe constraints never couple variables (they only cap
// each crossing variable individually), so they do not merge components.
//
// Solve runs in three phases: collect the dirty components (serial — it
// consumes the dirty set and the component marks), solve each component
// (serial, or on the SetSolverWorkers pool when several components carry
// enough variables), and publish Resolved() in component-discovery order.
// The phases produce exactly the member sets, member ordering, and resolved
// ordering of the historical solve-as-you-discover path, at any worker
// count.
func (s *System) Solve() {
	s.epoch++
	s.resolved = s.resolved[:0]
	dirtyCons, dirtyVars := s.dirtyCons, s.dirtyVars
	if s.Stats != nil {
		s.Stats.Solves++
		s.Stats.DirtyConstraints += uint64(len(dirtyCons))
		s.Stats.DirtyVariables += uint64(len(dirtyVars))
	}
	if s.rateTol > 0 {
		// Stamp the directly-perturbed members: they seed the partial
		// re-fill region inside each collected component. A dirty FatPipe
		// constraint perturbs each crossing variable's effective bound, so
		// it stamps the variables themselves.
		for _, c := range dirtyCons {
			if c.Policy == Shared {
				c.modMark = s.epoch
			} else {
				for _, v := range c.vars {
					v.modMark = s.epoch
				}
			}
		}
		for _, v := range dirtyVars {
			if v.sysIdx >= 0 {
				v.modMark = s.epoch
			}
		}
	}
	s.comps = s.comps[:0]
	s.sortComps = s.rateTol == 0
	for _, c := range dirtyCons {
		c.dirty = false
		s.collectSeedCons(c)
	}
	for _, v := range dirtyVars {
		v.dirty = false
		if v.sysIdx >= 0 {
			s.collectSeedVar(v)
		}
	}
	s.dirtyCons = dirtyCons[:0]
	s.dirtyVars = dirtyVars[:0]
	s.solveCollected(s.rateTol > 0)
	if CheckAfterSolve {
		s.mustCheck()
	}
}

// SolveFull re-solves every component from scratch, ignoring the dirty set
// and the bounded-staleness tolerance. It produces exactly the same
// allocations as exact incremental solving (it runs the same per-component
// routine over the same partitions); it exists as the reference path for
// equivalence tests and benchmarks.
func (s *System) SolveFull() {
	if s.Stats != nil {
		s.Stats.FullSolves++
	}
	for _, c := range s.dirtyCons {
		c.dirty = false
	}
	for _, v := range s.dirtyVars {
		v.dirty = false
	}
	s.dirtyCons = s.dirtyCons[:0]
	s.dirtyVars = s.dirtyVars[:0]
	s.epoch++
	s.resolved = s.resolved[:0]
	s.comps = s.comps[:0]
	s.sortComps = true
	for _, c := range s.constraints {
		s.collectSeedCons(c)
	}
	for _, v := range s.variables {
		s.collectSeedVar(v)
	}
	s.solveCollected(false)
	if CheckAfterSolve {
		s.mustCheck()
	}
}

// Resolved returns the variables whose allocations the last Solve (or
// SolveFull) recomputed: the members of the components the dirty set
// touched, or — under a non-zero rate tolerance — only the re-filled region
// of each such component. Callers propagating allocations into their own
// state (flow rates, task rates) can walk this list instead of every live
// variable, keeping the per-event cost proportional to the churn.
//
// Ordering contract: components appear in discovery order (the order the
// dirty set seeded them), and within a component members appear in creation
// order. surf's lazy drain relies on this order being a pure function of the
// mutation history — it decides push order into the action heap for
// same-date completions — and it is preserved at any SetSolverWorkers count.
// The slice is valid until the next mutation or solve.
func (s *System) Resolved() []*Variable { return s.resolved }

// collectSeedCons collects the component(s) reachable from a seed
// constraint. A Shared constraint anchors one component; a FatPipe
// constraint only caps its variables, so each of its still-unvisited
// variables seeds its own component (they may well be independent of each
// other).
func (s *System) collectSeedCons(c *Constraint) {
	if c.Policy == Shared {
		if c.mark != s.epoch {
			s.stackC = append(s.stackC, c)
			c.mark = s.epoch
			s.collectPending()
		}
		return
	}
	for _, v := range c.vars {
		s.collectSeedVar(v)
	}
}

// collectSeedVar collects the component containing v, unless it was already
// collected this epoch.
func (s *System) collectSeedVar(v *Variable) {
	if v.mark != s.epoch {
		s.stackV = append(s.stackV, v)
		v.mark = s.epoch
		s.collectPending()
	}
}

// collectPending drains the visit stacks into one connected component —
// expanding variables to their Shared constraints and Shared constraints to
// their variables — and appends it to s.comps. On the exact path members are
// sorted by creation serial, so the later solve depends only on the
// component's membership, never on traversal order or on which mutation
// dirtied it. A bounded-staleness Solve skips the sort — on a giant
// component it dominates the whole event — and leaves members in traversal
// order (itself a pure function of the mutation history): the partial
// re-fill sorts just its small region, and the fallback path sorts the
// component lists before handing them to the exact solver.
func (s *System) collectPending() {
	comp := s.nextComp()
	for len(s.stackC)+len(s.stackV) > 0 {
		if n := len(s.stackV); n > 0 {
			v := s.stackV[n-1]
			s.stackV = s.stackV[:n-1]
			comp.vars = append(comp.vars, v)
			for _, c := range v.cons {
				if c.Policy == Shared && c.mark != s.epoch {
					c.mark = s.epoch
					s.stackC = append(s.stackC, c)
				}
			}
			continue
		}
		n := len(s.stackC)
		c := s.stackC[n-1]
		s.stackC = s.stackC[:n-1]
		comp.cons = append(comp.cons, c)
		for _, v := range c.vars {
			if v.mark != s.epoch {
				v.mark = s.epoch
				s.stackV = append(s.stackV, v)
			}
		}
	}
	if s.sortComps {
		slices.SortFunc(comp.cons, func(a, b *Constraint) int { return a.id - b.id })
		slices.SortFunc(comp.vars, func(a, b *Variable) int { return a.id - b.id })
	}
}

// nextComp returns a cleared component slot, reusing the backing slices of
// previous solves.
func (s *System) nextComp() *component {
	if len(s.comps) < cap(s.comps) {
		s.comps = s.comps[:len(s.comps)+1]
	} else {
		s.comps = append(s.comps, component{})
	}
	c := &s.comps[len(s.comps)-1]
	c.cons = c.cons[:0]
	c.vars = c.vars[:0]
	c.resolved = nil
	return c
}

// scratch returns the i-th per-worker scratch, growing the pool on demand.
func (s *System) scratch(i int) *solveScratch {
	for len(s.scratches) <= i {
		s.scratches = append(s.scratches, &solveScratch{})
	}
	return s.scratches[i]
}

// solveCollected solves every collected component — serially, or on the
// worker pool when it is enabled and the dirty components carry enough
// variables to amortize the hand-off — then publishes Resolved() in
// component-discovery order. partial enables the bounded-staleness re-fill.
func (s *System) solveCollected(partial bool) {
	if len(s.comps) == 0 {
		return
	}
	workers := s.workers
	if workers > len(s.comps) {
		workers = len(s.comps)
	}
	if workers > 1 {
		total := 0
		for i := range s.comps {
			total += len(s.comps[i].vars)
		}
		if total < parallelMinVars {
			workers = 1
		}
	}
	if workers > 1 {
		s.solveParallel(workers, partial)
	} else {
		sc := s.scratch(0)
		sc.stats = s.Stats
		for i := range s.comps {
			s.solveOne(&s.comps[i], sc, partial)
		}
	}
	for i := range s.comps {
		s.resolved = append(s.resolved, s.comps[i].resolved...)
	}
}

// solveParallel farms the collected components out to a bounded worker pool.
// Determinism does not depend on the assignment of components to workers:
// every component is solved in isolation with the same member ordering the
// serial path uses, workers write only to component-local state and their
// own scratch, and the merge in solveCollected reads s.comps in discovery
// order. Stats are accumulated per worker and merged after the barrier so
// counters stay exact without atomics on the fill path.
func (s *System) solveParallel(workers int, partial bool) {
	if s.Stats != nil {
		s.Stats.ParallelSolves++
		s.Stats.ParallelComponents += uint64(len(s.comps))
	}
	if cap(s.panics) < len(s.comps) {
		s.panics = make([]any, len(s.comps))
	}
	panics := s.panics[:len(s.comps)]
	for i := range panics {
		panics[i] = nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		sc := s.scratch(w)
		if s.Stats != nil {
			sc.local = Stats{}
			sc.stats = &sc.local
		} else {
			sc.stats = nil
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(s.comps) {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[i] = r
						}
					}()
					s.solveOne(&s.comps[i], sc, partial)
				}()
			}
		}()
	}
	wg.Wait()
	// Re-raise the first panic in component order, so a solver bug reports
	// identically at any worker count.
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	if s.Stats != nil {
		for w := 0; w < workers; w++ {
			s.Stats.mergeComponentCounters(&s.scratches[w].local)
		}
	}
}

// solveOne solves a single collected component, attempting a bounded-
// staleness partial re-fill first when enabled, and records what it
// resolved for the publish phase.
func (s *System) solveOne(c *component, sc *solveScratch, partial bool) {
	if st := sc.stats; st != nil {
		st.Components++
		if len(c.vars) > st.MaxComponentVars {
			st.MaxComponentVars = len(c.vars)
		}
		if len(c.cons) > st.MaxComponentCons {
			st.MaxComponentCons = len(c.cons)
		}
	}
	if partial {
		if s.partialRefill(c, sc) {
			return
		}
		// Fallback to the exact component solve: restore the creation-order
		// member lists the bounded-staleness collection skipped sorting.
		slices.SortFunc(c.cons, func(a, b *Constraint) int { return a.id - b.id })
		slices.SortFunc(c.vars, func(a, b *Variable) int { return a.id - b.id })
	}
	s.solveComponent(c.cons, c.vars, sc)
	c.resolved = c.vars
	if st := sc.stats; st != nil {
		st.VarsResolved += uint64(len(c.vars))
	}
}

// effectiveBound is the variable's own bound tightened by the FatPipe caps
// it crosses.
func (v *Variable) effectiveBound() float64 {
	b := v.Bound
	for _, c := range v.cons {
		if c.Policy == FatPipe && c.Capacity < b {
			b = c.Capacity
		}
	}
	return b
}

// charge subtracts a freshly fixed allocation from the Shared constraints
// the variable crosses, with epsilon-tolerant accounting: floating-point
// drift may push remaining marginally below zero (then it is floored), but
// a materially negative remainder means the solver over-committed a
// capacity and is reported loudly instead of being masked.
func charge(v *Variable) {
	for _, c := range v.cons {
		if c.Policy != Shared {
			continue
		}
		c.remaining -= v.Value
		if c.remaining < 0 {
			if c.remaining < -overTol*(c.Capacity+1) {
				panic(fmt.Sprintf("lmm: constraint %q over capacity by %g during solve (capacity %g)",
					c.Name, -c.remaining, c.Capacity))
			}
			c.remaining = 0
		}
	}
}

// solveComponent runs progressive filling restricted to one component:
// at each round the tightest shared constraint (or variable bound)
// determines a fair rate r; variables limited by it are fixed, their usage
// is subtracted, and the process repeats. cons holds only the component's
// Shared constraints; FatPipe caps enter through effectiveBound.
func (s *System) solveComponent(cons []*Constraint, vars []*Variable, sc *solveScratch) {
	for _, v := range vars {
		v.fixed = false
		v.Value = 0
		if v.Weight == 0 {
			v.fixed = true
		}
	}
	actVars := sc.actVars[:0]
	for _, v := range vars {
		if !v.fixed {
			actVars = append(actVars, v)
		}
	}
	actCons := sc.actCons[:0]
	for _, c := range cons {
		c.remaining = c.Capacity
		c.active = false
		c.liveVars = c.liveVars[:0]
		for _, v := range c.vars {
			if !v.fixed {
				c.liveVars = append(c.liveVars, v)
			}
		}
		actCons = append(actCons, c)
	}
	actCons, actVars = fill(actCons, actVars)
	sc.actCons, sc.actVars = actCons[:0], actVars[:0]
}

// fill is the progressive-filling round loop shared by the full-component
// and partial-region solvers. It expects actVars to hold the unfixed
// variables and every constraint in actCons to carry its remaining capacity
// and its liveVars compacted to the unfixed members.
//
// Active lists keep the rounds cheap: each constraint carries a compacted
// list of its still-unfixed variables, constraints whose variables are all
// fixed drop out of the round loop entirely, and both compactions preserve
// relative order. Every floating-point operation therefore happens in
// exactly the order the naive full scan would produce (unfixed members in
// creation/attach order), so shrinking the scans never changes a bit of the
// result — it only stops revisiting finished work.
func fill(actCons []*Constraint, actVars []*Variable) ([]*Constraint, []*Variable) {
	unfixed := len(actVars)
	for unfixed > 0 {
		// Recompute unfixed weight per shared constraint, compacting each
		// active list and retiring constraints with no unfixed variables
		// left (they can never reactivate: variables only ever get fixed).
		nc := 0
		for _, c := range actCons {
			nv := 0
			c.unfixedWeight = 0
			for _, v := range c.liveVars {
				if !v.fixed {
					c.liveVars[nv] = v
					nv++
					c.unfixedWeight += v.Weight
				}
			}
			c.liveVars = c.liveVars[:nv]
			c.active = c.unfixedWeight > 0
			if c.active {
				actCons[nc] = c
				nc++
			}
		}
		actCons = actCons[:nc]

		// Fair-share rate candidate from constraints.
		r := math.Inf(1)
		for _, c := range actCons {
			if share := c.remaining / c.unfixedWeight; share < r {
				r = share
			}
		}
		// Candidate from variable bounds (rate = bound/weight), compacting
		// the unfixed-variable list on the way.
		nv := 0
		for _, v := range actVars {
			if v.fixed {
				continue
			}
			actVars[nv] = v
			nv++
			if b := v.effectiveBound(); !math.IsInf(b, 1) {
				if br := b / v.Weight; br < r {
					r = br
				}
			}
		}
		actVars = actVars[:nv]

		if math.IsInf(r, 1) {
			// No shared constraint and no bound limits the remaining
			// variables; they are effectively unbounded. Flag loudly
			// rather than looping forever.
			panic("lmm: unbounded variables with no active constraint")
		}

		progressed := false
		// Fix variables whose bound is reached at rate r.
		for _, v := range actVars {
			if b := v.effectiveBound(); !math.IsInf(b, 1) && b <= r*v.Weight*(1+fixTol) {
				v.Value = b
				v.fixed = true
				unfixed--
				progressed = true
				charge(v)
			}
		}
		// Fix variables on saturated constraints. Weights are recomputed
		// live because fixes earlier in this round (at bounds, or on other
		// constraints) change both remaining capacity and unfixed weight;
		// the progressive-filling invariant guarantees live shares stay
		// >= r, with equality exactly on saturated constraints.
		for _, c := range actCons {
			live := 0.0
			for _, v := range c.liveVars {
				if !v.fixed {
					live += v.Weight
				}
			}
			if live == 0 {
				continue
			}
			share := c.remaining / live
			if share <= r*(1+fixTol) {
				for _, v := range c.liveVars {
					if v.fixed {
						continue
					}
					v.Value = r * v.Weight
					v.fixed = true
					unfixed--
					progressed = true
					charge(v)
				}
			}
		}
		if !progressed {
			panic("lmm: solver failed to make progress")
		}
	}
	return actCons, actVars
}
