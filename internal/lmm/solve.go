package lmm

import (
	"fmt"
	"math"
	"slices"
)

// fixTol is the relative tolerance deciding that a live share or bound is
// reached at the current fair rate (kept identical to the historical full
// solver so allocations are unchanged).
const fixTol = 1e-12

// overTol is the relative over-subscription slack tolerated while charging
// fixed allocations against a constraint. Progressive filling never charges
// more than the remaining capacity except for floating-point drift; anything
// beyond this tolerance is a solver bug and fails loudly instead of being
// silently clamped away.
const overTol = 1e-9

// Solve computes the bounded max-min fair allocation for every component of
// the system touched since the previous Solve, storing each variable's
// share in its Value field. Variables in untouched components keep their
// previous allocation bit-for-bit.
//
// A component is a set of variables transitively coupled through Shared
// constraints. FatPipe constraints never couple variables (they only cap
// each crossing variable individually), so they do not merge components.
func (s *System) Solve() {
	s.epoch++
	s.resolved = s.resolved[:0]
	dirtyCons, dirtyVars := s.dirtyCons, s.dirtyVars
	if s.Stats != nil {
		s.Stats.Solves++
		s.Stats.DirtyConstraints += uint64(len(dirtyCons))
		s.Stats.DirtyVariables += uint64(len(dirtyVars))
	}
	for _, c := range dirtyCons {
		c.dirty = false
		s.resolveSeedCons(c)
	}
	for _, v := range dirtyVars {
		v.dirty = false
		if v.sysIdx >= 0 {
			s.resolveSeedVar(v)
		}
	}
	s.dirtyCons = dirtyCons[:0]
	s.dirtyVars = dirtyVars[:0]
}

// SolveFull re-solves every component from scratch, ignoring the dirty set.
// It produces exactly the same allocations as incremental solving (it runs
// the same per-component routine over the same partitions); it exists as
// the reference path for equivalence tests and benchmarks.
func (s *System) SolveFull() {
	if s.Stats != nil {
		s.Stats.FullSolves++
	}
	for _, c := range s.dirtyCons {
		c.dirty = false
	}
	for _, v := range s.dirtyVars {
		v.dirty = false
	}
	s.dirtyCons = s.dirtyCons[:0]
	s.dirtyVars = s.dirtyVars[:0]
	s.epoch++
	s.resolved = s.resolved[:0]
	for _, c := range s.constraints {
		s.resolveSeedCons(c)
	}
	for _, v := range s.variables {
		s.resolveSeedVar(v)
	}
}

// Resolved returns the variables whose allocations the last Solve (or
// SolveFull) recomputed: exactly the members of the components the dirty
// set touched. Callers propagating allocations into their own state (flow
// rates, task rates) can walk this list instead of every live variable,
// keeping the per-event cost proportional to the churned components. The
// slice is valid until the next mutation or solve.
func (s *System) Resolved() []*Variable { return s.resolved }

// resolveSeedCons solves the component(s) reachable from a seed constraint.
// A Shared constraint anchors one component; a FatPipe constraint only caps
// its variables, so each of its still-unvisited variables seeds its own
// component (they may well be independent of each other).
func (s *System) resolveSeedCons(c *Constraint) {
	if c.Policy == Shared {
		if c.mark != s.epoch {
			s.stackC = append(s.stackC, c)
			c.mark = s.epoch
			s.solvePending()
		}
		return
	}
	for _, v := range c.vars {
		s.resolveSeedVar(v)
	}
}

// resolveSeedVar solves the component containing v, unless it was already
// solved this epoch.
func (s *System) resolveSeedVar(v *Variable) {
	if v.mark != s.epoch {
		s.stackV = append(s.stackV, v)
		v.mark = s.epoch
		s.solvePending()
	}
}

// solvePending drains the visit stacks into one connected component —
// expanding variables to their Shared constraints and Shared constraints to
// their variables — then solves it. Members are sorted by creation serial
// before solving, so the allocation depends only on the component's
// membership, never on traversal order or on which mutation dirtied it.
func (s *System) solvePending() {
	s.compCons = s.compCons[:0]
	s.compVars = s.compVars[:0]
	for len(s.stackC)+len(s.stackV) > 0 {
		if n := len(s.stackV); n > 0 {
			v := s.stackV[n-1]
			s.stackV = s.stackV[:n-1]
			s.compVars = append(s.compVars, v)
			for _, c := range v.cons {
				if c.Policy == Shared && c.mark != s.epoch {
					c.mark = s.epoch
					s.stackC = append(s.stackC, c)
				}
			}
			continue
		}
		n := len(s.stackC)
		c := s.stackC[n-1]
		s.stackC = s.stackC[:n-1]
		s.compCons = append(s.compCons, c)
		for _, v := range c.vars {
			if v.mark != s.epoch {
				v.mark = s.epoch
				s.stackV = append(s.stackV, v)
			}
		}
	}
	slices.SortFunc(s.compCons, func(a, b *Constraint) int { return a.id - b.id })
	slices.SortFunc(s.compVars, func(a, b *Variable) int { return a.id - b.id })
	s.solveComponent(s.compCons, s.compVars)
}

// effectiveBound is the variable's own bound tightened by the FatPipe caps
// it crosses.
func (v *Variable) effectiveBound() float64 {
	b := v.Bound
	for _, c := range v.cons {
		if c.Policy == FatPipe && c.Capacity < b {
			b = c.Capacity
		}
	}
	return b
}

// charge subtracts a freshly fixed allocation from the Shared constraints
// the variable crosses, with epsilon-tolerant accounting: floating-point
// drift may push remaining marginally below zero (then it is floored), but
// a materially negative remainder means the solver over-committed a
// capacity and is reported loudly instead of being masked.
func charge(v *Variable) {
	for _, c := range v.cons {
		if c.Policy != Shared {
			continue
		}
		c.remaining -= v.Value
		if c.remaining < 0 {
			if c.remaining < -overTol*(c.Capacity+1) {
				panic(fmt.Sprintf("lmm: constraint %q over capacity by %g during solve (capacity %g)",
					c.Name, -c.remaining, c.Capacity))
			}
			c.remaining = 0
		}
	}
}

// solveComponent runs progressive filling restricted to one component:
// at each round the tightest shared constraint (or variable bound)
// determines a fair rate r; variables limited by it are fixed, their usage
// is subtracted, and the process repeats. cons holds only the component's
// Shared constraints; FatPipe caps enter through effectiveBound.
//
// Active lists keep the rounds cheap: each constraint carries a compacted
// list of its still-unfixed variables, constraints whose variables are all
// fixed drop out of the round loop entirely, and both compactions preserve
// relative order. Every floating-point operation therefore happens in
// exactly the order the naive full scan would produce (unfixed members in
// creation/attach order), so shrinking the scans never changes a bit of the
// result — it only stops revisiting finished work.
func (s *System) solveComponent(cons []*Constraint, vars []*Variable) {
	if s.Stats != nil {
		s.Stats.Components++
		s.Stats.VarsResolved += uint64(len(vars))
		if len(vars) > s.Stats.MaxComponentVars {
			s.Stats.MaxComponentVars = len(vars)
		}
		if len(cons) > s.Stats.MaxComponentCons {
			s.Stats.MaxComponentCons = len(cons)
		}
	}
	s.resolved = append(s.resolved, vars...)
	for _, v := range vars {
		v.fixed = false
		v.Value = 0
		if v.Weight == 0 {
			v.fixed = true
		}
	}
	actVars := s.actVars[:0]
	for _, v := range vars {
		if !v.fixed {
			actVars = append(actVars, v)
		}
	}
	actCons := s.actCons[:0]
	for _, c := range cons {
		c.remaining = c.Capacity
		c.active = false
		c.liveVars = c.liveVars[:0]
		for _, v := range c.vars {
			if !v.fixed {
				c.liveVars = append(c.liveVars, v)
			}
		}
		actCons = append(actCons, c)
	}

	unfixed := len(actVars)
	for unfixed > 0 {
		// Recompute unfixed weight per shared constraint, compacting each
		// active list and retiring constraints with no unfixed variables
		// left (they can never reactivate: variables only ever get fixed).
		nc := 0
		for _, c := range actCons {
			nv := 0
			c.unfixedWeight = 0
			for _, v := range c.liveVars {
				if !v.fixed {
					c.liveVars[nv] = v
					nv++
					c.unfixedWeight += v.Weight
				}
			}
			c.liveVars = c.liveVars[:nv]
			c.active = c.unfixedWeight > 0
			if c.active {
				actCons[nc] = c
				nc++
			}
		}
		actCons = actCons[:nc]

		// Fair-share rate candidate from constraints.
		r := math.Inf(1)
		for _, c := range actCons {
			if share := c.remaining / c.unfixedWeight; share < r {
				r = share
			}
		}
		// Candidate from variable bounds (rate = bound/weight), compacting
		// the unfixed-variable list on the way.
		nv := 0
		for _, v := range actVars {
			if v.fixed {
				continue
			}
			actVars[nv] = v
			nv++
			if b := v.effectiveBound(); !math.IsInf(b, 1) {
				if br := b / v.Weight; br < r {
					r = br
				}
			}
		}
		actVars = actVars[:nv]

		if math.IsInf(r, 1) {
			// No shared constraint and no bound limits the remaining
			// variables; they are effectively unbounded. Flag loudly
			// rather than looping forever.
			panic("lmm: unbounded variables with no active constraint")
		}

		progressed := false
		// Fix variables whose bound is reached at rate r.
		for _, v := range actVars {
			if b := v.effectiveBound(); !math.IsInf(b, 1) && b <= r*v.Weight*(1+fixTol) {
				v.Value = b
				v.fixed = true
				unfixed--
				progressed = true
				charge(v)
			}
		}
		// Fix variables on saturated constraints. Weights are recomputed
		// live because fixes earlier in this round (at bounds, or on other
		// constraints) change both remaining capacity and unfixed weight;
		// the progressive-filling invariant guarantees live shares stay
		// >= r, with equality exactly on saturated constraints.
		for _, c := range actCons {
			live := 0.0
			for _, v := range c.liveVars {
				if !v.fixed {
					live += v.Weight
				}
			}
			if live == 0 {
				continue
			}
			share := c.remaining / live
			if share <= r*(1+fixTol) {
				for _, v := range c.liveVars {
					if v.fixed {
						continue
					}
					v.Value = r * v.Weight
					v.fixed = true
					unfixed--
					progressed = true
					charge(v)
				}
			}
		}
		if !progressed {
			panic("lmm: solver failed to make progress")
		}
	}
	s.actVars = actVars[:0]
	s.actCons = actCons[:0]
}
