package lmm

import (
	"math"
	"math/rand"
	"testing"
)

// churnRecord remembers how a live variable was created so the system can be
// rebuilt from scratch for equivalence checking.
type churnRecord struct {
	v      *Variable
	weight float64
	bound  float64
	route  []int // constraint indices, in attach order
}

// TestIncrementalMatchesFromScratch drives a randomized add/remove churn
// over a random constraint graph and asserts, after every incremental
// Solve, that
//
//  1. System.Check() invariants hold,
//  2. an in-place SolveFull reproduces the incremental allocations
//     bit-for-bit (the dirty set lost nothing), and
//  3. a from-scratch system rebuilt with only the surviving variables
//     solves to bit-identical allocations (long-lived registry state —
//     swap-removed slots, ordered constraint lists — is canonical).
func TestIncrementalMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		nCons := 3 + rng.Intn(10)
		type consSpec struct {
			capacity float64
			policy   SharingPolicy
		}
		specs := make([]consSpec, nCons)
		s := New()
		cons := make([]*Constraint, nCons)
		for i := range cons {
			specs[i] = consSpec{capacity: float64(rng.Intn(200)) / 2, policy: Shared}
			if rng.Intn(5) == 0 {
				specs[i].policy = FatPipe
			}
			cons[i] = s.NewConstraint("c", specs[i].capacity, specs[i].policy)
		}

		var live []churnRecord
		addVar := func() {
			weight := []float64{0, 0.5, 1, 2}[rng.Intn(4)]
			bound := math.Inf(1)
			if rng.Intn(3) == 0 {
				bound = float64(rng.Intn(120)) / 4
			}
			hops := 1 + rng.Intn(3)
			route := make([]int, 0, hops)
			seen := make(map[int]bool)
			for len(route) < hops {
				h := rng.Intn(nCons)
				if !seen[h] {
					seen[h] = true
					route = append(route, h)
				}
			}
			v := s.NewVariable("v", weight, bound)
			for _, h := range route {
				s.Attach(v, cons[h])
			}
			live = append(live, churnRecord{v: v, weight: weight, bound: bound, route: route})
		}

		for i := 0; i < 12; i++ {
			addVar()
		}
		steps := 60
		for step := 0; step < steps; step++ {
			if len(live) > 0 && (len(live) > 25 || rng.Intn(2) == 0) {
				i := rng.Intn(len(live))
				s.RemoveVariable(live[i].v)
				live = append(live[:i], live[i+1:]...)
			} else {
				addVar()
			}
			s.Solve()
			if err := s.Check(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			if step%7 != 0 {
				continue
			}
			// Bitwise reference 1: from-scratch rebuild of the survivors.
			ref := New()
			refCons := make([]*Constraint, nCons)
			for i, cs := range specs {
				refCons[i] = ref.NewConstraint("c", cs.capacity, cs.policy)
			}
			refVars := make([]*Variable, len(live))
			for i, rec := range live {
				refVars[i] = ref.NewVariable("v", rec.weight, rec.bound)
				for _, h := range rec.route {
					ref.Attach(refVars[i], refCons[h])
				}
			}
			ref.SolveFull()
			for i, rec := range live {
				if rec.v.Value != refVars[i].Value {
					t.Fatalf("trial %d step %d: incremental value %v != from-scratch %v (var %d)",
						trial, step, rec.v.Value, refVars[i].Value, i)
				}
			}
			// Bitwise reference 2: in-place full re-solve.
			got := make([]float64, len(live))
			for i, rec := range live {
				got[i] = rec.v.Value
			}
			s.SolveFull()
			for i, rec := range live {
				if rec.v.Value != got[i] {
					t.Fatalf("trial %d step %d: SolveFull value %v != incremental %v (var %d)",
						trial, step, rec.v.Value, got[i], i)
				}
			}
		}
	}
}
