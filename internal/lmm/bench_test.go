package lmm_test

// Solver benchmarks at the 1k-host scale PR 2's topology generators made
// constructible: a 1024-host three-level fat-tree (fattree:16x8x8:1x8x8)
// carrying a steady population of flows, churned one completion + one start
// at a time — exactly the event pattern surf.Network feeds the solver
// during a simulation. The "full" baseline re-solves everything after each
// event (the pre-incremental behaviour); "incremental" re-solves only the
// components the churned flow touched. BENCH_lmm.json records the measured
// before/after.
//
// Two traffic shapes bracket the payoff:
//
//   - neighbor: every host streams to its ring successor (the steady state
//     of the ring collectives), which D-mod-k keeps mostly under the leaf
//     switches — components are tiny and selective re-solve is ~free;
//   - random: uniformly random host pairs; the shared spine links couple
//     most flows into a few large components, the adversarial case where
//     the dirty set buys the least.

import (
	"math"
	"math/rand"
	"os"
	"testing"

	"smpigo/internal/lmm"
	"smpigo/internal/platform"
	"smpigo/internal/topology"
)

type fatTreeBench struct {
	plat  *platform.Platform
	hosts []*platform.Host
	sys   *lmm.System
	cons  map[*platform.Link]*lmm.Constraint
	flows []*lmm.Variable
	pairs [][2]int
	rng   *rand.Rand
}

func newFatTreeBench(b *testing.B, shape string) *fatTreeBench {
	b.Helper()
	spec, err := topology.ParseSpec(shape)
	if err != nil {
		b.Fatal(err)
	}
	plat, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	return &fatTreeBench{
		plat:  plat,
		hosts: plat.Hosts(),
		sys:   lmm.New(),
		cons:  make(map[*platform.Link]*lmm.Constraint),
		rng:   rand.New(rand.NewSource(7)),
	}
}

// newFlow builds the LMM variable for one src→dst flow without registering
// it in the churn bookkeeping (the pods benchmark keeps its own).
func (ft *fatTreeBench) newFlow(src, dst int) *lmm.Variable {
	route := ft.plat.Route(ft.hosts[src], ft.hosts[dst])
	v := ft.sys.NewVariable("flow", 1, math.Inf(1))
	for _, l := range route.Links {
		c, ok := ft.cons[l]
		if !ok {
			c = ft.sys.NewConstraint(l.Name(), l.Bandwidth, l.Policy)
			ft.cons[l] = c
		}
		ft.sys.Attach(v, c)
	}
	return v
}

func (ft *fatTreeBench) addFlow(src, dst int) {
	ft.flows = append(ft.flows, ft.newFlow(src, dst))
	ft.pairs = append(ft.pairs, [2]int{src, dst})
}

func (ft *fatTreeBench) randomPair() (int, int) {
	src := ft.rng.Intn(len(ft.hosts))
	dst := ft.rng.Intn(len(ft.hosts) - 1)
	if dst >= src {
		dst++
	}
	return src, dst
}

// churn replays one simulation event: a randomly chosen flow completes and
// a successor starts (same pair for neighbor traffic — the next ring step —
// or a fresh random pair).
func (ft *fatTreeBench) churn(random bool) {
	i := ft.rng.Intn(len(ft.flows))
	ft.sys.RemoveVariable(ft.flows[i])
	src, dst := ft.pairs[i][0], ft.pairs[i][1]
	last := len(ft.flows) - 1
	ft.flows[i], ft.pairs[i] = ft.flows[last], ft.pairs[last]
	ft.flows, ft.pairs = ft.flows[:last], ft.pairs[:last]
	if random {
		src, dst = ft.randomPair()
	}
	ft.addFlow(src, dst)
}

// BenchmarkLMMIncremental measures the per-event solver cost on the 1k-host
// fat-tree: one flow completion plus one flow start, then a re-solve. The
// incremental/full ratio is the payoff of dirty-set selective solving.
func BenchmarkLMMIncremental(b *testing.B) {
	const shape = "fattree:16x8x8:1x8x8" // 1024 hosts
	patterns := []struct {
		name   string
		random bool
		flows  int
	}{
		{"neighbor1024", false, 1024},
		{"random512", true, 512},
	}
	for _, pat := range patterns {
		setup := func(b *testing.B) *fatTreeBench {
			ft := newFatTreeBench(b, shape)
			for i := 0; i < pat.flows; i++ {
				if pat.random {
					src, dst := ft.randomPair()
					ft.addFlow(src, dst)
				} else {
					ft.addFlow(i, (i+1)%len(ft.hosts))
				}
			}
			ft.sys.SolveFull()
			return ft
		}
		b.Run(pat.name+"/incremental", func(b *testing.B) {
			ft := setup(b)
			// benchgate -counters mode: attach solver counters and report
			// per-churn work; the default run stays uninstrumented (the
			// zero-overhead contract the gate baselines pin).
			var stats lmm.Stats
			if os.Getenv("SMPIGO_BENCH_COUNTERS") != "" {
				ft.sys.Stats = &stats
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ft.churn(pat.random)
				ft.sys.Solve()
			}
			if ft.sys.Stats != nil && b.N > 0 {
				per := 1 / float64(b.N)
				b.ReportMetric(float64(stats.Components)*per, "components/op")
				b.ReportMetric(float64(stats.DirtyConstraints)*per, "dirtycons/op")
				b.ReportMetric(float64(stats.VarsResolved)*per, "resolved/op")
			}
		})
		b.Run(pat.name+"/full", func(b *testing.B) {
			ft := setup(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ft.churn(pat.random)
				ft.sys.SolveFull()
			}
		})
		if !pat.random {
			continue
		}
		// random512 is the giant-component case the tentpole attacks from
		// both sides; the two extra sub-benches measure each side alone.
		//
		// partial: bounded-staleness intra-component re-solve. eps=1e-3
		// keeps the re-fair region around the churned flow instead of
		// cascading across the whole spine-coupled component (1e-9 would
		// expand to everything and fall back). This is the mode that buys
		// the headline speedup on a giant component.
		b.Run(pat.name+"/partial", func(b *testing.B) {
			ft := setup(b)
			ft.sys.SetRateTolerance(3e-2)
			var stats lmm.Stats
			if os.Getenv("SMPIGO_BENCH_COUNTERS") != "" {
				ft.sys.Stats = &stats
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ft.churn(pat.random)
				ft.sys.Solve()
			}
			if ft.sys.Stats != nil && b.N > 0 {
				per := 1 / float64(b.N)
				b.ReportMetric(float64(stats.PartialRefills)*per, "partialrefills/op")
				b.ReportMetric(float64(stats.PartialVarsSkipped)*per, "skipped/op")
				b.ReportMetric(float64(stats.PartialFallbacks)*per, "fallbacks/op")
			}
		})
		// parallel: exact solve with the worker pool armed (0 = GOMAXPROCS,
		// which CI pins to 2). random512's dirty set is usually one giant
		// component, so the pool rarely engages — the sub-bench gates the
		// no-regression half of the contract: arming workers must cost ~0
		// when there is nothing to farm out.
		b.Run(pat.name+"/parallel", func(b *testing.B) {
			ft := setup(b)
			ft.sys.SetSolverWorkers(0)
			var stats lmm.Stats
			if os.Getenv("SMPIGO_BENCH_COUNTERS") != "" {
				ft.sys.Stats = &stats
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ft.churn(pat.random)
				ft.sys.Solve()
			}
			if ft.sys.Stats != nil && b.N > 0 {
				per := 1 / float64(b.N)
				b.ReportMetric(float64(stats.ParallelSolves)*per, "parallelsolves/op")
				b.ReportMetric(float64(stats.ParallelComponents)*per, "parallelcomps/op")
			}
		})
	}

	// pods8x64: the multi-component counterpart to random512 — 8 independent
	// 64-flow pods, each pod's pairs drawn from one leaf switch's 16 hosts so
	// D-mod-k keeps every route under that leaf and the pods never couple.
	// Churning one flow in every pod per event dirties 8 disjoint 64-var
	// components at once: the exact shape the cross-component worker pool is
	// for, and the parallel gate entry that must beat (or match, on few
	// cores) the serial incremental one.
	const (
		pods        = 8
		flowsPerPod = 64
		hostsPerPod = 16
	)
	podsSetup := func(b *testing.B, workers int) (*fatTreeBench, [][]*lmm.Variable) {
		ft := newFatTreeBench(b, shape)
		if workers != 1 {
			ft.sys.SetSolverWorkers(workers)
		}
		podVars := make([][]*lmm.Variable, pods)
		for p := range podVars {
			podVars[p] = make([]*lmm.Variable, flowsPerPod)
			for i := range podVars[p] {
				src, dst := ft.podPair(p, hostsPerPod)
				podVars[p][i] = ft.newFlow(src, dst)
			}
		}
		ft.sys.SolveFull()
		return ft, podVars
	}
	podsChurn := func(ft *fatTreeBench, podVars [][]*lmm.Variable) {
		for p := range podVars {
			i := ft.rng.Intn(flowsPerPod)
			ft.sys.RemoveVariable(podVars[p][i])
			src, dst := ft.podPair(p, hostsPerPod)
			podVars[p][i] = ft.newFlow(src, dst)
		}
	}
	for _, mode := range []struct {
		name    string
		workers int
	}{
		{"incremental", 1},
		{"parallel", 0},
	} {
		b.Run("pods8x64/"+mode.name, func(b *testing.B) {
			ft, podVars := podsSetup(b, mode.workers)
			var stats lmm.Stats
			if os.Getenv("SMPIGO_BENCH_COUNTERS") != "" {
				ft.sys.Stats = &stats
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				podsChurn(ft, podVars)
				ft.sys.Solve()
			}
			if ft.sys.Stats != nil && b.N > 0 {
				per := 1 / float64(b.N)
				b.ReportMetric(float64(stats.Components)*per, "components/op")
				b.ReportMetric(float64(stats.ParallelComponents)*per, "parallelcomps/op")
			}
		})
	}
}

// podPair draws a random ordered pair of distinct hosts from pod p's leaf
// (hosts [p*hostsPerPod, (p+1)*hostsPerPod)).
func (ft *fatTreeBench) podPair(p, hostsPerPod int) (int, int) {
	base := p * hostsPerPod
	src := base + ft.rng.Intn(hostsPerPod)
	dst := base + ft.rng.Intn(hostsPerPod-1)
	if dst >= src {
		dst++
	}
	return src, dst
}
