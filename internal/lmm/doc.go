// Package lmm implements the Linear Max-Min solver used by the analytical
// network model, following the bandwidth-sharing approach of SimGrid's SURF
// kernel (Casanova et al.; validated against packet-level simulation by
// Velho & Legrand).
//
// The solver computes, for a set of variables (network flows) traversing a
// set of constraints (links with finite capacity), the bounded max-min fair
// allocation: capacities are filled progressively, every unfixed variable
// grows at a rate proportional to its weight until either one of its
// constraints saturates or the variable hits its own rate bound.
//
// Constraints can be Shared (the usual case: the capacity is divided among
// the flows crossing the link) or FatPipe (each flow is individually capped
// at the capacity but flows do not contend, which models an idealized
// backbone or the "no contention" ablation of the paper's Figures 7 and 11).
//
// # Selective re-solve
//
// Solving is incremental, following SimGrid's "lazy/selective update"
// design. Mutations (NewVariable, Attach, RemoveVariable, MarkDirty) record
// the touched constraints and variables in a dirty set; Solve partitions the
// dirty subgraph into connected components — variables coupled through
// shared constraints — and re-runs progressive filling only inside those
// components. Allocations of untouched components are left exactly as the
// previous Solve computed them.
//
// Because every component is always solved in isolation and its members are
// always processed in creation order, the incremental path is bit-identical
// to SolveFull (which just marks everything dirty): a sequence of
// Solve calls after mutations yields the same Values as rebuilding the
// system from scratch and solving once.
//
// Solve exposes the re-solved variables through Resolved(). That list is
// more than a convenience: it is the contract the surf models' sublinear
// event path is built on. A flow or task's rate can only change when its
// component is re-solved, so walking Resolved() — and nothing else — is
// sufficient to drain lazily-accounted progress and re-stamp completion
// dates in the models' actionheap. A variable whose component was not
// touched keeps its Value, its rate, and therefore its stamped date,
// bit-for-bit.
//
// # Place in the stack
//
// lmm is the numeric bottom of the simulator and depends on nothing else
// in the repository. The surf models own a System each: every in-flight
// transfer becomes a variable attached to its route's link constraints,
// every compute burst a variable on its host's constraint, and the
// topology builders (package topology) decide which link constraints a
// route crosses — which is how interconnect shape and rank placement end
// up expressed as nothing more than sharing structure in this solver.
package lmm
