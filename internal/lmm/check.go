package lmm

import (
	"fmt"
	"math"
)

// Tolerances for Check: relative slack on capacities and bounds, plus a
// small absolute floor so zero-capacity constraints and zero bounds are
// comparable.
const (
	checkRelTol = 1e-6
	checkAbsTol = 1e-9
)

// Check validates the max-min invariants of the last solve and returns the
// first violation found, or nil:
//
//   - no Shared constraint carries more than its capacity (within epsilon);
//   - no variable exceeds a FatPipe cap or its own bound;
//   - no variable's allocation is negative, and zero-weight variables get 0;
//   - every positive-weight variable is pinned: it sits at its effective
//     bound or crosses at least one saturated Shared constraint (the Pareto
//     efficiency of bounded max-min fairness — nobody can grow without
//     shrinking someone else).
//
// Check recomputes constraint usage from the attached variables' Values, so
// it is meaningful after incremental solves too (where the solver's scratch
// state only covers the components it re-solved). It is intended for tests,
// fuzzing, and post-mortem debugging, not the per-event hot path.
func (s *System) Check() error {
	// Constraints are never removed, so ids densely index this table.
	usage := make([]float64, len(s.constraints))
	for _, c := range s.constraints {
		u := 0.0
		for _, v := range c.vars {
			u += v.Value
		}
		usage[c.id] = u
		if c.Policy == Shared && u > c.Capacity*(1+checkRelTol)+checkAbsTol {
			return fmt.Errorf("lmm: constraint %q over capacity: usage %g > capacity %g", c.Name, u, c.Capacity)
		}
	}
	for _, v := range s.variables {
		if v.Value < -checkAbsTol {
			return fmt.Errorf("lmm: variable %q has negative allocation %g", v.Name, v.Value)
		}
		if v.Weight == 0 {
			if v.Value != 0 {
				return fmt.Errorf("lmm: zero-weight variable %q has allocation %g", v.Name, v.Value)
			}
			continue
		}
		b := v.effectiveBound()
		if !math.IsInf(b, 1) && v.Value > b*(1+checkRelTol)+checkAbsTol {
			return fmt.Errorf("lmm: variable %q exceeds its bound: %g > %g", v.Name, v.Value, b)
		}
		atBound := !math.IsInf(b, 1) && v.Value >= b*(1-checkRelTol)-checkAbsTol
		saturated := false
		for _, c := range v.cons {
			if c.Policy == Shared && usage[c.id] >= c.Capacity*(1-checkRelTol)-checkAbsTol {
				saturated = true
				break
			}
		}
		if !atBound && !saturated {
			return fmt.Errorf("lmm: variable %q is not pinned: allocation %g below bound %g with no saturated constraint",
				v.Name, v.Value, b)
		}
	}
	return nil
}
