package lmm

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-6*math.Max(1, math.Abs(b)) }

func TestSingleFlowGetsFullCapacity(t *testing.T) {
	s := New()
	l := s.NewConstraint("link", 100, Shared)
	v := s.NewVariable("flow", 1, math.Inf(1))
	s.Attach(v, l)
	s.Solve()
	if !approx(v.Value, 100) {
		t.Errorf("single flow value = %v, want 100", v.Value)
	}
}

func TestTwoFlowsShareEqually(t *testing.T) {
	s := New()
	l := s.NewConstraint("link", 100, Shared)
	a := s.NewVariable("a", 1, math.Inf(1))
	b := s.NewVariable("b", 1, math.Inf(1))
	s.Attach(a, l)
	s.Attach(b, l)
	s.Solve()
	if !approx(a.Value, 50) || !approx(b.Value, 50) {
		t.Errorf("shares = %v, %v, want 50, 50", a.Value, b.Value)
	}
}

func TestWeightedSharing(t *testing.T) {
	s := New()
	l := s.NewConstraint("link", 90, Shared)
	a := s.NewVariable("a", 1, math.Inf(1))
	b := s.NewVariable("b", 2, math.Inf(1))
	s.Attach(a, l)
	s.Attach(b, l)
	s.Solve()
	if !approx(a.Value, 30) || !approx(b.Value, 60) {
		t.Errorf("shares = %v, %v, want 30, 60", a.Value, b.Value)
	}
}

func TestBoundedFlowReleasesCapacity(t *testing.T) {
	s := New()
	l := s.NewConstraint("link", 100, Shared)
	a := s.NewVariable("a", 1, 10) // capped well below fair share
	b := s.NewVariable("b", 1, math.Inf(1))
	s.Attach(a, l)
	s.Attach(b, l)
	s.Solve()
	if !approx(a.Value, 10) {
		t.Errorf("bounded flow = %v, want 10", a.Value)
	}
	if !approx(b.Value, 90) {
		t.Errorf("unbounded flow should absorb slack: %v, want 90", b.Value)
	}
}

// The staleness regression: after a bottleneck fixes two flows, a second
// constraint crossed by one of them must hand its true residual capacity to
// its remaining flow, not the bottleneck rate.
func TestResidualCapacityAfterBottleneck(t *testing.T) {
	s := New()
	c1 := s.NewConstraint("c1", 2, Shared)
	c2 := s.NewConstraint("c2", 2.2, Shared)
	a := s.NewVariable("a", 1, math.Inf(1))
	b := s.NewVariable("b", 1, math.Inf(1))
	c := s.NewVariable("c", 1, math.Inf(1))
	s.Attach(a, c1)
	s.Attach(b, c1)
	s.Attach(b, c2)
	s.Attach(c, c2)
	s.Solve()
	if !approx(a.Value, 1) || !approx(b.Value, 1) {
		t.Errorf("bottleneck shares = %v, %v, want 1, 1", a.Value, b.Value)
	}
	if !approx(c.Value, 1.2) {
		t.Errorf("residual share = %v, want 1.2", c.Value)
	}
}

func TestMultiHopFlowLimitedByTightestLink(t *testing.T) {
	s := New()
	fast := s.NewConstraint("fast", 1000, Shared)
	slow := s.NewConstraint("slow", 10, Shared)
	v := s.NewVariable("v", 1, math.Inf(1))
	s.Attach(v, fast)
	s.Attach(v, slow)
	s.Solve()
	if !approx(v.Value, 10) {
		t.Errorf("multi-hop flow = %v, want 10", v.Value)
	}
}

func TestFatPipeNoContention(t *testing.T) {
	s := New()
	bb := s.NewConstraint("backbone", 100, FatPipe)
	a := s.NewVariable("a", 1, math.Inf(1))
	b := s.NewVariable("b", 1, math.Inf(1))
	s.Attach(a, bb)
	s.Attach(b, bb)
	s.Solve()
	if !approx(a.Value, 100) || !approx(b.Value, 100) {
		t.Errorf("fatpipe shares = %v, %v, want 100 each", a.Value, b.Value)
	}
}

func TestFatPipeCombinedWithSharedLink(t *testing.T) {
	s := New()
	edge := s.NewConstraint("edge", 60, Shared)
	bb := s.NewConstraint("backbone", 40, FatPipe)
	a := s.NewVariable("a", 1, math.Inf(1))
	b := s.NewVariable("b", 1, math.Inf(1))
	s.Attach(a, edge)
	s.Attach(a, bb)
	s.Attach(b, edge)
	s.Solve()
	// a is capped at 40 by the fatpipe; b takes the shared link residual.
	if !approx(a.Value, 30) && !approx(a.Value, 40) {
		t.Errorf("a = %v", a.Value)
	}
	s.Solve()
	total := a.Value + b.Value
	if total > 60+eps {
		t.Errorf("shared link oversubscribed: %v > 60", total)
	}
	// Fair share is 30/30 (both below a's 40 cap).
	if !approx(a.Value, 30) || !approx(b.Value, 30) {
		t.Errorf("shares = %v, %v, want 30, 30", a.Value, b.Value)
	}
}

func TestZeroWeightVariableGetsNothing(t *testing.T) {
	s := New()
	l := s.NewConstraint("l", 100, Shared)
	a := s.NewVariable("a", 0, math.Inf(1))
	b := s.NewVariable("b", 1, math.Inf(1))
	s.Attach(a, l)
	s.Attach(b, l)
	s.Solve()
	if a.Value != 0 {
		t.Errorf("zero-weight var got %v", a.Value)
	}
	if !approx(b.Value, 100) {
		t.Errorf("b = %v, want 100", b.Value)
	}
}

func TestRemoveVariableRedistributes(t *testing.T) {
	s := New()
	l := s.NewConstraint("l", 100, Shared)
	a := s.NewVariable("a", 1, math.Inf(1))
	b := s.NewVariable("b", 1, math.Inf(1))
	s.Attach(a, l)
	s.Attach(b, l)
	s.Solve()
	if !approx(a.Value, 50) {
		t.Fatalf("pre-removal share = %v", a.Value)
	}
	s.RemoveVariable(a)
	s.Solve()
	if !approx(b.Value, 100) {
		t.Errorf("after removal b = %v, want 100", b.Value)
	}
	if len(s.Variables()) != 1 {
		t.Errorf("variables left = %d, want 1", len(s.Variables()))
	}
}

func TestAttachIsIdempotent(t *testing.T) {
	s := New()
	l := s.NewConstraint("l", 100, Shared)
	a := s.NewVariable("a", 1, math.Inf(1))
	s.Attach(a, l)
	s.Attach(a, l)
	b := s.NewVariable("b", 1, math.Inf(1))
	s.Attach(b, l)
	s.Solve()
	if !approx(a.Value, 50) || !approx(b.Value, 50) {
		t.Errorf("double attach skewed shares: %v, %v", a.Value, b.Value)
	}
}

func TestUnboundedNoConstraintPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unbounded unconstrained variable")
		}
	}()
	s := New()
	s.NewVariable("v", 1, math.Inf(1))
	s.Solve()
}

func TestBoundOnlyVariable(t *testing.T) {
	s := New()
	v := s.NewVariable("v", 1, 42)
	s.Solve()
	if !approx(v.Value, 42) {
		t.Errorf("bound-only variable = %v, want 42", v.Value)
	}
}

func TestInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative capacity")
		}
	}()
	New().NewConstraint("bad", -1, Shared)
}

func TestInvalidWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative weight")
		}
	}()
	New().NewVariable("bad", -1, 1)
}

// Regression: NewVariable used to validate the weight but not the bound, so
// a NaN or negative bound silently corrupted the solve (the effectiveBound
// comparisons misbehave on NaN).
func TestInvalidBoundPanics(t *testing.T) {
	for _, bound := range []float64{-1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for bound %v", bound)
				}
			}()
			New().NewVariable("bad", 1, bound)
		}()
	}
}

func TestCheckPassesAfterSolve(t *testing.T) {
	s := New()
	l1 := s.NewConstraint("l1", 100, Shared)
	l2 := s.NewConstraint("l2", 30, Shared)
	bb := s.NewConstraint("bb", 80, FatPipe)
	a := s.NewVariable("a", 1, math.Inf(1))
	b := s.NewVariable("b", 2, 25)
	c := s.NewVariable("c", 1, math.Inf(1))
	s.Attach(a, l1)
	s.Attach(a, bb)
	s.Attach(b, l1)
	s.Attach(b, l2)
	s.Attach(c, l2)
	s.Solve()
	if err := s.Check(); err != nil {
		t.Fatalf("Check after solve: %v", err)
	}
	s.RemoveVariable(b)
	s.Solve()
	if err := s.Check(); err != nil {
		t.Fatalf("Check after removal + incremental solve: %v", err)
	}
}

// Regression for the silent clamp: the solver used to floor negative
// remaining capacity to zero no matter how negative it went, masking
// over-subscription. Check now surfaces a constraint carrying more than its
// capacity (here forged by corrupting an allocation after the solve, the
// only way to over-commit a correct solver).
func TestCheckDetectsOverCapacity(t *testing.T) {
	s := New()
	l := s.NewConstraint("l", 100, Shared)
	a := s.NewVariable("a", 1, math.Inf(1))
	b := s.NewVariable("b", 1, math.Inf(1))
	s.Attach(a, l)
	s.Attach(b, l)
	s.Solve()
	a.Value = 80 // 80 + 50 > 100
	if err := s.Check(); err == nil {
		t.Error("Check missed an oversubscribed constraint")
	}
}

func TestCheckDetectsUnpinnedVariable(t *testing.T) {
	s := New()
	l := s.NewConstraint("l", 100, Shared)
	a := s.NewVariable("a", 1, math.Inf(1))
	s.Attach(a, l)
	s.Solve()
	a.Value = 10 // below capacity, not at any bound: max-min would grow it
	if err := s.Check(); err == nil {
		t.Error("Check missed an unpinned variable")
	}
}

// Incremental solving must leave untouched components bit-identical: flows
// on disjoint links keep the exact float64 allocation of their last solve
// when another component churns.
func TestIncrementalLeavesCleanComponentsUntouched(t *testing.T) {
	s := New()
	l1 := s.NewConstraint("l1", 90, Shared)
	l2 := s.NewConstraint("l2", 70, Shared)
	a := s.NewVariable("a", 1, math.Inf(1))
	b := s.NewVariable("b", 2, math.Inf(1))
	s.Attach(a, l1)
	s.Attach(b, l1)
	c := s.NewVariable("c", 1, math.Inf(1))
	s.Attach(c, l2)
	s.Solve()
	aBefore, bBefore := a.Value, b.Value
	// Churn only l2's component.
	d := s.NewVariable("d", 1, math.Inf(1))
	s.Attach(d, l2)
	s.Solve()
	if a.Value != aBefore || b.Value != bBefore {
		t.Errorf("clean component drifted: a %v->%v, b %v->%v", aBefore, a.Value, bBefore, b.Value)
	}
	if !approx(c.Value, 35) || !approx(d.Value, 35) {
		t.Errorf("dirty component shares = %v, %v, want 35, 35", c.Value, d.Value)
	}
}

// buildRandomSystem constructs a pseudo-random feasible system from raw
// fuzz inputs, returning the system plus the lists needed for checks.
func buildRandomSystem(caps []uint8, routes [][]uint8, bounds []uint8) (*System, []*Constraint, []*Variable) {
	s := New()
	var cons []*Constraint
	for i, c := range caps {
		cons = append(cons, s.NewConstraint("c", float64(c%100)+1, SharingPolicy(i%2)*0)) // all Shared
	}
	if len(cons) == 0 {
		cons = append(cons, s.NewConstraint("c0", 50, Shared))
	}
	var vars []*Variable
	for i, route := range routes {
		bound := math.Inf(1)
		if i < len(bounds) && bounds[i]%3 == 0 {
			bound = float64(bounds[i])/4 + 0.5
		}
		v := s.NewVariable("v", 1, bound)
		attached := false
		for _, hop := range route {
			s.Attach(v, cons[int(hop)%len(cons)])
			attached = true
		}
		if !attached {
			s.Attach(v, cons[0])
		}
		vars = append(vars, v)
	}
	return s, cons, vars
}

// Property 1: no constraint is oversubscribed; Property 2: every variable is
// "blocked" — it either sits at its bound or crosses at least one saturated
// constraint (Pareto efficiency of max-min fairness).
func TestSolveProperties(t *testing.T) {
	f := func(caps []uint8, routes [][]uint8, bounds []uint8) bool {
		if len(routes) > 40 {
			routes = routes[:40]
		}
		if len(caps) > 10 {
			caps = caps[:10]
		}
		s, cons, vars := buildRandomSystem(caps, routes, bounds)
		s.Solve()
		for _, c := range cons {
			sum := 0.0
			for _, v := range c.vars {
				sum += v.Value
			}
			if sum > c.Capacity*(1+1e-6) {
				return false
			}
		}
		for _, v := range vars {
			if v.Value < 0 {
				return false
			}
			atBound := !math.IsInf(v.Bound, 1) && v.Value >= v.Bound*(1-1e-6)
			saturated := false
			for _, c := range v.cons {
				sum := 0.0
				for _, w := range c.vars {
					sum += w.Value
				}
				if sum >= c.Capacity*(1-1e-6) {
					saturated = true
				}
			}
			if !atBound && !saturated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSolve100Flows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := New()
		links := make([]*Constraint, 20)
		for j := range links {
			links[j] = s.NewConstraint("l", 125e6, Shared)
		}
		for f := 0; f < 100; f++ {
			v := s.NewVariable("f", 1, math.Inf(1))
			s.Attach(v, links[f%20])
			s.Attach(v, links[(f+7)%20])
		}
		b.StartTimer()
		s.Solve()
	}
}
