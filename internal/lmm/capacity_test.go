package lmm

import (
	"math"
	"math/rand"
	"testing"
)

// TestSetCapacityMatchesFromScratch drives the add/remove churn of
// TestIncrementalMatchesFromScratch with capacity mutations interleaved and
// pins the refactor's core claim: SetCapacity-then-solve is bit-identical to
// rebuilding the whole system from scratch with the new capacities. The
// dirty-set integration may lose no component, and a capacity change may
// perturb nothing outside its component.
func TestSetCapacityMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 8; trial++ {
		nCons := 3 + rng.Intn(10)
		type consSpec struct {
			capacity float64
			policy   SharingPolicy
		}
		specs := make([]consSpec, nCons)
		s := New()
		cons := make([]*Constraint, nCons)
		for i := range cons {
			specs[i] = consSpec{capacity: float64(rng.Intn(200)) / 2, policy: Shared}
			if rng.Intn(5) == 0 {
				specs[i].policy = FatPipe
			}
			cons[i] = s.NewConstraint("c", specs[i].capacity, specs[i].policy)
		}

		var live []churnRecord
		addVar := func() {
			weight := []float64{0, 0.5, 1, 2}[rng.Intn(4)]
			bound := math.Inf(1)
			if rng.Intn(3) == 0 {
				bound = float64(rng.Intn(120)) / 4
			}
			hops := 1 + rng.Intn(3)
			route := make([]int, 0, hops)
			seen := make(map[int]bool)
			for len(route) < hops {
				h := rng.Intn(nCons)
				if !seen[h] {
					seen[h] = true
					route = append(route, h)
				}
			}
			v := s.NewVariable("v", weight, bound)
			for _, h := range route {
				s.Attach(v, cons[h])
			}
			live = append(live, churnRecord{v: v, weight: weight, bound: bound, route: route})
		}

		for i := 0; i < 12; i++ {
			addVar()
		}
		for step := 0; step < 60; step++ {
			switch {
			case rng.Intn(2) == 0: // mutate a random constraint's capacity
				i := rng.Intn(nCons)
				specs[i].capacity = float64(rng.Intn(200)) / 2
				s.SetCapacity(cons[i], specs[i].capacity)
			case len(live) > 0 && (len(live) > 25 || rng.Intn(2) == 0):
				i := rng.Intn(len(live))
				s.RemoveVariable(live[i].v)
				live = append(live[:i], live[i+1:]...)
			default:
				addVar()
			}
			s.Solve()
			if err := s.Check(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			if step%5 != 0 {
				continue
			}
			// From-scratch rebuild with the CURRENT capacities.
			ref := New()
			refCons := make([]*Constraint, nCons)
			for i, cs := range specs {
				refCons[i] = ref.NewConstraint("c", cs.capacity, cs.policy)
			}
			refVars := make([]*Variable, len(live))
			for i, rec := range live {
				refVars[i] = ref.NewVariable("v", rec.weight, rec.bound)
				for _, h := range rec.route {
					ref.Attach(refVars[i], refCons[h])
				}
			}
			ref.SolveFull()
			for i, rec := range live {
				if rec.v.Value != refVars[i].Value {
					t.Fatalf("trial %d step %d: incremental value %v != from-scratch %v (var %d)",
						trial, step, rec.v.Value, refVars[i].Value, i)
				}
			}
		}
	}
}

// TestSetCapacityDirtySet pins the dirty-set contract: an unchanged capacity
// marks nothing, a changed one marks exactly that constraint.
func TestSetCapacityDirtySet(t *testing.T) {
	s := New()
	a := s.NewConstraint("a", 10, Shared)
	b := s.NewConstraint("b", 20, Shared)
	v := s.NewVariable("v", 1, math.Inf(1))
	s.Attach(v, a)
	s.Solve()
	if len(s.dirtyCons) != 0 {
		t.Fatalf("dirty set not drained by Solve: %d entries", len(s.dirtyCons))
	}
	s.SetCapacity(a, 10) // no-op
	if len(s.dirtyCons) != 0 {
		t.Errorf("unchanged capacity dirtied %d constraint(s), want 0", len(s.dirtyCons))
	}
	s.SetCapacity(a, 5)
	if len(s.dirtyCons) != 1 || s.dirtyCons[0] != a {
		t.Errorf("changed capacity dirtied %v, want exactly [a]", s.dirtyCons)
	}
	s.SetCapacity(a, 4) // already dirty: no duplicate
	if len(s.dirtyCons) != 1 {
		t.Errorf("re-dirtying duplicated the entry: %d", len(s.dirtyCons))
	}
	s.Solve()
	if v.Value != 4 {
		t.Errorf("after SetCapacity(a, 4): v.Value = %v, want 4", v.Value)
	}
	if b.Capacity != 20 {
		t.Errorf("unrelated constraint capacity changed: %v", b.Capacity)
	}
}

// TestSetCapacityValidation mirrors NewConstraint: zero is a legal capacity,
// negative and NaN panic.
func TestSetCapacityValidation(t *testing.T) {
	s := New()
	c := s.NewConstraint("c", 1, Shared)
	s.SetCapacity(c, 0) // zero is legal (a failed resource)
	if c.Capacity != 0 {
		t.Errorf("capacity = %v, want 0", c.Capacity)
	}
	for _, bad := range []float64{-1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetCapacity(%v) did not panic", bad)
				}
			}()
			s.SetCapacity(c, bad)
		}()
	}
}
