package lmm

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// parallelScript is a pre-generated churn schedule: the same ops are applied
// to one System per worker-count setting, so any cross-system divergence is
// the solver's fault, never the schedule's.
type parallelOp struct {
	pod    int
	remove int // index into the pod's live list
	weight float64
	bound  float64
	route  []int // constraint indices within the pod
}

// TestParallelSolveDeterministic drives identical churn through systems
// configured with workers ∈ {1, 2, 8, GOMAXPROCS} and asserts bit-identical
// allocations and Resolved() lengths after every solve. The "pods" topology
// — independent components churned together — makes the worker pool
// actually engage (the test verifies it via Stats.ParallelSolves); the same
// assertion then runs in bounded-staleness mode, whose region algorithm
// must be equally worker-independent. Runs under -race in CI, which turns
// any cross-component data race in the pool into a hard failure.
func TestParallelSolveDeterministic(t *testing.T) {
	const (
		pods       = 8
		consPerPod = 6
		varsPerPod = 16
		steps      = 50
	)
	workerSet := []int{1, 2, 8, runtime.GOMAXPROCS(0)}

	// Generate the schedule once.
	rng := rand.New(rand.NewSource(42))
	script := make([][]parallelOp, steps)
	for i := range script {
		ops := make([]parallelOp, pods)
		for p := range ops {
			hops := 1 + rng.Intn(3)
			route := rng.Perm(consPerPod)[:hops]
			bound := math.Inf(1)
			if rng.Intn(3) == 0 {
				bound = float64(1+rng.Intn(40)) / 4
			}
			ops[p] = parallelOp{
				pod:    p,
				remove: rng.Intn(varsPerPod),
				weight: []float64{0.5, 1, 1, 2}[rng.Intn(4)],
				bound:  bound,
				route:  route,
			}
		}
		script[i] = ops
	}

	for _, eps := range []float64{0, 1e-3} {
		type instance struct {
			sys   *System
			live  [][]*Variable // per pod
			cons  [][]*Constraint
			stats *Stats
		}
		build := func(workers int) *instance {
			s := New()
			s.SetSolverWorkers(workers)
			if eps > 0 {
				s.SetRateTolerance(eps)
			}
			inst := &instance{sys: s, stats: &Stats{}}
			s.Stats = inst.stats
			seed := rand.New(rand.NewSource(7))
			for p := 0; p < pods; p++ {
				cons := make([]*Constraint, consPerPod)
				for c := range cons {
					cons[c] = s.NewConstraint("c", float64(5+seed.Intn(50)), Shared)
				}
				vars := make([]*Variable, varsPerPod)
				for v := range vars {
					vars[v] = s.NewVariable("v", 1, math.Inf(1))
					hops := 1 + seed.Intn(3)
					for _, h := range seed.Perm(consPerPod)[:hops] {
						s.Attach(vars[v], cons[h])
					}
				}
				inst.cons = append(inst.cons, cons)
				inst.live = append(inst.live, vars)
			}
			s.Solve()
			return inst
		}

		insts := make([]*instance, len(workerSet))
		for i, w := range workerSet {
			insts[i] = build(w)
		}

		for step, ops := range script {
			for _, inst := range insts {
				for _, op := range ops {
					old := inst.live[op.pod][op.remove]
					inst.sys.RemoveVariable(old)
					v := inst.sys.NewVariable("v", op.weight, op.bound)
					for _, h := range op.route {
						inst.sys.Attach(v, inst.cons[op.pod][h])
					}
					inst.live[op.pod][op.remove] = v
				}
				inst.sys.Solve()
			}
			ref := insts[0]
			for i, inst := range insts[1:] {
				if got, want := len(inst.sys.Resolved()), len(ref.sys.Resolved()); got != want {
					t.Fatalf("eps %g step %d: workers=%d resolved %d vars, workers=%d resolved %d",
						eps, step, workerSet[i+1], got, workerSet[0], want)
				}
				for p := 0; p < pods; p++ {
					for j, v := range inst.live[p] {
						if v.Value != ref.live[p][j].Value {
							t.Fatalf("eps %g step %d: pod %d var %d: workers=%d value %v, workers=%d value %v",
								eps, step, p, j, workerSet[i+1], v.Value, workerSet[0], ref.live[p][j].Value)
						}
					}
				}
			}
		}

		// The multi-worker instances must actually have exercised the pool:
		// 8 dirty pods × 16 vars per step is past the parallelMinVars
		// threshold whenever the configured bound allows more than one
		// worker.
		for i, w := range workerSet {
			if w > 1 && insts[i].stats.ParallelSolves == 0 {
				t.Fatalf("eps %g: workers=%d never engaged the pool (threshold bug?)", eps, w)
			}
			if w == 1 && insts[i].stats.ParallelSolves != 0 {
				t.Fatalf("eps %g: workers=1 engaged the pool", eps)
			}
		}
	}
}

// TestSolverWorkersValidation pins the knob semantics: n <= 0 selects
// GOMAXPROCS, anything else is taken as-is, and the default is serial.
func TestSolverWorkersValidation(t *testing.T) {
	s := New()
	if got := s.SolverWorkers(); got != 1 {
		t.Fatalf("default workers = %d, want 1", got)
	}
	s.SetSolverWorkers(4)
	if got := s.SolverWorkers(); got != 4 {
		t.Fatalf("workers = %d, want 4", got)
	}
	s.SetSolverWorkers(0)
	if got := s.SolverWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("workers = %d, want GOMAXPROCS", got)
	}
}

// TestRateToleranceValidation pins the eps domain: [0, 1), NaN rejected.
func TestRateToleranceValidation(t *testing.T) {
	s := New()
	if got := s.RateTolerance(); got != 0 {
		t.Fatalf("default eps = %g, want 0", got)
	}
	s.SetRateTolerance(1e-3)
	if got := s.RateTolerance(); got != 1e-3 {
		t.Fatalf("eps = %g, want 1e-3", got)
	}
	for _, bad := range []float64{-1e-9, 1, 2, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SetRateTolerance(%v) did not panic", bad)
				}
			}()
			s.SetRateTolerance(bad)
		}()
	}
}
