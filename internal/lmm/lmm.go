// Package lmm implements the Linear Max-Min solver used by the analytical
// network model, following the bandwidth-sharing approach of SimGrid's SURF
// kernel (Casanova et al.; validated against packet-level simulation by
// Velho & Legrand).
//
// The solver computes, for a set of variables (network flows) traversing a
// set of constraints (links with finite capacity), the bounded max-min fair
// allocation: capacities are filled progressively, every unfixed variable
// grows at a rate proportional to its weight until either one of its
// constraints saturates or the variable hits its own rate bound.
//
// Constraints can be Shared (the usual case: the capacity is divided among
// the flows crossing the link) or FatPipe (each flow is individually capped
// at the capacity but flows do not contend, which models an idealized
// backbone or the "no contention" ablation of the paper's Figures 7 and 11).
package lmm

import (
	"fmt"
	"math"
)

// SharingPolicy selects how a constraint's capacity is distributed.
type SharingPolicy int

const (
	// Shared divides the capacity among all variables crossing the
	// constraint (max-min).
	Shared SharingPolicy = iota
	// FatPipe caps each variable at the capacity without any contention
	// between variables.
	FatPipe
)

// Constraint is a capacity-limited resource (a network link, a CPU).
type Constraint struct {
	Capacity float64
	Policy   SharingPolicy
	// Name is an optional label used in error messages and debug dumps.
	Name string

	vars []*Variable

	// scratch used by Solve
	remaining     float64
	unfixedWeight float64
	active        bool
}

// Variable is an entity receiving a share of the constrained capacities
// (a network flow, a compute task). After Solve, Value holds its allocation.
type Variable struct {
	// Weight scales the share this variable receives relative to its
	// competitors. Weight 0 disables the variable (it receives 0).
	Weight float64
	// Bound is an intrinsic rate bound (e.g. the per-size bandwidth bound
	// of the piece-wise linear model). Use math.Inf(1) for unbounded.
	Bound float64
	// Value is the allocation computed by the last Solve call.
	Value float64
	// Name is an optional label.
	Name string

	cons  []*Constraint
	fixed bool
}

// System owns a set of constraints and variables and computes allocations.
type System struct {
	constraints []*Constraint
	variables   []*Variable
}

// New returns an empty system.
func New() *System { return &System{} }

// NewConstraint adds a constraint with the given capacity and policy.
func (s *System) NewConstraint(name string, capacity float64, policy SharingPolicy) *Constraint {
	if capacity < 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("lmm: invalid capacity %v for constraint %q", capacity, name))
	}
	c := &Constraint{Capacity: capacity, Policy: policy, Name: name}
	s.constraints = append(s.constraints, c)
	return c
}

// NewVariable adds a variable with the given weight and rate bound.
// Use math.Inf(1) for an unbounded variable.
func (s *System) NewVariable(name string, weight, bound float64) *Variable {
	if weight < 0 || math.IsNaN(weight) {
		panic(fmt.Sprintf("lmm: invalid weight %v for variable %q", weight, name))
	}
	v := &Variable{Weight: weight, Bound: bound, Name: name}
	s.variables = append(s.variables, v)
	return v
}

// Attach routes variable v through constraint c. Attaching the same pair
// twice is allowed and has no additional effect.
func (s *System) Attach(v *Variable, c *Constraint) {
	for _, existing := range v.cons {
		if existing == c {
			return
		}
	}
	v.cons = append(v.cons, c)
	c.vars = append(c.vars, v)
}

// RemoveVariable detaches v from every constraint and removes it from the
// system. Typically called when a flow completes.
func (s *System) RemoveVariable(v *Variable) {
	for _, c := range v.cons {
		for i, w := range c.vars {
			if w == v {
				c.vars = append(c.vars[:i], c.vars[i+1:]...)
				break
			}
		}
	}
	v.cons = nil
	for i, w := range s.variables {
		if w == v {
			s.variables = append(s.variables[:i], s.variables[i+1:]...)
			break
		}
	}
}

// Variables returns the live variables (primarily for tests and debugging).
func (s *System) Variables() []*Variable { return s.variables }

// Solve computes the bounded max-min fair allocation, storing each
// variable's share in its Value field.
//
// Progressive filling: at each round the tightest shared constraint (or
// variable bound) determines a fair rate r; variables limited by it are
// fixed, their usage is subtracted, and the process repeats. FatPipe
// constraints only contribute per-variable caps.
func (s *System) Solve() {
	// Reset scratch state.
	for _, v := range s.variables {
		v.fixed = false
		v.Value = 0
		if v.Weight == 0 {
			v.fixed = true
		}
	}
	for _, c := range s.constraints {
		c.remaining = c.Capacity
		c.active = false
	}

	// Effective bound of a variable: its own bound plus the tightest
	// FatPipe cap it crosses.
	bound := func(v *Variable) float64 {
		b := v.Bound
		for _, c := range v.cons {
			if c.Policy == FatPipe && c.Capacity < b {
				b = c.Capacity
			}
		}
		return b
	}

	unfixed := 0
	for _, v := range s.variables {
		if !v.fixed {
			unfixed++
		}
	}

	for unfixed > 0 {
		// Recompute unfixed weight per shared constraint.
		for _, c := range s.constraints {
			c.unfixedWeight = 0
			c.active = false
			if c.Policy != Shared {
				continue
			}
			for _, v := range c.vars {
				if !v.fixed {
					c.unfixedWeight += v.Weight
				}
			}
			if c.unfixedWeight > 0 {
				c.active = true
			}
		}

		// Fair-share rate candidate from constraints.
		r := math.Inf(1)
		for _, c := range s.constraints {
			if c.active {
				if share := c.remaining / c.unfixedWeight; share < r {
					r = share
				}
			}
		}
		// Candidate from variable bounds (rate = bound/weight).
		for _, v := range s.variables {
			if v.fixed {
				continue
			}
			if b := bound(v); !math.IsInf(b, 1) {
				if br := b / v.Weight; br < r {
					r = br
				}
			}
		}

		if math.IsInf(r, 1) {
			// No shared constraint and no bound limits the remaining
			// variables; they are effectively unbounded. Flag loudly
			// rather than looping forever.
			panic("lmm: unbounded variables with no active constraint")
		}

		progressed := false
		// Fix variables whose bound is reached at rate r.
		for _, v := range s.variables {
			if v.fixed {
				continue
			}
			if b := bound(v); !math.IsInf(b, 1) && b <= r*v.Weight*(1+1e-12) {
				v.Value = b
				v.fixed = true
				unfixed--
				progressed = true
				for _, c := range v.cons {
					if c.Policy == Shared {
						c.remaining -= v.Value
						if c.remaining < 0 {
							c.remaining = 0
						}
					}
				}
			}
		}
		// Fix variables on saturated constraints. Weights are recomputed
		// live because fixes earlier in this round (at bounds, or on other
		// constraints) change both remaining capacity and unfixed weight;
		// the progressive-filling invariant guarantees live shares stay
		// >= r, with equality exactly on saturated constraints.
		for _, c := range s.constraints {
			if !c.active {
				continue
			}
			live := 0.0
			for _, v := range c.vars {
				if !v.fixed {
					live += v.Weight
				}
			}
			if live == 0 {
				continue
			}
			share := c.remaining / live
			if share <= r*(1+1e-12) {
				for _, v := range c.vars {
					if v.fixed {
						continue
					}
					v.Value = r * v.Weight
					v.fixed = true
					unfixed--
					progressed = true
					for _, cc := range v.cons {
						if cc.Policy == Shared {
							cc.remaining -= v.Value
							if cc.remaining < 0 {
								cc.remaining = 0
							}
						}
					}
				}
			}
		}
		if !progressed {
			panic("lmm: solver failed to make progress")
		}
	}
}
