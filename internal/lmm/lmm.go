package lmm

import (
	"fmt"
	"math"
)

// SharingPolicy selects how a constraint's capacity is distributed.
type SharingPolicy int

const (
	// Shared divides the capacity among all variables crossing the
	// constraint (max-min).
	Shared SharingPolicy = iota
	// FatPipe caps each variable at the capacity without any contention
	// between variables.
	FatPipe
)

// Constraint is a capacity-limited resource (a network link, a CPU).
type Constraint struct {
	Capacity float64
	Policy   SharingPolicy
	// Name is an optional label used in error messages and debug dumps.
	Name string

	// id is the creation serial; constraints are never removed, so it is
	// also the dense index into System.constraints. Component members are
	// processed in id order, which keeps solves independent of dirty-set
	// traversal order.
	id int
	// vars lists the attached variables in attach order. Removal preserves
	// the relative order of survivors, so a long-lived system and a fresh
	// rebuild of its surviving variables share their constraints identically.
	vars []*Variable

	dirty bool
	mark  int // epoch stamp used by component collection
	// modMark stamps constraints the dirty set directly perturbed this
	// epoch (bounded-staleness region seeds); rmark stamps membership in
	// the current partial-refill region, and rpull records that the
	// constraint was admitted with all of its variables (see partial.go).
	modMark int
	rmark   int
	rpull   int

	// scratch used by the component/region fill
	remaining     float64
	unfixedWeight float64
	active        bool
	// partialRem is the frozen-frontier remainder maintained by the
	// partial-refill region builder: capacity minus the published rates of
	// the constraint's out-of-region variables, credited back as variables
	// are admitted (see partial.go). Valid only while rmark is current.
	partialRem float64
	// liveVars is the constraint's active list: the attached variables not
	// yet fixed by the current component solve, compacted (order-preserving)
	// as filling rounds progress so late rounds only scan surviving work.
	// The slice's capacity is retained across solves.
	liveVars []*Variable
}

// Variable is an entity receiving a share of the constrained capacities
// (a network flow, a compute task). After Solve, Value holds its allocation.
type Variable struct {
	// Weight scales the share this variable receives relative to its
	// competitors. Weight 0 disables the variable (it receives 0).
	Weight float64
	// Bound is an intrinsic rate bound (e.g. the per-size bandwidth bound
	// of the piece-wise linear model). Use math.Inf(1) for unbounded.
	Bound float64
	// Value is the allocation computed by the last Solve call.
	Value float64
	// Name is an optional label.
	Name string
	// Data is an arbitrary caller payload (e.g. the flow or task this
	// variable represents), giving Resolved() consumers a way back from a
	// re-solved variable to their own bookkeeping without a side table.
	Data any

	// id is the creation serial, the canonical ordering key inside a
	// component (ids are unique and increase monotonically, surviving the
	// swap-removals of the registry).
	id int
	// sysIdx is the variable's current position in System.variables, -1
	// once removed. It makes the registry half of RemoveVariable O(1).
	sysIdx int

	cons  []*Constraint
	dirty bool
	mark  int
	fixed bool
	// modMark/rmark mirror the Constraint stamps for the bounded-staleness
	// partial refill; prev snapshots the published rate when the variable
	// enters a refill region, for the eps staleness test.
	modMark int
	rmark   int
	prev    float64
}

// System owns a set of constraints and variables and computes allocations.
type System struct {
	constraints []*Constraint
	// variables is an index-based registry: each variable carries its
	// current slot (sysIdx) and removal swap-fills the hole, so the order
	// of this slice is not meaningful.
	variables []*Variable

	nextVarID int

	// Dirty set consumed by the next Solve.
	dirtyCons []*Constraint
	dirtyVars []*Variable

	// Component-collection scratch (see solve.go).
	epoch  int
	stackC []*Constraint
	stackV []*Variable

	// comps holds the components collected by the current Solve, in
	// discovery order; slots and their member slices are reused across
	// solves. panics collects worker panics for deterministic re-raise.
	// sortComps tells collectPending whether member lists must come out in
	// creation order (the exact path) or may stay in traversal order (the
	// bounded-staleness path, which sorts only its re-fill region).
	comps     []component
	panics    []any
	sortComps bool

	// scratches are the per-worker fill scratch areas; index 0 doubles as
	// the serial path's scratch.
	scratches []*solveScratch

	// workers bounds the component worker pool (see SetSolverWorkers);
	// 0 or 1 means serial. rateTol is the bounded-staleness tolerance
	// (see SetRateTolerance); 0 means exact.
	workers int
	rateTol float64

	// resolved accumulates the variables whose components the last Solve
	// re-solved (see Resolved).
	resolved []*Variable

	// Stats, when non-nil, accumulates solver counters (solves, dirty-set
	// sizes, component shapes). Attach before solving; nil costs nothing.
	Stats *Stats
}

// component is one connected set of variables coupled through Shared
// constraints, as collected by a Solve. Member slices are sorted by creation
// serial and reused across solves; resolved is what the publish phase
// appends to Resolved() — the full member set after an exact solve, or the
// re-filled region (backed by partial) after a bounded-staleness one.
type component struct {
	cons     []*Constraint
	vars     []*Variable
	resolved []*Variable
	partial  []*Variable
}

// solveScratch is the per-worker scratch a component or region fill runs
// on. Each pool worker owns one, so concurrent component solves never share
// mutable state outside their own (disjoint) members; stats points at the
// System's Stats on the serial path and at local for pool workers, merged
// after the barrier.
type solveScratch struct {
	actCons    []*Constraint
	actVars    []*Variable
	regionCons []*Constraint
	regionVars []*Variable
	stats      *Stats
	local      Stats
}

// New returns an empty system.
func New() *System { return &System{} }

// NewConstraint adds a constraint with the given capacity and policy.
func (s *System) NewConstraint(name string, capacity float64, policy SharingPolicy) *Constraint {
	if capacity < 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("lmm: invalid capacity %v for constraint %q", capacity, name))
	}
	c := &Constraint{Capacity: capacity, Policy: policy, Name: name, id: len(s.constraints)}
	s.constraints = append(s.constraints, c)
	return c
}

// NewVariable adds a variable with the given weight and rate bound.
// Use math.Inf(1) for an unbounded variable.
func (s *System) NewVariable(name string, weight, bound float64) *Variable {
	if weight < 0 || math.IsNaN(weight) {
		panic(fmt.Sprintf("lmm: invalid weight %v for variable %q", weight, name))
	}
	if bound < 0 || math.IsNaN(bound) {
		panic(fmt.Sprintf("lmm: invalid bound %v for variable %q", bound, name))
	}
	v := &Variable{Weight: weight, Bound: bound, Name: name, id: s.nextVarID, sysIdx: len(s.variables)}
	s.nextVarID++
	s.variables = append(s.variables, v)
	s.MarkVariableDirty(v)
	return v
}

// Attach routes variable v through constraint c. Attaching the same pair
// twice is allowed and has no additional effect.
func (s *System) Attach(v *Variable, c *Constraint) {
	for _, existing := range v.cons {
		if existing == c {
			return
		}
	}
	v.cons = append(v.cons, c)
	c.vars = append(c.vars, v)
	s.MarkDirty(c)
}

// RemoveVariable detaches v from every constraint and removes it from the
// system, marking the touched constraints dirty so the next Solve reshares
// their components. Typically called when a flow completes.
//
// The registry removal is O(1) (index-based swap); the constraint-side
// detach is an order-preserving delete per crossed constraint, so the whole
// operation is O(degree) in attached-list sizes rather than the former
// O(total variables) scan.
func (s *System) RemoveVariable(v *Variable) {
	if v.sysIdx < 0 {
		return
	}
	for _, c := range v.cons {
		for i, w := range c.vars {
			if w == v {
				c.vars = append(c.vars[:i], c.vars[i+1:]...)
				break
			}
		}
		s.MarkDirty(c)
	}
	v.cons = nil
	last := len(s.variables) - 1
	moved := s.variables[last]
	s.variables[v.sysIdx] = moved
	moved.sysIdx = v.sysIdx
	s.variables[last] = nil
	s.variables = s.variables[:last]
	v.sysIdx = -1
}

// MarkDirty records that c's capacity, policy, or attachments changed, so
// the next Solve re-solves the component(s) touching it. Mutating an
// exported Constraint field after creation requires calling MarkDirty;
// Attach and RemoveVariable call it automatically.
func (s *System) MarkDirty(c *Constraint) {
	if !c.dirty {
		c.dirty = true
		s.dirtyCons = append(s.dirtyCons, c)
	}
}

// SetCapacity changes c's capacity in place, with the same validation as
// NewConstraint (zero is allowed; negative or NaN panics). An unchanged
// capacity is a no-op; otherwise c is marked dirty so the next Solve
// re-solves exactly the component(s) touching it. This is the primitive
// time-varying platforms build on: surf's SetLinkBandwidth/SetHostSpeed
// drain their actions, call SetCapacity, and let the incremental solver
// restamp completion dates.
func (s *System) SetCapacity(c *Constraint, capacity float64) {
	if capacity < 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("lmm: invalid capacity %v for constraint %q", capacity, c.Name))
	}
	if capacity == c.Capacity {
		return
	}
	c.Capacity = capacity
	s.MarkDirty(c)
}

// MarkVariableDirty records that v's weight or bound changed, so the next
// Solve re-solves its component. NewVariable calls it automatically.
func (s *System) MarkVariableDirty(v *Variable) {
	if !v.dirty {
		v.dirty = true
		s.dirtyVars = append(s.dirtyVars, v)
	}
}

// Variables returns the live variables (primarily for tests and debugging).
// The registry order is not meaningful: removals swap-fill holes.
func (s *System) Variables() []*Variable { return s.variables }

// Constraints returns all constraints in creation order (constraints are
// never removed).
func (s *System) Constraints() []*Constraint { return s.constraints }
