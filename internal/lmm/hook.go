package lmm

import (
	"fmt"
	"os"
)

// CheckAfterSolve, when true, runs System.Check after every Solve and
// SolveFull and panics on the first invariant violation. It exists so test
// suites of the *consumers* (surf, dynamics, campaign runs) surface solver
// bugs at the solve that caused them instead of three packages later as a
// wrong completion date. It is a test hook, not a production mode: the check
// is O(variables + constraints + attachments) per solve and allocates.
//
// Enable it from a TestMain (the surf, dynamics, and experiments suites do)
// or by setting SMPIGO_LMM_CHECK=1 in the environment. Benchmark runs should
// leave it off — the gate baselines in BENCH_*.json assume uninstrumented
// solves.
var CheckAfterSolve = os.Getenv("SMPIGO_LMM_CHECK") == "1"

// mustCheck enforces the CheckAfterSolve contract.
func (s *System) mustCheck() {
	if err := s.Check(); err != nil {
		panic(fmt.Sprintf("lmm: post-solve invariant violation: %v", err))
	}
}
