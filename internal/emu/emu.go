// Package emu is the packet-level testbed emulator that stands in for the
// real Grid'5000 clusters and MPI implementations of the paper's evaluation
// (griffon/gdx running OpenMPI and MPICH2). Reproducing the paper requires
// a ground truth to compare SMPI's analytical predictions against; since no
// physical cluster is available, this package provides a discrete-event,
// store-and-forward network simulator with the mechanisms that give real
// TCP/Ethernet MPI platforms their characteristic non-affine behaviour:
//
//   - MTU framing with per-frame header/interframe overhead;
//   - per-port FIFO serialization at every hop (genuine contention);
//   - a slow-start-like window ramp that penalizes medium-size messages;
//   - the eager/rendezvous protocol switch at 64 KiB, with buffered-copy
//     costs in eager mode and an RTS/CTS round-trip in rendezvous mode;
//   - per-message software overheads at sender and receiver.
//
// Distinct parameter sets emulate OpenMPI and MPICH2, which the paper's
// Figures 7 and 9 compare against each other and against SMPI.
//
// The emulator plugs into the same simix kernel as the analytical model, so
// the same application code runs unmodified on either backend — the paper's
// "on-line" property holds for both.
package emu

import (
	"math/bits"

	"smpigo/internal/core"
	"smpigo/internal/platform"
	"smpigo/internal/simix"
	"smpigo/internal/surf/actionheap"
)

// MPIImpl is the parameter set of an emulated MPI implementation on an
// emulated TCP/Ethernet interconnect.
type MPIImpl struct {
	// Name labels the implementation ("OpenMPI", "MPICH2").
	Name string
	// EagerThreshold is the message size (bytes) at which the
	// implementation switches from eager (buffered) to rendezvous mode.
	EagerThreshold int64
	// SendOverhead and RecvOverhead are per-message software costs.
	SendOverhead core.Duration
	RecvOverhead core.Duration
	// CopyBandwidth is the memcpy speed used for eager-mode buffered
	// copies (one on each side) and for self-messages, in bytes/s.
	CopyBandwidth float64
	// MSS is the TCP maximum segment size (payload bytes per frame).
	MSS int64
	// FrameOverhead is the per-frame wire overhead (headers, preamble,
	// interframe gap), in bytes.
	FrameOverhead int64
	// InitWindow is the slow-start initial window in frames.
	InitWindow int
	// RampRounds caps the number of RTT-long doubling rounds the window
	// ramp can cost a single message.
	RampRounds int
	// PerFrameCPU is the per-frame processing cost at the sender
	// (interrupts, checksums).
	PerFrameCPU core.Duration
	// Jitter is the relative half-width of the deterministic pseudo-random
	// perturbation applied to each message's effective wire time and
	// software overheads, emulating the run-to-run noise of a real
	// testbed (OS scheduling, TCP timers). 0 disables it.
	Jitter float64
}

// OpenMPI returns the emulated OpenMPI 1.x parameter set.
func OpenMPI() MPIImpl {
	return MPIImpl{
		Name:           "OpenMPI",
		EagerThreshold: 64 * core.KiB,
		SendOverhead:   14 * core.Microsecond,
		RecvOverhead:   14 * core.Microsecond,
		CopyBandwidth:  450e6,
		MSS:            1448,
		FrameOverhead:  90,
		InitWindow:     4,
		RampRounds:     3,
		PerFrameCPU:    300 * 1e-9,
		Jitter:         0.05,
	}
}

// MPICH2 returns the emulated MPICH2 parameter set; slightly cheaper
// per-message software costs, slightly slower copies, same 64 KiB
// protocol switch.
func MPICH2() MPIImpl {
	return MPIImpl{
		Name:           "MPICH2",
		EagerThreshold: 64 * core.KiB,
		SendOverhead:   12 * core.Microsecond,
		RecvOverhead:   13 * core.Microsecond,
		CopyBandwidth:  420e6,
		MSS:            1448,
		FrameOverhead:  90,
		InitWindow:     2,
		RampRounds:     3,
		PerFrameCPU:    350 * 1e-9,
		Jitter:         0.05,
	}
}

// Net is the packet-level network model. It implements simix.Model.
type Net struct {
	kernel *simix.Kernel
	plat   *platform.Platform
	impl   MPIImpl

	now core.Time
	// events shares the surf models' completion-date heap. Packet-hop
	// events are immutable once scheduled, so the lazy-invalidation half is
	// unused (every entry is pushed at generation zero and stays valid);
	// what the emulator gets from actionheap is the same O(1) NextEvent /
	// O(log n) churn event path and the same date-then-push-order
	// determinism contract as the analytical models — one event-path
	// implementation across backends.
	events actionheap.Heap[hopEvent]
	ports  map[*platform.Link]*port
	rng    *core.RNG
}

type port struct {
	busyUntil core.Time
}

// message is one wire transfer (control or payload) in flight.
type message struct {
	route     platform.Route
	packets   []int64 // payload bytes per packet
	delivered int
	wireScale float64 // per-message jitter on effective wire time
	onDone    func(at core.Time)
}

// hopEvent is a packet arriving at the input of route link index hop.
type hopEvent struct {
	msg *message
	pkt int
	hop int
}

// Generation implements actionheap.Stamped: hop events are never re-stamped,
// so every entry stays at generation zero.
func (hopEvent) Generation() uint64 { return 0 }

// NewNet creates an emulated network over plat with the given MPI
// implementation parameters.
func NewNet(kernel *simix.Kernel, plat *platform.Platform, impl MPIImpl) *Net {
	return &Net{
		kernel: kernel,
		plat:   plat,
		impl:   impl,
		ports:  make(map[*platform.Link]*port),
		rng:    core.NewRNG(0x7e57bed ^ uint64(len(impl.Name))),
	}
}

// jitterScale draws the per-message perturbation factor in
// [1-Jitter/2, 1+Jitter/2]. The stream is seeded, so runs stay
// deterministic while successive messages vary like on a real testbed.
func (n *Net) jitterScale() float64 {
	if n.impl.Jitter <= 0 {
		return 1
	}
	return 1 + n.impl.Jitter*(n.rng.Float64()-0.5)
}

// Impl returns the emulated MPI implementation parameters.
func (n *Net) Impl() MPIImpl { return n.impl }

// InstrumentHeap attaches counters to the emulator's packet-hop heap (the
// same actionheap the analytical models share). nil detaches; an
// uninstrumented heap pays nothing.
func (n *Net) InstrumentHeap(s *actionheap.Stats) { n.events.Stats = s }

// Transfer emulates an MPI point-to-point payload of size bytes from src to
// dst, fulfilling future at the time the receive completes. Must be called
// from actor context.
func (n *Net) Transfer(src, dst *platform.Host, size int64, future *simix.Future) {
	n.now = n.kernel.Now()
	if src == dst {
		d := n.impl.SendOverhead + n.impl.RecvOverhead +
			core.Duration(float64(size)/n.impl.CopyBandwidth)
		n.kernel.FulfillAt(future, nil, n.now+d)
		return
	}
	route := n.plat.Route(src, dst)
	back := n.plat.Route(dst, src)

	if size < n.impl.EagerThreshold {
		// Eager: copy into the send buffer, push to the wire immediately,
		// copy out on the receive side.
		copyCost := core.Duration(float64(size) / n.impl.CopyBandwidth)
		start := n.now + n.impl.SendOverhead + copyCost
		n.inject(route, size, start, true, func(at core.Time) {
			n.kernel.FulfillAt(future, nil, at+n.impl.RecvOverhead+copyCost)
		})
		return
	}

	// Rendezvous: RTS to the receiver, CTS back, then the (zero-copy)
	// payload rides a warmed-up connection with no window ramp.
	rtsStart := n.now + n.impl.SendOverhead
	n.inject(route, 0, rtsStart, false, func(rtsAt core.Time) {
		n.inject(back, 0, rtsAt, false, func(ctsAt core.Time) {
			n.inject(route, size, ctsAt, false, func(at core.Time) {
				n.kernel.FulfillAt(future, nil, at+n.impl.RecvOverhead)
			})
		})
	})
}

// inject schedules the frames of a message onto the first port of route
// starting at date start. ramp selects whether the slow-start window ramp
// gates frame injection.
func (n *Net) inject(route platform.Route, size int64, start core.Time, ramp bool, onDone func(core.Time)) {
	m := &message{route: route, onDone: onDone, wireScale: n.jitterScale()}
	if size == 0 {
		m.packets = []int64{0}
	} else {
		for rem := size; rem > 0; rem -= n.impl.MSS {
			m.packets = append(m.packets, minI64(rem, n.impl.MSS))
		}
	}
	rtt := 2 * route.Latency
	for i := range m.packets {
		at := start + core.Duration(i)*n.impl.PerFrameCPU
		if ramp {
			at += core.Duration(n.rampRound(i)) * rtt
		}
		n.events.Push(hopEvent{msg: m, pkt: i, hop: 0}, at, 0)
	}
}

// rampRound returns the slow-start round frame i falls into: the window
// starts at InitWindow frames and doubles every round-trip, so frame i
// waits floor(log2(i/W0+1)) RTTs, capped at RampRounds.
func (n *Net) rampRound(i int) int {
	w0 := n.impl.InitWindow
	if w0 <= 0 || i < w0 {
		return 0
	}
	r := bits.Len64(uint64(i/w0+1)) - 1
	if r > n.impl.RampRounds {
		r = n.impl.RampRounds
	}
	return r
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func (n *Net) port(l *platform.Link) *port {
	p, ok := n.ports[l]
	if !ok {
		p = &port{}
		n.ports[l] = p
	}
	return p
}

// NextEvent implements simix.Model: an O(1) peek at the earliest scheduled
// packet-hop date.
func (n *Net) NextEvent() core.Time {
	return n.events.NextDue()
}

// Advance implements simix.Model: processes every packet-hop event up to
// date to. Processing an event may schedule new events (the next hop, or —
// via message completion callbacks — new messages).
func (n *Net) Advance(to core.Time) {
	for {
		he, at, ok := n.events.Peek()
		if !ok || at > to+1e-15 {
			break
		}
		n.events.Pop()
		n.now = at
		n.processHop(he, at)
	}
	if to > n.now {
		n.now = to
	}
}

func (n *Net) processHop(he hopEvent, at core.Time) {
	link := he.msg.route.Links[he.hop]
	p := n.port(link)
	startTx := at
	if p.busyUntil > startTx {
		startTx = p.busyUntil
	}
	wire := float64(he.msg.packets[he.pkt]+n.impl.FrameOverhead) * he.msg.wireScale
	txEnd := startTx + core.Duration(wire/link.Bandwidth)
	p.busyUntil = txEnd
	arrive := txEnd + link.Latency
	if he.hop+1 < len(he.msg.route.Links) {
		n.events.Push(hopEvent{msg: he.msg, pkt: he.pkt, hop: he.hop + 1}, arrive, 0)
		return
	}
	he.msg.delivered++
	if he.msg.delivered == len(he.msg.packets) {
		he.msg.onDone(arrive)
	}
}
