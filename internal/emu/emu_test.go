package emu

import (
	"math"
	"testing"

	"smpigo/internal/core"
	"smpigo/internal/platform"
	"smpigo/internal/simix"
)

// transferTime runs a single emulated transfer and returns its duration.
func transferTime(t *testing.T, impl MPIImpl, size int64, hops string) core.Time {
	t.Helper()
	p, err := platform.Griffon().Build()
	if err != nil {
		t.Fatal(err)
	}
	src := p.HostByID(0)
	dst := p.HostByID(1) // same cabinet
	if hops == "far" {
		dst = p.HostByID(60) // different cabinet
	}
	k := simix.New()
	n := NewNet(k, p, impl)
	k.AddModel(n)
	var done core.Time
	k.Spawn("s", func(pr *simix.Proc) {
		f := simix.NewFuture()
		n.Transfer(src, dst, size, f)
		pr.Wait(f)
		done = pr.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return done
}

func TestSmallMessageLatencyDominated(t *testing.T) {
	d := transferTime(t, OpenMPI(), 1, "near")
	// Overheads (28us) + 2x20us link latency + one tiny frame.
	if d < 60*core.Microsecond || d > 120*core.Microsecond {
		t.Errorf("1-byte transfer took %v, want 60-120us", d)
	}
}

func TestLargeMessageNearWireSpeed(t *testing.T) {
	size := int64(4 * core.MiB)
	d := transferTime(t, OpenMPI(), size, "near")
	effBw := float64(size) / float64(d)
	if effBw < 0.80*125e6 {
		t.Errorf("4MiB effective bandwidth %.3g, want >= 80%% of 125e6", effBw)
	}
	if effBw > 125e6 {
		t.Errorf("effective bandwidth %.3g exceeds wire speed", effBw)
	}
}

func TestMediumMessagesSlowerThanAffine(t *testing.T) {
	// The defining non-affine feature: effective bandwidth at 16-48 KiB is
	// clearly below the large-message effective bandwidth because of the
	// window ramp and eager copies.
	mid := transferTime(t, OpenMPI(), 32*core.KiB, "near")
	effMid := float64(32*core.KiB) / float64(mid)
	big := transferTime(t, OpenMPI(), 4*core.MiB, "near")
	effBig := float64(4*core.MiB) / float64(big)
	if effMid > 0.7*effBig {
		t.Errorf("mid-size effective bw %.3g not clearly below large-size %.3g", effMid, effBig)
	}
}

func TestProtocolSwitchVisibleAtThreshold(t *testing.T) {
	// Just below the eager threshold, time includes 2 copies; just above,
	// an extra round trip appears. Both must be monotone vs a much smaller
	// message, and the rendezvous penalty must be visible.
	below := transferTime(t, OpenMPI(), 63*core.KiB, "near")
	above := transferTime(t, OpenMPI(), 65*core.KiB, "near")
	if above <= below {
		t.Skip("rendezvous jump hidden by copy savings; acceptable")
	}
	if above-below > 2*core.Millisecond {
		t.Errorf("protocol switch jump too large: %v -> %v", below, above)
	}
}

func TestCrossCabinetSlower(t *testing.T) {
	near := transferTime(t, OpenMPI(), 1024, "near")
	far := transferTime(t, OpenMPI(), 1024, "far")
	if far <= near {
		t.Errorf("cross-cabinet (%v) should be slower than intra-cabinet (%v)", far, near)
	}
}

func TestImplementationsDiffer(t *testing.T) {
	om := transferTime(t, OpenMPI(), 128*core.KiB, "near")
	mp := transferTime(t, MPICH2(), 128*core.KiB, "near")
	if om == mp {
		t.Error("OpenMPI and MPICH2 emulations should differ slightly")
	}
	rel := math.Abs(float64(om-mp)) / float64(om)
	if rel > 0.25 {
		t.Errorf("implementations differ by %.0f%%, want < 25%%", rel*100)
	}
}

func TestSelfMessageIsMemcpy(t *testing.T) {
	p, err := platform.Griffon().Build()
	if err != nil {
		t.Fatal(err)
	}
	k := simix.New()
	n := NewNet(k, p, OpenMPI())
	k.AddModel(n)
	var done core.Time
	k.Spawn("s", func(pr *simix.Proc) {
		f := simix.NewFuture()
		n.Transfer(p.HostByID(0), p.HostByID(0), 45e6, f)
		pr.Wait(f)
		done = pr.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 45MB at 450MB/s = 100ms plus overheads.
	if done < 0.09 || done > 0.2 {
		t.Errorf("self message took %v, want ~0.1s", done)
	}
}

func TestContentionAtSourcePort(t *testing.T) {
	// Two large simultaneous transfers from the same node share its
	// up-link: total time about twice a single transfer.
	p, err := platform.Griffon().Build()
	if err != nil {
		t.Fatal(err)
	}
	size := int64(4 * core.MiB)
	single := transferTime(t, OpenMPI(), size, "near")

	k := simix.New()
	n := NewNet(k, p, OpenMPI())
	k.AddModel(n)
	var last core.Time
	k.Spawn("s", func(pr *simix.Proc) {
		f1, f2 := simix.NewFuture(), simix.NewFuture()
		n.Transfer(p.HostByID(0), p.HostByID(1), size, f1)
		n.Transfer(p.HostByID(0), p.HostByID(2), size, f2)
		pr.WaitAll([]*simix.Future{f1, f2})
		last = pr.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	ratio := float64(last) / float64(single)
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("contended/single ratio = %.2f, want ~2", ratio)
	}
}

func TestDeterminism(t *testing.T) {
	a := transferTime(t, OpenMPI(), 100*core.KiB, "far")
	b := transferTime(t, OpenMPI(), 100*core.KiB, "far")
	if a != b {
		t.Errorf("non-deterministic emulation: %v vs %v", a, b)
	}
}

func TestMonotoneInSize(t *testing.T) {
	prev := core.Time(0)
	for _, size := range []int64{1, 256, 1024, 8 * core.KiB, 64 * core.KiB, 512 * core.KiB, 4 * core.MiB} {
		d := transferTime(t, OpenMPI(), size, "near")
		if d <= prev {
			t.Errorf("transfer time not monotone at %s: %v after %v", core.FormatBytes(size), d, prev)
		}
		prev = d
	}
}

func TestRampRound(t *testing.T) {
	n := &Net{impl: OpenMPI()} // InitWindow 4
	cases := []struct{ frame, want int }{
		{0, 0}, {3, 0}, {4, 1}, {11, 1}, {12, 2}, {27, 2}, {28, 3}, {1000, 3},
	}
	for _, c := range cases {
		if got := n.rampRound(c.frame); got != c.want {
			t.Errorf("rampRound(%d) = %d, want %d", c.frame, got, c.want)
		}
	}
}

func TestZeroByteControlMessage(t *testing.T) {
	d := transferTime(t, OpenMPI(), 0, "near")
	if d <= 0 || d > 150*core.Microsecond {
		t.Errorf("0-byte message took %v", d)
	}
}
