package surf

import (
	"fmt"
	"math"
	"sort"
)

// Segment is one linear piece of the point-to-point communication model.
// For a message of size s falling in this segment, transfer time over a
// route with base latency L0 and bottleneck bandwidth B0 is modelled as
//
//	T(s) = LatFactor*L0 + s / (BwFactor*B0)
//
// Expressing the piece as *factors* over the route's physical parameters —
// rather than absolute seconds and bytes/s — is what lets a calibration
// performed on one cluster (griffon) be reused on another (gdx), the
// property demonstrated by the paper's Figures 4 and 5.
type Segment struct {
	// MaxBytes is the exclusive upper bound of the segment; the last
	// segment of a model uses math.MaxInt64.
	MaxBytes int64
	// LatFactor multiplies the route's physical latency.
	LatFactor float64
	// BwFactor multiplies the route's bottleneck bandwidth to produce the
	// flow's intrinsic rate bound.
	BwFactor float64
}

// NetModel is a piece-wise linear point-to-point model: an ordered list of
// segments covering [0, +inf). An affine model is a NetModel with a single
// segment, so the paper's three candidate models ("Default Affine",
// "Best-Fit Affine", "Piece-Wise Linear") are all NetModel values.
type NetModel struct {
	// Name labels the model in reports ("piecewise", "default-affine", ...).
	Name string
	// Segments, sorted by MaxBytes, the last one unbounded.
	Segments []Segment
}

// Validate reports the first structural problem with the model, if any.
func (m NetModel) Validate() error {
	if len(m.Segments) == 0 {
		return fmt.Errorf("net model %q: no segments", m.Name)
	}
	if !sort.SliceIsSorted(m.Segments, func(i, j int) bool {
		return m.Segments[i].MaxBytes < m.Segments[j].MaxBytes
	}) {
		return fmt.Errorf("net model %q: segments not sorted", m.Name)
	}
	if m.Segments[len(m.Segments)-1].MaxBytes != math.MaxInt64 {
		return fmt.Errorf("net model %q: last segment must be unbounded", m.Name)
	}
	for i, s := range m.Segments {
		if s.LatFactor < 0 || s.BwFactor <= 0 ||
			math.IsNaN(s.LatFactor) || math.IsNaN(s.BwFactor) {
			return fmt.Errorf("net model %q: segment %d has invalid factors (%v, %v)",
				m.Name, i, s.LatFactor, s.BwFactor)
		}
	}
	return nil
}

// Segment returns the piece covering messages of the given size.
func (m NetModel) Segment(size int64) Segment {
	for _, s := range m.Segments {
		if size < s.MaxBytes {
			return s
		}
	}
	return m.Segments[len(m.Segments)-1]
}

// Affine returns a single-segment model with the given factors.
func Affine(name string, latFactor, bwFactor float64) NetModel {
	return NetModel{
		Name:     name,
		Segments: []Segment{{MaxBytes: math.MaxInt64, LatFactor: latFactor, BwFactor: bwFactor}},
	}
}

// DefaultAffine returns the standard naive instantiation used by most of
// the simulators the paper reviews: latency as measured with a 1-byte
// message (factor over physical latency) and 92% of the nominal peak
// bandwidth (the practical ceiling of TCP over Gigabit Ethernet).
func DefaultAffine(oneByteLatFactor float64) NetModel {
	return Affine("default-affine", oneByteLatFactor, 0.92)
}

// Ideal returns the physically ideal model (factors of exactly 1),
// useful as a neutral baseline in tests.
func Ideal() NetModel { return Affine("ideal", 1, 1) }
