// Package surf implements the analytical resource models of the simulation
// kernel, mirroring SimGrid's SURF layer (paper Sections 4 and 5.1):
//
//   - a flow-level network model where concurrent transfers share link
//     bandwidth max-min fairly (the validated SimGrid contention model), and
//     where per-flow latency and rate bounds come from a piece-wise linear
//     point-to-point model (the paper's Section 4.1 contribution);
//   - a CPU model where compute actions share host speed.
//
// Both models plug into the simix kernel through its Model interface: the
// kernel asks each model for its next completion date and tells it to
// advance, and the models fulfill the futures blocked actors wait on.
//
// Bandwidth and CPU sharing both run through the incremental Linear
// Max-Min solver of package lmm: every in-flight flow is a solver variable
// attached to the constraints of the links on its route (as resolved by
// platform.Platform.Route), and every compute burst a variable on its
// host's constraint. After each mutation the solver re-solves only the
// dirty components and reports which variables changed, so the models
// refresh rates and completion estimates for those alone.
//
// The event path is sublinear in the action population: completion dates
// live in the lazily-invalidated min-heap of package actionheap, NextEvent
// is an O(1) peek, and lmm.Solve's Resolved() set is the only thing that
// re-stamps a date — an action's bytes (or flops) drain lazily between rate
// changes rather than being walked every kernel step. See
// docs/ARCHITECTURE.md ("The event path") for the full design and the
// determinism argument.
package surf
