package surf

import (
	"math"
	"testing"

	"smpigo/internal/core"
	"smpigo/internal/platform"
	"smpigo/internal/simix"
)

// segRecorder accumulates per-link byte totals from the drained-segment
// stream, the minimal UsageRecorder for exactness checks.
type segRecorder struct {
	bytes map[int]float64
}

func (r *segRecorder) RecordLink(l *platform.Link, from, to core.Time, bytes float64) {
	if r.bytes == nil {
		r.bytes = map[int]float64{}
	}
	r.bytes[l.ID] += bytes
}
func (r *segRecorder) RecordHost(h *platform.Host, from, to core.Time, flops float64) {}

// TestSetLinkBandwidthAnalytic pins the drain-before-mutate semantics on a
// single flow: halve the bandwidth mid-transfer and the completion date must
// match the closed form (bytes drained at the old rate until the change, the
// remainder at the new rate), and the usage recorder must account exactly
// the flow's size per link.
func TestSetLinkBandwidthAnalytic(t *testing.T) {
	const (
		bw   = 1e6
		lat  = core.Duration(1e-3)
		size = 8e6 // 8 s at full rate
	)
	p, a, b := twoHostPlatform(bw, lat)
	up := p.Links()[0]

	k := simix.New()
	n := NewNetwork(k, Ideal())
	rec := &segRecorder{}
	n.usage = rec
	k.AddModel(n)

	var done core.Time
	k.Spawn("sender", func(pr *simix.Proc) {
		f := simix.NewFuture()
		n.StartFlow(p.Route(a, b), int64(size), f)
		pr.Wait(f)
		done = pr.Now()
	})
	// Halve the up link 2 s into the transfer phase.
	at := core.Time(2*lat) + 2
	tf := simix.NewFuture()
	k.OnFulfill(tf, func(any) { n.SetLinkBandwidth(up, bw/2) })
	k.FulfillAt(tf, nil, at)

	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Latency 2ms, then 2 s at 1e6 B/s (2e6 bytes), then 6e6 bytes at 5e5.
	want := core.Time(2*lat) + 2 + core.Time(6e6/5e5)
	if math.Abs(float64(done-want)) > 1e-9 {
		t.Errorf("completion at %v, want %v", done, want)
	}
	for _, l := range p.Links() {
		if got := rec.bytes[l.ID]; math.Abs(got-size) > 1e-6 {
			t.Errorf("link %s carried %v bytes, want %v", l.Name(), got, float64(size))
		}
	}
	if got := n.LinkBandwidth(up); got != bw/2 {
		t.Errorf("LinkBandwidth = %v, want %v", got, bw/2)
	}
}

// TestSetLinkBandwidthRestore degrades and restores around an idle interval:
// a flow started after the restore must see the nominal rate again, and
// setting the capacity on a link with no flows must not disturb anything.
func TestSetLinkBandwidthRestore(t *testing.T) {
	const (
		bw  = 1e6
		lat = core.Duration(1e-3)
	)
	p, a, b := twoHostPlatform(bw, lat)
	up := p.Links()[0]

	k := simix.New()
	n := NewNetwork(k, Ideal())
	k.AddModel(n)

	var elapsed core.Duration
	k.Spawn("sender", func(pr *simix.Proc) {
		pr.Sleep(1) // degrade and restore both happen while idle
		start := pr.Now()
		f := simix.NewFuture()
		n.StartFlow(p.Route(a, b), 1e6, f)
		pr.Wait(f)
		elapsed = core.Duration(pr.Now() - start)
	})
	for _, ev := range []struct {
		at core.Time
		bw float64
	}{{0.2, bw / 4}, {0.5, bw}} {
		ev := ev
		f := simix.NewFuture()
		k.OnFulfill(f, func(any) { n.SetLinkBandwidth(up, ev.bw) })
		k.FulfillAt(f, nil, ev.at)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := 2*lat + 1 // nominal rate: 1e6 bytes at 1e6 B/s
	if math.Abs(float64(elapsed-want)) > 1e-9 {
		t.Errorf("transfer took %v, want nominal %v", elapsed, want)
	}
}

// TestSetHostSpeedAnalytic mirrors the link test on the CPU model: slow the
// host mid-task and the completion date must match the closed form.
func TestSetHostSpeedAnalytic(t *testing.T) {
	p := platform.New("mini")
	h := p.AddHost("h", 1e9)

	k := simix.New()
	c := NewCPU(k)
	k.AddModel(c)

	var done core.Time
	k.Spawn("worker", func(pr *simix.Proc) {
		pr.Wait(c.Execute(h, 4e9)) // 4 s at nominal speed
		done = pr.Now()
	})
	f := simix.NewFuture()
	k.OnFulfill(f, func(any) { c.SetHostSpeed(h, 0.5e9) })
	k.FulfillAt(f, nil, 1)

	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 1 s at 1e9 f/s (1e9 flops), then 3e9 flops at 0.5e9 f/s = 6 s.
	if want := core.Time(7); math.Abs(float64(done-want)) > 1e-9 {
		t.Errorf("completion at %v, want %v", done, want)
	}
	if got := c.HostSpeed(h); got != 0.5e9 {
		t.Errorf("HostSpeed = %v, want 0.5e9", got)
	}
	if h.Speed != 1e9 {
		t.Errorf("nominal platform speed mutated: %v", h.Speed)
	}
}

// TestSetLinkBandwidthValidation pins the failure modes: negative/NaN
// panics, and a contention-blind network rejects the call outright.
func TestSetLinkBandwidthValidation(t *testing.T) {
	p, _, _ := twoHostPlatform(1e6, 1e-3)
	up := p.Links()[0]
	k := simix.New()
	n := NewNetwork(k, Ideal())
	for _, bad := range []float64{-1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetLinkBandwidth(%v) did not panic", bad)
				}
			}()
			n.SetLinkBandwidth(up, bad)
		}()
	}
	n.SetLinkBandwidth(up, 0) // zero is legal: a failed link
	if got := n.LinkBandwidth(up); got != 0 {
		t.Errorf("LinkBandwidth after fail = %v, want 0", got)
	}
	blind := NewNetwork(simix.New(), Ideal())
	blind.Contention = false
	defer func() {
		if recover() == nil {
			t.Error("SetLinkBandwidth on a contention-blind network did not panic")
		}
	}()
	blind.SetLinkBandwidth(up, 1e6)
}
