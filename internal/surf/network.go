package surf

import (
	"fmt"
	"strings"

	"smpigo/internal/core"
	"smpigo/internal/lmm"
	"smpigo/internal/platform"
	"smpigo/internal/simix"
)

// Network is the flow-level analytical network model. Transfers are flows:
// after a latency phase (scaled by the model's LatFactor) the flow's
// remaining bytes drain at a rate computed by max-min sharing of link
// capacities, capped by the model's BwFactor times the route bottleneck.
//
// With Contention disabled, sharing is skipped entirely and every flow
// drains at its cap — the behaviour of the contention-blind simulators the
// paper compares against (white bars of Figures 7 and 11).
type Network struct {
	kernel *simix.Kernel
	model  NetModel
	// Contention selects whether concurrent flows share link bandwidth.
	Contention bool

	// Loopback parameters for host-local transfers (rank to itself).
	LoopbackLatency   core.Duration
	LoopbackBandwidth float64

	now  core.Time
	sys  *lmm.System
	cons map[*platform.Link]*lmm.Constraint
	// flows is kept in start order so that completions, promotions, and
	// therefore actor wakeups are deterministic run to run.
	flows []*flow
}

type flow struct {
	route  platform.Route
	bound  float64
	future *simix.Future

	latEnd    core.Time // end of latency phase
	started   bool      // transfer phase entered
	remaining float64   // bytes left to drain
	v         *lmm.Variable
	rate      float64
}

// NewNetwork creates a network model bound to kernel, using the given
// point-to-point model, with contention enabled.
func NewNetwork(kernel *simix.Kernel, model NetModel) *Network {
	if err := model.Validate(); err != nil {
		panic(err)
	}
	return &Network{
		kernel:            kernel,
		model:             model,
		Contention:        true,
		LoopbackLatency:   500 * 1e-9,
		LoopbackBandwidth: 4e9,
		sys:               lmm.New(),
		cons:              make(map[*platform.Link]*lmm.Constraint),
	}
}

// Model returns the point-to-point model in use.
func (n *Network) Model() NetModel { return n.model }

// InFlight returns the number of active flows (for tests and stats).
func (n *Network) InFlight() int { return len(n.flows) }

// StartFlow begins transferring size bytes along route and returns a future
// fulfilled (with nil) at delivery time. An empty route is a loopback
// transfer. Must be called from actor context (i.e. at the current date).
func (n *Network) StartFlow(route platform.Route, size int64, future *simix.Future) {
	n.now = n.kernel.Now()
	if len(route.Links) == 0 {
		d := n.LoopbackLatency + core.Duration(float64(size)/n.LoopbackBandwidth)
		n.kernel.FulfillAt(future, nil, n.now+d)
		return
	}
	seg := n.model.Segment(size)
	f := &flow{
		route:     route,
		bound:     seg.BwFactor * route.Bottleneck(),
		future:    future,
		latEnd:    n.now + core.Duration(seg.LatFactor)*route.Latency,
		remaining: float64(size),
	}
	n.flows = append(n.flows, f)
	// No reshare needed yet: the flow consumes no bandwidth during its
	// latency phase. It joins the sharing system in Advance.
}

func (n *Network) constraint(l *platform.Link) *lmm.Constraint {
	c, ok := n.cons[l]
	if !ok {
		c = n.sys.NewConstraint(l.Name, l.Bandwidth, l.Policy)
		n.cons[l] = c
	}
	return c
}

// reshare recomputes flow rates after the set of transferring flows changed.
// Solving is selective: promotions and completions only dirty the LMM
// components of the links they touch, flows in untouched components keep
// their rates bit-for-bit, and only the re-solved variables are walked to
// refresh rates — the reshare cost scales with the churned components, not
// with the total flow population.
func (n *Network) reshare() {
	if !n.Contention {
		for _, f := range n.flows {
			if f.started {
				f.rate = f.bound
				n.checkStalled(f)
			}
		}
		return
	}
	n.sys.Solve()
	for _, v := range n.sys.Resolved() {
		f := v.Data.(*flow)
		f.rate = v.Value
		n.checkStalled(f)
	}
}

// checkStalled fails loudly when a transferring flow was allocated rate 0:
// its remaining bytes would never drain, NextEvent would report TimeForever,
// and the simulation would hang (or deadlock-error with no hint of why).
// A zero rate can only come from a zero-bandwidth link on the route or a
// zero rate bound, both platform/model configuration errors.
func (n *Network) checkStalled(f *flow) {
	if f.rate > 0 || f.remaining <= 0 {
		return
	}
	names := make([]string, len(f.route.Links))
	for i, l := range f.route.Links {
		names[i] = l.Name
	}
	panic(fmt.Sprintf(
		"surf: flow with %g bytes remaining allocated rate 0 and would never complete; route: %s (zero-bandwidth link or zero rate bound %g)",
		f.remaining, strings.Join(names, " -> "), f.bound))
}

// NextEvent implements simix.Model.
func (n *Network) NextEvent() core.Time {
	next := core.TimeForever
	for _, f := range n.flows {
		if !f.started {
			if f.latEnd < next {
				next = f.latEnd
			}
		} else if f.rate > 0 {
			if t := n.now + core.Duration(f.remaining/f.rate); t < next {
				next = t
			}
		}
	}
	return next
}

// Advance implements simix.Model: drains bytes until date to, promotes
// flows out of their latency phase, and completes finished flows.
func (n *Network) Advance(to core.Time) {
	dt := float64(to - n.now)
	if dt < 0 {
		return
	}
	n.now = to

	changed := false
	for _, f := range n.flows {
		if f.started {
			f.remaining -= f.rate * dt
		}
	}
	// Promote flows whose latency ended.
	for _, f := range n.flows {
		if !f.started && f.latEnd <= to+1e-15 {
			f.started = true
			if f.remaining <= 0 {
				continue // zero-byte control flow: completes below
			}
			if n.Contention {
				f.v = n.sys.NewVariable("flow", 1, f.bound)
				f.v.Data = f
				for _, l := range f.route.Links {
					n.sys.Attach(f.v, n.constraint(l))
				}
			}
			changed = true
		}
	}
	// Complete drained flows, preserving start order. A byte tolerance
	// absorbs floating-point drift.
	live := n.flows[:0]
	for _, f := range n.flows {
		if f.started && f.remaining <= 1e-6 {
			if f.v != nil {
				n.sys.RemoveVariable(f.v)
			}
			n.kernel.Fulfill(f.future, nil)
			changed = true
			continue
		}
		live = append(live, f)
	}
	n.flows = live
	if changed {
		n.reshare()
	}
}
