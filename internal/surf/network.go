package surf

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"strings"

	"smpigo/internal/core"
	"smpigo/internal/lmm"
	"smpigo/internal/platform"
	"smpigo/internal/simix"
	"smpigo/internal/surf/actionheap"
)

// Tolerances of the event path, shared by the heap pop loop. They are the
// historical values of the linear-scan implementation, so event timing is
// unchanged: a flow still leaves its latency phase within promoteTol of
// latEnd, and still completes once its drained remainder is within byteTol
// of zero.
const (
	promoteTol core.Duration = 1e-15
	byteTol                  = 1e-6
)

// Network is the flow-level analytical network model. Transfers are flows:
// after a latency phase (scaled by the model's LatFactor) the flow's
// remaining bytes drain at a rate computed by max-min sharing of link
// capacities, capped by the model's BwFactor times the route bottleneck.
//
// With Contention disabled, sharing is skipped entirely and every flow
// drains at its cap — the behaviour of the contention-blind simulators the
// paper compares against (white bars of Figures 7 and 11).
//
// The event path is sublinear in the flow population: every flow's next
// date (latency end, then stamped completion date) lives in a lazy min-heap
// (package actionheap), so NextEvent is an O(1) peek and a churn event costs
// O(log n) heap work plus the LMM re-solve of the touched components. A
// flow's byte count is drained lazily — synced exactly when lmm.Solve's
// Resolved() set reports its rate changed — instead of walking the whole
// population every kernel step.
type Network struct {
	kernel *simix.Kernel
	model  NetModel
	// Contention selects whether concurrent flows share link bandwidth.
	Contention bool

	// Loopback parameters for host-local transfers (rank to itself).
	LoopbackLatency   core.Duration
	LoopbackBandwidth float64

	now  core.Time
	sys  *lmm.System
	cons map[*platform.Link]*lmm.Constraint

	// heap holds one valid entry per in-flight flow: its latency end while
	// unpromoted, then its stamped completion date. Restamps push fresh
	// entries; stale ones are discarded lazily (see actionheap).
	heap     actionheap.Heap[*flow]
	inFlight int
	startSeq uint64

	// Per-Advance scratch, retained across steps.
	promoted  []*flow
	completed []*flow

	// Observability sinks (see Instrument). Both nil by default; every hook
	// compiles to a nil check, so an uninstrumented network pays nothing.
	stats *NetworkStats
	usage UsageRecorder
}

type flow struct {
	route  platform.Route
	bound  float64
	future *simix.Future

	latEnd  core.Time // end of latency phase
	started bool      // transfer phase entered

	// remaining is the byte count at lastSync; it drains at rate from
	// lastSync on, and is synced (drained to the current date) exactly when
	// the rate changes or the completion tolerance must be checked.
	remaining float64
	lastSync  core.Time
	rate      float64
	v         *lmm.Variable

	// seq is the start serial: completions and promotions that share a date
	// are processed in start order, like the scan implementation did, so
	// actor wakeup order is unchanged.
	seq uint64
	// gen is the actionheap generation stamp; bumped on every restamp and at
	// completion, invalidating older heap entries.
	gen uint64
}

// Generation implements actionheap.Stamped.
func (f *flow) Generation() uint64 { return f.gen }

// NewNetwork creates a network model bound to kernel, using the given
// point-to-point model, with contention enabled.
func NewNetwork(kernel *simix.Kernel, model NetModel) *Network {
	if err := model.Validate(); err != nil {
		panic(err)
	}
	return &Network{
		kernel:            kernel,
		model:             model,
		Contention:        true,
		LoopbackLatency:   500 * 1e-9,
		LoopbackBandwidth: 4e9,
		sys:               lmm.New(),
		cons:              make(map[*platform.Link]*lmm.Constraint),
	}
}

// Model returns the point-to-point model in use.
func (n *Network) Model() NetModel { return n.model }

// InFlight returns the number of active flows (for tests and stats).
func (n *Network) InFlight() int { return n.inFlight }

// StartFlow begins transferring size bytes along route and returns a future
// fulfilled (with nil) at delivery time. An empty route is a loopback
// transfer. Must be called from actor context (i.e. at the current date).
func (n *Network) StartFlow(route platform.Route, size int64, future *simix.Future) {
	n.now = n.kernel.Now()
	if len(route.Links) == 0 {
		if n.stats != nil {
			n.stats.Loopbacks++
		}
		d := n.LoopbackLatency + core.Duration(float64(size)/n.LoopbackBandwidth)
		n.kernel.FulfillAt(future, nil, n.now+d)
		return
	}
	if n.stats != nil {
		n.stats.FlowsStarted++
	}
	seg := n.model.Segment(size)
	f := &flow{
		route:     route,
		bound:     seg.BwFactor * route.Bottleneck(),
		future:    future,
		latEnd:    n.now + core.Duration(seg.LatFactor)*route.Latency,
		remaining: float64(size),
		seq:       n.startSeq,
	}
	n.startSeq++
	n.inFlight++
	// The flow consumes no bandwidth during its latency phase; it joins the
	// sharing system when its latency entry pops in Advance.
	n.heap.Push(f, f.latEnd, f.gen)
}

func (n *Network) constraint(l *platform.Link) *lmm.Constraint {
	c, ok := n.cons[l]
	if !ok {
		c = n.sys.NewConstraint(l.Name(), l.Bandwidth, l.Policy)
		n.cons[l] = c
	}
	return c
}

// SetLinkBandwidth changes the capacity the sharing system enforces for l
// from the current date on. The platform's Link.Bandwidth is untouched — it
// stays the immutable nominal description (shared across concurrent
// simulations of the same platform), while the effective capacity lives in
// this network's LMM constraint.
//
// Exactness across the change follows the lazy-drain argument of the event
// path: the reshare drains every re-solved flow at its outgoing rate up to
// the current date before the new rate applies, so byte integrals and
// usage-recorder accounting see the old rate exactly until now and the new
// rate exactly after. Untouched components keep their rates and stamped
// dates bit-for-bit.
//
// Setting a capacity of zero fails the link: any flow crossing it is
// allocated rate 0 and the simulation panics loudly (see checkStalled) —
// failure detection, not fault tolerance. Negative or NaN bandwidth panics;
// contention-blind networks reject the call because their flows never
// consult the sharing system.
func (n *Network) SetLinkBandwidth(l *platform.Link, bw float64) {
	if bw < 0 || math.IsNaN(bw) {
		panic(fmt.Sprintf("surf: invalid bandwidth %v for link %q", bw, l.Name()))
	}
	if !n.Contention {
		panic(fmt.Sprintf("surf: SetLinkBandwidth(%q): contention-blind flows ignore link capacities; dynamic bandwidth requires contention", l.Name()))
	}
	n.now = n.kernel.Now()
	n.sys.SetCapacity(n.constraint(l), bw)
	// Reshare immediately: Advance early-returns on steps with no
	// promotions or completions, so a capacity change fired from a timer
	// callback would otherwise sit unsolved past its date.
	n.reshare(n.now)
}

// LinkBandwidth returns the capacity currently enforced for l: the last
// SetLinkBandwidth value, or the platform's nominal bandwidth if it was
// never changed.
func (n *Network) LinkBandwidth(l *platform.Link) float64 {
	if c, ok := n.cons[l]; ok {
		return c.Capacity
	}
	return l.Bandwidth
}

// SetSolverWorkers bounds the LMM worker pool used to solve independent
// dirty components concurrently (n <= 0 selects GOMAXPROCS; 1, the default,
// is serial). Safe at any point; rates, completion order, and campaign
// fingerprints are bit-identical at every setting because the solver merges
// Resolved() in component-discovery order — the order reshare depends on
// for same-date heap push ordering.
func (n *Network) SetSolverWorkers(workers int) { n.sys.SetSolverWorkers(workers) }

// SetRateTolerance opts the network's solver into bounded staleness: after
// a churn event, flows whose rate would move by less than eps (relative)
// keep their stale rate and stamped completion date. Byte conservation is
// unaffected — drains always record the rate actually flown — and link
// capacities are never over-committed; only completion dates drift, by at
// most eps per skipped reshare. eps = 0 (the default) is exact.
func (n *Network) SetRateTolerance(eps float64) { n.sys.SetRateTolerance(eps) }

// sync drains f's byte count to date to at its current rate. It is the lazy
// replacement of the former every-step drain loop: called when the flow's
// rate is about to change (so the old rate stops applying) and when the
// completion tolerance fires.
func (f *flow) sync(to core.Time) {
	f.remaining -= f.rate * float64(to-f.lastSync)
	f.lastSync = to
}

// drain is sync with the drained segment reported to the observability
// sinks: the (rate x interval) amount the sync subtracts is exactly what
// every link of the route carried during (lastSync, to], so per-link
// accounting piggybacks on the sync points the lazy event path already
// visits instead of recomputing integrals.
func (n *Network) drain(f *flow, to core.Time) {
	if n.stats != nil {
		n.stats.Syncs++
	}
	if n.usage != nil {
		if bytes := f.rate * float64(to-f.lastSync); bytes > 0 {
			for _, l := range f.route.Links {
				n.usage.RecordLink(l, f.lastSync, to, bytes)
			}
		}
	}
	f.sync(to)
}

// stamp records f's completion date — the current date plus the time to
// drain the remaining bytes at the current rate — as a fresh heap entry,
// invalidating any earlier entry.
func (n *Network) stamp(f *flow, at core.Time) {
	f.gen++
	n.heap.Push(f, at+core.Duration(f.remaining/f.rate), f.gen)
}

// reshare recomputes flow rates after the set of transferring flows changed
// at date to. Solving is selective: promotions and completions only dirty
// the LMM components of the links they touch, flows in untouched components
// keep their rates — and their stamped completion dates — bit-for-bit, and
// only the re-solved variables are synced and restamped. The reshare cost
// scales with the churned components, not with the total flow population.
func (n *Network) reshare(to core.Time) {
	n.sys.Solve()
	for _, v := range n.sys.Resolved() {
		f := v.Data.(*flow)
		n.drain(f, to) // drain at the outgoing rate before it changes
		f.rate = v.Value
		n.checkStalled(f)
		n.stamp(f, to)
	}
}

// checkStalled fails loudly when a transferring flow was allocated rate 0:
// its remaining bytes would never drain, NextEvent would report TimeForever,
// and the simulation would hang (or deadlock-error with no hint of why).
// A zero rate can only come from a zero-bandwidth link on the route or a
// zero rate bound, both platform/model configuration errors.
func (n *Network) checkStalled(f *flow) {
	if f.rate > 0 || f.remaining <= 0 {
		return
	}
	names := make([]string, len(f.route.Links))
	for i, l := range f.route.Links {
		names[i] = l.Name()
	}
	panic(fmt.Sprintf(
		"surf: flow with %g bytes remaining allocated rate 0 and would never complete; route: %s (zero-bandwidth link or zero rate bound %g)",
		f.remaining, strings.Join(names, " -> "), f.bound))
}

// NextEvent implements simix.Model: an O(1) peek at the earliest stamped
// date (after lazily discarding stale entries).
func (n *Network) NextEvent() core.Time {
	return n.heap.NextDue()
}

// Advance implements simix.Model: promotes flows whose latency phase ends by
// date to, completes flows whose bytes have drained, and reshares the
// touched components. Only flows with an event at or before to are visited;
// the rest of the population is untouched.
func (n *Network) Advance(to core.Time) {
	if to < n.now {
		return
	}
	n.now = to

	n.promoted = n.promoted[:0]
	n.completed = n.completed[:0]
	for {
		f, due, ok := n.heap.Peek()
		if !ok {
			break
		}
		if !f.started {
			// Latency entry. The promotion tolerance is the scan's: a flow
			// whose latency ends within promoteTol of the step date enters
			// its transfer phase now.
			if due > to+promoteTol {
				break
			}
			n.heap.Pop()
			n.promoted = append(n.promoted, f)
			continue
		}
		// Completion entry. The byte tolerance absorbs floating-point
		// drift: the flow completes once its drained remainder is within
		// byteTol of zero at the step date. Unlike the scan, only surfaced
		// entries are tolerance-checked — a flow within byteTol of done but
		// stamped behind a non-qualifying entry completes at its own due
		// date, at most byteTol/rate later (see ARCHITECTURE, "The event
		// path").
		if f.remaining-f.rate*float64(to-f.lastSync) <= byteTol {
			n.heap.Pop()
			n.completed = append(n.completed, f)
			continue
		}
		if due <= to {
			// Overdue but materially short of its byte count (possible on
			// huge transfers, where one ulp of the remainder exceeds the
			// tolerance): re-stamp the drained remainder, as the scan kept
			// answering now + remaining/rate. If the remainder is below the
			// clock's resolution at this date, restamping would reproduce
			// due == to forever (the scan implementation livelocked at
			// kernel level in this state) — complete instead.
			n.heap.Pop()
			n.drain(f, to)
			if to+core.Duration(f.remaining/f.rate) <= to {
				n.completed = append(n.completed, f)
				continue
			}
			if n.stats != nil {
				n.stats.Restamps++
			}
			n.stamp(f, to)
			continue
		}
		break
	}
	if len(n.promoted) == 0 && len(n.completed) == 0 {
		return
	}

	// Promote in start order so LMM variables are created in the order the
	// scan implementation created them (variable serials seed component
	// ordering, so this keeps allocations bit-identical).
	slices.SortFunc(n.promoted, func(a, b *flow) int { return cmp.Compare(a.seq, b.seq) })
	for _, f := range n.promoted {
		f.started = true
		f.lastSync = to
		if f.remaining <= 0 {
			// Zero-byte control flow: completes below, never joins sharing.
			n.completed = append(n.completed, f)
			continue
		}
		if n.Contention {
			f.v = n.sys.NewVariable("flow", 1, f.bound)
			f.v.Data = f
			for _, l := range f.route.Links {
				n.sys.Attach(f.v, n.constraint(l))
			}
		} else {
			// No sharing: the flow drains at its cap from promotion on.
			f.rate = f.bound
			n.checkStalled(f)
			n.stamp(f, to)
		}
	}

	// Complete in start order — the wakeup order the scan produced.
	slices.SortFunc(n.completed, func(a, b *flow) int { return cmp.Compare(a.seq, b.seq) })
	for _, f := range n.completed {
		if f.v != nil {
			n.sys.RemoveVariable(f.v)
			f.v = nil
		}
		if n.stats != nil {
			n.stats.Completions++
		}
		if n.usage != nil && f.remaining > 0 {
			// The final remainder — the bytes between the flow's last sync
			// and delivery, within byteTol of rate x interval — closes the
			// flow's segment stream at exactly its size, so per-link totals
			// conserve bytes with no tolerance at all.
			for _, l := range f.route.Links {
				n.usage.RecordLink(l, f.lastSync, to, f.remaining)
			}
		}
		f.gen++ // invalidate any remaining heap entries
		n.inFlight--
		n.kernel.Fulfill(f.future, nil)
	}

	if n.Contention {
		n.reshare(to)
	}
}
