package surf

import (
	"smpigo/internal/core"
	"smpigo/internal/lmm"
	"smpigo/internal/platform"
	"smpigo/internal/surf/actionheap"
)

// NetworkStats accumulates event-path counters of a Network when attached
// via Instrument. Every hook is a nil check; an uninstrumented network pays
// nothing.
type NetworkStats struct {
	// FlowsStarted counts routed flows; Loopbacks counts empty-route
	// transfers served by the loopback fast path (they never join sharing).
	FlowsStarted uint64
	Loopbacks    uint64
	// Completions counts flows delivered.
	Completions uint64
	// Syncs counts lazy byte-drain syncs — one per flow whose rate a reshare
	// changed, plus the overdue-restamp drains.
	Syncs uint64
	// Restamps counts overdue completion entries that were re-stamped
	// instead of completed (floating-point drift on huge transfers).
	Restamps uint64
}

// CPUStats accumulates event-path counters of a CPU model, mirroring
// NetworkStats for compute tasks.
type CPUStats struct {
	TasksStarted uint64
	Completions  uint64
	Syncs        uint64
	Restamps     uint64
}

// UsageRecorder receives the byte and flop segments the lazy drain already
// computes: every time a flow or task is synced (its rate is about to
// change) or completes, the amount drained since its last sync is reported
// with the simulated interval it drained over. The segments for one flow
// sum exactly to its size — recording is piggybacked on the sync points,
// never recomputed — which is what makes per-link accounting conservative
// by construction (see internal/obs and its conservation test).
//
// Implementations must not retain the link/host pointers beyond the call
// graph of the owning model (they are stable platform handles, so retaining
// them is in fact safe, but treat segments as a stream).
type UsageRecorder interface {
	// RecordLink reports bytes drained over every link of a flow's route
	// during (from, to]. from == to happens for the final remainder of a
	// flow completing at its last sync date.
	RecordLink(l *platform.Link, from, to core.Time, bytes float64)
	// RecordHost reports flops drained on a host during (from, to].
	RecordHost(h *platform.Host, from, to core.Time, flops float64)
}

// Instrument attaches observability sinks to the network: event-path
// counters, the underlying LMM solver's counters, the action heap's
// counters, and a usage recorder receiving drained byte segments. Any of
// them may be nil; with all nil the network is back to zero overhead.
// Attach before the simulation runs.
func (n *Network) Instrument(stats *NetworkStats, lmmStats *lmm.Stats, heapStats *actionheap.Stats, usage UsageRecorder) {
	n.stats = stats
	n.sys.Stats = lmmStats
	n.heap.Stats = heapStats
	n.usage = usage
}

// Instrument attaches observability sinks to the CPU model, mirroring
// Network.Instrument for compute tasks.
func (c *CPU) Instrument(stats *CPUStats, lmmStats *lmm.Stats, heapStats *actionheap.Stats, usage UsageRecorder) {
	c.stats = stats
	c.sys.Stats = lmmStats
	c.heap.Stats = heapStats
	c.usage = usage
}
