package surf_test

// Event-path benchmarks: the per-event cost of a live simulation churning a
// steady population of flows (or compute tasks), the workload whose
// NextEvent/Advance scans PR 3 left O(population) per kernel step. With the
// completion-time min-heap, NextEvent is an O(1) peek and each churn event
// (one completion + one start + the touched components' re-solve + restamp)
// costs O(log n) heap work — per-event time should stay nearly flat from
// 256 to 1024 hosts, where the linear scan grew ~4x. BENCH_event.json
// records the measured before/after.
//
// Two traffic shapes:
//
//   - neighbor: host i streams to its ring successor — the steady state of
//     the ring collectives; components are tiny, so the O(n) scans were the
//     dominant cost and the heap's payoff is largest;
//   - random: every host streams to a random peer under its own leaf
//     switch, with randomized sizes, so completions hit the heap in
//     adversarial (uniformly random) order while LMM components stay
//     bounded by the leaf radix. (Unbounded cross-spine random traffic
//     measures the solver's giant-component cost instead — that case is
//     BenchmarkLMMIncremental/random512's job.)
//
// The cpu shape churns one compute task per host with randomized flop
// counts: per-host components are singletons, isolating the pure event-path
// cost of the CPU model.

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"smpigo/internal/core"
	"smpigo/internal/lmm"
	"smpigo/internal/platform"
	"smpigo/internal/simix"
	"smpigo/internal/surf"
	"smpigo/internal/surf/actionheap"
	"smpigo/internal/topology"
)

// benchCounters reports whether the benchgate -counters mode asked the
// benchmarks to run instrumented (see cmd/benchgate). The default, off,
// measures the uninstrumented hot path — the zero-overhead contract the
// gate baselines pin.
func benchCounters() bool { return os.Getenv("SMPIGO_BENCH_COUNTERS") != "" }

// shapes256/1024: two- and three-level fat-trees with 16-host leaves.
const (
	shape256  = "fattree:16x16:1x16"
	shape1024 = "fattree:16x8x8:1x8x8"
)

func buildPlatform(b *testing.B, shape string) *platform.Platform {
	b.Helper()
	spec, err := topology.ParseSpec(shape)
	if err != nil {
		b.Fatal(err)
	}
	plat, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	return plat
}

// benchNetEventPath drives a kernel with one in-flight flow per host; every
// completion immediately starts a successor (the churn pattern the smpi
// layer generates), for b.N completion events.
func benchNetEventPath(b *testing.B, shape string, random bool) {
	plat := buildPlatform(b, shape)
	hosts := plat.Hosts()
	// Hosts of the same leaf switch, for leaf-local random traffic.
	byLeaf := make(map[int][]int)
	for i, h := range hosts {
		byLeaf[h.Cabinet] = append(byLeaf[h.Cabinet], i)
	}

	k := simix.New()
	n := surf.NewNetwork(k, surf.Ideal())
	k.AddModel(n)
	var netStats surf.NetworkStats
	var lmmStats lmm.Stats
	var heapStats actionheap.Stats
	if benchCounters() {
		n.Instrument(&netStats, &lmmStats, &heapStats, nil)
	}
	rng := rand.New(rand.NewSource(11))

	size := func() int64 { return 256*core.KiB + rng.Int63n(256*core.KiB) }
	pair := func(slot int) (int, int) {
		if !random {
			return slot, (slot + 1) % len(hosts)
		}
		leaf := byLeaf[hosts[slot].Cabinet]
		dst := leaf[rng.Intn(len(leaf)-1)]
		if dst == slot {
			dst = leaf[len(leaf)-1]
		}
		return slot, dst
	}

	// Completion callbacks only record the freed slot and wake the driver;
	// the driver actor restarts the slots from actor context (the StartFlow
	// contract), one scheduling round per kernel step however many flows
	// completed in it.
	events := 0
	var pending []int
	wake := simix.NewFuture()
	start := func(slot int) {
		f := simix.NewFuture()
		src, dst := pair(slot)
		n.StartFlow(plat.Route(hosts[src], hosts[dst]), size(), f)
		k.OnFulfill(f, func(any) {
			events++
			pending = append(pending, slot)
			k.Fulfill(wake, nil)
		})
	}
	k.Spawn("driver", func(p *simix.Proc) {
		for i := range hosts {
			start(i)
		}
		for events < b.N {
			p.Wait(wake)
			wake = simix.NewFuture()
			slots := pending
			pending = pending[:0]
			for _, slot := range slots {
				start(slot)
			}
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	if benchCounters() && b.N > 0 {
		per := 1 / float64(b.N)
		b.ReportMetric(float64(netStats.Syncs)*per, "syncs/op")
		b.ReportMetric(float64(lmmStats.Components)*per, "components/op")
		b.ReportMetric(float64(lmmStats.DirtyConstraints)*per, "dirtycons/op")
		b.ReportMetric(float64(heapStats.Stale)*per, "stale/op")
	}
}

// benchCPUEventPath churns one compute task per host for b.N completions.
func benchCPUEventPath(b *testing.B, nhosts int) {
	plat := platform.New("bench")
	hosts := make([]*platform.Host, nhosts)
	for i := range hosts {
		hosts[i] = plat.AddHost(fmt.Sprintf("h%d", i), 1e9)
	}
	k := simix.New()
	cpu := surf.NewCPU(k)
	k.AddModel(cpu)
	var cpuStats surf.CPUStats
	var lmmStats lmm.Stats
	var heapStats actionheap.Stats
	if benchCounters() {
		cpu.Instrument(&cpuStats, &lmmStats, &heapStats, nil)
	}
	rng := rand.New(rand.NewSource(11))

	events := 0
	var pending []int
	wake := simix.NewFuture()
	start := func(slot int) {
		f := cpu.Execute(hosts[slot], 1e6*(1+rng.Float64()))
		k.OnFulfill(f, func(any) {
			events++
			pending = append(pending, slot)
			k.Fulfill(wake, nil)
		})
	}
	k.Spawn("driver", func(p *simix.Proc) {
		for i := range hosts {
			start(i)
		}
		for events < b.N {
			p.Wait(wake)
			wake = simix.NewFuture()
			slots := pending
			pending = pending[:0]
			for _, slot := range slots {
				start(slot)
			}
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	if benchCounters() && b.N > 0 {
		per := 1 / float64(b.N)
		b.ReportMetric(float64(cpuStats.Syncs)*per, "syncs/op")
		b.ReportMetric(float64(lmmStats.Components)*per, "components/op")
		b.ReportMetric(float64(heapStats.Stale)*per, "stale/op")
	}
}

// BenchmarkEventPath measures the per-event cost of the live event path at
// 256 and 1024 hosts. The acceptance property of the heap rewrite is the
// scaling ratio: per-event time at 1024 hosts within ~2x of 256 hosts
// (the linear scans scaled ~4x).
func BenchmarkEventPath(b *testing.B) {
	b.Run("net-neighbor-256", func(b *testing.B) { benchNetEventPath(b, shape256, false) })
	b.Run("net-neighbor-1024", func(b *testing.B) { benchNetEventPath(b, shape1024, false) })
	b.Run("net-random-256", func(b *testing.B) { benchNetEventPath(b, shape256, true) })
	b.Run("net-random-1024", func(b *testing.B) { benchNetEventPath(b, shape1024, true) })
	b.Run("cpu-256", func(b *testing.B) { benchCPUEventPath(b, 256) })
	b.Run("cpu-1024", func(b *testing.B) { benchCPUEventPath(b, 1024) })
}
