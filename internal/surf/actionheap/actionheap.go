// Package actionheap provides the completion-time min-heap with lazy
// invalidation shared by the kernel's resource models (surf.Network,
// surf.CPU, emu.Net). It is the data structure that makes the event path
// sublinear in population: a model answers NextEvent with an O(1) peek at
// the earliest stamped date instead of scanning every in-flight action, and
// each churn event (an action starting, completing, or changing rate) costs
// one O(log n) heap operation.
//
// # Lazy invalidation
//
// Entries are never removed or re-keyed in place. An action carries a
// generation stamp (its Generation method); every entry records the stamp it
// was pushed with. When an action's date changes — in surf, exactly when
// lmm.Solve's Resolved() set hands the model a new rate — the model bumps
// the action's generation and pushes a fresh entry; the old entry stays in
// the heap and is discarded when it surfaces, because its recorded stamp no
// longer matches the action's. Completion likewise bumps the generation, so
// any remaining entries for a finished action evaporate on contact.
//
// This is the classical SimGrid SURF "lazy heap" design: invalidation costs
// nothing at mutation time, and stale entries are paid for once, O(log n)
// each, when they reach the top.
//
// # Determinism
//
// Ties on the date are broken by push sequence, so pop order — and therefore
// everything downstream of it: model wakeup order, actor scheduling, the
// simulated timestamps of a whole campaign — depends only on the order of
// Push calls, never on heap internals. Models that need a different tie
// order among simultaneous events (surf completes flows in start order, not
// restamp order) collect the qualifying pops first and sort them by their
// own serial.
package actionheap

import "smpigo/internal/core"

// Stamped is an action whose heap entries can be lazily invalidated. An
// entry pushed with generation g is valid while the action's Generation()
// still returns g; bumping the generation invalidates every entry pushed
// before the bump. Actions whose dates are immutable (e.g. emu's packet-hop
// events) can return a constant.
type Stamped interface {
	Generation() uint64
}

// entry is one (date, action, stamp) record in the heap.
type entry[T Stamped] struct {
	due    core.Time
	seq    uint64
	gen    uint64
	action T
}

// Stats accumulates heap counters when attached via the Stats field. Stale
// counts the lazily discarded entries — the price of lazy invalidation —
// and MaxLen the raw high-water entry count including stale ones, which
// together say how much dead weight the heap carried. Every hook is a nil
// check; a heap without stats attached pays nothing.
type Stats struct {
	Pushes uint64
	// Pops counts valid entries handed to the model (Pop with ok == true).
	Pops uint64
	// Stale counts invalidated entries discarded by lazy pruning.
	Stale uint64
	// MaxLen is the high-water raw entry count, stale entries included.
	MaxLen int
}

// Heap is a binary min-heap of stamped actions ordered by date, then push
// sequence. The zero value is ready to use. Len counts raw entries
// including stale ones; Peek, Pop, and NextDue prune stale entries from the
// top before answering, so their results always describe a live action.
type Heap[T Stamped] struct {
	items []entry[T]
	seq   uint64

	// Stats, when non-nil, accumulates push/pop/stale counters.
	Stats *Stats
}

// Len reports the number of entries currently stored, including stale ones
// awaiting lazy discard (for tests and stats).
func (h *Heap[T]) Len() int { return len(h.items) }

// Push schedules action at date due under generation gen. The entry is
// valid while action.Generation() == gen.
func (h *Heap[T]) Push(action T, due core.Time, gen uint64) {
	h.items = append(h.items, entry[T]{due: due, seq: h.seq, gen: gen, action: action})
	h.seq++
	h.up(len(h.items) - 1)
	if h.Stats != nil {
		h.Stats.Pushes++
		if len(h.items) > h.Stats.MaxLen {
			h.Stats.MaxLen = len(h.items)
		}
	}
}

// prune discards stale entries from the top until the heap is empty or the
// top entry is valid.
func (h *Heap[T]) prune() {
	for len(h.items) > 0 && h.items[0].gen != h.items[0].action.Generation() {
		h.popTop()
		if h.Stats != nil {
			h.Stats.Stale++
		}
	}
}

// Peek returns the earliest valid action and its date without removing it.
// ok is false when no valid entry remains.
func (h *Heap[T]) Peek() (action T, due core.Time, ok bool) {
	h.prune()
	if len(h.items) == 0 {
		var zero T
		return zero, 0, false
	}
	return h.items[0].action, h.items[0].due, true
}

// Pop removes and returns the earliest valid action and its date. ok is
// false when no valid entry remains.
func (h *Heap[T]) Pop() (action T, due core.Time, ok bool) {
	h.prune()
	if len(h.items) == 0 {
		var zero T
		return zero, 0, false
	}
	top := h.items[0]
	h.popTop()
	if h.Stats != nil {
		h.Stats.Pops++
	}
	return top.action, top.due, true
}

// NextDue returns the date of the earliest valid entry, or core.TimeForever
// when none remains — exactly the simix.Model NextEvent contract.
func (h *Heap[T]) NextDue() core.Time {
	h.prune()
	if len(h.items) == 0 {
		return core.TimeForever
	}
	return h.items[0].due
}

func (h *Heap[T]) popTop() {
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero entry[T]
	h.items[last] = zero // release the action for GC
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
}

func (h *Heap[T]) less(i, j int) bool {
	a, b := &h.items[i], &h.items[j]
	if a.due != b.due {
		return a.due < b.due
	}
	return a.seq < b.seq
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.items) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
