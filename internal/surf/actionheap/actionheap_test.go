package actionheap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"smpigo/internal/core"
)

// stampedAction is the test double: a mutable action whose current (due,
// gen) pair is the reference state the heap must agree with.
type stampedAction struct {
	id   int
	due  core.Time
	gen  uint64
	dead bool
}

func (a *stampedAction) Generation() uint64 { return a.gen }

// scanMin is the exhaustive reference: the earliest (due, restamp-order)
// live action, the linear scan the heap replaces.
func scanMin(live []*stampedAction) core.Time {
	next := core.TimeForever
	for _, a := range live {
		if !a.dead && a.due < next {
			next = a.due
		}
	}
	return next
}

// TestHeapMatchesScanUnderChurn is the property test of the tentpole: after
// every mutation (start, restamp, completion) of a fuzzed churn sequence,
// the heap's NextDue equals the exhaustive scan over the live population.
func TestHeapMatchesScanUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Heap[*stampedAction]
	var all []*stampedAction
	now := core.Time(0)
	nextID := 0

	start := func() {
		a := &stampedAction{id: nextID, due: now + core.Time(rng.Float64())}
		nextID++
		all = append(all, a)
		h.Push(a, a.due, a.gen)
	}
	liveActions := func() []*stampedAction {
		var live []*stampedAction
		for _, a := range all {
			if !a.dead {
				live = append(live, a)
			}
		}
		return live
	}
	for i := 0; i < 16; i++ {
		start()
	}
	for step := 0; step < 5000; step++ {
		now += core.Time(rng.Float64() * 0.01)
		live := liveActions()
		switch op := rng.Intn(3); {
		case op == 0 || len(live) == 0: // start a new action
			start()
		case op == 1: // restamp a random live action (rate change)
			a := live[rng.Intn(len(live))]
			a.gen++
			a.due = now + core.Time(rng.Float64())
			h.Push(a, a.due, a.gen)
		default: // complete a random live action
			a := live[rng.Intn(len(live))]
			a.gen++ // completion invalidates any remaining entries
			a.dead = true
		}
		if got, want := h.NextDue(), scanMin(liveActions()); got != want {
			t.Fatalf("step %d: heap NextDue %v, exhaustive scan %v", step, got, want)
		}
	}
}

// TestLazyInvalidationStress restamps a fixed population thousands of times
// without any completions — the pure rate-churn case. The heap must keep
// answering the scan's minimum, and the stale entries must actually be
// discarded once they surface (bounded growth across drains).
func TestLazyInvalidationStress(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Heap[*stampedAction]
	const population = 64
	live := make([]*stampedAction, population)
	for i := range live {
		live[i] = &stampedAction{id: i, due: core.Time(rng.Float64())}
		h.Push(live[i], live[i].due, live[i].gen)
	}
	for step := 0; step < 20000; step++ {
		a := live[rng.Intn(population)]
		a.gen++
		a.due = core.Time(rng.Float64())
		h.Push(a, a.due, a.gen)
		if got, want := h.NextDue(), scanMin(live); got != want {
			t.Fatalf("step %d: heap NextDue %v, scan %v", step, got, want)
		}
	}
	// Drain: every live action pops exactly once, in due order, and every
	// stale entry is discarded on the way.
	prev := core.Time(-1)
	for popped := 0; popped < population; popped++ {
		a, due, ok := h.Pop()
		if !ok {
			t.Fatalf("heap empty after %d pops, want %d", popped, population)
		}
		if due != a.due || due < prev {
			t.Fatalf("pop %d: got (%v, action due %v), prev %v — stale entry leaked", popped, due, a.due, prev)
		}
		prev = due
		a.gen++ // completed: invalidate anything left for it
	}
	if _, _, ok := h.Pop(); ok {
		t.Error("heap should be empty after all live actions popped")
	}
	if h.Len() != 0 {
		t.Errorf("heap holds %d entries after full drain, want 0", h.Len())
	}
}

// TestPopTieBreak: equal dates pop in push order, the determinism contract
// the models' wakeup ordering builds on.
func TestPopTieBreak(t *testing.T) {
	var h Heap[*stampedAction]
	actions := make([]*stampedAction, 8)
	for i := range actions {
		actions[i] = &stampedAction{id: i, due: 1.5}
		h.Push(actions[i], 1.5, 0)
	}
	for i := range actions {
		a, _, ok := h.Pop()
		if !ok || a.id != i {
			t.Fatalf("pop %d: got action %+v, want id %d (push order)", i, a, i)
		}
		a.gen++
	}
}

// The tests below moved here from core.EventQueue when the simix timer
// queue was ported onto this heap (the EventQueue was deleted); they pin the
// ordering contract the kernel's timers rely on.

// TestOrdering: pops come out in date order regardless of push order.
func TestOrdering(t *testing.T) {
	var h Heap[*stampedAction]
	for _, due := range []core.Time{3, 1, 2} {
		h.Push(&stampedAction{id: int(due)}, due, 0)
	}
	for _, want := range []int{1, 2, 3} {
		a, due, ok := h.Pop()
		if !ok || a.id != want || due != core.Time(want) {
			t.Fatalf("pop order wrong: want id %d, got (%+v, %v, %v)", want, a, due, ok)
		}
	}
	if _, _, ok := h.Pop(); ok {
		t.Error("empty heap should report !ok")
	}
}

// TestFIFOTies: same-date entries pop in push order — the timer-queue FIFO
// guarantee (two futures scheduled for the same date fulfill in the order
// FulfillAt was called).
func TestFIFOTies(t *testing.T) {
	var h Heap[*stampedAction]
	for i := 0; i < 10; i++ {
		h.Push(&stampedAction{id: i}, 1, 0)
	}
	for i := 0; i < 10; i++ {
		if a, _, ok := h.Pop(); !ok || a.id != i {
			t.Fatalf("tie-break not FIFO: got %+v want id %d", a, i)
		}
	}
}

// TestPeekDoesNotConsume: Peek returns the earliest entry and leaves it.
func TestPeekDoesNotConsume(t *testing.T) {
	var h Heap[*stampedAction]
	h.Push(&stampedAction{id: 5}, 5, 0)
	h.Push(&stampedAction{id: 4}, 4, 0)
	if a, due, ok := h.Peek(); !ok || a.id != 4 || due != 4 {
		t.Errorf("Peek = (%+v, %v, %v), want id 4 at date 4", a, due, ok)
	}
	if h.Len() != 2 {
		t.Error("Peek must not consume")
	}
}

// Property: popping a randomly-filled heap yields dates in non-decreasing
// order, with and without interleaved invalidations (the heap's analog of
// the EventQueue's removals).
func TestHeapProperty(t *testing.T) {
	f := func(dates []uint16, invalidateMask []bool) bool {
		var h Heap[*stampedAction]
		var actions []*stampedAction
		for _, d := range dates {
			a := &stampedAction{due: core.Time(d)}
			actions = append(actions, a)
			h.Push(a, a.due, a.gen)
		}
		for i, a := range actions {
			if i < len(invalidateMask) && invalidateMask[i] {
				a.gen++ // invalidate without re-pushing: entry must vanish
			}
		}
		last := core.Time(-1)
		for {
			a, due, ok := h.Pop()
			if !ok {
				break
			}
			if due < last || a.gen != 0 {
				return false
			}
			last = due
		}
		return h.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestEmptyHeap: zero-value heap answers the no-pending-event sentinel.
func TestEmptyHeap(t *testing.T) {
	var h Heap[*stampedAction]
	if got := h.NextDue(); got != core.TimeForever {
		t.Errorf("empty heap NextDue %v, want TimeForever", got)
	}
	if _, _, ok := h.Peek(); ok {
		t.Error("Peek on empty heap reported ok")
	}
	if _, _, ok := h.Pop(); ok {
		t.Error("Pop on empty heap reported ok")
	}
}
