package surf

import (
	"flag"
	"os"
	"testing"

	"smpigo/internal/lmm"
)

// TestMain arms lmm.CheckAfterSolve for the whole surf suite: every solve
// either model triggers is validated against the max-min invariants at the
// solve that produced it, so a solver bug fails here as a panic with the
// violated invariant instead of three layers later as a wrong completion
// date. Benchmark runs are exempt — the BENCH_event.json gate baselines
// assume uninstrumented solves.
func TestMain(m *testing.M) {
	flag.Parse()
	if f := flag.Lookup("test.bench"); f == nil || f.Value.String() == "" {
		lmm.CheckAfterSolve = true
	}
	os.Exit(m.Run())
}
