package surf

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"smpigo/internal/core"
	"smpigo/internal/lmm"
	"smpigo/internal/platform"
	"smpigo/internal/simix"
)

// twoHostPlatform builds a minimal platform: two hosts connected by a pair
// of directed links with the given bandwidth and one-way latency per link.
func twoHostPlatform(bw float64, lat core.Duration) (*platform.Platform, *platform.Host, *platform.Host) {
	p := platform.New("mini")
	a := p.AddHost("a", 1e9)
	b := p.AddHost("b", 1e9)
	up := p.AddLink("up", bw, lat, lmm.Shared)
	down := p.AddLink("down", bw, lat, lmm.Shared)
	p.AddRoute(a, b, []*platform.Link{up, down})
	return p, a, b
}

func runTransfer(t *testing.T, net func(*simix.Kernel) *Network, p *platform.Platform,
	a, b *platform.Host, size int64) core.Time {
	t.Helper()
	k := simix.New()
	n := net(k)
	k.AddModel(n)
	var done core.Time
	k.Spawn("sender", func(pr *simix.Proc) {
		f := simix.NewFuture()
		n.StartFlow(p.Route(a, b), size, f)
		pr.Wait(f)
		done = pr.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return done
}

func TestSingleFlowIdealTiming(t *testing.T) {
	p, a, b := twoHostPlatform(125e6, 10*core.Microsecond)
	done := runTransfer(t, func(k *simix.Kernel) *Network {
		return NewNetwork(k, Ideal())
	}, p, a, b, 1<<20)
	want := 20e-6 + float64(1<<20)/125e6
	if math.Abs(float64(done)-want) > 1e-9 {
		t.Errorf("transfer finished at %v, want %v", done, want)
	}
}

func TestLatencyOnlySmallMessage(t *testing.T) {
	p, a, b := twoHostPlatform(125e6, 10*core.Microsecond)
	done := runTransfer(t, func(k *simix.Kernel) *Network {
		return NewNetwork(k, Ideal())
	}, p, a, b, 1)
	want := 20e-6 + 1/125e6
	if math.Abs(float64(done)-want) > 1e-12 {
		t.Errorf("1-byte transfer at %v, want %v", done, want)
	}
}

func TestModelFactorsApplied(t *testing.T) {
	p, a, b := twoHostPlatform(125e6, 10*core.Microsecond)
	model := Affine("half", 2, 0.5) // double latency, half bandwidth
	done := runTransfer(t, func(k *simix.Kernel) *Network {
		return NewNetwork(k, model)
	}, p, a, b, 1<<20)
	want := 2*20e-6 + float64(1<<20)/(0.5*125e6)
	if math.Abs(float64(done)-want) > 1e-9 {
		t.Errorf("factored transfer at %v, want %v", done, want)
	}
}

func TestPiecewiseSegmentSelection(t *testing.T) {
	m := NetModel{Name: "pwl", Segments: []Segment{
		{MaxBytes: 1024, LatFactor: 1, BwFactor: 2},
		{MaxBytes: 65536, LatFactor: 3, BwFactor: 0.5},
		{MaxBytes: math.MaxInt64, LatFactor: 5, BwFactor: 0.9},
	}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		size int64
		want float64 // LatFactor of expected segment
	}{
		{0, 1}, {1023, 1}, {1024, 3}, {65535, 3}, {65536, 5}, {1 << 30, 5},
	}
	for _, c := range cases {
		if got := m.Segment(c.size).LatFactor; got != c.want {
			t.Errorf("Segment(%d).LatFactor = %v, want %v", c.size, got, c.want)
		}
	}
}

func TestModelValidation(t *testing.T) {
	bad := []NetModel{
		{Name: "empty"},
		{Name: "unsorted", Segments: []Segment{
			{MaxBytes: 100, LatFactor: 1, BwFactor: 1},
			{MaxBytes: 50, LatFactor: 1, BwFactor: 1},
		}},
		{Name: "bounded-last", Segments: []Segment{{MaxBytes: 100, LatFactor: 1, BwFactor: 1}}},
		{Name: "zero-bw", Segments: []Segment{{MaxBytes: math.MaxInt64, LatFactor: 1, BwFactor: 0}}},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %q should be invalid", m.Name)
		}
	}
	if err := DefaultAffine(1).Validate(); err != nil {
		t.Errorf("DefaultAffine invalid: %v", err)
	}
}

func TestTwoFlowsContendOnSharedLink(t *testing.T) {
	// Two flows from the same source share its up-link: each should get
	// half the bandwidth, so both finish at lat + 2*size/bw.
	p := platform.New("star")
	src := p.AddHost("src", 1e9)
	d1 := p.AddHost("d1", 1e9)
	d2 := p.AddHost("d2", 1e9)
	up := p.AddLink("up", 125e6, 10*core.Microsecond, lmm.Shared)
	down1 := p.AddLink("down1", 125e6, 10*core.Microsecond, lmm.Shared)
	down2 := p.AddLink("down2", 125e6, 10*core.Microsecond, lmm.Shared)
	p.AddRoute(src, d1, []*platform.Link{up, down1})
	p.AddRoute(src, d2, []*platform.Link{up, down2})

	k := simix.New()
	n := NewNetwork(k, Ideal())
	k.AddModel(n)
	size := int64(1 << 20)
	var t1, t2 core.Time
	k.Spawn("sender", func(pr *simix.Proc) {
		f1, f2 := simix.NewFuture(), simix.NewFuture()
		n.StartFlow(p.Route(src, d1), size, f1)
		n.StartFlow(p.Route(src, d2), size, f2)
		pr.Wait(f1)
		t1 = pr.Now()
		pr.Wait(f2)
		t2 = pr.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := 20e-6 + 2*float64(size)/125e6
	if math.Abs(float64(t1)-want) > 1e-6 || math.Abs(float64(t2)-want) > 1e-6 {
		t.Errorf("contended finishes at %v, %v; want both ~%v", t1, t2, want)
	}
}

func TestContentionDisabledIgnoresSharing(t *testing.T) {
	p := platform.New("star")
	src := p.AddHost("src", 1e9)
	d1 := p.AddHost("d1", 1e9)
	d2 := p.AddHost("d2", 1e9)
	up := p.AddLink("up", 125e6, 10*core.Microsecond, lmm.Shared)
	down1 := p.AddLink("down1", 125e6, 10*core.Microsecond, lmm.Shared)
	down2 := p.AddLink("down2", 125e6, 10*core.Microsecond, lmm.Shared)
	p.AddRoute(src, d1, []*platform.Link{up, down1})
	p.AddRoute(src, d2, []*platform.Link{up, down2})

	k := simix.New()
	n := NewNetwork(k, Ideal())
	n.Contention = false
	k.AddModel(n)
	size := int64(1 << 20)
	var t1 core.Time
	k.Spawn("sender", func(pr *simix.Proc) {
		f1, f2 := simix.NewFuture(), simix.NewFuture()
		n.StartFlow(p.Route(src, d1), size, f1)
		n.StartFlow(p.Route(src, d2), size, f2)
		pr.Wait(f1)
		t1 = pr.Now()
		pr.Wait(f2)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := 20e-6 + float64(size)/125e6 // full bandwidth each
	if math.Abs(float64(t1)-want) > 1e-6 {
		t.Errorf("no-contention finish at %v, want %v", t1, want)
	}
}

func TestStaggeredFlowsDynamicResharing(t *testing.T) {
	// Flow B starts halfway through flow A: A runs at full rate, then both
	// share, then the survivor speeds back up.
	p, a, b := twoHostPlatform(100, 0) // 100 B/s, zero latency for clean math
	k := simix.New()
	n := NewNetwork(k, Ideal())
	k.AddModel(n)
	var doneA, doneB core.Time
	k.Spawn("driver", func(pr *simix.Proc) {
		fA := simix.NewFuture()
		n.StartFlow(p.Route(a, b), 200, fA) // alone: 2s nominal
		pr.Sleep(1)
		fB := simix.NewFuture()
		n.StartFlow(p.Route(a, b), 100, fB)
		pr.Wait(fA)
		doneA = pr.Now()
		pr.Wait(fB)
		doneB = pr.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// A: 100B in first second, then shares 50/50; remaining 100B at 50B/s
	// -> done at t=3. B: 100B at 50B/s until t=3 (100B drained exactly).
	if math.Abs(float64(doneA)-3) > 1e-9 {
		t.Errorf("A done at %v, want 3", doneA)
	}
	if math.Abs(float64(doneB)-3) > 1e-9 {
		t.Errorf("B done at %v, want 3", doneB)
	}
}

func TestLoopbackFlow(t *testing.T) {
	p := platform.New("solo")
	a := p.AddHost("a", 1e9)
	k := simix.New()
	n := NewNetwork(k, Ideal())
	k.AddModel(n)
	var done core.Time
	k.Spawn("self", func(pr *simix.Proc) {
		f := simix.NewFuture()
		n.StartFlow(p.Route(a, a), 4e9, f)
		pr.Wait(f)
		done = pr.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done <= 0 || done > 2 {
		t.Errorf("loopback of 4GB took %v, want ~1s", done)
	}
}

func TestZeroByteFlowCompletesAfterLatency(t *testing.T) {
	p, a, b := twoHostPlatform(125e6, 10*core.Microsecond)
	done := runTransfer(t, func(k *simix.Kernel) *Network {
		return NewNetwork(k, Ideal())
	}, p, a, b, 0)
	if math.Abs(float64(done)-20e-6) > 1e-12 {
		t.Errorf("zero-byte flow at %v, want latency 20us", done)
	}
}

func TestInFlightAccounting(t *testing.T) {
	p, a, b := twoHostPlatform(125e6, 10*core.Microsecond)
	k := simix.New()
	n := NewNetwork(k, Ideal())
	k.AddModel(n)
	k.Spawn("s", func(pr *simix.Proc) {
		f := simix.NewFuture()
		n.StartFlow(p.Route(a, b), 1000, f)
		if n.InFlight() != 1 {
			t.Error("expected 1 in-flight flow")
		}
		pr.Wait(f)
		if n.InFlight() != 0 {
			t.Error("expected 0 in-flight flows after completion")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCPUExecuteTiming(t *testing.T) {
	p := platform.New("c")
	h := p.AddHost("h", 1e9)
	k := simix.New()
	cpu := NewCPU(k)
	k.AddModel(cpu)
	var done core.Time
	k.Spawn("worker", func(pr *simix.Proc) {
		pr.Wait(cpu.Execute(h, 2.5e9))
		done = pr.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(done)-2.5) > 1e-9 {
		t.Errorf("2.5Gf on 1Gf/s host took %v, want 2.5", done)
	}
}

func TestCPUSharingOnOversubscribedHost(t *testing.T) {
	p := platform.New("c")
	h := p.AddHost("h", 1e9)
	k := simix.New()
	cpu := NewCPU(k)
	k.AddModel(cpu)
	var d1, d2 core.Time
	k.Spawn("w1", func(pr *simix.Proc) {
		pr.Wait(cpu.Execute(h, 1e9))
		d1 = pr.Now()
	})
	k.Spawn("w2", func(pr *simix.Proc) {
		pr.Wait(cpu.Execute(h, 1e9))
		d2 = pr.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Both share the host: each runs at 0.5 Gf/s, done at t=2.
	if math.Abs(float64(d1)-2) > 1e-9 || math.Abs(float64(d2)-2) > 1e-9 {
		t.Errorf("shared compute done at %v, %v; want 2, 2", d1, d2)
	}
}

func TestCPUDelayScalesWithSpeed(t *testing.T) {
	p := platform.New("c")
	h := p.AddHost("h", 2e9)
	k := simix.New()
	cpu := NewCPU(k)
	k.AddModel(cpu)
	var done core.Time
	k.Spawn("w", func(pr *simix.Proc) {
		pr.Wait(cpu.Delay(h, 1.5))
		done = pr.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(done)-1.5) > 1e-9 {
		t.Errorf("Delay(1.5) took %v", done)
	}
}

func TestCPUZeroFlops(t *testing.T) {
	p := platform.New("c")
	h := p.AddHost("h", 1e9)
	k := simix.New()
	cpu := NewCPU(k)
	k.AddModel(cpu)
	k.Spawn("w", func(pr *simix.Proc) {
		pr.Wait(cpu.Execute(h, 0))
		if pr.Now() != 0 {
			t.Errorf("zero flops advanced time to %v", pr.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// Regression: a flow routed over a zero-bandwidth link gets rate 0 and
// would drain forever — NextEvent used to report TimeForever and the
// simulation hung (or died with an unexplained deadlock). It must instead
// fail loudly, naming the route.
func TestZeroBandwidthLinkFailsLoudly(t *testing.T) {
	for _, contention := range []bool{true, false} {
		p := platform.New("dead")
		a := p.AddHost("a", 1e9)
		b := p.AddHost("b", 1e9)
		up := p.AddLink("dead-up", 0, 10*core.Microsecond, lmm.Shared)
		down := p.AddLink("dead-down", 125e6, 10*core.Microsecond, lmm.Shared)
		p.AddRoute(a, b, []*platform.Link{up, down})
		k := simix.New()
		n := NewNetwork(k, Ideal())
		n.Contention = contention
		k.AddModel(n)
		k.Spawn("sender", func(pr *simix.Proc) {
			f := simix.NewFuture()
			n.StartFlow(p.Route(a, b), 1<<20, f)
			pr.Wait(f)
		})
		err := k.Run()
		if err == nil {
			t.Fatalf("contention=%v: zero-bandwidth transfer did not fail", contention)
		}
		if !strings.Contains(err.Error(), "dead-up") {
			t.Errorf("contention=%v: error does not name the route: %v", contention, err)
		}
		if !strings.Contains(err.Error(), "never complete") {
			t.Errorf("contention=%v: error does not explain the stall: %v", contention, err)
		}
	}
}

// Regression: the same stall exists on the compute side for a zero-speed
// host (rate 0 on the host constraint); and Delay must not silently convert
// through the zero speed into 0 flops, vanishing the burst from simulated
// time.
func TestZeroSpeedHostFailsLoudly(t *testing.T) {
	ops := []struct {
		name string
		op   func(*CPU, *platform.Host) *simix.Future
	}{
		{"execute", func(c *CPU, h *platform.Host) *simix.Future { return c.Execute(h, 1e9) }},
		{"delay", func(c *CPU, h *platform.Host) *simix.Future { return c.Delay(h, 1.5) }},
	}
	for _, op := range ops {
		p := platform.New("c")
		h := p.AddHost("powerless", 0)
		k := simix.New()
		cpu := NewCPU(k)
		k.AddModel(cpu)
		k.Spawn("w", func(pr *simix.Proc) {
			pr.Wait(op.op(cpu, h))
		})
		err := k.Run()
		if err == nil {
			t.Fatalf("%s on a zero-speed host did not fail", op.name)
		}
		if !strings.Contains(err.Error(), "powerless") {
			t.Errorf("%s error does not name the host: %v", op.name, err)
		}
	}
}

// Property: on an uncontended route, transfer time is monotone in size and
// exactly latFactor*lat + size/(bwFactor*bw) for the active segment.
func TestTransferTimeFormulaProperty(t *testing.T) {
	p, a, b := twoHostPlatform(125e6, 10*core.Microsecond)
	model := NetModel{Name: "pwl", Segments: []Segment{
		{MaxBytes: 1024, LatFactor: 0.8, BwFactor: 0.3},
		{MaxBytes: 65536, LatFactor: 1.5, BwFactor: 0.6},
		{MaxBytes: math.MaxInt64, LatFactor: 2.5, BwFactor: 0.92},
	}}
	f := func(raw uint32) bool {
		size := int64(raw%(1<<22)) + 1
		done := runTransfer(t, func(k *simix.Kernel) *Network {
			return NewNetwork(k, model)
		}, p, a, b, size)
		seg := model.Segment(size)
		want := seg.LatFactor*20e-6 + float64(size)/(seg.BwFactor*125e6)
		return math.Abs(float64(done)-want) < 1e-6*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
