package surf

import (
	"smpigo/internal/core"
	"smpigo/internal/platform"
	"smpigo/internal/simix"
)

// CPU is the compute model: an Execute action drains a number of flops at
// the host's speed, shared equally among concurrent actions on the same
// host. In typical SMPI runs each rank is alone on its host, but the
// sharing matters when oversubscribing ranks onto nodes.
type CPU struct {
	kernel *simix.Kernel

	now   core.Time
	tasks []*cpuTask
	count map[*platform.Host]int
}

type cpuTask struct {
	host      *platform.Host
	remaining float64
	rate      float64
	future    *simix.Future
}

// NewCPU creates a CPU model bound to kernel.
func NewCPU(kernel *simix.Kernel) *CPU {
	return &CPU{kernel: kernel, count: make(map[*platform.Host]int)}
}

// Execute starts draining flops on host and returns a future fulfilled when
// the work completes. Must be called from actor context.
func (c *CPU) Execute(host *platform.Host, flops float64) *simix.Future {
	f := simix.NewFuture()
	c.now = c.kernel.Now()
	if flops <= 0 {
		c.kernel.FulfillAt(f, nil, c.now)
		return f
	}
	t := &cpuTask{host: host, remaining: flops, future: f}
	c.tasks = append(c.tasks, t)
	c.count[host]++
	c.reshare()
	return f
}

// Delay charges a fixed simulated delay on host, converting through the
// host's speed. It is how measured CPU-burst durations re-enter the
// simulation (paper Section 3.1).
func (c *CPU) Delay(host *platform.Host, d core.Duration) *simix.Future {
	return c.Execute(host, float64(d)*host.Speed)
}

func (c *CPU) reshare() {
	for _, t := range c.tasks {
		t.rate = t.host.Speed / float64(c.count[t.host])
	}
}

// InFlight returns the number of active compute actions.
func (c *CPU) InFlight() int { return len(c.tasks) }

// NextEvent implements simix.Model.
func (c *CPU) NextEvent() core.Time {
	next := core.TimeForever
	for _, t := range c.tasks {
		if t.rate > 0 {
			if done := c.now + core.Duration(t.remaining/t.rate); done < next {
				next = done
			}
		}
	}
	return next
}

// Advance implements simix.Model.
func (c *CPU) Advance(to core.Time) {
	dt := float64(to - c.now)
	if dt < 0 {
		return
	}
	c.now = to
	changed := false
	live := c.tasks[:0]
	for _, t := range c.tasks {
		t.remaining -= t.rate * dt
		if t.remaining <= 1e-9*t.rate {
			c.count[t.host]--
			c.kernel.Fulfill(t.future, nil)
			changed = true
			continue
		}
		live = append(live, t)
	}
	c.tasks = live
	if changed {
		c.reshare()
	}
}
