package surf

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"smpigo/internal/core"
	"smpigo/internal/lmm"
	"smpigo/internal/platform"
	"smpigo/internal/simix"
	"smpigo/internal/surf/actionheap"
)

// CPU is the compute model: an Execute action drains a number of flops at
// the host's speed, shared among concurrent actions on the same host. In
// typical SMPI runs each rank is alone on its host, but the sharing matters
// when oversubscribing ranks onto nodes.
//
// Sharing runs through the same LMM machinery as the network model: each
// host is a Shared constraint with capacity equal to its speed, each task a
// weight-1 variable crossing only that constraint. Per-host components are
// disjoint, so the incremental solver reshapes only the host whose task set
// changed — starting or finishing a task on one host never recomputes the
// rest of the machine.
//
// Like the network model, the event path is heap-based: each task's stamped
// completion date lives in a lazy min-heap, NextEvent is an O(1) peek, and
// only tasks whose rate the solver actually changed are drained and
// restamped — never the whole population.
type CPU struct {
	kernel *simix.Kernel

	now  core.Time
	sys  *lmm.System
	cons map[*platform.Host]*lmm.Constraint

	heap     actionheap.Heap[*cpuTask]
	inFlight int
	startSeq uint64

	completed []*cpuTask

	// Observability sinks (see Instrument); nil by default, nil costs
	// nothing.
	stats *CPUStats
	usage UsageRecorder
}

type cpuTask struct {
	host   *platform.Host
	future *simix.Future
	v      *lmm.Variable

	// remaining flops at lastSync, draining at rate; synced lazily when the
	// rate changes or the completion tolerance is checked.
	remaining float64
	lastSync  core.Time
	rate      float64

	seq uint64 // start serial: simultaneous completions fulfill in start order
	gen uint64 // actionheap generation stamp
}

// Generation implements actionheap.Stamped.
func (t *cpuTask) Generation() uint64 { return t.gen }

// NewCPU creates a CPU model bound to kernel.
func NewCPU(kernel *simix.Kernel) *CPU {
	return &CPU{
		kernel: kernel,
		sys:    lmm.New(),
		cons:   make(map[*platform.Host]*lmm.Constraint),
	}
}

func (c *CPU) constraint(h *platform.Host) *lmm.Constraint {
	con, ok := c.cons[h]
	if !ok {
		con = c.sys.NewConstraint(h.Name(), h.Speed, lmm.Shared)
		c.cons[h] = con
	}
	return con
}

// Execute starts draining flops on host and returns a future fulfilled when
// the work completes. Must be called from actor context.
func (c *CPU) Execute(host *platform.Host, flops float64) *simix.Future {
	f := simix.NewFuture()
	c.now = c.kernel.Now()
	if flops <= 0 {
		c.kernel.FulfillAt(f, nil, c.now)
		return f
	}
	if c.stats != nil {
		c.stats.TasksStarted++
	}
	t := &cpuTask{host: host, remaining: flops, future: f, lastSync: c.now, seq: c.startSeq}
	c.startSeq++
	t.v = c.sys.NewVariable(host.Name(), 1, math.Inf(1))
	t.v.Data = t
	c.sys.Attach(t.v, c.constraint(host))
	c.inFlight++
	c.reshare(c.now)
	return f
}

// Delay charges a fixed simulated delay on host, converting through the
// host's speed. It is how measured CPU-burst durations re-enter the
// simulation (paper Section 3.1).
func (c *CPU) Delay(host *platform.Host, d core.Duration) *simix.Future {
	if d > 0 && host.Speed <= 0 {
		// Converting through a zero speed would yield 0 flops and silently
		// drop the burst from simulated time instead of stalling on the
		// host constraint; fail as loudly as a stalled Execute does.
		panic(fmt.Sprintf("surf: %v compute delay on host %q with speed %g would be silently lost",
			d, host.Name(), host.Speed))
	}
	return c.Execute(host, float64(d)*host.Speed)
}

// SetHostSpeed changes the compute capacity the sharing system enforces for
// host from the current date on. Like Network.SetLinkBandwidth, the
// platform's Host.Speed stays the immutable nominal description; the
// effective speed lives in this model's LMM constraint, the reshare drains
// every re-solved task at its outgoing rate before the new one applies (flop
// integrals stay exact), and untouched hosts keep their rates and stamped
// dates bit-for-bit.
//
// A speed of zero fails the host: any running task is allocated rate 0 and
// the reshare panics loudly — failure detection, not fault tolerance. Note
// that Delay converts durations through the nominal Host.Speed, so a burst
// on a host slowed to a fraction q takes 1/q times its measured duration:
// the measured work is fixed in flops, the degraded host drains it slower.
func (c *CPU) SetHostSpeed(host *platform.Host, speed float64) {
	if speed < 0 || math.IsNaN(speed) {
		panic(fmt.Sprintf("surf: invalid speed %v for host %q", speed, host.Name()))
	}
	c.now = c.kernel.Now()
	c.sys.SetCapacity(c.constraint(host), speed)
	// Reshare immediately: a change fired from a timer callback must take
	// effect at its date even when no task starts or completes there.
	c.reshare(c.now)
}

// HostSpeed returns the compute capacity currently enforced for host: the
// last SetHostSpeed value, or the platform's nominal speed if it was never
// changed.
func (c *CPU) HostSpeed(host *platform.Host) float64 {
	if con, ok := c.cons[host]; ok {
		return con.Capacity
	}
	return host.Speed
}

// SetSolverWorkers bounds the LMM worker pool for the CPU model (the mirror
// of Network.SetSolverWorkers; host components are per-host and tiny, so
// the pool rarely engages, but the knob keeps both models symmetric).
func (c *CPU) SetSolverWorkers(workers int) { c.sys.SetSolverWorkers(workers) }

// SetRateTolerance opts the CPU model's solver into bounded staleness (the
// mirror of Network.SetRateTolerance).
func (c *CPU) SetRateTolerance(eps float64) { c.sys.SetRateTolerance(eps) }

// sync drains t's flop count to date to at its current rate.
func (t *cpuTask) sync(to core.Time) {
	t.remaining -= t.rate * float64(to-t.lastSync)
	t.lastSync = to
}

// drain is sync with the drained flop segment reported to the
// observability sinks (the CPU mirror of Network.drain).
func (c *CPU) drain(t *cpuTask, to core.Time) {
	if c.stats != nil {
		c.stats.Syncs++
	}
	if c.usage != nil {
		if flops := t.rate * float64(to-t.lastSync); flops > 0 {
			c.usage.RecordHost(t.host, t.lastSync, to, flops)
		}
	}
	t.sync(to)
}

// stamp records t's completion date as a fresh heap entry, invalidating any
// earlier entry.
func (c *CPU) stamp(t *cpuTask, at core.Time) {
	t.gen++
	c.heap.Push(t, at+core.Duration(t.remaining/t.rate), t.gen)
}

// reshare refreshes task rates after the task population changed at date to.
// Only the components the LMM dirty set touched are re-solved, and only
// their tasks are drained and restamped — starting or finishing a task on
// one host costs that host's component, not the machine.
func (c *CPU) reshare(to core.Time) {
	c.sys.Solve()
	for _, v := range c.sys.Resolved() {
		t := v.Data.(*cpuTask)
		c.drain(t, to)
		t.rate = v.Value
		if t.rate <= 0 {
			panic(fmt.Sprintf(
				"surf: compute task with %g flops remaining on host %q allocated rate 0 (host speed %g); it would never complete",
				t.remaining, t.host.Name(), t.host.Speed))
		}
		c.stamp(t, to)
	}
}

// InFlight returns the number of active compute actions.
func (c *CPU) InFlight() int { return c.inFlight }

// NextEvent implements simix.Model: an O(1) peek at the earliest stamped
// completion date.
func (c *CPU) NextEvent() core.Time {
	return c.heap.NextDue()
}

// Advance implements simix.Model: completes every task whose flops have
// drained by date to and reshares the touched host components. The
// completion tolerance is the scan implementation's: a task finishes once
// its drained remainder is within 1e-9 of a rate-second of zero.
func (c *CPU) Advance(to core.Time) {
	if to < c.now {
		return
	}
	c.now = to
	c.completed = c.completed[:0]
	for {
		t, due, ok := c.heap.Peek()
		if !ok {
			break
		}
		if t.remaining-t.rate*float64(to-t.lastSync) <= 1e-9*t.rate {
			c.heap.Pop()
			c.completed = append(c.completed, t)
			continue
		}
		if due <= to {
			// Overdue but short of its flop count by more than the
			// tolerance (float drift on huge tasks): restamp the drained
			// remainder, as the scan kept answering now + remaining/rate.
			c.heap.Pop()
			c.drain(t, to)
			if c.stats != nil {
				c.stats.Restamps++
			}
			c.stamp(t, to)
			continue
		}
		break
	}
	if len(c.completed) == 0 {
		return
	}
	slices.SortFunc(c.completed, func(a, b *cpuTask) int { return cmp.Compare(a.seq, b.seq) })
	for _, t := range c.completed {
		c.sys.RemoveVariable(t.v)
		t.v = nil
		if c.stats != nil {
			c.stats.Completions++
		}
		if c.usage != nil && t.remaining > 0 {
			// Final remainder: closes the task's segment stream at exactly
			// its flop count (the Network completion path's mirror).
			c.usage.RecordHost(t.host, t.lastSync, to, t.remaining)
		}
		t.gen++
		c.inFlight--
		c.kernel.Fulfill(t.future, nil)
	}
	c.reshare(to)
}
