package surf

import (
	"fmt"
	"math"

	"smpigo/internal/core"
	"smpigo/internal/lmm"
	"smpigo/internal/platform"
	"smpigo/internal/simix"
)

// CPU is the compute model: an Execute action drains a number of flops at
// the host's speed, shared among concurrent actions on the same host. In
// typical SMPI runs each rank is alone on its host, but the sharing matters
// when oversubscribing ranks onto nodes.
//
// Sharing runs through the same LMM machinery as the network model: each
// host is a Shared constraint with capacity equal to its speed, each task a
// weight-1 variable crossing only that constraint. Per-host components are
// disjoint, so the incremental solver reshapes only the host whose task set
// changed — starting or finishing a task on one host never recomputes the
// rest of the machine.
type CPU struct {
	kernel *simix.Kernel

	now   core.Time
	tasks []*cpuTask
	sys   *lmm.System
	cons  map[*platform.Host]*lmm.Constraint
}

type cpuTask struct {
	host      *platform.Host
	remaining float64
	rate      float64
	future    *simix.Future
	v         *lmm.Variable
}

// NewCPU creates a CPU model bound to kernel.
func NewCPU(kernel *simix.Kernel) *CPU {
	return &CPU{
		kernel: kernel,
		sys:    lmm.New(),
		cons:   make(map[*platform.Host]*lmm.Constraint),
	}
}

func (c *CPU) constraint(h *platform.Host) *lmm.Constraint {
	con, ok := c.cons[h]
	if !ok {
		con = c.sys.NewConstraint(h.Name, h.Speed, lmm.Shared)
		c.cons[h] = con
	}
	return con
}

// Execute starts draining flops on host and returns a future fulfilled when
// the work completes. Must be called from actor context.
func (c *CPU) Execute(host *platform.Host, flops float64) *simix.Future {
	f := simix.NewFuture()
	c.now = c.kernel.Now()
	if flops <= 0 {
		c.kernel.FulfillAt(f, nil, c.now)
		return f
	}
	t := &cpuTask{host: host, remaining: flops, future: f}
	t.v = c.sys.NewVariable(host.Name, 1, math.Inf(1))
	t.v.Data = t
	c.sys.Attach(t.v, c.constraint(host))
	c.tasks = append(c.tasks, t)
	c.reshare()
	return f
}

// Delay charges a fixed simulated delay on host, converting through the
// host's speed. It is how measured CPU-burst durations re-enter the
// simulation (paper Section 3.1).
func (c *CPU) Delay(host *platform.Host, d core.Duration) *simix.Future {
	if d > 0 && host.Speed <= 0 {
		// Converting through a zero speed would yield 0 flops and silently
		// drop the burst from simulated time instead of stalling on the
		// host constraint; fail as loudly as a stalled Execute does.
		panic(fmt.Sprintf("surf: %v compute delay on host %q with speed %g would be silently lost",
			d, host.Name, host.Speed))
	}
	return c.Execute(host, float64(d)*host.Speed)
}

// reshare refreshes task rates after the task population changed. Only the
// components the LMM dirty set touched are re-solved and only their
// variables walked, so starting or finishing a task on one host costs that
// host's component, not the machine.
func (c *CPU) reshare() {
	c.sys.Solve()
	for _, v := range c.sys.Resolved() {
		t := v.Data.(*cpuTask)
		t.rate = v.Value
		if t.rate <= 0 {
			panic(fmt.Sprintf(
				"surf: compute task with %g flops remaining on host %q allocated rate 0 (host speed %g); it would never complete",
				t.remaining, t.host.Name, t.host.Speed))
		}
	}
}

// InFlight returns the number of active compute actions.
func (c *CPU) InFlight() int { return len(c.tasks) }

// NextEvent implements simix.Model.
func (c *CPU) NextEvent() core.Time {
	next := core.TimeForever
	for _, t := range c.tasks {
		if t.rate > 0 {
			if done := c.now + core.Duration(t.remaining/t.rate); done < next {
				next = done
			}
		}
	}
	return next
}

// Advance implements simix.Model.
func (c *CPU) Advance(to core.Time) {
	dt := float64(to - c.now)
	if dt < 0 {
		return
	}
	c.now = to
	changed := false
	live := c.tasks[:0]
	for _, t := range c.tasks {
		t.remaining -= t.rate * dt
		if t.remaining <= 1e-9*t.rate {
			c.sys.RemoveVariable(t.v)
			c.kernel.Fulfill(t.future, nil)
			changed = true
			continue
		}
		live = append(live, t)
	}
	c.tasks = live
	if changed {
		c.reshare()
	}
}
