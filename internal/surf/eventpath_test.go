package surf_test

// Event-path equivalence tests: the heap-based Network against a reference
// reimplementation of the pre-heap linear scan (every-step drain, full-scan
// NextEvent), run on identical fuzzed churn schedules.
//
// When every kernel step reshares every live flow's component (single
// shared-link platforms — and the alltoall campaigns the solver smoke
// pins), the lazy drain performs bit-for-bit the same arithmetic as the
// every-step drain, so completion times must be exactly equal. When steps
// interleave across components or with timers, the lazy drain partitions
// the same rate integral into fewer segments, so times agree only to
// floating-point reassociation (ulp-level) precision — that bound is
// asserted too, on a multi-component fat-tree schedule with sleeps.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"smpigo/internal/core"
	"smpigo/internal/lmm"
	"smpigo/internal/platform"
	"smpigo/internal/simix"
	"smpigo/internal/surf"
	"smpigo/internal/topology"
)

// --- reference model: the pre-heap linear scan, kept as a test oracle ---

type scanFlow struct {
	route     platform.Route
	bound     float64
	future    *simix.Future
	latEnd    core.Time
	started   bool
	remaining float64
	v         *lmm.Variable
	rate      float64
}

type scanNet struct {
	kernel *simix.Kernel
	model  surf.NetModel
	now    core.Time
	sys    *lmm.System
	cons   map[*platform.Link]*lmm.Constraint
	flows  []*scanFlow
}

func newScanNet(kernel *simix.Kernel, model surf.NetModel) *scanNet {
	return &scanNet{
		kernel: kernel,
		model:  model,
		sys:    lmm.New(),
		cons:   make(map[*platform.Link]*lmm.Constraint),
	}
}

func (n *scanNet) StartFlow(route platform.Route, size int64, future *simix.Future) {
	n.now = n.kernel.Now()
	seg := n.model.Segment(size)
	n.flows = append(n.flows, &scanFlow{
		route:     route,
		bound:     seg.BwFactor * route.Bottleneck(),
		future:    future,
		latEnd:    n.now + core.Duration(seg.LatFactor)*route.Latency,
		remaining: float64(size),
	})
}

func (n *scanNet) constraint(l *platform.Link) *lmm.Constraint {
	c, ok := n.cons[l]
	if !ok {
		c = n.sys.NewConstraint(l.Name(), l.Bandwidth, l.Policy)
		n.cons[l] = c
	}
	return c
}

func (n *scanNet) reshare() {
	n.sys.Solve()
	for _, v := range n.sys.Resolved() {
		f := v.Data.(*scanFlow)
		f.rate = v.Value
	}
}

func (n *scanNet) NextEvent() core.Time {
	next := core.TimeForever
	for _, f := range n.flows {
		if !f.started {
			if f.latEnd < next {
				next = f.latEnd
			}
		} else if f.rate > 0 {
			if t := n.now + core.Duration(f.remaining/f.rate); t < next {
				next = t
			}
		}
	}
	return next
}

func (n *scanNet) Advance(to core.Time) {
	dt := float64(to - n.now)
	if dt < 0 {
		return
	}
	n.now = to
	changed := false
	for _, f := range n.flows {
		if f.started {
			f.remaining -= f.rate * dt
		}
	}
	for _, f := range n.flows {
		if !f.started && f.latEnd <= to+1e-15 {
			f.started = true
			if f.remaining <= 0 {
				continue
			}
			f.v = n.sys.NewVariable("flow", 1, f.bound)
			f.v.Data = f
			for _, l := range f.route.Links {
				n.sys.Attach(f.v, n.constraint(l))
			}
			changed = true
		}
	}
	live := n.flows[:0]
	for _, f := range n.flows {
		if f.started && f.remaining <= 1e-6 {
			if f.v != nil {
				n.sys.RemoveVariable(f.v)
			}
			n.kernel.Fulfill(f.future, nil)
			changed = true
			continue
		}
		live = append(live, f)
	}
	n.flows = live
	if changed {
		n.reshare()
	}
}

// flowStarter abstracts the two implementations behind one driver.
type flowStarter interface {
	simix.Model
	StartFlow(route platform.Route, size int64, future *simix.Future)
}

// churnSchedule drives an identical fuzzed workload against a starter:
// actors chains of flows with seeded-random sizes and endpoints, optional
// sleeps between them. It returns every flow's completion time, indexed by
// (actor, step).
func churnSchedule(t *testing.T, plat *platform.Platform, mk func(*simix.Kernel) flowStarter,
	actors, steps int, pairs func(rng *rand.Rand) (int, int), sleeps bool) [][]core.Time {
	t.Helper()
	hosts := plat.Hosts()
	k := simix.New()
	net := mk(k)
	k.AddModel(net)
	times := make([][]core.Time, actors)
	for a := 0; a < actors; a++ {
		rng := rand.New(rand.NewSource(int64(1000 + a)))
		times[a] = make([]core.Time, steps)
		rec := times[a]
		k.Spawn(fmt.Sprintf("actor-%d", a), func(p *simix.Proc) {
			for s := 0; s < steps; s++ {
				src, dst := pairs(rng)
				size := rng.Int63n(1 << 20)
				if size == 0 {
					size = 1
				}
				f := simix.NewFuture()
				net.StartFlow(plat.Route(hosts[src], hosts[dst]), size, f)
				p.Wait(f)
				rec[s] = p.Now()
				if sleeps && rng.Intn(4) == 0 {
					p.Sleep(core.Duration(rng.Float64()) * core.Microsecond)
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return times
}

// TestHeapMatchesScanExactSingleComponent: on a dumbbell platform every
// flow crosses the same shared links, so every churn event reshares every
// live flow; the lazy drain then syncs at exactly the dates the reference
// drains at, and completion times must be bit-identical.
func TestHeapMatchesScanExactSingleComponent(t *testing.T) {
	p := platform.New("dumbbell")
	a := p.AddHost("a", 1e9)
	b := p.AddHost("b", 1e9)
	up := p.AddLink("up", 125e6, 10*core.Microsecond, lmm.Shared)
	down := p.AddLink("down", 125e6, 10*core.Microsecond, lmm.Shared)
	p.AddRoute(a, b, []*platform.Link{up, down})

	pairs := func(*rand.Rand) (int, int) { return 0, 1 }
	const actors, steps = 8, 40
	heap := churnSchedule(t, p, func(k *simix.Kernel) flowStarter {
		return surf.NewNetwork(k, surf.Ideal())
	}, actors, steps, pairs, false)
	scan := churnSchedule(t, p, func(k *simix.Kernel) flowStarter {
		return newScanNet(k, surf.Ideal())
	}, actors, steps, pairs, false)

	for a := range heap {
		for s := range heap[a] {
			if heap[a][s] != scan[a][s] {
				t.Fatalf("actor %d flow %d: heap completion %.17g, scan %.17g (want bit-identical)",
					a, s, float64(heap[a][s]), float64(scan[a][s]))
			}
		}
	}
}

// TestHeapMatchesScanUlpMultiComponent: random pairs on a fat-tree with
// sleeps interleave kernel steps across disjoint LMM components and timers.
// There the lazy drain legitimately reassociates the drain arithmetic, so
// completion times are mathematically equal but may differ at ulp level;
// assert the tight relative bound.
func TestHeapMatchesScanUlpMultiComponent(t *testing.T) {
	spec, err := topology.ParseSpec("fattree16")
	if err != nil {
		t.Fatal(err)
	}
	plat, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	nhosts := len(plat.Hosts())
	pairs := func(rng *rand.Rand) (int, int) {
		src := rng.Intn(nhosts)
		dst := rng.Intn(nhosts - 1)
		if dst >= src {
			dst++
		}
		return src, dst
	}
	const actors, steps = 12, 30
	heap := churnSchedule(t, plat, func(k *simix.Kernel) flowStarter {
		return surf.NewNetwork(k, surf.Ideal())
	}, actors, steps, pairs, true)
	scan := churnSchedule(t, plat, func(k *simix.Kernel) flowStarter {
		return newScanNet(k, surf.Ideal())
	}, actors, steps, pairs, true)

	for a := range heap {
		for s := range heap[a] {
			h, sc := float64(heap[a][s]), float64(scan[a][s])
			if diff := math.Abs(h - sc); diff > 1e-12*math.Max(1, math.Abs(sc)) {
				t.Fatalf("actor %d flow %d: heap completion %.17g vs scan %.17g (|diff| %g beyond ulp bound)",
					a, s, h, sc, diff)
			}
		}
	}
}
