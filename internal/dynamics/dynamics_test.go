package dynamics

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"smpigo/internal/core"
	"smpigo/internal/lmm"
	"smpigo/internal/platform"
	"smpigo/internal/simix"
	"smpigo/internal/surf"
)

func TestParseAndCanonicalString(t *testing.T) {
	cases := []struct {
		in, canon string
	}{
		{"@2ms link fattree64-l3-* degrade 0.25", "@0.002s link fattree64-l3-* scale 0.25"},
		{"@8ms link fattree64-l3-* restore", "@0.008s link fattree64-l3-* restore"},
		{"@0s host griffon-5 scale 0.5", "@0s host griffon-5 scale 0.5"},
		{"@1ms host torus64-* fail", "@0.001s host torus64-* fail"},
		{"@500us flow 0->12 4MiB every 1ms x8", "@0.0005s flow 0->12 4194304B every 0.001s x8"},
		{"@0s flow 3->4 1kB", "@0s flow 3->4 1000B"},
		{"@2ms link a-* scale 0.5; @4ms link a-* restore", "@0.002s link a-* scale 0.5; @0.004s link a-* restore"},
	}
	for _, c := range cases {
		s, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := s.String(); got != c.canon {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.canon)
		}
		// The canonical form is a fixed point.
		again, err := Parse(s.String())
		if err != nil {
			t.Errorf("re-parsing %q: %v", s.String(), err)
			continue
		}
		if !reflect.DeepEqual(again, s) {
			t.Errorf("canonical round-trip changed the schedule: %+v vs %+v", again, s)
		}
	}
}

func TestParseEmptyAndNone(t *testing.T) {
	for _, in := range []string{"", "  ", "none"} {
		s, err := Parse(in)
		if err != nil || s != nil {
			t.Errorf("Parse(%q) = (%v, %v), want (nil, nil)", in, s, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"@2ms",                           // no kind
		"@wat link a-* restore",          // bad date
		"@2ms switch a-* restore",        // unknown kind
		"@2ms link a-* explode",          // unknown verb
		"@2ms link a-* scale",            // missing factor
		"@2ms link a-* scale -1",         // negative factor
		"@2ms link a-* scale 0.5 extra",  // trailing junk
		"@2ms link a-* restore 1",        // restore takes no argument
		"@2ms link [a-* restore",         // malformed glob
		"@2ms flow 0-12 1kB",             // bad endpoints
		"@2ms flow 0->0 1kB",             // self-flow
		"@2ms flow 0->1 0B",              // zero bytes
		"@2ms flow 0->1 1kB every 1ms",   // repeat without count
		"@2ms flow 0->1 1kB every 0s x4", // repeat without period
		"@2ms flow 0->1 1kB x4",          // count without every
		"@-2ms link a-* restore",         // negative date
	}
	for _, in := range bad {
		if s, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted: %+v", in, s)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s, err := Parse("@2ms link a-* scale 0.25; @1ms flow 0->1 4MiB every 1ms x3; @5ms host h-* fail")
	if err != nil {
		t.Fatal(err)
	}
	// Object form.
	doc := `{"events": [
		{"at": 0.002, "kind": "link", "target": "a-*", "factor": 0.25},
		{"at": 0.001, "kind": "flow", "src": 0, "dst": 1, "bytes": 4194304, "every": 0.001, "count": 3},
		{"at": 0.005, "kind": "host", "target": "h-*", "factor": 0}
	]}`
	got, err := ParseJSON([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Errorf("JSON object decode = %+v, want %+v", got, s)
	}
	// Bare-array form through Load.
	array := `[{"at": 0.002, "kind": "link", "target": "a-*", "factor": 0.25}]`
	if _, err := Load(array); err != nil {
		t.Errorf("Load(bare array): %v", err)
	}
	// Invalid events are rejected with the same validation as the grammar.
	if _, err := ParseJSON([]byte(`[{"at": 0.002, "kind": "link", "target": "a-*", "factor": -1}]`)); err == nil {
		t.Error("ParseJSON accepted a negative factor")
	}
}

func TestLoadFromFile(t *testing.T) {
	dir := t.TempDir()
	grammar := filepath.Join(dir, "sched.dyn")
	if err := os.WriteFile(grammar, []byte("@2ms link a-* scale 0.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(grammar)
	if err != nil || len(s.Events) != 1 {
		t.Fatalf("Load(grammar file) = (%+v, %v)", s, err)
	}
	jsonFile := filepath.Join(dir, "sched.json")
	if err := os.WriteFile(jsonFile, []byte(`{"events":[{"at":0.002,"kind":"link","target":"a-*","factor":0.5}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Load(jsonFile)
	if err != nil || !reflect.DeepEqual(j, s) {
		t.Fatalf("Load(json file) = (%+v, %v), want %+v", j, err, s)
	}
	if _, err := Load(filepath.Join(dir, "missing")); err == nil {
		t.Error("Load(missing file) should fail")
	}
}

// dumbbell builds two hosts joined by one shared link pair.
func dumbbell(bw float64) (*platform.Platform, *platform.Link) {
	p := platform.New("dumb")
	a := p.AddHost("dumb-0", 1e9)
	b := p.AddHost("dumb-1", 1e9)
	up := p.AddLink("dumb-up", bw, 1e-3, lmm.Shared)
	down := p.AddLink("dumb-down", bw, 1e-3, lmm.Shared)
	p.AddRoute(a, b, []*platform.Link{up, down})
	return p, up
}

// TestArmDegradeAnalytic drives a transfer through an armed schedule and
// checks the completion date against the closed form.
func TestArmDegradeAnalytic(t *testing.T) {
	const bw = 1e6
	p, _ := dumbbell(bw)
	k := simix.New()
	net := surf.NewNetwork(k, surf.Ideal())
	k.AddModel(net)

	s, err := Parse("@2.002s link dumb-up scale 0.5")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Arm(k, p, net, nil); err != nil {
		t.Fatal(err)
	}
	var done core.Time
	k.Spawn("sender", func(pr *simix.Proc) {
		f := simix.NewFuture()
		net.StartFlow(p.Route(p.HostByID(0), p.HostByID(1)), 8e6, f)
		pr.Wait(f)
		done = pr.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 2ms latency, 2 s at 1e6 (2e6 bytes), then 6e6 bytes at 5e5 = 12 s.
	want := core.Time(0.002 + 2 + 12)
	if math.Abs(float64(done-want)) > 1e-9 {
		t.Errorf("completion at %v, want %v", done, want)
	}
}

// TestArmFlowInjection checks repeated background flows contend with the
// workload: a foreground transfer sharing the link with one injected flow
// runs at half rate while the injection is live.
func TestArmFlowInjection(t *testing.T) {
	const bw = 1e6
	p, _ := dumbbell(bw)
	k := simix.New()
	net := surf.NewNetwork(k, surf.Ideal())
	k.AddModel(net)

	// Inject 3 x 1e6 bytes back to back; each takes >= 1 s of link time.
	s, err := Parse("@0s flow 0->1 1MB every 1.5s x3")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Arm(k, p, net, nil); err != nil {
		t.Fatal(err)
	}
	var elapsed core.Duration
	k.Spawn("fg", func(pr *simix.Proc) {
		start := pr.Now()
		f := simix.NewFuture()
		net.StartFlow(p.Route(p.HostByID(0), p.HostByID(1)), 4e6, f)
		pr.Wait(f)
		elapsed = core.Duration(pr.Now() - start)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// With injections the foreground must be measurably slower than alone
	// (4 s + latency) but finish within the total offered load (7e6 bytes).
	alone := core.Duration(0.002 + 4)
	if elapsed <= alone+1 {
		t.Errorf("foreground took %v, expected contention well above %v", elapsed, alone)
	}
	if limit := core.Duration(0.002 + 7 + 1); elapsed > limit {
		t.Errorf("foreground took %v, beyond total offered load %v", elapsed, limit)
	}
}

// TestArmHostSlowdown checks host events through the CPU model.
func TestArmHostSlowdown(t *testing.T) {
	p := platform.New("m")
	p.AddHost("m-0", 1e9)
	k := simix.New()
	cpu := surf.NewCPU(k)
	k.AddModel(cpu)
	s, err := Parse("@1s host m-0 scale 0.25")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Arm(k, p, nil, cpu); err != nil {
		t.Fatal(err)
	}
	var done core.Time
	k.Spawn("w", func(pr *simix.Proc) {
		pr.Wait(cpu.Execute(p.HostByID(0), 2e9))
		done = pr.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 1 s at 1e9 f/s, then 1e9 flops at 0.25e9 = 4 s.
	if want := core.Time(5); math.Abs(float64(done-want)) > 1e-9 {
		t.Errorf("completion at %v, want %v", done, want)
	}
}

func TestArmErrors(t *testing.T) {
	p, _ := dumbbell(1e6)
	k := simix.New()
	net := surf.NewNetwork(k, surf.Ideal())
	cpu := surf.NewCPU(k)

	mustParse := func(in string) *Schedule {
		s, err := Parse(in)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []struct {
		name string
		s    *Schedule
		net  *surf.Network
		cpu  *surf.CPU
	}{
		{"no matching link", mustParse("@0s link nosuch-* fail"), net, cpu},
		{"no matching host", mustParse("@0s host nosuch-* fail"), net, cpu},
		{"link event without network", mustParse("@0s link dumb-up fail"), nil, cpu},
		{"host event without cpu", mustParse("@0s host dumb-0 fail"), net, nil},
		{"flow out of range", mustParse("@0s flow 0->7 1kB"), net, cpu},
		{"flow without network", mustParse("@0s flow 0->1 1kB"), nil, cpu},
	}
	for _, c := range cases {
		if err := c.s.Arm(k, p, c.net, c.cpu); err == nil {
			t.Errorf("%s: Arm accepted", c.name)
		}
	}
	blind := surf.NewNetwork(simix.New(), surf.Ideal())
	blind.Contention = false
	if err := mustParse("@0s link dumb-up scale 0.5").Arm(k, p, blind, nil); err == nil {
		t.Error("link event on a contention-blind network should fail to arm")
	}
}
