package dynamics

import (
	"flag"
	"os"
	"testing"

	"smpigo/internal/lmm"
)

// TestMain arms lmm.CheckAfterSolve for the dynamics suite: capacity
// retuning and flow injection are exactly the mutations that could leave a
// component in an invalid allocation, so every solve they trigger is
// validated at the source (see the hook's doc in internal/lmm).
func TestMain(m *testing.M) {
	flag.Parse()
	if f := flag.Lookup("test.bench"); f == nil || f.Value.String() == "" {
		lmm.CheckAfterSolve = true
	}
	os.Exit(m.Run())
}
