// Package dynamics turns a static platform into a time-varying one: a
// Schedule is a deterministic list of platform events — degrade/restore link
// bandwidth, slow/fail hosts, inject background-traffic flows — fired
// through simix timers on the existing event path. The simulation's resource
// models mutate their own LMM capacities (surf.Network.SetLinkBandwidth,
// surf.CPU.SetHostSpeed); the platform itself is never touched, so one
// platform instance can back many concurrent simulations with different
// schedules and the nominal description always survives for restore events.
//
// # Grammar
//
// A schedule is events separated by ";". Each event starts with an absolute
// simulated date (core.ParseDuration syntax) and names its kind:
//
//	@2ms   link fattree64-l3-* degrade 0.25   // spine at 25% of nominal
//	@8ms   link fattree64-l3-* restore        // back to nominal
//	@0s    host griffon-5 scale 0.5           // half-speed node
//	@1ms   host torus64-* fail                // capacity 0: loud failure
//	@500us flow 0->12 4MiB every 1ms x8       // background traffic
//
// Link and host selectors are path.Match globs over resource names; "scale"
// and "degrade" are synonyms taking a capacity multiplier relative to the
// nominal platform value, "restore" is scale 1, "fail" is scale 0. Flow
// events inject size bytes from one host ID to another, optionally repeated
// count times at a fixed period. The grammar is comma-free, so schedules
// survive comma-separated campaign flag lists; String renders the canonical,
// re-parseable spelling used in campaign job IDs.
//
// A schedule also round-trips through JSON (an {"events": [...]} object or a
// bare event array) for profiles too large to inline; Load dispatches on the
// first character ("@" grammar, "{" or "[" JSON, anything else a file name).
//
// # Determinism and exactness
//
// Arm resolves every selector eagerly (in event order, matching links and
// hosts in ID order) and registers plain kernel timers, so firing order
// depends only on the schedule — two runs of the same (platform, schedule,
// workload) are bit-identical, at any campaign parallelism. Capacity changes
// take effect exactly at their date: the models drain every affected action
// at its outgoing rate before the new capacity applies (see
// surf.Network.SetLinkBandwidth), so byte/flop integrals and observability
// accounting never smear across a rate change. Events dated after the last
// actor exits never fire (the kernel stops with the workload).
package dynamics

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path"
	"strconv"
	"strings"

	"smpigo/internal/core"
	"smpigo/internal/platform"
	"smpigo/internal/simix"
	"smpigo/internal/surf"
)

// Kind discriminates the event types of a schedule.
type Kind string

const (
	// KindLink scales the capacity of every link matching Target to
	// Factor times its nominal bandwidth.
	KindLink Kind = "link"
	// KindHost scales the compute capacity of every host matching Target to
	// Factor times its nominal speed.
	KindHost Kind = "host"
	// KindFlow injects a background flow of Bytes from host Src to host
	// Dst, repeated Count times every Every.
	KindFlow Kind = "flow"
)

// Event is one scheduled platform change. The zero value is invalid; build
// events through Parse or populate every field the Kind requires.
type Event struct {
	At   core.Time `json:"at"`
	Kind Kind      `json:"kind"`

	// Target is a path.Match glob over link or host names (link/host kinds).
	Target string `json:"target,omitempty"`
	// Factor is the capacity multiplier relative to the nominal platform
	// value: 1 restores, 0 fails (link/host kinds).
	Factor float64 `json:"factor"`

	// Src/Dst/Bytes describe an injected flow; Every and Count repeat it
	// (Count < 2 means a single injection).
	Src   int           `json:"src,omitempty"`
	Dst   int           `json:"dst,omitempty"`
	Bytes int64         `json:"bytes,omitempty"`
	Every core.Duration `json:"every,omitempty"`
	Count int           `json:"count,omitempty"`
}

// validate reports the first problem with the event.
func (e Event) validate() error {
	if e.At < 0 || math.IsNaN(float64(e.At)) {
		return fmt.Errorf("dynamics: event date %v before time zero", e.At)
	}
	switch e.Kind {
	case KindLink, KindHost:
		if e.Target == "" {
			return fmt.Errorf("dynamics: %s event without a target pattern", e.Kind)
		}
		if _, err := path.Match(e.Target, ""); err != nil {
			return fmt.Errorf("dynamics: bad %s pattern %q: %w", e.Kind, e.Target, err)
		}
		if e.Factor < 0 || math.IsNaN(e.Factor) || math.IsInf(e.Factor, 0) {
			return fmt.Errorf("dynamics: invalid capacity factor %v for %s %q", e.Factor, e.Kind, e.Target)
		}
	case KindFlow:
		if e.Src < 0 || e.Dst < 0 || e.Src == e.Dst {
			return fmt.Errorf("dynamics: flow endpoints %d->%d invalid", e.Src, e.Dst)
		}
		if e.Bytes <= 0 {
			return fmt.Errorf("dynamics: flow %d->%d with %d bytes", e.Src, e.Dst, e.Bytes)
		}
		if e.Every < 0 {
			return fmt.Errorf("dynamics: flow period %v negative", e.Every)
		}
		if e.Count > 1 && e.Every <= 0 {
			return fmt.Errorf("dynamics: flow repeated x%d needs a positive period", e.Count)
		}
	default:
		return fmt.Errorf("dynamics: unknown event kind %q", e.Kind)
	}
	return nil
}

// String renders the event in the canonical grammar spelling.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "@%gs %s ", float64(e.At), e.Kind)
	switch e.Kind {
	case KindFlow:
		fmt.Fprintf(&b, "%d->%d %dB", e.Src, e.Dst, e.Bytes)
		if e.Count > 1 {
			fmt.Fprintf(&b, " every %gs x%d", float64(e.Every), e.Count)
		}
	default:
		b.WriteString(e.Target)
		switch e.Factor {
		case 1:
			b.WriteString(" restore")
		case 0:
			b.WriteString(" fail")
		default:
			fmt.Fprintf(&b, " scale %g", e.Factor)
		}
	}
	return b.String()
}

// Schedule is a deterministic list of platform events, fired in date order
// (ties in list order) once armed on a kernel.
type Schedule struct {
	Events []Event `json:"events"`
}

// String renders the canonical, re-parseable grammar form — the spelling
// campaign job IDs and fingerprints are built from.
func (s *Schedule) String() string {
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, "; ")
}

// Validate reports the first problem with any event.
func (s *Schedule) Validate() error {
	for i, e := range s.Events {
		if err := e.validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// Parse parses the compact grammar (see the package comment). The empty
// string and "none" parse to nil: no schedule.
func Parse(input string) (*Schedule, error) {
	trimmed := strings.TrimSpace(input)
	if trimmed == "" || trimmed == "none" {
		return nil, nil
	}
	s := &Schedule{}
	for _, part := range strings.Split(trimmed, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		e, err := parseEvent(part)
		if err != nil {
			return nil, err
		}
		s.Events = append(s.Events, e)
	}
	if len(s.Events) == 0 {
		return nil, fmt.Errorf("dynamics: schedule %q has no events", input)
	}
	return s, nil
}

func parseEvent(spec string) (Event, error) {
	var e Event
	fields := strings.Fields(spec)
	fail := func(format string, args ...any) (Event, error) {
		return e, fmt.Errorf("dynamics: event %q: %s", spec, fmt.Sprintf(format, args...))
	}
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "@") {
		return fail("want \"@<time> <kind> ...\"")
	}
	at, err := core.ParseDuration(strings.TrimPrefix(fields[0], "@"))
	if err != nil {
		return fail("bad date: %v", err)
	}
	e.At = core.Time(at)
	e.Kind = Kind(fields[1])
	rest := fields[2:]
	switch e.Kind {
	case KindLink, KindHost:
		e.Target = rest[0]
		verb := ""
		if len(rest) > 1 {
			verb = rest[1]
		}
		switch verb {
		case "scale", "degrade":
			if len(rest) != 3 {
				return fail("%s needs exactly one factor", verb)
			}
			if e.Factor, err = strconv.ParseFloat(rest[2], 64); err != nil {
				return fail("bad factor %q: %v", rest[2], err)
			}
		case "restore":
			if len(rest) != 2 {
				return fail("restore takes no argument")
			}
			e.Factor = 1
		case "fail":
			if len(rest) != 2 {
				return fail("fail takes no argument")
			}
			e.Factor = 0
		default:
			return fail("unknown verb %q (want scale/degrade/restore/fail)", verb)
		}
	case KindFlow:
		src, dst, ok := strings.Cut(rest[0], "->")
		if !ok {
			return fail("flow endpoints %q: want <src>-><dst>", rest[0])
		}
		if e.Src, err = strconv.Atoi(src); err != nil {
			return fail("bad source host %q", src)
		}
		if e.Dst, err = strconv.Atoi(dst); err != nil {
			return fail("bad destination host %q", dst)
		}
		if len(rest) < 2 {
			return fail("flow needs a byte count")
		}
		if e.Bytes, err = core.ParseBytes(rest[1]); err != nil {
			return fail("bad byte count %q: %v", rest[1], err)
		}
		switch {
		case len(rest) == 2:
		case len(rest) == 5 && rest[2] == "every" && strings.HasPrefix(rest[4], "x"):
			if e.Every, err = core.ParseDuration(rest[3]); err != nil {
				return fail("bad period %q: %v", rest[3], err)
			}
			if e.Count, err = strconv.Atoi(strings.TrimPrefix(rest[4], "x")); err != nil || e.Count < 1 {
				return fail("bad repeat count %q", rest[4])
			}
		default:
			return fail("want \"flow <src>-><dst> <bytes> [every <period> x<count>]\"")
		}
	default:
		return fail("unknown kind %q (want link/host/flow)", fields[1])
	}
	if err := e.validate(); err != nil {
		return e, fmt.Errorf("dynamics: event %q: %w", spec, err)
	}
	return e, nil
}

// ParseJSON parses a JSON profile: an {"events": [...]} object or a bare
// event array.
func ParseJSON(data []byte) (*Schedule, error) {
	trimmed := strings.TrimSpace(string(data))
	s := &Schedule{}
	var err error
	if strings.HasPrefix(trimmed, "[") {
		err = json.Unmarshal(data, &s.Events)
	} else {
		err = json.Unmarshal(data, s)
	}
	if err != nil {
		return nil, fmt.Errorf("dynamics: parsing JSON profile: %w", err)
	}
	if len(s.Events) == 0 {
		return nil, fmt.Errorf("dynamics: JSON profile has no events")
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("dynamics: JSON profile: %w", err)
	}
	return s, nil
}

// Load resolves a -dynamics argument: "" and "none" mean no schedule (nil),
// a "@"-prefixed string is inline grammar, "{" or "[" inline JSON, and
// anything else names a file holding either format.
func Load(arg string) (*Schedule, error) {
	trimmed := strings.TrimSpace(arg)
	switch {
	case trimmed == "" || trimmed == "none":
		return nil, nil
	case strings.HasPrefix(trimmed, "@"):
		return Parse(trimmed)
	case strings.HasPrefix(trimmed, "{") || strings.HasPrefix(trimmed, "["):
		return ParseJSON([]byte(trimmed))
	}
	data, err := os.ReadFile(trimmed)
	if err != nil {
		return nil, fmt.Errorf("dynamics: %q is neither inline grammar (@...), inline JSON, nor a readable file: %w", arg, err)
	}
	content := strings.TrimSpace(string(data))
	if strings.HasPrefix(content, "@") {
		return Parse(content)
	}
	return ParseJSON(data)
}

// Arm resolves the schedule against plat and registers every event as a
// kernel timer. Link and flow events need the (contended) surf network
// model, host events the surf CPU model; pass nil for models the simulation
// does not use and Arm fails loudly if an event needs one. Selectors that
// match nothing are errors — a silently inert schedule would be
// indistinguishable from a typo.
func (s *Schedule) Arm(k *simix.Kernel, plat *platform.Platform, net *surf.Network, cpu *surf.CPU) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("dynamics: %w", err)
	}
	for i, e := range s.Events {
		e := e
		switch e.Kind {
		case KindLink:
			if net == nil {
				return fmt.Errorf("dynamics: event %d (%s) needs the surf network model", i, e)
			}
			if !net.Contention {
				return fmt.Errorf("dynamics: event %d (%s): contention-blind flows ignore link capacities", i, e)
			}
			links := matchLinks(plat, e.Target)
			if len(links) == 0 {
				return fmt.Errorf("dynamics: event %d: pattern %q matches no link", i, e.Target)
			}
			armAt(k, e.At, func() {
				for _, l := range links {
					net.SetLinkBandwidth(l, e.Factor*l.Bandwidth)
				}
			})
		case KindHost:
			if cpu == nil {
				return fmt.Errorf("dynamics: event %d (%s) needs the surf CPU model", i, e)
			}
			hosts := matchHosts(plat, e.Target)
			if len(hosts) == 0 {
				return fmt.Errorf("dynamics: event %d: pattern %q matches no host", i, e.Target)
			}
			armAt(k, e.At, func() {
				for _, h := range hosts {
					cpu.SetHostSpeed(h, e.Factor*h.Speed)
				}
			})
		case KindFlow:
			if net == nil {
				return fmt.Errorf("dynamics: event %d (%s) needs the surf network model", i, e)
			}
			if n := len(plat.Hosts()); e.Src >= n || e.Dst >= n {
				return fmt.Errorf("dynamics: event %d: flow %d->%d outside the %d-host platform", i, e.Src, e.Dst, n)
			}
			route := plat.Route(plat.HostByID(e.Src), plat.HostByID(e.Dst))
			count := e.Count
			if count < 1 {
				count = 1
			}
			for rep := 0; rep < count; rep++ {
				armAt(k, e.At+core.Time(rep)*core.Time(e.Every), func() {
					// Nobody waits on injected background traffic; the flow's
					// bytes still land in the sharing system and the usage
					// accounting like any first-class transfer.
					net.StartFlow(route, e.Bytes, simix.NewFuture())
				})
			}
		}
	}
	return nil
}

// armAt registers fn to run at date at through the kernel timer queue.
// Same-date timers fire in registration order (the timer heap is FIFO on
// ties), so the schedule's list order is the tiebreak.
func armAt(k *simix.Kernel, at core.Time, fn func()) {
	f := simix.NewFuture()
	k.OnFulfill(f, func(any) { fn() })
	k.FulfillAt(f, nil, at)
}

// matchLinks returns the links whose names match the glob, in ID order.
func matchLinks(plat *platform.Platform, pattern string) []*platform.Link {
	var out []*platform.Link
	for _, l := range plat.Links() {
		if ok, _ := path.Match(pattern, l.Name()); ok {
			out = append(out, l)
		}
	}
	return out
}

// matchHosts returns the hosts whose names match the glob, in ID order.
func matchHosts(plat *platform.Platform, pattern string) []*platform.Host {
	var out []*platform.Host
	for _, h := range plat.Hosts() {
		if ok, _ := path.Match(pattern, h.Name()); ok {
			out = append(out, h)
		}
	}
	return out
}
