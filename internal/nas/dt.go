// Package nas implements the two NAS Parallel Benchmarks the paper's
// evaluation uses: DT (Data Traffic, Section 7.1.4) and EP (Embarrassingly
// Parallel, Section 7.3), written against the smpi API so the same code
// runs on the analytical backend (an SMPI simulation) and on the
// packet-level emulator (the "real cluster" stand-in).
//
// The task-graph structure and class-to-process-count table follow the NPB
// specification used by the paper: WH/BH use 21, 43 and 85 processes for
// classes A, B and C; SH uses 80, 192 and 448. Payload sizes are scaled so
// that class A/B runtimes land in the paper's observed range on a Gigabit
// cluster while remaining tractable for a simulation test suite.
package nas

import (
	"encoding/binary"
	"fmt"

	"smpigo/internal/core"
	"smpigo/internal/smpi"
)

// DTGraph selects the DT communication graph.
type DTGraph string

// The three DT graphs of the benchmark (paper Figures 13 and 14).
const (
	// BH (Black Hole) funnels data from many sources into a single sink.
	BH DTGraph = "BH"
	// WH (White Hole) distributes data from one source to many consumers.
	WH DTGraph = "WH"
	// SH (Shuffle) moves data through successive layers of processes.
	SH DTGraph = "SH"
)

// DTClass is a NPB problem class.
type DTClass byte

// Problem classes, smallest to largest, as used in the paper.
const (
	ClassS DTClass = 'S'
	ClassW DTClass = 'W'
	ClassA DTClass = 'A'
	ClassB DTClass = 'B'
	ClassC DTClass = 'C'
)

// DTProcs returns the number of MPI processes the benchmark requires, per
// the NPB class table quoted in the paper (Section 7.1.4).
func DTProcs(graph DTGraph, class DTClass) (int, error) {
	tree := map[DTClass]int{ClassS: 5, ClassW: 11, ClassA: 21, ClassB: 43, ClassC: 85}
	shuffle := map[DTClass]int{ClassS: 12, ClassW: 32, ClassA: 80, ClassB: 192, ClassC: 448}
	switch graph {
	case BH, WH:
		if p, ok := tree[class]; ok {
			return p, nil
		}
	case SH:
		if p, ok := shuffle[class]; ok {
			return p, nil
		}
	}
	return 0, fmt.Errorf("nas: no DT configuration for graph %s class %c", graph, class)
}

// dtPayload returns the per-edge payload in bytes for a class. These are
// the repository's scaled equivalents of NPB's num_samples feature arrays
// (documented in DESIGN.md): large enough that class A/B runtimes on a
// Gigabit cluster match the paper's seconds-scale measurements.
func dtPayload(class DTClass) int {
	switch class {
	case ClassS:
		return 64 * int(core.KiB)
	case ClassW:
		return 256 * int(core.KiB)
	case ClassA:
		return 4 * int(core.MiB)
	case ClassB:
		return 6 * int(core.MiB)
	default: // ClassC
		return 8 * int(core.MiB)
	}
}

// shLayout returns (layers, width) for the shuffle graph so that
// layers*width equals the class process count: 80=5x16, 192=6x32, 448=7x64.
func shLayout(class DTClass) (layers, width int) {
	switch class {
	case ClassS:
		return 3, 4
	case ClassW:
		return 4, 8
	case ClassA:
		return 5, 16
	case ClassB:
		return 6, 32
	default:
		return 7, 64
	}
}

// dtVerifyFlopsPerByte is the per-byte processing charge applied when a
// node consumes an array (checksum/verification work in real DT). The
// single BH sink consumes every array sequentially, which is what makes BH
// slower than WH in the paper's Figure 15.
const dtVerifyFlopsPerByte = 1.0

// DTConfig parameterizes a DT run.
type DTConfig struct {
	Graph DTGraph
	Class DTClass
	// PayloadBytes overrides the class payload (0 = class default).
	PayloadBytes int
	// Fold allocates the feature arrays with SharedMalloc (RAM folding,
	// the paper's Figure 16 "SMPI + RAM Folding" configuration).
	Fold bool
}

// DTResult collects outcome data for verification.
type DTResult struct {
	// Checksum is the sink-side payload checksum (BH), the XOR of leaf
	// checksums (WH), or the XOR over the last layer (SH). It is data
	// computed by the application itself — on-line simulation.
	Checksum uint64
}

// DT returns the benchmark application plus a result sink. Procs must
// equal DTProcs(cfg.Graph, cfg.Class).
func DT(cfg DTConfig) (func(*smpi.Rank), *DTResult) {
	res := &DTResult{}
	switch cfg.Graph {
	case BH, WH:
		return dtTree(cfg, res), res
	case SH:
		return dtShuffle(cfg, res), res
	default:
		panic(fmt.Sprintf("nas: unknown DT graph %q", cfg.Graph))
	}
}

// treeParent returns the parent of node i in the BFS-numbered 4-ary tree.
func treeParent(i int) int { return (i - 1) / 4 }

// treeChildren returns the children of node i among p nodes.
func treeChildren(i, p int) []int {
	var kids []int
	for k := 4*i + 1; k <= 4*i+4 && k < p; k++ {
		kids = append(kids, k)
	}
	return kids
}

func checksum(buf []byte) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i+8 <= len(buf); i += 8 {
		h ^= binary.LittleEndian.Uint64(buf[i:])
		h *= 1099511628211
	}
	return h
}

// dtAlloc allocates a feature array through the accounting allocator,
// folded or private.
func dtAlloc(r *smpi.Rank, cfg DTConfig, id string, size int) []byte {
	if cfg.Fold {
		return r.SharedMalloc(id, size)
	}
	return r.Malloc(size)
}

const tagDT = 77

// dtTree implements WH (root-to-leaves) and BH (leaves-to-root) over the
// 4-ary task tree of the paper's Figures 13/14.
func dtTree(cfg DTConfig, res *DTResult) func(*smpi.Rank) {
	payload := cfg.PayloadBytes
	if payload == 0 {
		payload = dtPayload(cfg.Class)
	}
	return func(r *smpi.Rank) {
		c := r.Comm()
		me, p := r.Rank(), r.Size()
		kids := treeChildren(me, p)
		buf := dtAlloc(r, cfg, "dt-feature", payload)

		if cfg.Graph == WH {
			// White hole: the source generates, interior nodes process and
			// forward, leaves verify.
			if me == 0 {
				fillDT(r, buf)
			} else {
				r.Recv(c, buf, treeParent(me), tagDT)
				r.Compute(dtVerifyFlopsPerByte * float64(len(buf)))
			}
			for _, kid := range kids {
				r.Send(c, buf, kid, tagDT)
			}
			// Leaves contribute their checksum; XOR-combine at the root.
			var sum uint64
			if len(kids) == 0 {
				sum = checksum(buf)
			}
			out := make([]byte, 8)
			c.Reduce(r, smpi.Int64sToBytes([]int64{int64(sum)}), out, smpi.Int64, smpi.OpBOr, 0)
			if me == 0 {
				res.Checksum = uint64(smpi.BytesToInt64s(out)[0])
			}
		} else {
			// Black hole: leaves generate, interior nodes consume all
			// children then emit, the sink verifies everything it drinks.
			if len(kids) == 0 {
				fillDT(r, buf)
			} else {
				scratch := dtAlloc(r, cfg, "dt-scratch", payload)
				for _, kid := range kids {
					r.Recv(c, scratch, kid, tagDT)
					// Consume: element-wise combine plus verification charge.
					smpi.OpBOr.Apply(buf[:len(buf)/8*8], scratch[:len(scratch)/8*8], smpi.Int64)
					r.Compute(dtVerifyFlopsPerByte * float64(len(scratch)))
				}
				if !cfg.Fold {
					r.Free(scratch)
				} else {
					r.SharedFree("dt-scratch")
				}
			}
			if me != 0 {
				r.Send(c, buf, treeParent(me), tagDT)
			} else {
				res.Checksum = checksum(buf)
			}
		}
		if cfg.Fold {
			r.SharedFree("dt-feature")
		} else {
			r.Free(buf)
		}
	}
}

// dtShuffle implements SH: data flows layer by layer, each node scattering
// quarters of its array to four nodes of the next layer.
func dtShuffle(cfg DTConfig, res *DTResult) func(*smpi.Rank) {
	payload := cfg.PayloadBytes
	if payload == 0 {
		payload = dtPayload(cfg.Class)
	}
	payload &^= 31 // keep quarters 8-byte aligned
	return func(r *smpi.Rank) {
		c := r.Comm()
		me, p := r.Rank(), r.Size()
		layers, width := shLayout(cfg.Class)
		if layers*width != p {
			panic(fmt.Sprintf("nas: SH layout %dx%d != %d procs", layers, width, p))
		}
		layer, pos := me/width, me%width
		buf := dtAlloc(r, cfg, "dt-sh", payload)
		quarter := payload / 4

		if layer == 0 {
			fillDT(r, buf)
		} else {
			// Receive four quarters from the previous layer.
			reqs := make([]*smpi.Request, 4)
			for k := 0; k < 4; k++ {
				// The node at srcPos sends its k-th quarter to
				// (srcPos + k*width/4) % width; invert that map.
				src := (layer-1)*width + (pos-k*width/4%width+width)%width
				reqs[k] = r.Irecv(c, buf[k*quarter:(k+1)*quarter], src, tagDT)
			}
			r.WaitAll(reqs)
			r.Compute(dtVerifyFlopsPerByte * float64(payload))
		}
		if layer < layers-1 {
			// Shuffle quarters down to four nodes of the next layer.
			reqs := make([]*smpi.Request, 4)
			for k := 0; k < 4; k++ {
				dstPos := (pos + k*width/4) % width
				dst := (layer+1)*width + dstPos
				reqs[k] = r.Isend(c, buf[k*quarter:(k+1)*quarter], dst, tagDT)
			}
			r.WaitAll(reqs)
		}
		// Bottom layer folds its checksums together.
		var sum uint64
		if layer == layers-1 {
			sum = checksum(buf)
		}
		out := make([]byte, 8)
		c.Reduce(r, smpi.Int64sToBytes([]int64{int64(sum)}), out, smpi.Int64, smpi.OpBOr, 0)
		if me == 0 {
			res.Checksum = uint64(smpi.BytesToInt64s(out)[0])
		}
		if cfg.Fold {
			r.SharedFree("dt-sh")
		} else {
			r.Free(buf)
		}
	}
}

// fillDT generates the source feature array deterministically from the
// rank's seeded stream (real data: the checksums downstream depend on it).
func fillDT(r *smpi.Rank, buf []byte) {
	rng := r.RNG()
	for i := 0; i+8 <= len(buf); i += 8 {
		binary.LittleEndian.PutUint64(buf[i:], rng.Uint64())
	}
}
