package nas

import (
	"math"
	"testing"

	"smpigo/internal/platform"
	"smpigo/internal/smpi"
)

func dtRun(t *testing.T, cfg DTConfig, backend smpi.Backend) (*smpi.Report, *DTResult) {
	t.Helper()
	procs, err := DTProcs(cfg.Graph, cfg.Class)
	if err != nil {
		t.Fatal(err)
	}
	plat, err := platform.Griffon().Build()
	if err != nil {
		t.Fatal(err)
	}
	app, res := DT(cfg)
	rep, err := smpi.Run(smpi.Config{Procs: procs, Platform: plat, Backend: backend}, app)
	if err != nil {
		t.Fatal(err)
	}
	return rep, res
}

func TestDTProcsTable(t *testing.T) {
	cases := []struct {
		g    DTGraph
		c    DTClass
		want int
	}{
		{WH, ClassA, 21}, {BH, ClassA, 21},
		{WH, ClassB, 43}, {BH, ClassB, 43},
		{WH, ClassC, 85}, {BH, ClassC, 85},
		{SH, ClassA, 80}, {SH, ClassB, 192}, {SH, ClassC, 448},
	}
	for _, c := range cases {
		got, err := DTProcs(c.g, c.c)
		if err != nil || got != c.want {
			t.Errorf("DTProcs(%s,%c) = %d, %v; want %d", c.g, c.c, got, err, c.want)
		}
	}
	if _, err := DTProcs(DTGraph("XX"), ClassA); err == nil {
		t.Error("unknown graph should error")
	}
}

func TestTreeStructure(t *testing.T) {
	// 21 nodes: root 0, children 1-4, grandchildren 5-20.
	if treeParent(1) != 0 || treeParent(4) != 0 || treeParent(5) != 1 || treeParent(20) != 4 {
		t.Error("tree parent map wrong")
	}
	if kids := treeChildren(0, 21); len(kids) != 4 || kids[0] != 1 {
		t.Errorf("children of root: %v", kids)
	}
	if kids := treeChildren(5, 21); len(kids) != 0 {
		t.Errorf("node 5 should be a leaf in 21 nodes: %v", kids)
	}
	if kids := treeChildren(1, 21); len(kids) != 4 || kids[0] != 5 || kids[3] != 8 {
		t.Errorf("children of 1: %v", kids)
	}
}

func TestDTWhiteHoleRuns(t *testing.T) {
	rep, res := dtRun(t, DTConfig{Graph: WH, Class: ClassS}, smpi.BackendSurf)
	if rep.SimulatedTime <= 0 {
		t.Error("zero simulated time")
	}
	if res.Checksum == 0 {
		t.Error("WH checksum not computed")
	}
}

func TestDTBlackHoleRuns(t *testing.T) {
	rep, res := dtRun(t, DTConfig{Graph: BH, Class: ClassS}, smpi.BackendSurf)
	if rep.SimulatedTime <= 0 || res.Checksum == 0 {
		t.Errorf("BH: time %v checksum %x", rep.SimulatedTime, res.Checksum)
	}
}

func TestDTShuffleRuns(t *testing.T) {
	rep, res := dtRun(t, DTConfig{Graph: SH, Class: ClassS}, smpi.BackendSurf)
	if rep.SimulatedTime <= 0 || res.Checksum == 0 {
		t.Errorf("SH: time %v checksum %x", rep.SimulatedTime, res.Checksum)
	}
}

func TestDTChecksumDeterministicAcrossBackends(t *testing.T) {
	// On-line simulation computes real data: the checksum must not depend
	// on the timing backend.
	_, a := dtRun(t, DTConfig{Graph: WH, Class: ClassS}, smpi.BackendSurf)
	_, b := dtRun(t, DTConfig{Graph: WH, Class: ClassS}, smpi.BackendEmu)
	if a.Checksum != b.Checksum {
		t.Errorf("checksum differs across backends: %x vs %x", a.Checksum, b.Checksum)
	}
}

func TestDTBHSlowerThanWH(t *testing.T) {
	// The paper's Figure 15 trend: the black hole takes longer than the
	// white hole for the same class.
	wh, _ := dtRun(t, DTConfig{Graph: WH, Class: ClassS}, smpi.BackendSurf)
	bh, _ := dtRun(t, DTConfig{Graph: BH, Class: ClassS}, smpi.BackendSurf)
	if bh.SimulatedTime <= wh.SimulatedTime {
		t.Errorf("BH (%v) should be slower than WH (%v)", bh.SimulatedTime, wh.SimulatedTime)
	}
}

func TestDTFoldingReducesRSS(t *testing.T) {
	plain, _ := dtRun(t, DTConfig{Graph: WH, Class: ClassS}, smpi.BackendSurf)
	folded, _ := dtRun(t, DTConfig{Graph: WH, Class: ClassS, Fold: true}, smpi.BackendSurf)
	if folded.MaxPeakRSS >= plain.MaxPeakRSS {
		t.Errorf("folding did not reduce RSS: %v vs %v", folded.MaxPeakRSS, plain.MaxPeakRSS)
	}
	ratio := plain.MaxPeakRSS / folded.MaxPeakRSS
	if ratio < 3 {
		t.Errorf("folding ratio only %.1fx", ratio)
	}
}

func TestDTClassAHasPaperScaleRuntime(t *testing.T) {
	if testing.Short() {
		t.Skip("class A is slow in -short mode")
	}
	rep, _ := dtRun(t, DTConfig{Graph: WH, Class: ClassA}, smpi.BackendSurf)
	// The paper's Figure 15 shows WH class A well under 4 seconds.
	if rep.SimulatedTime < 0.05 || rep.SimulatedTime > 10 {
		t.Errorf("WH class A simulated %v, expected paper-scale (0.05-10s)", rep.SimulatedTime)
	}
}

func epRun(t *testing.T, cfg EPConfig, procs int) (*smpi.Report, *EPResult) {
	t.Helper()
	plat, err := platform.Griffon().Build()
	if err != nil {
		t.Fatal(err)
	}
	app, res := EP(cfg)
	rep, err := smpi.Run(smpi.Config{Procs: procs, Platform: plat}, app)
	if err != nil {
		t.Fatal(err)
	}
	return rep, res
}

func TestEPFullExecutionStatistics(t *testing.T) {
	_, res := epRun(t, EPConfig{M: 16, Iterations: 8, SampleRatio: 1}, 4)
	total := int64(1) << 16
	// Acceptance rate of the polar method is pi/4 ~ 0.785.
	rate := float64(res.PairsInCircle) / float64(total)
	if math.Abs(rate-math.Pi/4) > 0.02 {
		t.Errorf("acceptance rate %.3f, want ~0.785", rate)
	}
	// Gaussian sums should be near zero relative to the count.
	if math.Abs(res.SumX) > 5*math.Sqrt(float64(res.PairsInCircle)) {
		t.Errorf("SumX = %v too far from 0", res.SumX)
	}
	var tally int64
	for _, c := range res.Counts {
		tally += c
	}
	if tally != res.PairsInCircle {
		t.Errorf("annuli tally %d != accepted %d", tally, res.PairsInCircle)
	}
}

func TestEPSamplingReducesExecutedBursts(t *testing.T) {
	full, _ := epRun(t, EPConfig{M: 16, Iterations: 16, SampleRatio: 1}, 2)
	quarter, _ := epRun(t, EPConfig{M: 16, Iterations: 16, SampleRatio: 0.25}, 2)
	if full.BurstsExecuted != 32 {
		t.Errorf("full run executed %d bursts, want 32", full.BurstsExecuted)
	}
	if quarter.BurstsExecuted != 8 {
		t.Errorf("25%% run executed %d bursts, want 8", quarter.BurstsExecuted)
	}
	if quarter.BurstsReplayed != 24 {
		t.Errorf("25%% run replayed %d bursts, want 24", quarter.BurstsReplayed)
	}
}

func TestEPSimulatedTimeStableUnderSampling(t *testing.T) {
	// Figure 18's dashed line: the simulated execution time barely moves
	// as the sampling ratio decreases (EP is perfectly regular).
	full, _ := epRun(t, EPConfig{M: 18, Iterations: 16, SampleRatio: 1}, 2)
	half, _ := epRun(t, EPConfig{M: 18, Iterations: 16, SampleRatio: 0.5}, 2)
	a, b := float64(full.SimulatedTime), float64(half.SimulatedTime)
	if a == 0 || b == 0 {
		t.Skip("bursts too fast to time on this machine")
	}
	if diff := math.Abs(a-b) / a; diff > 0.5 {
		t.Errorf("simulated time moved %.0f%% under sampling (%v vs %v)", diff*100, a, b)
	}
}

func TestEPSimulatedTimeExactUnderSampling(t *testing.T) {
	// The sampled path charges the same modelled burst cost as the
	// fully-executed path, so the simulated time is bit-identical at every
	// sampling ratio — not merely close. This is also what makes EP
	// campaigns deterministic under parallel execution.
	full, _ := epRun(t, EPConfig{M: 18, Iterations: 16, SampleRatio: 1}, 2)
	for _, ratio := range []float64{0.75, 0.5, 0.25} {
		sampled, _ := epRun(t, EPConfig{M: 18, Iterations: 16, SampleRatio: ratio}, 2)
		if sampled.SimulatedTime != full.SimulatedTime {
			t.Errorf("ratio %v: simulated %v != full %v", ratio, sampled.SimulatedTime, full.SimulatedTime)
		}
	}
}

func TestEPGlobalSampling(t *testing.T) {
	rep, _ := epRun(t, EPConfig{M: 16, Iterations: 8, SampleRatio: 0.5, Global: true}, 4)
	// Global sampling: 4 executions total (not per-rank).
	if rep.BurstsExecuted != 4 {
		t.Errorf("global sampling executed %d bursts, want 4", rep.BurstsExecuted)
	}
}

func TestEPClassTable(t *testing.T) {
	if EPClassM(ClassA) != 28 || EPClassM(ClassB) != 30 || EPClassM(ClassC) != 32 {
		t.Error("EP class exponents do not match NPB")
	}
}
