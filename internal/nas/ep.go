package nas

import (
	"fmt"
	"math"

	"smpigo/internal/smpi"
)

// EP is the NAS Embarrassingly Parallel benchmark: generate pairs of
// uniform deviates, keep those falling inside the unit circle, transform
// them into Gaussian deviates (Marsaglia polar method), tally the deviates
// into ten square annuli, and reduce the tallies. There is no communication
// until the final reductions, so EP isolates the cost of the computational
// part — exactly why the paper uses it to evaluate CPU-burst sampling
// (Section 7.3, Figure 18).
//
// The real class table is M=28/30/32 random-pair exponents for classes
// A/B/C; a simulation test suite cannot burn 2^30 real flops per run, so
// EPConfig takes the exponent directly and documents the class mapping.

// EPClassM returns the NPB pair-count exponent M for a class (2^M pairs).
func EPClassM(class DTClass) int {
	switch class {
	case ClassS:
		return 24
	case ClassW:
		return 25
	case ClassA:
		return 28
	case ClassB:
		return 30
	default:
		return 32
	}
}

// EPConfig parameterizes an EP run.
type EPConfig struct {
	// M: 2^M total random pairs across all ranks.
	M int
	// Iterations splits each rank's share into this many CPU bursts (the
	// paper's EP iteration space; 4096 in the Figure 18 experiment).
	Iterations int
	// SampleRatio is the fraction of iterations actually executed; the
	// rest replay the mean measured duration (the x-axis of Figure 18).
	// 1.0 executes everything.
	SampleRatio float64
	// Global uses SMPI_SAMPLE_GLOBAL semantics instead of per-rank local
	// sampling.
	Global bool
	// FlopsPerPair is the modelled cost of generating and classifying one
	// random pair, charged per burst whether the burst executes or is
	// bypassed. Defaults to epFlopsPerPair. Because the charged cost is a
	// model rather than a wall-clock measurement, the simulated time of a
	// sampled run is bit-identical to a fully-executed one and to any
	// campaign worker count.
	FlopsPerPair float64
}

// epFlopsPerPair approximates the arithmetic of the EP inner loop: two
// deviates, the acceptance test, and (for accepted pairs) sqrt/log and the
// annulus tally.
const epFlopsPerPair = 40

// EPResult holds the benchmark's verification outputs.
type EPResult struct {
	// Counts are the annulus tallies summed over all ranks.
	Counts [10]int64
	// SumX and SumY are the sums of the Gaussian deviates.
	SumX, SumY float64
	// PairsInCircle counts accepted pairs.
	PairsInCircle int64
}

// EP returns the benchmark application and its result sink.
func EP(cfg EPConfig) (func(*smpi.Rank), *EPResult) {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 16
	}
	if cfg.SampleRatio <= 0 || cfg.SampleRatio > 1 {
		cfg.SampleRatio = 1
	}
	if cfg.FlopsPerPair <= 0 {
		cfg.FlopsPerPair = epFlopsPerPair
	}
	res := &EPResult{}
	return func(r *smpi.Rank) {
		c := r.Comm()
		p := r.Size()
		total := int64(1) << uint(cfg.M)
		mine := total / int64(p)
		perIter := mine / int64(cfg.Iterations)
		if perIter == 0 {
			perIter = 1
		}

		var counts [10]int64
		var sx, sy float64
		var accepted int64
		rng := r.RNG()

		n := int(math.Round(cfg.SampleRatio * float64(cfg.Iterations)))
		for iter := 0; iter < cfg.Iterations; iter++ {
			body := func() {
				for i := int64(0); i < perIter; i++ {
					x := 2*rng.Float64() - 1
					y := 2*rng.Float64() - 1
					t := x*x + y*y
					if t > 1 || t == 0 {
						continue
					}
					accepted++
					f := math.Sqrt(-2 * math.Log(t) / t)
					gx, gy := x*f, y*f
					sx += gx
					sy += gy
					l := int(math.Max(math.Abs(gx), math.Abs(gy)))
					if l > 9 {
						l = 9
					}
					counts[l]++
				}
			}
			id := fmt.Sprintf("ep-iter-m%d", cfg.M)
			flops := float64(perIter) * cfg.FlopsPerPair
			if cfg.Global {
				r.SampleGlobalFlops(id, n, flops, body)
			} else {
				r.SampleLocalFlops(id, n, flops, body)
			}
		}

		// Final reductions, as in the real benchmark.
		sums := smpi.Float64sToBytes([]float64{sx, sy})
		sumOut := make([]byte, 16)
		c.Allreduce(r, sums, sumOut, smpi.Float64, smpi.OpSum)
		cnt := make([]int64, 11)
		copy(cnt, counts[:])
		cnt[10] = accepted
		cntOut := make([]byte, 8*11)
		c.Allreduce(r, smpi.Int64sToBytes(cnt), cntOut, smpi.Int64, smpi.OpSum)

		if r.Rank() == 0 {
			got := smpi.BytesToFloat64s(sumOut)
			res.SumX, res.SumY = got[0], got[1]
			totals := smpi.BytesToInt64s(cntOut)
			copy(res.Counts[:], totals[:10])
			res.PairsInCircle = totals[10]
		}
	}, res
}
