// NAS DT: the paper's Section 7.1.4/7.2 workload. Runs the Data Traffic
// benchmark's White Hole and Black Hole graphs for class A (21 processes),
// predicting execution times on griffon with SMPI, and demonstrates RAM
// folding: the same class simulated with and without SMPI_SHARED_MALLOC,
// comparing the per-rank memory footprint (the paper's Figure 16 effect).
//
// Run with: go run ./examples/nasdt
package main

import (
	"fmt"
	"log"

	"smpigo/internal/core"
	"smpigo/internal/experiments"
	"smpigo/internal/nas"
	"smpigo/internal/smpi"
)

func main() {
	env, err := experiments.NewEnv()
	if err != nil {
		log.Fatal(err)
	}

	run := func(graph nas.DTGraph, fold bool) *smpi.Report {
		cfg := nas.DTConfig{Graph: graph, Class: nas.ClassA, Fold: fold}
		procs, err := nas.DTProcs(graph, nas.ClassA)
		if err != nil {
			log.Fatal(err)
		}
		app, res := nas.DT(cfg)
		rep, err := smpi.Run(smpi.Config{
			Procs:    procs,
			Platform: env.Griffon,
			Model:    env.Piecewise,
		}, app)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("DT %s class A (%d ranks, fold=%-5v): simulated %8v, RSS/rank %6.1f MiB, checksum %016x\n",
			graph, procs, fold, rep.SimulatedTime, rep.MaxPeakRSS/float64(core.MiB), res.Checksum)
		return rep
	}

	fmt.Println("NAS DT on simulated griffon (SMPI piece-wise model):")
	wh := run(nas.WH, false)
	bh := run(nas.BH, false)
	fmt.Printf("=> BH/WH ratio: %.2f (the paper's Figure 15 shows BH slower than WH)\n\n",
		float64(bh.SimulatedTime)/float64(wh.SimulatedTime))

	fmt.Println("RAM folding (Figure 16 effect):")
	plain := run(nas.WH, false)
	folded := run(nas.WH, true)
	fmt.Printf("=> folding cuts the per-rank footprint by %.1fx\n",
		plain.MaxPeakRSS/folded.MaxPeakRSS)
}
