// Quickstart: simulate a 8-rank MPI program on a cluster you don't have.
//
// The program is ordinary Go code written against the smpi API: each rank
// computes a partial sum, the ranks combine it with Allreduce, and rank 0
// reports the result together with the *simulated* execution time on the
// 92-node griffon cluster — all computed inside a single OS process.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"smpigo/internal/platform"
	"smpigo/internal/smpi"
)

func main() {
	plat, err := platform.Griffon().Build()
	if err != nil {
		log.Fatal(err)
	}

	app := func(r *smpi.Rank) {
		c := r.Comm()

		// Some genuinely executed computation: this is ON-LINE simulation,
		// the data below is real.
		partial := 0.0
		for i := r.Rank(); i < 1_000_000; i += r.Size() {
			partial += 1.0 / float64(i+1)
		}
		// Charge the burst to simulated time: measure it once, replay after.
		r.SampleLocal("harmonic", 1, func() {})

		// Combine across ranks.
		out := make([]byte, 8)
		c.Allreduce(r, smpi.Float64sToBytes([]float64{partial}), out, smpi.Float64, smpi.OpSum)

		// A ring of point-to-point messages, for flavour.
		token := []byte{byte(r.Rank())}
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() - 1 + r.Size()) % r.Size()
		if r.Rank() == 0 {
			r.Send(c, token, next, 0)
			r.Recv(c, token, prev, 0)
		} else {
			r.Recv(c, token, prev, 0)
			r.Send(c, token, next, 0)
		}

		if r.Rank() == 0 {
			fmt.Printf("rank 0: harmonic sum H(1e6) = %.6f, token from rank %d\n",
				smpi.BytesToFloat64s(out)[0], token[0])
		}
	}

	rep, err := smpi.Run(smpi.Config{Procs: 8, Platform: plat}, app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated execution time on %s: %v (simulation took %v of real time)\n",
		plat.Name, rep.SimulatedTime, rep.WallTime)
	fmt.Printf("wire traffic: %d messages, %d bytes\n", rep.Messages, rep.BytesOnWire)
}
