// Scatter: the workload of the paper's Section 7.1.2 — a binomial-tree
// MPI_Scatter of 4 MiB chunks over 16 processes — run three ways:
//
//  1. SMPI's analytical backend with the contention-aware piece-wise model,
//  2. the same with contention disabled (what contention-blind simulators
//     predict — the white bars of Figure 7),
//  3. the packet-level testbed emulator (the "real cluster" stand-in).
//
// The no-contention prediction visibly underestimates the completion time;
// the contention-aware prediction tracks the emulated real run.
//
// Run with: go run ./examples/scatter
package main

import (
	"fmt"
	"log"

	"smpigo/internal/core"
	"smpigo/internal/experiments"
	"smpigo/internal/smpi"
)

const (
	procs = 16
	chunk = 4 * core.MiB
)

func scatterApp(perRank []float64) func(*smpi.Rank) {
	return func(r *smpi.Rank) {
		c := r.Comm()
		var sendbuf []byte
		if r.Rank() == 0 {
			sendbuf = make([]byte, procs*chunk)
		}
		recvbuf := make([]byte, chunk)
		c.Barrier(r)
		start := r.Now()
		c.Scatter(r, sendbuf, recvbuf, 0)
		perRank[r.Rank()] = float64(r.Now() - start)
	}
}

func main() {
	env, err := experiments.NewEnv()
	if err != nil {
		log.Fatal(err)
	}

	run := func(label string, cfg smpi.Config) []float64 {
		perRank := make([]float64, procs)
		cfg.Procs = procs
		if _, err := smpi.Run(cfg, scatterApp(perRank)); err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		return perRank
	}

	smpiCfg := smpi.Config{Platform: env.Griffon, Model: env.Piecewise}
	noCont := smpiCfg
	noCont.NoContention = true
	emuCfg := smpi.Config{Platform: env.Griffon, Backend: smpi.BackendEmu}

	withC := run("smpi", smpiCfg)
	without := run("smpi-nocontention", noCont)
	real := run("emu", emuCfg)

	fmt.Printf("binomial scatter, %d ranks, %s chunks (times in seconds)\n\n", procs, core.FormatBytes(chunk))
	fmt.Printf("%4s  %12s  %14s  %12s\n", "rank", "contention", "no-contention", "emulated")
	for i := 0; i < procs; i++ {
		fmt.Printf("%4d  %12.3f  %14.3f  %12.3f\n", i, withC[i], without[i], real[i])
	}
	max := func(v []float64) float64 {
		m := 0.0
		for _, x := range v {
			if x > m {
				m = x
			}
		}
		return m
	}
	fmt.Printf("\ncompletion: contention %.3fs | no-contention %.3fs | emulated %.3fs\n",
		max(withC), max(without), max(real))
	fmt.Println("=> ignoring contention underestimates the scatter, as in the paper's Figure 7")
}
