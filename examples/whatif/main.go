// What-if: the paper's Section 1 motivation — use simulation to evaluate a
// platform you have not bought yet. Starting from the calibrated griffon
// model, this example asks: what happens to a 32-rank pairwise all-to-all
// if the cabinet switch backplane is upgraded, or if the network achieves
// 30% higher large-message bandwidth (the paper's own example of modifying
// an instantiation)?
//
// Run with: go run ./examples/whatif
package main

import (
	"fmt"
	"log"

	"smpigo/internal/core"
	"smpigo/internal/experiments"
	"smpigo/internal/platform"
	"smpigo/internal/smpi"
	"smpigo/internal/surf"
)

const (
	procs = 32
	chunk = core.MiB
)

func alltoallTime(plat *platform.Platform, model surf.NetModel) float64 {
	var total float64
	app := func(r *smpi.Rank) {
		c := r.Comm()
		sendbuf := make([]byte, procs*chunk)
		recvbuf := make([]byte, procs*chunk)
		c.Barrier(r)
		start := r.Now()
		c.Alltoall(r, sendbuf, recvbuf)
		if d := float64(r.Now() - start); d > total {
			total = d
		}
	}
	if _, err := smpi.Run(smpi.Config{Procs: procs, Platform: plat, Model: model}, app); err != nil {
		log.Fatal(err)
	}
	return total
}

func main() {
	env, err := experiments.NewEnv()
	if err != nil {
		log.Fatal(err)
	}

	baseline := alltoallTime(env.Griffon, env.Piecewise)
	fmt.Printf("baseline griffon, %d-rank all-to-all of %s blocks: %.3fs\n",
		procs, core.FormatBytes(chunk), baseline)

	// What if each cabinet switch had a 40 Gbps backplane?
	fat := platform.Griffon()
	fat.CabinetBackplaneBandwidth = 5e9
	fatPlat, err := fat.Build()
	if err != nil {
		log.Fatal(err)
	}
	upgraded := alltoallTime(fatPlat, env.Piecewise)
	fmt.Printf("with 40Gbps cabinet backplanes:                  %.3fs (%.0f%% faster)\n",
		upgraded, 100*(1-upgraded/baseline))

	// What if the interconnect reached 30% higher large-message rates?
	boosted := env.Piecewise
	boosted.Name = "piecewise+30%"
	boosted.Segments = append([]surf.Segment(nil), env.Piecewise.Segments...)
	last := len(boosted.Segments) - 1
	boosted.Segments[last].BwFactor *= 1.3
	faster := alltoallTime(env.Griffon, boosted)
	fmt.Printf("with 30%% faster large-message transfers:         %.3fs (%.0f%% faster)\n",
		faster, 100*(1-faster/baseline))
	if faster >= 0.99*baseline {
		fmt.Println("   (no effect: this all-to-all is backplane-bound, so a faster")
		fmt.Println("    point-to-point protocol buys nothing — the kind of insight")
		fmt.Println("    that makes what-if simulation worthwhile)")
	}

	fmt.Println("\n=> capacity planning without touching a single real node")
}
