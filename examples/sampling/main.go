// Sampling: the paper's Section 7.3 study (Figure 18). NAS EP splits its
// computation into many identical CPU bursts; with SMPI_SAMPLE_LOCAL only
// the first fraction of them actually executes, the rest replay the mean
// measured duration. The simulation gets proportionally cheaper while the
// predicted execution time stays put.
//
// Run with: go run ./examples/sampling
package main

import (
	"fmt"
	"log"

	"smpigo/internal/experiments"
	"smpigo/internal/nas"
	"smpigo/internal/smpi"
)

func main() {
	env, err := experiments.NewEnv()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("NAS EP (2^22 pairs, 4 ranks, 64 bursts/rank) under CPU-burst sampling:")
	fmt.Printf("%10s  %14s  %16s  %10s\n", "ratio", "sim wall", "simulated time", "executed")
	for _, ratio := range []float64{1.0, 0.75, 0.5, 0.25} {
		app, _ := nas.EP(nas.EPConfig{M: 22, Iterations: 64, SampleRatio: ratio})
		rep, err := smpi.Run(smpi.Config{
			Procs:    4,
			Platform: env.Griffon,
			Model:    env.Piecewise,
		}, app)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9.0f%%  %14v  %16v  %10d\n",
			ratio*100, rep.WallTime.Round(1000*1000), rep.SimulatedTime, rep.BurstsExecuted)
	}
	fmt.Println("\n=> wall-clock cost scales with the ratio; the prediction does not move (EP is regular)")
}
